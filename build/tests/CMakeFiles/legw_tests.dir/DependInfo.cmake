
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ag_conv.cpp" "tests/CMakeFiles/legw_tests.dir/test_ag_conv.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_ag_conv.cpp.o.d"
  "/root/repo/tests/test_ag_ops.cpp" "tests/CMakeFiles/legw_tests.dir/test_ag_ops.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_ag_ops.cpp.o.d"
  "/root/repo/tests/test_ag_rnn.cpp" "tests/CMakeFiles/legw_tests.dir/test_ag_rnn.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_ag_rnn.cpp.o.d"
  "/root/repo/tests/test_ag_unary.cpp" "tests/CMakeFiles/legw_tests.dir/test_ag_unary.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_ag_unary.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/legw_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_compression_lrfinder.cpp" "tests/CMakeFiles/legw_tests.dir/test_compression_lrfinder.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_compression_lrfinder.cpp.o.d"
  "/root/repo/tests/test_contracts.cpp" "tests/CMakeFiles/legw_tests.dir/test_contracts.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_contracts.cpp.o.d"
  "/root/repo/tests/test_core_parallel.cpp" "tests/CMakeFiles/legw_tests.dir/test_core_parallel.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_core_parallel.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/legw_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_data_parallel.cpp" "tests/CMakeFiles/legw_tests.dir/test_data_parallel.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_data_parallel.cpp.o.d"
  "/root/repo/tests/test_dist.cpp" "tests/CMakeFiles/legw_tests.dir/test_dist.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_dist.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/legw_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_loaders.cpp" "tests/CMakeFiles/legw_tests.dir/test_loaders.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_loaders.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/legw_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/legw_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_more_coverage.cpp" "tests/CMakeFiles/legw_tests.dir/test_more_coverage.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_more_coverage.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/legw_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_nn_extra.cpp" "tests/CMakeFiles/legw_tests.dir/test_nn_extra.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_nn_extra.cpp.o.d"
  "/root/repo/tests/test_optim.cpp" "tests/CMakeFiles/legw_tests.dir/test_optim.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_optim.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/legw_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_runners.cpp" "tests/CMakeFiles/legw_tests.dir/test_runners.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_runners.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/legw_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_sched.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/legw_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_train_extras.cpp" "tests/CMakeFiles/legw_tests.dir/test_train_extras.cpp.o" "gcc" "tests/CMakeFiles/legw_tests.dir/test_train_extras.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ag/CMakeFiles/legw_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/legw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/legw_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/legw_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/legw_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/legw_models.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/legw_train.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/legw_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/legw_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
