# Empty compiler generated dependencies file for legw_tests.
# This may be replaced when dependencies are built.
