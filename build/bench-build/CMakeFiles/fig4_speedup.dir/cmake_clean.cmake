file(REMOVE_RECURSE
  "../bench/fig4_speedup"
  "../bench/fig4_speedup.pdb"
  "CMakeFiles/fig4_speedup.dir/fig4_speedup.cpp.o"
  "CMakeFiles/fig4_speedup.dir/fig4_speedup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
