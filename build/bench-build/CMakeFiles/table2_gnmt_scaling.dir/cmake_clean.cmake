file(REMOVE_RECURSE
  "../bench/table2_gnmt_scaling"
  "../bench/table2_gnmt_scaling.pdb"
  "CMakeFiles/table2_gnmt_scaling.dir/table2_gnmt_scaling.cpp.o"
  "CMakeFiles/table2_gnmt_scaling.dir/table2_gnmt_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_gnmt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
