# Empty dependencies file for table2_gnmt_scaling.
# This may be replaced when dependencies are built.
