# Empty dependencies file for fig1_legw_vs_tuning.
# This may be replaced when dependencies are built.
