file(REMOVE_RECURSE
  "../bench/fig1_legw_vs_tuning"
  "../bench/fig1_legw_vs_tuning.pdb"
  "CMakeFiles/fig1_legw_vs_tuning.dir/fig1_legw_vs_tuning.cpp.o"
  "CMakeFiles/fig1_legw_vs_tuning.dir/fig1_legw_vs_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_legw_vs_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
