# Empty dependencies file for ablation_batch_growth.
# This may be replaced when dependencies are built.
