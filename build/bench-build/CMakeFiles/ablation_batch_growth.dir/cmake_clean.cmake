file(REMOVE_RECURSE
  "../bench/ablation_batch_growth"
  "../bench/ablation_batch_growth.pdb"
  "CMakeFiles/ablation_batch_growth.dir/ablation_batch_growth.cpp.o"
  "CMakeFiles/ablation_batch_growth.dir/ablation_batch_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
