# Empty dependencies file for fig8_tuning_longer.
# This may be replaced when dependencies are built.
