file(REMOVE_RECURSE
  "../bench/fig8_tuning_longer"
  "../bench/fig8_tuning_longer.pdb"
  "CMakeFiles/fig8_tuning_longer.dir/fig8_tuning_longer.cpp.o"
  "CMakeFiles/fig8_tuning_longer.dir/fig8_tuning_longer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tuning_longer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
