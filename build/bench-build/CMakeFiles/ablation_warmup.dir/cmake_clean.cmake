file(REMOVE_RECURSE
  "../bench/ablation_warmup"
  "../bench/ablation_warmup.pdb"
  "CMakeFiles/ablation_warmup.dir/ablation_warmup.cpp.o"
  "CMakeFiles/ablation_warmup.dir/ablation_warmup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_warmup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
