file(REMOVE_RECURSE
  "../bench/fig10_legw_large"
  "../bench/fig10_legw_large.pdb"
  "CMakeFiles/fig10_legw_large.dir/fig10_legw_large.cpp.o"
  "CMakeFiles/fig10_legw_large.dir/fig10_legw_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_legw_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
