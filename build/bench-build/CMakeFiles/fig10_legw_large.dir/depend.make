# Empty dependencies file for fig10_legw_large.
# This may be replaced when dependencies are built.
