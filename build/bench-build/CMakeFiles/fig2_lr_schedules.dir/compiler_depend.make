# Empty compiler generated dependencies file for fig2_lr_schedules.
# This may be replaced when dependencies are built.
