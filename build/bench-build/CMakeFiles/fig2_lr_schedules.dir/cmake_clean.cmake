file(REMOVE_RECURSE
  "../bench/fig2_lr_schedules"
  "../bench/fig2_lr_schedules.pdb"
  "CMakeFiles/fig2_lr_schedules.dir/fig2_lr_schedules.cpp.o"
  "CMakeFiles/fig2_lr_schedules.dir/fig2_lr_schedules.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_lr_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
