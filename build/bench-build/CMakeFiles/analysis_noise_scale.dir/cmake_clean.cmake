file(REMOVE_RECURSE
  "../bench/analysis_noise_scale"
  "../bench/analysis_noise_scale.pdb"
  "CMakeFiles/analysis_noise_scale.dir/analysis_noise_scale.cpp.o"
  "CMakeFiles/analysis_noise_scale.dir/analysis_noise_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_noise_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
