# Empty compiler generated dependencies file for analysis_noise_scale.
# This may be replaced when dependencies are built.
