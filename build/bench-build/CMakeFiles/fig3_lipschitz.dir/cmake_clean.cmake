file(REMOVE_RECURSE
  "../bench/fig3_lipschitz"
  "../bench/fig3_lipschitz.pdb"
  "CMakeFiles/fig3_lipschitz.dir/fig3_lipschitz.cpp.o"
  "CMakeFiles/fig3_lipschitz.dir/fig3_lipschitz.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lipschitz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
