# Empty compiler generated dependencies file for fig3_lipschitz.
# This may be replaced when dependencies are built.
