file(REMOVE_RECURSE
  "../bench/table3_resnet_scaling"
  "../bench/table3_resnet_scaling.pdb"
  "CMakeFiles/table3_resnet_scaling.dir/table3_resnet_scaling.cpp.o"
  "CMakeFiles/table3_resnet_scaling.dir/table3_resnet_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_resnet_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
