
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_adam_vs_adadelta.cpp" "bench-build/CMakeFiles/fig9_adam_vs_adadelta.dir/fig9_adam_vs_adadelta.cpp.o" "gcc" "bench-build/CMakeFiles/fig9_adam_vs_adadelta.dir/fig9_adam_vs_adadelta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ag/CMakeFiles/legw_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/legw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/legw_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/legw_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/legw_data.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/legw_models.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/legw_train.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/legw_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/legw_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
