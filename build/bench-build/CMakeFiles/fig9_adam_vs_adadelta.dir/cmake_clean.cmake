file(REMOVE_RECURSE
  "../bench/fig9_adam_vs_adadelta"
  "../bench/fig9_adam_vs_adadelta.pdb"
  "CMakeFiles/fig9_adam_vs_adadelta.dir/fig9_adam_vs_adadelta.cpp.o"
  "CMakeFiles/fig9_adam_vs_adadelta.dir/fig9_adam_vs_adadelta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_adam_vs_adadelta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
