# Empty compiler generated dependencies file for fig9_adam_vs_adadelta.
# This may be replaced when dependencies are built.
