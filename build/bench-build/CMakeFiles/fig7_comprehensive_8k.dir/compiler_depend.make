# Empty compiler generated dependencies file for fig7_comprehensive_8k.
# This may be replaced when dependencies are built.
