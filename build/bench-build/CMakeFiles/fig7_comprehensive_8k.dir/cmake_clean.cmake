file(REMOVE_RECURSE
  "../bench/fig7_comprehensive_8k"
  "../bench/fig7_comprehensive_8k.pdb"
  "CMakeFiles/fig7_comprehensive_8k.dir/fig7_comprehensive_8k.cpp.o"
  "CMakeFiles/fig7_comprehensive_8k.dir/fig7_comprehensive_8k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comprehensive_8k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
