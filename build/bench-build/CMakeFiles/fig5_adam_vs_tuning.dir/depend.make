# Empty dependencies file for fig5_adam_vs_tuning.
# This may be replaced when dependencies are built.
