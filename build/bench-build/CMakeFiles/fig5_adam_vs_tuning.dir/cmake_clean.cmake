file(REMOVE_RECURSE
  "../bench/fig5_adam_vs_tuning"
  "../bench/fig5_adam_vs_tuning.pdb"
  "CMakeFiles/fig5_adam_vs_tuning.dir/fig5_adam_vs_tuning.cpp.o"
  "CMakeFiles/fig5_adam_vs_tuning.dir/fig5_adam_vs_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_adam_vs_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
