# Empty dependencies file for fig6_legw_vs_adam.
# This may be replaced when dependencies are built.
