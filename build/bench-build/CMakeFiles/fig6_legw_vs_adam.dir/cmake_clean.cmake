file(REMOVE_RECURSE
  "../bench/fig6_legw_vs_adam"
  "../bench/fig6_legw_vs_adam.pdb"
  "CMakeFiles/fig6_legw_vs_adam.dir/fig6_legw_vs_adam.cpp.o"
  "CMakeFiles/fig6_legw_vs_adam.dir/fig6_legw_vs_adam.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_legw_vs_adam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
