# Empty dependencies file for legw_optim.
# This may be replaced when dependencies are built.
