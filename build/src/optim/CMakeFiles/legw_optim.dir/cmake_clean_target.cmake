file(REMOVE_RECURSE
  "liblegw_optim.a"
)
