file(REMOVE_RECURSE
  "CMakeFiles/legw_optim.dir/ema.cpp.o"
  "CMakeFiles/legw_optim.dir/ema.cpp.o.d"
  "CMakeFiles/legw_optim.dir/optimizer.cpp.o"
  "CMakeFiles/legw_optim.dir/optimizer.cpp.o.d"
  "liblegw_optim.a"
  "liblegw_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
