file(REMOVE_RECURSE
  "CMakeFiles/legw_train.dir/metrics.cpp.o"
  "CMakeFiles/legw_train.dir/metrics.cpp.o.d"
  "CMakeFiles/legw_train.dir/recorder.cpp.o"
  "CMakeFiles/legw_train.dir/recorder.cpp.o.d"
  "CMakeFiles/legw_train.dir/runners.cpp.o"
  "CMakeFiles/legw_train.dir/runners.cpp.o.d"
  "liblegw_train.a"
  "liblegw_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
