# Empty compiler generated dependencies file for legw_train.
# This may be replaced when dependencies are built.
