file(REMOVE_RECURSE
  "liblegw_train.a"
)
