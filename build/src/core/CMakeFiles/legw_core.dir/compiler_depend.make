# Empty compiler generated dependencies file for legw_core.
# This may be replaced when dependencies are built.
