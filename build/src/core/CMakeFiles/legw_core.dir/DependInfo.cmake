
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/flags.cpp" "src/core/CMakeFiles/legw_core.dir/flags.cpp.o" "gcc" "src/core/CMakeFiles/legw_core.dir/flags.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/core/CMakeFiles/legw_core.dir/kernels.cpp.o" "gcc" "src/core/CMakeFiles/legw_core.dir/kernels.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/core/CMakeFiles/legw_core.dir/tensor.cpp.o" "gcc" "src/core/CMakeFiles/legw_core.dir/tensor.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/core/CMakeFiles/legw_core.dir/thread_pool.cpp.o" "gcc" "src/core/CMakeFiles/legw_core.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
