file(REMOVE_RECURSE
  "CMakeFiles/legw_core.dir/flags.cpp.o"
  "CMakeFiles/legw_core.dir/flags.cpp.o.d"
  "CMakeFiles/legw_core.dir/kernels.cpp.o"
  "CMakeFiles/legw_core.dir/kernels.cpp.o.d"
  "CMakeFiles/legw_core.dir/tensor.cpp.o"
  "CMakeFiles/legw_core.dir/tensor.cpp.o.d"
  "CMakeFiles/legw_core.dir/thread_pool.cpp.o"
  "CMakeFiles/legw_core.dir/thread_pool.cpp.o.d"
  "liblegw_core.a"
  "liblegw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
