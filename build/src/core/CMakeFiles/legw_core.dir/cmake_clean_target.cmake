file(REMOVE_RECURSE
  "liblegw_core.a"
)
