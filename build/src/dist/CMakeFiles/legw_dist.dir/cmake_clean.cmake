file(REMOVE_RECURSE
  "CMakeFiles/legw_dist.dir/allreduce.cpp.o"
  "CMakeFiles/legw_dist.dir/allreduce.cpp.o.d"
  "CMakeFiles/legw_dist.dir/cluster_model.cpp.o"
  "CMakeFiles/legw_dist.dir/cluster_model.cpp.o.d"
  "CMakeFiles/legw_dist.dir/compression.cpp.o"
  "CMakeFiles/legw_dist.dir/compression.cpp.o.d"
  "CMakeFiles/legw_dist.dir/data_parallel.cpp.o"
  "CMakeFiles/legw_dist.dir/data_parallel.cpp.o.d"
  "liblegw_dist.a"
  "liblegw_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
