file(REMOVE_RECURSE
  "liblegw_dist.a"
)
