# Empty compiler generated dependencies file for legw_dist.
# This may be replaced when dependencies are built.
