
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/allreduce.cpp" "src/dist/CMakeFiles/legw_dist.dir/allreduce.cpp.o" "gcc" "src/dist/CMakeFiles/legw_dist.dir/allreduce.cpp.o.d"
  "/root/repo/src/dist/cluster_model.cpp" "src/dist/CMakeFiles/legw_dist.dir/cluster_model.cpp.o" "gcc" "src/dist/CMakeFiles/legw_dist.dir/cluster_model.cpp.o.d"
  "/root/repo/src/dist/compression.cpp" "src/dist/CMakeFiles/legw_dist.dir/compression.cpp.o" "gcc" "src/dist/CMakeFiles/legw_dist.dir/compression.cpp.o.d"
  "/root/repo/src/dist/data_parallel.cpp" "src/dist/CMakeFiles/legw_dist.dir/data_parallel.cpp.o" "gcc" "src/dist/CMakeFiles/legw_dist.dir/data_parallel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
