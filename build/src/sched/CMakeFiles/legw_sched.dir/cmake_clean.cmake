file(REMOVE_RECURSE
  "CMakeFiles/legw_sched.dir/batch_schedule.cpp.o"
  "CMakeFiles/legw_sched.dir/batch_schedule.cpp.o.d"
  "CMakeFiles/legw_sched.dir/legw.cpp.o"
  "CMakeFiles/legw_sched.dir/legw.cpp.o.d"
  "CMakeFiles/legw_sched.dir/schedule.cpp.o"
  "CMakeFiles/legw_sched.dir/schedule.cpp.o.d"
  "liblegw_sched.a"
  "liblegw_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
