# Empty dependencies file for legw_sched.
# This may be replaced when dependencies are built.
