file(REMOVE_RECURSE
  "liblegw_sched.a"
)
