file(REMOVE_RECURSE
  "CMakeFiles/legw_models.dir/gnmt.cpp.o"
  "CMakeFiles/legw_models.dir/gnmt.cpp.o.d"
  "CMakeFiles/legw_models.dir/mnist_lstm.cpp.o"
  "CMakeFiles/legw_models.dir/mnist_lstm.cpp.o.d"
  "CMakeFiles/legw_models.dir/ptb_model.cpp.o"
  "CMakeFiles/legw_models.dir/ptb_model.cpp.o.d"
  "CMakeFiles/legw_models.dir/resnet.cpp.o"
  "CMakeFiles/legw_models.dir/resnet.cpp.o.d"
  "liblegw_models.a"
  "liblegw_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
