file(REMOVE_RECURSE
  "liblegw_models.a"
)
