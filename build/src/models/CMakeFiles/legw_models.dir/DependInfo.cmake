
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/gnmt.cpp" "src/models/CMakeFiles/legw_models.dir/gnmt.cpp.o" "gcc" "src/models/CMakeFiles/legw_models.dir/gnmt.cpp.o.d"
  "/root/repo/src/models/mnist_lstm.cpp" "src/models/CMakeFiles/legw_models.dir/mnist_lstm.cpp.o" "gcc" "src/models/CMakeFiles/legw_models.dir/mnist_lstm.cpp.o.d"
  "/root/repo/src/models/ptb_model.cpp" "src/models/CMakeFiles/legw_models.dir/ptb_model.cpp.o" "gcc" "src/models/CMakeFiles/legw_models.dir/ptb_model.cpp.o.d"
  "/root/repo/src/models/resnet.cpp" "src/models/CMakeFiles/legw_models.dir/resnet.cpp.o" "gcc" "src/models/CMakeFiles/legw_models.dir/resnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/legw_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/legw_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ag/CMakeFiles/legw_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
