# Empty compiler generated dependencies file for legw_models.
# This may be replaced when dependencies are built.
