
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ag/gradcheck.cpp" "src/ag/CMakeFiles/legw_ag.dir/gradcheck.cpp.o" "gcc" "src/ag/CMakeFiles/legw_ag.dir/gradcheck.cpp.o.d"
  "/root/repo/src/ag/ops.cpp" "src/ag/CMakeFiles/legw_ag.dir/ops.cpp.o" "gcc" "src/ag/CMakeFiles/legw_ag.dir/ops.cpp.o.d"
  "/root/repo/src/ag/ops_conv.cpp" "src/ag/CMakeFiles/legw_ag.dir/ops_conv.cpp.o" "gcc" "src/ag/CMakeFiles/legw_ag.dir/ops_conv.cpp.o.d"
  "/root/repo/src/ag/ops_rnn.cpp" "src/ag/CMakeFiles/legw_ag.dir/ops_rnn.cpp.o" "gcc" "src/ag/CMakeFiles/legw_ag.dir/ops_rnn.cpp.o.d"
  "/root/repo/src/ag/variable.cpp" "src/ag/CMakeFiles/legw_ag.dir/variable.cpp.o" "gcc" "src/ag/CMakeFiles/legw_ag.dir/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
