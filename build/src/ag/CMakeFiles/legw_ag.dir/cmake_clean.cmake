file(REMOVE_RECURSE
  "CMakeFiles/legw_ag.dir/gradcheck.cpp.o"
  "CMakeFiles/legw_ag.dir/gradcheck.cpp.o.d"
  "CMakeFiles/legw_ag.dir/ops.cpp.o"
  "CMakeFiles/legw_ag.dir/ops.cpp.o.d"
  "CMakeFiles/legw_ag.dir/ops_conv.cpp.o"
  "CMakeFiles/legw_ag.dir/ops_conv.cpp.o.d"
  "CMakeFiles/legw_ag.dir/ops_rnn.cpp.o"
  "CMakeFiles/legw_ag.dir/ops_rnn.cpp.o.d"
  "CMakeFiles/legw_ag.dir/variable.cpp.o"
  "CMakeFiles/legw_ag.dir/variable.cpp.o.d"
  "liblegw_ag.a"
  "liblegw_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
