# Empty compiler generated dependencies file for legw_ag.
# This may be replaced when dependencies are built.
