file(REMOVE_RECURSE
  "liblegw_ag.a"
)
