
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/corpus.cpp" "src/data/CMakeFiles/legw_data.dir/corpus.cpp.o" "gcc" "src/data/CMakeFiles/legw_data.dir/corpus.cpp.o.d"
  "/root/repo/src/data/images.cpp" "src/data/CMakeFiles/legw_data.dir/images.cpp.o" "gcc" "src/data/CMakeFiles/legw_data.dir/images.cpp.o.d"
  "/root/repo/src/data/loaders.cpp" "src/data/CMakeFiles/legw_data.dir/loaders.cpp.o" "gcc" "src/data/CMakeFiles/legw_data.dir/loaders.cpp.o.d"
  "/root/repo/src/data/synthetic_mnist.cpp" "src/data/CMakeFiles/legw_data.dir/synthetic_mnist.cpp.o" "gcc" "src/data/CMakeFiles/legw_data.dir/synthetic_mnist.cpp.o.d"
  "/root/repo/src/data/translation.cpp" "src/data/CMakeFiles/legw_data.dir/translation.cpp.o" "gcc" "src/data/CMakeFiles/legw_data.dir/translation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
