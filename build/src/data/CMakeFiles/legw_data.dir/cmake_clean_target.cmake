file(REMOVE_RECURSE
  "liblegw_data.a"
)
