# Empty dependencies file for legw_data.
# This may be replaced when dependencies are built.
