file(REMOVE_RECURSE
  "CMakeFiles/legw_data.dir/corpus.cpp.o"
  "CMakeFiles/legw_data.dir/corpus.cpp.o.d"
  "CMakeFiles/legw_data.dir/images.cpp.o"
  "CMakeFiles/legw_data.dir/images.cpp.o.d"
  "CMakeFiles/legw_data.dir/loaders.cpp.o"
  "CMakeFiles/legw_data.dir/loaders.cpp.o.d"
  "CMakeFiles/legw_data.dir/synthetic_mnist.cpp.o"
  "CMakeFiles/legw_data.dir/synthetic_mnist.cpp.o.d"
  "CMakeFiles/legw_data.dir/translation.cpp.o"
  "CMakeFiles/legw_data.dir/translation.cpp.o.d"
  "liblegw_data.a"
  "liblegw_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
