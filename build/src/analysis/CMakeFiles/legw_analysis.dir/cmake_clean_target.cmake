file(REMOVE_RECURSE
  "liblegw_analysis.a"
)
