# Empty compiler generated dependencies file for legw_analysis.
# This may be replaced when dependencies are built.
