
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/curvature.cpp" "src/analysis/CMakeFiles/legw_analysis.dir/curvature.cpp.o" "gcc" "src/analysis/CMakeFiles/legw_analysis.dir/curvature.cpp.o.d"
  "/root/repo/src/analysis/gradient_noise.cpp" "src/analysis/CMakeFiles/legw_analysis.dir/gradient_noise.cpp.o" "gcc" "src/analysis/CMakeFiles/legw_analysis.dir/gradient_noise.cpp.o.d"
  "/root/repo/src/analysis/lipschitz.cpp" "src/analysis/CMakeFiles/legw_analysis.dir/lipschitz.cpp.o" "gcc" "src/analysis/CMakeFiles/legw_analysis.dir/lipschitz.cpp.o.d"
  "/root/repo/src/analysis/lr_finder.cpp" "src/analysis/CMakeFiles/legw_analysis.dir/lr_finder.cpp.o" "gcc" "src/analysis/CMakeFiles/legw_analysis.dir/lr_finder.cpp.o.d"
  "/root/repo/src/analysis/tuning.cpp" "src/analysis/CMakeFiles/legw_analysis.dir/tuning.cpp.o" "gcc" "src/analysis/CMakeFiles/legw_analysis.dir/tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ag/CMakeFiles/legw_ag.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/legw_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
