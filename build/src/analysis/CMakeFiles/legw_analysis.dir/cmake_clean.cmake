file(REMOVE_RECURSE
  "CMakeFiles/legw_analysis.dir/curvature.cpp.o"
  "CMakeFiles/legw_analysis.dir/curvature.cpp.o.d"
  "CMakeFiles/legw_analysis.dir/gradient_noise.cpp.o"
  "CMakeFiles/legw_analysis.dir/gradient_noise.cpp.o.d"
  "CMakeFiles/legw_analysis.dir/lipschitz.cpp.o"
  "CMakeFiles/legw_analysis.dir/lipschitz.cpp.o.d"
  "CMakeFiles/legw_analysis.dir/lr_finder.cpp.o"
  "CMakeFiles/legw_analysis.dir/lr_finder.cpp.o.d"
  "CMakeFiles/legw_analysis.dir/tuning.cpp.o"
  "CMakeFiles/legw_analysis.dir/tuning.cpp.o.d"
  "liblegw_analysis.a"
  "liblegw_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
