file(REMOVE_RECURSE
  "CMakeFiles/legw_nn.dir/attention.cpp.o"
  "CMakeFiles/legw_nn.dir/attention.cpp.o.d"
  "CMakeFiles/legw_nn.dir/conv.cpp.o"
  "CMakeFiles/legw_nn.dir/conv.cpp.o.d"
  "CMakeFiles/legw_nn.dir/layers.cpp.o"
  "CMakeFiles/legw_nn.dir/layers.cpp.o.d"
  "CMakeFiles/legw_nn.dir/lstm.cpp.o"
  "CMakeFiles/legw_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/legw_nn.dir/module.cpp.o"
  "CMakeFiles/legw_nn.dir/module.cpp.o.d"
  "CMakeFiles/legw_nn.dir/serialize.cpp.o"
  "CMakeFiles/legw_nn.dir/serialize.cpp.o.d"
  "liblegw_nn.a"
  "liblegw_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legw_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
