file(REMOVE_RECURSE
  "liblegw_nn.a"
)
