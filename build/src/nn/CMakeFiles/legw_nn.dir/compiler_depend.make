# Empty compiler generated dependencies file for legw_nn.
# This may be replaced when dependencies are built.
