# Empty compiler generated dependencies file for noise_scale.
# This may be replaced when dependencies are built.
