file(REMOVE_RECURSE
  "CMakeFiles/noise_scale.dir/noise_scale.cpp.o"
  "CMakeFiles/noise_scale.dir/noise_scale.cpp.o.d"
  "noise_scale"
  "noise_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
