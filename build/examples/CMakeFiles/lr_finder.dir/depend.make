# Empty dependencies file for lr_finder.
# This may be replaced when dependencies are built.
