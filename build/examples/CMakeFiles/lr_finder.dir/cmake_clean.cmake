file(REMOVE_RECURSE
  "CMakeFiles/lr_finder.dir/lr_finder.cpp.o"
  "CMakeFiles/lr_finder.dir/lr_finder.cpp.o.d"
  "lr_finder"
  "lr_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lr_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
