// LSTM layers.
//
// LstmCellLayer wraps one fused ag::lstm_cell step (or, when use_fused is
// false or LEGW_LSTM=composed is set, an op-by-op composition of the same
// math — kept for gradient cross-checking). Lstm stacks layers over a
// sequence with optional
// inter-layer dropout; BiLstmLayer runs one layer in both directions and
// concatenates (GNMT's first encoder layer).
#pragma once

#include <utility>
#include <vector>

#include "ag/ops.hpp"
#include "nn/module.hpp"

namespace legw::nn {

// State of one LSTM layer for one batch: h and c, each [B, H].
struct LstmState {
  ag::Variable h;
  ag::Variable c;
};

class LstmCellLayer : public Module {
 public:
  LstmCellLayer(i64 input_dim, i64 hidden_dim, core::Rng& rng,
                float forget_bias = 1.0f, bool use_fused = true);

  // One step: x [B, input_dim], state (h, c) each [B, hidden_dim].
  LstmState step(const ag::Variable& x, const LstmState& state) const;

  // Fresh all-zero state for a batch (no gradient flows into it).
  LstmState zero_state(i64 batch) const;

  i64 input_dim() const { return input_dim_; }
  i64 hidden_dim() const { return hidden_dim_; }
  ag::Variable weight() const { return weight_; }
  ag::Variable bias() const { return bias_; }

 private:
  LstmState step_composed(const ag::Variable& x, const LstmState& state) const;

  i64 input_dim_;
  i64 hidden_dim_;
  bool use_fused_;
  ag::Variable weight_;  // [input+hidden, 4*hidden], gate order (i,f,g,o)
  ag::Variable bias_;    // [4*hidden]
};

// Multi-layer unidirectional LSTM over a sequence.
class Lstm : public Module {
 public:
  // dims: input_dim for layer 0, hidden_dim for every layer.
  Lstm(i64 input_dim, i64 hidden_dim, i64 num_layers, core::Rng& rng,
       float dropout = 0.0f, bool use_fused = true);

  struct Output {
    std::vector<ag::Variable> outputs;  // top-layer h per step, each [B, H]
    std::vector<LstmState> final_states;  // one per layer
  };

  // inputs: one [B, input_dim] Variable per time step. initial may be empty
  // (zero state). `rng` drives dropout masks (only touched in training mode).
  Output forward(const std::vector<ag::Variable>& inputs,
                 const std::vector<LstmState>& initial, core::Rng& rng) const;

  std::vector<LstmState> zero_state(i64 batch) const;

  i64 num_layers() const { return static_cast<i64>(layers_.size()); }
  i64 hidden_dim() const { return hidden_dim_; }
  const LstmCellLayer& layer(i64 i) const { return *layers_[static_cast<std::size_t>(i)]; }

 private:
  i64 hidden_dim_;
  float dropout_;
  std::vector<std::unique_ptr<LstmCellLayer>> layers_;
};

// Single bidirectional layer: concatenated forward/backward outputs, each
// step yields [B, 2*hidden_dim].
class BiLstmLayer : public Module {
 public:
  BiLstmLayer(i64 input_dim, i64 hidden_dim, core::Rng& rng,
              bool use_fused = true);

  std::vector<ag::Variable> forward(const std::vector<ag::Variable>& inputs) const;

  i64 hidden_dim() const { return fwd_->hidden_dim(); }

 private:
  std::unique_ptr<LstmCellLayer> fwd_;
  std::unique_ptr<LstmCellLayer> bwd_;
};

}  // namespace legw::nn
