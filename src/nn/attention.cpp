#include "nn/attention.hpp"

#include <cmath>

namespace legw::nn {

BahdanauAttention::BahdanauAttention(i64 query_dim, i64 key_dim, i64 attn_dim,
                                     core::Rng& rng)
    : attn_dim_(attn_dim) {
  LEGW_CHECK(query_dim > 0 && key_dim > 0 && attn_dim > 0,
             "BahdanauAttention: bad dims");
  w_query_ = register_parameter(
      "w_query", init::xavier_uniform({query_dim, attn_dim}, query_dim,
                                      attn_dim, rng));
  w_key_ = register_parameter(
      "w_key", init::xavier_uniform({key_dim, attn_dim}, key_dim, attn_dim,
                                    rng));
  bias_ = register_parameter("bias", core::Tensor::zeros({attn_dim}));
  v_ = register_parameter(
      "v", init::lecun_uniform({attn_dim}, attn_dim, rng));
  // Normalized Bahdanau initialises the gain at 1/sqrt(attn_dim), matching
  // the scale of an unnormalized dot with lecun-initialised v.
  g_ = register_parameter(
      "g", core::Tensor({1}, 1.0f / std::sqrt(static_cast<float>(attn_dim))));
}

BahdanauAttention::Keys BahdanauAttention::precompute(
    const std::vector<ag::Variable>& encoder_outputs) const {
  LEGW_CHECK(!encoder_outputs.empty(), "attention: empty encoder sequence");
  Keys keys;
  keys.raw = encoder_outputs;
  keys.projected.reserve(encoder_outputs.size());
  for (const auto& k : encoder_outputs) {
    keys.projected.push_back(ag::add_bias(ag::matmul(k, w_key_), bias_));
  }
  return keys;
}

BahdanauAttention::Result BahdanauAttention::attend(const ag::Variable& query,
                                                    const Keys& keys,
                                                    const ag::Variable& mask) const {
  const std::size_t T = keys.projected.size();
  ag::Variable q_proj = ag::matmul(query, w_query_);  // [B, attn]

  // Scaled unit direction: g * v / ||v||, reshaped to a column [attn, 1].
  ag::Variable v_unit = ag::normalize_vec(v_);
  ag::Variable v_col = ag::reshape(v_unit, {attn_dim_, 1});

  std::vector<ag::Variable> scores;
  scores.reserve(T);
  for (std::size_t t = 0; t < T; ++t) {
    ag::Variable e = ag::tanh(ag::add(q_proj, keys.projected[t]));
    ag::Variable s = ag::matmul(e, v_col);  // [B, 1]
    scores.push_back(s);
  }
  ag::Variable score_mat = ag::concat_cols(scores);  // [B, T]
  // Apply the scalar gain g before the softmax.
  ag::Variable g_scale = ag::reshape(g_, {1, 1});
  // score_mat * g: broadcast scalar — implement as mul_colvec-compatible
  // trick: scale by matmul with [1,1] is overkill; use elementwise via
  // repeated scalar from the graph. Simplest differentiable path: context
  // below uses weights = softmax(g * scores); build g*scores with mul of a
  // broadcasted matrix.
  ag::Variable ones =
      ag::Variable::constant(core::Tensor::ones({score_mat.size(0), 1}));
  ag::Variable g_col = ag::matmul(ones, g_scale);      // [B, 1] of g
  ag::Variable scaled = ag::mul_colvec(score_mat, g_col);
  if (mask.defined()) {
    LEGW_CHECK(mask.value().dim() == 2 &&
                   mask.size(0) == scaled.size(0) &&
                   mask.size(1) == scaled.size(1),
               "attention mask must be [B, T]");
    // penalty = -1e9 where mask == 0.
    core::Tensor penalty(mask.value().shape());
    for (i64 i = 0; i < penalty.numel(); ++i) {
      penalty[i] = mask.value()[i] > 0.5f ? 0.0f : -1e9f;
    }
    scaled = ag::add(scaled, ag::Variable::constant(std::move(penalty)));
  }
  ag::Variable weights = ag::softmax_rows(scaled);     // [B, T]

  // context = Σ_t weights[:, t] * raw_keys[t]
  ag::Variable context;
  for (std::size_t t = 0; t < T; ++t) {
    ag::Variable w_t =
        ag::slice_cols(weights, static_cast<i64>(t), static_cast<i64>(t) + 1);
    ag::Variable term = ag::mul_colvec(keys.raw[t], w_t);
    context = context.defined() ? ag::add(context, term) : term;
  }
  return Result{context, weights};
}

}  // namespace legw::nn
