// Normalized Bahdanau (additive) attention, the gnmt_v2 mechanism.
//
// score(q, k_t) = g * (v/||v||) · tanh(W_q q + W_k k_t + b)
// weights = softmax over t; context = Σ_t weights_t k_t.
//
// Keys (encoder outputs) are projected once per batch via precompute();
// each decoder step then costs one query projection plus T small ops.
#pragma once

#include <vector>

#include "ag/ops.hpp"
#include "nn/module.hpp"

namespace legw::nn {

class BahdanauAttention : public Module {
 public:
  // query_dim: decoder hidden size; key_dim: encoder output size;
  // attn_dim: the internal additive-attention width.
  BahdanauAttention(i64 query_dim, i64 key_dim, i64 attn_dim, core::Rng& rng);

  struct Keys {
    std::vector<ag::Variable> raw;        // encoder outputs, each [B, key_dim]
    std::vector<ag::Variable> projected;  // W_k k_t + b, each [B, attn_dim]
  };

  // Project encoder outputs once.
  Keys precompute(const std::vector<ag::Variable>& encoder_outputs) const;

  struct Result {
    ag::Variable context;  // [B, key_dim]
    ag::Variable weights;  // [B, T]
  };

  // One decoder step: query [B, query_dim] against the precomputed keys.
  // `mask` (optional) is a constant [B, T] matrix with 1 for valid source
  // positions and 0 for padding; masked positions receive a large negative
  // score so the softmax assigns them (numerically) zero weight.
  Result attend(const ag::Variable& query, const Keys& keys,
                const ag::Variable& mask = ag::Variable()) const;

  i64 attn_dim() const { return attn_dim_; }

 private:
  i64 attn_dim_;
  ag::Variable w_query_;  // [query_dim, attn_dim]
  ag::Variable w_key_;    // [key_dim, attn_dim]
  ag::Variable bias_;     // [attn_dim]
  ag::Variable v_;        // [attn_dim]
  ag::Variable g_;        // [1] scalar gain (normalized Bahdanau)
};

}  // namespace legw::nn
