#include "nn/layers.hpp"

namespace legw::nn {

Linear::Linear(i64 in_features, i64 out_features, core::Rng& rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  LEGW_CHECK(in_features > 0 && out_features > 0, "Linear: bad dimensions");
  weight_ = register_parameter(
      "weight", init::lecun_uniform({in_features, out_features}, in_features,
                                    rng));
  if (bias) {
    bias_ = register_parameter("bias",
                               core::Tensor::zeros({out_features}));
  }
}

ag::Variable Linear::forward(const ag::Variable& x) const {
  LEGW_CHECK(x.value().dim() == 2 && x.size(1) == in_features_,
             "Linear::forward: expected [B, " + std::to_string(in_features_) +
                 "], got " + core::shape_to_string(x.shape()));
  ag::Variable y = ag::matmul(x, weight_);
  if (bias_.defined()) y = ag::add_bias(y, bias_);
  return y;
}

Embedding::Embedding(i64 vocab, i64 dim, core::Rng& rng)
    : vocab_(vocab), dim_(dim) {
  LEGW_CHECK(vocab > 0 && dim > 0, "Embedding: bad dimensions");
  // N(0, 0.1): small enough that LSTM inputs start in the linear regime.
  weight_ = register_parameter("weight",
                               core::Tensor::randn({vocab, dim}, rng, 0.1f));
}

ag::Variable Embedding::forward(const std::vector<i32>& indices) const {
  return ag::embedding(weight_, indices);
}

}  // namespace legw::nn
