// Module base class: a named tree of parameters.
//
// Layers own their parameters as ag::Variable leaves (so the same storage is
// reused across steps and gradients accumulate into it). parameters() yields
// the flattened list the optimizers consume; named_parameters() adds
// dot-joined paths for debugging/serialisation.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ag/variable.hpp"
#include "core/rng.hpp"

namespace legw::nn {

struct NamedParam {
  std::string name;
  ag::Variable var;
};

// Non-trainable persistent state (BatchNorm running statistics): tensors the
// forward pass mutates outside the autograd tape, which must still travel in
// a full-state checkpoint. The pointer targets a member of the registering
// layer, so it stays valid for the module's lifetime.
struct NamedBuffer {
  std::string name;
  core::Tensor* tensor;
};

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable parameters in registration order, children included.
  std::vector<ag::Variable> parameters() const;
  std::vector<NamedParam> named_parameters(const std::string& prefix = "") const;

  // All registered non-trainable buffers, children included (same dot-joined
  // naming as named_parameters). Checkpointing walks this list.
  std::vector<NamedBuffer> named_buffers(const std::string& prefix = "") const;

  // Sum of numel over parameters().
  i64 num_parameters() const;

  void zero_grad();

  // Training/eval mode (affects dropout and batch norm). Propagates to
  // children.
  void set_training(bool training);
  bool is_training() const { return training_; }

 protected:
  // Registers and returns a trainable leaf.
  ag::Variable register_parameter(std::string name, core::Tensor init);
  // Registers a non-trainable buffer (not owned; `buffer` must be a member
  // field of the registering layer).
  void register_buffer(std::string name, core::Tensor* buffer);
  // Registers a child module (not owned; children are member fields).
  void register_child(std::string name, Module* child);

 private:
  std::vector<NamedParam> params_;
  std::vector<NamedBuffer> buffers_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

// --- initialisation helpers -------------------------------------------------
namespace init {
// U[-limit, limit] with limit = sqrt(6 / (fan_in + fan_out)).
core::Tensor xavier_uniform(core::Shape shape, i64 fan_in, i64 fan_out,
                            core::Rng& rng);
// U[-1/sqrt(fan_in), 1/sqrt(fan_in)] — the classic LSTM/linear default.
core::Tensor lecun_uniform(core::Shape shape, i64 fan_in, core::Rng& rng);
// N(0, sqrt(2/fan_in)) — He init for ReLU convolutions.
core::Tensor he_normal(core::Shape shape, i64 fan_in, core::Rng& rng);
}  // namespace init

}  // namespace legw::nn
