#include "nn/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

#include "core/io.hpp"

namespace legw::nn {

namespace {

constexpr char kMagic[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', 'T'};
constexpr u32 kVersion = 1;
// Caps that no legitimate checkpoint exceeds; header fields beyond them are
// bit flips or foreign data, not real sizes.
constexpr u32 kMaxNameLen = 1u << 16;
constexpr u64 kMaxNdim = 16;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

SerializeResult fail(SerializeStatus status, std::string message) {
  SerializeResult r;
  r.status = status;
  r.message = std::move(message);
  return r;
}

bool read_bytes(std::FILE* f, void* data, std::size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool read_pod(std::FILE* f, T* v) {
  return read_bytes(f, v, sizeof(T));
}

template <typename T>
void append_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

}  // namespace

const char* serialize_status_name(SerializeStatus s) {
  switch (s) {
    case SerializeStatus::kOk: return "ok";
    case SerializeStatus::kOpenFailed: return "open-failed";
    case SerializeStatus::kShortWrite: return "short-write";
    case SerializeStatus::kShortRead: return "short-read";
    case SerializeStatus::kBadMagic: return "bad-magic";
    case SerializeStatus::kBadVersion: return "bad-version";
    case SerializeStatus::kCountMismatch: return "count-mismatch";
    case SerializeStatus::kUnknownParam: return "unknown-param";
    case SerializeStatus::kShapeMismatch: return "shape-mismatch";
    case SerializeStatus::kMalformed: return "malformed";
  }
  return "unknown";
}

SerializeResult save_checkpoint(const Module& module, const std::string& path) {
  const auto params = module.named_parameters();
  std::string buf;
  buf.append(kMagic, sizeof kMagic);
  append_pod(buf, kVersion);
  append_pod(buf, static_cast<u64>(params.size()));
  for (const auto& p : params) {
    append_pod(buf, static_cast<u32>(p.name.size()));
    buf.append(p.name.data(), p.name.size());
    const core::Tensor& t = p.var.value();
    append_pod(buf, static_cast<u64>(t.dim()));
    for (i64 d = 0; d < t.dim(); ++d) append_pod(buf, t.size(d));
    buf.append(reinterpret_cast<const char*>(t.data()),
               static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  const core::Status st = core::atomic_write_file(path, buf);
  if (!st.ok()) {
    return fail(SerializeStatus::kShortWrite,
                "checkpoint: cannot write " + path + " (" + st.message() + ")");
  }
  return {};
}

SerializeResult load_checkpoint(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return fail(SerializeStatus::kOpenFailed,
                "checkpoint: cannot open " + path + " for reading");
  }

  char magic[8];
  if (!read_bytes(f.get(), magic, sizeof magic)) {
    return fail(SerializeStatus::kShortRead,
                "checkpoint: " + path + " truncated in header");
  }
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return fail(SerializeStatus::kBadMagic, "checkpoint: bad magic in " + path);
  }
  u32 version = 0;
  u64 n_entries = 0;
  if (!read_pod(f.get(), &version) || !read_pod(f.get(), &n_entries)) {
    return fail(SerializeStatus::kShortRead,
                "checkpoint: " + path + " truncated in header");
  }
  if (version != kVersion) {
    return fail(SerializeStatus::kBadVersion,
                "checkpoint: unsupported version " + std::to_string(version) +
                    " in " + path);
  }

  auto params = module.named_parameters();
  std::map<std::string, ag::Variable*> by_name;
  for (auto& p : params) by_name[p.name] = &p.var;
  if (n_entries != params.size()) {
    return fail(SerializeStatus::kCountMismatch,
                "checkpoint: parameter count mismatch (file has " +
                    std::to_string(n_entries) + ", module has " +
                    std::to_string(params.size()) + ")");
  }

  SerializeResult result;
  for (u64 e = 0; e < n_entries; ++e) {
    u32 name_len = 0;
    if (!read_pod(f.get(), &name_len)) {
      return fail(SerializeStatus::kShortRead,
                  "checkpoint: " + path + " truncated at entry " +
                      std::to_string(e));
    }
    if (name_len == 0 || name_len > kMaxNameLen) {
      return fail(SerializeStatus::kMalformed,
                  "checkpoint: implausible name length " +
                      std::to_string(name_len) + " in " + path);
    }
    std::string name(name_len, '\0');
    u64 ndim = 0;
    if (!read_bytes(f.get(), name.data(), name_len) ||
        !read_pod(f.get(), &ndim)) {
      return fail(SerializeStatus::kShortRead,
                  "checkpoint: " + path + " truncated at entry " +
                      std::to_string(e));
    }
    if (ndim > kMaxNdim) {
      return fail(SerializeStatus::kMalformed,
                  "checkpoint: implausible ndim " + std::to_string(ndim) +
                      " for '" + name + "' in " + path);
    }
    core::Shape shape(static_cast<std::size_t>(ndim));
    for (u64 d = 0; d < ndim; ++d) {
      if (!read_pod(f.get(), &shape[static_cast<std::size_t>(d)])) {
        return fail(SerializeStatus::kShortRead,
                    "checkpoint: " + path + " truncated in shape of '" + name +
                        "'");
      }
    }

    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      return fail(SerializeStatus::kUnknownParam,
                  "checkpoint: module has no parameter named '" + name + "'");
    }
    core::Tensor& dst = it->second->mutable_value();
    if (dst.shape() != shape) {
      return fail(SerializeStatus::kShapeMismatch,
                  "checkpoint: shape mismatch for '" + name + "': file " +
                      core::shape_to_string(shape) + " vs module " +
                      core::shape_to_string(dst.shape()));
    }
    if (!read_bytes(f.get(), dst.data(),
                    static_cast<std::size_t>(dst.numel()) * sizeof(float))) {
      return fail(SerializeStatus::kShortRead,
                  "checkpoint: " + path + " truncated in data of '" + name +
                      "'");
    }
    ++result.restored;
  }
  return result;
}

}  // namespace legw::nn
