#include "nn/serialize.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>

namespace legw::nn {

namespace {

constexpr char kMagic[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', 'T'};
constexpr u32 kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_bytes(std::FILE* f, const void* data, std::size_t n) {
  LEGW_CHECK(std::fwrite(data, 1, n, f) == n, "checkpoint: short write");
}

void read_bytes(std::FILE* f, void* data, std::size_t n) {
  LEGW_CHECK(std::fread(data, 1, n, f) == n, "checkpoint: short read");
}

template <typename T>
void write_pod(std::FILE* f, const T& v) {
  write_bytes(f, &v, sizeof(T));
}

template <typename T>
T read_pod(std::FILE* f) {
  T v;
  read_bytes(f, &v, sizeof(T));
  return v;
}

}  // namespace

void save_checkpoint(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  LEGW_CHECK(f != nullptr, "checkpoint: cannot open " + path + " for writing");

  const auto params = module.named_parameters();
  write_bytes(f.get(), kMagic, sizeof kMagic);
  write_pod(f.get(), kVersion);
  write_pod(f.get(), static_cast<u64>(params.size()));
  for (const auto& p : params) {
    write_pod(f.get(), static_cast<u32>(p.name.size()));
    write_bytes(f.get(), p.name.data(), p.name.size());
    const core::Tensor& t = p.var.value();
    write_pod(f.get(), static_cast<u64>(t.dim()));
    for (i64 d = 0; d < t.dim(); ++d) write_pod(f.get(), t.size(d));
    write_bytes(f.get(), t.data(),
                static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
}

i64 load_checkpoint(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  LEGW_CHECK(f != nullptr, "checkpoint: cannot open " + path + " for reading");

  char magic[8];
  read_bytes(f.get(), magic, sizeof magic);
  LEGW_CHECK(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
             "checkpoint: bad magic in " + path);
  const u32 version = read_pod<u32>(f.get());
  LEGW_CHECK(version == kVersion, "checkpoint: unsupported version");
  const u64 n_entries = read_pod<u64>(f.get());

  auto params = module.named_parameters();
  std::map<std::string, ag::Variable*> by_name;
  for (auto& p : params) by_name[p.name] = &p.var;
  LEGW_CHECK(n_entries == params.size(),
             "checkpoint: parameter count mismatch (file has " +
                 std::to_string(n_entries) + ", module has " +
                 std::to_string(params.size()) + ")");

  i64 restored = 0;
  for (u64 e = 0; e < n_entries; ++e) {
    const u32 name_len = read_pod<u32>(f.get());
    std::string name(name_len, '\0');
    read_bytes(f.get(), name.data(), name_len);
    const u64 ndim = read_pod<u64>(f.get());
    core::Shape shape(static_cast<std::size_t>(ndim));
    for (u64 d = 0; d < ndim; ++d) shape[static_cast<std::size_t>(d)] = read_pod<i64>(f.get());

    const auto it = by_name.find(name);
    LEGW_CHECK(it != by_name.end(),
               "checkpoint: module has no parameter named '" + name + "'");
    core::Tensor& dst = it->second->mutable_value();
    LEGW_CHECK(dst.shape() == shape,
               "checkpoint: shape mismatch for '" + name + "': file " +
                   core::shape_to_string(shape) + " vs module " +
                   core::shape_to_string(dst.shape()));
    read_bytes(f.get(), dst.data(),
               static_cast<std::size_t>(dst.numel()) * sizeof(float));
    ++restored;
  }
  return restored;
}

}  // namespace legw::nn
