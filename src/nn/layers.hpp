// Basic trainable layers: Linear and Embedding.
#pragma once

#include "ag/ops.hpp"
#include "nn/module.hpp"

namespace legw::nn {

// Fully-connected layer: y = x W + b, x: [B, in], y: [B, out].
class Linear : public Module {
 public:
  Linear(i64 in_features, i64 out_features, core::Rng& rng, bool bias = true);

  ag::Variable forward(const ag::Variable& x) const;

  i64 in_features() const { return in_features_; }
  i64 out_features() const { return out_features_; }
  ag::Variable weight() const { return weight_; }
  ag::Variable bias() const { return bias_; }

 private:
  i64 in_features_;
  i64 out_features_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out] or undefined
};

// Token embedding: rows of a [vocab, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(i64 vocab, i64 dim, core::Rng& rng);

  // indices -> [indices.size(), dim]
  ag::Variable forward(const std::vector<i32>& indices) const;

  i64 vocab() const { return vocab_; }
  i64 dim() const { return dim_; }
  ag::Variable weight() const { return weight_; }

 private:
  i64 vocab_;
  i64 dim_;
  ag::Variable weight_;
};

}  // namespace legw::nn
