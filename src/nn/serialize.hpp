// Checkpointing: save and restore a Module's named parameters (plus the
// optimizer-independent training position) in a simple self-describing
// binary format.
//
// Format (little-endian, version 1):
//   magic "LEGWCKPT" | u32 version | u64 n_entries
//   per entry: u32 name_len | name bytes | u64 ndim | i64 dims[ndim]
//              | float data[numel]
// Entries are matched to the module by name on load; shape mismatches or
// missing/extra entries are hard errors (a checkpoint is a contract).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace legw::nn {

// Writes every named parameter of `module` to `path`. Aborts on I/O error.
void save_checkpoint(const Module& module, const std::string& path);

// Loads parameter values into `module` (shapes must match exactly).
// Returns the number of parameters restored; aborts on any mismatch.
i64 load_checkpoint(Module& module, const std::string& path);

}  // namespace legw::nn
