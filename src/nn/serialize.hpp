// Checkpointing: save and restore a Module's named parameters in a simple
// self-describing binary format.
//
// Format (little-endian, version 1):
//   magic "LEGWCKPT" | u32 version | u64 n_entries
//   per entry: u32 name_len | name bytes | u64 ndim | i64 dims[ndim]
//              | float data[numel]
// Entries are matched to the module by name on load; shape mismatches or
// missing/extra entries are errors (a checkpoint is a contract).
//
// All failures — I/O (cannot open, short read/write) and format (bad magic,
// unsupported version, shape/name/count mismatch) — come back as a
// SerializeResult, never an abort: a training loop must be able to survive a
// torn or foreign file and fall back to an older checkpoint. The full
// training-state subsystem in ckpt/checkpoint.hpp builds on this layer (its
// v2 container embeds the same per-tensor entry encoding and reads v1 files
// for parameter-only restores).
#pragma once

#include <string>

#include "nn/module.hpp"

namespace legw::nn {

enum class SerializeStatus {
  kOk,
  kOpenFailed,      // cannot open the file for reading/writing
  kShortWrite,      // write or atomic publication failed
  kShortRead,       // file ends before the declared content (truncation)
  kBadMagic,        // not a LEGWCKPT file
  kBadVersion,      // version newer than this reader
  kCountMismatch,   // file entry count != module parameter count
  kUnknownParam,    // file names a parameter the module does not have
  kShapeMismatch,   // entry shape != module parameter shape
  kMalformed,       // implausible lengths (bit-flipped header fields)
};

const char* serialize_status_name(SerializeStatus s);

struct [[nodiscard]] SerializeResult {
  SerializeStatus status = SerializeStatus::kOk;
  std::string message;  // empty when ok
  i64 restored = 0;     // parameters restored (load only)
  bool ok() const { return status == SerializeStatus::kOk; }
};

// Writes every named parameter of `module` to `path` atomically
// (tmp + fsync + rename via core::AtomicFile): a crash mid-save never
// corrupts an existing checkpoint at `path`.
[[nodiscard]] SerializeResult save_checkpoint(const Module& module,
                                              const std::string& path);

// Loads parameter values into `module` (matched by name; shapes must match
// exactly). On error the module may be partially updated with the entries
// that decoded cleanly before the failure — callers needing all-or-nothing
// semantics should use ckpt::load, which parses and validates the whole file
// in memory before touching any live tensor.
[[nodiscard]] SerializeResult load_checkpoint(Module& module,
                                              const std::string& path);

}  // namespace legw::nn
