#include "nn/conv.hpp"

namespace legw::nn {

Conv2d::Conv2d(i64 in_channels, i64 out_channels, i64 kernel, i64 stride,
               i64 pad, core::Rng& rng, bool bias)
    : out_channels_(out_channels), stride_(stride), pad_(pad) {
  LEGW_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
             "Conv2d: bad dimensions");
  const i64 fan_in = in_channels * kernel * kernel;
  weight_ = register_parameter(
      "weight",
      init::he_normal({out_channels, in_channels, kernel, kernel}, fan_in,
                      rng));
  if (bias) {
    bias_ = register_parameter("bias", core::Tensor::zeros({out_channels}));
  }
}

ag::Variable Conv2d::forward(const ag::Variable& x) const {
  return ag::conv2d(x, weight_, bias_, stride_, pad_);
}

BatchNorm2d::BatchNorm2d(i64 channels)
    : running_mean_(core::Tensor::zeros({channels})),
      running_var_(core::Tensor::ones({channels})) {
  gamma_ = register_parameter("gamma", core::Tensor::ones({channels}));
  beta_ = register_parameter("beta", core::Tensor::zeros({channels}));
  register_buffer("running_mean", &running_mean_);
  register_buffer("running_var", &running_var_);
}

ag::Variable BatchNorm2d::forward(const ag::Variable& x) {
  return ag::batch_norm2d(x, gamma_, beta_, running_mean_, running_var_,
                          is_training());
}

}  // namespace legw::nn
