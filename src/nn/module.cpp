#include "nn/module.hpp"

#include <cmath>

namespace legw::nn {

std::vector<ag::Variable> Module::parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& p : params_) out.push_back(p.var);
  for (const auto& [name, child] : children_) {
    auto sub = child->parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<NamedParam> Module::named_parameters(
    const std::string& prefix) const {
  std::vector<NamedParam> out;
  for (const auto& p : params_) {
    out.push_back({prefix.empty() ? p.name : prefix + "." + p.name, p.var});
  }
  for (const auto& [name, child] : children_) {
    auto sub = child->named_parameters(prefix.empty() ? name
                                                      : prefix + "." + name);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<NamedBuffer> Module::named_buffers(const std::string& prefix) const {
  std::vector<NamedBuffer> out;
  for (const auto& b : buffers_) {
    out.push_back({prefix.empty() ? b.name : prefix + "." + b.name, b.tensor});
  }
  for (const auto& [name, child] : children_) {
    auto sub =
        child->named_buffers(prefix.empty() ? name : prefix + "." + name);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

i64 Module::num_parameters() const {
  i64 n = 0;
  for (const auto& v : parameters()) n += v.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& v : parameters()) v.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

ag::Variable Module::register_parameter(std::string name, core::Tensor init) {
  auto var = ag::Variable::leaf(std::move(init), /*requires_grad=*/true);
  params_.push_back({std::move(name), var});
  return var;
}

void Module::register_buffer(std::string name, core::Tensor* buffer) {
  LEGW_CHECK(buffer != nullptr, "register_buffer: null buffer");
  buffers_.push_back({std::move(name), buffer});
}

void Module::register_child(std::string name, Module* child) {
  LEGW_CHECK(child != nullptr, "register_child: null child");
  children_.emplace_back(std::move(name), child);
}

namespace init {

core::Tensor xavier_uniform(core::Shape shape, i64 fan_in, i64 fan_out,
                            core::Rng& rng) {
  const float limit =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return core::Tensor::rand_uniform(std::move(shape), rng, -limit, limit);
}

core::Tensor lecun_uniform(core::Shape shape, i64 fan_in, core::Rng& rng) {
  const float limit = 1.0f / std::sqrt(static_cast<float>(fan_in));
  return core::Tensor::rand_uniform(std::move(shape), rng, -limit, limit);
}

core::Tensor he_normal(core::Shape shape, i64 fan_in, core::Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return core::Tensor::randn(std::move(shape), rng, stddev);
}

}  // namespace init

}  // namespace legw::nn
