#include "nn/lstm.hpp"

#include <algorithm>

#include "core/flags.hpp"

namespace legw::nn {

LstmCellLayer::LstmCellLayer(i64 input_dim, i64 hidden_dim, core::Rng& rng,
                             float forget_bias, bool use_fused)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      // LEGW_LSTM=composed forces the op-composed reference path process-wide
      // (A/B debugging); a caller's explicit use_fused=false always wins.
      use_fused_(use_fused && core::fused_lstm_enabled()) {
  LEGW_CHECK(input_dim > 0 && hidden_dim > 0, "LstmCellLayer: bad dims");
  weight_ = register_parameter(
      "weight", init::lecun_uniform({input_dim + hidden_dim, 4 * hidden_dim},
                                    input_dim + hidden_dim, rng));
  core::Tensor b = core::Tensor::zeros({4 * hidden_dim});
  // Positive forget-gate bias keeps early gradients flowing through time.
  for (i64 j = hidden_dim; j < 2 * hidden_dim; ++j) b[j] = forget_bias;
  bias_ = register_parameter("bias", std::move(b));
}

LstmState LstmCellLayer::step(const ag::Variable& x,
                              const LstmState& state) const {
  if (!use_fused_) return step_composed(x, state);
  ag::Variable hc = ag::lstm_cell(x, state.h, state.c, weight_, bias_);
  return LstmState{ag::slice_cols(hc, 0, hidden_dim_),
                   ag::slice_cols(hc, hidden_dim_, 2 * hidden_dim_)};
}

LstmState LstmCellLayer::step_composed(const ag::Variable& x,
                                       const LstmState& state) const {
  // Identical math as the fused op, built from primitive ops. Kept as the
  // reference implementation for gradient cross-checks.
  ag::Variable xh = ag::concat_cols({x, state.h});
  ag::Variable z = ag::add_bias(ag::matmul(xh, weight_), bias_);
  const i64 h = hidden_dim_;
  ag::Variable gi = ag::sigmoid(ag::slice_cols(z, 0, h));
  ag::Variable gf = ag::sigmoid(ag::slice_cols(z, h, 2 * h));
  ag::Variable gg = ag::tanh(ag::slice_cols(z, 2 * h, 3 * h));
  ag::Variable go = ag::sigmoid(ag::slice_cols(z, 3 * h, 4 * h));
  ag::Variable c_new = ag::add(ag::mul(gf, state.c), ag::mul(gi, gg));
  ag::Variable h_new = ag::mul(go, ag::tanh(c_new));
  return LstmState{h_new, c_new};
}

LstmState LstmCellLayer::zero_state(i64 batch) const {
  return LstmState{
      ag::Variable::constant(core::Tensor::zeros({batch, hidden_dim_})),
      ag::Variable::constant(core::Tensor::zeros({batch, hidden_dim_}))};
}

Lstm::Lstm(i64 input_dim, i64 hidden_dim, i64 num_layers, core::Rng& rng,
           float dropout, bool use_fused)
    : hidden_dim_(hidden_dim), dropout_(dropout) {
  LEGW_CHECK(num_layers >= 1, "Lstm: need at least one layer");
  for (i64 l = 0; l < num_layers; ++l) {
    const i64 in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(std::make_unique<LstmCellLayer>(in, hidden_dim, rng,
                                                      1.0f, use_fused));
    register_child("layer" + std::to_string(l), layers_.back().get());
  }
}

Lstm::Output Lstm::forward(const std::vector<ag::Variable>& inputs,
                           const std::vector<LstmState>& initial,
                           core::Rng& rng) const {
  LEGW_CHECK(!inputs.empty(), "Lstm::forward: empty input sequence");
  const i64 batch = inputs[0].size(0);
  std::vector<LstmState> states =
      initial.empty() ? zero_state(batch) : initial;
  LEGW_CHECK(static_cast<i64>(states.size()) == num_layers(),
             "Lstm::forward: one initial state per layer required");

  Output out;
  out.outputs.reserve(inputs.size());
  for (const auto& x_t : inputs) {
    ag::Variable h = x_t;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      states[l] = layers_[l]->step(h, states[l]);
      h = states[l].h;
      // Inter-layer dropout (not after the top layer), as in the PTB setup.
      if (dropout_ > 0.0f && l + 1 < layers_.size()) {
        h = ag::dropout(h, dropout_, rng, is_training());
      }
    }
    out.outputs.push_back(h);
  }
  out.final_states = std::move(states);
  return out;
}

std::vector<LstmState> Lstm::zero_state(i64 batch) const {
  std::vector<LstmState> states;
  states.reserve(layers_.size());
  for (const auto& layer : layers_) states.push_back(layer->zero_state(batch));
  return states;
}

BiLstmLayer::BiLstmLayer(i64 input_dim, i64 hidden_dim, core::Rng& rng,
                         bool use_fused) {
  fwd_ = std::make_unique<LstmCellLayer>(input_dim, hidden_dim, rng, 1.0f,
                                         use_fused);
  bwd_ = std::make_unique<LstmCellLayer>(input_dim, hidden_dim, rng, 1.0f,
                                         use_fused);
  register_child("fwd", fwd_.get());
  register_child("bwd", bwd_.get());
}

std::vector<ag::Variable> BiLstmLayer::forward(
    const std::vector<ag::Variable>& inputs) const {
  LEGW_CHECK(!inputs.empty(), "BiLstmLayer::forward: empty sequence");
  const i64 batch = inputs[0].size(0);
  const std::size_t T = inputs.size();

  std::vector<ag::Variable> fwd_out(T);
  LstmState sf = fwd_->zero_state(batch);
  for (std::size_t t = 0; t < T; ++t) {
    sf = fwd_->step(inputs[t], sf);
    fwd_out[t] = sf.h;
  }
  std::vector<ag::Variable> bwd_out(T);
  LstmState sb = bwd_->zero_state(batch);
  for (std::size_t t = T; t-- > 0;) {
    sb = bwd_->step(inputs[t], sb);
    bwd_out[t] = sb.h;
  }
  std::vector<ag::Variable> out(T);
  for (std::size_t t = 0; t < T; ++t) {
    out[t] = ag::concat_cols({fwd_out[t], bwd_out[t]});
  }
  return out;
}

}  // namespace legw::nn
