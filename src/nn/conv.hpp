// Convolutional layers for the residual CNN (ResNet stand-in).
#pragma once

#include "ag/ops.hpp"
#include "nn/module.hpp"

namespace legw::nn {

class Conv2d : public Module {
 public:
  Conv2d(i64 in_channels, i64 out_channels, i64 kernel, i64 stride, i64 pad,
         core::Rng& rng, bool bias = false);

  ag::Variable forward(const ag::Variable& x) const;

  i64 out_channels() const { return out_channels_; }

 private:
  i64 out_channels_;
  i64 stride_;
  i64 pad_;
  ag::Variable weight_;  // [Cout, Cin, k, k]
  ag::Variable bias_;    // [Cout] or undefined
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(i64 channels);

  // Uses batch statistics in training mode (and updates running stats);
  // running statistics in eval mode.
  ag::Variable forward(const ag::Variable& x);

  const core::Tensor& running_mean() const { return running_mean_; }
  const core::Tensor& running_var() const { return running_var_; }

 private:
  ag::Variable gamma_;
  ag::Variable beta_;
  core::Tensor running_mean_;
  core::Tensor running_var_;
};

}  // namespace legw::nn
