#include "models/resnet.hpp"

namespace legw::models {

ResNet::Block::Block(i64 in_ch, i64 out_ch, i64 stride, core::Rng& rng) {
  conv1 = std::make_unique<nn::Conv2d>(in_ch, out_ch, 3, stride, 1, rng);
  bn1 = std::make_unique<nn::BatchNorm2d>(out_ch);
  conv2 = std::make_unique<nn::Conv2d>(out_ch, out_ch, 3, 1, 1, rng);
  bn2 = std::make_unique<nn::BatchNorm2d>(out_ch);
  if (stride != 1 || in_ch != out_ch) {
    shortcut = std::make_unique<nn::Conv2d>(in_ch, out_ch, 1, stride, 0, rng);
    shortcut_bn = std::make_unique<nn::BatchNorm2d>(out_ch);
    register_child("shortcut", shortcut.get());
    register_child("shortcut_bn", shortcut_bn.get());
  }
  register_child("conv1", conv1.get());
  register_child("bn1", bn1.get());
  register_child("conv2", conv2.get());
  register_child("bn2", bn2.get());
}

ag::Variable ResNet::Block::forward(const ag::Variable& x) {
  ag::Variable y = ag::relu(bn1->forward(conv1->forward(x)));
  y = bn2->forward(conv2->forward(y));
  ag::Variable identity =
      shortcut ? shortcut_bn->forward(shortcut->forward(x)) : x;
  return ag::relu(ag::add(y, identity));
}

ResNet::ResNet(const ResNetConfig& config) : config_(config) {
  core::Rng rng(config.seed);
  stem_ = std::make_unique<nn::Conv2d>(config.in_channels, config.width, 3, 1,
                                       1, rng);
  stem_bn_ = std::make_unique<nn::BatchNorm2d>(config.width);
  register_child("stem", stem_.get());
  register_child("stem_bn", stem_bn_.get());

  i64 in_ch = config.width;
  for (i64 stage = 0; stage < 3; ++stage) {
    const i64 out_ch = config.width << stage;
    for (i64 b = 0; b < config.blocks_per_stage; ++b) {
      const i64 stride = (stage > 0 && b == 0) ? 2 : 1;
      blocks_.push_back(std::make_unique<Block>(in_ch, out_ch, stride, rng));
      register_child(
          "stage" + std::to_string(stage) + "_block" + std::to_string(b),
          blocks_.back().get());
      in_ch = out_ch;
    }
  }
  classifier_ = std::make_unique<nn::Linear>(in_ch, config.n_classes, rng);
  register_child("classifier", classifier_.get());
}

ag::Variable ResNet::forward(const core::Tensor& images) {
  LEGW_CHECK(images.dim() == 4, "ResNet: images must be [B,C,H,W]");
  ag::Variable x = ag::relu(
      stem_bn_->forward(stem_->forward(ag::Variable::constant(images))));
  for (auto& block : blocks_) x = block->forward(x);
  return classifier_->forward(ag::global_avg_pool(x));
}

ag::Variable ResNet::loss(const core::Tensor& images,
                          const std::vector<i32>& labels) {
  return ag::softmax_cross_entropy(forward(images), labels);
}

double ResNet::accuracy(const core::Tensor& images,
                        const std::vector<i32>& labels) {
  const bool was_training = is_training();
  set_training(false);
  ag::Variable logits = forward(images);
  set_training(was_training);
  const i64 batch = logits.size(0);
  const i64 classes = logits.size(1);
  i64 correct = 0;
  const float* lp = logits.value().data();
  for (i64 b = 0; b < batch; ++b) {
    i64 best = 0;
    for (i64 c = 1; c < classes; ++c) {
      if (lp[b * classes + c] > lp[b * classes + best]) best = c;
    }
    if (best == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace legw::models
