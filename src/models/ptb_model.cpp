#include "models/ptb_model.hpp"

#include <cmath>

#include "data/corpus.hpp"

namespace legw::models {

PtbConfig PtbConfig::small(i64 vocab) {
  PtbConfig c;
  c.vocab = vocab;
  c.embed_dim = 128;
  c.hidden_dim = 128;
  c.num_layers = 2;
  c.bptt_len = 20;
  c.dropout = 0.0f;
  return c;
}

PtbConfig PtbConfig::large(i64 vocab) {
  PtbConfig c;
  c.vocab = vocab;
  c.embed_dim = 256;
  c.hidden_dim = 256;
  c.num_layers = 2;
  c.bptt_len = 35;
  c.dropout = 0.15f;
  return c;
}

PtbModel::PtbModel(const PtbConfig& config) : config_(config) {
  core::Rng rng(config.seed);
  embedding_ = std::make_unique<nn::Embedding>(config.vocab, config.embed_dim,
                                               rng);
  lstm_ = std::make_unique<nn::Lstm>(config.embed_dim, config.hidden_dim,
                                     config.num_layers, rng, config.dropout);
  register_child("embedding", embedding_.get());
  register_child("lstm", lstm_.get());
  if (config.tie_embeddings) {
    LEGW_CHECK(config.embed_dim == config.hidden_dim,
               "tie_embeddings requires embed_dim == hidden_dim");
    tied_bias_ = register_parameter("tied_bias",
                                    core::Tensor::zeros({config.vocab}));
  } else {
    decoder_ = std::make_unique<nn::Linear>(config.hidden_dim, config.vocab,
                                            rng);
    register_child("decoder", decoder_.get());
  }
}

PtbModel::CarriedState PtbModel::zero_carried(i64 batch) const {
  CarriedState s;
  for (i64 l = 0; l < config_.num_layers; ++l) {
    s.h.push_back(core::Tensor::zeros({batch, config_.hidden_dim}));
    s.c.push_back(core::Tensor::zeros({batch, config_.hidden_dim}));
  }
  return s;
}

PtbModel::ChunkResult PtbModel::chunk_loss(const std::vector<i32>& inputs,
                                           const std::vector<i32>& targets,
                                           i64 batch, i64 bptt,
                                           const CarriedState& carried,
                                           core::Rng& dropout_rng) const {
  LEGW_CHECK(static_cast<i64>(inputs.size()) == batch * bptt &&
                 static_cast<i64>(targets.size()) == batch * bptt,
             "chunk_loss: token counts must be batch*bptt");
  LEGW_CHECK(static_cast<i64>(carried.h.size()) == config_.num_layers,
             "chunk_loss: carried state layer count mismatch");

  // Initial states from the carried tensors (constants: truncated BPTT).
  std::vector<nn::LstmState> init;
  init.reserve(static_cast<std::size_t>(config_.num_layers));
  for (i64 l = 0; l < config_.num_layers; ++l) {
    init.push_back(nn::LstmState{
        ag::Variable::constant(carried.h[static_cast<std::size_t>(l)]),
        ag::Variable::constant(carried.c[static_cast<std::size_t>(l)])});
  }

  // Per-step token columns.
  std::vector<ag::Variable> steps;
  steps.reserve(static_cast<std::size_t>(bptt));
  for (i64 t = 0; t < bptt; ++t) {
    std::vector<i32> column(static_cast<std::size_t>(batch));
    for (i64 b = 0; b < batch; ++b) {
      column[static_cast<std::size_t>(b)] =
          inputs[static_cast<std::size_t>(b * bptt + t)];
    }
    steps.push_back(embedding_->forward(column));
  }

  nn::Lstm::Output out = lstm_->forward(steps, init, dropout_rng);

  // Stack top-layer outputs into [batch*bptt, H] (step-major) and align the
  // targets the same way.
  ag::Variable stacked = ag::concat_rows(out.outputs);
  std::vector<i32> aligned(static_cast<std::size_t>(batch * bptt));
  for (i64 t = 0; t < bptt; ++t) {
    for (i64 b = 0; b < batch; ++b) {
      aligned[static_cast<std::size_t>(t * batch + b)] =
          targets[static_cast<std::size_t>(b * bptt + t)];
    }
  }
  // Tied softmax shares the embedding matrix: logits = h E^T + b.
  ag::Variable logits =
      config_.tie_embeddings
          ? ag::add_bias(ag::matmul(stacked, embedding_->weight(),
                                    /*trans_a=*/false, /*trans_b=*/true),
                         tied_bias_)
          : decoder_->forward(stacked);
  ChunkResult result;
  result.loss = ag::softmax_cross_entropy(logits, aligned);

  for (const auto& s : out.final_states) {
    result.carried.h.push_back(s.h.value());  // copies detach from the graph
    result.carried.c.push_back(s.c.value());
  }
  return result;
}

core::Tensor PtbModel::sequence_logits(const std::vector<i32>& tokens) const {
  const i64 bptt = static_cast<i64>(tokens.size());
  LEGW_CHECK(bptt > 0, "sequence_logits: empty token sequence");

  CarriedState carried = zero_carried(1);
  std::vector<nn::LstmState> init;
  init.reserve(static_cast<std::size_t>(config_.num_layers));
  for (i64 l = 0; l < config_.num_layers; ++l) {
    init.push_back(nn::LstmState{
        ag::Variable::constant(carried.h[static_cast<std::size_t>(l)]),
        ag::Variable::constant(carried.c[static_cast<std::size_t>(l)])});
  }

  std::vector<ag::Variable> steps;
  steps.reserve(tokens.size());
  for (i32 token : tokens) {
    steps.push_back(embedding_->forward({token}));
  }

  const bool was_training = is_training();
  const_cast<PtbModel*>(this)->set_training(false);
  core::Rng rng(0);  // eval mode: dropout inactive, rng unused
  nn::Lstm::Output out = lstm_->forward(steps, init, rng);
  ag::Variable stacked = ag::concat_rows(out.outputs);
  ag::Variable logits =
      config_.tie_embeddings
          ? ag::add_bias(ag::matmul(stacked, embedding_->weight(),
                                    /*trans_a=*/false, /*trans_b=*/true),
                         tied_bias_)
          : decoder_->forward(stacked);
  const_cast<PtbModel*>(this)->set_training(was_training);
  return logits.value();  // copies detach from the graph
}

double PtbModel::evaluate_nll(const std::vector<i32>& tokens, i64 batch,
                              i64 bptt) const {
  data::BpttBatcher batcher(tokens, batch, bptt);
  CarriedState carried = zero_carried(batch);
  core::Rng rng(0);  // eval mode: dropout inactive, rng unused
  double total = 0.0;
  i64 chunks = 0;
  const_cast<PtbModel*>(this)->set_training(false);
  for (i64 i = 0; i < batcher.chunks_per_epoch(); ++i) {
    auto chunk = batcher.next_chunk();
    ChunkResult r = chunk_loss(chunk.inputs, chunk.targets, batch, bptt,
                               carried, rng);
    carried = std::move(r.carried);
    total += static_cast<double>(r.loss.value()[0]);
    ++chunks;
  }
  const_cast<PtbModel*>(this)->set_training(true);
  return chunks > 0 ? total / chunks : 0.0;
}

}  // namespace legw::models
