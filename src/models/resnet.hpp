// Residual CNN (ResNet-50/ImageNet stand-in for the LARS+LEGW experiments,
// Table 3 / Figure 1). Classic CIFAR-style ResNet: 3x3 stem, three stages of
// pre-activation-free basic blocks at {width, 2w, 4w} channels with stride-2
// transitions, global average pooling and a linear classifier.
#pragma once

#include <memory>
#include <vector>

#include "nn/conv.hpp"
#include "nn/layers.hpp"

namespace legw::models {

struct ResNetConfig {
  i64 in_channels = 3;
  i64 image_size = 16;
  i64 n_classes = 10;
  i64 width = 8;            // stage widths: width, 2*width, 4*width
  i64 blocks_per_stage = 1;
  u64 seed = 31;
};

class ResNet : public nn::Module {
 public:
  explicit ResNet(const ResNetConfig& config);

  // images: [B, C, H, W] -> logits [B, n_classes].
  ag::Variable forward(const core::Tensor& images);
  ag::Variable loss(const core::Tensor& images, const std::vector<i32>& labels);
  double accuracy(const core::Tensor& images, const std::vector<i32>& labels);

  const ResNetConfig& config() const { return config_; }

 private:
  // One basic residual block: conv-bn-relu-conv-bn (+ projection shortcut on
  // stride/width changes), relu after the sum.
  struct Block : nn::Module {
    Block(i64 in_ch, i64 out_ch, i64 stride, core::Rng& rng);
    ag::Variable forward(const ag::Variable& x);

    std::unique_ptr<nn::Conv2d> conv1;
    std::unique_ptr<nn::BatchNorm2d> bn1;
    std::unique_ptr<nn::Conv2d> conv2;
    std::unique_ptr<nn::BatchNorm2d> bn2;
    std::unique_ptr<nn::Conv2d> shortcut;      // 1x1 when shape changes
    std::unique_ptr<nn::BatchNorm2d> shortcut_bn;
  };

  ResNetConfig config_;
  std::unique_ptr<nn::Conv2d> stem_;
  std::unique_ptr<nn::BatchNorm2d> stem_bn_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace legw::models
