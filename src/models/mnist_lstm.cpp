#include "models/mnist_lstm.hpp"

#include <algorithm>

namespace legw::models {

MnistLstm::MnistLstm(const MnistLstmConfig& config) : config_(config) {
  core::Rng rng(config.seed);
  transform_ = std::make_unique<nn::Linear>(config.n_cols,
                                            config.transform_dim, rng);
  cell_ = std::make_unique<nn::LstmCellLayer>(config.transform_dim,
                                              config.hidden_dim, rng);
  classifier_ =
      std::make_unique<nn::Linear>(config.hidden_dim, config.n_classes, rng);
  register_child("transform", transform_.get());
  register_child("lstm", cell_.get());
  register_child("classifier", classifier_.get());
}

ag::Variable MnistLstm::forward(const core::Tensor& images) const {
  LEGW_CHECK(images.dim() == 2 &&
                 images.size(1) == config_.n_rows * config_.n_cols,
             "MnistLstm: images must be [B, rows*cols]");
  const i64 batch = images.size(0);
  nn::LstmState state = cell_->zero_state(batch);
  for (i64 r = 0; r < config_.n_rows; ++r) {
    // Row r of every image: [B, n_cols].
    core::Tensor row(core::Shape{batch, config_.n_cols});
    for (i64 b = 0; b < batch; ++b) {
      const float* src =
          images.data() + b * config_.n_rows * config_.n_cols + r * config_.n_cols;
      std::copy(src, src + config_.n_cols, row.data() + b * config_.n_cols);
    }
    ag::Variable x = transform_->forward(ag::Variable::constant(std::move(row)));
    state = cell_->step(x, state);
  }
  return classifier_->forward(state.h);
}

ag::Variable MnistLstm::loss(const core::Tensor& images,
                             const std::vector<i32>& labels) const {
  return ag::softmax_cross_entropy(forward(images), labels);
}

double MnistLstm::accuracy(const core::Tensor& images,
                           const std::vector<i32>& labels) const {
  ag::Variable logits = forward(images);
  const i64 batch = logits.size(0);
  const i64 classes = logits.size(1);
  LEGW_CHECK(static_cast<i64>(labels.size()) == batch,
             "accuracy: label count mismatch");
  i64 correct = 0;
  const float* lp = logits.value().data();
  for (i64 b = 0; b < batch; ++b) {
    i64 best = 0;
    for (i64 c = 1; c < classes; ++c) {
      if (lp[b * classes + c] > lp[b * classes + best]) best = c;
    }
    if (best == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace legw::models
