#include "models/gnmt.hpp"

#include <algorithm>
#include <cmath>

#include "core/kernels.hpp"

namespace legw::models {

Gnmt::Gnmt(const GnmtConfig& config) : config_(config) {
  LEGW_CHECK(config.num_layers >= 2, "Gnmt: need at least 2 layers");
  core::Rng rng(config.seed);
  const i64 h = config.hidden_dim;

  src_embed_ = std::make_unique<nn::Embedding>(config.src_vocab,
                                               config.embed_dim, rng);
  tgt_embed_ = std::make_unique<nn::Embedding>(config.tgt_vocab,
                                               config.embed_dim, rng);
  register_child("src_embed", src_embed_.get());
  register_child("tgt_embed", tgt_embed_.get());

  // Encoder: bidirectional first layer (output 2h), then uni layers h->h
  // with the first uni layer taking the 2h bi output.
  enc_bi_ = std::make_unique<nn::BiLstmLayer>(config.embed_dim, h, rng);
  register_child("enc_bi", enc_bi_.get());
  for (i64 l = 1; l < config.num_layers; ++l) {
    const i64 in = l == 1 ? 2 * h : h;
    enc_uni_.push_back(std::make_unique<nn::LstmCellLayer>(in, h, rng));
    register_child("enc_uni" + std::to_string(l), enc_uni_.back().get());
  }

  // Decoder: layer 1 reads [embedding, context]; layers 2..n read
  // [lower hidden, context].
  for (i64 l = 0; l < config.num_layers; ++l) {
    const i64 in = (l == 0 ? config.embed_dim : h) + h;
    dec_layers_.push_back(std::make_unique<nn::LstmCellLayer>(in, h, rng));
    register_child("dec" + std::to_string(l), dec_layers_.back().get());
  }

  attention_ = std::make_unique<nn::BahdanauAttention>(h, h, h, rng);
  register_child("attention", attention_.get());

  classifier_ = std::make_unique<nn::Linear>(2 * h, config.tgt_vocab, rng);
  register_child("classifier", classifier_.get());
}

std::vector<ag::Variable> Gnmt::encode(const std::vector<i32>& src, i64 batch,
                                       i64 src_len,
                                       core::Rng* dropout_rng) const {
  const bool use_dropout =
      dropout_rng != nullptr && config_.dropout > 0.0f && is_training();
  // Column-major token steps.
  std::vector<ag::Variable> steps;
  steps.reserve(static_cast<std::size_t>(src_len));
  for (i64 t = 0; t < src_len; ++t) {
    std::vector<i32> col(static_cast<std::size_t>(batch));
    for (i64 b = 0; b < batch; ++b) {
      col[static_cast<std::size_t>(b)] =
          src[static_cast<std::size_t>(b * src_len + t)];
    }
    ag::Variable emb = src_embed_->forward(col);
    if (use_dropout) {
      emb = ag::dropout(emb, config_.dropout, *dropout_rng, true);
    }
    steps.push_back(emb);
  }

  std::vector<ag::Variable> outputs = enc_bi_->forward(steps);  // [B, 2h] each
  for (std::size_t l = 0; l < enc_uni_.size(); ++l) {
    if (use_dropout) {
      for (auto& o : outputs) {
        o = ag::dropout(o, config_.dropout, *dropout_rng, true);
      }
    }
    nn::LstmState state = enc_uni_[l]->step(
        outputs[0], enc_uni_[l]->zero_state(outputs[0].size(0)));
    std::vector<ag::Variable> next(outputs.size());
    next[0] = state.h;
    for (std::size_t t = 1; t < outputs.size(); ++t) {
      state = enc_uni_[l]->step(outputs[t], state);
      next[t] = state.h;
    }
    // Residual connections start from config_.residual_start (1-based layer
    // index; the bi layer is layer 1, enc_uni_[l] is layer l+2).
    const i64 layer_index = static_cast<i64>(l) + 2;
    if (layer_index >= config_.residual_start &&
        outputs[0].size(1) == next[0].size(1)) {
      for (std::size_t t = 0; t < outputs.size(); ++t) {
        next[t] = ag::add(next[t], outputs[t]);
      }
    }
    outputs = std::move(next);
  }
  return outputs;
}

Gnmt::DecoderState Gnmt::initial_decoder_state(i64 batch) const {
  DecoderState s;
  s.layers.reserve(dec_layers_.size());
  for (const auto& layer : dec_layers_) {
    s.layers.push_back(layer->zero_state(batch));
  }
  s.context = ag::Variable::constant(
      core::Tensor::zeros({batch, config_.hidden_dim}));
  return s;
}

ag::Variable Gnmt::source_mask(const std::vector<i32>& src, i64 batch,
                               i64 src_len) {
  core::Tensor mask(core::Shape{batch, src_len});
  for (i64 b = 0; b < batch; ++b) {
    for (i64 t = 0; t < src_len; ++t) {
      mask[b * src_len + t] =
          src[static_cast<std::size_t>(b * src_len + t)] == data::kPadId
              ? 0.0f
              : 1.0f;
    }
  }
  return ag::Variable::constant(std::move(mask));
}

ag::Variable Gnmt::decode_step(const std::vector<i32>& tokens,
                               const nn::BahdanauAttention::Keys& keys,
                               const ag::Variable& mask,
                               DecoderState& state,
                               core::Rng* dropout_rng) const {
  const bool use_dropout =
      dropout_rng != nullptr && config_.dropout > 0.0f && is_training();
  ag::Variable emb = tgt_embed_->forward(tokens);
  if (use_dropout) {
    emb = ag::dropout(emb, config_.dropout, *dropout_rng, true);
  }
  ag::Variable in0 = ag::concat_cols({emb, state.context});
  state.layers[0] = dec_layers_[0]->step(in0, state.layers[0]);

  // Attention queried by the first decoder layer's output (gnmt_v2),
  // masked so padded source positions get zero weight.
  nn::BahdanauAttention::Result att =
      attention_->attend(state.layers[0].h, keys, mask);
  state.context = att.context;

  ag::Variable h_prev = state.layers[0].h;
  for (std::size_t l = 1; l < dec_layers_.size(); ++l) {
    ag::Variable lower = use_dropout
        ? ag::dropout(h_prev, config_.dropout, *dropout_rng, true)
        : h_prev;
    ag::Variable in = ag::concat_cols({lower, state.context});
    state.layers[l] = dec_layers_[l]->step(in, state.layers[l]);
    ag::Variable h = state.layers[l].h;
    const i64 layer_index = static_cast<i64>(l) + 1;  // 1-based
    if (layer_index >= config_.residual_start) {
      h = ag::add(h, h_prev);
    }
    h_prev = h;
  }
  return classifier_->forward(ag::concat_cols({h_prev, state.context}));
}

ag::Variable Gnmt::loss(const data::TranslationBatch& batch,
                        core::Rng& dropout_rng) const {
  std::vector<ag::Variable> enc =
      encode(batch.src, batch.batch, batch.src_len, &dropout_rng);
  nn::BahdanauAttention::Keys keys = attention_->precompute(enc);
  ag::Variable mask = source_mask(batch.src, batch.batch, batch.src_len);
  DecoderState state = initial_decoder_state(batch.batch);

  std::vector<ag::Variable> step_logits;
  step_logits.reserve(static_cast<std::size_t>(batch.tgt_len));
  for (i64 t = 0; t < batch.tgt_len; ++t) {
    std::vector<i32> col(static_cast<std::size_t>(batch.batch));
    for (i64 b = 0; b < batch.batch; ++b) {
      col[static_cast<std::size_t>(b)] =
          batch.tgt_in[static_cast<std::size_t>(b * batch.tgt_len + t)];
    }
    step_logits.push_back(decode_step(col, keys, mask, state, &dropout_rng));
  }
  ag::Variable logits = ag::concat_rows(step_logits);  // [T*B, V], step-major
  std::vector<i32> aligned(static_cast<std::size_t>(batch.batch * batch.tgt_len));
  for (i64 t = 0; t < batch.tgt_len; ++t) {
    for (i64 b = 0; b < batch.batch; ++b) {
      aligned[static_cast<std::size_t>(t * batch.batch + b)] =
          batch.tgt_out[static_cast<std::size_t>(b * batch.tgt_len + t)];
    }
  }
  return ag::softmax_cross_entropy(logits, aligned, data::kPadId);
}

std::vector<std::vector<i32>> Gnmt::greedy_decode(
    const data::TranslationBatch& batch, i64 max_len) const {
  std::vector<ag::Variable> enc = encode(batch.src, batch.batch, batch.src_len);
  nn::BahdanauAttention::Keys keys = attention_->precompute(enc);
  ag::Variable mask = source_mask(batch.src, batch.batch, batch.src_len);
  DecoderState state = initial_decoder_state(batch.batch);

  std::vector<std::vector<i32>> hyps(static_cast<std::size_t>(batch.batch));
  std::vector<i32> current(static_cast<std::size_t>(batch.batch), data::kBosId);
  std::vector<bool> done(static_cast<std::size_t>(batch.batch), false);
  for (i64 t = 0; t < max_len; ++t) {
    ag::Variable logits = decode_step(current, keys, mask, state);
    const float* lp = logits.value().data();
    const i64 v = logits.size(1);
    bool all_done = true;
    for (i64 b = 0; b < batch.batch; ++b) {
      if (done[static_cast<std::size_t>(b)]) continue;
      i64 best = 0;
      for (i64 c = 1; c < v; ++c) {
        if (lp[b * v + c] > lp[b * v + best]) best = c;
      }
      if (best == data::kEosId || best == data::kPadId) {
        done[static_cast<std::size_t>(b)] = true;
      } else {
        hyps[static_cast<std::size_t>(b)].push_back(static_cast<i32>(best));
        all_done = false;
      }
      current[static_cast<std::size_t>(b)] = static_cast<i32>(best);
    }
    if (all_done) break;
  }
  return hyps;
}

std::vector<std::vector<i32>> Gnmt::beam_decode(
    const data::TranslationBatch& batch, i64 beam_width, i64 max_len) const {
  LEGW_CHECK(beam_width >= 1, "beam_decode: beam_width must be >= 1");
  std::vector<std::vector<i32>> results(static_cast<std::size_t>(batch.batch));

  struct Hyp {
    std::vector<i32> tokens;  // emitted tokens (no BOS/EOS)
    double log_prob = 0.0;
    i32 last = data::kBosId;
    DecoderState state;
    bool done = false;

    // GNMT-style length normalisation so short hypotheses don't dominate.
    double score() const {
      const double len = static_cast<double>(tokens.size()) + 1.0;
      return log_prob / std::pow(len, 0.6);
    }
  };

  for (i64 b = 0; b < batch.batch; ++b) {
    // Single-row view of source b.
    std::vector<i32> src_row(
        batch.src.begin() + static_cast<std::ptrdiff_t>(b * batch.src_len),
        batch.src.begin() + static_cast<std::ptrdiff_t>((b + 1) * batch.src_len));
    std::vector<ag::Variable> enc = encode(src_row, 1, batch.src_len);
    nn::BahdanauAttention::Keys keys = attention_->precompute(enc);
    ag::Variable mask = source_mask(src_row, 1, batch.src_len);

    std::vector<Hyp> beams(1);
    beams[0].state = initial_decoder_state(1);
    std::vector<Hyp> finished;

    for (i64 t = 0; t < max_len && !beams.empty(); ++t) {
      std::vector<Hyp> candidates;
      for (Hyp& hyp : beams) {
        DecoderState state = hyp.state;  // snapshot (Variables are handles)
        ag::Variable logits = decode_step({hyp.last}, keys, mask, state);
        const i64 v = logits.size(1);
        core::Tensor log_probs(core::Shape{1, v});
        core::log_softmax_rows(logits.value().data(), log_probs.data(), 1, v);

        // Top beam_width tokens of this hypothesis by simple selection.
        std::vector<i64> order(static_cast<std::size_t>(v));
        for (i64 c = 0; c < v; ++c) order[static_cast<std::size_t>(c)] = c;
        std::partial_sort(order.begin(),
                          order.begin() + std::min<i64>(beam_width, v),
                          order.end(), [&](i64 x, i64 y) {
                            return log_probs[x] > log_probs[y];
                          });
        for (i64 r = 0; r < std::min<i64>(beam_width, v); ++r) {
          const i64 tok = order[static_cast<std::size_t>(r)];
          Hyp next = hyp;
          next.state = state;
          next.log_prob += log_probs[tok];
          if (tok == data::kEosId || tok == data::kPadId) {
            next.done = true;
          } else {
            next.tokens.push_back(static_cast<i32>(tok));
            next.last = static_cast<i32>(tok);
          }
          candidates.push_back(std::move(next));
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const Hyp& x, const Hyp& y) { return x.score() > y.score(); });
      beams.clear();
      for (Hyp& c : candidates) {
        if (c.done) {
          finished.push_back(std::move(c));
        } else if (static_cast<i64>(beams.size()) < beam_width) {
          beams.push_back(std::move(c));
        }
        if (static_cast<i64>(finished.size()) >= beam_width &&
            static_cast<i64>(beams.size()) >= beam_width) {
          break;
        }
      }
    }
    for (Hyp& hyp : beams) finished.push_back(std::move(hyp));
    LEGW_CHECK(!finished.empty(), "beam_decode: no hypotheses produced");
    const Hyp* best = &finished[0];
    for (const Hyp& hyp : finished) {
      if (hyp.score() > best->score()) best = &hyp;
    }
    results[static_cast<std::size_t>(b)] = best->tokens;
  }
  return results;
}

}  // namespace legw::models
