// The paper's pure-LSTM MNIST classifier (§5.1.1): each 28x28 image is read
// as 28 time steps of 28-pixel rows; a 28->transform linear layer feeds an
// LSTM whose final hidden state drives a 10-way softmax classifier.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace legw::models {

struct MnistLstmConfig {
  i64 transform_dim = 128;  // paper: 128-by-28 transform layer
  i64 hidden_dim = 128;     // paper: 128 (cell kernel 256x512)
  i64 n_rows = 28;
  i64 n_cols = 28;
  i64 n_classes = 10;
  u64 seed = 42;
};

class MnistLstm : public nn::Module {
 public:
  explicit MnistLstm(const MnistLstmConfig& config);

  // images: [B, 784] pixels. Returns class logits [B, 10].
  ag::Variable forward(const core::Tensor& images) const;

  // Mean cross-entropy against labels.
  ag::Variable loss(const core::Tensor& images,
                    const std::vector<i32>& labels) const;

  // Fraction of argmax predictions matching labels (no graph built).
  double accuracy(const core::Tensor& images,
                  const std::vector<i32>& labels) const;

  const MnistLstmConfig& config() const { return config_; }

 private:
  MnistLstmConfig config_;
  std::unique_ptr<nn::Linear> transform_;
  std::unique_ptr<nn::LstmCellLayer> cell_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace legw::models
