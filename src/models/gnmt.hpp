// GNMT-style seq2seq model (§5.1.3), architecture-faithful at reduced width:
//   encoder: embedding -> bidirectional LSTM layer -> (n-1) unidirectional
//            layers, residual connections from the 3rd layer on;
//   decoder: per step, layer 1 consumes [embedding, previous context]; its
//            output queries normalized Bahdanau attention over the encoder
//            outputs; layers 2..n consume [lower output, context] with
//            residuals from the 3rd layer; the classifier reads
//            [top output, context].
// Training is teacher-forced with padded batches; BLEU uses greedy decoding.
#pragma once

#include <memory>

#include "data/translation.hpp"
#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace legw::models {

struct GnmtConfig {
  i64 src_vocab = 200;
  i64 tgt_vocab = 200;
  i64 embed_dim = 32;
  i64 hidden_dim = 32;   // paper: 1024
  i64 num_layers = 4;    // paper: 4 (first encoder layer bidirectional)
  i64 residual_start = 3;  // residual connections start from this layer (1-based)
  float dropout = 0.0f;  // applied to embeddings and inter-layer inputs
  u64 seed = 23;
};

class Gnmt : public nn::Module {
 public:
  explicit Gnmt(const GnmtConfig& config);

  // Teacher-forced mean cross-entropy over non-pad target tokens.
  ag::Variable loss(const data::TranslationBatch& batch,
                    core::Rng& dropout_rng) const;

  // Greedy decode: one hypothesis per source row, stops at EOS or max_len.
  std::vector<std::vector<i32>> greedy_decode(const data::TranslationBatch& batch,
                                              i64 max_len) const;

  // Beam-search decode (the decoder GNMT actually ships with). Scores are
  // length-normalised sums of log-probabilities; beam_width == 1 reduces to
  // greedy search. Decodes one source sentence at a time (row b of the
  // batch), returning the best hypothesis per row.
  std::vector<std::vector<i32>> beam_decode(const data::TranslationBatch& batch,
                                            i64 beam_width, i64 max_len) const;

  const GnmtConfig& config() const { return config_; }

 private:
  // Encoder outputs: one [B, hidden] Variable per source position.
  // dropout_rng may be null (eval / no dropout).
  std::vector<ag::Variable> encode(const std::vector<i32>& src, i64 batch,
                                   i64 src_len,
                                   core::Rng* dropout_rng = nullptr) const;

  struct DecoderState {
    std::vector<nn::LstmState> layers;
    ag::Variable context;  // [B, hidden]
  };
  DecoderState initial_decoder_state(i64 batch) const;
  // Constant [B, src_len] validity mask (0 on kPadId source positions).
  static ag::Variable source_mask(const std::vector<i32>& src, i64 batch,
                                  i64 src_len);
  // One decoder step; returns logits [B, tgt_vocab] and mutates `state`.
  ag::Variable decode_step(const std::vector<i32>& tokens,
                           const nn::BahdanauAttention::Keys& keys,
                           const ag::Variable& mask, DecoderState& state,
                           core::Rng* dropout_rng = nullptr) const;

  GnmtConfig config_;
  std::unique_ptr<nn::Embedding> src_embed_;
  std::unique_ptr<nn::Embedding> tgt_embed_;
  std::unique_ptr<nn::BiLstmLayer> enc_bi_;
  std::vector<std::unique_ptr<nn::LstmCellLayer>> enc_uni_;
  std::vector<std::unique_ptr<nn::LstmCellLayer>> dec_layers_;
  std::unique_ptr<nn::BahdanauAttention> attention_;
  std::unique_ptr<nn::Linear> classifier_;
};

}  // namespace legw::models
