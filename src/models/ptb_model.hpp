// Word-level LSTM language model (§5.1.2). Two LSTM layers over word
// embeddings with a softmax over the vocabulary, evaluated in perplexity.
// "Small" and "large" configurations mirror the paper's PTB-small/PTB-large
// pair (dimensions scaled to CPU budgets; see DESIGN.md).
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace legw::models {

struct PtbConfig {
  i64 vocab = 1000;
  i64 embed_dim = 128;
  i64 hidden_dim = 128;
  i64 num_layers = 2;
  i64 bptt_len = 20;
  float dropout = 0.0f;
  // Share the input embedding matrix with the output softmax (requires
  // embed_dim == hidden_dim). Halves the parameter count of the projection.
  bool tie_embeddings = false;
  u64 seed = 17;

  // The paper's PTB-small: embed = hidden = 200, seq 20.
  static PtbConfig small(i64 vocab);
  // The paper's PTB-large: embed = hidden = 1500, seq 35 — scaled to 256/35.
  static PtbConfig large(i64 vocab);
};

class PtbModel : public nn::Module {
 public:
  explicit PtbModel(const PtbConfig& config);

  // Detached recurrent state carried between BPTT chunks (plain tensors so
  // no gradient flows across chunk boundaries).
  struct CarriedState {
    std::vector<core::Tensor> h;  // per layer, [B, H]
    std::vector<core::Tensor> c;
  };
  CarriedState zero_carried(i64 batch) const;

  struct ChunkResult {
    ag::Variable loss;      // mean token cross-entropy
    CarriedState carried;   // detached final states
  };

  // inputs/targets: [batch, bptt] row-major token ids.
  ChunkResult chunk_loss(const std::vector<i32>& inputs,
                         const std::vector<i32>& targets, i64 batch,
                         i64 bptt, const CarriedState& carried,
                         core::Rng& dropout_rng) const;

  // Mean per-token cross-entropy over a token stream (eval mode, no graph
  // kept). Perplexity = exp of the return value.
  double evaluate_nll(const std::vector<i32>& tokens, i64 batch,
                      i64 bptt) const;

  // Per-position vocabulary logits for ONE sequence from a fresh zero state,
  // in eval mode (dropout off): [tokens.size(), vocab]. Runs the same graph
  // as chunk_loss with batch=1 minus the loss — the serving parity suite
  // (tests/test_serve_session.cpp) holds src/serve bitwise equal to this.
  core::Tensor sequence_logits(const std::vector<i32>& tokens) const;

  const PtbConfig& config() const { return config_; }

 private:
  PtbConfig config_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Lstm> lstm_;
  std::unique_ptr<nn::Linear> decoder_;  // untied variant
  ag::Variable tied_bias_;               // tied variant: bias only
};

}  // namespace legw::models
