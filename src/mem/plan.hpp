// Static memory planning: pack a set of buffer lifetimes into one arena.
//
// The training step allocates the same tensors in the same order every step
// (the repo's determinism contract makes the allocation sequence a pure
// function of the model), so instead of paying a general-purpose allocator
// per tensor we can record one step's allocation/free events, solve for a
// set of non-overlapping offsets once, and replay the plan in place every
// step after (the TVM/MXNet static-memory-plan trick, applied to the
// autograd tape: the tape already knows each tensor's last use, because a
// node's buffers die the moment its backward closure has run).
//
// The planner itself is pure and deterministic: given the same lifetimes it
// returns the same offsets, which is what makes "deterministic offsets
// across runs" a testable property (tests/test_mem_arena.cpp).
#pragma once

#include <vector>

#include "core/common.hpp"

namespace legw::mem {

// Every arena offset and size is aligned to this many bytes (one cache line,
// and enough for any vectorised kernel in the repo).
inline constexpr i64 kArenaAlignment = 64;

inline constexpr i64 round_up_align(i64 bytes) {
  return (bytes + kArenaAlignment - 1) & ~(kArenaAlignment - 1);
}

// One buffer's live range on the step's event clock. Events are a single
// monotonic counter bumped on every allocation and every free, so intervals
// from one recorded step are totally ordered: buffer A and buffer B may
// share bytes iff their [birth, death) ranges do not intersect.
struct Lifetime {
  i64 bytes = 0;  // payload size; the planner rounds to kArenaAlignment
  i64 birth = 0;  // event index of the allocation (inclusive)
  i64 death = 0;  // event index of the free (exclusive; death > birth)
};

// Planned placement for one lifetime, parallel to the planner's input.
struct Placement {
  i64 offset = 0;  // byte offset into the arena, kArenaAlignment-aligned
  i64 bytes = 0;   // rounded size actually reserved at that offset
};

struct MemPlan {
  std::vector<Placement> slots;  // slots[i] places lifetimes[i]
  i64 arena_bytes = 0;  // high-water mark: bytes one arena region needs
  i64 naive_bytes = 0;  // sum of rounded sizes (a bump arena with no reuse)
};

// Assigns each lifetime a byte offset so that no two lifetimes whose live
// ranges intersect share any byte. Best-fit over an address-ordered free
// list, swept in event order (frees processed before the allocation at the
// same event, which cannot happen with a shared clock but keeps the sweep
// total): smallest adequate gap wins, lowest offset breaks ties, otherwise
// the high-water mark grows. O(n log n + n * gaps), deterministic.
MemPlan plan_offsets(const std::vector<Lifetime>& lifetimes);

// Validation oracle for tests and checked builds: true iff every pair of
// lifetimes with intersecting live ranges received disjoint byte ranges and
// every offset/size respects kArenaAlignment. O(n^2) — test-sized inputs.
bool plan_is_valid(const std::vector<Lifetime>& lifetimes, const MemPlan& plan);

}  // namespace legw::mem
