// Step-scoped arena allocator with a recorded static memory plan.
//
// Lifecycle (driven by mem::TrainStepScope in the runners):
//
//   begin_step()  -> step 1 RECORDS: allocations come from bump slabs while
//                    every alloc/free is logged on an event clock.
//   end_step()    -> the recorded lifetimes feed plan_offsets(); the plan is
//                    kept and one contiguous region is sized to its
//                    high-water mark.
//   begin_step()  -> steps 2+ REPLAY: allocation i is served at the planned
//                    offset i inside the fixed region, so every tensor
//                    reuses the same bytes in place, step after step.
//
// Replay verifies each allocation against the plan (same size, in order); a
// divergence — the workload changed shape — drops the step into BYPASS mode
// (plain bump slabs, always correct) and re-records on the next step. The
// arena therefore never requires the workload to be static; it only rewards
// it when it is.
//
// Safety rails:
//   * Freed and not-yet-allocated arena bytes are ASan-poisoned when built
//     with AddressSanitizer, so a use-after-free / use-before-plan trips the
//     sanitizer at the faulting load. In LEGW_CHECKED builds freed bytes are
//     additionally scribbled with NaNs so the non-finite tripwires blame any
//     stale read even without ASan.
//   * A tensor that survives past the step it was allocated in is a bug
//     (step storage is recycled). begin_step() aborts on live allocations in
//     checked builds; release builds retire the old memory intact (never
//     recycled, so stale pointers stay readable) and re-record.
//   * Frees carry the allocation's generation; frees from a retired
//     generation are ignored (the retired block owns those bytes now).
//
// Thread-safe (single mutex) so dist replica threads can each drive their
// own arena while sharing none of the hot path with each other.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/common.hpp"
#include "core/mutex.hpp"
#include "mem/plan.hpp"

// LEGW_MEM_ASAN: defined when the build has AddressSanitizer instrumentation
// (the sanitize preset); arms manual poisoning of arena memory.
#if defined(__SANITIZE_ADDRESS__)
#define LEGW_MEM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LEGW_MEM_ASAN 1
#endif
#endif

namespace legw::mem {

class StepArena {
 public:
  struct Stats {
    i64 steps = 0;            // begin_step() calls
    i64 recorded_steps = 0;   // steps that recorded (step 1 + after changes)
    i64 replayed_steps = 0;   // steps served entirely from the plan
    i64 divergences = 0;      // replays aborted mid-step (workload changed)
    i64 retired_regions = 0;  // escape-hatch retirements (live at begin_step)
    i64 allocs = 0;           // lifetime total allocations
    i64 live_bytes = 0;       // payload bytes currently live
    i64 peak_live_bytes = 0;  // max simultaneously-live payload bytes
    i64 plan_slots = 0;       // allocations in the current plan
    i64 planned_bytes = 0;    // region bytes the plan needs (peak WITH reuse)
    i64 naive_bytes = 0;      // per-step bytes a no-reuse bump would need
    i64 capacity_bytes = 0;   // region + slab bytes actually reserved
  };

  explicit StepArena(std::string name);
  ~StepArena();
  StepArena(const StepArena&) = delete;
  StepArena& operator=(const StepArena&) = delete;

  void begin_step();
  void end_step();

  // 64-byte-aligned storage for `bytes` payload bytes. Contents are
  // UNSPECIFIED (recycled step memory); callers zero-fill exactly like they
  // must for malloc'd storage. Only valid between begin_step and the next
  // begin_step.
  void* allocate(i64 bytes);
  // `gen` must be the generation() observed at allocate time; frees from a
  // retired generation are ignored.
  void deallocate(void* p, i64 bytes, u64 gen);
  u64 generation() const;

  // Replay-only mode, for inference plans (src/serve): a divergence still
  // drops the *rest of the step* into bypass slabs (always correct), but the
  // plan is KEPT instead of invalidated, so the next conforming step replays
  // again. Without it, a serving arena whose batches alternate shapes would
  // thrash record->diverge->re-record forever; with it, the first batch of a
  // shape records once and every later batch of that shape replays. Off by
  // default (training semantics: a divergence means the workload changed and
  // the plan should be re-learned).
  void set_replay_only(bool on);
  bool replay_only() const;

  bool replaying() const;
  i64 live_count() const;
  Stats stats() const;
  // Rebases peak_live_bytes to the current live bytes (bench windows).
  void reset_peak();
  // The current plan's placements (empty until one recorded step finished).
  // Diagnostic/test view: offsets are relative to the replay region base.
  std::vector<Placement> current_plan() const;
  // Drops plan, slabs, region, and retired memory; counters keep their
  // lifetime totals. Requires no live allocations. Test hook.
  void reset_hard();

 private:
  enum class Mode { kIdle, kRecord, kReplay, kBypass };

  struct Slab {
    std::byte* base = nullptr;
    i64 bytes = 0;
    i64 used = 0;
  };

  void* slab_alloc(i64 rounded) LEGW_REQUIRES(mu_);
  void poison_all_locked() LEGW_REQUIRES(mu_);
  void retire_live_memory_locked() LEGW_REQUIRES(mu_);

  mutable core::Mutex mu_;
  const std::string name_;
  Mode mode_ LEGW_GUARDED_BY(mu_) = Mode::kIdle;
  bool replay_only_ LEGW_GUARDED_BY(mu_) = false;
  u64 gen_ LEGW_GUARDED_BY(mu_) = 0;

  // Bump slabs (record and bypass modes).
  std::vector<Slab> slabs_ LEGW_GUARDED_BY(mu_);

  // Recorded step: rounded size + birth/death events per allocation, plus
  // pointer -> record index so frees can stamp the death event.
  std::vector<Lifetime> recs_ LEGW_GUARDED_BY(mu_);
  std::unordered_map<const void*, std::size_t> rec_of_ LEGW_GUARDED_BY(mu_);
  i64 event_ LEGW_GUARDED_BY(mu_) = 0;

  // Replay: the solved plan and the fixed region it indexes into.
  MemPlan plan_ LEGW_GUARDED_BY(mu_);
  bool plan_valid_ LEGW_GUARDED_BY(mu_) = false;
  std::byte* region_ LEGW_GUARDED_BY(mu_) = nullptr;
  i64 region_bytes_ LEGW_GUARDED_BY(mu_) = 0;
  std::size_t next_slot_ LEGW_GUARDED_BY(mu_) = 0;
  // Checked builds: offsets of live replay allocations, to assert the plan's
  // no-overlap invariant against the actual free order.
  std::map<i64, i64> live_replay_ LEGW_GUARDED_BY(mu_);

  // Escape hatch: memory that still had live allocations at begin_step is
  // parked here (valid, never recycled) until reset_hard()/destruction.
  std::vector<Slab> retired_ LEGW_GUARDED_BY(mu_);

  i64 live_count_ LEGW_GUARDED_BY(mu_) = 0;
  Stats stats_ LEGW_GUARDED_BY(mu_);
};

}  // namespace legw::mem
