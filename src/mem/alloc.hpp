// Storage-mode dispatch for core::Tensor: LEGW_ALLOC=arena|malloc.
//
// Mirrors the LEGW_KERNEL / LEGW_DIST dispatchers (core/flags.hpp): the env
// var picks the default, set_alloc_mode() overrides programmatically, and
// both paths are bitwise-identical by construction — the arena only changes
// WHERE bytes live, never their values (tests/test_alloc_parity.cpp holds
// the line).
//
// How a tensor ends up in an arena: train runners open a TrainStepScope for
// the data/forward/backward portion of each step, which (in arena mode)
// binds a StepArena to the current thread. While a binding is active, every
// FloatStorage allocation on that thread comes from the arena; without one
// (parameters at construction, optimizer state, eval) storage is plain
// 64-byte-aligned heap memory. Dist replica threads bind their own arena
// (step_arena(slot)) inside the replica body, so replicas plan and replay
// independently with no shared hot path.
#pragma once

#include <string>

#include "core/common.hpp"

namespace legw::mem {

class StepArena;

enum class AllocMode {
  kMalloc,  // every tensor on the heap (the seed behaviour; default)
  kArena,   // step-scoped tensors in a planned, reused-in-place arena
};

// Resolved from LEGW_ALLOC on first use ("arena" or "malloc"); overridable.
AllocMode alloc_mode();
void set_alloc_mode(AllocMode m);
// Returns false (and changes nothing) for an unknown name.
bool set_alloc_mode(const std::string& name);
const char* alloc_mode_name(AllocMode m);

// The arena bound to the calling thread, or nullptr. FloatStorage consults
// this on every allocation; ag::backward uses it to decide whether
// free-after-use is profitable.
StepArena* bound_step_arena();

// Process-wide arena registry. Slot 0 serves the single-replica training
// loop; dist replica r binds slot r inside its worker thread. Arenas are
// created on first use and live for the process (their plans persist across
// runs; a changed workload re-records via the divergence fallback).
StepArena& step_arena(int slot);

// RAII: one training step's arena binding. In malloc mode (or when the
// current thread already has a binding) this is a no-op. Otherwise it runs
// begin_step(), binds the arena to this thread, and on destruction unbinds
// and runs end_step(). Allocation-free when inactive.
class TrainStepScope {
 public:
  // Binds step_arena(0).
  TrainStepScope();
  explicit TrainStepScope(StepArena& arena);
  ~TrainStepScope();
  TrainStepScope(const TrainStepScope&) = delete;
  TrainStepScope& operator=(const TrainStepScope&) = delete;
  bool active() const { return arena_ != nullptr; }

 private:
  StepArena* arena_ = nullptr;
};

// RAII: suppresses any arena binding on this thread for its lifetime, so
// storage allocated inside is guaranteed heap-backed. Used for buffers that
// must outlive the step: leaf gradients (ag::Node::ensure_grad) and
// rehomed carried state.
class HeapBindGuard {
 public:
  HeapBindGuard();
  ~HeapBindGuard();
  HeapBindGuard(const HeapBindGuard&) = delete;
  HeapBindGuard& operator=(const HeapBindGuard&) = delete;

 private:
  StepArena* prev_ = nullptr;
};

// Heap side of the dispatcher: kArenaAlignment-aligned allocation with
// live/peak accounting, so "peak bytes" is comparable across both modes.
void* heap_alloc(i64 bytes);
void heap_free(void* p, i64 bytes);

// Aggregated snapshot: heap counters plus every registry arena's stats.
// Exported into obs traces under "mem.*" (obs/trace.hpp) and the bench's
// memory section.
struct MemStats {
  i64 heap_allocs = 0;
  i64 heap_live_bytes = 0;
  i64 heap_peak_bytes = 0;
  i64 arena_allocs = 0;
  i64 arena_live_bytes = 0;
  i64 arena_peak_bytes = 0;
  i64 arena_planned_bytes = 0;   // sum of current plans' high-water marks
  i64 arena_naive_bytes = 0;     // what those steps cost without reuse
  i64 arena_capacity_bytes = 0;  // bytes actually reserved by arenas
  i64 arena_recorded_steps = 0;
  i64 arena_replayed_steps = 0;
  i64 arena_divergences = 0;
  i64 arena_retired_regions = 0;
};
MemStats mem_stats();

// Resets the heap and per-arena live-byte peaks to the current live values,
// so a bench can measure the peak of an isolated window.
void reset_mem_peaks();

}  // namespace legw::mem
