#include "mem/arena.hpp"

#include <algorithm>
#include <new>
#include <string>

#if defined(LEGW_MEM_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace legw::mem {

namespace {

// Slabs grow in 1 MiB units so record/bypass steps do O(footprint / 1 MiB)
// system allocations instead of one per tensor.
constexpr i64 kMinSlabBytes = i64{1} << 20;

std::byte* aligned_new(i64 bytes) {
  return static_cast<std::byte*>(::operator new(
      static_cast<std::size_t>(bytes), std::align_val_t{kArenaAlignment}));
}

void aligned_delete(std::byte* p) {
  ::operator delete(p, std::align_val_t{kArenaAlignment});
}

// Manual ASan poisoning: reads/writes of poisoned arena bytes abort at the
// faulting instruction. No-ops in non-ASan builds. Offsets and sizes are
// kArenaAlignment-multiples, comfortably above ASan's 8-byte granularity.
inline void poison_bytes(void* p, i64 n) {
#if defined(LEGW_MEM_ASAN)
  __asan_poison_memory_region(p, static_cast<std::size_t>(n));
#else
  (void)p;
  (void)n;
#endif
}

inline void unpoison_bytes(void* p, i64 n) {
#if defined(LEGW_MEM_ASAN)
  __asan_unpoison_memory_region(p, static_cast<std::size_t>(n));
#else
  (void)p;
  (void)n;
#endif
}

// Checked builds additionally scribble dead bytes with quiet NaNs, so a
// stale read that escapes ASan (or a non-ASan checked binary) turns into a
// NaN the non-finite tripwires blame immediately.
inline void scribble_bytes(void* p, i64 n) {
#ifdef LEGW_CHECKED_BUILD
  constexpr u32 kDeadNan = 0x7fc0deadU;
  u32* w = static_cast<u32*>(p);
  std::fill(w, w + n / static_cast<i64>(sizeof(u32)), kDeadNan);
#else
  (void)p;
  (void)n;
#endif
}

}  // namespace

StepArena::StepArena(std::string name) : name_(std::move(name)) {}

StepArena::~StepArena() {
  for (Slab& s : slabs_) {
    unpoison_bytes(s.base, s.bytes);
    aligned_delete(s.base);
  }
  for (Slab& s : retired_) {
    unpoison_bytes(s.base, s.bytes);
    aligned_delete(s.base);
  }
  if (region_ != nullptr) {
    unpoison_bytes(region_, region_bytes_);
    aligned_delete(region_);
  }
}

void* StepArena::slab_alloc(i64 rounded) {
  for (Slab& s : slabs_) {
    if (s.bytes - s.used >= rounded) {
      std::byte* p = s.base + s.used;
      s.used += rounded;
      unpoison_bytes(p, rounded);
      return p;
    }
  }
  Slab s;
  s.bytes = std::max(kMinSlabBytes, rounded);
  s.base = aligned_new(s.bytes);
  s.used = rounded;
  poison_bytes(s.base, s.bytes);
  slabs_.push_back(s);
  unpoison_bytes(s.base, rounded);
  return s.base;
}

void StepArena::poison_all_locked() {
  for (Slab& s : slabs_) {
    scribble_bytes(s.base, s.bytes);
    poison_bytes(s.base, s.bytes);
  }
  if (region_ != nullptr) {
    scribble_bytes(region_, region_bytes_);
    poison_bytes(region_, region_bytes_);
  }
}

void StepArena::retire_live_memory_locked() {
  // Park every block that might back a live allocation. Retired memory is
  // never recycled (and never poisoned again), so the stale tensor keeps
  // working; its eventual free carries a stale generation and is ignored.
  for (Slab& s : slabs_) {
    unpoison_bytes(s.base, s.bytes);
    retired_.push_back(s);
  }
  slabs_.clear();
  if (region_ != nullptr) {
    unpoison_bytes(region_, region_bytes_);
    retired_.push_back(Slab{region_, region_bytes_, region_bytes_});
    region_ = nullptr;
    region_bytes_ = 0;
  }
  plan_valid_ = false;
  live_count_ = 0;
  stats_.live_bytes = 0;
  ++stats_.retired_regions;
}

void StepArena::begin_step() {
  core::MutexLock lock(mu_);
  ++stats_.steps;
  ++gen_;
  if (live_count_ != 0) {
#ifdef LEGW_CHECKED_BUILD
    LEGW_CHECK(false,
               "StepArena '" + name_ + "': " + std::to_string(live_count_) +
                   " allocation(s) outlived the training step — step-scoped "
                   "tensors must be freed (or rehomed to the heap) before "
                   "the next begin_step");
#endif
    retire_live_memory_locked();
  }
  event_ = 0;
  recs_.clear();
  rec_of_.clear();
  live_replay_.clear();
  for (Slab& s : slabs_) s.used = 0;
  if (plan_valid_) {
    mode_ = Mode::kReplay;
    next_slot_ = 0;
    if (region_bytes_ < plan_.arena_bytes) {
      if (region_ != nullptr) {
        unpoison_bytes(region_, region_bytes_);
        aligned_delete(region_);
      }
      region_bytes_ = plan_.arena_bytes;
      region_ = aligned_new(region_bytes_);
    }
  } else {
    mode_ = Mode::kRecord;
  }
  poison_all_locked();
}

void StepArena::end_step() {
  core::MutexLock lock(mu_);
  if (mode_ == Mode::kRecord) {
    // Allocations still live at end of step (e.g. freed between end_step and
    // the scope's surrounding code) die at the step boundary for planning
    // purposes.
    for (Lifetime& lt : recs_) {
      if (lt.death < 0) lt.death = ++event_;
    }
    plan_ = plan_offsets(recs_);
    plan_valid_ = true;
    ++stats_.recorded_steps;
    stats_.plan_slots = static_cast<i64>(plan_.slots.size());
    stats_.planned_bytes = plan_.arena_bytes;
    stats_.naive_bytes = plan_.naive_bytes;
  } else if (mode_ == Mode::kReplay) {
    ++stats_.replayed_steps;
  }
  mode_ = Mode::kIdle;
}

void* StepArena::allocate(i64 bytes) {
  core::MutexLock lock(mu_);
  LEGW_CHECK(bytes > 0, "StepArena '" + name_ + "': non-positive allocation");
  LEGW_DCHECK(mode_ != Mode::kIdle,
              "StepArena '" + name_ + "': allocate outside begin/end_step");
  const i64 rounded = round_up_align(bytes);
  ++stats_.allocs;
  ++event_;
  ++live_count_;
  stats_.live_bytes += bytes;
  stats_.peak_live_bytes = std::max(stats_.peak_live_bytes, stats_.live_bytes);

  if (mode_ == Mode::kReplay) {
    if (next_slot_ < plan_.slots.size() &&
        plan_.slots[next_slot_].bytes == rounded) {
      const Placement& slot = plan_.slots[next_slot_];
      ++next_slot_;
      std::byte* p = region_ + slot.offset;
      unpoison_bytes(p, slot.bytes);
#ifdef LEGW_CHECKED_BUILD
      // The plan guarantees no live overlap only if the free order matches
      // the recorded step; assert it against the actual live set.
      auto next = live_replay_.lower_bound(slot.offset);
      if (next != live_replay_.end()) {
        LEGW_CHECK(slot.offset + slot.bytes <= next->first,
                   "StepArena '" + name_ + "': replay overlap at offset " +
                       std::to_string(slot.offset));
      }
      if (next != live_replay_.begin()) {
        auto prev = std::prev(next);
        LEGW_CHECK(prev->first + prev->second <= slot.offset,
                   "StepArena '" + name_ + "': replay overlap at offset " +
                       std::to_string(slot.offset));
      }
      live_replay_.emplace(slot.offset, slot.bytes);
#endif
      return p;
    }
    // The allocation sequence no longer matches the plan: the workload
    // changed. Fall back to always-correct bump slabs for the rest of the
    // step. Training arenas re-record on the next step; replay-only arenas
    // (inference plans) keep the plan so the next conforming step replays.
    ++stats_.divergences;
    mode_ = Mode::kBypass;
    if (!replay_only_) plan_valid_ = false;
    live_replay_.clear();
  }

  if (mode_ == Mode::kRecord) {
    void* p = slab_alloc(rounded);
    rec_of_[p] = recs_.size();
    recs_.push_back(Lifetime{rounded, event_, -1});
    return p;
  }
  return slab_alloc(rounded);
}

void StepArena::deallocate(void* p, i64 bytes, u64 gen) {
  core::MutexLock lock(mu_);
  if (gen != gen_) return;  // allocation's backing block was retired
  LEGW_DCHECK(live_count_ > 0,
              "StepArena '" + name_ + "': free with no live allocations");
  --live_count_;
  stats_.live_bytes -= bytes;
  ++event_;
  const i64 rounded = round_up_align(bytes);
  if (mode_ == Mode::kRecord) {
    auto it = rec_of_.find(p);
    if (it != rec_of_.end() && recs_[it->second].death < 0) {
      recs_[it->second].death = event_;
    }
  }
#ifdef LEGW_CHECKED_BUILD
  if (mode_ == Mode::kReplay) {
    live_replay_.erase(static_cast<i64>(static_cast<std::byte*>(p) - region_));
  }
#endif
  scribble_bytes(p, rounded);
  poison_bytes(p, rounded);
}

void StepArena::set_replay_only(bool on) {
  core::MutexLock lock(mu_);
  replay_only_ = on;
}

bool StepArena::replay_only() const {
  core::MutexLock lock(mu_);
  return replay_only_;
}

u64 StepArena::generation() const {
  core::MutexLock lock(mu_);
  return gen_;
}

bool StepArena::replaying() const {
  core::MutexLock lock(mu_);
  return mode_ == Mode::kReplay;
}

i64 StepArena::live_count() const {
  core::MutexLock lock(mu_);
  return live_count_;
}

StepArena::Stats StepArena::stats() const {
  core::MutexLock lock(mu_);
  Stats s = stats_;
  s.capacity_bytes = region_bytes_;
  for (const Slab& sl : slabs_) s.capacity_bytes += sl.bytes;
  for (const Slab& sl : retired_) s.capacity_bytes += sl.bytes;
  return s;
}

void StepArena::reset_peak() {
  core::MutexLock lock(mu_);
  stats_.peak_live_bytes = stats_.live_bytes;
}

std::vector<Placement> StepArena::current_plan() const {
  core::MutexLock lock(mu_);
  return plan_valid_ ? plan_.slots : std::vector<Placement>{};
}

void StepArena::reset_hard() {
  core::MutexLock lock(mu_);
  LEGW_CHECK(live_count_ == 0,
             "StepArena '" + name_ + "': reset_hard with live allocations");
  for (Slab& s : slabs_) {
    unpoison_bytes(s.base, s.bytes);
    aligned_delete(s.base);
  }
  slabs_.clear();
  for (Slab& s : retired_) {
    unpoison_bytes(s.base, s.bytes);
    aligned_delete(s.base);
  }
  retired_.clear();
  if (region_ != nullptr) {
    unpoison_bytes(region_, region_bytes_);
    aligned_delete(region_);
    region_ = nullptr;
    region_bytes_ = 0;
  }
  plan_ = MemPlan{};
  plan_valid_ = false;
  recs_.clear();
  rec_of_.clear();
  live_replay_.clear();
  mode_ = Mode::kIdle;
}

}  // namespace legw::mem
