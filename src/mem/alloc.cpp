#include "mem/alloc.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>

#include "core/mutex.hpp"
#include "mem/arena.hpp"

namespace legw::mem {

namespace {

std::atomic<AllocMode>& alloc_mode_state() {
  static std::atomic<AllocMode> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_ALLOC")) {
      const std::string v(env);
      if (v == "arena") return AllocMode::kArena;
      LEGW_CHECK(v == "malloc" || v.empty(),
                 "LEGW_ALLOC must be 'arena' or 'malloc', got '" + v + "'");
    }
    return AllocMode::kMalloc;
  }()};
  return state;
}

thread_local StepArena* t_bound_arena = nullptr;

core::Mutex g_registry_mu;
std::map<int, std::unique_ptr<StepArena>>& registry_locked()
    LEGW_REQUIRES(g_registry_mu) {
  static std::map<int, std::unique_ptr<StepArena>> arenas;
  return arenas;
}

// Heap-side accounting. Relaxed atomics: the counters are diagnostics, the
// values themselves are never used for synchronisation.
std::atomic<i64> g_heap_allocs{0};
std::atomic<i64> g_heap_live_bytes{0};
std::atomic<i64> g_heap_peak_bytes{0};

void raise_heap_peak(i64 live) {
  i64 peak = g_heap_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_heap_peak_bytes.compare_exchange_weak(peak, live,
                                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

AllocMode alloc_mode() {
  return alloc_mode_state().load(std::memory_order_relaxed);
}

void set_alloc_mode(AllocMode m) {
  alloc_mode_state().store(m, std::memory_order_relaxed);
}

bool set_alloc_mode(const std::string& name) {
  if (name == "malloc") {
    set_alloc_mode(AllocMode::kMalloc);
    return true;
  }
  if (name == "arena") {
    set_alloc_mode(AllocMode::kArena);
    return true;
  }
  return false;
}

const char* alloc_mode_name(AllocMode m) {
  return m == AllocMode::kMalloc ? "malloc" : "arena";
}

StepArena* bound_step_arena() { return t_bound_arena; }

StepArena& step_arena(int slot) {
  core::MutexLock lock(g_registry_mu);
  auto& arenas = registry_locked();
  auto it = arenas.find(slot);
  if (it == arenas.end()) {
    it = arenas
             .emplace(slot, std::make_unique<StepArena>(
                                "step" + std::to_string(slot)))
             .first;
  }
  return *it->second;
}

TrainStepScope::TrainStepScope() {
  if (alloc_mode() != AllocMode::kArena || t_bound_arena != nullptr) return;
  arena_ = &step_arena(0);
  arena_->begin_step();
  t_bound_arena = arena_;
}

TrainStepScope::TrainStepScope(StepArena& arena) {
  if (alloc_mode() != AllocMode::kArena || t_bound_arena != nullptr) return;
  arena_ = &arena;
  arena_->begin_step();
  t_bound_arena = arena_;
}

TrainStepScope::~TrainStepScope() {
  if (arena_ == nullptr) return;
  t_bound_arena = nullptr;
  arena_->end_step();
}

HeapBindGuard::HeapBindGuard() : prev_(t_bound_arena) {
  t_bound_arena = nullptr;
}

HeapBindGuard::~HeapBindGuard() { t_bound_arena = prev_; }

void* heap_alloc(i64 bytes) {
  LEGW_CHECK(bytes > 0, "heap_alloc: non-positive size");
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const i64 live =
      g_heap_live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_heap_peak(live);
  return ::operator new(static_cast<std::size_t>(bytes),
                        std::align_val_t{kArenaAlignment});
}

void heap_free(void* p, i64 bytes) {
  g_heap_live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
  ::operator delete(p, std::align_val_t{kArenaAlignment});
}

MemStats mem_stats() {
  MemStats out;
  out.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  out.heap_live_bytes = g_heap_live_bytes.load(std::memory_order_relaxed);
  out.heap_peak_bytes = g_heap_peak_bytes.load(std::memory_order_relaxed);
  core::MutexLock lock(g_registry_mu);
  for (const auto& [slot, arena] : registry_locked()) {
    (void)slot;
    const StepArena::Stats s = arena->stats();
    out.arena_allocs += s.allocs;
    out.arena_live_bytes += s.live_bytes;
    out.arena_peak_bytes += s.peak_live_bytes;
    out.arena_planned_bytes += s.planned_bytes;
    out.arena_naive_bytes += s.naive_bytes;
    out.arena_capacity_bytes += s.capacity_bytes;
    out.arena_recorded_steps += s.recorded_steps;
    out.arena_replayed_steps += s.replayed_steps;
    out.arena_divergences += s.divergences;
    out.arena_retired_regions += s.retired_regions;
  }
  return out;
}

void reset_mem_peaks() {
  g_heap_peak_bytes.store(g_heap_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  core::MutexLock lock(g_registry_mu);
  for (const auto& [slot, arena] : registry_locked()) {
    (void)slot;
    arena->reset_peak();
  }
}

}  // namespace legw::mem
