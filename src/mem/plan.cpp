#include "mem/plan.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace legw::mem {

namespace {

// Address-ordered free list over [0, high_water). Gaps coalesce on free so
// best-fit always sees maximal runs.
class FreeList {
 public:
  // Smallest adequate gap; lowest offset breaks size ties. Returns -1 when
  // no gap fits (caller extends the high-water mark instead).
  i64 take_best_fit(i64 bytes) {
    i64 best_off = -1;
    i64 best_size = -1;
    for (const auto& [off, size] : gaps_) {
      if (size < bytes) continue;
      if (best_size < 0 || size < best_size) {
        best_size = size;
        best_off = off;
      }
    }
    if (best_off < 0) return -1;
    const i64 rest = best_size - bytes;
    gaps_.erase(best_off);
    if (rest > 0) gaps_.emplace(best_off + bytes, rest);
    return best_off;
  }

  void release(i64 offset, i64 bytes) {
    auto [it, inserted] = gaps_.emplace(offset, bytes);
    LEGW_CHECK(inserted, "mem plan: double free at offset " +
                             std::to_string(offset));
    // Coalesce with the successor, then the predecessor.
    auto next = std::next(it);
    if (next != gaps_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      gaps_.erase(next);
    }
    if (it != gaps_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        gaps_.erase(it);
      }
    }
  }

 private:
  std::map<i64, i64> gaps_;  // offset -> size, address-ordered
};

}  // namespace

MemPlan plan_offsets(const std::vector<Lifetime>& lifetimes) {
  MemPlan plan;
  plan.slots.resize(lifetimes.size());

  // One event per lifetime endpoint. Sorting key: event time, deaths before
  // births at the same time (death is exclusive, so a buffer dying at e can
  // donate its bytes to one born at e), input index as the final tie-break
  // so the sweep order — and therefore the plan — is deterministic.
  struct Event {
    i64 time;
    bool is_birth;
    std::size_t index;
  };
  std::vector<Event> events;
  events.reserve(lifetimes.size() * 2);
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const Lifetime& lt = lifetimes[i];
    LEGW_CHECK(lt.bytes > 0, "mem plan: non-positive lifetime size");
    LEGW_CHECK(lt.death > lt.birth, "mem plan: empty or inverted live range");
    events.push_back({lt.birth, true, i});
    events.push_back({lt.death, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_birth != b.is_birth) return !a.is_birth;  // deaths first
    return a.index < b.index;
  });

  FreeList gaps;
  i64 high_water = 0;
  for (const Event& e : events) {
    const i64 rounded = round_up_align(lifetimes[e.index].bytes);
    if (e.is_birth) {
      i64 off = gaps.take_best_fit(rounded);
      if (off < 0) {
        off = high_water;
        high_water += rounded;
      }
      plan.slots[e.index] = Placement{off, rounded};
      plan.naive_bytes += rounded;
    } else {
      const Placement& p = plan.slots[e.index];
      gaps.release(p.offset, p.bytes);
    }
  }
  plan.arena_bytes = high_water;
  return plan;
}

bool plan_is_valid(const std::vector<Lifetime>& lifetimes,
                   const MemPlan& plan) {
  if (plan.slots.size() != lifetimes.size()) return false;
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const Placement& p = plan.slots[i];
    if (p.offset < 0 || p.offset % kArenaAlignment != 0) return false;
    if (p.bytes < lifetimes[i].bytes || p.bytes % kArenaAlignment != 0) {
      return false;
    }
    if (p.offset + p.bytes > plan.arena_bytes) return false;
  }
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    for (std::size_t j = i + 1; j < lifetimes.size(); ++j) {
      const bool ranges_intersect = lifetimes[i].birth < lifetimes[j].death &&
                                    lifetimes[j].birth < lifetimes[i].death;
      if (!ranges_intersect) continue;
      const Placement& a = plan.slots[i];
      const Placement& b = plan.slots[j];
      const bool bytes_intersect =
          a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
      if (bytes_intersect) return false;
    }
  }
  return true;
}

}  // namespace legw::mem
