#include "analysis/lipschitz.hpp"

#include <cmath>

namespace legw::analysis {

namespace {
// Computes the gradient of loss_fn at the current weights into `out`.
void gradient_at(const std::vector<ag::Variable>& params,
                 const std::function<ag::Variable()>& loss_fn,
                 std::vector<core::Tensor>& out) {
  for (const auto& p : params) {
    ag::Variable handle = p;  // cheap shared handle
    handle.zero_grad();
  }
  ag::Variable loss = loss_fn();
  ag::backward(loss);
  out.clear();
  out.reserve(params.size());
  for (const auto& p : params) out.push_back(p.grad());
}
}  // namespace

double local_lipschitz(const std::vector<ag::Variable>& params,
                       const std::function<ag::Variable()>& loss_fn,
                       double eps) {
  LEGW_CHECK(!params.empty(), "local_lipschitz: no parameters");

  // g at the current point.
  std::vector<core::Tensor> g;
  gradient_at(params, loss_fn, g);

  double norm_sq = 0.0;
  for (const auto& t : g) {
    const double n = t.l2_norm();
    norm_sq += n * n;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm == 0.0) return 0.0;

  // Save weights, step to w + eps*u.
  std::vector<core::Tensor> saved;
  saved.reserve(params.size());
  for (const auto& p : params) saved.push_back(p.value());
  const float step = static_cast<float>(eps / norm);
  for (std::size_t i = 0; i < params.size(); ++i) {
    ag::Variable handle = params[i];
    handle.mutable_value().add_(g[i], step);
  }
  std::vector<core::Tensor> g_plus;
  gradient_at(params, loss_fn, g_plus);

  // w - eps*u.
  for (std::size_t i = 0; i < params.size(); ++i) {
    ag::Variable handle = params[i];
    core::Tensor& w = handle.mutable_value();
    w = saved[i];
    w.add_(g[i], -step);
  }
  std::vector<core::Tensor> g_minus;
  gradient_at(params, loss_fn, g_minus);

  // Restore and zero.
  for (std::size_t i = 0; i < params.size(); ++i) {
    ag::Variable handle = params[i];
    handle.mutable_value() = saved[i];
    handle.zero_grad();
  }

  // u·(Hu) with Hu ~ (g+ - g-) / (2 eps); u = g / ||g||.
  double acc = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const core::Tensor& gp = g_plus[i];
    const core::Tensor& gm = g_minus[i];
    const core::Tensor& gi = g[i];
    for (i64 j = 0; j < gi.numel(); ++j) {
      acc += static_cast<double>(gi[j]) *
             (static_cast<double>(gp[j]) - gm[j]);
    }
  }
  const double uhu = acc / (2.0 * eps * norm);
  return std::abs(uhu);
}

}  // namespace legw::analysis
