#include "analysis/curvature.hpp"

#include "analysis/lipschitz.hpp"

namespace legw::analysis {

CurvatureTrace trace_curvature(const std::vector<ag::Variable>& params,
                               const std::function<ag::Variable()>& probe_loss,
                               const std::function<void()>& train_step,
                               int n_iters, double eps) {
  LEGW_CHECK(n_iters >= 1, "trace_curvature: need at least one iteration");
  CurvatureTrace trace;
  trace.values.reserve(static_cast<std::size_t>(n_iters));
  for (int i = 0; i < n_iters; ++i) {
    const double L = local_lipschitz(params, probe_loss, eps);
    trace.values.push_back(L);
    if (L > trace.peak_value) {
      trace.peak_value = L;
      trace.peak_iteration = i;
    }
    train_step();
  }
  return trace;
}

}  // namespace legw::analysis
