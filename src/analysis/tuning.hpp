// Hyper-parameter grid search — the "comprehensive tuning" baselines the
// paper compares LEGW against (Figures 5, 7, 8 and the Adam LR sweeps).
#pragma once

#include <functional>
#include <vector>

#include "core/common.hpp"

namespace legw::analysis {

struct TuneEntry {
  float lr = 0.0f;
  double metric = 0.0;
  bool diverged = false;
};

struct TuneResult {
  float best_lr = 0.0f;
  double best_metric = 0.0;
  std::vector<TuneEntry> table;  // one row per tried LR, in input order
};

// Evaluates `run(lr)` for every candidate and keeps the best. `run` returns
// (metric, diverged); diverged entries never win. higher_better selects the
// comparison direction (accuracy/BLEU: true; perplexity: false).
TuneResult grid_search_lr(
    const std::vector<float>& candidates,
    const std::function<std::pair<double, bool>(float lr)>& run,
    bool higher_better);

// Geometric LR grid: n points from lo to hi inclusive, log-spaced. The
// paper's effective ranges ([0.01, 0.16] for MNIST, [0.1, 1.6] for PTB) are
// exactly such grids with ratio 2.
std::vector<float> geometric_grid(float lo, float hi, int n);

}  // namespace legw::analysis
