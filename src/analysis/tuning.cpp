#include "analysis/tuning.hpp"

#include <cmath>

namespace legw::analysis {

TuneResult grid_search_lr(
    const std::vector<float>& candidates,
    const std::function<std::pair<double, bool>(float lr)>& run,
    bool higher_better) {
  LEGW_CHECK(!candidates.empty(), "grid_search_lr: no candidates");
  TuneResult result;
  bool have_best = false;
  for (float lr : candidates) {
    const auto [metric, diverged] = run(lr);
    result.table.push_back({lr, metric, diverged});
    if (diverged) continue;
    const bool better = !have_best || (higher_better ? metric > result.best_metric
                                                     : metric < result.best_metric);
    if (better) {
      result.best_lr = lr;
      result.best_metric = metric;
      have_best = true;
    }
  }
  if (!have_best) {
    // Every candidate diverged: report the first entry so callers can tell.
    result.best_lr = candidates.front();
    result.best_metric = higher_better ? 0.0 : 1e18;
  }
  return result;
}

std::vector<float> geometric_grid(float lo, float hi, int n) {
  LEGW_CHECK(lo > 0.0f && hi > lo && n >= 2, "geometric_grid: bad range");
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(n));
  const double ratio = std::pow(static_cast<double>(hi) / lo,
                                1.0 / static_cast<double>(n - 1));
  double v = lo;
  for (int i = 0; i < n; ++i) {
    out.push_back(static_cast<float>(v));
    v *= ratio;
  }
  return out;
}

}  // namespace legw::analysis
