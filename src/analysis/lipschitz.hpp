// Local Lipschitz-constant estimation along the gradient direction (§4,
// Figure 3 of the paper).
//
// For loss f and gradient g, the paper studies
//     L(x, g) = ||gᵀ ∇²f(x) g|| / ||g||²  =  |uᵀ H u|,   u = g/||g||,
// i.e. the curvature along the current gradient direction. The
// Hessian-vector product H·u is approximated by central finite differences
// of the gradient at w ± ε·u — exactly the procedure the paper describes
// ("approximate it using a small batch and compute the Hessian-vector
// product by finite difference").
#pragma once

#include <functional>
#include <vector>

#include "ag/variable.hpp"

namespace legw::analysis {

// params: the model's leaf Variables. loss_fn must rebuild the loss graph on
// the *same* mini-batch each call (the estimate is batch-conditional by
// design). Weights are perturbed in place and restored before returning;
// gradients are left zeroed.
double local_lipschitz(const std::vector<ag::Variable>& params,
                       const std::function<ag::Variable()>& loss_fn,
                       double eps = 1e-3);

}  // namespace legw::analysis
