// Curvature tracing: the Figure-3 experiment as a reusable API. Trains a
// model for a few iterations while recording the local Lipschitz constant
// (analysis::local_lipschitz) on a fixed probe, returning the full trace and
// its peak — the quantities the paper uses to justify linear-epoch warmup.
#pragma once

#include <functional>
#include <vector>

#include "ag/variable.hpp"

namespace legw::analysis {

struct CurvatureTrace {
  std::vector<double> values;  // L(x,g) before each training step
  double peak_value = 0.0;
  int peak_iteration = 0;
};

// probe_loss: rebuilds the loss on a *fixed* probe batch (L is conditioned
// on it). train_step: performs one real optimizer step (its loss/batch are
// the caller's business). n_iters: trace length.
CurvatureTrace trace_curvature(const std::vector<ag::Variable>& params,
                               const std::function<ag::Variable()>& probe_loss,
                               const std::function<void()>& train_step,
                               int n_iters, double eps = 1e-3);

}  // namespace legw::analysis
