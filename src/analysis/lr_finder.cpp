#include "analysis/lr_finder.hpp"

#include <cmath>

namespace legw::analysis {

LrFinderResult lr_range_test(const LrFinderConfig& config,
                             const std::function<double(float)>& step_fn) {
  LEGW_CHECK(config.min_lr > 0.0f && config.max_lr > config.min_lr,
             "lr_range_test: bad LR range");
  LEGW_CHECK(config.n_steps >= 2, "lr_range_test: need >= 2 steps");

  const double ratio =
      std::pow(static_cast<double>(config.max_lr) / config.min_lr,
               1.0 / (config.n_steps - 1));
  LrFinderResult result;
  double smoothed = 0.0;
  double best_smoothed = 0.0;
  bool have_best = false;
  double lr = config.min_lr;

  for (int s = 0; s < config.n_steps; ++s) {
    const double loss = step_fn(static_cast<float>(lr));
    if (!std::isfinite(loss)) {
      result.blew_up = true;
      break;
    }
    smoothed = s == 0 ? loss
                      : config.smoothing * smoothed +
                            (1.0 - config.smoothing) * loss;
    result.trace.push_back({static_cast<float>(lr), loss, smoothed});
    if (!have_best || smoothed < best_smoothed) {
      best_smoothed = smoothed;
      have_best = true;
    }
    if (have_best && smoothed > config.blowup_factor * best_smoothed) {
      result.blew_up = true;
      break;
    }
    lr *= ratio;
  }

  if (result.trace.empty()) {
    result.suggested_lr = config.min_lr;
    return result;
  }
  if (result.blew_up) {
    // Classic heuristic: one decade below the LR that destabilised training.
    result.suggested_lr = result.trace.empty()
                              ? config.min_lr
                              : result.trace.back().lr / 10.0f;
    return result;
  }
  // No blow-up within range: half the LR at the smoothed-loss minimum —
  // conservative, and robust to models whose bounded activations degrade
  // gradually instead of NaN-ing.
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    if (result.trace[i].smoothed_loss <
        result.trace[best_idx].smoothed_loss) {
      best_idx = i;
    }
  }
  result.suggested_lr = result.trace[best_idx].lr / 2.0f;
  return result;
}

}  // namespace legw::analysis
