#include "analysis/gradient_noise.hpp"

namespace legw::analysis {

NoiseScaleEstimate estimate_noise_scale(
    i64 batch_small, i64 batch_big,
    const std::function<double(i64)>& grad_sq_norm_at) {
  return estimate_noise_scale_averaged(
      batch_small, batch_big, 1,
      [&](i64 batch, int) { return grad_sq_norm_at(batch); });
}

NoiseScaleEstimate estimate_noise_scale_averaged(
    i64 batch_small, i64 batch_big, int n_draws,
    const std::function<double(i64, int)>& grad_sq_norm_at) {
  LEGW_CHECK(batch_small >= 1 && batch_big > batch_small,
             "noise scale: need batch_small < batch_big");
  LEGW_CHECK(n_draws >= 1, "noise scale: need at least one draw");

  double sq_small = 0.0, sq_big = 0.0;
  for (int d = 0; d < n_draws; ++d) {
    sq_small += grad_sq_norm_at(batch_small, d);
    sq_big += grad_sq_norm_at(batch_big, d);
  }
  sq_small /= n_draws;
  sq_big /= n_draws;

  const double bs = static_cast<double>(batch_small);
  const double bb = static_cast<double>(batch_big);

  NoiseScaleEstimate e;
  e.trace_sigma = (sq_small - sq_big) / (1.0 / bs - 1.0 / bb);
  e.grad_sq_norm = (bb * sq_big - bs * sq_small) / (bb - bs);
  e.valid = e.trace_sigma > 0.0 && e.grad_sq_norm > 0.0;
  e.noise_scale = e.valid ? e.trace_sigma / e.grad_sq_norm : 0.0;
  return e;
}

}  // namespace legw::analysis
