// Learning-rate range test (Leslie Smith 2015): ramp the LR geometrically
// over a short run, record the loss, and report the largest LR at which
// training is still stable. One cheap probe replaces a grid search for the
// LEGW *baseline* LR — the single quantity the paper's method still needs a
// human (or this) to pick.
#pragma once

#include <functional>
#include <vector>

#include "core/common.hpp"

namespace legw::analysis {

struct LrFinderConfig {
  float min_lr = 1e-4f;
  float max_lr = 10.0f;
  int n_steps = 50;
  // The run stops early once the smoothed loss exceeds `blowup_factor` times
  // its best value (training has destabilised).
  double blowup_factor = 4.0;
  double smoothing = 0.7;  // EMA factor on the recorded loss
};

struct LrFinderResult {
  struct Point {
    float lr;
    double loss;          // raw loss at this step
    double smoothed_loss;
  };
  std::vector<Point> trace;
  // On blow-up: one decade below the destabilising LR (the classic rule).
  // Otherwise: half the LR at which the smoothed loss was lowest.
  float suggested_lr = 0.0f;
  bool blew_up = false;
};

// step_fn(lr) must perform exactly one optimizer step at that LR on the next
// training batch and return the (pre-step) loss.
LrFinderResult lr_range_test(const LrFinderConfig& config,
                             const std::function<double(float lr)>& step_fn);

}  // namespace legw::analysis
