// Gradient noise scale (McCandlish et al. 2018, "An Empirical Model of
// Large-Batch Training") — the companion quantity to the paper's Lipschitz
// analysis: it predicts the critical batch size beyond which larger batches
// stop paying off, which is exactly where the paper's sweeps stop scaling.
//
// The simple (unconditioned) noise scale is
//     B_simple = tr(Σ) / ||G||²
// where G is the true gradient and Σ the per-sample gradient covariance.
// We estimate it from two gradient evaluations at different batch sizes
// (the paper's appendix-D estimator):
//     E[||g_B||²] = ||G||² + tr(Σ)/B
// so with batches B_small < B_big,
//     tr(Σ)  ≈ (||g_small||² − ||g_big||²) / (1/B_small − 1/B_big)
//     ||G||² ≈ (B_big·||g_big||² − B_small·||g_small||²) / (B_big − B_small)
#pragma once

#include <functional>
#include <vector>

#include "ag/variable.hpp"

namespace legw::analysis {

struct NoiseScaleEstimate {
  double trace_sigma = 0.0;    // tr(Σ): total gradient variance
  double grad_sq_norm = 0.0;   // ||G||²: squared true-gradient norm
  double noise_scale = 0.0;    // B_simple = tr(Σ) / ||G||²
  bool valid = false;          // false if the estimates came out non-positive
};

// grad_sq_norm_at(batch) must return ||g||² of the *mean* mini-batch
// gradient for a batch of the given size (averaged over `n_samples` draws by
// the caller if desired). The two batch sizes must differ.
NoiseScaleEstimate estimate_noise_scale(
    i64 batch_small, i64 batch_big,
    const std::function<double(i64 batch)>& grad_sq_norm_at);

// Convenience: averages ||g_B||² over `n_draws` calls for stability.
NoiseScaleEstimate estimate_noise_scale_averaged(
    i64 batch_small, i64 batch_big, int n_draws,
    const std::function<double(i64 batch, int draw)>& grad_sq_norm_at);

}  // namespace legw::analysis
