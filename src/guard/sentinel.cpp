#include "guard/sentinel.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sched/schedule.hpp"

namespace legw::guard {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kHealthy: return "healthy";
    case Verdict::kLossSpike: return "loss_spike";
    case Verdict::kGradExplosion: return "grad_explosion";
    case Verdict::kNonFinite: return "non_finite";
  }
  return "healthy";
}

Verdict reduce_verdicts(const std::vector<Verdict>& verdicts) {
  Verdict out = Verdict::kHealthy;
  for (Verdict v : verdicts) {
    if (static_cast<int>(v) > static_cast<int>(out)) out = v;
  }
  return out;
}

// ---- AnomalyPlan ------------------------------------------------------------

AnomalyPlan AnomalyPlan::nan_at(i64 step) {
  AnomalyPlan plan;
  plan.anomalies.push_back({step, Kind::kNaN, 0.0f});
  return plan;
}

AnomalyPlan AnomalyPlan::loss_spike_at(i64 step, float magnitude) {
  AnomalyPlan plan;
  plan.anomalies.push_back({step, Kind::kLossSpike, magnitude});
  return plan;
}

AnomalyPlan AnomalyPlan::grad_explosion_at(i64 step, float magnitude) {
  AnomalyPlan plan;
  plan.anomalies.push_back({step, Kind::kGradExplosion, magnitude});
  return plan;
}

AnomalyPlan& AnomalyPlan::add(i64 step, Kind kind, float magnitude) {
  anomalies.push_back({step, kind, magnitude});
  return *this;
}

const AnomalyPlan::Anomaly* AnomalyPlan::at(i64 step) const {
  for (const auto& a : anomalies) {
    if (a.at_step == step) return &a;
  }
  return nullptr;
}

// ---- StabilitySentinel ------------------------------------------------------

StabilitySentinel::StabilitySentinel(SentinelConfig config,
                                     MitigationPolicy policy)
    : config_(config), policy_(policy) {
  LEGW_CHECK(config_.window >= 1, "StabilitySentinel: window must be >= 1");
  LEGW_CHECK(config_.min_history >= 1,
             "StabilitySentinel: min_history must be >= 1");
  LEGW_CHECK(config_.ledger_capacity >= 1,
             "StabilitySentinel: ledger_capacity must be >= 1");
  LEGW_CHECK(policy_.lr_backoff > 0.0f && policy_.lr_backoff <= 1.0f,
             "StabilitySentinel: lr_backoff must be in (0, 1]");
  loss_window_.assign(static_cast<std::size_t>(config_.window), 0.0f);
  grad_window_.assign(static_cast<std::size_t>(config_.window), 0.0f);
}

double StabilitySentinel::median_loss() const {
  const i64 n = std::min(loss_count_, config_.window);
  if (n == 0) return 0.0;
  std::vector<float> v(loss_window_.begin(), loss_window_.begin() + n);
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  return static_cast<double>(v[static_cast<std::size_t>(n / 2)]);
}

float StabilitySentinel::median_grad() const {
  const i64 n = std::min(grad_count_, config_.window);
  if (n == 0) return 0.0f;
  std::vector<float> v(grad_window_.begin(), grad_window_.begin() + n);
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  return v[static_cast<std::size_t>(n / 2)];
}

Verdict StabilitySentinel::assess(const HealthSignals& s) const {
  // Descending severity: the worst applicable verdict wins.
  if (s.non_finite || !std::isfinite(s.loss) || !std::isfinite(s.grad_norm)) {
    return Verdict::kNonFinite;
  }
  if (grad_count_ >= config_.min_history) {
    const float baseline = std::max(median_grad(), config_.grad_noise_floor);
    if (baseline > 0.0f &&
        s.grad_norm > config_.grad_spike_factor * baseline) {
      return Verdict::kGradExplosion;
    }
  }
  if (s.loss > static_cast<double>(config_.loss_abs_limit)) {
    return Verdict::kLossSpike;
  }
  if (loss_count_ >= config_.min_history) {
    const double baseline =
        std::max(median_loss(),
                 static_cast<double>(config_.loss_noise_floor));
    if (baseline > 0.0 &&
        s.loss > static_cast<double>(config_.loss_spike_factor) * baseline) {
      return Verdict::kLossSpike;
    }
  }
  return Verdict::kHealthy;
}

Decision StabilitySentinel::observe(i64 step, Verdict verdict,
                                    const HealthSignals& s) {
  Decision d;
  if (verdict == Verdict::kHealthy) {
    loss_window_[static_cast<std::size_t>(loss_count_ % config_.window)] =
        static_cast<float>(s.loss);
    ++loss_count_;
    grad_window_[static_cast<std::size_t>(grad_count_ % config_.window)] =
        s.grad_norm;
    ++grad_count_;
    for (auto& p : pending_) ++p.healthy_seen;
    if (in_recovery_ && step > last_anomaly_step_) {
      // The episode closes once the run is past the anomaly AND the
      // re-warmup ramp (levels >= 2 only) has returned LR to the schedule.
      const bool ramp_done =
          level_ < 2 || rollback_step_ < 0 ||
          step - rollback_step_ >= policy_.rewarm_steps;
      if (ramp_done) {
        in_recovery_ = false;
        level_ = 0;
        rollback_step_ = -1;
      }
    }
    d.level = in_recovery_ ? level_ : 0;
    return d;
  }

  // Anomaly: checkpoints written since the last blessing belong to a
  // trajectory we are about to abandon — they must never become rollback
  // targets.
  pending_.clear();
  level_ = in_recovery_ ? level_ + 1 : 1;
  in_recovery_ = true;
  last_anomaly_step_ = step;
  pending_verdict_ = verdict;
  std::ostringstream os;
  os << verdict_name(verdict) << " at step " << step << " (loss " << s.loss
     << ", grad_norm " << s.grad_norm << ")";
  if (!s.detail.empty()) os << ": " << s.detail;
  d.level = level_;
  d.reason = os.str();
  if (level_ > policy_.max_escalations) {
    d.action = Decision::Action::kFail;
    LedgerEntry e;
    e.step = step;
    e.verdict = verdict;
    e.level = level_;
    e.rollback_to = -1;
    ledger_.push_back(e);
    if (static_cast<i64>(ledger_.size()) > config_.ledger_capacity) {
      ledger_.erase(ledger_.begin());
    }
  } else {
    d.action = Decision::Action::kRollback;
  }
  return d;
}

float StabilitySentinel::lr_factor(i64 step) const {
  if (!in_recovery_ || level_ < 2 || rollback_step_ < 0) return 1.0f;
  const float backoff =
      std::pow(policy_.lr_backoff, static_cast<float>(level_ - 1));
  return sched::rewarmup_factor(step - rollback_step_, policy_.rewarm_steps,
                                backoff);
}

float StabilitySentinel::clip_factor() const {
  if (!in_recovery_ || level_ < 3) return 1.0f;
  return policy_.clip_tighten;
}

void StabilitySentinel::note_checkpoint(i64 step) {
  if (static_cast<i64>(pending_.size()) >= kPendingCap) {
    pending_.erase(pending_.begin());
  }
  pending_.push_back(PendingBless{step, 0});
}

std::vector<i64> StabilitySentinel::take_bless_ready() {
  std::vector<i64> ready;
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->healthy_seen >= config_.bless_after) {
      ready.push_back(it->step);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return ready;
}

void StabilitySentinel::on_rollback(i64 restored_step) {
  rollback_step_ = restored_step;
  LedgerEntry e;
  e.step = last_anomaly_step_;
  e.verdict = pending_verdict_;
  e.level = level_;
  e.rollback_to = restored_step;
  ledger_.push_back(e);
  if (static_cast<i64>(ledger_.size()) > config_.ledger_capacity) {
    ledger_.erase(ledger_.begin());
  }
}

bool StabilitySentinel::injection_fired(i64 step) const {
  return std::find(injected_.begin(), injected_.end(), step) !=
         injected_.end();
}

void StabilitySentinel::mark_injection_fired(i64 step) {
  if (injection_fired(step)) return;
  if (static_cast<i64>(injected_.size()) >= kInjectedCap) {
    injected_.erase(injected_.begin());
  }
  injected_.push_back(step);
}

std::string StabilitySentinel::report() const {
  std::ostringstream os;
  os << "stability sentinel: level " << level_ << "/"
     << policy_.max_escalations << (in_recovery_ ? " (in recovery)" : "")
     << ", " << ledger_.size() << " anomalies\n";
  for (const auto& e : ledger_) {
    os << "  step " << e.step << ": " << verdict_name(e.verdict)
       << ", escalation level " << e.level;
    if (e.rollback_to >= 0) {
      os << ", rolled back to step " << e.rollback_to;
    } else {
      os << ", no rollback (ladder exhausted)";
    }
    os << "\n";
  }
  return os.str();
}

// ---- persistence ------------------------------------------------------------
//
// Layout (floats; step indices are exact below 2^24, far beyond any run this
// codebase executes):
//   [0]  version (1)
//   [1]  in_recovery          [2] level           [3] rollback_step
//   [4]  last_anomaly_step    [5] loss_count      [6] grad_count
//   [7]  n_pending            [8] n_injected      [9] n_ledger
//   [10] pending_verdict      [11..15] reserved
//   [16, 16+W)                loss window ring
//   [16+W, 16+2W)             grad window ring
//   ... 2*kPendingCap         pending {step, healthy_seen} pairs
//   ... kInjectedCap          fired injection steps
//   ... 4*ledger_capacity     ledger {step, verdict, level, rollback_to}

namespace {
constexpr i64 kHeader = 16;
constexpr float kStateVersion = 1.0f;
}  // namespace

std::vector<i64> StabilitySentinel::state_shape(const SentinelConfig& config) {
  return {kHeader + 2 * config.window + 2 * kPendingCap + kInjectedCap +
          4 * config.ledger_capacity};
}

void StabilitySentinel::export_state_into(core::Tensor& t) const {
  const auto shape = state_shape(config_);
  LEGW_CHECK(t.dim() == 1 && t.size(0) == shape[0],
             "StabilitySentinel::export_state_into: shape mismatch");
  t.zero_();
  t[0] = kStateVersion;
  t[1] = in_recovery_ ? 1.0f : 0.0f;
  t[2] = static_cast<float>(level_);
  t[3] = static_cast<float>(rollback_step_);
  t[4] = static_cast<float>(last_anomaly_step_);
  t[5] = static_cast<float>(loss_count_);
  t[6] = static_cast<float>(grad_count_);
  t[7] = static_cast<float>(pending_.size());
  t[8] = static_cast<float>(injected_.size());
  t[9] = static_cast<float>(ledger_.size());
  t[10] = static_cast<float>(pending_verdict_);
  i64 at = kHeader;
  for (i64 i = 0; i < config_.window; ++i) {
    t[at + i] = loss_window_[static_cast<std::size_t>(i)];
  }
  at += config_.window;
  for (i64 i = 0; i < config_.window; ++i) {
    t[at + i] = grad_window_[static_cast<std::size_t>(i)];
  }
  at += config_.window;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    t[at + static_cast<i64>(2 * i)] = static_cast<float>(pending_[i].step);
    t[at + static_cast<i64>(2 * i) + 1] =
        static_cast<float>(pending_[i].healthy_seen);
  }
  at += 2 * kPendingCap;
  for (std::size_t i = 0; i < injected_.size(); ++i) {
    t[at + static_cast<i64>(i)] = static_cast<float>(injected_[i]);
  }
  at += kInjectedCap;
  for (std::size_t i = 0; i < ledger_.size(); ++i) {
    const i64 base = at + static_cast<i64>(4 * i);
    t[base] = static_cast<float>(ledger_[i].step);
    t[base + 1] = static_cast<float>(ledger_[i].verdict);
    t[base + 2] = static_cast<float>(ledger_[i].level);
    t[base + 3] = static_cast<float>(ledger_[i].rollback_to);
  }
}

void StabilitySentinel::import_state(const core::Tensor& t) {
  const auto shape = state_shape(config_);
  LEGW_CHECK(t.dim() == 1 && t.size(0) == shape[0],
             "StabilitySentinel::import_state: shape mismatch (sentinel "
             "config differs from the checkpointed run?)");
  LEGW_CHECK(t[0] == kStateVersion,
             "StabilitySentinel::import_state: unknown state version");
  in_recovery_ = t[1] != 0.0f;
  level_ = static_cast<int>(t[2]);
  rollback_step_ = static_cast<i64>(t[3]);
  last_anomaly_step_ = static_cast<i64>(t[4]);
  loss_count_ = static_cast<i64>(t[5]);
  grad_count_ = static_cast<i64>(t[6]);
  const auto n_pending = static_cast<i64>(t[7]);
  const auto n_injected = static_cast<i64>(t[8]);
  const auto n_ledger = static_cast<i64>(t[9]);
  pending_verdict_ = static_cast<Verdict>(static_cast<int>(t[10]));
  i64 at = kHeader;
  for (i64 i = 0; i < config_.window; ++i) {
    loss_window_[static_cast<std::size_t>(i)] = t[at + i];
  }
  at += config_.window;
  for (i64 i = 0; i < config_.window; ++i) {
    grad_window_[static_cast<std::size_t>(i)] = t[at + i];
  }
  at += config_.window;
  pending_.clear();
  for (i64 i = 0; i < std::min(n_pending, kPendingCap); ++i) {
    PendingBless p;
    p.step = static_cast<i64>(t[at + 2 * i]);
    p.healthy_seen = static_cast<i64>(t[at + 2 * i + 1]);
    pending_.push_back(p);
  }
  at += 2 * kPendingCap;
  injected_.clear();
  for (i64 i = 0; i < std::min(n_injected, kInjectedCap); ++i) {
    injected_.push_back(static_cast<i64>(t[at + i]));
  }
  at += kInjectedCap;
  ledger_.clear();
  for (i64 i = 0; i < std::min(n_ledger, config_.ledger_capacity); ++i) {
    const i64 base = at + 4 * i;
    LedgerEntry e;
    e.step = static_cast<i64>(t[base]);
    e.verdict = static_cast<Verdict>(static_cast<int>(t[base + 1]));
    e.level = static_cast<int>(t[base + 2]);
    e.rollback_to = static_cast<i64>(t[base + 3]);
    ledger_.push_back(e);
  }
}

}  // namespace legw::guard
