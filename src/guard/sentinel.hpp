// Training stability sentinel: divergence detection with automatic
// checkpoint rollback and an escalating mitigation ladder.
//
// The paper's sweeps treat a diverged run as a data point ("this LR/batch
// combination fails"); a production large-batch run cannot afford that — a
// single loss spike at step 400k must not discard the job. This subsystem
// turns divergence from a terminal event into a recoverable one:
//
//   signals    — per-step health: train loss vs. a windowed robust (median)
//                baseline, global gradient norm vs. its own baseline, and
//                non-finite values (either observed directly in loss/grad
//                norm or reported by the check:: tripwires running in
//                recoverable mode, see check/check.hpp).
//   verdict    — the per-replica signals each reduce to a Verdict; replicas
//                reduce their verdicts by MAX SEVERITY (reduce_verdicts), so
//                every rank takes the identical recovery decision even when
//                only one rank's shard produced the anomaly. Severity order
//                is part of the wire contract: kHealthy < kLossSpike <
//                kGradExplosion < kNonFinite.
//   recovery   — on an anomaly the runner rolls back to the newest *blessed*
//                checkpoint (ckpt::CheckpointManager; a checkpoint is
//                blessed only after `bless_after` further healthy steps
//                survive past it) and replays the span under an escalating
//                MitigationPolicy:
//                  level 1: retry as-is (transient anomalies, injected ones)
//                  level 2: LR backoff x lr_backoff, linear re-warmup ramp
//                           back to the schedule over rewarm_steps — the
//                           LEGW warmup insight applied in miniature
//                  level 3+: additionally tighten gradient clipping by
//                           clip_tighten (keeps the LR backoff)
//                  level > max_escalations: fail with a structured report.
//                An episode escalates while anomalies keep firing and closes
//                (level reset, clip restored) once a healthy step passes the
//                last anomaly and the re-warmup ramp has completed.
//   state      — everything the sentinel knows (baseline windows, escalation
//                level, anomaly ledger, fired injections) packs into one
//                fixed-shape tensor that the runners persist in the
//                checkpoint `extra` section, so a crash mid-recovery resumes
//                with the ledger intact and the post-rollback trajectory is
//                bitwise-equal to a clean run resumed from the same blessed
//                checkpoint.
//
// The sentinel itself is pure bookkeeping — it never touches files or
// parameters. The runners own the rollback mechanics (restore, invalidate,
// re-save) and apply lr_factor()/clip_factor() to their step; see
// train/runners.cpp and docs/STABILITY.md.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace legw::guard {

// Severity-ordered: reduce_verdicts takes the max across replicas.
enum class Verdict : int {
  kHealthy = 0,
  kLossSpike = 1,
  kGradExplosion = 2,
  kNonFinite = 3,
};

const char* verdict_name(Verdict v);

// Rank-consistency protocol: the cluster-wide verdict is the maximum
// severity any replica saw. Every replica evaluates this same reduction over
// the same gathered verdicts, so all ranks roll back or none do.
Verdict reduce_verdicts(const std::vector<Verdict>& verdicts);

struct SentinelConfig {
  bool enabled = false;  // full protect mode (requires a checkpoint_dir)
  i64 window = 32;       // robust-baseline window (median over last N steps)
  i64 min_history = 8;   // no relative-spike verdicts before this many steps
  float loss_spike_factor = 4.0f;   // loss > factor * median(loss window)
  float grad_spike_factor = 16.0f;  // grad_norm > factor * median(grad window)
  float loss_abs_limit = 1e4f;      // absolute loss ceiling (matches
                                    // train::loss_diverged)
  // Noise floors for the relative detectors: the medians are clamped up to
  // these before the factor comparison. Near convergence the windowed
  // medians shrink toward zero and ordinary fluctuations would otherwise
  // read as factor-sized spikes; a real divergence blows through the floor
  // in absolute terms anyway.
  float loss_noise_floor = 0.25f;
  float grad_noise_floor = 0.1f;
  i64 bless_after = 8;     // healthy steps that must survive past a
                           // checkpoint before it becomes a rollback target
  i64 ledger_capacity = 64;  // anomaly ledger entries kept (oldest dropped)
};

struct MitigationPolicy {
  int max_escalations = 4;    // fail once the level would exceed this
  float lr_backoff = 0.5f;    // LR factor per escalation beyond level 1
  i64 rewarm_steps = 16;      // linear ramp back to the schedule LR
  float clip_tighten = 0.5f;  // clip-norm factor at level >= 3
  float fallback_clip_norm = 1.0f;  // clip applied at level >= 3 when the
                                    // run itself does not clip
};

// One step's health measurements, per replica.
struct HealthSignals {
  double loss = 0.0;
  float grad_norm = 0.0f;
  bool non_finite = false;  // a recoverable check:: tripwire fired this step
  std::string detail;       // tripwire blame message, when non_finite
};

// Seeded, deterministic anomaly injection — the guard twin of
// ckpt::CrashPlan / dist::FaultPlan. Steps match the runner's optimizer step
// index; each anomaly fires at most once per run (the fired set persists in
// the sentinel state, so the post-rollback replay of the same step is
// clean and a resumed run does not re-fire).
struct AnomalyPlan {
  enum class Kind {
    kNaN,            // poison a gradient element with NaN
    kLossSpike,      // multiply the step loss by `magnitude`
    kGradExplosion,  // scale every gradient by `magnitude`
  };
  struct Anomaly {
    i64 at_step = -1;
    Kind kind = Kind::kNaN;
    float magnitude = 1e3f;
  };
  std::vector<Anomaly> anomalies;

  static AnomalyPlan nan_at(i64 step);
  static AnomalyPlan loss_spike_at(i64 step, float magnitude = 1e3f);
  static AnomalyPlan grad_explosion_at(i64 step, float magnitude = 1e6f);
  // Chaining builder for multi-anomaly matrices.
  AnomalyPlan& add(i64 step, Kind kind, float magnitude = 1e3f);

  // The anomaly scheduled for `step`, or nullptr.
  const Anomaly* at(i64 step) const;
};

struct LedgerEntry {
  i64 step = -1;       // step the anomaly fired at
  Verdict verdict = Verdict::kHealthy;
  int level = 0;       // escalation level the episode reached
  i64 rollback_to = -1;  // blessed step restored (-1: failed before rollback)
};

// What the runner must do after observe().
struct Decision {
  enum class Action { kContinue, kRollback, kFail };
  Action action = Action::kContinue;
  int level = 0;       // escalation level in force
  std::string reason;  // human-readable cause (empty when continuing)
};

class StabilitySentinel {
 public:
  StabilitySentinel(SentinelConfig config, MitigationPolicy policy);

  const SentinelConfig& config() const { return config_; }
  const MitigationPolicy& policy() const { return policy_; }

  // Pure signal -> verdict classification; no state change.
  Verdict assess(const HealthSignals& s) const;

  // Drives the state machine with the replica-reduced verdict for `step`.
  // Healthy: baselines absorb the signals, pending blessings advance, an
  // open episode closes once past the last anomaly with the ramp complete.
  // Anomalous: opens/escalates the episode and asks for a rollback, or for
  // failure once the ladder is exhausted. The caller then performs the
  // rollback mechanics and reports the restored step via on_rollback().
  Decision observe(i64 step, Verdict verdict, const HealthSignals& s);

  // Mitigation in force for `step` (identity outside an episode):
  // LR multiplier including the post-rollback re-warmup ramp, and the
  // clip-norm multiplier (level >= 3 only).
  float lr_factor(i64 step) const;
  float clip_factor() const;

  // Blessing pipeline: the runner notes each checkpoint it writes; after
  // `bless_after` healthy steps take_bless_ready() hands the steps back for
  // the runner to mark blessed on disk. An anomaly clears the pending queue
  // (those checkpoints belong to the diverged trajectory).
  void note_checkpoint(i64 step);
  std::vector<i64> take_bless_ready();

  // Records a completed rollback to `restored_step` (appends the ledger
  // entry for the in-flight anomaly).
  void on_rollback(i64 restored_step);

  // One-shot injection bookkeeping (persists across rollback and resume).
  bool injection_fired(i64 step) const;
  void mark_injection_fired(i64 step);

  bool in_recovery() const { return in_recovery_; }
  int escalation_level() const { return level_; }
  i64 rollback_step() const { return rollback_step_; }
  const std::vector<LedgerEntry>& ledger() const { return ledger_; }

  // Human-readable escalation history + current state, for
  // RunResult::guard_report on failure.
  std::string report() const;

  // ---- persistence ----------------------------------------------------------
  // The full sentinel state packs into one float tensor of a shape fixed by
  // the config (the checkpoint `extra` section requires exact shape match).
  static std::vector<i64> state_shape(const SentinelConfig& config);
  void export_state_into(core::Tensor& t) const;
  // Restores from an export_state_into() tensor; aborts on a shape/version
  // mismatch (the checkpoint schema pins both).
  void import_state(const core::Tensor& t);

  // Capacity caps baked into the state layout.
  static constexpr i64 kPendingCap = 16;   // checkpoints awaiting blessing
  static constexpr i64 kInjectedCap = 32;  // fired injections remembered

 private:
  double median_loss() const;
  float median_grad() const;

  SentinelConfig config_;
  MitigationPolicy policy_;

  // Robust baselines: ring buffers of the last `window` healthy signals.
  std::vector<float> loss_window_;
  std::vector<float> grad_window_;
  i64 loss_count_ = 0;  // total healthy losses ever pushed (ring position)
  i64 grad_count_ = 0;

  // Episode state.
  bool in_recovery_ = false;
  int level_ = 0;
  i64 rollback_step_ = -1;
  i64 last_anomaly_step_ = -1;
  Verdict pending_verdict_ = Verdict::kHealthy;  // anomaly awaiting rollback

  struct PendingBless {
    i64 step = -1;
    i64 healthy_seen = 0;
  };
  std::vector<PendingBless> pending_;
  std::vector<i64> injected_;
  std::vector<LedgerEntry> ledger_;
};

}  // namespace legw::guard
