#include "train/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace legw::train {

double perplexity(double mean_nll) {
  return std::exp(std::min(mean_nll, 30.0));
}

namespace {
// Multiset of n-grams of order n.
std::map<std::vector<i32>, i64> ngram_counts(const std::vector<i32>& tokens,
                                             int n) {
  std::map<std::vector<i32>, i64> counts;
  if (static_cast<int>(tokens.size()) < n) return counts;
  for (std::size_t i = 0; i + n <= tokens.size(); ++i) {
    std::vector<i32> gram(tokens.begin() + static_cast<std::ptrdiff_t>(i),
                          tokens.begin() + static_cast<std::ptrdiff_t>(i + n));
    ++counts[gram];
  }
  return counts;
}
}  // namespace

double corpus_bleu(const std::vector<std::vector<i32>>& hypotheses,
                   const std::vector<std::vector<i32>>& references,
                   int max_n, bool smooth) {
  LEGW_CHECK(hypotheses.size() == references.size(),
             "corpus_bleu: hypothesis/reference count mismatch");
  LEGW_CHECK(max_n >= 1, "corpus_bleu: max_n must be >= 1");
  if (hypotheses.empty()) return 0.0;

  std::vector<i64> matches(static_cast<std::size_t>(max_n), 0);
  std::vector<i64> totals(static_cast<std::size_t>(max_n), 0);
  i64 hyp_len = 0;
  i64 ref_len = 0;

  for (std::size_t s = 0; s < hypotheses.size(); ++s) {
    const auto& hyp = hypotheses[s];
    const auto& ref = references[s];
    hyp_len += static_cast<i64>(hyp.size());
    ref_len += static_cast<i64>(ref.size());
    for (int n = 1; n <= max_n; ++n) {
      auto hyp_grams = ngram_counts(hyp, n);
      auto ref_grams = ngram_counts(ref, n);
      for (const auto& [gram, count] : hyp_grams) {
        totals[static_cast<std::size_t>(n - 1)] += count;
        const auto it = ref_grams.find(gram);
        if (it != ref_grams.end()) {
          matches[static_cast<std::size_t>(n - 1)] +=
              std::min(count, it->second);
        }
      }
    }
  }

  if (hyp_len == 0) return 0.0;

  double log_precision_sum = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    double m = static_cast<double>(matches[static_cast<std::size_t>(n - 1)]);
    double t = static_cast<double>(totals[static_cast<std::size_t>(n - 1)]);
    if (t == 0.0) {
      // No n-grams of this order at all (very short corpus): skip the order
      // entirely by treating precision as 1 (contributes 0 to the log sum).
      continue;
    }
    if (m == 0.0) {
      // Unigram precision of zero means nothing matched at all: BLEU is 0
      // regardless of smoothing. Higher orders get +1 smoothing only.
      if (!smooth || n == 1) return 0.0;
      m = 1.0;
      t += 1.0;
    }
    log_precision_sum += std::log(m / t);
  }
  const double geo_mean = std::exp(log_precision_sum / max_n);

  const double bp =
      hyp_len >= ref_len
          ? 1.0
          : std::exp(1.0 - static_cast<double>(ref_len) / hyp_len);
  return 100.0 * bp * geo_mean;
}

}  // namespace legw::train
