// Evaluation metrics: classification accuracy, perplexity, and corpus BLEU.
#pragma once

#include <vector>

#include "core/common.hpp"

namespace legw::train {

// exp(mean negative log-likelihood). Clamped to avoid inf on diverged runs.
double perplexity(double mean_nll);

// Corpus-level BLEU-4 with brevity penalty (the sacrebleu/mteval definition:
// geometric mean of clipped n-gram precisions for n = 1..4). `smooth` adds
// the standard +1 smoothing to higher-order precisions with zero matches
// (Lin & Och 2004, smoothing method 2), which keeps short-sentence synthetic
// corpora comparable. Returns BLEU in [0, 100].
double corpus_bleu(const std::vector<std::vector<i32>>& hypotheses,
                   const std::vector<std::vector<i32>>& references,
                   int max_n = 4, bool smooth = true);

}  // namespace legw::train
