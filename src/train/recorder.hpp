// Metric recorder: collects (step, named-value) rows during training and
// writes them as CSV — the raw material for re-plotting any figure. Cheap
// enough to leave on in every run (values are buffered in memory).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::train {

class Recorder {
 public:
  // Records `value` for `series` at the given step. Steps within a series
  // must be non-decreasing (typical: record once per iteration or epoch).
  void record(const std::string& series, i64 step, double value);

  struct Point {
    i64 step;
    double value;
  };
  const std::vector<Point>& series(const std::string& name) const;
  // Lookup that tolerates unknown names: nullptr instead of aborting.
  const std::vector<Point>* find_series(const std::string& name) const;
  std::vector<std::string> series_names() const;
  bool empty() const { return data_.empty(); }

  // Writes all series in long form: series,step,value — one row per point,
  // series in lexicographic order. Returns false and sets *error on I/O
  // failure (unwritable path, short write) instead of aborting.
  [[nodiscard]] bool write_csv(const std::string& path,
                               std::string* error = nullptr) const;
  // Renders the same content to a string (for tests and logging).
  std::string to_csv() const;

 private:
  std::map<std::string, std::vector<Point>> data_;
};

}  // namespace legw::train
