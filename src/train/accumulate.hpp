// Gradient accumulation: emulate a batch k times larger than memory allows
// by summing k micro-batch backward passes before one optimizer step.
//
// The paper's large-batch experiments stop where device memory runs out
// (PTB at 640, GNMT at 4K "will lead to the out-of-memory issue"); gradient
// accumulation is the standard way past that wall, and with LEGW the
// schedule for the *effective* batch applies unchanged. Equivalence with a
// real large batch (exact up to float reassociation) is verified in
// tests/test_train_extras.cpp.
#pragma once

#include <functional>

#include "ag/variable.hpp"

namespace legw::train {

class GradientAccumulator {
 public:
  // `params` are the model parameters whose gradients accumulate.
  explicit GradientAccumulator(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}

  // Runs one micro-batch: zero nothing, backward the scalar loss returned by
  // `loss_fn`, count it. Micro-batch losses must be *means over equally
  // sized micro-batches* for finish() to produce the large-batch mean.
  // Returns the loss value.
  float micro_step(const std::function<ag::Variable()>& loss_fn) {
    ag::Variable loss = loss_fn();
    LEGW_CHECK(loss.numel() == 1, "GradientAccumulator: loss must be scalar");
    ag::backward(loss);
    ++count_;
    return loss.value()[0];
  }

  // Counts a micro-batch whose backward ran outside this accumulator — e.g.
  // one dist::overlapped_backward call with zero_grads=false, which leaves
  // the replica-mean micro-batch gradient *added* onto the existing
  // gradients. finish() then divides by the number of micro-batches exactly
  // as if micro_step had run them (tests/test_train_extras.cpp verifies the
  // composition reproduces the replicas × micro-batches large-batch step).
  void count_external_micro_step() { ++count_; }

  // Scales the accumulated gradients to the mean over all micro-batches and
  // resets the counter. Call exactly once per optimizer step.
  void finish() {
    LEGW_CHECK(count_ > 0, "GradientAccumulator: finish() before any micro_step");
    const float inv = 1.0f / static_cast<float>(count_);
    for (auto& p : params_) p.mutable_grad().scale_(inv);
    count_ = 0;
  }

  i64 pending_micro_steps() const { return count_; }

  // Restores the micro-step position after a checkpoint resume. The
  // accumulated gradients themselves live in the parameters' grad tensors
  // and travel in the checkpoint's "grads" section (written whenever the
  // saved position is mid-accumulation), so position + restored grads
  // reproduce the interrupted large-batch step exactly.
  //
  // A restored count of 0 means "no accumulation in flight", and the next
  // micro_step must start summing from zero — but the grad buffers may hold
  // arbitrary content (the pre-crash partial sums, or recycled arena bytes;
  // the checkpoint only writes a "grads" section when count > 0). Zero-fill
  // explicitly instead of assuming freshly-zeroed buffers. For count > 0 the
  // caller restores the partial sums right after this call; materialise the
  // buffers so that restore always lands in allocated (heap-bound) storage.
  void restore_pending(i64 count) {
    LEGW_CHECK(count >= 0, "GradientAccumulator: negative pending count");
    count_ = count;
    if (count == 0) {
      for (auto& p : params_) p.zero_grad();
    } else {
      for (auto& p : params_) p.mutable_grad();
    }
  }

 private:
  std::vector<ag::Variable> params_;
  i64 count_ = 0;
};

}  // namespace legw::train
