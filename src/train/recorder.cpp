#include "train/recorder.hpp"

#include <sstream>

#include "core/io.hpp"

namespace legw::train {

void Recorder::record(const std::string& series, i64 step, double value) {
  auto& points = data_[series];
  LEGW_CHECK(points.empty() || points.back().step <= step,
             "Recorder: steps within a series must be non-decreasing");
  points.push_back({step, value});
}

const std::vector<Recorder::Point>& Recorder::series(
    const std::string& name) const {
  const auto it = data_.find(name);
  LEGW_CHECK(it != data_.end(), "Recorder: unknown series '" + name + "'");
  return it->second;
}

const std::vector<Recorder::Point>* Recorder::find_series(
    const std::string& name) const {
  const auto it = data_.find(name);
  return it == data_.end() ? nullptr : &it->second;
}

std::vector<std::string> Recorder::series_names() const {
  std::vector<std::string> names;
  names.reserve(data_.size());
  for (const auto& [name, points] : data_) names.push_back(name);
  return names;
}

std::string Recorder::to_csv() const {
  std::ostringstream os;
  os << "series,step,value\n";
  for (const auto& [name, points] : data_) {
    for (const auto& p : points) {
      os << name << "," << p.step << "," << p.value << "\n";
    }
  }
  return os.str();
}

bool Recorder::write_csv(const std::string& path, std::string* error) const {
  // Atomic publication: a crash (or injected kill) mid-export never leaves a
  // torn CSV where a previous complete one stood.
  const core::Status st = core::atomic_write_file(path, to_csv());
  if (!st.ok() && error != nullptr) *error = st.message();
  return st.ok();
}

}  // namespace legw::train
