#include "train/recorder.hpp"

#include <cstdio>
#include <sstream>

namespace legw::train {

void Recorder::record(const std::string& series, i64 step, double value) {
  auto& points = data_[series];
  LEGW_CHECK(points.empty() || points.back().step <= step,
             "Recorder: steps within a series must be non-decreasing");
  points.push_back({step, value});
}

const std::vector<Recorder::Point>& Recorder::series(
    const std::string& name) const {
  const auto it = data_.find(name);
  LEGW_CHECK(it != data_.end(), "Recorder: unknown series '" + name + "'");
  return it->second;
}

std::vector<std::string> Recorder::series_names() const {
  std::vector<std::string> names;
  names.reserve(data_.size());
  for (const auto& [name, points] : data_) names.push_back(name);
  return names;
}

std::string Recorder::to_csv() const {
  std::ostringstream os;
  os << "series,step,value\n";
  for (const auto& [name, points] : data_) {
    for (const auto& p : points) {
      os << name << "," << p.step << "," << p.value << "\n";
    }
  }
  return os.str();
}

void Recorder::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  LEGW_CHECK(f != nullptr, "Recorder: cannot open " + path);
  const std::string csv = to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  LEGW_CHECK(ok, "Recorder: short write to " + path);
}

}  // namespace legw::train
