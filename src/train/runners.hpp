// End-to-end training runners: one per paper application.
//
// The benches and examples all funnel through these four functions, so every
// experiment uses the identical train loop: per-step LR from the schedule,
// gradient clipping by global norm, divergence detection (NaN/explosion ->
// the run is marked diverged and aborted, mirroring what "training diverged"
// means in the paper's tuning sweeps).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/tensor.hpp"
#include "data/corpus.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"
#include "dist/membership.hpp"
#include "guard/sentinel.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "models/resnet.hpp"
#include "obs/telemetry.hpp"
#include "sched/schedule.hpp"

namespace legw::ckpt {
struct CrashPlan;
}

namespace legw::train {

class Recorder;

struct RunConfig {
  i64 batch_size = 128;
  i64 epochs = 5;
  std::string optimizer = "momentum";  // see optim::make_optimizer
  float weight_decay = 0.0f;
  float clip_norm = 5.0f;  // 0 disables clipping
  const sched::LrSchedule* schedule = nullptr;  // required
  u64 seed = 1;
  bool verbose = false;
  // Skip intermediate metric evaluations and only evaluate after the final
  // epoch (sweep benches set this — evaluation dominates short runs,
  // especially GNMT's greedy decode).
  bool final_eval_only = false;
  // Optional metric sink: when set, every runner records "train_loss" per
  // step and its task metric per evaluated epoch ("test_acc" / "valid_ppl" /
  // "test_bleu"). Deterministic for a fixed seed, so two identically-seeded
  // runs render identical CSV.
  Recorder* recorder = nullptr;
  // When true, RunResult::final_params receives a copy of every parameter
  // tensor after the last step (golden-determinism tests compare bitwise).
  bool capture_final_params = false;
  // --- checkpoint / resume (see ckpt/checkpoint.hpp, docs/CHECKPOINT.md) ---
  // When checkpoint_dir is non-empty the runner persists the full training
  // state (params, buffers, optimizer state, RNG streams, carried BPTT
  // state, counters) every checkpoint_every_steps optimizer steps, keeping
  // the newest checkpoint_keep_last files. Composes with replicas > 1:
  // replica 0 is written, every replica is restored bit-identically.
  std::string checkpoint_dir;
  i64 checkpoint_every_steps = 0;  // 0 disables periodic writes
  int checkpoint_keep_last = 3;
  // When true and checkpoint_dir holds a valid checkpoint, the runner resumes
  // from the newest loadable one (corrupted files are skipped) and reproduces
  // the uninterrupted run bit-for-bit from that step on.
  bool resume = false;
  // Deterministic injected kills for crash-safety tests; not owned. A fired
  // kill stops the run with RunResult::interrupted set, as if the process
  // died (mid-step, mid-write, or torn-publish — see ckpt::CrashPlan).
  const ckpt::CrashPlan* crash_plan = nullptr;
  // Data-parallel replica count. 1 = the classic single-model loop. For
  // replicas > 1 (train_mnist only, for now) the runner instantiates
  // `replicas` identically-initialised models, shards every batch across
  // them, and averages gradients through dist::replica_backward — the
  // sync or overlapped engine per LEGW_DIST. batch_size must be divisible
  // by replicas. Metrics and captured parameters come from replica 0
  // (replicas stay bit-synchronised, so the choice is immaterial).
  i64 replicas = 1;
  // --- elastic membership (dist/membership.hpp; train_mnist, replicas > 1) --
  // Step-indexed join/leave/die plan; not owned, nullptr = static membership.
  // Joins are handed the anchor replica's full state through an in-memory
  // checkpoint image (ckpt::load_image); a replica dying at step s is
  // detected during s via the engine's timeout machinery and its shard is
  // handled per membership_policy from s+1 on.
  const dist::MembershipPlan* membership = nullptr;
  dist::MembershipPolicy membership_policy = dist::MembershipPolicy::kReassign;
  // Engine bucket timeout used to detect dying replicas; must be > 0 when
  // the plan contains kDie events.
  double membership_timeout_ms = 0.0;
  // --- stability sentinel (guard/sentinel.hpp, docs/STABILITY.md) ----------
  // With sentinel.enabled AND a checkpoint_dir, the runner enters protect
  // mode: per-step health signals (loss-spike / gradient-explosion /
  // non-finite) drive automatic rollback to the newest blessed checkpoint
  // and the escalating mitigation ladder. The sentinel's state (baseline
  // windows, escalation level, anomaly ledger) is persisted in every
  // checkpoint's `extra` section, so protect-mode checkpoints are only
  // resumable by protect-mode runs with the same sentinel geometry. Without
  // the explicit opt-in, LEGW_GUARD=on gives observe-only mode: guard.*
  // counters and events, zero trajectory or schema change.
  guard::SentinelConfig sentinel;
  guard::MitigationPolicy mitigation;
  // Seeded anomaly injection for recovery tests (protect mode only); not
  // owned. Each anomaly fires once, even across rollback replay and resume.
  const guard::AnomalyPlan* anomaly_plan = nullptr;
};

struct RunResult {
  // Task metric: accuracy in [0,1] (MNIST/ResNet), perplexity (PTB, lower is
  // better), BLEU in [0,100] (GNMT).
  double final_metric = 0.0;
  std::vector<double> per_epoch_metric;
  double final_train_loss = 0.0;
  bool diverged = false;
  double wall_seconds = 0.0;
  i64 steps = 0;
  // Filled only when RunConfig::capture_final_params is set: one tensor per
  // parameter, in Module::parameters() order.
  std::vector<core::Tensor> final_params;
  // True when a CrashPlan kill fired: the run stopped early, exactly as if
  // the process had died (no final eval, metrics reflect the last completed
  // step). Restart with RunConfig::resume to continue it.
  bool interrupted = false;
  // Step the run resumed from (-1 = fresh start). Informational.
  i64 resumed_from_step = -1;
  // --- stability sentinel outcomes (protect/observe modes) -----------------
  i64 guard_anomalies = 0;   // anomalous verdicts observed
  i64 guard_rollbacks = 0;   // rollbacks performed (protect mode)
  int guard_escalation_max = 0;  // highest mitigation level reached
  // True when the mitigation ladder was exhausted (diverged is also set);
  // guard_report then carries the structured escalation history.
  bool guard_failed = false;
  std::string guard_report;
};

RunResult train_mnist(const data::SyntheticMnist& dataset,
                      const models::MnistLstmConfig& model_config,
                      const RunConfig& run);

RunResult train_ptb(const data::SyntheticCorpus& corpus,
                    const models::PtbConfig& model_config,
                    const RunConfig& run);

RunResult train_gnmt(const data::SyntheticTranslation& dataset,
                     const models::GnmtConfig& model_config,
                     const RunConfig& run);

RunResult train_resnet(const data::SyntheticImages& dataset,
                       const models::ResNetConfig& model_config,
                       const RunConfig& run);

// Helper shared by the runners and tests: true if the loss value indicates a
// diverged run (NaN, inf, or absurdly large).
bool loss_diverged(double loss);

// Flattens a run's config and result into an obs::RunRecord so benches can
// append one JSONL telemetry line per run (obs::append_run_telemetry merges
// in the phase summary and counters captured while the run executed).
obs::RunRecord make_run_record(const std::string& name, const RunConfig& run,
                               const RunResult& result);

}  // namespace legw::train
