#include "train/runners.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "ag/ops.hpp"
#include "check/check.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "dist/compression.hpp"
#include "dist/overlap.hpp"
#include "mem/alloc.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "train/metrics.hpp"
#include "train/recorder.hpp"

namespace legw::train {

bool loss_diverged(double loss) {
  return !std::isfinite(loss) || loss > 1e4;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Per-step boilerplate shared by all runners. `opts` holds one optimizer per
// model replica (exactly one for the classic single-model loop); every
// replica sees the identical schedule so data-parallel replicas stay
// bit-synchronised.
struct StepLoop {
  std::vector<optim::Optimizer*> opts;
  const RunConfig* run;
  i64 steps_per_epoch;
  i64 step = 0;

  // Sets the schedule LR for the current step and advances. Returns the
  // fractional epoch used. `lr_scale` is the sentinel's post-rollback
  // mitigation factor; exactly 1.0f skips the multiply so a guard-less step
  // stays bitwise identical.
  double begin_step(float lr_scale = 1.0f) {
    const double epoch =
        static_cast<double>(step) / static_cast<double>(steps_per_epoch);
    auto lr = run->schedule->lr(epoch);
    if (lr_scale != 1.0f) lr *= lr_scale;
    for (optim::Optimizer* opt : opts) opt->set_lr(lr);
    // Publish the step so a non-finite tripwire firing anywhere in this
    // step's forward/backward/update blames *when*, not just where.
    check::set_step_index(step);
    ++step;
    return epoch;
  }
};

// Shared post-forward tail of one training step: divergence check, backward,
// clip, optimizer update, bookkeeping. Returns false when the run diverged.
// With multiple replicas every optimizer clips and steps on the identical
// replica-mean gradients, so the updates are identical too. `clip_norm` is
// the effective clip (the sentinel may tighten it mid-episode; equals
// run.clip_norm whenever the guard is inactive).
bool finish_step(const RunConfig& run, StepLoop& loop, double loss_value,
                 RunResult* result, float clip_norm) {
  result->final_train_loss = loss_value;
  if (run.recorder != nullptr) {
    run.recorder->record("train_loss", loop.step - 1, loss_value);
  }
  if (loss_diverged(loss_value)) {
    result->diverged = true;
    return false;
  }
  if (clip_norm > 0.0f) {
    obs::Span span("clip");
    for (optim::Optimizer* opt : loop.opts) {
      optim::clip_grad_norm(opt->params(), clip_norm);
    }
  }
  {
    obs::Span span("optimizer");
    for (optim::Optimizer* opt : loop.opts) opt->step();
  }
  obs::count("steps", 1);
  ++result->steps;
  return true;
}

// Checkpoint/resume hook shared by the four runners. `fill` rebuilds the
// TrainState views on every save/restore (the pointed-at objects move — PTB
// reassigns its carried BPTT state each chunk), then the hook stamps the
// counters and delegates policy to ckpt::CheckpointManager.
struct CkptHook {
  const RunConfig* run;
  std::function<void(ckpt::TrainState&)> fill;
  std::optional<ckpt::CheckpointManager> mgr;

  CkptHook(const RunConfig& r, std::function<void(ckpt::TrainState&)> f)
      : run(&r), fill(std::move(f)) {
    if (!r.checkpoint_dir.empty()) {
      ckpt::ManagerConfig mc;
      mc.dir = r.checkpoint_dir;
      mc.every_steps = r.checkpoint_every_steps;
      mc.keep_last = r.checkpoint_keep_last;
      mc.crash = r.crash_plan;
      mgr.emplace(std::move(mc));
    }
  }

  // Restores the newest valid checkpoint when RunConfig::resume is set.
  // Returns the optimizer step to resume from (0 = fresh start; corrupted
  // candidates were skipped by the manager, an empty directory is a fresh
  // start, not an error).
  i64 maybe_restore(RunResult* result) {
    if (!mgr.has_value() || !run->resume) return 0;
    ckpt::TrainState state;
    fill(state);
    const auto outcome = mgr->restore_latest(state);
    for (const auto& skip : outcome.skipped) {
      std::fprintf(stderr, "checkpoint: skipping corrupt %s (%s: %s)\n",
                   skip.path.c_str(), ckpt::status_name(skip.status),
                   skip.message.c_str());
    }
    if (!outcome.restored) return 0;
    result->resumed_from_step = state.step;
    return state.step;
  }

  // Runs after every completed optimizer step. Returns false when an
  // injected kill fired: the caller stops the run as if the process died
  // (RunResult::interrupted is set; no final eval happens).
  bool after_step(i64 step, i64 epoch, RunResult* result) {
    const ckpt::CrashPlan::Crash* crash =
        run->crash_plan == nullptr ? nullptr : run->crash_plan->crash_at(step);
    if (crash != nullptr && crash->kind == ckpt::CrashPlan::Kind::kMidStep) {
      result->interrupted = true;
      return false;
    }
    if (!mgr.has_value() || !mgr->due(step)) return true;
    ckpt::TrainState state;
    fill(state);
    state.step = step;
    state.epoch = epoch;
    const ckpt::Result r = mgr->save_now(state);
    if (r.status == ckpt::Status::kSimulatedCrash) {
      result->interrupted = true;
      return false;
    }
    if (!r.ok()) {
      // A failed periodic write must not kill a multi-hour run; the
      // previous checkpoint is still intact.
      std::fprintf(stderr, "checkpoint write failed: %s\n", r.message.c_str());
    }
    return true;
  }
};

// Stability-sentinel glue shared by the four runners (guard/sentinel.hpp).
// Construction order matters: the runner builds the GuardHook first so its
// state tensor can be registered inside the CkptHook fill lambda (protect
// mode adds "guard.sentinel" to the checkpoint `extra` schema), then
// attaches the CkptHook. Modes:
//   protect — RunConfig::sentinel.enabled && checkpoint_dir set: detection,
//             rollback to the newest blessed checkpoint, and the escalating
//             mitigation ladder; the check:: tripwires run in recoverable
//             mode for the run's duration so a non-finite value becomes a
//             report the sentinel consumes instead of an abort.
//   observe — LEGW_GUARD=on (and not protect): signals, guard.* counters and
//             events only; the trajectory, abort behaviour and checkpoint
//             schema are bit-for-bit those of a guard-less run.
struct GuardHook {
  enum class Action { kProceed, kRestart, kStop };

  const RunConfig* run;
  bool protect = false;
  bool observe = false;
  std::optional<guard::StabilitySentinel> sentinel;
  core::Tensor state;  // the persisted "guard.sentinel" extra (protect mode)
  std::optional<check::RecoverableScope> recoverable;
  CkptHook* ck = nullptr;
  i64 steps_per_epoch = 1;
  i64 restart_step = 0;  // valid after inspect() returns kRestart

  explicit GuardHook(const RunConfig& r) : run(&r) {
    protect = r.sentinel.enabled && !r.checkpoint_dir.empty();
    observe = protect || core::guard_mode() == core::GuardMode::kObserve;
    if (observe) sentinel.emplace(r.sentinel, r.mitigation);
    if (protect) {
      state = core::Tensor(guard::StabilitySentinel::state_shape(r.sentinel));
      recoverable.emplace(true);
    }
  }

  // Registered inside the CkptHook fill lambda: every save carries a fresh
  // export of the sentinel state, every restore deposits the file's copy
  // into `state`.
  void fill_extra(ckpt::TrainState& s) {
    if (!protect) return;
    sentinel->export_state_into(state);
    s.extra.emplace_back("guard.sentinel", &state);
  }

  void attach(CkptHook* hook, i64 spe) {
    ck = hook;
    steps_per_epoch = spe;
  }

  float lr_scale(i64 step) const {
    return protect ? sentinel->lr_factor(step) : 1.0f;
  }

  float effective_clip() const {
    if (!protect) return run->clip_norm;
    const float f = sentinel->clip_factor();
    if (f == 1.0f) return run->clip_norm;
    return run->clip_norm > 0.0f ? run->clip_norm * f
                                 : run->mitigation.fallback_clip_norm;
  }

  // After CkptHook::maybe_restore: adopt the persisted sentinel state, or on
  // a fresh protect-mode start persist + bless the step-0 checkpoint so a
  // rollback target exists from the first step. Returns false when the run
  // must stop (injected crash during the step-0 write).
  bool after_restore(i64 start_step, RunResult* result) {
    if (!protect) return true;
    if (start_step > 0) {
      sentinel->import_state(state);
      return true;
    }
    ckpt::TrainState s;
    ck->fill(s);
    s.step = 0;
    s.epoch = 0;
    const ckpt::Result w = ck->mgr->save_now(s);
    if (w.status == ckpt::Status::kSimulatedCrash) {
      result->interrupted = true;
      return false;
    }
    LEGW_CHECK(w.ok(),
               "guard: cannot write the step-0 rollback target: " + w.message);
    const ckpt::Result b = ck->mgr->bless(0);
    LEGW_CHECK(b.ok(),
               "guard: cannot bless the step-0 checkpoint: " + b.message);
    return true;
  }

  // One-shot seeded anomaly injection, applied identically on every active
  // replica so the synchrony invariant holds through the anomaly itself.
  // Runs post-backward: the poisoned values are exactly what the sentinel
  // inspects, and a detected anomaly never reaches the optimizer.
  void maybe_inject(i64 step, double* loss_value,
                    const std::vector<optim::Optimizer*>& opts) {
    if (!protect || run->anomaly_plan == nullptr) return;
    const guard::AnomalyPlan::Anomaly* a = run->anomaly_plan->at(step);
    if (a == nullptr || sentinel->injection_fired(step)) return;
    sentinel->mark_injection_fired(step);
    const char* kind = "nan";
    switch (a->kind) {
      case guard::AnomalyPlan::Kind::kLossSpike:
        kind = "loss_spike";
        *loss_value *= static_cast<double>(a->magnitude);
        break;
      case guard::AnomalyPlan::Kind::kNaN:
        for (optim::Optimizer* opt : opts) {
          if (opt->params().empty()) continue;
          ag::Variable handle = opt->params()[0];
          handle.mutable_grad()[0] = std::numeric_limits<float>::quiet_NaN();
        }
        break;
      case guard::AnomalyPlan::Kind::kGradExplosion:
        kind = "grad_explosion";
        for (optim::Optimizer* opt : opts) {
          for (const ag::Variable& p : opt->params()) {
            ag::Variable handle = p;
            handle.mutable_grad().scale_(a->magnitude);
          }
        }
        break;
    }
    obs::TraceRecorder::global().add_event(
        "guard_injected", {{"step", std::to_string(step)}, {"kind", kind}});
  }

  // Post-backward / pre-optimizer health inspection. kProceed: the step goes
  // on (always, outside protect mode). kRestart: rolled back — the runner
  // repositions its data pipeline at `restart_step` and replays. kStop: the
  // ladder is exhausted (guard_failed + diverged) or an injected crash fired
  // during recovery (interrupted).
  Action inspect(i64 step, double loss_value,
                 const std::vector<optim::Optimizer*>& opts,
                 RunResult* result) {
    if (!observe) return Action::kProceed;
    const check::TripwireReport rep =
        protect ? check::take_tripwire_report() : check::TripwireReport{};
    guard::HealthSignals signals;
    signals.loss = loss_value;
    signals.non_finite = rep.fired;
    signals.detail = rep.message;
    // Rank-consistent decision: one verdict per active replica, reduced by
    // max severity — every rank then takes the identical action.
    std::vector<guard::Verdict> verdicts;
    verdicts.reserve(opts.size());
    for (std::size_t i = 0; i < opts.size(); ++i) {
      guard::HealthSignals s = signals;
      s.grad_norm = optim::global_grad_norm(opts[i]->params());
      if (i == 0) signals.grad_norm = s.grad_norm;  // replica-0 view
      verdicts.push_back(sentinel->assess(s));
    }
    const guard::Verdict verdict = guard::reduce_verdicts(verdicts);
    obs::count("guard.steps", 1);
    const guard::Decision d = sentinel->observe(step, verdict, signals);
    if (verdict == guard::Verdict::kHealthy) return Action::kProceed;
    ++result->guard_anomalies;
    obs::count("guard.anomalies", 1);
    obs::TraceRecorder::global().add_event(
        "guard_anomaly", {{"step", std::to_string(step)},
                          {"verdict", guard::verdict_name(verdict)},
                          {"level", std::to_string(d.level)}});
    if (!protect) return Action::kProceed;  // observe-only: no intervention
    if (d.action == guard::Decision::Action::kFail) {
      result->guard_failed = true;
      result->diverged = true;
      result->guard_report = sentinel->report();
      obs::count("guard.failures", 1);
      std::fprintf(stderr, "guard: mitigation ladder exhausted: %s\n%s",
                   d.reason.c_str(), result->guard_report.c_str());
      return Action::kStop;
    }
    return rollback(d, result);
  }

  // After CkptHook::after_step: feed the blessing pipeline.
  void after_save(i64 step) {
    if (!protect) return;
    if (ck->mgr->due(step)) sentinel->note_checkpoint(step);
    for (const i64 bstep : sentinel->take_bless_ready()) {
      const ckpt::Result b = ck->mgr->bless(bstep);
      // Retention may have reaped the file before it earned its blessing;
      // losing a would-be target is fine, losing the run is not.
      if (b.ok()) obs::count("guard.blessed", 1);
    }
  }

 private:
  Action rollback(const guard::Decision& d, RunResult* result) {
    obs::Span span("rollback");
    ckpt::TrainState s;
    ck->fill(s);
    const auto outcome = ck->mgr->restore_blessed(s);
    if (!outcome.restored) {
      // No blessed checkpoint loads: unrecoverable. (The step-0 blessing
      // makes this unreachable short of on-disk corruption of every target.)
      result->guard_failed = true;
      result->diverged = true;
      result->guard_report = sentinel->report() +
                             "rollback failed: " + outcome.status.message;
      return Action::kStop;
    }
    const i64 restored = s.step;
    // Order matters: the restore clobbered the in-memory `state` tensor with
    // the blessed file's stale copy; on_rollback now, and the fill-time
    // re-export below, make the updated ledger win.
    sentinel->on_rollback(restored);
    ++result->guard_rollbacks;
    result->guard_escalation_max =
        std::max(result->guard_escalation_max, d.level);
    obs::count("guard.rollbacks", 1);
    obs::TraceRecorder::global().add_event(
        "guard_rollback", {{"to_step", std::to_string(restored)},
                           {"level", std::to_string(d.level)},
                           {"reason", d.reason}});
    {
      // Publication: drop the abandoned trajectory's unblessed checkpoints
      // (a crash before the next save must not resume from them), then
      // re-save the blessed step with the updated sentinel ledger so a crash
      // mid-recovery resumes with the escalation history intact. Same model
      // bytes, newer ledger; the on-disk .blessed marker survives.
      obs::Span mspan("mitigate");
      ck->mgr->invalidate_after(restored);
      ckpt::TrainState s2;
      ck->fill(s2);
      s2.step = restored;
      s2.epoch = restored / steps_per_epoch;
      const ckpt::Result w = ck->mgr->save_now(s2);
      if (w.status == ckpt::Status::kSimulatedCrash) {
        result->interrupted = true;
        return Action::kStop;
      }
    }
    restart_step = restored;
    return Action::kRestart;
  }
};

void record_epoch_metric(const RunConfig& run, const char* series, i64 epoch,
                         double value) {
  if (run.recorder != nullptr) run.recorder->record(series, epoch, value);
}

void capture_params(const RunConfig& run,
                    const std::vector<ag::Variable>& params,
                    RunResult* result) {
  if (!run.capture_final_params) return;
  result->final_params.reserve(params.size());
  for (const ag::Variable& p : params) result->final_params.push_back(p.value());
}

// When LEGW_TELEMETRY names a file, every runner appends one JSONL record
// there, so sweeps driven by any bench binary produce a machine-readable log
// without per-bench wiring. Export failures are reported, never fatal: a full
// sweep should not die on a bad log path.
void maybe_emit_telemetry(const char* runner, const RunConfig& run,
                          const RunResult& result) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
  const char* path = std::getenv("LEGW_TELEMETRY");
  if (path == nullptr || path[0] == '\0') return;
  const std::string name = std::string(runner) + ".b" +
                           std::to_string(run.batch_size) + ".s" +
                           std::to_string(run.seed);
  std::string err;
  if (!obs::append_run_telemetry(path, make_run_record(name, run, result),
                                 obs::TraceRecorder::global(), &err)) {
    std::fprintf(stderr, "telemetry append failed: %s\n", err.c_str());
  }
}

}  // namespace

RunResult train_mnist(const data::SyntheticMnist& dataset,
                      const models::MnistLstmConfig& model_config,
                      const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_mnist: schedule required");
  const i64 n_replicas = run.replicas;
  LEGW_CHECK(n_replicas >= 1, "train_mnist: replicas must be >= 1");
  LEGW_CHECK(run.batch_size % n_replicas == 0,
             "train_mnist: batch_size must be divisible by replicas");
  const auto start = Clock::now();
  models::MnistLstmConfig mc = model_config;
  mc.seed = model_config.seed + run.seed;
  // Identical config and seed mean bitwise-identical initial weights on
  // every replica, so the synchrony invariant holds from step 0.
  std::vector<std::unique_ptr<models::MnistLstm>> replicas;
  std::vector<std::unique_ptr<optim::Optimizer>> opts;
  std::vector<std::vector<ag::Variable>> replica_params;
  for (i64 r = 0; r < n_replicas; ++r) {
    replicas.push_back(std::make_unique<models::MnistLstm>(mc));
    opts.push_back(optim::make_optimizer(
        run.optimizer, replicas.back()->parameters(), run.weight_decay));
    replica_params.push_back(replicas.back()->parameters());
  }
  models::MnistLstm& model = *replicas[0];
  optim::Optimizer* opt = opts[0].get();
  data::IndexBatcher batcher(dataset.n_train(), run.batch_size,
                             run.seed * 1000003ull + 5);

  LEGW_CHECK(run.membership == nullptr || n_replicas > 1,
             "train_mnist: membership plans need replicas > 1");
  std::optional<dist::MembershipManager> membership;
  // Error-feedback residuals for a quantized wire (LEGW_DIST_WIRE), shared
  // across steps and checkpointed so resume stays bit-identical.
  std::unique_ptr<dist::WireState> wire_state;
  if (n_replicas > 1 && core::dist_wire() != core::WireFormat::kFp32) {
    wire_state = std::make_unique<dist::WireState>(replica_params);
  }

  RunResult result;
  StepLoop loop{{}, &run, batcher.batches_per_epoch()};
  for (auto& o : opts) loop.opts.push_back(o.get());

  GuardHook gd(run);
  CkptHook ck(run, [&](ckpt::TrainState& state) {
    for (i64 r = 0; r < n_replicas; ++r) {
      state.models.push_back(replicas[static_cast<std::size_t>(r)].get());
      state.optimizers.push_back(opts[static_cast<std::size_t>(r)].get());
    }
    if (wire_state != nullptr) {
      for (auto& [name, tensor] : wire_state->named_residuals()) {
        state.extra.emplace_back(name, tensor);
      }
    }
    gd.fill_extra(state);
  });
  gd.attach(&ck, loop.steps_per_epoch);
  i64 start_step = ck.maybe_restore(&result);

  auto evaluate = [&]() {
    obs::Span span("eval");
    // Chunked test-set accuracy to bound graph memory.
    const i64 chunk = 256;
    i64 correct_weighted = 0;
    i64 total = 0;
    for (i64 begin = 0; begin < dataset.n_test(); begin += chunk) {
      const i64 end = std::min(dataset.n_test(), begin + chunk);
      std::vector<i64> idx;
      idx.reserve(static_cast<std::size_t>(end - begin));
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      const double acc = model.accuracy(dataset.gather_images(idx, false),
                                        dataset.gather_labels(idx, false));
      correct_weighted += static_cast<i64>(std::lround(acc * (end - begin)));
      total += end - begin;
    }
    return static_cast<double>(correct_weighted) / static_cast<double>(total);
  };

  // The outer restart loop re-enters training after a sentinel rollback:
  // the data pipeline and membership history are deterministically replayed
  // to the restored step, exactly like a checkpoint resume.
  bool restart = gd.after_restore(start_step, &result);
  while (restart) {
    restart = false;
    // The batcher is seeded and deterministic: replaying it to the start
    // point reproduces the exact shuffle sequence of the uninterrupted run.
    batcher = data::IndexBatcher(dataset.n_train(), run.batch_size,
                                 run.seed * 1000003ull + 5);
    for (i64 i = 0; i < start_step; ++i) batcher.next();
    loop.step = start_step;
    // The checkpoint restore re-synchronised every replica, so the
    // membership history below the start step replays without hand-offs.
    if (run.membership != nullptr) {
      membership.emplace(static_cast<int>(n_replicas), run.membership_policy,
                         run.membership);
      membership->fast_forward(start_step);
    }
    const i64 start_epoch = start_step / loop.steps_per_epoch;

  for (i64 epoch = start_epoch; epoch < run.epochs && !result.diverged;
       ++epoch) {
    const i64 s0 = epoch == start_epoch ? start_step % loop.steps_per_epoch : 0;
    for (i64 s = s0; s < loop.steps_per_epoch; ++s) {
      obs::Span step_span("step");
      dist::MembershipManager::Transition tr;
      if (membership.has_value()) {
        tr = membership->begin_step(loop.step);
        if (!tr.joined.empty()) {
          // Joining replicas receive the anchor's full state through an
          // in-memory checkpoint image — the cluster hand-off, minus the
          // filesystem.
          obs::Span span("membership_handoff");
          ckpt::TrainState src;
          src.models.push_back(replicas[0].get());
          src.optimizers.push_back(opts[0].get());
          const std::string image = ckpt::encode(src);
          for (int j : tr.joined) {
            ckpt::TrainState dst;
            dst.models.push_back(replicas[static_cast<std::size_t>(j)].get());
            dst.optimizers.push_back(opts[static_cast<std::size_t>(j)].get());
            const ckpt::Result handed =
                ckpt::load_image(dst, image, "membership hand-off");
            LEGW_CHECK(handed.ok(),
                       "train_mnist: membership hand-off failed: " +
                           handed.message);
            // A joiner starts with clean error-feedback state: its stale
            // residual belongs to gradients that were never shipped.
            if (wire_state != nullptr) {
              for (std::size_t p = 0; p < replica_params[0].size(); ++p) {
                wire_state->residual(j, p).zero_();
              }
            }
            obs::count("dist.member_join", 1);
          }
        }
        if (!tr.left.empty()) {
          obs::count("dist.member_leave", static_cast<i64>(tr.left.size()));
        }
        if (!tr.died.empty()) {
          obs::count("dist.member_dead", static_cast<i64>(tr.died.size()));
        }
        // Only the active replicas clip and step this round; absentees
        // rejoin through the hand-off above, never by optimizer drift.
        loop.opts.clear();
        for (int gid : membership->active()) {
          loop.opts.push_back(opts[static_cast<std::size_t>(gid)].get());
        }
      }
      loop.begin_step(gd.lr_scale(loop.step));
      double loss_value = 0.0;
      if (n_replicas == 1) {
        // Arena mode: every tensor below (batch, activations, interior
        // grads) lives in the step arena and is freed — in tape order, see
        // ag::backward — before the scope closes; leaf grads and optimizer
        // state stay heap-bound, so finish_step() runs outside the scope.
        mem::TrainStepScope arena_scope;
        core::Tensor images;
        std::vector<i32> labels;
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          images = dataset.gather_images(idx, true);
          labels = dataset.gather_labels(idx, true);
        }
        model.zero_grad();
        ag::Variable loss;
        {
          obs::Span span("forward");
          loss = model.loss(images, labels);
        }
        loss_value = loss.value()[0];
        if (!loss_diverged(loss_value)) {
          obs::Span span("backward");
          ag::backward(loss);
        }
      } else {
        // Shard the global batch by home shard id (the data order never
        // depends on membership), gather every shard up front (the batcher
        // and dataset stay single-threaded), then let the dist engine run
        // the participants' forward/backward concurrently and leave the
        // participant-mean gradient in every participant.
        const i64 shard = run.batch_size / n_replicas;
        std::vector<core::Tensor> images(static_cast<std::size_t>(n_replicas));
        std::vector<std::vector<i32>> labels(
            static_cast<std::size_t>(n_replicas));
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          for (i64 r = 0; r < n_replicas; ++r) {
            const std::vector<i64> sh(idx.begin() + r * shard,
                                      idx.begin() + (r + 1) * shard);
            images[static_cast<std::size_t>(r)] =
                dataset.gather_images(sh, true);
            labels[static_cast<std::size_t>(r)] =
                dataset.gather_labels(sh, true);
          }
        }
        // Participant view: global replica ids plus their assigned shards.
        // Static membership is the identity assignment.
        std::vector<int> parts;
        std::vector<std::vector<int>> assignment;
        if (membership.has_value()) {
          parts = membership->participants();
          assignment = membership->shard_assignment();
        } else {
          for (i64 r = 0; r < n_replicas; ++r) {
            parts.push_back(static_cast<int>(r));
            assignment.push_back({static_cast<int>(r)});
          }
        }
        std::vector<std::vector<ag::Variable>> part_params;
        part_params.reserve(parts.size());
        for (int gid : parts) {
          part_params.push_back(replica_params[static_cast<std::size_t>(gid)]);
        }
        // Each participant's loss is scaled so the allreduce mean over the
        // participants equals the mean over every *assigned* shard — with
        // kReassign that is the full global batch despite the absences.
        const float factor = static_cast<float>(parts.size()) /
                             static_cast<float>(n_replicas);
        const auto loss_fn = [&](int i) {
          const auto gid = static_cast<std::size_t>(
              parts[static_cast<std::size_t>(i)]);
          const std::vector<int>& mine =
              assignment[static_cast<std::size_t>(i)];
          ag::Variable total =
              replicas[gid]->loss(images[static_cast<std::size_t>(mine[0])],
                                  labels[static_cast<std::size_t>(mine[0])]);
          for (std::size_t k = 1; k < mine.size(); ++k) {
            total = ag::add(
                total,
                replicas[gid]->loss(images[static_cast<std::size_t>(mine[k])],
                                    labels[static_cast<std::size_t>(mine[k])]));
          }
          return factor == 1.0f && mine.size() == 1 ? total
                                                    : ag::scale(total, factor);
        };
        if (!membership.has_value() && wire_state == nullptr) {
          loss_value = dist::replica_backward(replica_params, loss_fn);
        } else {
          dist::FaultPlan faults;
          for (int d : tr.died) {
            faults.faults.push_back({d, dist::FaultPlan::Kind::kDead, 0.0});
          }
          dist::ReplicaStepOptions step_opts;
          step_opts.wire_state = wire_state.get();
          step_opts.replica_ids = &parts;
          if (!faults.faults.empty()) step_opts.faults = &faults;
          step_opts.bucket_timeout_ms = run.membership_timeout_ms;
          step_opts.timeout_policy =
              run.membership_policy == dist::MembershipPolicy::kFailFast
                  ? dist::TimeoutPolicy::kFailFast
                  : dist::TimeoutPolicy::kDegradeToSurvivors;
          const dist::OverlapResult res =
              dist::replica_backward_ex(part_params, loss_fn, step_opts);
          if (!res.ok) {
            // Fail-fast membership: a death ends the run cleanly, exactly
            // as a real scheduler would tear the job down.
            std::fprintf(stderr, "train_mnist: %s\n", res.error.c_str());
            result.interrupted = true;
            break;
          }
          loss_value = res.mean_loss;
        }
      }
      gd.maybe_inject(loop.step - 1, &loss_value, loop.opts);
      const GuardHook::Action act =
          gd.inspect(loop.step - 1, loss_value, loop.opts, &result);
      if (act == GuardHook::Action::kRestart) {
        start_step = gd.restart_step;
        restart = true;
        break;
      }
      if (act == GuardHook::Action::kStop) break;
      if (!finish_step(run, loop, loss_value, &result, gd.effective_clip()))
        break;
      if (!ck.after_step(loop.step, epoch, &result)) break;
      gd.after_save(loop.step);
    }
    if (restart || result.interrupted) break;
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double acc = (result.diverged || !eval_now) ? 0.0 : evaluate();
    if (eval_now) {
      result.per_epoch_metric.push_back(acc);
      record_epoch_metric(run, "test_acc", epoch, acc);
    }
    if (run.verbose) {
      std::printf("  [mnist] epoch %lld  loss %.4f  test_acc %.4f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  acc);
    }
  }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  capture_params(run, opt->params(), &result);
  result.wall_seconds = seconds_since(start);
  maybe_emit_telemetry("train_mnist", run, result);
  return result;
}

RunResult train_ptb(const data::SyntheticCorpus& corpus,
                    const models::PtbConfig& model_config,
                    const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_ptb: schedule required");
  LEGW_CHECK(run.replicas == 1,
             "train_ptb: replicas > 1 is only wired for train_mnist");
  const auto start = Clock::now();
  models::PtbConfig mc = model_config;
  mc.vocab = corpus.vocab();
  mc.seed = model_config.seed + run.seed;
  models::PtbModel model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::BpttBatcher batcher(corpus.train_tokens(), run.batch_size,
                            mc.bptt_len);
  core::Rng dropout_rng(run.seed * 7919ull + 3);

  RunResult result;
  StepLoop loop{{opt.get()}, &run, batcher.chunks_per_epoch()};
  models::PtbModel::CarriedState carried = model.zero_carried(run.batch_size);

  GuardHook gd(run);
  CkptHook ck(run, [&](ckpt::TrainState& state) {
    state.models.push_back(&model);
    state.optimizers.push_back(opt.get());
    state.rngs.emplace_back("dropout", &dropout_rng);
    // The carried BPTT state is training state: dropping it on resume would
    // change every loss after the restart point.
    for (std::size_t l = 0; l < carried.h.size(); ++l) {
      state.extra.emplace_back("carried.h[" + std::to_string(l) + "]",
                               &carried.h[l]);
      state.extra.emplace_back("carried.c[" + std::to_string(l) + "]",
                               &carried.c[l]);
    }
    gd.fill_extra(state);
  });
  gd.attach(&ck, loop.steps_per_epoch);
  i64 start_step = ck.maybe_restore(&result);

  // Validation batch geometry: modest so evaluation stays cheap.
  const i64 eval_batch = std::min<i64>(20, run.batch_size);

  bool restart = gd.after_restore(start_step, &result);
  while (restart) {
    restart = false;
    // Replay the deterministic chunk stream to the start point; the carried
    // BPTT state and dropout RNG came back through the checkpoint restore.
    batcher = data::BpttBatcher(corpus.train_tokens(), run.batch_size,
                                mc.bptt_len);
    for (i64 i = 0; i < start_step; ++i) batcher.next_chunk();
    loop.step = start_step;
    const i64 start_epoch = start_step / loop.steps_per_epoch;

  for (i64 epoch = start_epoch; epoch < run.epochs && !result.diverged;
       ++epoch) {
    const i64 s0 = epoch == start_epoch ? start_step % loop.steps_per_epoch : 0;
    for (i64 s = s0; s < loop.steps_per_epoch; ++s) {
      obs::Span step_span("step");
      loop.begin_step(gd.lr_scale(loop.step));
      double loss_value = 0.0;
      {
        mem::TrainStepScope arena_scope;
        data::BpttBatcher::Chunk chunk;
        {
          obs::Span span("data");
          chunk = batcher.next_chunk();
        }
        if (chunk.first_in_epoch) carried = model.zero_carried(run.batch_size);
        model.zero_grad();
        models::PtbModel::ChunkResult out;
        {
          obs::Span span("forward");
          out = model.chunk_loss(chunk.inputs, chunk.targets, run.batch_size,
                                 mc.bptt_len, carried, dropout_rng);
        }
        carried = std::move(out.carried);
        // The carried BPTT state outlives the step (the next chunk reads it
        // and checkpoints reference it), so it cannot stay in step storage.
        for (core::Tensor& t : carried.h) t.rehome_();
        for (core::Tensor& t : carried.c) t.rehome_();
        loss_value = out.loss.value()[0];
        if (!loss_diverged(loss_value)) {
          obs::Span span("backward");
          ag::backward(out.loss);
        }
      }
      gd.maybe_inject(loop.step - 1, &loss_value, loop.opts);
      const GuardHook::Action act =
          gd.inspect(loop.step - 1, loss_value, loop.opts, &result);
      if (act == GuardHook::Action::kRestart) {
        start_step = gd.restart_step;
        restart = true;
        break;
      }
      if (act == GuardHook::Action::kStop) break;
      if (!finish_step(run, loop, loss_value, &result, gd.effective_clip()))
        break;
      if (!ck.after_step(loop.step, epoch, &result)) break;
      gd.after_save(loop.step);
    }
    if (restart || result.interrupted) break;
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    double ppl = 0.0;
    if (result.diverged) {
      ppl = 1e9;
    } else if (eval_now) {
      obs::Span span("eval");
      ppl = perplexity(
          model.evaluate_nll(corpus.valid_tokens(), eval_batch, mc.bptt_len));
    }
    if (eval_now || result.diverged) {
      result.per_epoch_metric.push_back(ppl);
      record_epoch_metric(run, "valid_ppl", epoch, ppl);
    }
    if (run.verbose) {
      std::printf("  [ptb] epoch %lld  loss %.4f  valid_ppl %.2f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  ppl);
    }
  }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 1e9 : result.per_epoch_metric.back();
  capture_params(run, opt->params(), &result);
  result.wall_seconds = seconds_since(start);
  maybe_emit_telemetry("train_ptb", run, result);
  return result;
}

RunResult train_gnmt(const data::SyntheticTranslation& dataset,
                     const models::GnmtConfig& model_config,
                     const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_gnmt: schedule required");
  LEGW_CHECK(run.replicas == 1,
             "train_gnmt: replicas > 1 is only wired for train_mnist");
  const auto start = Clock::now();
  models::GnmtConfig mc = model_config;
  mc.src_vocab = dataset.config().src_vocab;
  mc.tgt_vocab = dataset.config().tgt_vocab;
  mc.seed = model_config.seed + run.seed;
  models::Gnmt model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::IndexBatcher batcher(static_cast<i64>(dataset.train().size()),
                             run.batch_size, run.seed * 104729ull + 11);
  core::Rng dropout_rng(run.seed * 31337ull + 1);

  RunResult result;
  StepLoop loop{{opt.get()}, &run, batcher.batches_per_epoch()};

  GuardHook gd(run);
  CkptHook ck(run, [&](ckpt::TrainState& state) {
    state.models.push_back(&model);
    state.optimizers.push_back(opt.get());
    state.rngs.emplace_back("dropout", &dropout_rng);
    gd.fill_extra(state);
  });
  gd.attach(&ck, loop.steps_per_epoch);
  i64 start_step = ck.maybe_restore(&result);

  auto evaluate_bleu = [&]() {
    obs::Span span("eval");
    model.set_training(false);
    std::vector<std::vector<i32>> hyps;
    std::vector<std::vector<i32>> refs;
    const i64 chunk = 64;
    const i64 n = static_cast<i64>(dataset.test().size());
    for (i64 begin = 0; begin < n; begin += chunk) {
      const i64 end = std::min(n, begin + chunk);
      std::vector<i64> idx;
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      auto batch = data::make_translation_batch(dataset.test(), idx);
      auto decoded = model.greedy_decode(batch, batch.tgt_len + 4);
      for (i64 i = 0; i < end - begin; ++i) {
        hyps.push_back(std::move(decoded[static_cast<std::size_t>(i)]));
        refs.push_back(
            dataset.test()[static_cast<std::size_t>(begin + i)].tgt);
      }
    }
    model.set_training(true);
    return corpus_bleu(hyps, refs);
  };

  bool restart = gd.after_restore(start_step, &result);
  while (restart) {
    restart = false;
    batcher = data::IndexBatcher(static_cast<i64>(dataset.train().size()),
                                 run.batch_size, run.seed * 104729ull + 11);
    for (i64 i = 0; i < start_step; ++i) batcher.next();
    loop.step = start_step;
    const i64 start_epoch = start_step / loop.steps_per_epoch;

  for (i64 epoch = start_epoch; epoch < run.epochs && !result.diverged;
       ++epoch) {
    const i64 s0 = epoch == start_epoch ? start_step % loop.steps_per_epoch : 0;
    for (i64 s = s0; s < loop.steps_per_epoch; ++s) {
      obs::Span step_span("step");
      loop.begin_step(gd.lr_scale(loop.step));
      double loss_value = 0.0;
      {
        mem::TrainStepScope arena_scope;
        data::TranslationBatch batch;
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          batch = data::make_translation_batch(dataset.train(), idx);
        }
        model.zero_grad();
        ag::Variable loss;
        {
          obs::Span span("forward");
          loss = model.loss(batch, dropout_rng);
        }
        loss_value = loss.value()[0];
        if (!loss_diverged(loss_value)) {
          obs::Span span("backward");
          ag::backward(loss);
        }
      }
      gd.maybe_inject(loop.step - 1, &loss_value, loop.opts);
      const GuardHook::Action act =
          gd.inspect(loop.step - 1, loss_value, loop.opts, &result);
      if (act == GuardHook::Action::kRestart) {
        start_step = gd.restart_step;
        restart = true;
        break;
      }
      if (act == GuardHook::Action::kStop) break;
      if (!finish_step(run, loop, loss_value, &result, gd.effective_clip()))
        break;
      if (!ck.after_step(loop.step, epoch, &result)) break;
      gd.after_save(loop.step);
    }
    if (restart || result.interrupted) break;
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double bleu = (result.diverged || !eval_now) ? 0.0 : evaluate_bleu();
    if (eval_now || result.diverged) {
      result.per_epoch_metric.push_back(bleu);
      record_epoch_metric(run, "test_bleu", epoch, bleu);
    }
    if (run.verbose) {
      std::printf("  [gnmt] epoch %lld  loss %.4f  test_bleu %.2f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  bleu);
    }
  }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  capture_params(run, opt->params(), &result);
  result.wall_seconds = seconds_since(start);
  maybe_emit_telemetry("train_gnmt", run, result);
  return result;
}

RunResult train_resnet(const data::SyntheticImages& dataset,
                       const models::ResNetConfig& model_config,
                       const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_resnet: schedule required");
  LEGW_CHECK(run.replicas == 1,
             "train_resnet: replicas > 1 is only wired for train_mnist");
  const auto start = Clock::now();
  models::ResNetConfig mc = model_config;
  mc.seed = model_config.seed + run.seed;
  models::ResNet model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::IndexBatcher batcher(dataset.n_train(), run.batch_size,
                             run.seed * 49157ull + 9);

  RunResult result;
  StepLoop loop{{opt.get()}, &run, batcher.batches_per_epoch()};

  GuardHook gd(run);
  CkptHook ck(run, [&](ckpt::TrainState& state) {
    state.models.push_back(&model);
    state.optimizers.push_back(opt.get());
    // BatchNorm running stats travel as named module buffers.
    gd.fill_extra(state);
  });
  gd.attach(&ck, loop.steps_per_epoch);
  i64 start_step = ck.maybe_restore(&result);

  auto evaluate = [&]() {
    obs::Span span("eval");
    const i64 chunk = 128;
    i64 correct_weighted = 0;
    i64 total = 0;
    for (i64 begin = 0; begin < dataset.n_test(); begin += chunk) {
      const i64 end = std::min(dataset.n_test(), begin + chunk);
      std::vector<i64> idx;
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      const double acc = model.accuracy(dataset.gather_images(idx, false),
                                        dataset.gather_labels(idx, false));
      correct_weighted += static_cast<i64>(std::lround(acc * (end - begin)));
      total += end - begin;
    }
    return static_cast<double>(correct_weighted) / static_cast<double>(total);
  };

  bool restart = gd.after_restore(start_step, &result);
  while (restart) {
    restart = false;
    batcher = data::IndexBatcher(dataset.n_train(), run.batch_size,
                                 run.seed * 49157ull + 9);
    for (i64 i = 0; i < start_step; ++i) batcher.next();
    loop.step = start_step;
    const i64 start_epoch = start_step / loop.steps_per_epoch;

  for (i64 epoch = start_epoch; epoch < run.epochs && !result.diverged;
       ++epoch) {
    const i64 s0 = epoch == start_epoch ? start_step % loop.steps_per_epoch : 0;
    for (i64 s = s0; s < loop.steps_per_epoch; ++s) {
      obs::Span step_span("step");
      loop.begin_step(gd.lr_scale(loop.step));
      double loss_value = 0.0;
      {
        mem::TrainStepScope arena_scope;
        core::Tensor images;
        std::vector<i32> labels;
        {
          obs::Span span("data");
          const std::vector<i64> idx = batcher.next();
          images = dataset.gather_images(idx, true);
          labels = dataset.gather_labels(idx, true);
        }
        model.zero_grad();
        ag::Variable loss;
        {
          obs::Span span("forward");
          loss = model.loss(images, labels);
        }
        loss_value = loss.value()[0];
        if (!loss_diverged(loss_value)) {
          obs::Span span("backward");
          ag::backward(loss);
        }
      }
      gd.maybe_inject(loop.step - 1, &loss_value, loop.opts);
      const GuardHook::Action act =
          gd.inspect(loop.step - 1, loss_value, loop.opts, &result);
      if (act == GuardHook::Action::kRestart) {
        start_step = gd.restart_step;
        restart = true;
        break;
      }
      if (act == GuardHook::Action::kStop) break;
      if (!finish_step(run, loop, loss_value, &result, gd.effective_clip()))
        break;
      if (!ck.after_step(loop.step, epoch, &result)) break;
      gd.after_save(loop.step);
    }
    if (restart || result.interrupted) break;
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double acc = (result.diverged || !eval_now) ? 0.0 : evaluate();
    if (eval_now) {
      result.per_epoch_metric.push_back(acc);
      record_epoch_metric(run, "test_acc", epoch, acc);
    }
    if (run.verbose) {
      std::printf("  [resnet] epoch %lld  loss %.4f  test_acc %.4f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  acc);
    }
  }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  capture_params(run, opt->params(), &result);
  result.wall_seconds = seconds_since(start);
  maybe_emit_telemetry("train_resnet", run, result);
  return result;
}

obs::RunRecord make_run_record(const std::string& name, const RunConfig& run,
                               const RunResult& result) {
  obs::RunRecord rec;
  rec.run = name;
  rec.config.emplace_back("batch_size", std::to_string(run.batch_size));
  rec.config.emplace_back("epochs", std::to_string(run.epochs));
  rec.config.emplace_back("optimizer", run.optimizer);
  rec.config.emplace_back("weight_decay", std::to_string(run.weight_decay));
  rec.config.emplace_back("clip_norm", std::to_string(run.clip_norm));
  rec.config.emplace_back("seed", std::to_string(run.seed));
  rec.config.emplace_back("kernel",
                          core::gemm_kernel_name(core::gemm_kernel()));
  rec.config.emplace_back("replicas", std::to_string(run.replicas));
  rec.config.emplace_back("dist", core::dist_mode_name(core::dist_mode()));
  const bool protect = run.sentinel.enabled && !run.checkpoint_dir.empty();
  rec.config.emplace_back(
      "guard", protect ? "protect"
                       : (core::guard_mode() == core::GuardMode::kObserve
                              ? "observe"
                              : "off"));
  rec.metrics.emplace_back("final_metric", result.final_metric);
  rec.metrics.emplace_back("final_train_loss", result.final_train_loss);
  rec.metrics.emplace_back("diverged", result.diverged ? 1.0 : 0.0);
  rec.metrics.emplace_back("wall_seconds", result.wall_seconds);
  rec.metrics.emplace_back("steps", static_cast<double>(result.steps));
  rec.metrics.emplace_back("guard_anomalies",
                           static_cast<double>(result.guard_anomalies));
  rec.metrics.emplace_back("guard_rollbacks",
                           static_cast<double>(result.guard_rollbacks));
  rec.metrics.emplace_back("guard_escalation_max",
                           static_cast<double>(result.guard_escalation_max));
  rec.metrics.emplace_back("guard_failed", result.guard_failed ? 1.0 : 0.0);
  return rec;
}

}  // namespace legw::train
