#include "train/runners.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "optim/optimizer.hpp"
#include "train/metrics.hpp"

namespace legw::train {

bool loss_diverged(double loss) {
  return !std::isfinite(loss) || loss > 1e4;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Per-step boilerplate shared by all runners.
struct StepLoop {
  optim::Optimizer* opt;
  const RunConfig* run;
  i64 steps_per_epoch;
  i64 step = 0;

  // Sets the schedule LR for the current step and advances. Returns the
  // fractional epoch used.
  double begin_step() {
    const double epoch =
        static_cast<double>(step) / static_cast<double>(steps_per_epoch);
    opt->set_lr(run->schedule->lr(epoch));
    ++step;
    return epoch;
  }
};

}  // namespace

RunResult train_mnist(const data::SyntheticMnist& dataset,
                      const models::MnistLstmConfig& model_config,
                      const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_mnist: schedule required");
  const auto start = Clock::now();
  models::MnistLstmConfig mc = model_config;
  mc.seed = model_config.seed + run.seed;
  models::MnistLstm model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::IndexBatcher batcher(dataset.n_train(), run.batch_size,
                             run.seed * 1000003ull + 5);

  RunResult result;
  StepLoop loop{opt.get(), &run, batcher.batches_per_epoch()};

  auto evaluate = [&]() {
    // Chunked test-set accuracy to bound graph memory.
    const i64 chunk = 256;
    i64 correct_weighted = 0;
    i64 total = 0;
    for (i64 begin = 0; begin < dataset.n_test(); begin += chunk) {
      const i64 end = std::min(dataset.n_test(), begin + chunk);
      std::vector<i64> idx;
      idx.reserve(static_cast<std::size_t>(end - begin));
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      const double acc = model.accuracy(dataset.gather_images(idx, false),
                                        dataset.gather_labels(idx, false));
      correct_weighted += static_cast<i64>(std::lround(acc * (end - begin)));
      total += end - begin;
    }
    return static_cast<double>(correct_weighted) / static_cast<double>(total);
  };

  for (i64 epoch = 0; epoch < run.epochs && !result.diverged; ++epoch) {
    for (i64 s = 0; s < loop.steps_per_epoch; ++s) {
      loop.begin_step();
      std::vector<i64> idx = batcher.next();
      model.zero_grad();
      ag::Variable loss = model.loss(dataset.gather_images(idx, true),
                                     dataset.gather_labels(idx, true));
      result.final_train_loss = loss.value()[0];
      if (loss_diverged(result.final_train_loss)) {
        result.diverged = true;
        break;
      }
      ag::backward(loss);
      if (run.clip_norm > 0.0f) {
        optim::clip_grad_norm(opt->params(), run.clip_norm);
      }
      opt->step();
      ++result.steps;
    }
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double acc = (result.diverged || !eval_now) ? 0.0 : evaluate();
    if (eval_now) result.per_epoch_metric.push_back(acc);
    if (run.verbose) {
      std::printf("  [mnist] epoch %lld  loss %.4f  test_acc %.4f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  acc);
    }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  result.wall_seconds = seconds_since(start);
  return result;
}

RunResult train_ptb(const data::SyntheticCorpus& corpus,
                    const models::PtbConfig& model_config,
                    const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_ptb: schedule required");
  const auto start = Clock::now();
  models::PtbConfig mc = model_config;
  mc.vocab = corpus.vocab();
  mc.seed = model_config.seed + run.seed;
  models::PtbModel model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::BpttBatcher batcher(corpus.train_tokens(), run.batch_size,
                            mc.bptt_len);
  core::Rng dropout_rng(run.seed * 7919ull + 3);

  RunResult result;
  StepLoop loop{opt.get(), &run, batcher.chunks_per_epoch()};
  models::PtbModel::CarriedState carried = model.zero_carried(run.batch_size);

  // Validation batch geometry: modest so evaluation stays cheap.
  const i64 eval_batch = std::min<i64>(20, run.batch_size);

  for (i64 epoch = 0; epoch < run.epochs && !result.diverged; ++epoch) {
    for (i64 s = 0; s < loop.steps_per_epoch; ++s) {
      loop.begin_step();
      auto chunk = batcher.next_chunk();
      if (chunk.first_in_epoch) carried = model.zero_carried(run.batch_size);
      model.zero_grad();
      auto out = model.chunk_loss(chunk.inputs, chunk.targets, run.batch_size,
                                  mc.bptt_len, carried, dropout_rng);
      carried = std::move(out.carried);
      result.final_train_loss = out.loss.value()[0];
      if (loss_diverged(result.final_train_loss)) {
        result.diverged = true;
        break;
      }
      ag::backward(out.loss);
      if (run.clip_norm > 0.0f) {
        optim::clip_grad_norm(opt->params(), run.clip_norm);
      }
      opt->step();
      ++result.steps;
    }
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double ppl =
        result.diverged
            ? 1e9
            : (eval_now ? perplexity(model.evaluate_nll(
                              corpus.valid_tokens(), eval_batch, mc.bptt_len))
                        : 0.0);
    if (eval_now || result.diverged) result.per_epoch_metric.push_back(ppl);
    if (run.verbose) {
      std::printf("  [ptb] epoch %lld  loss %.4f  valid_ppl %.2f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  ppl);
    }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 1e9 : result.per_epoch_metric.back();
  result.wall_seconds = seconds_since(start);
  return result;
}

RunResult train_gnmt(const data::SyntheticTranslation& dataset,
                     const models::GnmtConfig& model_config,
                     const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_gnmt: schedule required");
  const auto start = Clock::now();
  models::GnmtConfig mc = model_config;
  mc.src_vocab = dataset.config().src_vocab;
  mc.tgt_vocab = dataset.config().tgt_vocab;
  mc.seed = model_config.seed + run.seed;
  models::Gnmt model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::IndexBatcher batcher(static_cast<i64>(dataset.train().size()),
                             run.batch_size, run.seed * 104729ull + 11);
  core::Rng dropout_rng(run.seed * 31337ull + 1);

  RunResult result;
  StepLoop loop{opt.get(), &run, batcher.batches_per_epoch()};

  auto evaluate_bleu = [&]() {
    model.set_training(false);
    std::vector<std::vector<i32>> hyps;
    std::vector<std::vector<i32>> refs;
    const i64 chunk = 64;
    const i64 n = static_cast<i64>(dataset.test().size());
    for (i64 begin = 0; begin < n; begin += chunk) {
      const i64 end = std::min(n, begin + chunk);
      std::vector<i64> idx;
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      auto batch = data::make_translation_batch(dataset.test(), idx);
      auto decoded = model.greedy_decode(batch, batch.tgt_len + 4);
      for (i64 i = 0; i < end - begin; ++i) {
        hyps.push_back(std::move(decoded[static_cast<std::size_t>(i)]));
        refs.push_back(
            dataset.test()[static_cast<std::size_t>(begin + i)].tgt);
      }
    }
    model.set_training(true);
    return corpus_bleu(hyps, refs);
  };

  for (i64 epoch = 0; epoch < run.epochs && !result.diverged; ++epoch) {
    for (i64 s = 0; s < loop.steps_per_epoch; ++s) {
      loop.begin_step();
      std::vector<i64> idx = batcher.next();
      auto batch = data::make_translation_batch(dataset.train(), idx);
      model.zero_grad();
      ag::Variable loss = model.loss(batch, dropout_rng);
      result.final_train_loss = loss.value()[0];
      if (loss_diverged(result.final_train_loss)) {
        result.diverged = true;
        break;
      }
      ag::backward(loss);
      if (run.clip_norm > 0.0f) {
        optim::clip_grad_norm(opt->params(), run.clip_norm);
      }
      opt->step();
      ++result.steps;
    }
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double bleu = (result.diverged || !eval_now) ? 0.0 : evaluate_bleu();
    if (eval_now || result.diverged) result.per_epoch_metric.push_back(bleu);
    if (run.verbose) {
      std::printf("  [gnmt] epoch %lld  loss %.4f  test_bleu %.2f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  bleu);
    }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  result.wall_seconds = seconds_since(start);
  return result;
}

RunResult train_resnet(const data::SyntheticImages& dataset,
                       const models::ResNetConfig& model_config,
                       const RunConfig& run) {
  LEGW_CHECK(run.schedule != nullptr, "train_resnet: schedule required");
  const auto start = Clock::now();
  models::ResNetConfig mc = model_config;
  mc.seed = model_config.seed + run.seed;
  models::ResNet model(mc);
  auto opt = optim::make_optimizer(run.optimizer, model.parameters(),
                                   run.weight_decay);
  data::IndexBatcher batcher(dataset.n_train(), run.batch_size,
                             run.seed * 49157ull + 9);

  RunResult result;
  StepLoop loop{opt.get(), &run, batcher.batches_per_epoch()};

  auto evaluate = [&]() {
    const i64 chunk = 128;
    i64 correct_weighted = 0;
    i64 total = 0;
    for (i64 begin = 0; begin < dataset.n_test(); begin += chunk) {
      const i64 end = std::min(dataset.n_test(), begin + chunk);
      std::vector<i64> idx;
      for (i64 i = begin; i < end; ++i) idx.push_back(i);
      const double acc = model.accuracy(dataset.gather_images(idx, false),
                                        dataset.gather_labels(idx, false));
      correct_weighted += static_cast<i64>(std::lround(acc * (end - begin)));
      total += end - begin;
    }
    return static_cast<double>(correct_weighted) / static_cast<double>(total);
  };

  for (i64 epoch = 0; epoch < run.epochs && !result.diverged; ++epoch) {
    for (i64 s = 0; s < loop.steps_per_epoch; ++s) {
      loop.begin_step();
      std::vector<i64> idx = batcher.next();
      model.zero_grad();
      ag::Variable loss = model.loss(dataset.gather_images(idx, true),
                                     dataset.gather_labels(idx, true));
      result.final_train_loss = loss.value()[0];
      if (loss_diverged(result.final_train_loss)) {
        result.diverged = true;
        break;
      }
      ag::backward(loss);
      if (run.clip_norm > 0.0f) {
        optim::clip_grad_norm(opt->params(), run.clip_norm);
      }
      opt->step();
      ++result.steps;
    }
    const bool eval_now = !run.final_eval_only || epoch + 1 == run.epochs;
    const double acc = (result.diverged || !eval_now) ? 0.0 : evaluate();
    if (eval_now) result.per_epoch_metric.push_back(acc);
    if (run.verbose) {
      std::printf("  [resnet] epoch %lld  loss %.4f  test_acc %.4f\n",
                  static_cast<long long>(epoch + 1), result.final_train_loss,
                  acc);
    }
  }
  result.final_metric =
      result.per_epoch_metric.empty() ? 0.0 : result.per_epoch_metric.back();
  result.wall_seconds = seconds_since(start);
  return result;
}

}  // namespace legw::train
