// Cache-blocked, register-tiled GEMM — the fast path behind core::gemm.
//
// Classic three-level blocking (GotoBLAS/BLIS structure):
//
//   for jc over N in NC columns          — C/B column panel
//     for kc over K in KC depths         — one packed B panel per (jc, kc)
//       pack B[kc, jc] into NR-wide column micro-panels (zero-padded)
//       for ic over M in MC rows         — parallelised via ThreadPool
//         pack A[ic, kc] into MR-tall row micro-panels (alpha folded in)
//         for jr over NC in NR, ir over MC in MR:
//           8x48 micro-kernel: acc registers, then C += acc
//
// Both operands are packed, so the micro-kernel is a single branch-free loop
// over contiguous memory for all four transpose cases — the transpose only
// changes the gather pattern during packing. Partial edge tiles are packed
// with zero fill and stored back masked, so the hot loop has fixed trip
// counts and auto-vectorises cleanly (16 zmm accumulators + 3 B loads on
// AVX-512).
//
// Determinism contract (tested in tests/test_gemm_parity.cpp): the k
// reduction for any C element is performed by exactly one thread, in
// ascending-k order (KC panels outer, ascending p within each panel), and
// that order is independent of how rows are partitioned across threads.
// Results are therefore bitwise identical across runs, thread counts, and
// chunk boundaries.
#include <algorithm>
#include <vector>

#include "core/tensor.hpp"
#include "core/thread_pool.hpp"

namespace legw::core {

namespace {

// Micro-tile: MR rows x NR columns of C held in registers. NR is three
// 16-float AVX-512 vectors; with MR=8 the accumulator needs 24 vector
// registers, leaving room for B loads and the A broadcast.
constexpr i64 kMr = 8;
constexpr i64 kNr = 48;
// Cache panels: KC x NR slivers of packed B should live in L1 across one
// micro-kernel call; the MC x KC packed A block targets L2; the KC x NC
// packed B panel targets L2/L3.
constexpr i64 kKc = 256;
constexpr i64 kMc = 128;   // multiple of kMr
constexpr i64 kNc = 960;   // multiple of kNr

inline i64 round_up(i64 v, i64 mult) { return (v + mult - 1) / mult * mult; }

// acc = Apanel * Bpanel over kc depths, then C[0:mr, 0:nr] += acc.
// ap: packed A micro-panel, kc x kMr (row index fastest).
// bp: packed B micro-panel, kc x kNr (column index fastest).
void micro_kernel(i64 kc, const float* __restrict ap, const float* __restrict bp,
                  float* __restrict c, i64 ldc, i64 mr, i64 nr) {
  float acc[kMr][kNr];
  for (i64 i = 0; i < kMr; ++i)
    for (i64 j = 0; j < kNr; ++j) acc[i][j] = 0.0f;
  for (i64 p = 0; p < kc; ++p) {
    const float* __restrict brow = bp + p * kNr;
    const float* __restrict arow = ap + p * kMr;
    for (i64 i = 0; i < kMr; ++i) {
      const float av = arow[i];
      for (i64 j = 0; j < kNr; ++j) acc[i][j] += av * brow[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (i64 i = 0; i < kMr; ++i) {
      float* ci = c + i * ldc;
      for (i64 j = 0; j < kNr; ++j) ci[j] += acc[i][j];
    }
  } else {
    for (i64 i = 0; i < mr; ++i) {
      float* ci = c + i * ldc;
      for (i64 j = 0; j < nr; ++j) ci[j] += acc[i][j];
    }
  }
}

// Packs B[kk : kk+kc, jc : jc+nc] (logical indices, after the optional
// transpose) into NR-wide column micro-panels, zero-padding the last panel.
void pack_b(bool trans_b, const float* b, i64 ldb, i64 kk, i64 jc, i64 kc,
            i64 nc, float* dst) {
  for (i64 jr = 0; jr < nc; jr += kNr) {
    const i64 nr = std::min<i64>(kNr, nc - jr);
    float* panel = dst + jr * kc;
    if (!trans_b) {
      for (i64 p = 0; p < kc; ++p) {
        const float* src = b + (kk + p) * ldb + jc + jr;
        float* out = panel + p * kNr;
        for (i64 j = 0; j < nr; ++j) out[j] = src[j];
        for (i64 j = nr; j < kNr; ++j) out[j] = 0.0f;
      }
    } else {
      // B[p, j] lives at b[j * ldb + p]: walk each source row (contiguous
      // in p) and scatter into the panel.
      for (i64 j = 0; j < nr; ++j) {
        const float* src = b + (jc + jr + j) * ldb + kk;
        for (i64 p = 0; p < kc; ++p) panel[p * kNr + j] = src[p];
      }
      for (i64 j = nr; j < kNr; ++j)
        for (i64 p = 0; p < kc; ++p) panel[p * kNr + j] = 0.0f;
    }
  }
}

// Packs A[ic : ic+mc, kk : kk+kc] into MR-tall row micro-panels with alpha
// folded in, zero-padding the last panel.
void pack_a(bool trans_a, const float* a, i64 lda, i64 ic, i64 kk, i64 mc,
            i64 kc, float alpha, float* dst) {
  for (i64 ir = 0; ir < mc; ir += kMr) {
    const i64 mr = std::min<i64>(kMr, mc - ir);
    float* panel = dst + ir * kc;
    if (!trans_a) {
      for (i64 i = 0; i < mr; ++i) {
        const float* src = a + (ic + ir + i) * lda + kk;
        for (i64 p = 0; p < kc; ++p) panel[p * kMr + i] = alpha * src[p];
      }
    } else {
      // A[i, p] lives at a[p * lda + i]: source rows are contiguous in i.
      for (i64 p = 0; p < kc; ++p) {
        const float* src = a + (kk + p) * lda + ic + ir;
        for (i64 i = 0; i < mr; ++i) panel[p * kMr + i] = alpha * src[i];
      }
    }
    for (i64 i = mr; i < kMr; ++i)
      for (i64 p = 0; p < kc; ++p) panel[p * kMr + i] = 0.0f;
  }
}

}  // namespace

void gemm_blocked(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
                  const float* a, i64 lda, const float* b, i64 ldb, float beta,
                  float* c, i64 ldc) {
  LEGW_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0) return;

  if (beta == 0.0f) {
    for (i64 i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
  } else if (beta != 1.0f) {
    for (i64 i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      for (i64 j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  // Sized to the actual problem so small GEMMs don't pay for full panels.
  std::vector<float> bpack(
      static_cast<std::size_t>(round_up(std::min(n, kNc), kNr)) *
      static_cast<std::size_t>(std::min(k, kKc)));

  for (i64 jc = 0; jc < n; jc += kNc) {
    const i64 nc = std::min(kNc, n - jc);
    for (i64 kk = 0; kk < k; kk += kKc) {
      const i64 kc = std::min(kKc, k - kk);
      // Packed by the submitting thread, then shared read-only by workers.
      pack_b(trans_b, b, ldb, kk, jc, kc, nc, bpack.data());

      parallel_for(0, m, kMc, [&](i64 row_begin, i64 row_end) {
        // Per-worker A pack buffer, reused across calls.
        static thread_local std::vector<float> apack;
        apack.resize(static_cast<std::size_t>(round_up(kMc, kMr)) *
                     static_cast<std::size_t>(kc));
        for (i64 ic = row_begin; ic < row_end; ic += kMc) {
          const i64 mc = std::min(kMc, row_end - ic);
          pack_a(trans_a, a, lda, ic, kk, mc, kc, alpha, apack.data());
          for (i64 jr = 0; jr < nc; jr += kNr) {
            const i64 nr = std::min<i64>(kNr, nc - jr);
            for (i64 ir = 0; ir < mc; ir += kMr) {
              const i64 mr = std::min<i64>(kMr, mc - ir);
              micro_kernel(kc, apack.data() + ir * kc, bpack.data() + jr * kc,
                           c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
            }
          }
        }
      });
    }
  }
}

}  // namespace legw::core
