// Annotated mutex / condition-variable wrappers for Clang TSA.
//
// Every lock in src/ goes through these types (the `raw-mutex` lint rule
// bans std::mutex and friends elsewhere), so the whole lock protocol is
// visible to the thread-safety analysis:
//
//   core::Mutex mu;
//   int depth LEGW_GUARDED_BY(mu);          // field names its lock
//   void push() LEGW_EXCLUDES(mu);          // method acquires mu itself
//   void push_locked() LEGW_REQUIRES(mu);   // caller must hold mu
//
// CondVar deliberately has no predicate overloads: a predicate lambda is a
// separate function to the analysis and cannot see the caller's held locks,
// so waits are written as explicit loops —
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);
//
// — which is also the shape the analysis can prove. Wrappers are thin
// (one std::mutex / std::condition_variable member, no extra state beyond
// MutexLock's held flag), so they cost nothing over the raw primitives.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace legw::core {

class CondVar;

// A std::mutex declared as a TSA capability.
class LEGW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LEGW_ACQUIRE() { mu_.lock(); }
  void unlock() LEGW_RELEASE() { mu_.unlock(); }
  bool try_lock() LEGW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // wait() re-wraps the raw mutex to park on it
  std::mutex mu_;
};

// RAII lock guard (the std::lock_guard / std::unique_lock replacement).
// Supports early unlock() and re-lock(); the destructor releases only if
// still held, which the analysis models through the scoped capability.
class LEGW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LEGW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LEGW_RELEASE() {
    if (held_) mu_.unlock();
  }

  // Early release, e.g. to run a claimed batch outside the lock.
  void unlock() LEGW_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() LEGW_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_ = true;
};

// Condition variable over core::Mutex. All waits REQUIRE the mutex and
// return still holding it; spurious wakeups are the caller's loop to absorb
// (see the header comment for the canonical shape).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) LEGW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): callers loop.
    cv_.wait(lk);
    lk.release();  // the caller keeps ownership; MutexLock/caller unlocks
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      LEGW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): callers loop.
    const std::cv_status status = cv_.wait_for(lk, dur);
    lk.release();
    return status;
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      LEGW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    // NOLINTNEXTLINE(bugprone-spuriously-wake-up-functions): callers loop.
    const std::cv_status status = cv_.wait_until(lk, deadline);
    lk.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace legw::core
