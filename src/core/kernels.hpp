// Elementwise and row-wise numeric kernels shared by the autograd ops and the
// fused layer implementations. All kernels operate on raw contiguous float
// buffers; shape logic lives in the callers.
#pragma once

#include "core/common.hpp"

namespace legw::core {

// y[i] = 1 / (1 + exp(-x[i]))
void sigmoid_forward(const float* x, float* y, i64 n);
// dx[i] += dy[i] * y[i] * (1 - y[i]) where y is the forward output
void sigmoid_backward(const float* y, const float* dy, float* dx, i64 n);

void tanh_forward(const float* x, float* y, i64 n);
// dx[i] += dy[i] * (1 - y[i]^2)
void tanh_backward(const float* y, const float* dy, float* dx, i64 n);

void relu_forward(const float* x, float* y, i64 n);
// dx[i] += dy[i] * (x[i] > 0)
void relu_backward(const float* x, const float* dy, float* dx, i64 n);

// Row-wise, numerically-stable softmax over a [rows, cols] matrix.
void softmax_rows(const float* x, float* y, i64 rows, i64 cols);
// Row-wise log-softmax.
void log_softmax_rows(const float* x, float* y, i64 rows, i64 cols);

// Mean negative log-likelihood of integer targets under row-wise softmax.
// Rows whose target equals `ignore_index` contribute nothing (used for
// padding in seq2seq batches). Returns the summed loss and writes the number
// of counted rows to *counted (callers divide to get the mean).
// If probs_out is non-null it receives the full softmax probabilities
// (needed by the backward pass).
double softmax_cross_entropy_forward(const float* logits, const i32* targets,
                                     i64 rows, i64 cols, i32 ignore_index,
                                     float* probs_out, i64* counted);
// dlogits[r,c] += scale * (probs[r,c] - 1{c == target_r}) for counted rows.
void softmax_cross_entropy_backward(const float* probs, const i32* targets,
                                    i64 rows, i64 cols, i32 ignore_index,
                                    float scale, float* dlogits);

// ---- fused LSTM cell -------------------------------------------------------
// The four-gate elementwise block of one LSTM step (bias add, sigmoid/tanh
// activations, cell update) fused into a single pass per row, parallelised
// over the batch. Gate order within a row is (i, f, g, o).
//
// Forward. z: [batch, 4*hidden] holds the pre-activation gate block
// (the [x|h]·W product, bias NOT yet added) on entry and the post-activation
// gates on exit. bias: [4*hidden], may be null. c_prev: [batch, hidden].
// out: [batch, 2*hidden] receives h' in columns [0,hidden) and c' in
// [hidden, 2*hidden). tanh_c: [batch, hidden] receives tanh(c'), saved for
// the backward pass.
void lstm_cell_forward(i64 batch, i64 hidden, const float* bias, float* z,
                       const float* c_prev, float* out, float* tanh_c);

// Backward, single pass. acts / tanh_c / c_prev as saved by forward;
// dout: [batch, 2*hidden] = (dh | dc') upstream gradient. Overwrites
// dz: [batch, 4*hidden] with the gradient w.r.t. the pre-activation gates
// and dc_prev: [batch, hidden] with the gradient w.r.t. the previous cell
// state.
void lstm_cell_backward(i64 batch, i64 hidden, const float* acts,
                        const float* tanh_c, const float* c_prev,
                        const float* dout, float* dz, float* dc_prev);

}  // namespace legw::core
