#include "core/flags.hpp"

#include <atomic>
#include <cstdlib>

namespace legw::core {

namespace {

std::atomic<GemmKernel>& gemm_kernel_state() {
  static std::atomic<GemmKernel> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_KERNEL")) {
      const std::string v(env);
      if (v == "ref") return GemmKernel::kRef;
      LEGW_CHECK(v == "blocked" || v.empty(),
                 "LEGW_KERNEL must be 'ref' or 'blocked', got '" + v + "'");
    }
    return GemmKernel::kBlocked;
  }()};
  return state;
}

std::atomic<bool>& fused_lstm_state() {
  static std::atomic<bool> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_LSTM")) {
      const std::string v(env);
      if (v == "composed") return false;
      LEGW_CHECK(v == "fused" || v.empty(),
                 "LEGW_LSTM must be 'fused' or 'composed', got '" + v + "'");
    }
    return true;
  }()};
  return state;
}

std::atomic<DistMode>& dist_mode_state() {
  static std::atomic<DistMode> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_DIST")) {
      const std::string v(env);
      if (v == "overlap") return DistMode::kOverlap;
      LEGW_CHECK(v == "sync" || v.empty(),
                 "LEGW_DIST must be 'sync' or 'overlap', got '" + v + "'");
    }
    return DistMode::kSync;
  }()};
  return state;
}

std::atomic<DistAlgo>& dist_algo_state() {
  static std::atomic<DistAlgo> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_DIST_ALGO")) {
      const std::string v(env);
      if (v == "tree") return DistAlgo::kTree;
      if (v == "ring") return DistAlgo::kRing;
      if (v == "hier") return DistAlgo::kHier;
      LEGW_CHECK(v == "auto" || v.empty(),
                 "LEGW_DIST_ALGO must be 'auto', 'tree', 'ring' or 'hier', "
                 "got '" + v + "'");
    }
    return DistAlgo::kAuto;
  }()};
  return state;
}

std::atomic<WireFormat>& dist_wire_state() {
  static std::atomic<WireFormat> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_DIST_WIRE")) {
      const std::string v(env);
      if (v == "fp16") return WireFormat::kFp16;
      if (v == "int8") return WireFormat::kInt8;
      LEGW_CHECK(v == "fp32" || v.empty(),
                 "LEGW_DIST_WIRE must be 'fp32', 'fp16' or 'int8', got '" +
                     v + "'");
    }
    return WireFormat::kFp32;
  }()};
  return state;
}

std::atomic<GuardMode>& guard_mode_state() {
  static std::atomic<GuardMode> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_GUARD")) {
      const std::string v(env);
      if (v == "on" || v == "observe" || v == "1") return GuardMode::kObserve;
      LEGW_CHECK(v == "off" || v == "0" || v.empty(),
                 "LEGW_GUARD must be 'on', 'observe', '1', 'off' or '0', "
                 "got '" + v + "'");
    }
    return GuardMode::kOff;
  }()};
  return state;
}

}  // namespace

GemmKernel gemm_kernel() {
  return gemm_kernel_state().load(std::memory_order_relaxed);
}

void set_gemm_kernel(GemmKernel k) {
  gemm_kernel_state().store(k, std::memory_order_relaxed);
}

bool set_gemm_kernel(const std::string& name) {
  if (name == "ref") {
    set_gemm_kernel(GemmKernel::kRef);
    return true;
  }
  if (name == "blocked") {
    set_gemm_kernel(GemmKernel::kBlocked);
    return true;
  }
  return false;
}

const char* gemm_kernel_name(GemmKernel k) {
  return k == GemmKernel::kRef ? "ref" : "blocked";
}

bool fused_lstm_enabled() {
  return fused_lstm_state().load(std::memory_order_relaxed);
}

void set_fused_lstm_enabled(bool enabled) {
  fused_lstm_state().store(enabled, std::memory_order_relaxed);
}

DistMode dist_mode() {
  return dist_mode_state().load(std::memory_order_relaxed);
}

void set_dist_mode(DistMode m) {
  dist_mode_state().store(m, std::memory_order_relaxed);
}

bool set_dist_mode(const std::string& name) {
  if (name == "sync") {
    set_dist_mode(DistMode::kSync);
    return true;
  }
  if (name == "overlap") {
    set_dist_mode(DistMode::kOverlap);
    return true;
  }
  return false;
}

const char* dist_mode_name(DistMode m) {
  return m == DistMode::kSync ? "sync" : "overlap";
}

DistAlgo dist_algo() {
  return dist_algo_state().load(std::memory_order_relaxed);
}

void set_dist_algo(DistAlgo a) {
  dist_algo_state().store(a, std::memory_order_relaxed);
}

bool set_dist_algo(const std::string& name) {
  if (name == "auto") {
    set_dist_algo(DistAlgo::kAuto);
    return true;
  }
  if (name == "tree") {
    set_dist_algo(DistAlgo::kTree);
    return true;
  }
  if (name == "ring") {
    set_dist_algo(DistAlgo::kRing);
    return true;
  }
  if (name == "hier") {
    set_dist_algo(DistAlgo::kHier);
    return true;
  }
  return false;
}

const char* dist_algo_name(DistAlgo a) {
  switch (a) {
    case DistAlgo::kAuto: return "auto";
    case DistAlgo::kTree: return "tree";
    case DistAlgo::kRing: return "ring";
    case DistAlgo::kHier: return "hier";
  }
  return "auto";
}

WireFormat dist_wire() {
  return dist_wire_state().load(std::memory_order_relaxed);
}

void set_dist_wire(WireFormat w) {
  dist_wire_state().store(w, std::memory_order_relaxed);
}

bool set_dist_wire(const std::string& name) {
  if (name == "fp32") {
    set_dist_wire(WireFormat::kFp32);
    return true;
  }
  if (name == "fp16") {
    set_dist_wire(WireFormat::kFp16);
    return true;
  }
  if (name == "int8") {
    set_dist_wire(WireFormat::kInt8);
    return true;
  }
  return false;
}

const char* wire_format_name(WireFormat w) {
  switch (w) {
    case WireFormat::kFp32: return "fp32";
    case WireFormat::kFp16: return "fp16";
    case WireFormat::kInt8: return "int8";
  }
  return "fp32";
}

GuardMode guard_mode() {
  return guard_mode_state().load(std::memory_order_relaxed);
}

void set_guard_mode(GuardMode m) {
  guard_mode_state().store(m, std::memory_order_relaxed);
}

const char* guard_mode_name(GuardMode m) {
  return m == GuardMode::kObserve ? "observe" : "off";
}

Flags::Flags(int argc, char** argv) {
  LEGW_CHECK(argc >= 1, "Flags: empty argv");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      // Bare flag: boolean true.
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get_string(const std::string& name, std::string def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

i64 Flags::get_int(const std::string& name, i64 def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  LEGW_CHECK(end != nullptr && *end == '\0',
             "flag --" + name + " expects an integer, got '" + it->second + "'");
  return static_cast<i64>(v);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  LEGW_CHECK(end != nullptr && *end == '\0',
             "flag --" + name + " expects a number, got '" + it->second + "'");
  return v;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  LEGW_CHECK(false, "flag --" + name + " expects a boolean, got '" + v + "'");
  return def;
}

}  // namespace legw::core
