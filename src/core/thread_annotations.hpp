// Clang Thread Safety Analysis annotation macros.
//
// The repo's lock protocol is declared in the types: core::Mutex is a
// CAPABILITY, fields name their lock with GUARDED_BY, and methods state
// REQUIRES/EXCLUDES contracts. Compiling with clang under the `analyze`
// preset (-Wthread-safety -Wthread-safety-beta, both as errors) then PROVES
// the protocol: a guarded read without the lock, a path that leaks a held
// mutex, or an ACQUIRED_BEFORE inversion is a compile error, not a race a
// TSan interleaving may or may not catch. tests/analysis/ keeps seeded
// violations that must FAIL to compile, so the gate itself is tested.
//
// On non-clang compilers (and clang without the attributes) every macro
// expands to nothing — the annotations are free documentation. See
// docs/CHECKS.md ("Compile-time thread safety") for conventions, how to
// read a failure, and how to waive.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LEGW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LEGW_THREAD_ANNOTATION
#define LEGW_THREAD_ANNOTATION(x)  // no-op outside clang TSA builds
#endif

// On a class: instances are a lockable capability (core::Mutex).
#define LEGW_CAPABILITY(x) LEGW_THREAD_ANNOTATION(capability(x))

// On a class: RAII guard that acquires in the ctor and releases in the dtor
// (core::MutexLock). The analysis tracks early unlock()/relock through the
// ACQUIRE/RELEASE annotations on its methods.
#define LEGW_SCOPED_CAPABILITY LEGW_THREAD_ANNOTATION(scoped_lockable)

// On a field: reads and writes require holding the named mutex.
#define LEGW_GUARDED_BY(x) LEGW_THREAD_ANNOTATION(guarded_by(x))

// On a pointer field: the pointee (not the pointer) is guarded.
#define LEGW_PT_GUARDED_BY(x) LEGW_THREAD_ANNOTATION(pt_guarded_by(x))

// On a mutex member: declares lock ordering; acquiring in the opposite
// order is a compile error under -Wthread-safety-beta.
#define LEGW_ACQUIRED_BEFORE(...) \
  LEGW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LEGW_ACQUIRED_AFTER(...) \
  LEGW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// On a function: the caller must already hold the mutex(es).
#define LEGW_REQUIRES(...) \
  LEGW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires the mutex(es) and returns holding them.
#define LEGW_ACQUIRE(...) \
  LEGW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// On a function: releases mutex(es) the caller held on entry.
#define LEGW_RELEASE(...) \
  LEGW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: acquires only on the given return value.
#define LEGW_TRY_ACQUIRE(...) \
  LEGW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the mutex(es) — the function
// acquires them itself (deadlock guard for self-calls).
#define LEGW_EXCLUDES(...) LEGW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: tells the analysis the mutex is held without acquiring it
// (for runtime-checked entry points).
#define LEGW_ASSERT_CAPABILITY(x) \
  LEGW_THREAD_ANNOTATION(assert_capability(x))

// On a function returning a reference to a mutex.
#define LEGW_RETURN_CAPABILITY(x) LEGW_THREAD_ANNOTATION(lock_returned(x))

// Last resort: opt a function out of the analysis. Every use needs a
// comment justifying why the contract cannot be expressed.
#define LEGW_NO_THREAD_SAFETY_ANALYSIS \
  LEGW_THREAD_ANNOTATION(no_thread_safety_analysis)
