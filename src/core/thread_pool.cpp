#include "core/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace legw::core {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
// True while the current thread is executing inside a parallel_for region
// (either as a pool worker or as the submitting thread running its own
// chunk). Nested parallel_for calls then degrade to serial execution, which
// avoids the classic fork-join deadlock where every worker blocks waiting on
// sub-tasks that no idle worker remains to run.
thread_local bool t_in_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(int n_threads) {
  if (n_threads <= 0) {
    n_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (n_threads <= 0) n_threads = 1;
  }
  // The submitting thread counts as one worker.
  const int spawned = std::max(n_threads - 1, 0);
  worker_busy_ns_ = std::make_unique<std::atomic<i64>[]>(
      static_cast<std::size_t>(std::max(spawned, 1)));
  for (int i = 0; i < spawned; ++i) worker_busy_ns_[i] = 0;
  workers_.reserve(static_cast<std::size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(int worker_index) {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && next_task_ >= queue_.size()) cv_.wait(mu_);
      if (stop_) return;
      task = queue_[next_task_++];
    }
    const i64 t0 = now_ns();
    t_in_parallel_region = true;
    (*task.fn)(task.begin, task.end);
    t_in_parallel_region = false;
    worker_busy_ns_[worker_index].fetch_add(now_ns() - t0,
                                            std::memory_order_relaxed);
    chunks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(i64 begin, i64 end, i64 grain,
                              const std::function<void(i64, i64)>& fn) {
  if (begin >= end) return;
  if (t_in_parallel_region) {  // nested call: run serially (see above)
    fn(begin, end);
    return;
  }
  if (grain < 1) grain = 1;
  const i64 n = end - begin;
  const i64 max_chunks = static_cast<i64>(size());
  // Static partition: ceil-divide into at most `size()` chunks of >= grain.
  i64 n_chunks = std::min<i64>((n + grain - 1) / grain, max_chunks);
  if (n_chunks <= 1) {
    const i64 t0 = now_ns();
    fn(begin, end);
    inline_busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
    chunks_inline_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const i64 chunk = (n + n_chunks - 1) / n_chunks;

  // Serialise concurrent submitters: the queue/pending bookkeeping below is
  // per-submission, so two overlapping parallel_for calls (e.g. from
  // simulated distributed workers) must not interleave their task batches.
  MutexLock submit_lock(submit_mu_);
  submissions_.fetch_add(1, std::memory_order_relaxed);
  i64 queued = 0;
  {
    MutexLock lock(mu_);
    // Queue all chunks except the first, which the caller runs itself.
    for (i64 c = 1; c < n_chunks; ++c) {
      const i64 b = begin + c * chunk;
      const i64 e = std::min(end, b + chunk);
      if (b >= e) continue;
      queue_.push_back(Task{&fn, b, e});
      ++pending_;
      ++queued;
    }
  }
  chunks_queued_.fetch_add(queued, std::memory_order_relaxed);
  cv_.notify_all();

  const i64 t0 = now_ns();
  t_in_parallel_region = true;
  fn(begin, std::min(end, begin + chunk));
  t_in_parallel_region = false;
  inline_busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  chunks_inline_.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(mu_);
  while (pending_ != 0) done_cv_.wait(mu_);
  // All chunks done; reset the queue for the next call.
  queue_.clear();
  next_task_ = 0;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.worker_busy_ns.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    s.worker_busy_ns.push_back(
        worker_busy_ns_[i].load(std::memory_order_relaxed));
  }
  s.inline_busy_ns = inline_busy_ns_.load(std::memory_order_relaxed);
  s.chunks_queued = chunks_queued_.load(std::memory_order_relaxed);
  s.chunks_executed = chunks_executed_.load(std::memory_order_relaxed);
  s.chunks_inline = chunks_inline_.load(std::memory_order_relaxed);
  s.submissions = submissions_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() {
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    worker_busy_ns_[i].store(0, std::memory_order_relaxed);
  }
  inline_busy_ns_.store(0, std::memory_order_relaxed);
  chunks_queued_.store(0, std::memory_order_relaxed);
  chunks_executed_.store(0, std::memory_order_relaxed);
  chunks_inline_.store(0, std::memory_order_relaxed);
  submissions_.store(0, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_NUM_THREADS")) {
      const int n = std::atoi(env);
      if (n > 0) return n;
    }
    return 0;
  }());
  return pool;
}

void parallel_for(i64 begin, i64 end, i64 grain,
                  const std::function<void(i64, i64)>& fn) {
  if (end - begin <= grain) {
    if (begin < end) fn(begin, end);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, grain, fn);
}

}  // namespace legw::core
