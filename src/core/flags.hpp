// Minimal command-line flag parsing for the examples and benches:
// `--name value` and `--name=value` forms, typed getters with defaults,
// and an auto-generated usage string. No global state — except the
// process-wide kernel-dispatch switches below, which exist precisely so
// tests and benches can pin a specific numeric kernel.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::core {

// ---- kernel dispatch -------------------------------------------------------
//
// core::gemm dispatches between two implementations that share one contract:
//   kRef      — the scalar row-kernel reference; always correct, never tuned.
//   kBlocked  — the cache-blocked, register-tiled fast path.
// The initial selection comes from the LEGW_KERNEL environment variable
// ("ref" or "blocked", default "blocked"), read once on first use. Tests and
// benches may override at runtime with set_gemm_kernel; parity suites run the
// same binary under both settings.
enum class GemmKernel { kRef, kBlocked };

// Current selection (lazily initialised from LEGW_KERNEL).
GemmKernel gemm_kernel();
// Programmatic override, e.g. for pinning one side of an A/B benchmark.
void set_gemm_kernel(GemmKernel k);
// Parses "ref" / "blocked" (the LEGW_KERNEL vocabulary); returns false on an
// unknown name and leaves the selection unchanged.
bool set_gemm_kernel(const std::string& name);
const char* gemm_kernel_name(GemmKernel k);

// Whether nn layers should use the fused LSTM-cell kernel (single graph node,
// single-pass elementwise block) or the op-composed reference path. Initial
// value comes from LEGW_LSTM ("fused" default, "composed" to disable).
bool fused_lstm_enabled();
void set_fused_lstm_enabled(bool enabled);

// Which gradient-allreduce engine dist::replica_backward dispatches to:
//   kSync     — synchronous_backward: run every replica's backward to
//               completion, barrier, then reduce parameter by parameter.
//   kOverlap  — overlapped_backward: bucketed tree-allreduce fired while the
//               tail of backward still executes (dist/overlap.hpp). Bitwise
//               identical results to kSync on fault-free runs.
// Initial selection comes from LEGW_DIST ("sync" default, "overlap"), read
// once on first use; same override pattern as LEGW_KERNEL.
enum class DistMode { kSync, kOverlap };

DistMode dist_mode();
void set_dist_mode(DistMode m);
// Parses "sync" / "overlap" (the LEGW_DIST vocabulary); returns false on an
// unknown name and leaves the selection unchanged.
bool set_dist_mode(const std::string& name);
const char* dist_mode_name(DistMode m);

// Which all-reduce algorithm reduces a gradient bucket (dist/algorithms.hpp):
//   kAuto — size-based policy: tree for latency-bound small buckets, ring
//           for bandwidth-bound large ones, hierarchical at high replica
//           counts (dist::choose_algorithm resolves per bucket).
//   kTree — flat stride-doubling binary tree (the original engine).
//   kRing — chunked reduce-scatter + all-gather ring.
//   kHier — intra-group tree reduce, inter-group exchange, intra-group
//           broadcast (two-level topology, LBANN-style grouping).
// Initial selection comes from LEGW_DIST_ALGO ("auto" default, "tree",
// "ring", "hier"), read once on first use; same override pattern as
// LEGW_KERNEL.
enum class DistAlgo { kAuto, kTree, kRing, kHier };

DistAlgo dist_algo();
void set_dist_algo(DistAlgo a);
// Parses "auto" / "tree" / "ring" / "hier" (the LEGW_DIST_ALGO vocabulary);
// returns false on an unknown name and leaves the selection unchanged.
bool set_dist_algo(const std::string& name);
const char* dist_algo_name(DistAlgo a);

// What format gradients travel in on the (simulated) wire:
//   kFp32 — uncompressed (default).
//   kFp16 — IEEE binary16, 2 bytes/element (~2x fewer bytes on wire).
//   kInt8 — symmetric per-tensor int8, 1 byte/element (~4x fewer bytes);
//           pair with error-feedback residuals (dist::WireState) to keep
//           large-batch convergence intact.
// Initial selection comes from LEGW_DIST_WIRE ("fp32" default, "fp16",
// "int8"), read once on first use.
enum class WireFormat { kFp32, kFp16, kInt8 };

WireFormat dist_wire();
void set_dist_wire(WireFormat w);
// Parses "fp32" / "fp16" / "int8" (the LEGW_DIST_WIRE vocabulary); returns
// false on an unknown name and leaves the selection unchanged.
bool set_dist_wire(const std::string& name);
const char* wire_format_name(WireFormat w);

// Whether the stability sentinel (src/guard/) runs in observe-only mode:
//   kOff     — sentinel fully out of the loop (default).
//   kObserve — health signals are computed and guard.* counters emitted every
//              step, but nothing else changes: no rollbacks, no mitigation,
//              no checkpoint-schema change. Safe to flip on any existing run
//              without perturbing its trajectory — the CI leg relies on this.
// Full protect mode (rollback + mitigation) is NOT reachable from the
// environment; it requires an explicit RunConfig::sentinel opt-in because it
// changes what a run does. Initial selection comes from LEGW_GUARD ("off"/
// "0"/"" -> off, "on"/"observe"/"1" -> observe), read once on first use.
enum class GuardMode { kOff, kObserve };

GuardMode guard_mode();
void set_guard_mode(GuardMode m);
const char* guard_mode_name(GuardMode m);

class Flags {
 public:
  // Parses argv; aborts with usage on malformed input (a flag without a
  // value, or an unknown positional argument).
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def) const;
  i64 get_int(const std::string& name, i64 def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::string& program() const { return program_; }
  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace legw::core
