// Minimal command-line flag parsing for the examples and benches:
// `--name value` and `--name=value` forms, typed getters with defaults,
// and an auto-generated usage string. No global state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::core {

class Flags {
 public:
  // Parses argv; aborts with usage on malformed input (a flag without a
  // value, or an unknown positional argument).
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string def) const;
  i64 get_int(const std::string& name, i64 def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  const std::string& program() const { return program_; }
  // Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace legw::core
