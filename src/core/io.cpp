#include "core/io.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace legw::core {

namespace {
std::string errno_string() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): errno snapshot on the error path
  return std::strerror(errno);
}
}  // namespace

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  // lint-allow: atomic-write — this *is* the atomic writer's staging open.
  f_ = std::fopen(tmp_path_.c_str(), "wb");
}

AtomicFile::~AtomicFile() { discard(); }

bool AtomicFile::write(const void* data, std::size_t n) {
  if (f_ == nullptr) return false;
  if (std::fwrite(data, 1, n, f_) != n) {
    failed_ = true;
    return false;
  }
  return true;
}

Status AtomicFile::commit() {
  if (f_ == nullptr) {
    return Status::error("AtomicFile: cannot open " + tmp_path_ + ": " +
                         errno_string());
  }
  bool ok = !failed_;
  std::string why = failed_ ? "short write" : "";
  if (ok && std::fflush(f_) != 0) {
    ok = false;
    why = "fflush failed: " + errno_string();
  }
  // fsync before rename: the rename must not be durable before the data is,
  // or a power loss could publish an empty/torn file.
  if (ok && ::fsync(::fileno(f_)) != 0) {
    ok = false;
    why = "fsync failed: " + errno_string();
  }
  if (std::fclose(f_) != 0 && ok) {
    ok = false;
    why = "fclose failed: " + errno_string();
  }
  f_ = nullptr;
  if (ok && std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    ok = false;
    why = "rename failed: " + errno_string();
  }
  if (!ok) {
    std::remove(tmp_path_.c_str());
    return Status::error("AtomicFile: " + why + " (" + path_ + ")");
  }
  return {};
}

void AtomicFile::discard() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
    std::remove(tmp_path_.c_str());
  }
}

Status atomic_write_file(const std::string& path, const void* data,
                         std::size_t n) {
  AtomicFile f(path);
  f.write(data, n);
  return f.commit();
}

Status atomic_write_file(const std::string& path, const std::string& content) {
  return atomic_write_file(path, content.data(), content.size());
}

}  // namespace legw::core
