#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "core/counters.hpp"
#include "core/thread_pool.hpp"

namespace legw::core {

void sigmoid_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void sigmoid_backward(const float* y, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += dy[i] * y[i] * (1.0f - y[i]);
}

void tanh_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void tanh_backward(const float* y, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

void relu_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const float* x, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += x[i] > 0.0f ? dy[i] : 0.0f;
}

void softmax_rows(const float* x, float* y, i64 rows, i64 cols) {
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) {
      const float e = std::exp(xr[c] - m);
      yr[c] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (i64 c = 0; c < cols; ++c) yr[c] *= inv;
  }
}

void log_softmax_rows(const float* x, float* y, i64 rows, i64 cols) {
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) denom += std::exp(xr[c] - m);
    const float log_denom = static_cast<float>(std::log(denom)) + m;
    for (i64 c = 0; c < cols; ++c) yr[c] = xr[c] - log_denom;
  }
}

double softmax_cross_entropy_forward(const float* logits, const i32* targets,
                                     i64 rows, i64 cols, i32 ignore_index,
                                     float* probs_out, i64* counted) {
  double loss = 0.0;
  i64 n_counted = 0;
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = logits + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(xr[c]) - m);
    const double log_denom = std::log(denom) + m;
    if (probs_out != nullptr) {
      float* pr = probs_out + r * cols;
      for (i64 c = 0; c < cols; ++c) {
        pr[c] = static_cast<float>(std::exp(static_cast<double>(xr[c]) - log_denom));
      }
    }
    const i32 t = targets[r];
    if (t == ignore_index) continue;
    LEGW_DCHECK(t >= 0 && t < cols, "cross-entropy target out of range");
    loss += log_denom - xr[t];
    ++n_counted;
  }
  if (counted != nullptr) *counted = n_counted;
  return loss;
}

void softmax_cross_entropy_backward(const float* probs, const i32* targets,
                                    i64 rows, i64 cols, i32 ignore_index,
                                    float scale, float* dlogits) {
  for (i64 r = 0; r < rows; ++r) {
    const i32 t = targets[r];
    if (t == ignore_index) continue;
    const float* pr = probs + r * cols;
    float* dr = dlogits + r * cols;
    for (i64 c = 0; c < cols; ++c) dr[c] += scale * pr[c];
    dr[t] -= scale;
  }
}

namespace {

inline float sigmoid1(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Rows are independent; size chunks so each does a few thousand exp calls.
inline i64 lstm_row_grain(i64 hidden) {
  return std::max<i64>(1, 1024 / std::max<i64>(1, hidden));
}

}  // namespace

void lstm_cell_forward(i64 batch, i64 hidden, const float* bias, float* z,
                       const float* c_prev, float* out, float* tanh_c) {
  bump_dispatch(DispatchCounter::kLstmCellForward);
  parallel_for(0, batch, lstm_row_grain(hidden), [&](i64 rb, i64 re) {
    for (i64 r = rb; r < re; ++r) {
      float* ig = z + r * 4 * hidden;
      float* fg = ig + hidden;
      float* gg = ig + 2 * hidden;
      float* og = ig + 3 * hidden;
      const float* cp = c_prev + r * hidden;
      float* hr = out + r * 2 * hidden;
      float* cr = hr + hidden;
      float* tc = tanh_c + r * hidden;
      if (bias != nullptr) {
        for (i64 j = 0; j < hidden; ++j) {
          ig[j] = sigmoid1(ig[j] + bias[j]);
          fg[j] = sigmoid1(fg[j] + bias[hidden + j]);
          gg[j] = std::tanh(gg[j] + bias[2 * hidden + j]);
          og[j] = sigmoid1(og[j] + bias[3 * hidden + j]);
        }
      } else {
        for (i64 j = 0; j < hidden; ++j) {
          ig[j] = sigmoid1(ig[j]);
          fg[j] = sigmoid1(fg[j]);
          gg[j] = std::tanh(gg[j]);
          og[j] = sigmoid1(og[j]);
        }
      }
      for (i64 j = 0; j < hidden; ++j) {
        const float c_new = fg[j] * cp[j] + ig[j] * gg[j];
        const float t = std::tanh(c_new);
        tc[j] = t;
        hr[j] = og[j] * t;
        cr[j] = c_new;
      }
    }
  });
}

void lstm_cell_backward(i64 batch, i64 hidden, const float* acts,
                        const float* tanh_c, const float* c_prev,
                        const float* dout, float* dz, float* dc_prev) {
  bump_dispatch(DispatchCounter::kLstmCellBackward);
  parallel_for(0, batch, lstm_row_grain(hidden), [&](i64 rb, i64 re) {
    for (i64 r = rb; r < re; ++r) {
      const float* ig = acts + r * 4 * hidden;
      const float* fg = ig + hidden;
      const float* gg = ig + 2 * hidden;
      const float* og = ig + 3 * hidden;
      const float* tc = tanh_c + r * hidden;
      const float* cp = c_prev + r * hidden;
      const float* dh = dout + r * 2 * hidden;
      const float* dc_up = dh + hidden;
      float* dzr = dz + r * 4 * hidden;
      float* dcp = dc_prev + r * hidden;
      for (i64 j = 0; j < hidden; ++j) {
        const float t = tc[j];
        // Total gradient into c_new: direct upstream plus through h'.
        const float dct = dc_up[j] + dh[j] * og[j] * (1.0f - t * t);
        const float do_ = dh[j] * t;
        const float di = dct * gg[j];
        const float df = dct * cp[j];
        const float dg = dct * ig[j];
        dzr[j] = di * ig[j] * (1.0f - ig[j]);
        dzr[hidden + j] = df * fg[j] * (1.0f - fg[j]);
        dzr[2 * hidden + j] = dg * (1.0f - gg[j] * gg[j]);
        dzr[3 * hidden + j] = do_ * og[j] * (1.0f - og[j]);
        dcp[j] = dct * fg[j];
      }
    }
  });
}

}  // namespace legw::core
