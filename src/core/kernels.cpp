#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>

namespace legw::core {

void sigmoid_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void sigmoid_backward(const float* y, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += dy[i] * y[i] * (1.0f - y[i]);
}

void tanh_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

void tanh_backward(const float* y, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += dy[i] * (1.0f - y[i] * y[i]);
}

void relu_forward(const float* x, float* y, i64 n) {
  for (i64 i = 0; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void relu_backward(const float* x, const float* dy, float* dx, i64 n) {
  for (i64 i = 0; i < n; ++i) dx[i] += x[i] > 0.0f ? dy[i] : 0.0f;
}

void softmax_rows(const float* x, float* y, i64 rows, i64 cols) {
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) {
      const float e = std::exp(xr[c] - m);
      yr[c] = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (i64 c = 0; c < cols; ++c) yr[c] *= inv;
  }
}

void log_softmax_rows(const float* x, float* y, i64 rows, i64 cols) {
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = x + r * cols;
    float* yr = y + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) denom += std::exp(xr[c] - m);
    const float log_denom = static_cast<float>(std::log(denom)) + m;
    for (i64 c = 0; c < cols; ++c) yr[c] = xr[c] - log_denom;
  }
}

double softmax_cross_entropy_forward(const float* logits, const i32* targets,
                                     i64 rows, i64 cols, i32 ignore_index,
                                     float* probs_out, i64* counted) {
  double loss = 0.0;
  i64 n_counted = 0;
  for (i64 r = 0; r < rows; ++r) {
    const float* xr = logits + r * cols;
    float m = xr[0];
    for (i64 c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    double denom = 0.0;
    for (i64 c = 0; c < cols; ++c) denom += std::exp(static_cast<double>(xr[c]) - m);
    const double log_denom = std::log(denom) + m;
    if (probs_out != nullptr) {
      float* pr = probs_out + r * cols;
      for (i64 c = 0; c < cols; ++c) {
        pr[c] = static_cast<float>(std::exp(static_cast<double>(xr[c]) - log_denom));
      }
    }
    const i32 t = targets[r];
    if (t == ignore_index) continue;
    LEGW_DCHECK(t >= 0 && t < cols, "cross-entropy target out of range");
    loss += log_denom - xr[t];
    ++n_counted;
  }
  if (counted != nullptr) *counted = n_counted;
  return loss;
}

void softmax_cross_entropy_backward(const float* probs, const i32* targets,
                                    i64 rows, i64 cols, i32 ignore_index,
                                    float scale, float* dlogits) {
  for (i64 r = 0; r < rows; ++r) {
    const i32 t = targets[r];
    if (t == ignore_index) continue;
    const float* pr = probs + r * cols;
    float* dr = dlogits + r * cols;
    for (i64 c = 0; c < cols; ++c) dr[c] += scale * pr[c];
    dr[t] -= scale;
  }
}

}  // namespace legw::core
