// Work-sharing thread pool with a blocking parallel_for.
//
// The pool is the single parallelism primitive in the library: GEMM tiles,
// elementwise kernels, batched LSTM steps and the simulated data-parallel
// workers all funnel through parallel_for. Tasks are chunked statically so a
// given (range, grain, worker-count) triple always produces the same work
// partition — important for run-to-run reproducibility of reductions that
// accumulate per-chunk partials.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/mutex.hpp"

namespace legw::core {

class ThreadPool {
 public:
  // n_threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(int n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(chunk_begin, chunk_end) over [begin, end), splitting into chunks
  // of at least `grain` elements. The calling thread participates. Blocks
  // until every chunk has finished. fn must be safe to call concurrently on
  // disjoint ranges.
  void parallel_for(i64 begin, i64 end, i64 grain,
                    const std::function<void(i64, i64)>& fn);

  // Process-wide default pool (lazily constructed, sized from
  // LEGW_NUM_THREADS or hardware concurrency).
  static ThreadPool& global();

  // Lifetime utilisation statistics, maintained with relaxed atomics (two
  // clock reads per executed chunk — negligible against chunk work, so they
  // stay on unconditionally). At quiescence (no parallel_for in flight)
  // chunks_executed == chunks_queued: every queued chunk was run by exactly
  // one worker. Inline work (the submitter's own chunk, serial fallbacks and
  // nested calls) is attributed to inline_busy_ns / chunks_inline.
  struct Stats {
    std::vector<i64> worker_busy_ns;  // per spawned worker
    i64 inline_busy_ns = 0;
    i64 chunks_queued = 0;    // chunks handed to the worker queue
    i64 chunks_executed = 0;  // chunks completed by pool workers
    i64 chunks_inline = 0;    // chunks run on the submitting thread
    i64 submissions = 0;      // parallel_for calls that used the queue
  };
  Stats stats() const;
  void reset_stats();

 private:
  struct Task {
    const std::function<void(i64, i64)>* fn = nullptr;
    i64 begin = 0;
    i64 end = 0;
  };

  void worker_loop(int worker_index);

  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<i64>[]> worker_busy_ns_;
  std::atomic<i64> inline_busy_ns_{0};
  std::atomic<i64> chunks_queued_{0};
  std::atomic<i64> chunks_executed_{0};
  std::atomic<i64> chunks_inline_{0};
  std::atomic<i64> submissions_{0};
  // Serialises concurrent parallel_for submissions. Always taken before the
  // queue lock (the submission path nests them); TSA enforces the order.
  Mutex submit_mu_ LEGW_ACQUIRED_BEFORE(mu_);
  Mutex mu_;
  CondVar cv_;       // wakes workers when tasks arrive
  CondVar done_cv_;  // wakes the submitter when all done
  std::vector<Task> queue_ LEGW_GUARDED_BY(mu_);
  std::size_t next_task_ LEGW_GUARDED_BY(mu_) = 0;
  int pending_ LEGW_GUARDED_BY(mu_) = 0;
  bool stop_ LEGW_GUARDED_BY(mu_) = false;
};

// Convenience wrapper over the global pool. Falls back to a serial loop for
// ranges smaller than one grain so tiny workloads pay no synchronisation.
void parallel_for(i64 begin, i64 end, i64 grain,
                  const std::function<void(i64, i64)>& fn);

}  // namespace legw::core
