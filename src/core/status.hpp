// Minimal status type for fallible operations whose failure the caller must
// handle (file publication, telemetry appends, ...). The class itself is
// [[nodiscard]]: every function returning core::Status by value inherits the
// must-check contract, so a silently dropped error is a compiler warning
// (-Werror on CI) — and the `discarded-status` lint rule (tools/lint.py)
// additionally bans bare-statement calls to the status-returning entry
// points. Use `(void)` plus a justifying comment where dropping is genuinely
// intended.
#pragma once

#include <string>
#include <utility>

namespace legw::core {

class [[nodiscard]] Status {
 public:
  // Default-constructed Status is success.
  Status() = default;

  static Status error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace legw::core
