// Dense float32 tensor.
//
// The library deliberately keeps the tensor minimal: contiguous row-major
// storage, value semantics (copies copy data, moves are cheap), and shape
// checked arithmetic. Views/strides are not needed by the models in this
// repo; the few ops that would want them (transpose, slicing) materialise
// their result instead, which keeps every kernel a flat loop over contiguous
// memory — the friendliest possible layout for the vectoriser.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/rng.hpp"
#include "core/storage.hpp"

namespace legw::core {

using Shape = std::vector<i64>;

i64 shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> values);

  // Copies/moves preserve value semantics; the *assignment* forms bump the
  // mutation version (see version()) because they overwrite existing
  // contents — that is what lets the autograd graph validator catch "tensor
  // reassigned after graph capture".
  Tensor(const Tensor&) = default;
  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(const Tensor& o) {
    shape_ = o.shape_;
    data_ = o.data_;
    ++version_;
    return *this;
  }
  Tensor& operator=(Tensor&& o) noexcept {
    shape_ = std::move(o.shape_);
    data_ = std::move(o.data_);
    ++version_;
    return *this;
  }

  // --- construction helpers -------------------------------------------------
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  // Storage with UNSPECIFIED contents (the arena recycles step memory, so
  // "uninitialised" can mean last step's bytes or a NaN scribble). Strictly
  // for producers that overwrite every element before any read.
  static Tensor uninit(Shape shape);
  // i.i.d. N(mean, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      float mean = 0.0f);
  // i.i.d. U[lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo = 0.0f,
                             float hi = 1.0f);

  // --- shape ----------------------------------------------------------------
  const Shape& shape() const { return shape_; }
  i64 dim() const { return static_cast<i64>(shape_.size()); }
  i64 size(i64 d) const;
  i64 numel() const { return static_cast<i64>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // Returns a tensor sharing no storage with this one but holding the same
  // data reinterpreted under `shape` (numel must match).
  Tensor reshape(Shape shape) const;

  // --- element access -------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  // Unchecked in normal builds (these ARE the hot path); bounds-checked when
  // the LEGW_CHECKED CMake option is on.
  float& operator[](i64 i) {
#ifdef LEGW_CHECKED_BUILD
    LEGW_CHECK(i >= 0 && i < numel(),
               "Tensor[] index out of bounds: " + std::to_string(i) + " in " +
                   shape_to_string(shape_));
#endif
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](i64 i) const {
#ifdef LEGW_CHECKED_BUILD
    LEGW_CHECK(i >= 0 && i < numel(),
               "Tensor[] index out of bounds: " + std::to_string(i) + " in " +
                   shape_to_string(shape_));
#endif
    return data_[static_cast<std::size_t>(i)];
  }
  // Checked 2-D / 3-D accessors, for tests and cold paths.
  float& at(i64 i, i64 j);
  float at(i64 i, i64 j) const;
  float& at(i64 i, i64 j, i64 k);
  float at(i64 i, i64 j, i64 k) const;

  // --- arithmetic (shape-checked, allocating) --------------------------------
  Tensor operator+(const Tensor& o) const;
  Tensor operator-(const Tensor& o) const;
  Tensor operator*(const Tensor& o) const;  // elementwise
  Tensor operator*(float s) const;
  Tensor operator+(float s) const;

  // --- in-place -------------------------------------------------------------
  Tensor& add_(const Tensor& o);
  Tensor& add_(const Tensor& o, float scale);  // this += scale * o
  Tensor& sub_(const Tensor& o);
  Tensor& mul_(const Tensor& o);
  Tensor& scale_(float s);
  Tensor& fill_(float v);
  Tensor& zero_() { return fill_(0.0f); }

  // --- mutation tracking ------------------------------------------------------
  // Monotonic counter bumped by the named in-place mutators, by assignment,
  // and by ag::Variable::mutable_value(). The autograd layer records parent
  // versions at graph-capture time so check::lint_graph (and backward, in
  // checked mode) can detect in-place mutation of a tensor after the graph
  // captured it. Raw writes through data()/operator[] are deliberately NOT
  // tracked — they are the per-element hot path.
  u32 version() const { return version_; }
  void bump_version() { ++version_; }

  // --- storage placement (see mem/alloc.hpp) ---------------------------------
  // True when the data lives in a step-scoped arena and dies at the next
  // begin_step.
  bool arena_backed() const { return data_.arena_backed(); }
  // Moves arena-backed data onto the heap (no-op otherwise). Call before
  // letting a step-scoped tensor outlive its TrainStepScope — e.g. the
  // carried BPTT state in train_ptb. Contents are unchanged, so the
  // mutation version does not bump.
  Tensor& rehome_() {
    data_.make_heap_owned();
    return *this;
  }

  // --- reductions / norms ----------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  // Euclidean norm, accumulated in double for stability.
  float l2_norm() const;

  // Materialised 2-D transpose.
  Tensor transposed_2d() const;

  std::string to_string(i64 max_elems = 32) const;

 private:
  Shape shape_;
  FloatStorage data_;
  u32 version_ = 0;
};

Tensor operator*(float s, const Tensor& t);

// C[m,n] = A[m,k] (or A^T) times B[k,n] (or B^T), accumulated into
// beta*C + alpha*A*B. Parallelised over row blocks of C.
//
// gemm() dispatches on core::gemm_kernel() (LEGW_KERNEL env / programmatic
// override) between the two implementations below. Both honour the same
// determinism contract: the reduction over k for any C element is performed
// by a single thread in ascending-k order, so results are bitwise identical
// across repeated runs, thread counts, and row-partition boundaries.
void gemm(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
          const float* a, i64 lda, const float* b, i64 ldb, float beta,
          float* c, i64 ldc);

// Scalar row-kernel reference implementation. Always correct, never tuned;
// the parity oracle for gemm_blocked.
void gemm_ref(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
              const float* a, i64 lda, const float* b, i64 ldb, float beta,
              float* c, i64 ldc);

// Cache-blocked (MC/KC/NC panels), register-tiled (8x48 micro-kernel) fast
// path with packed operands; covers all four transpose cases. Defined in
// gemm_blocked.cpp; see docs/KERNELS.md for the blocking scheme.
void gemm_blocked(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
                  const float* a, i64 lda, const float* b, i64 ldb, float beta,
                  float* c, i64 ldc);

// Tensor-level matmul: a is [m,k], b is [k,n] after optional transposes.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

}  // namespace legw::core
