// Atomic file publication for run artifacts.
//
// A crash (or injected kill) halfway through a write must never leave a torn
// checkpoint, CSV, or BENCH_*.json on disk: readers either see the previous
// complete file or the new complete file. The only portable way to get that
// on POSIX is write-to-temp + fsync + rename, which this header packages as
// an RAII stream (`AtomicFile`) and a one-shot helper (`atomic_write_file`).
// Everything in src/ that writes a run artifact goes through one of the two;
// the `atomic-write` lint rule (tools/lint.py) enforces it.
#pragma once

#include <cstdio>
#include <string>

#include "core/common.hpp"
#include "core/status.hpp"

namespace legw::core {

// RAII writer that stages content in `<path>.tmp` and atomically publishes
// it to `path` on commit(). If the object is destroyed without a successful
// commit the temp file is removed and `path` is untouched — a crash between
// construction and commit leaves at most a stale `.tmp`, never a torn
// artifact.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  // False when the temp file could not be opened; stream() is nullptr then.
  bool ok() const { return f_ != nullptr; }
  std::FILE* stream() { return f_; }
  const std::string& path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

  // Convenience forwarding to fwrite on the staged stream; returns false on
  // short write (and commit() will then also fail).
  bool write(const void* data, std::size_t n);

  // Flushes, fsyncs, closes and renames the temp file over `path`. Returns
  // an error Status on any failure, in which case the temp file is removed
  // and `path` keeps its previous contents. Calling commit() twice is an
  // error.
  Status commit();

  // Closes and deletes the temp file without publishing (also what the
  // destructor does for an uncommitted file). Used by the checkpoint crash
  // injector to model a process kill mid-write.
  void discard();

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* f_ = nullptr;
  bool failed_ = false;
};

// Writes `n` bytes to `path` atomically (temp + fsync + rename). Returns an
// error Status on failure; `path` is untouched then.
Status atomic_write_file(const std::string& path, const void* data,
                         std::size_t n);
Status atomic_write_file(const std::string& path, const std::string& content);

}  // namespace legw::core
