#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "check/contracts.hpp"
#include "core/counters.hpp"
#include "core/flags.hpp"
#include "core/thread_pool.hpp"

namespace legw::core {

i64 shape_numel(const Shape& shape) {
  i64 n = 1;
  for (i64 d : shape) {
    LEGW_CHECK(d >= 0, "negative dimension in shape " + shape_to_string(shape));
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)),
      data_(FloatStorage::uninitialized(static_cast<i64>(values.size()))) {
  LEGW_CHECK(data_.size() == shape_numel(shape_),
             "value count does not match shape " + shape_to_string(shape_));
  if (!values.empty()) {
    std::copy(values.begin(), values.end(), data_.begin());
  }
}

Tensor Tensor::uninit(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = FloatStorage::uninitialized(shape_numel(t.shape_));
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, float mean) {
  Tensor t = uninit(std::move(shape));
  for (i64 i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = uninit(std::move(shape));
  for (i64 i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

i64 Tensor::size(i64 d) const {
  if (d < 0) d += dim();
  LEGW_CHECK(d >= 0 && d < dim(), "dimension index out of range");
  return shape_[static_cast<std::size_t>(d)];
}

Tensor Tensor::reshape(Shape shape) const {
  LEGW_CHECK(shape_numel(shape) == numel(),
             "reshape " + shape_to_string(shape_) + " -> " +
                 shape_to_string(shape) + " changes element count");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

float& Tensor::at(i64 i, i64 j) {
  LEGW_DCHECK(dim() == 2, "at(i,j) requires a 2-D tensor");
  LEGW_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
              "2-D index out of range");
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float Tensor::at(i64 i, i64 j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(i64 i, i64 j, i64 k) {
  LEGW_DCHECK(dim() == 3, "at(i,j,k) requires a 3-D tensor");
  LEGW_DCHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                  k < shape_[2],
              "3-D index out of range");
  return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(i64 i, i64 j, i64 k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

using check::expect_same_shape;

Tensor Tensor::operator+(const Tensor& o) const {
  expect_same_shape(*this, o, "operator+");
  Tensor r = *this;
  r.add_(o);
  return r;
}

Tensor Tensor::operator-(const Tensor& o) const {
  expect_same_shape(*this, o, "operator-");
  Tensor r = *this;
  r.sub_(o);
  return r;
}

Tensor Tensor::operator*(const Tensor& o) const {
  expect_same_shape(*this, o, "operator*");
  Tensor r = *this;
  r.mul_(o);
  return r;
}

Tensor Tensor::operator*(float s) const {
  Tensor r = *this;
  r.scale_(s);
  return r;
}

Tensor Tensor::operator+(float s) const {
  Tensor r = *this;
  for (i64 i = 0; i < r.numel(); ++i) r[i] += s;
  return r;
}

Tensor& Tensor::add_(const Tensor& o) {
  bump_version();
  expect_same_shape(*this, o, "add_");
  const float* src = o.data();
  float* dst = data();
  const i64 n = numel();
  for (i64 i = 0; i < n; ++i) dst[i] += src[i];
  return *this;
}

Tensor& Tensor::add_(const Tensor& o, float scale) {
  bump_version();
  expect_same_shape(*this, o, "add_(scaled)");
  const float* src = o.data();
  float* dst = data();
  const i64 n = numel();
  for (i64 i = 0; i < n; ++i) dst[i] += scale * src[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& o) {
  bump_version();
  expect_same_shape(*this, o, "sub_");
  const float* src = o.data();
  float* dst = data();
  const i64 n = numel();
  for (i64 i = 0; i < n; ++i) dst[i] -= src[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& o) {
  bump_version();
  expect_same_shape(*this, o, "mul_");
  const float* src = o.data();
  float* dst = data();
  const i64 n = numel();
  for (i64 i = 0; i < n; ++i) dst[i] *= src[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  bump_version();
  float* dst = data();
  const i64 n = numel();
  for (i64 i = 0; i < n; ++i) dst[i] *= s;
  return *this;
}

Tensor& Tensor::fill_(float v) {
  bump_version();
  std::fill(data_.begin(), data_.end(), v);
  return *this;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  LEGW_CHECK(numel() > 0, "mean of empty tensor");
  return static_cast<float>(static_cast<double>(sum()) / numel());
}

float Tensor::min() const {
  LEGW_CHECK(numel() > 0, "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  LEGW_CHECK(numel() > 0, "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

Tensor Tensor::transposed_2d() const {
  LEGW_CHECK(dim() == 2, "transposed_2d requires a 2-D tensor");
  const i64 m = shape_[0];
  const i64 n = shape_[1];
  Tensor t = uninit(Shape{n, m});
  const float* src = data();
  float* dst = t.data();
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      dst[j * m + i] = src[i * n + j];
    }
  }
  return t;
}

std::string Tensor::to_string(i64 max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const i64 n = std::min<i64>(numel(), max_elems);
  for (i64 i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<std::size_t>(i)];
  }
  if (n < numel()) os << ", ...";
  os << "}";
  return os.str();
}

Tensor operator*(float s, const Tensor& t) { return t * s; }

namespace {

// Innermost kernel: C[i, :] += alpha * A[i, k] * B[k, :] over a k-panel.
// Both B rows and C rows are contiguous, so the j-loop vectorises.
inline void gemm_nn_rows(i64 row_begin, i64 row_end, i64 n, i64 k, float alpha,
                         const float* a, i64 lda, const float* b, i64 ldb,
                         float* c, i64 ldc) {
  constexpr i64 kKc = 128;  // k-panel size; keeps a B panel in L1/L2
  for (i64 kk = 0; kk < k; kk += kKc) {
    const i64 kend = std::min(k, kk + kKc);
    for (i64 i = row_begin; i < row_end; ++i) {
      float* ci = c + i * ldc;
      for (i64 p = kk; p < kend; ++p) {
        // No zero-skip branch here (or in the tn kernel): it would defeat
        // vectorisation and make FLOP cost input-dependent.
        const float aip = alpha * a[i * lda + p];
        const float* bp = b + p * ldb;
        for (i64 j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

// C[i, j] += alpha * dot(A[i, :], B[j, :]) — the trans_b case. Dot products
// over contiguous rows of both operands.
inline void gemm_nt_rows(i64 row_begin, i64 row_end, i64 n, i64 k, float alpha,
                         const float* a, i64 lda, const float* b, i64 ldb,
                         float* c, i64 ldc) {
  for (i64 i = row_begin; i < row_end; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (i64 j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = 0.0f;
      for (i64 p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] += alpha * acc;
    }
  }
}

// C[i, :] += alpha * A[p, i] * B[p, :] — the trans_a case.
inline void gemm_tn_rows(i64 row_begin, i64 row_end, i64 n, i64 k, float alpha,
                         const float* a, i64 lda, const float* b, i64 ldb,
                         float* c, i64 ldc) {
  for (i64 i = row_begin; i < row_end; ++i) {
    float* ci = c + i * ldc;
    for (i64 p = 0; p < k; ++p) {
      const float aip = alpha * a[p * lda + i];
      const float* bp = b + p * ldb;
      for (i64 j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

inline void gemm_tt_rows(i64 row_begin, i64 row_end, i64 n, i64 k, float alpha,
                         const float* a, i64 lda, const float* b, i64 ldb,
                         float* c, i64 ldc) {
  for (i64 i = row_begin; i < row_end; ++i) {
    float* ci = c + i * ldc;
    for (i64 j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (i64 p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
      ci[j] += alpha * acc;
    }
  }
}

}  // namespace

void gemm_ref(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
              const float* a, i64 lda, const float* b, i64 ldb, float beta,
              float* c, i64 ldc) {
  LEGW_CHECK(m >= 0 && n >= 0 && k >= 0, "gemm: negative dimension");
  if (m == 0 || n == 0) return;

  // Scale C by beta first (the row kernels accumulate).
  if (beta == 0.0f) {
    for (i64 i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.0f);
  } else if (beta != 1.0f) {
    for (i64 i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      for (i64 j = 0; j < n; ++j) ci[j] *= beta;
    }
  }
  if (k == 0 || alpha == 0.0f) return;

  // Parallelise over row blocks of C; each block touches disjoint C rows.
  // Grain chosen so a chunk does at least ~64k multiply-adds.
  const i64 grain = std::max<i64>(1, 65536 / std::max<i64>(1, n * k));
  parallel_for(0, m, grain, [&](i64 rb, i64 re) {
    if (!trans_a && !trans_b) {
      gemm_nn_rows(rb, re, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (!trans_a && trans_b) {
      gemm_nt_rows(rb, re, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else if (trans_a && !trans_b) {
      gemm_tn_rows(rb, re, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
      gemm_tt_rows(rb, re, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
  });
}

void gemm(bool trans_a, bool trans_b, i64 m, i64 n, i64 k, float alpha,
          const float* a, i64 lda, const float* b, i64 ldb, float beta,
          float* c, i64 ldc) {
  if (gemm_kernel() == GemmKernel::kRef) {
    bump_dispatch(DispatchCounter::kGemmRef);
    gemm_ref(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    bump_dispatch(DispatchCounter::kGemmBlocked);
    gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                 ldc);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  LEGW_CHECK(a.dim() == 2 && b.dim() == 2, "matmul requires 2-D tensors");
  const i64 m = trans_a ? a.size(1) : a.size(0);
  const i64 ka = trans_a ? a.size(0) : a.size(1);
  const i64 kb = trans_b ? b.size(1) : b.size(0);
  const i64 n = trans_b ? b.size(0) : b.size(1);
  LEGW_CHECK(ka == kb, "matmul: inner dimensions differ (" +
                           shape_to_string(a.shape()) + " x " +
                           shape_to_string(b.shape()) + ")");
  // beta = 0 makes both gemm kernels overwrite C entirely, so the output can
  // skip the zero-fill (it matters: C is the largest allocation of the op).
  Tensor c = Tensor::uninit(Shape{m, n});
  gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.size(1), b.data(),
       b.size(1), 0.0f, c.data(), n);
  return c;
}

}  // namespace legw::core
