// Tensor storage: a flat float buffer behind the LEGW_ALLOC dispatcher.
//
// Replaces std::vector<float> as Tensor's backing store. Semantics are the
// same (owning, value-semantic, zero-filled by the sized constructor); the
// difference is where the bytes come from: when the current thread has a
// StepArena bound (mem::TrainStepScope, arena mode) allocations are served
// from the step's planned arena, otherwise from kArenaAlignment-aligned,
// counted heap memory. Copies copy data and re-dispatch — so copying an
// arena tensor outside the step scope yields a heap tensor, which is what
// keeps checkpoint capture and final-params snapshots safe by construction.
#pragma once

#include <cstddef>

#include "core/common.hpp"

namespace legw::mem {
class StepArena;
}

namespace legw::core {

class FloatStorage {
 public:
  FloatStorage() = default;
  // n zero-filled floats (matches std::vector value-initialisation — the
  // arena recycles memory, so the explicit fill is what preserves bitwise
  // parity with the malloc path).
  explicit FloatStorage(i64 n) : FloatStorage(n, 0.0f) {}
  FloatStorage(i64 n, float fill);
  // n floats of UNSPECIFIED content. Only for callers that provably
  // overwrite every element before any read (matmul's output, transposes,
  // random fills).
  static FloatStorage uninitialized(i64 n);

  FloatStorage(const FloatStorage& o);
  FloatStorage(FloatStorage&& o) noexcept;
  FloatStorage& operator=(const FloatStorage& o);
  FloatStorage& operator=(FloatStorage&& o) noexcept;
  ~FloatStorage() { release(); }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  i64 size() const { return size_; }
  bool empty() const { return size_ == 0; }
  float* begin() { return ptr_; }
  float* end() { return ptr_ + size_; }
  const float* begin() const { return ptr_; }
  const float* end() const { return ptr_ + size_; }
  float& operator[](std::size_t i) { return ptr_[i]; }
  float operator[](std::size_t i) const { return ptr_[i]; }

  // True when the bytes live in a step arena (and therefore die at the next
  // begin_step).
  bool arena_backed() const { return arena_ != nullptr; }
  // Moves arena-backed contents into heap storage (no-op when already
  // heap-backed). Lets step-scoped results legitimately outlive the step —
  // e.g. PTB's carried BPTT state.
  void make_heap_owned();

 private:
  void allocate(i64 n);
  void release();

  float* ptr_ = nullptr;
  i64 size_ = 0;
  // Owning arena (nullptr = heap) and the arena generation observed at
  // allocation, so a free that races a retired generation is ignored.
  mem::StepArena* arena_ = nullptr;
  u64 gen_ = 0;
};

}  // namespace legw::core
