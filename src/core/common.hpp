// Common contract-checking macros and fundamental typedefs for the LEGW
// reproduction library. Every subsystem includes this header.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace legw {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using u32 = std::uint32_t;
using u16 = std::uint16_t;
using i8 = std::int8_t;
using u8 = std::uint8_t;

namespace detail {
[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const std::string& msg) {
  std::fprintf(stderr, "LEGW_CHECK failed at %s:%d: (%s) %s\n", file, line,
               expr, msg.c_str());
  std::abort();
}
}  // namespace detail

// Contract check that is always on (cheap relative to the numeric kernels it
// guards). Use for shape/argument validation at public API boundaries.
#define LEGW_CHECK(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::legw::detail::check_failed(__FILE__, __LINE__, #cond, (msg));    \
    }                                                                    \
  } while (0)

// Check used inside inner loops; compiled out in NDEBUG builds. The
// LEGW_CHECKED diagnostic build (see docs/CHECKS.md) re-arms it regardless
// of NDEBUG so release-optimised checked binaries still validate inner-loop
// contracts.
#if defined(NDEBUG) && !defined(LEGW_CHECKED_BUILD)
#define LEGW_DCHECK(cond, msg) \
  do {                         \
  } while (0)
#else
#define LEGW_DCHECK(cond, msg) LEGW_CHECK(cond, msg)
#endif

}  // namespace legw
