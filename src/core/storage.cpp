#include "core/storage.hpp"

#include <algorithm>
#include <cstring>

#include "mem/alloc.hpp"
#include "mem/arena.hpp"

namespace legw::core {

void FloatStorage::allocate(i64 n) {
  LEGW_DCHECK(ptr_ == nullptr, "FloatStorage: allocate over live storage");
  if (n <= 0) return;
  const i64 bytes = n * static_cast<i64>(sizeof(float));
  if (mem::StepArena* arena = mem::bound_step_arena()) {
    ptr_ = static_cast<float*>(arena->allocate(bytes));
    arena_ = arena;
    gen_ = arena->generation();
  } else {
    ptr_ = static_cast<float*>(mem::heap_alloc(bytes));
  }
  size_ = n;
}

void FloatStorage::release() {
  if (ptr_ == nullptr) return;
  const i64 bytes = size_ * static_cast<i64>(sizeof(float));
  if (arena_ != nullptr) {
    arena_->deallocate(ptr_, bytes, gen_);
  } else {
    mem::heap_free(ptr_, bytes);
  }
  ptr_ = nullptr;
  size_ = 0;
  arena_ = nullptr;
  gen_ = 0;
}

FloatStorage::FloatStorage(i64 n, float fill) {
  allocate(n);
  std::fill(ptr_, ptr_ + size_, fill);
}

FloatStorage FloatStorage::uninitialized(i64 n) {
  FloatStorage s;
  s.allocate(n);
  return s;
}

FloatStorage::FloatStorage(const FloatStorage& o) {
  allocate(o.size_);
  if (size_ > 0) {
    std::memcpy(ptr_, o.ptr_, static_cast<std::size_t>(size_) * sizeof(float));
  }
}

FloatStorage::FloatStorage(FloatStorage&& o) noexcept
    : ptr_(o.ptr_), size_(o.size_), arena_(o.arena_), gen_(o.gen_) {
  o.ptr_ = nullptr;
  o.size_ = 0;
  o.arena_ = nullptr;
  o.gen_ = 0;
}

FloatStorage& FloatStorage::operator=(const FloatStorage& o) {
  if (this == &o) return *this;
  if (size_ != o.size_) {
    release();
    allocate(o.size_);
  }
  if (size_ > 0) {
    std::memcpy(ptr_, o.ptr_, static_cast<std::size_t>(size_) * sizeof(float));
  }
  return *this;
}

FloatStorage& FloatStorage::operator=(FloatStorage&& o) noexcept {
  if (this == &o) return *this;
  release();
  ptr_ = o.ptr_;
  size_ = o.size_;
  arena_ = o.arena_;
  gen_ = o.gen_;
  o.ptr_ = nullptr;
  o.size_ = 0;
  o.arena_ = nullptr;
  o.gen_ = 0;
  return *this;
}

void FloatStorage::make_heap_owned() {
  if (arena_ == nullptr || ptr_ == nullptr) return;
  const i64 bytes = size_ * static_cast<i64>(sizeof(float));
  float* heap = static_cast<float*>(mem::heap_alloc(bytes));
  std::memcpy(heap, ptr_, static_cast<std::size_t>(bytes));
  arena_->deallocate(ptr_, bytes, gen_);
  ptr_ = heap;
  arena_ = nullptr;
  gen_ = 0;
}

}  // namespace legw::core
