// Deterministic counter-style random number generation.
//
// All randomness in the library flows through explicitly-seeded Rng
// instances so that every experiment is bit-reproducible. The generator is
// SplitMix64 (Steele et al.), which passes BigCrush and is trivially
// splittable: `split()` derives an independent stream, which lets data
// loaders, per-worker initialisation, and dropout masks draw from
// uncorrelated streams without sharing mutable state across threads.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/common.hpp"

namespace legw::core {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  u64 next_u64() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n).
  u64 uniform_int(u64 n) {
    LEGW_DCHECK(n > 0, "uniform_int: n must be positive");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for n << 2^64 and determinism is what we care about.
    return next_u64() % n;
  }

  // Standard normal via Box-Muller. Caches the second variate.
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Derives an independent stream. The child is seeded from this stream's
  // output, so parent and child sequences are uncorrelated.
  Rng split() { return Rng(next_u64() ^ 0xa0761d6478bd642full); }

  // Complete generator state for checkpoint/resume: the raw SplitMix64
  // counter plus the Box-Muller cache. A stream restored from state()
  // continues the exact same sequence — including the cached second normal
  // variate, which a counter-only snapshot would silently drop
  // (tests/test_ckpt.cpp asserts continuation across save/restore).
  struct State {
    u64 counter = 0;
    double cached = 0.0;
    bool has_cached = false;
  };
  State state() const { return {state_, cached_, has_cached_}; }
  void set_state(const State& s) {
    state_ = s.counter;
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

 private:
  u64 state_;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace legw::core
