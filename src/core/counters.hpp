// Always-on dispatch counters for the numeric kernels.
//
// These live in core (not obs) because the dispatch sites — core::gemm and
// the fused LSTM-cell kernels — sit below the observability layer in the
// link order. Each counter is one relaxed atomic increment per kernel call,
// cheap against the kernels they count, so they stay on even when tracing is
// disabled. obs::TraceRecorder folds a snapshot of these into its exported
// counter set (see obs/trace.hpp).
#pragma once

#include "core/common.hpp"

namespace legw::core {

enum class DispatchCounter {
  kGemmRef = 0,      // core::gemm dispatched to the scalar reference kernel
  kGemmBlocked,      // core::gemm dispatched to the blocked/tiled kernel
  kLstmCellForward,  // fused lstm_cell_forward invocations
  kLstmCellBackward, // fused lstm_cell_backward invocations
  kCount
};

// Relaxed atomic increment; safe from any thread.
void bump_dispatch(DispatchCounter c);

// Current value (relaxed load).
i64 dispatch_count(DispatchCounter c);

// Stable export name, e.g. "dispatch.gemm.blocked".
const char* dispatch_counter_name(DispatchCounter c);

// Zeroes every counter (tests and benches isolate measurement windows).
void reset_dispatch_counters();

}  // namespace legw::core
