#include "core/counters.hpp"

#include <atomic>

namespace legw::core {

namespace {

constexpr int kNumCounters = static_cast<int>(DispatchCounter::kCount);

std::atomic<i64>& counter_slot(DispatchCounter c) {
  static std::atomic<i64> slots[kNumCounters] = {};
  return slots[static_cast<int>(c)];
}

}  // namespace

void bump_dispatch(DispatchCounter c) {
  counter_slot(c).fetch_add(1, std::memory_order_relaxed);
}

i64 dispatch_count(DispatchCounter c) {
  return counter_slot(c).load(std::memory_order_relaxed);
}

const char* dispatch_counter_name(DispatchCounter c) {
  switch (c) {
    case DispatchCounter::kGemmRef:
      return "dispatch.gemm.ref";
    case DispatchCounter::kGemmBlocked:
      return "dispatch.gemm.blocked";
    case DispatchCounter::kLstmCellForward:
      return "dispatch.lstm_cell.forward";
    case DispatchCounter::kLstmCellBackward:
      return "dispatch.lstm_cell.backward";
    case DispatchCounter::kCount:
      break;
  }
  return "dispatch.unknown";
}

void reset_dispatch_counters() {
  for (int i = 0; i < kNumCounters; ++i) {
    counter_slot(static_cast<DispatchCounter>(i))
        .store(0, std::memory_order_relaxed);
  }
}

}  // namespace legw::core
