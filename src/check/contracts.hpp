// Centralized shape-contract assertions for the op library.
//
// Every public op used to hand-roll its LEGW_CHECK message; these helpers
// make the contract one call and the failure message uniform — always the op
// name plus the offending shapes, so a violation is attributable without a
// debugger. All helpers are always-on (LEGW_CHECK semantics): shape checks
// run once per op call, which is noise next to the kernel work they guard.
#pragma once

#include <string>

#include "core/tensor.hpp"

namespace legw::check {

// `a` and `b` must share one shape. Message keeps the "shape mismatch"
// wording the contract death-tests pin down.
inline void expect_same_shape(const core::Tensor& a, const core::Tensor& b,
                              const char* op) {
  LEGW_CHECK(a.same_shape(b),
             std::string(op) + ": shape mismatch " +
                 core::shape_to_string(a.shape()) + " vs " +
                 core::shape_to_string(b.shape()));
}

// `t` must have exactly `d` dimensions.
inline void expect_dim(const core::Tensor& t, i64 d, const char* op) {
  LEGW_CHECK(t.dim() == d, std::string(op) + ": requires " +
                               std::to_string(d) + "-D input, got " +
                               core::shape_to_string(t.shape()));
}

// Dimension `d` of `t` must have extent `n`.
inline void expect_size(const core::Tensor& t, i64 d, i64 n, const char* op) {
  LEGW_CHECK(t.dim() > d && t.size(d) == n,
             std::string(op) + ": dimension " + std::to_string(d) +
                 " must be " + std::to_string(n) + ", got " +
                 core::shape_to_string(t.shape()));
}

// `t` must hold at least one element.
inline void expect_nonempty(const core::Tensor& t, const char* op) {
  LEGW_CHECK(t.numel() > 0, std::string(op) + ": empty tensor");
}

}  // namespace legw::check
