// Autograd graph validator.
//
// lint_graph walks the tape reachable from a root Variable (typically the
// loss) and reports structural defects that silently invalidate training
// runs rather than crashing them:
//
//  * cycles — impossible to build through the public op API, but hand-built
//    or deserialised graphs can contain them, and backward() on a cyclic
//    graph drops gradient contributions without any error;
//  * gradients never populated — after backward() has run, a requires_grad
//    node reachable from the root whose gradient buffer was never allocated
//    means some child's backward closure forgot to propagate into it;
//  * parameters unreachable from the loss — a registered parameter that no
//    op consumed will sit at its initial value forever while the rest of
//    the model trains (the classic "frozen layer" bug);
//  * stale captures — a tensor mutated in place (tracked via
//    core::Tensor::version()) after an op captured it, so backward would
//    differentiate against values the forward pass never saw.
//
// The validator is read-only and build-independent: call it from tests or
// debugging sessions in any build. The same stale-capture and non-finite
// conditions also abort eagerly inside backward() when the checked-mode
// tripwires are armed.
#pragma once

#include <string>
#include <vector>

#include "ag/variable.hpp"

namespace legw::check {

enum class GraphIssueKind {
  kCycle,
  kGradNeverPopulated,
  kUnreachableParam,
  kStaleCapture,
  kMissingBackwardFn,
};

const char* graph_issue_kind_name(GraphIssueKind kind);

struct GraphIssue {
  GraphIssueKind kind;
  std::string detail;  // human-readable blame: op names, indices, versions
};

struct GraphLintReport {
  std::vector<GraphIssue> issues;
  i64 nodes_visited = 0;
  bool ok() const { return issues.empty(); }
  // One line per issue, prefixed with the kind name; "graph lint: ok" when
  // clean.
  std::string to_string() const;
};

// Validates the graph reachable from `root`. `params` (optional) are the
// model parameters to test for reachability from the root. The
// never-populated-gradient check only applies once backward() has run on
// this graph (detected via the root's gradient buffer being non-empty).
GraphLintReport lint_graph(const ag::Variable& root,
                           const std::vector<ag::Variable>& params = {});

}  // namespace legw::check
