#include "check/check.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "core/mutex.hpp"

namespace legw::check {

namespace {

// Relaxed atomics: the flag is read by concurrent replica-backward threads;
// only the value matters, not ordering against other memory.
std::atomic<bool>& tripwire_state() {
  static std::atomic<bool> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_CHECK_FINITE")) {
      return env[0] != '\0' && env[0] != '0';
    }
    return kCheckedBuild;
  }()};
  return state;
}

std::atomic<i64>& step_state() {
  static std::atomic<i64> state{-1};
  return state;
}

std::atomic<bool>& recoverable_state() {
  static std::atomic<bool> state{false};
  return state;
}

// First-violation report for recoverable mode. A mutex (not an atomic)
// because the payload is a string; contention is nil — the lock is only
// taken when a tripwire actually fires or the sentinel polls.
struct ReportSlot {
  core::Mutex mu;
  TripwireReport report LEGW_GUARDED_BY(mu);
};
ReportSlot& report_slot() {
  static ReportSlot slot;
  return slot;
}

// Records the violation; keeps the first one (later ones are downstream
// noise from the same poisoned value). Returns nothing — the caller returns
// to the training loop, which consults take_tripwire_report().
void record_violation(const std::string& message) {
  ReportSlot& slot = report_slot();
  core::MutexLock lock(slot.mu);
  if (slot.report.fired) return;
  slot.report.fired = true;
  slot.report.message = message;
  slot.report.step = step_index();
}

}  // namespace

bool tripwires_enabled() {
  return tripwire_state().load(std::memory_order_relaxed);
}

void set_tripwires(bool on) {
  tripwire_state().store(on, std::memory_order_relaxed);
}

TripwireScope::TripwireScope(bool on) : prev_(tripwires_enabled()) {
  set_tripwires(on);
}

TripwireScope::~TripwireScope() { set_tripwires(prev_); }

void set_step_index(i64 step) {
  step_state().store(step, std::memory_order_relaxed);
}

i64 step_index() { return step_state().load(std::memory_order_relaxed); }

i64 first_non_finite(const float* data, i64 n) {
  for (i64 i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return i;
  }
  return -1;
}

bool all_finite(const core::Tensor& t) {
  return first_non_finite(t.data(), t.numel()) < 0;
}

void assert_finite(const core::Tensor& t, const std::string& tensor_name,
                   const std::string& context) {
  const i64 idx = first_non_finite(t.data(), t.numel());
  if (idx < 0) return;
  std::ostringstream os;
  os << "non-finite tripwire: " << t[idx] << " at elem " << idx << " of "
     << tensor_name << " shape " << core::shape_to_string(t.shape())
     << " during " << context;
  if (step_index() >= 0) os << " (step " << step_index() << ")";
  if (tripwires_recoverable()) {
    record_violation(os.str());
    return;
  }
  LEGW_CHECK(idx < 0, os.str());
}

bool tripwires_recoverable() {
  return recoverable_state().load(std::memory_order_relaxed);
}

void set_tripwires_recoverable(bool on) {
  recoverable_state().store(on, std::memory_order_relaxed);
}

TripwireReport take_tripwire_report() {
  ReportSlot& slot = report_slot();
  core::MutexLock lock(slot.mu);
  TripwireReport out = slot.report;
  slot.report = TripwireReport{};
  return out;
}

RecoverableScope::RecoverableScope(bool on) : prev_(tripwires_recoverable()) {
  set_tripwires_recoverable(on);
  (void)take_tripwire_report();  // drop any stale report from a prior scope
}

RecoverableScope::~RecoverableScope() { set_tripwires_recoverable(prev_); }

}  // namespace legw::check
