#include "check/check.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace legw::check {

namespace {

// Relaxed atomics: the flag is read by concurrent replica-backward threads;
// only the value matters, not ordering against other memory.
std::atomic<bool>& tripwire_state() {
  static std::atomic<bool> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    if (const char* env = std::getenv("LEGW_CHECK_FINITE")) {
      return env[0] != '\0' && env[0] != '0';
    }
    return kCheckedBuild;
  }()};
  return state;
}

std::atomic<i64>& step_state() {
  static std::atomic<i64> state{-1};
  return state;
}

}  // namespace

bool tripwires_enabled() {
  return tripwire_state().load(std::memory_order_relaxed);
}

void set_tripwires(bool on) {
  tripwire_state().store(on, std::memory_order_relaxed);
}

TripwireScope::TripwireScope(bool on) : prev_(tripwires_enabled()) {
  set_tripwires(on);
}

TripwireScope::~TripwireScope() { set_tripwires(prev_); }

void set_step_index(i64 step) {
  step_state().store(step, std::memory_order_relaxed);
}

i64 step_index() { return step_state().load(std::memory_order_relaxed); }

i64 first_non_finite(const float* data, i64 n) {
  for (i64 i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return i;
  }
  return -1;
}

bool all_finite(const core::Tensor& t) {
  return first_non_finite(t.data(), t.numel()) < 0;
}

void assert_finite(const core::Tensor& t, const std::string& tensor_name,
                   const std::string& context) {
  const i64 idx = first_non_finite(t.data(), t.numel());
  if (idx < 0) return;
  std::ostringstream os;
  os << "non-finite tripwire: " << t[idx] << " at elem " << idx << " of "
     << tensor_name << " shape " << core::shape_to_string(t.shape())
     << " during " << context;
  if (step_index() >= 0) os << " (step " << step_index() << ")";
  LEGW_CHECK(idx < 0, os.str());
}

}  // namespace legw::check
