// Diagnostic-checking layer: NaN/Inf tripwires with precise blame.
//
// Two switches control the checks:
//
//  * Build-time: the LEGW_CHECKED CMake option defines LEGW_CHECKED_BUILD,
//    which turns on bounds-checked Tensor element access (core/tensor.hpp)
//    and enables the runtime tripwires by default. `kCheckedBuild` reflects
//    the flag so tests can assert that checks are compiled out of release
//    builds.
//
//  * Run-time: tripwires_enabled() gates the non-finite scans that fire
//    after every op forward (ag::make_op_node), after every node's backward
//    closure (ag::backward) and after every optimizer step
//    (optim::Optimizer::step). Off by default in normal builds (a single
//    predicted branch per *op*, never per element), on by default in
//    LEGW_CHECKED builds, and forceable either way via the LEGW_CHECK_FINITE
//    environment variable or set_tripwires(). The gradcheck harness enables
//    them for its scope so a non-finite value is blamed at the op that
//    produced it instead of surfacing as a bare finite-difference mismatch.
//
// A tripwire that fires aborts through the LEGW_CHECK machinery with the op
// name, the offending tensor, the element index and the current step index.
#pragma once

#include <string>

#include "core/tensor.hpp"

namespace legw::check {

#ifdef LEGW_CHECKED_BUILD
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

// True when the non-finite tripwires are active (see file comment).
bool tripwires_enabled();
void set_tripwires(bool on);

// RAII enable/disable of the tripwires; restores the previous state.
class TripwireScope {
 public:
  explicit TripwireScope(bool on);
  ~TripwireScope();
  TripwireScope(const TripwireScope&) = delete;
  TripwireScope& operator=(const TripwireScope&) = delete;

 private:
  bool prev_;
};

// Step-index blame: the train runners publish the current optimizer step so a
// tripwire can report *when* a value went non-finite, not just where. -1
// means "no step context" (e.g. standalone tests).
void set_step_index(i64 step);
i64 step_index();

// Index of the first NaN/Inf element, or -1 if all finite.
i64 first_non_finite(const float* data, i64 n);
bool all_finite(const core::Tensor& t);

// Aborts with full blame if `t` contains a NaN or Inf:
//   non-finite tripwire: <value> at elem <i> of <tensor_name> shape [..]
//   during <context> (step <n>)
// Unconditional: callers gate on tripwires_enabled(). In recoverable mode
// (below) the blame is recorded instead of raised and the call returns.
void assert_finite(const core::Tensor& t, const std::string& tensor_name,
                   const std::string& context);

// ---- recoverable mode -------------------------------------------------------
//
// By default a firing tripwire aborts through LEGW_CHECK: the value is
// corrupt and there is nothing to continue with. The stability sentinel
// (src/guard/) changes that calculus — it can roll the run back to a blessed
// checkpoint — so it needs a *report*, not an abort. RecoverableScope flips
// the tripwires into record-first-violation mode for its lifetime:
// assert_finite stores the blame message it would have raised (first one
// wins; later violations in the same step are downstream noise) and returns,
// and the sentinel consumes the report at the end of the step via
// take_tripwire_report(). Thread-safe: replica-backward worker threads may
// trip concurrently.

struct TripwireReport {
  bool fired = false;
  std::string message;  // the abort message that would have been raised
  i64 step = -1;        // step index at firing time (-1 = no step context)
};

bool tripwires_recoverable();
void set_tripwires_recoverable(bool on);

// Returns the pending report (fired == false when none) and clears it.
TripwireReport take_tripwire_report();

// RAII recoverable-mode guard; clears any stale pending report on entry and
// restores the previous mode on exit.
class RecoverableScope {
 public:
  explicit RecoverableScope(bool on = true);
  ~RecoverableScope();
  RecoverableScope(const RecoverableScope&) = delete;
  RecoverableScope& operator=(const RecoverableScope&) = delete;

 private:
  bool prev_;
};

}  // namespace legw::check
