// Diagnostic-checking layer: NaN/Inf tripwires with precise blame.
//
// Two switches control the checks:
//
//  * Build-time: the LEGW_CHECKED CMake option defines LEGW_CHECKED_BUILD,
//    which turns on bounds-checked Tensor element access (core/tensor.hpp)
//    and enables the runtime tripwires by default. `kCheckedBuild` reflects
//    the flag so tests can assert that checks are compiled out of release
//    builds.
//
//  * Run-time: tripwires_enabled() gates the non-finite scans that fire
//    after every op forward (ag::make_op_node), after every node's backward
//    closure (ag::backward) and after every optimizer step
//    (optim::Optimizer::step). Off by default in normal builds (a single
//    predicted branch per *op*, never per element), on by default in
//    LEGW_CHECKED builds, and forceable either way via the LEGW_CHECK_FINITE
//    environment variable or set_tripwires(). The gradcheck harness enables
//    them for its scope so a non-finite value is blamed at the op that
//    produced it instead of surfacing as a bare finite-difference mismatch.
//
// A tripwire that fires aborts through the LEGW_CHECK machinery with the op
// name, the offending tensor, the element index and the current step index.
#pragma once

#include <string>

#include "core/tensor.hpp"

namespace legw::check {

#ifdef LEGW_CHECKED_BUILD
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

// True when the non-finite tripwires are active (see file comment).
bool tripwires_enabled();
void set_tripwires(bool on);

// RAII enable/disable of the tripwires; restores the previous state.
class TripwireScope {
 public:
  explicit TripwireScope(bool on);
  ~TripwireScope();
  TripwireScope(const TripwireScope&) = delete;
  TripwireScope& operator=(const TripwireScope&) = delete;

 private:
  bool prev_;
};

// Step-index blame: the train runners publish the current optimizer step so a
// tripwire can report *when* a value went non-finite, not just where. -1
// means "no step context" (e.g. standalone tests).
void set_step_index(i64 step);
i64 step_index();

// Index of the first NaN/Inf element, or -1 if all finite.
i64 first_non_finite(const float* data, i64 n);
bool all_finite(const core::Tensor& t);

// Aborts with full blame if `t` contains a NaN or Inf:
//   non-finite tripwire: <value> at elem <i> of <tensor_name> shape [..]
//   during <context> (step <n>)
// Unconditional: callers gate on tripwires_enabled().
void assert_finite(const core::Tensor& t, const std::string& tensor_name,
                   const std::string& context);

}  // namespace legw::check
