#include "check/graph_lint.hpp"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace legw::check {

using ag::Node;

const char* graph_issue_kind_name(GraphIssueKind kind) {
  switch (kind) {
    case GraphIssueKind::kCycle:
      return "cycle";
    case GraphIssueKind::kGradNeverPopulated:
      return "grad-never-populated";
    case GraphIssueKind::kUnreachableParam:
      return "unreachable-param";
    case GraphIssueKind::kStaleCapture:
      return "stale-capture";
    case GraphIssueKind::kMissingBackwardFn:
      return "missing-backward-fn";
  }
  return "unknown";
}

std::string GraphLintReport::to_string() const {
  if (ok()) return "graph lint: ok (" + std::to_string(nodes_visited) + " nodes)";
  std::ostringstream os;
  os << "graph lint: " << issues.size() << " issue(s) in " << nodes_visited
     << " nodes";
  for (const GraphIssue& issue : issues) {
    os << "\n  [" << graph_issue_kind_name(issue.kind) << "] " << issue.detail;
  }
  return os.str();
}

namespace {

// Iterative three-colour DFS: white = unvisited, grey = on the current DFS
// path, black = done. A parent edge into a grey node closes a cycle.
enum class Colour { kGrey, kBlack };

struct Walk {
  std::unordered_map<Node*, Colour> colour;
  std::vector<Node*> order;  // every node reached, any order
  std::vector<GraphIssue> issues;
};

void walk_graph(Node* root, Walk& walk) {
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  walk.colour[root] = Colour::kGrey;
  walk.order.push_back(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      auto it = walk.colour.find(p);
      if (it == walk.colour.end()) {
        walk.colour[p] = Colour::kGrey;
        walk.order.push_back(p);
        stack.push_back({p, 0});
      } else if (it->second == Colour::kGrey) {
        walk.issues.push_back(
            {GraphIssueKind::kCycle,
             std::string("edge from op '") + f.node->op + "' back to op '" +
                 p->op + "' closes a cycle; backward() would drop its "
                 "gradient contributions"});
      }
    } else {
      walk.colour[f.node] = Colour::kBlack;
      stack.pop_back();
    }
  }
}

}  // namespace

GraphLintReport lint_graph(const ag::Variable& root,
                           const std::vector<ag::Variable>& params) {
  LEGW_CHECK(root.defined(), "lint_graph: undefined root Variable");
  GraphLintReport report;

  Walk walk;
  walk_graph(root.node().get(), walk);
  report.nodes_visited = static_cast<i64>(walk.order.size());
  report.issues = std::move(walk.issues);

  // Has backward() run on this graph? The root's gradient buffer is only
  // allocated by backward (or an explicit ensure_grad, which callers of a
  // validator can be assumed not to have done by accident).
  const bool backward_ran = !root.node()->grad.empty();

  for (Node* n : walk.order) {
    const bool interior = !n->parents.empty();
    if (interior && n->requires_grad && !n->backward_fn) {
      report.issues.push_back(
          {GraphIssueKind::kMissingBackwardFn,
           std::string("op '") + n->op +
               "' requires grad but has no backward closure; its parents "
               "can never receive gradient"});
    }
    if (backward_ran && n->requires_grad && n->grad.empty()) {
      report.issues.push_back(
          {GraphIssueKind::kGradNeverPopulated,
           std::string("op '") + n->op +
               "' requires grad but its gradient was never populated by "
               "backward()"});
    }
    for (std::size_t i = 0; i < n->parents.size(); ++i) {
      if (i >= n->parent_versions.size()) break;  // hand-built node
      const Node& p = *n->parents[i];
      if (p.value.version() != n->parent_versions[i]) {
        std::ostringstream os;
        os << "input " << i << " of op '" << n->op << "' (produced by '"
           << p.op << "') was mutated in place after graph capture (version "
           << n->parent_versions[i] << " -> " << p.value.version()
           << "); backward would use values the forward pass never saw";
        report.issues.push_back({GraphIssueKind::kStaleCapture, os.str()});
      }
    }
  }

  std::unordered_set<Node*> reachable(walk.order.begin(), walk.order.end());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ag::Variable& p = params[i];
    LEGW_CHECK(p.defined(), "lint_graph: undefined param Variable");
    if (p.node()->requires_grad && reachable.count(p.node().get()) == 0) {
      report.issues.push_back(
          {GraphIssueKind::kUnreachableParam,
           "param[" + std::to_string(i) + "] " +
               core::shape_to_string(p.shape()) +
               " is unreachable from the loss; it would never train"});
    }
  }
  return report;
}

}  // namespace legw::check
