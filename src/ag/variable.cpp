#include "ag/variable.hpp"

#include <unordered_set>

namespace legw::ag {

Variable make_op_node(Tensor value, std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  bool needs = false;
  n->parents.reserve(parents.size());
  for (const auto& p : parents) {
    LEGW_CHECK(p.defined(), "op parent is an undefined Variable");
    needs = needs || p.node()->requires_grad;
    n->parents.push_back(p.node());
  }
  n->requires_grad = needs;
  if (needs) n->backward_fn = std::move(backward_fn);
  return Variable(std::move(n));
}

namespace {

// Iterative post-order DFS. Recursion would overflow the stack on BPTT
// graphs with thousands of sequential nodes.
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void backward(const Variable& root, const Tensor* seed) {
  LEGW_CHECK(root.defined(), "backward on undefined Variable");
  if (!root.node()->requires_grad) return;

  Tensor& g = root.node()->ensure_grad();
  if (seed != nullptr) {
    LEGW_CHECK(seed->same_shape(root.value()), "backward seed shape mismatch");
    g.add_(*seed);
  } else {
    LEGW_CHECK(root.numel() == 1,
               "backward without seed requires a scalar root");
    g[0] += 1.0f;
  }

  std::vector<Node*> order;
  topo_sort(root.node(), order);
  // Post-order puts parents before children; reverse to propagate root-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) n->backward_fn(*n);
  }
}

}  // namespace legw::ag
