#include "ag/variable.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "check/check.hpp"

namespace legw::ag {

Variable make_op_node(const char* op, Tensor value,
                      std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->op = op;
  bool needs = false;
  n->parents.reserve(parents.size());
  n->parent_versions.reserve(parents.size());
  for (const auto& p : parents) {
    LEGW_CHECK(p.defined(), "op parent is an undefined Variable");
    needs = needs || p.node()->requires_grad;
    n->parent_versions.push_back(p.node()->value.version());
    n->parents.push_back(p.node());
  }
  n->requires_grad = needs;
  if (needs) n->backward_fn = std::move(backward_fn);
  if (check::tripwires_enabled()) {
    check::assert_finite(n->value, std::string(op) + ".out",
                         std::string("forward of ") + op);
  }
  return Variable(std::move(n));
}

Variable make_op_node(Tensor value, std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn) {
  return make_op_node("op", std::move(value), std::move(parents),
                      std::move(backward_fn));
}

namespace {

// Iterative post-order DFS. Recursion would overflow the stack on BPTT
// graphs with thousands of sequential nodes.
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
}

// Tripwire sweep after one node's backward closure ran: every parent that
// received gradient must still be finite, and the captured parent values
// must not have been mutated since the graph was built (a stale graph
// silently produces wrong gradients — abort with blame instead).
void check_backward_step(const Node& n) {
  for (std::size_t i = 0; i < n.parents.size(); ++i) {
    const Node& p = *n.parents[i];
    if (i < n.parent_versions.size() &&
        p.value.version() != n.parent_versions[i]) {
      LEGW_CHECK(false, std::string("stale graph: input ") +
                            std::to_string(i) + " of op '" + n.op +
                            "' (produced by '" + p.op +
                            "') was mutated in place after graph capture");
    }
    if (p.requires_grad && !p.grad.empty()) {
      check::assert_finite(p.grad, std::string(p.op) + ".grad",
                           std::string("backward of ") + n.op);
    }
  }
}

}  // namespace

namespace {

inline bool is_leaf(const Node& n) {
  return n.parents.empty() && !n.backward_fn;
}

}  // namespace

void backward(const Variable& root, const Tensor* seed) {
  backward(root, seed, BackwardHooks{});
}

std::vector<Node*> topological_order(const Variable& root) {
  LEGW_CHECK(root.defined(), "topological_order on undefined Variable");
  std::vector<Node*> order;
  topo_sort(root.node(), order);
  return order;
}

void backward(const Variable& root, const Tensor* seed,
              const BackwardHooks& hooks) {
  LEGW_CHECK(root.defined(), "backward on undefined Variable");
  if (!root.node()->requires_grad) return;

  Tensor& g = root.node()->ensure_grad();
  if (seed != nullptr) {
    LEGW_CHECK(seed->same_shape(root.value()), "backward seed shape mismatch");
    g.add_(*seed);
  } else {
    LEGW_CHECK(root.numel() == 1,
               "backward without seed requires a scalar root");
    g[0] += 1.0f;
  }

  // Snapshot once: the flag is stable for the duration of one backward pass
  // and the scan is O(edges * numel) when armed.
  const bool tripwires = check::tripwires_enabled();

  std::vector<Node*> order;
  topo_sort(root.node(), order);
  const std::size_t n_nodes = order.size();

  // A leaf's gradient is final once its last consumer (in execution order)
  // has run its closure. Precompute, per execution index, the leaves whose
  // last consumer sits there; iterate parents in declaration order on the
  // second pass so the firing order is deterministic.
  const bool leaf_hook = static_cast<bool>(hooks.on_leaf_grad_ready);
  std::vector<std::vector<Node*>> fire_after;
  if (leaf_hook) {
    fire_after.resize(n_nodes);
    std::unordered_map<Node*, std::size_t> last_consumer;
    for (std::size_t i = 0; i < n_nodes; ++i) {
      Node* n = order[n_nodes - 1 - i];  // execution order: reversed post-order
      if (!n->backward_fn) continue;
      for (const auto& p : n->parents) {
        if (p->requires_grad && is_leaf(*p)) last_consumer[p.get()] = i;
      }
    }
    for (std::size_t i = 0; i < n_nodes; ++i) {
      Node* n = order[n_nodes - 1 - i];
      if (!n->backward_fn) continue;
      for (const auto& p : n->parents) {
        auto it = last_consumer.find(p.get());
        if (it != last_consumer.end() && it->second == i) {
          fire_after[i].push_back(p.get());
          last_consumer.erase(it);  // fire once even when p repeats as parent
        }
      }
    }
  }

  // With a step arena bound, backward IS the lifetime oracle: execution runs
  // consumers before producers (reverse topological order), so once node n's
  // closure has run, n's value, gradient, and saved-for-backward captures
  // have had their last use and can be released immediately. That is what
  // lets the recorded plan reuse an activation's bytes for gradient buffers
  // later in the same step. Skipped on the heap path (no benefit) and for
  // the root (callers read loss.value() after backward) and leaves
  // (parameters persist).
  const bool release_after_use = mem::bound_step_arena() != nullptr;
  Node* const root_node = root.node().get();

  // Post-order puts parents before children; reverse to propagate root-first.
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Node* n = order[n_nodes - 1 - i];
    if (n->backward_fn) {
      n->backward_fn(*n);
      if (tripwires) check_backward_step(*n);
      if (release_after_use && n != root_node) {
        // Keep n->parents: the shared_ptr edges own upstream nodes whose
        // closures have not run yet (order[] holds raw pointers).
        n->backward_fn = nullptr;
        n->grad = Tensor();
        n->value = Tensor();
      }
    }
    if (leaf_hook && !fire_after[i].empty()) {
      for (Node* leaf : fire_after[i]) {
        leaf->ensure_grad();
        hooks.on_leaf_grad_ready(*leaf);
      }
    }
  }
  // A root that is itself a leaf has no consumers: its gradient is complete
  // as soon as the seed landed.
  if (leaf_hook && is_leaf(*root.node())) {
    hooks.on_leaf_grad_ready(*root.node());
  }
}

}  // namespace legw::ag
