#include "ag/variable.hpp"

#include <string>
#include <unordered_set>

#include "check/check.hpp"

namespace legw::ag {

Variable make_op_node(const char* op, Tensor value,
                      std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->op = op;
  bool needs = false;
  n->parents.reserve(parents.size());
  n->parent_versions.reserve(parents.size());
  for (const auto& p : parents) {
    LEGW_CHECK(p.defined(), "op parent is an undefined Variable");
    needs = needs || p.node()->requires_grad;
    n->parent_versions.push_back(p.node()->value.version());
    n->parents.push_back(p.node());
  }
  n->requires_grad = needs;
  if (needs) n->backward_fn = std::move(backward_fn);
  if (check::tripwires_enabled()) {
    check::assert_finite(n->value, std::string(op) + ".out",
                         std::string("forward of ") + op);
  }
  return Variable(std::move(n));
}

Variable make_op_node(Tensor value, std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn) {
  return make_op_node("op", std::move(value), std::move(parents),
                      std::move(backward_fn));
}

namespace {

// Iterative post-order DFS. Recursion would overflow the stack on BPTT
// graphs with thousands of sequential nodes.
void topo_sort(const std::shared_ptr<Node>& root,
               std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      Node* p = f.node->parents[f.next_parent++].get();
      if (p->requires_grad && visited.insert(p).second) {
        stack.push_back({p, 0});
      }
    } else {
      order.push_back(f.node);
      stack.pop_back();
    }
  }
}

// Tripwire sweep after one node's backward closure ran: every parent that
// received gradient must still be finite, and the captured parent values
// must not have been mutated since the graph was built (a stale graph
// silently produces wrong gradients — abort with blame instead).
void check_backward_step(const Node& n) {
  for (std::size_t i = 0; i < n.parents.size(); ++i) {
    const Node& p = *n.parents[i];
    if (i < n.parent_versions.size() &&
        p.value.version() != n.parent_versions[i]) {
      LEGW_CHECK(false, std::string("stale graph: input ") +
                            std::to_string(i) + " of op '" + n.op +
                            "' (produced by '" + p.op +
                            "') was mutated in place after graph capture");
    }
    if (p.requires_grad && !p.grad.empty()) {
      check::assert_finite(p.grad, std::string(p.op) + ".grad",
                           std::string("backward of ") + n.op);
    }
  }
}

}  // namespace

void backward(const Variable& root, const Tensor* seed) {
  LEGW_CHECK(root.defined(), "backward on undefined Variable");
  if (!root.node()->requires_grad) return;

  Tensor& g = root.node()->ensure_grad();
  if (seed != nullptr) {
    LEGW_CHECK(seed->same_shape(root.value()), "backward seed shape mismatch");
    g.add_(*seed);
  } else {
    LEGW_CHECK(root.numel() == 1,
               "backward without seed requires a scalar root");
    g[0] += 1.0f;
  }

  // Snapshot once: the flag is stable for the duration of one backward pass
  // and the scan is O(edges * numel) when armed.
  const bool tripwires = check::tripwires_enabled();

  std::vector<Node*> order;
  topo_sort(root.node(), order);
  // Post-order puts parents before children; reverse to propagate root-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn) {
      n->backward_fn(*n);
      if (tripwires) check_backward_step(*n);
    }
  }
}

}  // namespace legw::ag
