// Tape-derived buffer lifetimes: turn one captured autograd graph into the
// interval set a static memory planner packs.
//
// The tape already knows every tensor's last use: reverse-mode execution
// visits consumers before producers, so a node's value and gradient die the
// moment its own backward closure has run. This module walks the graph and
// lays those births and deaths on a single event clock:
//
//   events [0, n)      forward: node i's value is born at its post-order
//                      position i (parents are created before children).
//   events [n, 2n)     backward: execution index e runs node order[n-1-e];
//                      that node's value and grad die after event n + e.
//
// A node's grad is born when its first consumer (smallest execution index)
// scatters into it — or at the seed (event n) for the root. Leaves are
// excluded: parameter values and gradients persist across steps and are
// heap-bound by design (see Node::ensure_grad).
//
// This is the planner-facing oracle used by the randomized-tape property
// tests (no two live-range-intersecting tensors may share bytes) and by
// diagnostics that want to know a step's theoretical peak; the runtime
// arena derives the equivalent intervals online by recording its first step.
#pragma once

#include <vector>

#include "ag/variable.hpp"
#include "mem/plan.hpp"

namespace legw::ag {

struct TapeLifetimes {
  // One interval per interior tensor buffer (values first, then grads, each
  // in graph post-order). Sizes are payload bytes.
  std::vector<mem::Lifetime> lifetimes;
  i64 events = 0;       // total ticks on the event clock (2 * interior nodes)
  i64 leaf_bytes = 0;   // parameter value+grad bytes excluded from the plan
};

// Extracts lifetimes from the requires_grad subgraph reachable from `root`
// (typically the scalar loss, after the forward pass and before backward).
TapeLifetimes tape_lifetimes(const Variable& root);

}  // namespace legw::ag
