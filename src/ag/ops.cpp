#include "ag/ops.hpp"

#include <algorithm>
#include <cmath>

#include "check/contracts.hpp"
#include "core/kernels.hpp"

namespace legw::ag {

using legw::i32;
using legw::i64;

Variable add(const Variable& a, const Variable& b) {
  check::expect_same_shape(a.value(), b.value(), "add");
  Tensor out = a.value() + b.value();
  return make_op_node("add", std::move(out), {a, b}, [](Node& n) {
    for (int i = 0; i < 2; ++i) {
      if (n.parents[i]->requires_grad) n.parents[i]->ensure_grad().add_(n.grad);
    }
  });
}

Variable sub(const Variable& a, const Variable& b) {
  check::expect_same_shape(a.value(), b.value(), "sub");
  Tensor out = a.value() - b.value();
  return make_op_node("sub", std::move(out), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->ensure_grad().add_(n.grad);
    if (n.parents[1]->requires_grad)
      n.parents[1]->ensure_grad().add_(n.grad, -1.0f);
  });
}

Variable mul(const Variable& a, const Variable& b) {
  check::expect_same_shape(a.value(), b.value(), "mul");
  Tensor out = a.value() * b.value();
  return make_op_node("mul", std::move(out), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) {
      Tensor& ga = n.parents[0]->ensure_grad();
      const Tensor& bv = n.parents[1]->value;
      for (i64 i = 0; i < ga.numel(); ++i) ga[i] += n.grad[i] * bv[i];
    }
    if (n.parents[1]->requires_grad) {
      Tensor& gb = n.parents[1]->ensure_grad();
      const Tensor& av = n.parents[0]->value;
      for (i64 i = 0; i < gb.numel(); ++i) gb[i] += n.grad[i] * av[i];
    }
  });
}

Variable scale(const Variable& a, float s) {
  Tensor out = a.value() * s;
  return make_op_node("scale", std::move(out), {a}, [s](Node& n) {
    if (n.parents[0]->requires_grad)
      n.parents[0]->ensure_grad().add_(n.grad, s);
  });
}

Variable add_scalar(const Variable& a, float s) {
  Tensor out = a.value() + s;
  return make_op_node("add_scalar", std::move(out), {a}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->ensure_grad().add_(n.grad);
  });
}

Variable add_bias(const Variable& x, const Variable& bias) {
  LEGW_CHECK(x.value().dim() == 2 && bias.value().dim() == 1 &&
                 x.size(1) == bias.size(0),
             "add_bias: x must be [m,n], bias [n]");
  const i64 m = x.size(0);
  const i64 ncols = x.size(1);
  Tensor out = x.value();
  float* o = out.data();
  const float* bv = bias.value().data();
  for (i64 r = 0; r < m; ++r) {
    for (i64 c = 0; c < ncols; ++c) o[r * ncols + c] += bv[c];
  }
  return make_op_node("add_bias", std::move(out), {x, bias}, [m, ncols](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->ensure_grad().add_(n.grad);
    if (n.parents[1]->requires_grad) {
      Tensor& gb = n.parents[1]->ensure_grad();
      const float* g = n.grad.data();
      for (i64 r = 0; r < m; ++r)
        for (i64 c = 0; c < ncols; ++c) gb[c] += g[r * ncols + c];
    }
  });
}

Variable mul_colvec(const Variable& x, const Variable& col) {
  LEGW_CHECK(x.value().dim() == 2 && col.value().dim() == 2 &&
                 col.size(1) == 1 && col.size(0) == x.size(0),
             "mul_colvec: x [m,n], col [m,1]");
  const i64 m = x.size(0);
  const i64 ncols = x.size(1);
  Tensor out = x.value();
  float* o = out.data();
  const float* cv = col.value().data();
  for (i64 r = 0; r < m; ++r) {
    const float s = cv[r];
    for (i64 c = 0; c < ncols; ++c) o[r * ncols + c] *= s;
  }
  return make_op_node("mul_colvec", std::move(out), {x, col}, [m, ncols](Node& n) {
    const float* g = n.grad.data();
    if (n.parents[0]->requires_grad) {
      Tensor& gx = n.parents[0]->ensure_grad();
      const float* cv = n.parents[1]->value.data();
      for (i64 r = 0; r < m; ++r) {
        const float s = cv[r];
        for (i64 c = 0; c < ncols; ++c) gx[r * ncols + c] += s * g[r * ncols + c];
      }
    }
    if (n.parents[1]->requires_grad) {
      Tensor& gc = n.parents[1]->ensure_grad();
      const float* xv = n.parents[0]->value.data();
      for (i64 r = 0; r < m; ++r) {
        float acc = 0.0f;
        for (i64 c = 0; c < ncols; ++c) acc += xv[r * ncols + c] * g[r * ncols + c];
        gc[r] += acc;
      }
    }
  });
}

Variable matmul(const Variable& a, const Variable& b, bool trans_a,
                bool trans_b) {
  Tensor out = core::matmul(a.value(), b.value(), trans_a, trans_b);
  return make_op_node("matmul", 
      std::move(out), {a, b}, [trans_a, trans_b](Node& n) {
        const Tensor& av = n.parents[0]->value;
        const Tensor& bv = n.parents[1]->value;
        const Tensor& g = n.grad;
        // d(A op B)/dA and /dB for the four transpose configurations.
        if (n.parents[0]->requires_grad) {
          Tensor& ga = n.parents[0]->ensure_grad();
          Tensor da;
          if (!trans_a) {
            // dA = G * B^T (or G * B when B was transposed)
            da = core::matmul(g, bv, false, !trans_b);
          } else if (!trans_b) {
            // A^T used: dA = B * G^T
            da = core::matmul(bv, g, false, true);
          } else {
            // A^T and B^T: dA = B^T * G^T
            da = core::matmul(bv, g, true, true);
          }
          ga.add_(da);
        }
        if (n.parents[1]->requires_grad) {
          Tensor& gb = n.parents[1]->ensure_grad();
          Tensor db;
          if (!trans_b) {
            db = core::matmul(av, g, !trans_a, false);
          } else if (!trans_a) {
            // B^T used: dB = G^T * A
            db = core::matmul(g, av, true, false);
          } else {
            db = core::matmul(g, av, true, true);
          }
          gb.add_(db);
        }
      });
}

Variable sigmoid(const Variable& a) {
  Tensor out(a.value().shape());
  core::sigmoid_forward(a.value().data(), out.data(), out.numel());
  Tensor saved = out;
  return make_op_node("sigmoid", std::move(out), {a}, [saved](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    core::sigmoid_backward(saved.data(), n.grad.data(),
                           n.parents[0]->ensure_grad().data(), saved.numel());
  });
}

Variable tanh(const Variable& a) {
  Tensor out(a.value().shape());
  core::tanh_forward(a.value().data(), out.data(), out.numel());
  Tensor saved = out;
  return make_op_node("tanh", std::move(out), {a}, [saved](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    core::tanh_backward(saved.data(), n.grad.data(),
                        n.parents[0]->ensure_grad().data(), saved.numel());
  });
}

Variable relu(const Variable& a) {
  Tensor out(a.value().shape());
  core::relu_forward(a.value().data(), out.data(), out.numel());
  return make_op_node("relu", std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    core::relu_backward(n.parents[0]->value.data(), n.grad.data(),
                        n.parents[0]->ensure_grad().data(), n.grad.numel());
  });
}

Variable softmax_rows(const Variable& a) {
  check::expect_dim(a.value(), 2, "softmax_rows");
  const i64 rows = a.size(0);
  const i64 cols = a.size(1);
  Tensor out(a.value().shape());
  core::softmax_rows(a.value().data(), out.data(), rows, cols);
  Tensor saved = out;
  return make_op_node("softmax_rows", std::move(out), {a}, [saved, rows, cols](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gx = n.parents[0]->ensure_grad();
    const float* y = saved.data();
    const float* g = n.grad.data();
    // dX[r,c] = y[r,c] * (g[r,c] - sum_j g[r,j] y[r,j])
    for (i64 r = 0; r < rows; ++r) {
      double dot = 0.0;
      for (i64 c = 0; c < cols; ++c) dot += static_cast<double>(g[r * cols + c]) * y[r * cols + c];
      const float d = static_cast<float>(dot);
      for (i64 c = 0; c < cols; ++c)
        gx[r * cols + c] += y[r * cols + c] * (g[r * cols + c] - d);
    }
  });
}

Variable reshape(const Variable& a, Shape shape) {
  Tensor out = a.value().reshape(shape);
  Shape orig = a.value().shape();
  return make_op_node("reshape", std::move(out), {a}, [orig](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    n.parents[0]->ensure_grad().add_(n.grad.reshape(orig));
  });
}

Variable concat_cols(const std::vector<Variable>& parts) {
  LEGW_CHECK(!parts.empty(), "concat_cols: no inputs");
  const i64 rows = parts[0].size(0);
  i64 total_cols = 0;
  for (const auto& p : parts) {
    LEGW_CHECK(p.value().dim() == 2 && p.size(0) == rows,
               "concat_cols: all inputs must be [rows, *]");
    total_cols += p.size(1);
  }
  Tensor out(Shape{rows, total_cols});
  float* o = out.data();
  i64 col_off = 0;
  std::vector<i64> widths;
  widths.reserve(parts.size());
  for (const auto& p : parts) {
    const i64 w = p.size(1);
    widths.push_back(w);
    const float* src = p.value().data();
    for (i64 r = 0; r < rows; ++r) {
      for (i64 c = 0; c < w; ++c) o[r * total_cols + col_off + c] = src[r * w + c];
    }
    col_off += w;
  }
  return make_op_node("concat_cols", std::move(out), parts,
                      [rows, total_cols, widths](Node& n) {
                        const float* g = n.grad.data();
                        i64 off = 0;
                        for (std::size_t i = 0; i < n.parents.size(); ++i) {
                          const i64 w = widths[i];
                          if (n.parents[i]->requires_grad) {
                            Tensor& gp = n.parents[i]->ensure_grad();
                            for (i64 r = 0; r < rows; ++r)
                              for (i64 c = 0; c < w; ++c)
                                gp[r * w + c] += g[r * total_cols + off + c];
                          }
                          off += w;
                        }
                      });
}

Variable slice_cols(const Variable& a, i64 begin, i64 end) {
  check::expect_dim(a.value(), 2, "slice_cols");
  const i64 rows = a.size(0);
  const i64 cols = a.size(1);
  LEGW_CHECK(0 <= begin && begin < end && end <= cols,
             "slice_cols: bad column range");
  const i64 w = end - begin;
  Tensor out(Shape{rows, w});
  const float* src = a.value().data();
  float* o = out.data();
  for (i64 r = 0; r < rows; ++r)
    for (i64 c = 0; c < w; ++c) o[r * w + c] = src[r * cols + begin + c];
  return make_op_node("slice_cols", std::move(out), {a}, [rows, cols, begin, w](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gp = n.parents[0]->ensure_grad();
    const float* g = n.grad.data();
    for (i64 r = 0; r < rows; ++r)
      for (i64 c = 0; c < w; ++c) gp[r * cols + begin + c] += g[r * w + c];
  });
}

Variable concat_rows(const std::vector<Variable>& parts) {
  LEGW_CHECK(!parts.empty(), "concat_rows: no inputs");
  const i64 cols = parts[0].size(1);
  i64 total_rows = 0;
  for (const auto& p : parts) {
    LEGW_CHECK(p.value().dim() == 2 && p.size(1) == cols,
               "concat_rows: all inputs must be [*, cols]");
    total_rows += p.size(0);
  }
  Tensor out(Shape{total_rows, cols});
  float* o = out.data();
  i64 row_off = 0;
  std::vector<i64> heights;
  heights.reserve(parts.size());
  for (const auto& p : parts) {
    const i64 h = p.size(0);
    heights.push_back(h);
    const float* src = p.value().data();
    std::copy(src, src + h * cols, o + row_off * cols);
    row_off += h;
  }
  return make_op_node("concat_rows", std::move(out), parts, [cols, heights](Node& n) {
    const float* g = n.grad.data();
    i64 off = 0;
    for (std::size_t i = 0; i < n.parents.size(); ++i) {
      const i64 h = heights[i];
      if (n.parents[i]->requires_grad) {
        Tensor& gp = n.parents[i]->ensure_grad();
        for (i64 e = 0; e < h * cols; ++e) gp[e] += g[off * cols + e];
      }
      off += h;
    }
  });
}

Variable sum_all(const Variable& a) {
  Tensor out(Shape{1});
  out[0] = a.value().sum();
  return make_op_node("sum_all", std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gp = n.parents[0]->ensure_grad();
    const float g = n.grad[0];
    for (i64 i = 0; i < gp.numel(); ++i) gp[i] += g;
  });
}

Variable mean_all(const Variable& a) {
  const i64 count = a.numel();
  check::expect_nonempty(a.value(), "mean_all");
  Tensor out(Shape{1});
  out[0] = a.value().mean();
  return make_op_node("mean_all", std::move(out), {a}, [count](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gp = n.parents[0]->ensure_grad();
    const float g = n.grad[0] / static_cast<float>(count);
    for (i64 i = 0; i < gp.numel(); ++i) gp[i] += g;
  });
}

Variable sum_rows(const Variable& a) {
  check::expect_dim(a.value(), 2, "sum_rows");
  const i64 rows = a.size(0);
  const i64 cols = a.size(1);
  Tensor out(Shape{cols});
  const float* src = a.value().data();
  for (i64 r = 0; r < rows; ++r)
    for (i64 c = 0; c < cols; ++c) out[c] += src[r * cols + c];
  return make_op_node("sum_rows", std::move(out), {a}, [rows, cols](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gp = n.parents[0]->ensure_grad();
    const float* g = n.grad.data();
    for (i64 r = 0; r < rows; ++r)
      for (i64 c = 0; c < cols; ++c) gp[r * cols + c] += g[c];
  });
}

Variable embedding(const Variable& weight, const std::vector<i32>& indices) {
  check::expect_dim(weight.value(), 2, "embedding");
  const i64 vocab = weight.size(0);
  const i64 dim = weight.size(1);
  const i64 n = static_cast<i64>(indices.size());
  Tensor out(Shape{n, dim});
  const float* w = weight.value().data();
  float* o = out.data();
  for (i64 i = 0; i < n; ++i) {
    const i32 idx = indices[static_cast<std::size_t>(i)];
    LEGW_CHECK(idx >= 0 && idx < vocab, "embedding index out of range");
    std::copy(w + idx * dim, w + (idx + 1) * dim, o + i * dim);
  }
  return make_op_node("embedding", std::move(out), {weight}, [indices, dim](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gw = n.parents[0]->ensure_grad();
    const float* g = n.grad.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
      const i64 row = indices[i];
      for (i64 c = 0; c < dim; ++c)
        gw[row * dim + c] += g[static_cast<i64>(i) * dim + c];
    }
  });
}

Variable dropout(const Variable& a, float p, core::Rng& rng, bool training) {
  LEGW_CHECK(p >= 0.0f && p < 1.0f, "dropout rate must be in [0,1)");
  if (!training || p == 0.0f) return a;
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  Tensor mask(a.value().shape());
  for (i64 i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.uniform() < keep ? inv_keep : 0.0f;
  }
  Tensor out = a.value() * mask;
  return make_op_node("dropout", std::move(out), {a}, [mask](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gp = n.parents[0]->ensure_grad();
    for (i64 i = 0; i < gp.numel(); ++i) gp[i] += n.grad[i] * mask[i];
  });
}

Variable exp(const Variable& a) {
  Tensor out(a.value().shape());
  for (i64 i = 0; i < out.numel(); ++i) out[i] = std::exp(a.value()[i]);
  Tensor saved = out;
  return make_op_node("exp", std::move(out), {a}, [saved](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& g = n.parents[0]->ensure_grad();
    for (i64 i = 0; i < g.numel(); ++i) g[i] += n.grad[i] * saved[i];
  });
}

Variable log(const Variable& a) {
  Tensor out(a.value().shape());
  for (i64 i = 0; i < out.numel(); ++i) {
    LEGW_DCHECK(a.value()[i] > 0.0f, "log: input must be positive");
    out[i] = std::log(a.value()[i]);
  }
  return make_op_node("log", std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& g = n.parents[0]->ensure_grad();
    const Tensor& x = n.parents[0]->value;
    for (i64 i = 0; i < g.numel(); ++i) g[i] += n.grad[i] / x[i];
  });
}

Variable sqrt(const Variable& a, float eps) {
  Tensor out(a.value().shape());
  for (i64 i = 0; i < out.numel(); ++i) {
    LEGW_DCHECK(a.value()[i] >= 0.0f, "sqrt: input must be non-negative");
    out[i] = std::sqrt(a.value()[i]);
  }
  Tensor saved = out;
  return make_op_node("sqrt", std::move(out), {a}, [saved, eps](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& g = n.parents[0]->ensure_grad();
    for (i64 i = 0; i < g.numel(); ++i) {
      g[i] += n.grad[i] * 0.5f / std::max(saved[i], eps);
    }
  });
}

Variable abs(const Variable& a) {
  Tensor out(a.value().shape());
  for (i64 i = 0; i < out.numel(); ++i) out[i] = std::fabs(a.value()[i]);
  return make_op_node("abs", std::move(out), {a}, [](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& g = n.parents[0]->ensure_grad();
    const Tensor& x = n.parents[0]->value;
    for (i64 i = 0; i < g.numel(); ++i) {
      g[i] += x[i] > 0.0f ? n.grad[i] : (x[i] < 0.0f ? -n.grad[i] : 0.0f);
    }
  });
}

Variable clamp(const Variable& a, float lo, float hi) {
  LEGW_CHECK(lo <= hi, "clamp: lo must be <= hi");
  Tensor out(a.value().shape());
  for (i64 i = 0; i < out.numel(); ++i) {
    out[i] = std::min(hi, std::max(lo, a.value()[i]));
  }
  return make_op_node("clamp", std::move(out), {a}, [lo, hi](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& g = n.parents[0]->ensure_grad();
    const Tensor& x = n.parents[0]->value;
    for (i64 i = 0; i < g.numel(); ++i) {
      if (x[i] > lo && x[i] < hi) g[i] += n.grad[i];
    }
  });
}

Variable normalize_vec(const Variable& v, float eps) {
  check::expect_dim(v.value(), 1, "normalize_vec");
  const i64 n = v.numel();
  const float norm = std::max(v.value().l2_norm(), eps);
  Tensor out = v.value() * (1.0f / norm);
  Tensor unit = out;
  return make_op_node("normalize_vec", std::move(out), {v}, [unit, norm, n](Node& ng) {
    if (!ng.parents[0]->requires_grad) return;
    // d(v/||v||)/dv = (I - u u^T) / ||v||  with u = v/||v||.
    Tensor& gv = ng.parents[0]->ensure_grad();
    const float* g = ng.grad.data();
    const float* u = unit.data();
    double dot = 0.0;
    for (i64 i = 0; i < n; ++i) dot += static_cast<double>(g[i]) * u[i];
    const float d = static_cast<float>(dot);
    const float inv = 1.0f / norm;
    for (i64 i = 0; i < n; ++i) gv[i] += inv * (g[i] - d * u[i]);
  });
}

Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<i32>& targets,
                               i32 ignore_index, i64* counted_out) {
  check::expect_dim(logits.value(), 2, "softmax_cross_entropy");
  const i64 rows = logits.size(0);
  const i64 cols = logits.size(1);
  LEGW_CHECK(static_cast<i64>(targets.size()) == rows,
             "cross-entropy: one target per logit row required");
  Tensor probs(Shape{rows, cols});
  i64 counted = 0;
  const double total = core::softmax_cross_entropy_forward(
      logits.value().data(), targets.data(), rows, cols, ignore_index,
      probs.data(), &counted);
  if (counted_out != nullptr) *counted_out = counted;
  Tensor out(Shape{1});
  out[0] = counted > 0 ? static_cast<float>(total / counted) : 0.0f;
  return make_op_node("softmax_cross_entropy", 
      std::move(out), {logits},
      [probs, targets, ignore_index, rows, cols, counted](Node& n) {
        if (!n.parents[0]->requires_grad || counted == 0) return;
        const float scale = n.grad[0] / static_cast<float>(counted);
        core::softmax_cross_entropy_backward(
            probs.data(), targets.data(), rows, cols, ignore_index, scale,
            n.parents[0]->ensure_grad().data());
      });
}

}  // namespace legw::ag
