// Fused LSTM cell with hand-derived backward.
//
// The cell is the hot loop of every model in this repo, so it is implemented
// as a single graph node: one GEMM for all four gates, and a single-pass
// elementwise block (bias, activations, cell update) provided by
// core::lstm_cell_forward / core::lstm_cell_backward. The gradient is
// cross-checked in tests against both finite differences and an op-by-op
// composition of the identical math.
#include <cmath>

#include "ag/ops.hpp"
#include "core/kernels.hpp"

namespace legw::ag {

using legw::i64;

Variable lstm_cell(const Variable& x, const Variable& h, const Variable& c,
                   const Variable& w, const Variable& b) {
  LEGW_CHECK(x.value().dim() == 2 && h.value().dim() == 2 && c.value().dim() == 2,
             "lstm_cell: x, h, c must be 2-D");
  const i64 batch = x.size(0);
  const i64 in_dim = x.size(1);
  const i64 hidden = h.size(1);
  LEGW_CHECK(h.size(0) == batch && c.size(0) == batch && c.size(1) == hidden,
             "lstm_cell: batch/hidden mismatch between x, h, c");
  LEGW_CHECK(w.value().dim() == 2 && w.size(0) == in_dim + hidden &&
                 w.size(1) == 4 * hidden,
             "lstm_cell: w must be [in+hidden, 4*hidden]");
  LEGW_CHECK(b.value().dim() == 1 && b.size(0) == 4 * hidden,
             "lstm_cell: b must be [4*hidden]");

  // xh = [x, h] : [B, I+H]
  Tensor xh(core::Shape{batch, in_dim + hidden});
  {
    const float* xp = x.value().data();
    const float* hp = h.value().data();
    float* d = xh.data();
    for (i64 r = 0; r < batch; ++r) {
      std::copy(xp + r * in_dim, xp + (r + 1) * in_dim, d + r * (in_dim + hidden));
      std::copy(hp + r * hidden, hp + (r + 1) * hidden,
                d + r * (in_dim + hidden) + in_dim);
    }
  }

  // Pre-activation gates [B, 4H] = xh * W; the fused kernel folds in the
  // bias, the activations (gate order i, f, g, o) and the cell update in a
  // single pass, leaving the post-activation gates in `acts` for backward.
  Tensor acts = core::matmul(xh, w.value());
  // out: [B, 2H] — h' in columns [0,H), c' in [H,2H).
  Tensor out(core::Shape{batch, 2 * hidden});
  Tensor tanh_c_new(core::Shape{batch, hidden});
  core::lstm_cell_forward(batch, hidden, b.value().data(), acts.data(),
                          c.value().data(), out.data(), tanh_c_new.data());

  return make_op_node("lstm_cell", 
      std::move(out), {x, h, c, w, b},
      [xh, acts, tanh_c_new, batch, in_dim, hidden](Node& n) {
        auto& px = *n.parents[0];
        auto& ph = *n.parents[1];
        auto& pc = *n.parents[2];
        auto& pw = *n.parents[3];
        auto& pb = *n.parents[4];

        const float* g = n.grad.data();          // [B, 2H]
        const float* a = acts.data();            // [B, 4H]
        const float* tc = tanh_c_new.data();     // [B, H]
        const float* cp = pc.value.data();       // previous cell state

        // dz: gradient w.r.t. pre-activation gates, [B, 4H].
        Tensor dz(core::Shape{batch, 4 * hidden});
        Tensor dc_prev(core::Shape{batch, hidden});
        float* dzp = dz.data();
        core::lstm_cell_backward(batch, hidden, a, tc, cp, g, dzp,
                                 dc_prev.data());

        if (pc.requires_grad) pc.ensure_grad().add_(dc_prev);
        if (pb.requires_grad) {
          Tensor& gb = pb.ensure_grad();
          for (i64 r = 0; r < batch; ++r)
            for (i64 col = 0; col < 4 * hidden; ++col)
              gb[col] += dzp[r * 4 * hidden + col];
        }
        if (pw.requires_grad) {
          // dW += xh^T * dz
          Tensor& gw = pw.ensure_grad();
          core::gemm(true, false, in_dim + hidden, 4 * hidden, batch, 1.0f,
                     xh.data(), in_dim + hidden, dz.data(), 4 * hidden, 1.0f,
                     gw.data(), 4 * hidden);
        }
        if (px.requires_grad || ph.requires_grad) {
          // dxh = dz * W^T : [B, I+H]
          Tensor dxh = core::matmul(dz, pw.value, false, true);
          const float* dxhp = dxh.data();
          if (px.requires_grad) {
            Tensor& gx = px.ensure_grad();
            for (i64 r = 0; r < batch; ++r)
              for (i64 j = 0; j < in_dim; ++j)
                gx[r * in_dim + j] += dxhp[r * (in_dim + hidden) + j];
          }
          if (ph.requires_grad) {
            Tensor& gh = ph.ensure_grad();
            for (i64 r = 0; r < batch; ++r)
              for (i64 j = 0; j < hidden; ++j)
                gh[r * hidden + j] += dxhp[r * (in_dim + hidden) + in_dim + j];
          }
        }
      });
}

}  // namespace legw::ag
