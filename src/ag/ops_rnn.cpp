// Fused LSTM cell with hand-derived backward.
//
// The cell is the hot loop of every model in this repo, so it is implemented
// as a single graph node: one GEMM for all four gates, fused activations, and
// a backward pass that re-uses the saved gate activations. The gradient is
// cross-checked in tests against both finite differences and an op-by-op
// composition of the identical math.
#include <cmath>

#include "ag/ops.hpp"

namespace legw::ag {

using legw::i64;

Variable lstm_cell(const Variable& x, const Variable& h, const Variable& c,
                   const Variable& w, const Variable& b) {
  LEGW_CHECK(x.value().dim() == 2 && h.value().dim() == 2 && c.value().dim() == 2,
             "lstm_cell: x, h, c must be 2-D");
  const i64 batch = x.size(0);
  const i64 in_dim = x.size(1);
  const i64 hidden = h.size(1);
  LEGW_CHECK(h.size(0) == batch && c.size(0) == batch && c.size(1) == hidden,
             "lstm_cell: batch/hidden mismatch between x, h, c");
  LEGW_CHECK(w.value().dim() == 2 && w.size(0) == in_dim + hidden &&
                 w.size(1) == 4 * hidden,
             "lstm_cell: w must be [in+hidden, 4*hidden]");
  LEGW_CHECK(b.value().dim() == 1 && b.size(0) == 4 * hidden,
             "lstm_cell: b must be [4*hidden]");

  // xh = [x, h] : [B, I+H]
  Tensor xh(core::Shape{batch, in_dim + hidden});
  {
    const float* xp = x.value().data();
    const float* hp = h.value().data();
    float* d = xh.data();
    for (i64 r = 0; r < batch; ++r) {
      std::copy(xp + r * in_dim, xp + (r + 1) * in_dim, d + r * (in_dim + hidden));
      std::copy(hp + r * hidden, hp + (r + 1) * hidden,
                d + r * (in_dim + hidden) + in_dim);
    }
  }

  // gates (pre-activation): [B, 4H] = xh * W + b
  Tensor gates = core::matmul(xh, w.value());
  {
    float* g = gates.data();
    const float* bp = b.value().data();
    for (i64 r = 0; r < batch; ++r)
      for (i64 col = 0; col < 4 * hidden; ++col) g[r * 4 * hidden + col] += bp[col];
  }

  // Activations in place on the gate buffer: gate order (i, f, g, o).
  Tensor acts = std::move(gates);  // post-activation values
  {
    float* a = acts.data();
    for (i64 r = 0; r < batch; ++r) {
      float* row = a + r * 4 * hidden;
      for (i64 j = 0; j < hidden; ++j)
        row[j] = 1.0f / (1.0f + std::exp(-row[j]));  // i
      for (i64 j = hidden; j < 2 * hidden; ++j)
        row[j] = 1.0f / (1.0f + std::exp(-row[j]));  // f
      for (i64 j = 2 * hidden; j < 3 * hidden; ++j)
        row[j] = std::tanh(row[j]);                  // g
      for (i64 j = 3 * hidden; j < 4 * hidden; ++j)
        row[j] = 1.0f / (1.0f + std::exp(-row[j]));  // o
    }
  }

  // out: [B, 2H] — h' in columns [0,H), c' in [H,2H).
  Tensor out(core::Shape{batch, 2 * hidden});
  Tensor tanh_c_new(core::Shape{batch, hidden});
  {
    const float* a = acts.data();
    const float* cp = c.value().data();
    float* o = out.data();
    float* tc = tanh_c_new.data();
    for (i64 r = 0; r < batch; ++r) {
      const float* ig = a + r * 4 * hidden;
      const float* fg = ig + hidden;
      const float* gg = ig + 2 * hidden;
      const float* og = ig + 3 * hidden;
      for (i64 j = 0; j < hidden; ++j) {
        const float c_new = fg[j] * cp[r * hidden + j] + ig[j] * gg[j];
        const float t = std::tanh(c_new);
        tc[r * hidden + j] = t;
        o[r * 2 * hidden + j] = og[j] * t;          // h'
        o[r * 2 * hidden + hidden + j] = c_new;      // c'
      }
    }
  }

  return make_op_node(
      std::move(out), {x, h, c, w, b},
      [xh, acts, tanh_c_new, batch, in_dim, hidden](Node& n) {
        auto& px = *n.parents[0];
        auto& ph = *n.parents[1];
        auto& pc = *n.parents[2];
        auto& pw = *n.parents[3];
        auto& pb = *n.parents[4];

        const float* g = n.grad.data();          // [B, 2H]
        const float* a = acts.data();            // [B, 4H]
        const float* tc = tanh_c_new.data();     // [B, H]
        const float* cp = pc.value.data();       // previous cell state

        // dz: gradient w.r.t. pre-activation gates, [B, 4H].
        Tensor dz(core::Shape{batch, 4 * hidden});
        Tensor dc_prev(core::Shape{batch, hidden});
        float* dzp = dz.data();
        float* dcp = dc_prev.data();
        for (i64 r = 0; r < batch; ++r) {
          const float* ig = a + r * 4 * hidden;
          const float* fg = ig + hidden;
          const float* gg = ig + 2 * hidden;
          const float* og = ig + 3 * hidden;
          const float* dh = g + r * 2 * hidden;
          const float* dc_up = dh + hidden;
          float* dzr = dzp + r * 4 * hidden;
          for (i64 j = 0; j < hidden; ++j) {
            const float t = tc[r * hidden + j];
            // Total gradient into c_new: direct upstream plus through h'.
            const float dct = dc_up[j] + dh[j] * og[j] * (1.0f - t * t);
            const float do_ = dh[j] * t;
            const float di = dct * gg[j];
            const float df = dct * cp[r * hidden + j];
            const float dg = dct * ig[j];
            dzr[j] = di * ig[j] * (1.0f - ig[j]);
            dzr[hidden + j] = df * fg[j] * (1.0f - fg[j]);
            dzr[2 * hidden + j] = dg * (1.0f - gg[j] * gg[j]);
            dzr[3 * hidden + j] = do_ * og[j] * (1.0f - og[j]);
            dcp[r * hidden + j] = dct * fg[j];
          }
        }

        if (pc.requires_grad) pc.ensure_grad().add_(dc_prev);
        if (pb.requires_grad) {
          Tensor& gb = pb.ensure_grad();
          for (i64 r = 0; r < batch; ++r)
            for (i64 col = 0; col < 4 * hidden; ++col)
              gb[col] += dzp[r * 4 * hidden + col];
        }
        if (pw.requires_grad) {
          // dW += xh^T * dz
          Tensor& gw = pw.ensure_grad();
          core::gemm(true, false, in_dim + hidden, 4 * hidden, batch, 1.0f,
                     xh.data(), in_dim + hidden, dz.data(), 4 * hidden, 1.0f,
                     gw.data(), 4 * hidden);
        }
        if (px.requires_grad || ph.requires_grad) {
          // dxh = dz * W^T : [B, I+H]
          Tensor dxh = core::matmul(dz, pw.value, false, true);
          const float* dxhp = dxh.data();
          if (px.requires_grad) {
            Tensor& gx = px.ensure_grad();
            for (i64 r = 0; r < batch; ++r)
              for (i64 j = 0; j < in_dim; ++j)
                gx[r * in_dim + j] += dxhp[r * (in_dim + hidden) + j];
          }
          if (ph.requires_grad) {
            Tensor& gh = ph.ensure_grad();
            for (i64 r = 0; r < batch; ++r)
              for (i64 j = 0; j < hidden; ++j)
                gh[r * hidden + j] += dxhp[r * (in_dim + hidden) + in_dim + j];
          }
        }
      });
}

}  // namespace legw::ag
