#include "ag/lifetimes.hpp"

#include <algorithm>
#include <unordered_map>

namespace legw::ag {

TapeLifetimes tape_lifetimes(const Variable& root) {
  TapeLifetimes out;
  if (!root.defined() || !root.node()->requires_grad) return out;
  const std::vector<Node*> order = topological_order(root);
  const i64 n = static_cast<i64>(order.size());
  out.events = 2 * n;

  // Execution index: backward runs order[n-1-e] at tick e.
  std::unordered_map<Node*, i64> exec;
  exec.reserve(order.size());
  for (i64 e = 0; e < n; ++e) {
    exec[order[static_cast<std::size_t>(n - 1 - e)]] = e;
  }

  // A node's gradient buffer materialises when its earliest-executing
  // consumer scatters into it (the root's at the seed, tick 0 of backward).
  std::unordered_map<Node*, i64> first_consumer_exec;
  for (Node* m : order) {
    if (m->parents.empty()) continue;
    const i64 e = exec.at(m);
    for (const auto& p : m->parents) {
      if (!p->requires_grad) continue;
      auto [it, inserted] = first_consumer_exec.emplace(p.get(), e);
      if (!inserted) it->second = std::min(it->second, e);
    }
  }

  constexpr i64 kFloatBytes = static_cast<i64>(sizeof(float));
  Node* const root_node = root.node().get();
  for (i64 i = 0; i < n; ++i) {
    Node* node = order[static_cast<std::size_t>(i)];
    const i64 bytes = node->value.numel() * kFloatBytes;
    if (node->parents.empty()) {
      // Leaf: value and (accumulating) grad persist across steps.
      out.leaf_bytes += 2 * bytes;
      continue;
    }
    if (bytes == 0) continue;
    const i64 e = exec.at(node);
    // Value: born when the forward created it (post-order position), dead
    // once its own closure ran — events are half-open, so death lands one
    // past the closure's tick.
    out.lifetimes.push_back(mem::Lifetime{bytes, i, n + e + 1});
    // Grad: born at the first consumer's tick (the seed for the root), dead
    // with the value.
    const auto it = first_consumer_exec.find(node);
    const i64 grad_birth = node == root_node
                               ? n
                               : n + (it != first_consumer_exec.end()
                                          ? it->second
                                          : e);
    out.lifetimes.push_back(mem::Lifetime{bytes, grad_birth, n + e + 1});
  }
  return out;
}

}  // namespace legw::ag
