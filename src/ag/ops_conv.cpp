// Convolution, batch-norm and pooling ops for the residual CNN (ImageNet /
// ResNet-50 stand-in). conv2d uses im2col + GEMM; the column matrix is
// recomputed in the backward pass instead of saved, trading FLOPs for memory
// so deep unrolled graphs stay small.
#include <cmath>

#include "ag/ops.hpp"
#include "core/thread_pool.hpp"

namespace legw::ag {

using legw::i64;

namespace {

// Scatter x[b] into columns: col is [C*kh*kw, Ho*Wo].
void im2col(const float* x, i64 C, i64 H, i64 W, i64 kh, i64 kw, i64 stride,
            i64 pad, i64 Ho, i64 Wo, float* col) {
  for (i64 c = 0; c < C; ++c) {
    for (i64 ki = 0; ki < kh; ++ki) {
      for (i64 kj = 0; kj < kw; ++kj) {
        float* dst = col + ((c * kh + ki) * kw + kj) * Ho * Wo;
        for (i64 oi = 0; oi < Ho; ++oi) {
          const i64 ii = oi * stride + ki - pad;
          for (i64 oj = 0; oj < Wo; ++oj) {
            const i64 jj = oj * stride + kj - pad;
            dst[oi * Wo + oj] = (ii >= 0 && ii < H && jj >= 0 && jj < W)
                                    ? x[(c * H + ii) * W + jj]
                                    : 0.0f;
          }
        }
      }
    }
  }
}

// Accumulate columns back into the image: inverse scatter of im2col.
void col2im(const float* col, i64 C, i64 H, i64 W, i64 kh, i64 kw, i64 stride,
            i64 pad, i64 Ho, i64 Wo, float* x) {
  for (i64 c = 0; c < C; ++c) {
    for (i64 ki = 0; ki < kh; ++ki) {
      for (i64 kj = 0; kj < kw; ++kj) {
        const float* src = col + ((c * kh + ki) * kw + kj) * Ho * Wo;
        for (i64 oi = 0; oi < Ho; ++oi) {
          const i64 ii = oi * stride + ki - pad;
          if (ii < 0 || ii >= H) continue;
          for (i64 oj = 0; oj < Wo; ++oj) {
            const i64 jj = oj * stride + kj - pad;
            if (jj < 0 || jj >= W) continue;
            x[(c * H + ii) * W + jj] += src[oi * Wo + oj];
          }
        }
      }
    }
  }
}

}  // namespace

Variable conv2d(const Variable& x, const Variable& w, const Variable& bias,
                i64 stride, i64 pad) {
  LEGW_CHECK(x.value().dim() == 4, "conv2d: x must be [B,C,H,W]");
  LEGW_CHECK(w.value().dim() == 4, "conv2d: w must be [Cout,C,kh,kw]");
  const i64 B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const i64 Cout = w.size(0), kh = w.size(2), kw = w.size(3);
  LEGW_CHECK(w.size(1) == C, "conv2d: channel mismatch");
  LEGW_CHECK(stride >= 1 && pad >= 0, "conv2d: bad stride/pad");
  const i64 Ho = (H + 2 * pad - kh) / stride + 1;
  const i64 Wo = (W + 2 * pad - kw) / stride + 1;
  LEGW_CHECK(Ho >= 1 && Wo >= 1, "conv2d: output would be empty");
  const bool has_bias = bias.defined();
  if (has_bias) {
    LEGW_CHECK(bias.value().dim() == 1 && bias.size(0) == Cout,
               "conv2d: bias must be [Cout]");
  }

  Tensor out(core::Shape{B, Cout, Ho, Wo});
  const i64 col_rows = C * kh * kw;
  const i64 col_cols = Ho * Wo;
  const float* xp = x.value().data();
  const float* wp = w.value().data();
  float* op = out.data();

  core::parallel_for(0, B, 1, [&](i64 b0, i64 b1) {
    Tensor col(core::Shape{col_rows, col_cols});
    for (i64 b = b0; b < b1; ++b) {
      im2col(xp + b * C * H * W, C, H, W, kh, kw, stride, pad, Ho, Wo,
             col.data());
      // out[b] = Wmat [Cout, col_rows] * col [col_rows, col_cols]
      core::gemm(false, false, Cout, col_cols, col_rows, 1.0f, wp, col_rows,
                 col.data(), col_cols, 0.0f, op + b * Cout * col_cols,
                 col_cols);
      if (has_bias) {
        const float* bp = bias.value().data();
        float* ob = op + b * Cout * col_cols;
        for (i64 co = 0; co < Cout; ++co)
          for (i64 s = 0; s < col_cols; ++s) ob[co * col_cols + s] += bp[co];
      }
    }
  });

  std::vector<Variable> parents = {x, w};
  if (has_bias) parents.push_back(bias);
  return make_op_node("conv2d", 
      std::move(out), std::move(parents),
      [B, C, H, W, Cout, kh, kw, stride, pad, Ho, Wo, has_bias](Node& n) {
        auto& px = *n.parents[0];
        auto& pw = *n.parents[1];
        const i64 col_rows = C * kh * kw;
        const i64 col_cols = Ho * Wo;
        const float* g = n.grad.data();

        if (has_bias && n.parents[2]->requires_grad) {
          Tensor& gb = n.parents[2]->ensure_grad();
          for (i64 b = 0; b < B; ++b)
            for (i64 co = 0; co < Cout; ++co) {
              double acc = 0.0;
              const float* gr = g + (b * Cout + co) * col_cols;
              for (i64 s = 0; s < col_cols; ++s) acc += gr[s];
              gb[co] += static_cast<float>(acc);
            }
        }

        // dW and dX accumulate per batch element; dW accumulation is a
        // shared reduction so run this part serially per batch element while
        // the GEMMs inside parallelise internally.
        Tensor col(core::Shape{col_rows, col_cols});
        Tensor dcol(core::Shape{col_rows, col_cols});
        const float* xp = px.value.data();
        for (i64 b = 0; b < B; ++b) {
          const float* gb = g + b * Cout * col_cols;
          if (pw.requires_grad) {
            im2col(xp + b * C * H * W, C, H, W, kh, kw, stride, pad, Ho, Wo,
                   col.data());
            // dW += g[b] [Cout, col_cols] * col^T [col_cols, col_rows]
            core::gemm(false, true, Cout, col_rows, col_cols, 1.0f, gb,
                       col_cols, col.data(), col_cols, 1.0f,
                       pw.ensure_grad().data(), col_rows);
          }
          if (px.requires_grad) {
            // dcol = Wmat^T [col_rows, Cout] * g[b] [Cout, col_cols]
            core::gemm(true, false, col_rows, col_cols, Cout, 1.0f,
                       pw.value.data(), col_rows, gb, col_cols, 0.0f,
                       dcol.data(), col_cols);
            col2im(dcol.data(), C, H, W, kh, kw, stride, pad, Ho, Wo,
                   px.ensure_grad().data() + b * C * H * W);
          }
        }
      });
}

Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float eps,
                      float momentum) {
  LEGW_CHECK(x.value().dim() == 4, "batch_norm2d: x must be [B,C,H,W]");
  const i64 B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  LEGW_CHECK(gamma.value().dim() == 1 && gamma.size(0) == C &&
                 beta.value().dim() == 1 && beta.size(0) == C,
             "batch_norm2d: gamma/beta must be [C]");
  LEGW_CHECK(running_mean.numel() == C && running_var.numel() == C,
             "batch_norm2d: running stats must be [C]");
  const i64 spatial = H * W;
  const i64 count = B * spatial;

  Tensor mean(core::Shape{C});
  Tensor inv_std(core::Shape{C});
  const float* xp = x.value().data();
  if (training) {
    for (i64 c = 0; c < C; ++c) {
      double m = 0.0;
      for (i64 b = 0; b < B; ++b) {
        const float* xc = xp + (b * C + c) * spatial;
        for (i64 s = 0; s < spatial; ++s) m += xc[s];
      }
      m /= count;
      double v = 0.0;
      for (i64 b = 0; b < B; ++b) {
        const float* xc = xp + (b * C + c) * spatial;
        for (i64 s = 0; s < spatial; ++s) {
          const double d = xc[s] - m;
          v += d * d;
        }
      }
      v /= count;
      mean[c] = static_cast<float>(m);
      inv_std[c] = static_cast<float>(1.0 / std::sqrt(v + eps));
      running_mean[c] = (1.0f - momentum) * running_mean[c] +
                        momentum * static_cast<float>(m);
      running_var[c] =
          (1.0f - momentum) * running_var[c] + momentum * static_cast<float>(v);
    }
  } else {
    for (i64 c = 0; c < C; ++c) {
      mean[c] = running_mean[c];
      inv_std[c] = 1.0f / std::sqrt(running_var[c] + eps);
    }
  }

  Tensor xhat(x.value().shape());
  Tensor out(x.value().shape());
  {
    const float* gp = gamma.value().data();
    const float* bp = beta.value().data();
    float* xh = xhat.data();
    float* o = out.data();
    for (i64 b = 0; b < B; ++b) {
      for (i64 c = 0; c < C; ++c) {
        const float m = mean[c], is = inv_std[c], gm = gp[c], bt = bp[c];
        const float* xc = xp + (b * C + c) * spatial;
        float* xhc = xh + (b * C + c) * spatial;
        float* oc = o + (b * C + c) * spatial;
        for (i64 s = 0; s < spatial; ++s) {
          const float v = (xc[s] - m) * is;
          xhc[s] = v;
          oc[s] = gm * v + bt;
        }
      }
    }
  }

  return make_op_node("batch_norm2d", 
      std::move(out), {x, gamma, beta},
      [xhat, inv_std, B, C, spatial, count, training](Node& n) {
        auto& px = *n.parents[0];
        auto& pg = *n.parents[1];
        auto& pb = *n.parents[2];
        const float* g = n.grad.data();
        const float* xh = xhat.data();
        const float* gm = pg.value.data();

        // Per-channel reductions: sum(dy) and sum(dy * xhat).
        Tensor sum_dy(core::Shape{C});
        Tensor sum_dy_xhat(core::Shape{C});
        for (i64 b = 0; b < B; ++b) {
          for (i64 c = 0; c < C; ++c) {
            const float* gc = g + (b * C + c) * spatial;
            const float* xhc = xh + (b * C + c) * spatial;
            double s1 = 0.0, s2 = 0.0;
            for (i64 s = 0; s < spatial; ++s) {
              s1 += gc[s];
              s2 += static_cast<double>(gc[s]) * xhc[s];
            }
            sum_dy[c] += static_cast<float>(s1);
            sum_dy_xhat[c] += static_cast<float>(s2);
          }
        }
        if (pg.requires_grad) pg.ensure_grad().add_(sum_dy_xhat);
        if (pb.requires_grad) pb.ensure_grad().add_(sum_dy);
        if (px.requires_grad) {
          Tensor& gx = px.ensure_grad();
          const float inv_count = 1.0f / static_cast<float>(count);
          for (i64 b = 0; b < B; ++b) {
            for (i64 c = 0; c < C; ++c) {
              const float* gc = g + (b * C + c) * spatial;
              const float* xhc = xh + (b * C + c) * spatial;
              float* gxc = gx.data() + (b * C + c) * spatial;
              const float k = gm[c] * inv_std[c];
              if (training) {
                const float mdy = sum_dy[c] * inv_count;
                const float mdyx = sum_dy_xhat[c] * inv_count;
                for (i64 s = 0; s < spatial; ++s)
                  gxc[s] += k * (gc[s] - mdy - xhc[s] * mdyx);
              } else {
                // Eval mode: running stats are constants.
                for (i64 s = 0; s < spatial; ++s) gxc[s] += k * gc[s];
              }
            }
          }
        }
      });
}

Variable global_avg_pool(const Variable& x) {
  LEGW_CHECK(x.value().dim() == 4, "global_avg_pool: x must be [B,C,H,W]");
  const i64 B = x.size(0), C = x.size(1), spatial = x.size(2) * x.size(3);
  Tensor out(core::Shape{B, C});
  const float* xp = x.value().data();
  for (i64 b = 0; b < B; ++b)
    for (i64 c = 0; c < C; ++c) {
      double acc = 0.0;
      const float* xc = xp + (b * C + c) * spatial;
      for (i64 s = 0; s < spatial; ++s) acc += xc[s];
      out[b * C + c] = static_cast<float>(acc / spatial);
    }
  return make_op_node("global_avg_pool", std::move(out), {x}, [B, C, spatial](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gx = n.parents[0]->ensure_grad();
    const float inv = 1.0f / static_cast<float>(spatial);
    for (i64 b = 0; b < B; ++b)
      for (i64 c = 0; c < C; ++c) {
        const float g = n.grad[b * C + c] * inv;
        float* gxc = gx.data() + (b * C + c) * spatial;
        for (i64 s = 0; s < spatial; ++s) gxc[s] += g;
      }
  });
}

Variable avg_pool2x2(const Variable& x) {
  LEGW_CHECK(x.value().dim() == 4, "avg_pool2x2: x must be [B,C,H,W]");
  const i64 B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  LEGW_CHECK(H % 2 == 0 && W % 2 == 0, "avg_pool2x2: H and W must be even");
  const i64 Ho = H / 2, Wo = W / 2;
  Tensor out(core::Shape{B, C, Ho, Wo});
  const float* xp = x.value().data();
  float* op = out.data();
  for (i64 bc = 0; bc < B * C; ++bc) {
    const float* xi = xp + bc * H * W;
    float* oi = op + bc * Ho * Wo;
    for (i64 i = 0; i < Ho; ++i)
      for (i64 j = 0; j < Wo; ++j)
        oi[i * Wo + j] = 0.25f * (xi[(2 * i) * W + 2 * j] +
                                  xi[(2 * i) * W + 2 * j + 1] +
                                  xi[(2 * i + 1) * W + 2 * j] +
                                  xi[(2 * i + 1) * W + 2 * j + 1]);
  }
  return make_op_node("avg_pool2x2", std::move(out), {x}, [B, C, H, W, Ho, Wo](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    Tensor& gx = n.parents[0]->ensure_grad();
    const float* g = n.grad.data();
    for (i64 bc = 0; bc < B * C; ++bc) {
      float* gxi = gx.data() + bc * H * W;
      const float* gi = g + bc * Ho * Wo;
      for (i64 i = 0; i < Ho; ++i)
        for (i64 j = 0; j < Wo; ++j) {
          const float v = 0.25f * gi[i * Wo + j];
          gxi[(2 * i) * W + 2 * j] += v;
          gxi[(2 * i) * W + 2 * j + 1] += v;
          gxi[(2 * i + 1) * W + 2 * j] += v;
          gxi[(2 * i + 1) * W + 2 * j + 1] += v;
        }
    }
  });
}

}  // namespace legw::ag
