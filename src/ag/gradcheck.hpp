// Finite-difference gradient verification.
//
// Used by the test suite to validate every op and every fused layer: build a
// scalar-valued function of some leaf Variables, compare backward() gradients
// against central differences. Works in float32, so tolerances are relative
// and loose-ish (default 2e-2 relative with 1e-3 absolute floor) — sufficient
// to catch any real derivation error, which shows up as O(1) disagreement.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ag/variable.hpp"

namespace legw::ag {

struct GradCheckResult {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  // first offending entry, for test failure messages
};

// fn must rebuild the graph from the current leaf values and return the
// scalar output. `leaves` are the Variables whose gradients are verified.
GradCheckResult grad_check(
    const std::function<Variable()>& fn, std::vector<Variable> leaves,
    double eps = 1e-2, double rel_tol = 2e-2, double abs_tol = 1e-3);

}  // namespace legw::ag
