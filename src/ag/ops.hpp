// Differentiable op library.
//
// Every function builds one graph node; compound layers (LSTM, attention,
// residual blocks) are compositions of these. A handful of performance- or
// correctness-critical ops are "fused" with hand-derived backward passes
// (lstm_cell, conv2d, batch_norm); their gradients are cross-checked against
// finite differences and, for the LSTM cell, against an op-composition of the
// same math (tests/test_ag_rnn.cpp).
#pragma once

#include <vector>

#include "ag/variable.hpp"
#include "core/rng.hpp"

namespace legw::ag {

// ---- arithmetic ------------------------------------------------------------
Variable add(const Variable& a, const Variable& b);        // same shape
Variable sub(const Variable& a, const Variable& b);        // same shape
Variable mul(const Variable& a, const Variable& b);        // elementwise
Variable scale(const Variable& a, float s);
Variable add_scalar(const Variable& a, float s);
// x: [m, n], bias: [n]; broadcast over rows.
Variable add_bias(const Variable& x, const Variable& bias);
// x: [m, n], col: [m, 1]; broadcast multiply over columns.
Variable mul_colvec(const Variable& x, const Variable& col);

// ---- linear algebra --------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b, bool trans_a = false,
                bool trans_b = false);

// ---- nonlinearities --------------------------------------------------------
Variable sigmoid(const Variable& a);
Variable tanh(const Variable& a);
Variable relu(const Variable& a);
Variable softmax_rows(const Variable& a);  // a: [rows, cols]
Variable exp(const Variable& a);
// Natural log; inputs must be strictly positive.
Variable log(const Variable& a);
// Elementwise square root; inputs must be non-negative (derivative guarded
// by eps at zero).
Variable sqrt(const Variable& a, float eps = 1e-12f);
Variable abs(const Variable& a);
// Clamp to [lo, hi]; gradient is passed through inside the interval and
// zero outside (the usual straight-cut subgradient).
Variable clamp(const Variable& a, float lo, float hi);

// ---- shape -----------------------------------------------------------------
Variable reshape(const Variable& a, Shape shape);
// Concatenate 2-D tensors along columns; all must share the row count.
Variable concat_cols(const std::vector<Variable>& parts);
// Columns [begin, end) of a 2-D tensor.
Variable slice_cols(const Variable& a, i64 begin, i64 end);
// Concatenate 2-D tensors along rows; all must share the column count.
Variable concat_rows(const std::vector<Variable>& parts);

// ---- reductions ------------------------------------------------------------
Variable sum_all(const Variable& a);   // -> [1]
Variable mean_all(const Variable& a);  // -> [1]
// Sum of columns of a 2-D tensor -> [cols]. (Bias gradient pattern.)
Variable sum_rows(const Variable& a);

// ---- embedding -------------------------------------------------------------
// weight: [vocab, dim]; returns [indices.size(), dim]. Backward scatter-adds.
Variable embedding(const Variable& weight, const std::vector<i32>& indices);

// ---- regularisation --------------------------------------------------------
// Inverted dropout: at train time scales kept activations by 1/(1-p);
// identity at eval time. Mask is drawn from `rng`.
Variable dropout(const Variable& a, float p, core::Rng& rng, bool training);

// ---- loss ------------------------------------------------------------------
// Mean softmax cross-entropy over rows of `logits` against integer targets.
// Rows with target == ignore_index are excluded from both mean and gradient.
// Returns a scalar [1] Variable; `counted_out` (optional) receives the number
// of contributing rows.
Variable softmax_cross_entropy(const Variable& logits,
                               const std::vector<i32>& targets,
                               i32 ignore_index = -1,
                               i64* counted_out = nullptr);

// v / ||v||_2 for a 1-D vector (used by normalized Bahdanau attention).
Variable normalize_vec(const Variable& v, float eps = 1e-8f);

// ---- fused recurrent cell --------------------------------------------------
// One LSTM step. x: [B, I], h: [B, H], c: [B, H], w: [I+H, 4H] with gate
// order (i, f, g, o), b: [4H]. Returns [B, 2H]: columns [0,H) are the new h,
// [H,2H) the new c. Callers split with slice_cols. Forget-gate bias is the
// caller's responsibility (add 1.0 to b's f-segment at init).
Variable lstm_cell(const Variable& x, const Variable& h, const Variable& c,
                   const Variable& w, const Variable& b);

// ---- convolution / CNN ops -------------------------------------------------
// x: [B, C, H, W], w: [Cout, C, kh, kw], bias: [Cout] (pass undefined
// Variable for no bias). Zero padding `pad`, square stride.
Variable conv2d(const Variable& x, const Variable& w, const Variable& bias,
                i64 stride, i64 pad);
// Spatial batch norm over [B, C, H, W]; gamma/beta: [C]. In training mode
// uses batch statistics and updates running_mean/var (momentum 0.1, host
// tensors owned by the layer); in eval mode uses the running stats.
Variable batch_norm2d(const Variable& x, const Variable& gamma,
                      const Variable& beta, Tensor& running_mean,
                      Tensor& running_var, bool training, float eps = 1e-5f,
                      float momentum = 0.1f);
// Global average pool: [B, C, H, W] -> [B, C].
Variable global_avg_pool(const Variable& x);
// 2x2 average pool with stride 2 (H, W must be even).
Variable avg_pool2x2(const Variable& x);

}  // namespace legw::ag
