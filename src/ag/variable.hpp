// Reverse-mode automatic differentiation over core::Tensor.
//
// The design is a classic dynamic tape: every op allocates a Node holding the
// forward value, a lazily-allocated gradient buffer, shared_ptr edges to its
// parents and a closure that scatters the node's gradient into its parents'
// gradients. backward() topologically sorts the graph reachable from the loss
// and runs the closures in reverse order.
//
// Leaf nodes (parameters) persist across steps and *accumulate* gradient, so
// gradient accumulation over micro-batches falls out naturally; interior
// nodes are recreated every forward pass so their gradients are always fresh.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/tensor.hpp"
#include "mem/alloc.hpp"

namespace legw::ag {

using core::Shape;
using core::Tensor;

struct Node {
  Tensor value;
  Tensor grad;  // empty until ensure_grad(); same shape as value afterwards
  bool requires_grad = false;
  // Static-string op name ("matmul", "lstm_cell", ...; "leaf" for leaves).
  // Diagnostics only: non-finite tripwires and the graph validator use it to
  // blame the producing op.
  const char* op = "leaf";
  std::vector<std::shared_ptr<Node>> parents;
  // Each parent's value.version() at graph-capture time. backward (in
  // checked mode) and check::lint_graph compare against the current versions
  // to detect in-place mutation of a tensor after the graph captured it.
  std::vector<u32> parent_versions;
  // Propagates this node's grad into parents' grads (accumulating).
  std::function<void(Node&)> backward_fn;

  Tensor& ensure_grad() {
    if (grad.empty() && value.numel() > 0) {
      if (parents.empty()) {
        // Leaf gradients (parameters) accumulate across steps and feed the
        // optimizer after the step scope closes, so they must never live in
        // the step-scoped arena even when one is bound to this thread.
        mem::HeapBindGuard heap_only;
        grad = Tensor::zeros(value.shape());
      } else {
        grad = Tensor::zeros(value.shape());
      }
    }
    return grad;
  }
};

// Value-semantic handle onto a Node. Cheap to copy.
class Variable {
 public:
  Variable() = default;
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  // Leaf with its own storage. Parameters are leaves with requires_grad.
  static Variable leaf(Tensor value, bool requires_grad) {
    auto n = std::make_shared<Node>();
    n->value = std::move(value);
    n->requires_grad = requires_grad;
    return Variable(std::move(n));
  }
  // Constant input (no gradient ever flows into it).
  static Variable constant(Tensor value) { return leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->value; }
  // Grants write access to the stored value and bumps its mutation version:
  // writing a value that a live graph captured is exactly the defect the
  // graph validator exists to catch.
  Tensor& mutable_value() {
    node_->value.bump_version();
    return node_->value;
  }
  // The accumulated gradient; zeros if backward never reached this node.
  const Tensor& grad() const {
    LEGW_CHECK(node_ != nullptr, "grad() on undefined Variable");
    return node_->ensure_grad();
  }
  Tensor& mutable_grad() { return node_->ensure_grad(); }
  bool requires_grad() const { return node_->requires_grad; }
  void zero_grad() {
    if (node_ && !node_->grad.empty()) node_->grad.zero_();
  }

  const Shape& shape() const { return node_->value.shape(); }
  i64 size(i64 d) const { return node_->value.size(d); }
  i64 numel() const { return node_->value.numel(); }

  std::shared_ptr<Node> node() const { return node_; }

 private:
  std::shared_ptr<Node> node_;
};

// Creates an interior node whose requires_grad is the OR of its parents'.
// `op` must be a static string (the Node stores the pointer); it names the
// producing op in tripwire and graph-validator diagnostics. When the
// non-finite tripwires are armed (check::tripwires_enabled()) the freshly
// computed value is scanned and a NaN/Inf aborts with the op's name.
Variable make_op_node(const char* op, Tensor value,
                      std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn);
// Legacy unnamed form; diagnostics report the op as "op".
Variable make_op_node(Tensor value, std::vector<Variable> parents,
                      std::function<void(Node&)> backward_fn);

// Optional callbacks observing one backward pass.
struct BackwardHooks {
  // Fired on the thread running backward(), immediately after the named
  // leaf's gradient received its final contribution of this pass — i.e.
  // after the last consumer node (in reverse-topological execution order)
  // ran its backward closure, or immediately after seeding when the root is
  // itself a leaf. Each reachable requires_grad leaf fires exactly once;
  // interior nodes never fire; leaves unreachable from the root never fire,
  // so callers that must signal every parameter sweep the remainder after
  // backward() returns. The overlapped allreduce engine (dist/overlap.hpp)
  // uses this to launch bucket reductions while the tail of backward is
  // still executing.
  std::function<void(Node& leaf)> on_leaf_grad_ready;
};

// Runs reverse-mode accumulation from `root` (typically the scalar loss).
// Seeds d(root)/d(root) = 1 for scalars, or `seed` if provided (must match
// root's shape). Gradients accumulate into every reachable requires_grad
// node. Safe to call multiple times on independent graphs; calling it twice
// on the same graph doubles interior gradients, so don't.
void backward(const Variable& root, const Tensor* seed = nullptr);
// As above, with per-leaf grad-ready notifications. The hookless overload
// forwards here with empty hooks at zero extra cost.
void backward(const Variable& root, const Tensor* seed,
              const BackwardHooks& hooks);

// The requires_grad subgraph reachable from `root` in post-order (parents
// before children) — exactly the order backward() reverses to execute
// closures. Exposed for the tape-lifetime extraction (ag/lifetimes.hpp) and
// diagnostics; the returned pointers stay valid while the graph is alive.
std::vector<Node*> topological_order(const Variable& root);

}  // namespace legw::ag
