#include "ag/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "check/check.hpp"

namespace legw::ag {

GradCheckResult grad_check(const std::function<Variable()>& fn,
                           std::vector<Variable> leaves, double eps,
                           double rel_tol, double abs_tol) {
  GradCheckResult result;

  // Arm the non-finite tripwires for the harness's scope: a NaN that slips
  // into a forward value or gradient is blamed at the op that produced it
  // instead of surfacing as an inscrutable finite-difference mismatch.
  check::TripwireScope tripwires(true);

  // Analytic gradients.
  for (auto& leaf : leaves) leaf.zero_grad();
  Variable out = fn();
  LEGW_CHECK(out.numel() == 1, "grad_check: fn must return a scalar");
  backward(out);
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (auto& leaf : leaves) analytic.push_back(leaf.grad());

  // Central differences, one coordinate at a time.
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Tensor& value = leaves[li].mutable_value();
    for (i64 i = 0; i < value.numel(); ++i) {
      const float orig = value[i];
      value[i] = static_cast<float>(orig + eps);
      const double f_plus = static_cast<double>(fn().value()[0]);
      value[i] = static_cast<float>(orig - eps);
      const double f_minus = static_cast<double>(fn().value()[0]);
      value[i] = orig;
      const double numeric = (f_plus - f_minus) / (2.0 * eps);
      const double exact = static_cast<double>(analytic[li][i]);
      const double abs_err = std::abs(numeric - exact);
      const double denom = std::max(std::abs(numeric), std::abs(exact));
      const double rel_err = denom > 0.0 ? abs_err / denom : 0.0;
      result.max_abs_err = std::max(result.max_abs_err, abs_err);
      if (abs_err > abs_tol && rel_err > rel_tol) {
        result.max_rel_err = std::max(result.max_rel_err, rel_err);
        if (result.ok) {
          std::ostringstream os;
          os << "leaf " << li << " elem " << i << ": analytic=" << exact
             << " numeric=" << numeric << " abs_err=" << abs_err
             << " rel_err=" << rel_err;
          result.detail = os.str();
        }
        result.ok = false;
      } else {
        result.max_rel_err = std::max(result.max_rel_err, rel_err);
      }
    }
  }
  return result;
}

}  // namespace legw::ag
