#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>

#include "ckpt/crc32.hpp"
#include "core/io.hpp"
#include "obs/trace.hpp"

namespace legw::ckpt {

namespace {

constexpr char kMagicV2[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', '2'};
constexpr char kMagicV1[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', 'T'};
constexpr u32 kVersion = 2;

// Caps no legitimate checkpoint exceeds; values beyond them are bit flips or
// foreign data, not real sizes. Rejecting early keeps a flipped length field
// from turning into a multi-gigabyte allocation.
constexpr u32 kMaxNameLen = 1u << 16;
constexpr u64 kMaxNdim = 16;
constexpr u64 kMaxEntries = 1u << 24;
constexpr i64 kMaxDim = 1ll << 32;

Result fail(Status status, std::string message) {
  Result r;
  r.status = status;
  r.message = std::move(message);
  return r;
}

// ---- encoding ---------------------------------------------------------------

template <typename T>
void append_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void append_str(std::string& out, const std::string& s) {
  append_pod(out, static_cast<u32>(s.size()));
  out.append(s);
}

void append_tensor_payload(std::string& out, const core::Tensor& t) {
  append_pod(out, static_cast<u64>(t.dim()));
  for (i64 d = 0; d < t.dim(); ++d) append_pod(out, t.size(d));
  out.append(reinterpret_cast<const char*>(t.data()),
             static_cast<std::size_t>(t.numel()) * sizeof(float));
}

void append_named_tensor(std::string& out, const std::string& name,
                         const core::Tensor& t) {
  append_str(out, name);
  append_tensor_payload(out, t);
}

void append_section(std::string& out, const char* name,
                    const std::string& payload) {
  append_str(out, name);
  append_pod(out, static_cast<u64>(payload.size()));
  append_pod(out, crc32(payload.data(), payload.size()));
  out.append(payload);
}

// ---- decoding ---------------------------------------------------------------

// Bounds-checked cursor over an in-memory file image. Every read either
// succeeds completely or reports truncation; nothing is applied to live
// state until the entire file has validated.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool bytes(void* out, std::size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool pod(T* v) {
    return bytes(v, sizeof(T));
  }
  bool str(std::string* out) {
    u32 len = 0;
    if (!pod(&len) || len > kMaxNameLen) return false;
    if (len > size - pos) return false;
    out->assign(data + pos, len);
    pos += len;
    return true;
  }
  // Borrows `n` bytes from the image without copying.
  const char* borrow(std::size_t n) {
    if (n > size - pos) return nullptr;
    const char* p = data + pos;
    pos += n;
    return p;
  }
  std::size_t remaining() const { return size - pos; }
};

// A decoded tensor whose data still lives in the file image.
struct StagedTensor {
  std::string name;
  core::Shape shape;
  i64 numel = 0;
  const char* bytes = nullptr;  // numel * sizeof(float), possibly unaligned
};

bool decode_tensor_payload(Reader& r, StagedTensor* out) {
  u64 ndim = 0;
  if (!r.pod(&ndim) || ndim > kMaxNdim) return false;
  out->shape.assign(static_cast<std::size_t>(ndim), 0);
  i64 numel = 1;
  for (u64 d = 0; d < ndim; ++d) {
    i64 dim = 0;
    if (!r.pod(&dim) || dim < 0 || dim > kMaxDim) return false;
    out->shape[static_cast<std::size_t>(d)] = dim;
    if (dim > 0 && numel > kMaxDim / dim) return false;  // overflow guard
    numel *= dim;
  }
  out->numel = numel;
  out->bytes = r.borrow(static_cast<std::size_t>(numel) * sizeof(float));
  return out->bytes != nullptr;
}

bool decode_named_tensor(Reader& r, StagedTensor* out) {
  return r.str(&out->name) && decode_tensor_payload(r, out);
}

void apply_tensor(const StagedTensor& src, core::Tensor& dst) {
  std::memcpy(dst.data(), src.bytes,
              static_cast<std::size_t>(src.numel) * sizeof(float));
}

// Validates a staged named-tensor list against live named targets (same
// count, names and shapes in order) and, on success, copies the data in.
template <typename GetName, typename GetTensor>
Result match_and_apply(const char* what,
                       const std::vector<StagedTensor>& staged, std::size_t n,
                       GetName name_of, GetTensor tensor_of, bool apply) {
  if (staged.size() != n) {
    return fail(Status::kStateMismatch,
                std::string(what) + ": file has " +
                    std::to_string(staged.size()) + " entries, state has " +
                    std::to_string(n));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (staged[i].name != name_of(i)) {
      return fail(Status::kStateMismatch,
                  std::string(what) + ": entry '" + staged[i].name +
                      "' does not match state entry '" + name_of(i) + "'");
    }
    core::Tensor& dst = tensor_of(i);
    if (dst.shape() != staged[i].shape) {
      return fail(Status::kStateMismatch,
                  std::string(what) + ": shape mismatch for '" +
                      staged[i].name + "': file " +
                      core::shape_to_string(staged[i].shape) + " vs state " +
                      core::shape_to_string(dst.shape()));
    }
    if (apply) apply_tensor(staged[i], dst);
  }
  return {};
}

Result truncated(const char* what) {
  return fail(Status::kTruncated,
              std::string("checkpoint truncated/malformed in ") + what);
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOpenFailed: return "open-failed";
    case Status::kTruncated: return "truncated";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadVersion: return "bad-version";
    case Status::kCrcMismatch: return "crc-mismatch";
    case Status::kMalformed: return "malformed";
    case Status::kStateMismatch: return "state-mismatch";
    case Status::kWriteFailed: return "write-failed";
    case Status::kNoCheckpoint: return "no-checkpoint";
    case Status::kSimulatedCrash: return "simulated-crash";
  }
  return "unknown";
}

// ---- encode -----------------------------------------------------------------

std::string encode(const TrainState& state) {
  LEGW_CHECK(!state.models.empty(), "ckpt::encode: at least one model");
  LEGW_CHECK(state.optimizers.empty() ||
                 state.optimizers.size() == state.models.size(),
             "ckpt::encode: optimizers must align with models");
  LEGW_CHECK(state.emas.empty() || state.emas.size() == state.models.size(),
             "ckpt::encode: emas must align with models");
  const nn::Module& model = *state.models.front();

  std::string meta;
  {
    const std::pair<const char*, i64> ints[] = {
        {"step", state.step},
        {"epoch", state.epoch},
        {"micro_step", state.micro_step},
    };
    append_pod(meta, static_cast<u32>(std::size(ints)));
    for (const auto& [k, v] : ints) {
      append_str(meta, k);
      append_pod(meta, v);
    }
    const std::string opt_name =
        state.optimizers.empty() ? "" : state.optimizers.front()->name();
    append_pod(meta, static_cast<u32>(1));
    append_str(meta, "optimizer");
    append_str(meta, opt_name);
  }

  std::string params;
  {
    const auto named = model.named_parameters();
    append_pod(params, static_cast<u64>(named.size()));
    for (const auto& p : named) append_named_tensor(params, p.name, p.var.value());
  }

  std::string buffers;
  {
    const auto named = model.named_buffers();
    append_pod(buffers, static_cast<u64>(named.size()));
    for (const auto& b : named) append_named_tensor(buffers, b.name, *b.tensor);
  }

  std::string optim;
  if (!state.optimizers.empty()) {
    optim::Optimizer& opt = *state.optimizers.front();
    const auto view = opt.state_entries();
    append_str(optim, opt.name());
    append_pod(optim, static_cast<u32>(view.tensors.size()));
    for (const auto& e : view.tensors) {
      append_named_tensor(optim, e.name, *e.tensor);
    }
    append_pod(optim, static_cast<u32>(view.scalars.size()));
    for (const auto& e : view.scalars) {
      append_str(optim, e.name);
      append_pod(optim, *e.value);
    }
  }

  std::string ema;
  if (!state.emas.empty()) {
    const auto& shadow = state.emas.front()->shadow();
    append_pod(ema, static_cast<u64>(shadow.size()));
    for (const auto& t : shadow) append_tensor_payload(ema, t);
  }

  std::string rng;
  {
    append_pod(rng, static_cast<u32>(state.rngs.size()));
    for (const auto& [name, stream] : state.rngs) {
      const core::Rng::State s = stream->state();
      append_str(rng, name);
      append_pod(rng, s.counter);
      append_pod(rng, static_cast<u16>(s.has_cached ? 1 : 0));
      append_pod(rng, s.cached);
    }
  }

  std::string extra;
  {
    append_pod(extra, static_cast<u64>(state.extra.size()));
    for (const auto& [name, t] : state.extra) {
      append_named_tensor(extra, name, *t);
    }
  }

  // Mid-accumulation saves carry the pending micro-batch gradient sum: the
  // micro-step counter alone cannot reproduce the interrupted large-batch
  // step without it.
  std::string grads;
  const bool save_grads = state.micro_step > 0;
  if (save_grads) {
    const auto params_list = model.parameters();
    append_pod(grads, static_cast<u64>(params_list.size()));
    for (const auto& p : params_list) append_tensor_payload(grads, p.grad());
  }

  std::string out;
  out.append(kMagicV2, sizeof kMagicV2);
  append_pod(out, kVersion);
  u32 n_sections = 6;  // meta, params, buffers, rng, extra + optim-or-empty
  n_sections = 5 + (state.optimizers.empty() ? 0u : 1u) +
               (state.emas.empty() ? 0u : 1u) + (save_grads ? 1u : 0u);
  append_pod(out, n_sections);
  append_section(out, "meta", meta);
  append_section(out, "params", params);
  append_section(out, "buffers", buffers);
  if (!state.optimizers.empty()) append_section(out, "optim", optim);
  if (!state.emas.empty()) append_section(out, "ema", ema);
  append_section(out, "rng", rng);
  append_section(out, "extra", extra);
  if (save_grads) append_section(out, "grads", grads);
  return out;
}

Result save(const TrainState& state, const std::string& path) {
  obs::Span span("ckpt_write");
  if (state.models.empty()) {
    return fail(Status::kWriteFailed, "ckpt::save: no model in state");
  }
  const std::string image = encode(state);
  const core::Status st = core::atomic_write_file(path, image);
  if (!st.ok()) {
    return fail(Status::kWriteFailed, "ckpt::save: " + st.message());
  }
  obs::count("ckpt_writes", 1);
  obs::count("ckpt_bytes", static_cast<i64>(image.size()));
  return {};
}

// ---- load -------------------------------------------------------------------

namespace {

// Reads the whole file; empty optional on open failure.
bool slurp(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(sz < 0 ? 0 : static_cast<std::size_t>(sz));
  const bool ok =
      out->empty() || std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

Result load_v1_params(TrainState& state, Reader r, const std::string& path) {
  u64 n_entries = 0;
  if (!r.pod(&n_entries) || n_entries > kMaxEntries) {
    return truncated("v1 header");
  }
  std::vector<StagedTensor> staged(static_cast<std::size_t>(n_entries));
  for (auto& t : staged) {
    if (!decode_named_tensor(r, &t)) return truncated("v1 entry");
  }
  for (nn::Module* model : state.models) {
    auto named = model->named_parameters();
    Result res = match_and_apply(
        "params", staged, named.size(), [&](std::size_t i) { return named[i].name; },
        [&](std::size_t i) -> core::Tensor& {
          return named[i].var.mutable_value();
        },
        /*apply=*/true);
    if (!res.ok()) return res;
  }
  Result res;
  res.message = "v1 checkpoint " + path + ": parameters restored, "
                "optimizer/RNG/counter state not present in this version";
  return res;
}

struct Section {
  std::string name;
  Reader payload;
};

}  // namespace

Result load(TrainState& state, const std::string& path) {
  std::string image;
  if (!slurp(path, &image)) {
    return fail(Status::kOpenFailed, "ckpt::load: cannot read " + path);
  }
  return load_image(state, image, path);
}

Result load_image(TrainState& state, const std::string& image,
                  const std::string& path) {
  obs::Span span("ckpt_restore");
  if (state.models.empty()) {
    return fail(Status::kStateMismatch, "ckpt::load: no model in state");
  }
  if (!state.optimizers.empty() &&
      state.optimizers.size() != state.models.size()) {
    return fail(Status::kStateMismatch,
                "ckpt::load: optimizers must align with models");
  }
  Reader r{image.data(), image.size()};

  char magic[8];
  if (!r.bytes(magic, sizeof magic)) {
    return fail(Status::kTruncated, "ckpt::load: " + path + " shorter than a header");
  }
  u32 version = 0;
  if (std::memcmp(magic, kMagicV1, sizeof kMagicV1) == 0) {
    if (!r.pod(&version)) return truncated("v1 header");
    if (version != 1) {
      return fail(Status::kBadVersion,
                  "ckpt::load: v1-magic file with version " +
                      std::to_string(version));
    }
    return load_v1_params(state, r, path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof kMagicV2) != 0) {
    return fail(Status::kBadMagic, "ckpt::load: bad magic in " + path);
  }
  if (!r.pod(&version)) return truncated("header");
  if (version != kVersion) {
    return fail(Status::kBadVersion,
                "ckpt::load: unsupported version " + std::to_string(version) +
                    " in " + path);
  }

  u32 n_sections = 0;
  if (!r.pod(&n_sections) || n_sections > 64) return truncated("header");
  std::map<std::string, Reader> sections;
  for (u32 i = 0; i < n_sections; ++i) {
    std::string name;
    u64 payload_bytes = 0;
    u32 crc = 0;
    if (!r.str(&name) || !r.pod(&payload_bytes) || !r.pod(&crc)) {
      return truncated("section header");
    }
    const char* payload = r.borrow(static_cast<std::size_t>(payload_bytes));
    if (payload == nullptr) {
      return fail(Status::kTruncated,
                  "ckpt::load: section '" + name + "' truncated in " + path);
    }
    if (crc32(payload, static_cast<std::size_t>(payload_bytes)) != crc) {
      return fail(Status::kCrcMismatch,
                  "ckpt::load: CRC mismatch in section '" + name + "' of " +
                      path);
    }
    if (!sections.emplace(name, Reader{payload,
                                       static_cast<std::size_t>(payload_bytes)})
             .second) {
      return fail(Status::kMalformed,
                  "ckpt::load: duplicate section '" + name + "' in " + path);
    }
  }
  if (r.remaining() != 0) {
    return fail(Status::kMalformed,
                "ckpt::load: " + std::to_string(r.remaining()) +
                    " trailing bytes after last section in " + path);
  }

  // ---- stage 1: decode + validate everything against the live schema ------

  const auto find = [&](const char* name) -> Reader* {
    auto it = sections.find(name);
    return it == sections.end() ? nullptr : &it->second;
  };

  // meta (required)
  i64 step = 0, epoch = 0, micro_step = 0;
  std::string file_opt_name;
  {
    Reader* meta = find("meta");
    if (meta == nullptr) {
      return fail(Status::kMalformed, "ckpt::load: missing 'meta' section");
    }
    u32 n_ints = 0;
    if (!meta->pod(&n_ints) || n_ints > 64) return truncated("meta");
    for (u32 i = 0; i < n_ints; ++i) {
      std::string key;
      i64 value = 0;
      if (!meta->str(&key) || !meta->pod(&value)) return truncated("meta");
      if (key == "step") step = value;
      else if (key == "epoch") epoch = value;
      else if (key == "micro_step") micro_step = value;
    }
    u32 n_strs = 0;
    if (!meta->pod(&n_strs) || n_strs > 64) return truncated("meta");
    for (u32 i = 0; i < n_strs; ++i) {
      std::string key, value;
      if (!meta->str(&key) || !meta->str(&value)) return truncated("meta");
      if (key == "optimizer") file_opt_name = value;
    }
    if (step < 0 || micro_step < 0) {
      return fail(Status::kMalformed, "ckpt::load: negative counters in meta");
    }
  }
  if (!state.optimizers.empty() &&
      file_opt_name != state.optimizers.front()->name()) {
    return fail(Status::kStateMismatch,
                "ckpt::load: checkpoint was written by optimizer '" +
                    file_opt_name + "', state has '" +
                    state.optimizers.front()->name() + "'");
  }

  // params (required)
  std::vector<StagedTensor> staged_params;
  {
    Reader* sec = find("params");
    if (sec == nullptr) {
      return fail(Status::kMalformed, "ckpt::load: missing 'params' section");
    }
    u64 n = 0;
    if (!sec->pod(&n) || n > kMaxEntries) return truncated("params");
    staged_params.resize(static_cast<std::size_t>(n));
    for (auto& t : staged_params) {
      if (!decode_named_tensor(*sec, &t)) return truncated("params entry");
    }
  }
  {
    auto named = state.models.front()->named_parameters();
    Result res = match_and_apply(
        "params", staged_params, named.size(),
        [&](std::size_t i) { return named[i].name; },
        [&](std::size_t i) -> core::Tensor& {
          return named[i].var.mutable_value();
        },
        /*apply=*/false);
    if (!res.ok()) return res;
  }

  // buffers (required in v2 — written even when empty)
  std::vector<StagedTensor> staged_buffers;
  {
    Reader* sec = find("buffers");
    if (sec == nullptr) {
      return fail(Status::kMalformed, "ckpt::load: missing 'buffers' section");
    }
    u64 n = 0;
    if (!sec->pod(&n) || n > kMaxEntries) return truncated("buffers");
    staged_buffers.resize(static_cast<std::size_t>(n));
    for (auto& t : staged_buffers) {
      if (!decode_named_tensor(*sec, &t)) return truncated("buffers entry");
    }
    auto named = state.models.front()->named_buffers();
    Result res = match_and_apply(
        "buffers", staged_buffers, named.size(),
        [&](std::size_t i) { return named[i].name; },
        [&](std::size_t i) -> core::Tensor& { return *named[i].tensor; },
        /*apply=*/false);
    if (!res.ok()) return res;
  }

  // optim (required iff the state carries optimizers)
  std::vector<StagedTensor> staged_opt_tensors;
  std::vector<std::pair<std::string, i64>> staged_opt_scalars;
  if (!state.optimizers.empty()) {
    Reader* sec = find("optim");
    if (sec == nullptr) {
      return fail(Status::kStateMismatch,
                  "ckpt::load: state has optimizers but " + path +
                      " has no 'optim' section");
    }
    std::string opt_name;
    if (!sec->str(&opt_name)) return truncated("optim");
    u32 n_tensors = 0;
    if (!sec->pod(&n_tensors) || n_tensors > kMaxEntries) {
      return truncated("optim");
    }
    staged_opt_tensors.resize(n_tensors);
    for (auto& t : staged_opt_tensors) {
      if (!decode_named_tensor(*sec, &t)) return truncated("optim entry");
    }
    u32 n_scalars = 0;
    if (!sec->pod(&n_scalars) || n_scalars > 1024) return truncated("optim");
    staged_opt_scalars.resize(n_scalars);
    for (auto& [key, value] : staged_opt_scalars) {
      if (!sec->str(&key) || !sec->pod(&value)) return truncated("optim");
    }
    for (optim::Optimizer* opt : state.optimizers) {
      if (opt->name() != opt_name) {
        return fail(Status::kStateMismatch,
                    "ckpt::load: optim section is for '" + opt_name +
                        "', state optimizer is '" + opt->name() + "'");
      }
      auto view = opt->state_entries();
      Result res = match_and_apply(
          "optim", staged_opt_tensors, view.tensors.size(),
          [&](std::size_t i) { return view.tensors[i].name; },
          [&](std::size_t i) -> core::Tensor& { return *view.tensors[i].tensor; },
          /*apply=*/false);
      if (!res.ok()) return res;
      if (staged_opt_scalars.size() != view.scalars.size()) {
        return fail(Status::kStateMismatch,
                    "ckpt::load: optim scalar count mismatch");
      }
      for (std::size_t i = 0; i < view.scalars.size(); ++i) {
        if (staged_opt_scalars[i].first != view.scalars[i].name) {
          return fail(Status::kStateMismatch,
                      "ckpt::load: optim scalar '" +
                          staged_opt_scalars[i].first +
                          "' does not match state scalar '" +
                          view.scalars[i].name + "'");
        }
      }
    }
  }

  // ema (required iff the state carries EMA weights)
  std::vector<StagedTensor> staged_ema;
  if (!state.emas.empty()) {
    Reader* sec = find("ema");
    if (sec == nullptr) {
      return fail(Status::kStateMismatch,
                  "ckpt::load: state has EMA weights but " + path +
                      " has no 'ema' section");
    }
    u64 n = 0;
    if (!sec->pod(&n) || n > kMaxEntries) return truncated("ema");
    staged_ema.resize(static_cast<std::size_t>(n));
    for (auto& t : staged_ema) {
      if (!decode_tensor_payload(*sec, &t)) return truncated("ema entry");
    }
    for (optim::EmaWeights* ema : state.emas) {
      auto& shadow = ema->mutable_shadow();
      if (shadow.size() != staged_ema.size()) {
        return fail(Status::kStateMismatch,
                    "ckpt::load: ema shadow count mismatch");
      }
      for (std::size_t i = 0; i < shadow.size(); ++i) {
        if (shadow[i].shape() != staged_ema[i].shape) {
          return fail(Status::kStateMismatch,
                      "ckpt::load: ema shadow shape mismatch at index " +
                          std::to_string(i));
        }
      }
    }
  }

  // rng (required; name sets must match exactly)
  std::vector<std::pair<std::string, core::Rng::State>> staged_rngs;
  {
    Reader* sec = find("rng");
    if (sec == nullptr) {
      return fail(Status::kMalformed, "ckpt::load: missing 'rng' section");
    }
    u32 n = 0;
    if (!sec->pod(&n) || n > 1024) return truncated("rng");
    staged_rngs.resize(n);
    for (auto& [name, s] : staged_rngs) {
      u16 has_cached = 0;
      if (!sec->str(&name) || !sec->pod(&s.counter) ||
          !sec->pod(&has_cached) || !sec->pod(&s.cached)) {
        return truncated("rng entry");
      }
      s.has_cached = has_cached != 0;
    }
    if (staged_rngs.size() != state.rngs.size()) {
      return fail(Status::kStateMismatch,
                  "ckpt::load: rng stream count mismatch (file " +
                      std::to_string(staged_rngs.size()) + ", state " +
                      std::to_string(state.rngs.size()) + ")");
    }
    for (std::size_t i = 0; i < staged_rngs.size(); ++i) {
      if (staged_rngs[i].first != state.rngs[i].first) {
        return fail(Status::kStateMismatch,
                    "ckpt::load: rng stream '" + staged_rngs[i].first +
                        "' does not match state stream '" +
                        state.rngs[i].first + "'");
      }
    }
  }

  // extra (required; name sets and shapes must match exactly)
  std::vector<StagedTensor> staged_extra;
  {
    Reader* sec = find("extra");
    if (sec == nullptr) {
      return fail(Status::kMalformed, "ckpt::load: missing 'extra' section");
    }
    u64 n = 0;
    if (!sec->pod(&n) || n > kMaxEntries) return truncated("extra");
    staged_extra.resize(static_cast<std::size_t>(n));
    for (auto& t : staged_extra) {
      if (!decode_named_tensor(*sec, &t)) return truncated("extra entry");
    }
    Result res = match_and_apply(
        "extra", staged_extra, state.extra.size(),
        [&](std::size_t i) { return state.extra[i].first; },
        [&](std::size_t i) -> core::Tensor& { return *state.extra[i].second; },
        /*apply=*/false);
    if (!res.ok()) return res;
  }

  // grads (present iff saved mid-accumulation)
  std::vector<StagedTensor> staged_grads;
  if (micro_step > 0) {
    Reader* sec = find("grads");
    if (sec == nullptr) {
      return fail(Status::kMalformed,
                  "ckpt::load: micro_step > 0 but no 'grads' section");
    }
    u64 n = 0;
    if (!sec->pod(&n) || n > kMaxEntries) return truncated("grads");
    staged_grads.resize(static_cast<std::size_t>(n));
    for (auto& t : staged_grads) {
      if (!decode_tensor_payload(*sec, &t)) return truncated("grads entry");
    }
    auto params_list = state.models.front()->parameters();
    if (staged_grads.size() != params_list.size()) {
      return fail(Status::kStateMismatch,
                  "ckpt::load: grads count mismatch");
    }
    for (std::size_t i = 0; i < params_list.size(); ++i) {
      if (params_list[i].shape() != staged_grads[i].shape) {
        return fail(Status::kStateMismatch,
                    "ckpt::load: grads shape mismatch at index " +
                        std::to_string(i));
      }
    }
  }

  // ---- stage 2: the file is fully valid — apply to every replica -----------

  for (nn::Module* model : state.models) {
    auto named = model->named_parameters();
    for (std::size_t i = 0; i < named.size(); ++i) {
      apply_tensor(staged_params[i], named[i].var.mutable_value());
    }
    auto buffers = model->named_buffers();
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      apply_tensor(staged_buffers[i], *buffers[i].tensor);
    }
    if (micro_step > 0) {
      auto params_list = model->parameters();
      for (std::size_t i = 0; i < params_list.size(); ++i) {
        apply_tensor(staged_grads[i], params_list[i].mutable_grad());
      }
    }
  }
  for (optim::Optimizer* opt : state.optimizers) {
    auto view = opt->state_entries();
    for (std::size_t i = 0; i < view.tensors.size(); ++i) {
      apply_tensor(staged_opt_tensors[i], *view.tensors[i].tensor);
    }
    for (std::size_t i = 0; i < view.scalars.size(); ++i) {
      *view.scalars[i].value = staged_opt_scalars[i].second;
    }
  }
  for (optim::EmaWeights* ema : state.emas) {
    auto& shadow = ema->mutable_shadow();
    for (std::size_t i = 0; i < shadow.size(); ++i) {
      apply_tensor(staged_ema[i], shadow[i]);
    }
  }
  for (std::size_t i = 0; i < state.rngs.size(); ++i) {
    state.rngs[i].second->set_state(staged_rngs[i].second);
  }
  for (std::size_t i = 0; i < state.extra.size(); ++i) {
    apply_tensor(staged_extra[i], *state.extra[i].second);
  }
  state.step = step;
  state.epoch = epoch;
  state.micro_step = micro_step;
  obs::count("ckpt_restores", 1);
  return {};
}

// ---- CrashPlan --------------------------------------------------------------

CrashPlan CrashPlan::mid_step(i64 at_step) {
  CrashPlan plan;
  plan.crashes.push_back({at_step, Kind::kMidStep, 0.0});
  return plan;
}

CrashPlan CrashPlan::mid_write(i64 at_step, double fraction) {
  CrashPlan plan;
  plan.crashes.push_back({at_step, Kind::kMidWrite, fraction});
  return plan;
}

CrashPlan CrashPlan::torn_publish(i64 at_step, double fraction) {
  CrashPlan plan;
  plan.crashes.push_back({at_step, Kind::kTornPublish, fraction});
  return plan;
}

CrashPlan CrashPlan::random_kills(u64 seed, i64 max_step, int count) {
  LEGW_CHECK(max_step >= 1, "CrashPlan: max_step must be >= 1");
  core::Rng rng(seed * 0x9e3779b97f4a7c15ull + 17);
  CrashPlan plan;
  while (static_cast<int>(plan.crashes.size()) < count) {
    const i64 step =
        1 + static_cast<i64>(rng.uniform_int(static_cast<u64>(max_step)));
    if (plan.crash_at(step) != nullptr) continue;
    Crash c;
    c.at_step = step;
    const u64 kind = rng.uniform_int(3);
    c.kind = kind == 0 ? Kind::kMidStep
                       : (kind == 1 ? Kind::kMidWrite : Kind::kTornPublish);
    c.write_fraction = 0.25 + 0.5 * rng.uniform();
    plan.crashes.push_back(c);
  }
  return plan;
}

const CrashPlan::Crash* CrashPlan::crash_at(i64 step) const {
  for (const auto& c : crashes) {
    if (c.at_step == step) return &c;
  }
  return nullptr;
}

// ---- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(ManagerConfig config)
    : config_(std::move(config)) {
  LEGW_CHECK(!config_.dir.empty(), "CheckpointManager: dir required");
}

std::string CheckpointManager::step_path(const std::string& dir, i64 step) {
  char name[32];
  std::snprintf(name, sizeof name, "ckpt-%012lld.legw",
                static_cast<long long>(step));
  return dir + "/" + name;
}

std::vector<std::string> CheckpointManager::list_checkpoints(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::pair<i64, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    // ckpt-<digits>.legw, nothing else (ignores .tmp leftovers).
    if (name.size() <= 10 || name.rfind("ckpt-", 0) != 0 ||
        name.substr(name.size() - 5) != ".legw") {
      continue;
    }
    const std::string digits = name.substr(5, name.size() - 10);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::stoll(digits), entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [step, path] : found) out.push_back(std::move(path));
  return out;
}

i64 CheckpointManager::step_of(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  if (name.size() <= 10 || name.rfind("ckpt-", 0) != 0 ||
      name.substr(name.size() - 5) != ".legw") {
    return -1;
  }
  const std::string digits = name.substr(5, name.size() - 10);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::stoll(digits);
}

bool CheckpointManager::is_blessed(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path + ".blessed", ec);
}

Result CheckpointManager::maybe_save(const TrainState& state) {
  if (!due(state.step)) return {};
  return save_now(state);
}

Result CheckpointManager::save_now(const TrainState& state) {
  core::MutexLock lock(io_mu_);
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  const std::string path = step_path(config_.dir, state.step);
  const CrashPlan::Crash* crash =
      config_.crash == nullptr ? nullptr : config_.crash->crash_at(state.step);
  if (crash != nullptr && crash->kind != CrashPlan::Kind::kMidStep) {
    // Simulated kill mid-write: emit exactly the bytes a dead process would
    // leave behind — a truncated staging file (kMidWrite, never published;
    // restore must ignore it and use the previous checkpoint) or a truncated
    // file at the final path (kTornPublish, modelling a non-atomic
    // filesystem; restore must detect the damage and fall back). Deliberately
    // not the atomic writer: the injection bypasses it the way a crash would.
    const std::string image = encode(state);
    const double f = std::clamp(crash->write_fraction, 0.0, 1.0);
    const auto cut = static_cast<std::size_t>(f * static_cast<double>(image.size()));
    const std::string target =
        crash->kind == CrashPlan::Kind::kMidWrite ? path + ".tmp" : path;
    // lint-allow: atomic-write — crash injector writes a torn file on purpose.
    std::FILE* out = std::fopen(target.c_str(), "wb");
    if (out != nullptr) {
      std::fwrite(image.data(), 1, cut, out);
      std::fclose(out);
    }
    return fail(Status::kSimulatedCrash,
                "injected kill during write of " + path + " (" +
                    std::to_string(cut) + "/" + std::to_string(image.size()) +
                    " bytes)");
  }
  Result r = save(state, path);
  if (r.ok()) apply_retention();
  return r;
}

namespace {

// Shared newest→oldest restore walk over `files`; `label` distinguishes the
// latest/blessed variants in error messages.
CheckpointManager::RestoreOutcome restore_walk(
    TrainState& state, const std::vector<std::string>& files,
    const std::string& dir, const std::string& label) {
  CheckpointManager::RestoreOutcome out;
  if (files.empty()) {
    out.status =
        fail(Status::kNoCheckpoint, "no " + label + " checkpoints in " + dir);
    return out;
  }
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    Result r = load(state, *it);
    if (r.ok()) {
      out.restored = true;
      out.path = *it;
      out.status = std::move(r);
      if (!out.skipped.empty()) {
        // The newest file(s) were corrupt and an older one restored — that
        // fallback is the incident a post-mortem needs to see.
        obs::TraceRecorder::global().add_event(
            "ckpt_fallback",
            {{"restored", out.path},
             {"skipped", std::to_string(out.skipped.size())}});
      }
      return out;
    }
    out.skipped.push_back(
        CheckpointManager::SkippedCheckpoint{*it, r.status, r.message});
    obs::count("ckpt_corrupt_skipped", 1);
    obs::TraceRecorder::global().add_event(
        "ckpt_corrupt_skipped",
        {{"path", *it},
         {"status", status_name(r.status)},
         {"error", r.message}});
    out.status = std::move(r);
  }
  return out;
}

}  // namespace

CheckpointManager::RestoreOutcome CheckpointManager::restore_latest(
    TrainState& state) {
  core::MutexLock lock(io_mu_);
  return restore_walk(state, list_checkpoints(config_.dir), config_.dir,
                      "candidate");
}

CheckpointManager::RestoreOutcome CheckpointManager::restore_blessed(
    TrainState& state) {
  core::MutexLock lock(io_mu_);
  std::vector<std::string> blessed;
  for (const auto& path : list_checkpoints(config_.dir)) {
    if (is_blessed(path)) blessed.push_back(path);
  }
  return restore_walk(state, blessed, config_.dir, "blessed");
}

Result CheckpointManager::bless(i64 step) {
  core::MutexLock lock(io_mu_);
  const std::string path = step_path(config_.dir, step);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return fail(Status::kNoCheckpoint, "bless: no checkpoint at " + path);
  }
  // The marker is existence-only metadata: is_blessed() never reads the
  // content, and a marker lost to power loss merely ages the rollback
  // target by one blessing. Skipping the atomic-write fsync keeps blessing
  // off the step's critical path (one fsync per cadence would dominate the
  // sentinel's healthy overhead).
  // lint-allow: atomic-write — existence-only marker, loss is safe
  std::FILE* f = std::fopen((path + ".blessed").c_str(), "wb");
  if (f == nullptr) {
    return fail(Status::kWriteFailed, "bless: cannot create marker for " + path);
  }
  std::fputs("blessed\n", f);
  if (std::fclose(f) != 0) {
    return fail(Status::kWriteFailed, "bless: marker close failed for " + path);
  }
  return {};
}

i64 CheckpointManager::newest_blessed_step() {
  core::MutexLock lock(io_mu_);
  const auto files = list_checkpoints(config_.dir);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    if (is_blessed(*it)) return step_of(*it);
  }
  return -1;
}

void CheckpointManager::invalidate_after(i64 step) {
  core::MutexLock lock(io_mu_);
  for (const auto& path : list_checkpoints(config_.dir)) {
    if (step_of(path) > step && !is_blessed(path)) {
      std::remove(path.c_str());
    }
  }
}

void CheckpointManager::apply_retention() {
  if (config_.keep_last <= 0) return;
  auto files = list_checkpoints(config_.dir);
  // The newest blessed checkpoint is the run's only known-good rollback
  // target while newer (still-unblessed) files exist ahead of it; retention
  // must not reap it to make room for exactly the files a divergence would
  // invalidate.
  std::string protect;
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    if (is_blessed(*it)) {
      if (it != files.rbegin()) protect = *it;  // unblessed files exist ahead
      break;
    }
  }
  // The protected file rides above the budget: the run still keeps its
  // keep_last newest checkpoints for normal resume.
  const std::size_t budget = static_cast<std::size_t>(config_.keep_last) +
                             (protect.empty() ? 0u : 1u);
  std::size_t i = 0;
  while (files.size() > budget && i < files.size()) {
    if (files[i] == protect) {
      ++i;
      continue;
    }
    std::remove(files[i].c_str());
    std::remove((files[i] + ".blessed").c_str());  // stale marker, if any
    files.erase(files.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

}  // namespace legw::ckpt
