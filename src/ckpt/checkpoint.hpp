// Crash-safe full-training-state checkpointing.
//
// The paper's claim (LEGW: sqrt(k) LR + k-scaled warmup survives very long
// large-batch runs without retuning) only matters at cluster scale if the
// run itself survives preemption — and per-layer adaptive state (momentum
// buffers, trust-ratio history, Adam moments; You et al. 2017) determines
// large-batch trajectories, so a resume that drops optimizer, RNG or
// schedule state silently changes the experiment. This subsystem checkpoints
// *everything* the four train runners mutate:
//
//   - model parameters and non-trainable buffers (BatchNorm running stats),
//   - every optimizer's per-parameter state via Optimizer::state_entries(),
//   - EMA shadow weights,
//   - named core::Rng streams (raw SplitMix64 counter + Box-Muller cache),
//   - epoch / step / micro-step counters (the schedule position is a pure
//     function of the step, so the counters pin it exactly),
//   - pending micro-batch gradients when saved mid-accumulation.
//
// Container format (little-endian, version 2; version-1 nn/serialize files
// are readable for parameter-only restores):
//
//   magic "LEGWCKP2" | u32 version | u32 n_sections
//   per section: u32 name_len | name | u64 payload_bytes | u32 crc32 | payload
//
// Every section carries a CRC32 over its payload, so truncation, torn
// writes, and bit flips are all *detected* and reported as a structured
// Status — never an LEGW_CHECK abort. Publication is atomic (write tmp →
// fsync → rename via core::AtomicFile): a crash mid-write leaves at most a
// stale .tmp next to an intact previous checkpoint. CheckpointManager adds
// the cadence/retention policy and, on restore, falls back across corrupted
// files to the newest valid one. A seeded CrashPlan (mirroring
// dist::FaultPlan) injects simulated kills mid-step and mid-write so the
// failure paths are first-class tested, including the adversarial
// "torn publish" case of a non-atomic filesystem.
//
// Obs integration: `ckpt_write` / `ckpt_restore` spans and the
// `ckpt_writes` / `ckpt_bytes` / `ckpt_restores` / `ckpt_corrupt_skipped`
// counters. See docs/CHECKPOINT.md for the byte-level layout and knobs.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/mutex.hpp"
#include "core/rng.hpp"
#include "nn/module.hpp"
#include "optim/ema.hpp"
#include "optim/optimizer.hpp"

namespace legw::ckpt {

enum class Status {
  kOk,
  kOpenFailed,       // cannot open for reading
  kTruncated,        // file ends inside a declared header/section
  kBadMagic,         // neither a v2 container nor a v1 serialize file
  kBadVersion,       // version newer than this reader
  kCrcMismatch,      // a section's payload fails its CRC32
  kMalformed,        // implausible lengths/counts (bit-flipped header fields)
  kStateMismatch,    // file disagrees with the live state's schema (names,
                     // shapes, optimizer type, counts)
  kWriteFailed,      // staging or atomic publication failed
  kNoCheckpoint,     // restore_latest found no candidate files
  kSimulatedCrash,   // a CrashPlan kill fired during this write
};

const char* status_name(Status s);

// [[nodiscard]]: every function returning a Result by value inherits the
// must-check contract (a dropped checkpoint error is silent data loss).
struct [[nodiscard]] Result {
  Status status = Status::kOk;
  std::string message;  // empty when ok
  bool ok() const { return status == Status::kOk; }
};

// Pointers into one training run's live state. The runner fills this at
// save/restore time (the pointed-at objects move between steps — PTB's
// carried BPTT state is reassigned every chunk — so views are rebuilt per
// call, never cached). With data-parallel replicas, every aligned vector
// holds one entry per replica: save() writes replica 0 only (replicas are
// bit-synchronised), load() restores all of them bit-identically.
struct TrainState {
  std::vector<nn::Module*> models;            // required, >= 1
  std::vector<optim::Optimizer*> optimizers;  // aligned with models
  std::vector<optim::EmaWeights*> emas;       // empty, or aligned with models
  // Named RNG streams (dropout, ...). Restored by name.
  std::vector<std::pair<std::string, core::Rng*>> rngs;
  // Named extra tensors (PTB carried h/c, ...). Restored by name; shapes
  // must match.
  std::vector<std::pair<std::string, core::Tensor*>> extra;
  i64 step = 0;        // completed optimizer steps
  i64 epoch = 0;       // epoch the step belongs to (informational; the
                       // runners re-derive position from `step`)
  i64 micro_step = 0;  // GradientAccumulator pending position; when > 0 the
                       // checkpoint also carries the accumulated gradients
};

// Serializes the state (replica 0) to the v2 container image in memory.
std::string encode(const TrainState& state);

// encode() + atomic publication to `path`. Parent directories must exist
// (CheckpointManager creates them).
[[nodiscard]] Result save(const TrainState& state, const std::string& path);

// Validating reader: parses and CRC-checks the *whole* file and matches it
// against the live state's schema before touching any live tensor, so a
// failed load leaves the state exactly as it was. Accepts v2 containers and
// v1 nn/serialize files (parameters only; optimizer/RNG/counter state is
// left untouched and the result message says so).
[[nodiscard]] Result load(TrainState& state, const std::string& path);

// load() over an in-memory container image — no file IO. This is the
// elastic-join hand-off path (dist/membership.hpp): the anchor replica
// encode()s its state and the joining replica restores straight from the
// bytes. `origin` only labels error messages.
[[nodiscard]] Result load_image(TrainState& state, const std::string& image,
                                const std::string& origin);

// A deterministic, seeded set of injected kills (the training-loop twin of
// dist::FaultPlan). Steps are matched against TrainState::step.
struct CrashPlan {
  enum class Kind {
    kMidStep,      // process dies right after the step, before any write
    kMidWrite,     // dies mid checkpoint write: partial .tmp, nothing
                   // published — the previous checkpoint must survive
    kTornPublish,  // dies mid publication on a non-atomic filesystem: a
                   // truncated file lands at the final path and the loader
                   // must detect and skip it
  };
  struct Crash {
    i64 at_step = -1;
    Kind kind = Kind::kMidStep;
    double write_fraction = 0.5;  // fraction of bytes written before death
  };
  std::vector<Crash> crashes;

  static CrashPlan mid_step(i64 at_step);
  static CrashPlan mid_write(i64 at_step, double fraction = 0.5);
  static CrashPlan torn_publish(i64 at_step, double fraction = 0.5);
  // `count` distinct kill steps in [1, max_step] with kinds and fractions
  // drawn from a seeded core::Rng. Same seed, same plan.
  static CrashPlan random_kills(u64 seed, i64 max_step, int count);

  // The crash scheduled for `step`, or nullptr.
  const Crash* crash_at(i64 step) const;
};

struct ManagerConfig {
  std::string dir;       // created on first save
  i64 every_steps = 0;   // write cadence; 0 disables periodic saves
  int keep_last = 3;     // retention; <= 0 keeps every checkpoint
  const CrashPlan* crash = nullptr;  // not owned; nullptr = no injection
};

// Cadence + naming + retention + fallback policy over save()/load().
// Files are `<dir>/ckpt-<step, zero-padded>.legw`.
//
// Blessing: the stability sentinel (src/guard/) marks a checkpoint "blessed"
// only after N further healthy steps survive past it — a blessed checkpoint
// is a known-good rollback target, not merely the newest bytes on disk. The
// mark is a sidecar file `<ckpt>.blessed` (atomic to create, survives
// crashes, invisible to list_checkpoints' name filter). Retention will never
// reap the newest blessed checkpoint while unblessed ones exist ahead of it:
// those newer files are exactly the ones a divergence would invalidate, so
// deleting the last known-good state to make room for them would destroy the
// only safe rollback target.
class CheckpointManager {
 public:
  explicit CheckpointManager(ManagerConfig config);

  const ManagerConfig& config() const { return config_; }

  static std::string step_path(const std::string& dir, i64 step);
  // Checkpoint files in `dir`, sorted oldest → newest by step. Ignores
  // .tmp leftovers, .blessed markers and foreign files.
  static std::vector<std::string> list_checkpoints(const std::string& dir);
  // Step number parsed from a step_path-shaped filename, or -1.
  static i64 step_of(const std::string& path);
  // True when `path` carries a .blessed sidecar marker.
  static bool is_blessed(const std::string& path);

  // True when the cadence says `step` should be persisted.
  bool due(i64 step) const { return config_.every_steps > 0 && step > 0 &&
                                    step % config_.every_steps == 0; }

  // save() to step_path(state.step) when due (plus retention); kOk no-op
  // otherwise. A kSimulatedCrash result means the injected kill fired — the
  // caller should stop the run as if the process died.
  Result maybe_save(const TrainState& state) LEGW_EXCLUDES(io_mu_);
  // Unconditional save + retention (also the maybe_save workhorse).
  Result save_now(const TrainState& state) LEGW_EXCLUDES(io_mu_);

  // A candidate file rejected during a restore walk, with the structured
  // load failure (the message names the failing section).
  struct SkippedCheckpoint {
    std::string path;
    Status status = Status::kOk;
    std::string message;
  };

  struct RestoreOutcome {
    bool restored = false;
    std::string path;  // the file that restored
    // Corrupted candidates, newest first.
    std::vector<SkippedCheckpoint> skipped;
    Result status;  // kOk on success; kNoCheckpoint when dir has none; the
                    // last failure when every candidate was rejected
  };
  // Walks checkpoints newest → oldest, restoring the first one that loads
  // cleanly; corrupted/torn/truncated files are skipped, never fatal. Every
  // skip bumps the `ckpt_corrupt_skipped` obs counter and records a
  // `ckpt_corrupt_skipped` telemetry event carrying the path and the failing
  // section; a restore that had to fall past corrupt files also records a
  // `ckpt_fallback` event naming the file that finally restored.
  RestoreOutcome restore_latest(TrainState& state) LEGW_EXCLUDES(io_mu_);

  // ---- blessing (known-good rollback targets) -------------------------------

  // Marks the checkpoint at `step` blessed (atomic sidecar write). Fails with
  // kNoCheckpoint when no file exists for that step.
  Result bless(i64 step) LEGW_EXCLUDES(io_mu_);
  // Step of the newest blessed checkpoint on disk, or -1 when none.
  i64 newest_blessed_step() LEGW_EXCLUDES(io_mu_);
  // restore_latest restricted to blessed candidates (same skip semantics).
  RestoreOutcome restore_blessed(TrainState& state) LEGW_EXCLUDES(io_mu_);
  // Deletes every UNBLESSED checkpoint with step > `step`. Called after a
  // rollback: files ahead of the rollback target belong to the abandoned
  // (diverged) trajectory, and a crash before the next save must not resume
  // from them.
  void invalidate_after(i64 step) LEGW_EXCLUDES(io_mu_);

 private:
  void apply_retention() LEGW_REQUIRES(io_mu_);

  ManagerConfig config_;
  // Serialises save/retention/restore directory traffic: a retention delete
  // racing a concurrent save_now (e.g. an async checkpoint thread alongside
  // a final shutdown save) must not observe a half-applied directory.
  core::Mutex io_mu_;
};

}  // namespace legw::ckpt
