// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges —
// the per-section integrity check of the checkpoint container. Table-driven,
// byte-at-a-time: checkpoint payloads are megabytes at most and written once
// per cadence, so simplicity beats a slice-by-8 variant here.
#pragma once

#include <array>
#include <cstddef>

#include "core/common.hpp"

namespace legw::ckpt {

namespace detail {
constexpr std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<u32, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

// One-shot CRC of a buffer. For incremental use, pass the previous return
// value as `seed` (the pre/post-conditioning composes correctly).
inline u32 crc32(const void* data, std::size_t n, u32 seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  u32 c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace legw::ckpt
