#include "serve/batcher.hpp"

#include <algorithm>
#include <cstdlib>

namespace legw::serve {

namespace {

i64 env_i64(const char* name, i64 fallback, i64 lo, i64 hi) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const i64 v = std::atoll(env);
  return std::clamp(v, lo, hi);
}

}  // namespace

BatchPolicy BatchPolicy::from_env() {
  BatchPolicy p;
  p.batch_cap = env_i64("LEGW_SERVE_BATCH_CAP", p.batch_cap, 1, 1 << 14);
  p.deadline_ms =
      env_i64("LEGW_SERVE_DEADLINE_MS", p.deadline_ms, 0, 60 * 1000);
  return p;
}

i64 bucket_for(const BatchPolicy& policy, i64 len) {
  LEGW_CHECK(len > 0, "bucket_for: non-positive request length");
  for (i64 b : policy.bucket_lens) {
    if (b >= len) return b;
  }
  return len;  // beyond the largest bucket: exact-length, unshared
}

Batcher::Batcher(BatchPolicy policy) : policy_(std::move(policy)) {
  LEGW_CHECK(policy_.batch_cap > 0, "Batcher: batch_cap must be positive");
  LEGW_CHECK(policy_.deadline_ms >= 0, "Batcher: negative deadline");
  LEGW_CHECK(std::is_sorted(policy_.bucket_lens.begin(),
                            policy_.bucket_lens.end()),
             "Batcher: bucket_lens must be ascending");
}

void Batcher::add(const Pending& p) {
  queues_[bucket_for(policy_, p.length)].push_back(p);
}

i64 Batcher::pending() const {
  i64 n = 0;
  for (const auto& [bucket, q] : queues_) n += static_cast<i64>(q.size());
  return n;
}

i64 Batcher::next_deadline_ms() const {
  i64 earliest = -1;
  for (const auto& [bucket, q] : queues_) {
    if (q.empty()) continue;
    // FIFO queues: the front is the oldest, so it owns the bucket deadline.
    const i64 due = q.front().enqueue_ms + policy_.deadline_ms;
    if (earliest < 0 || due < earliest) earliest = due;
  }
  return earliest;
}

std::vector<BatchPlan> Batcher::pop_ready(i64 now_ms) {
  std::vector<BatchPlan> out;
  for (auto it = queues_.begin(); it != queues_.end();) {
    auto& q = it->second;
    while (!q.empty()) {
      const bool full = static_cast<i64>(q.size()) >= policy_.batch_cap;
      const bool due = q.front().enqueue_ms + policy_.deadline_ms <= now_ms;
      if (!full && !due) break;
      BatchPlan plan;
      plan.bucket_len = it->first;
      plan.reason =
          full ? BatchPlan::Reason::kCapacity : BatchPlan::Reason::kDeadline;
      const i64 take =
          std::min<i64>(policy_.batch_cap, static_cast<i64>(q.size()));
      plan.rows.assign(q.begin(), q.begin() + take);
      q.erase(q.begin(), q.begin() + take);
      out.push_back(std::move(plan));
    }
    it = q.empty() ? queues_.erase(it) : std::next(it);
  }
  return out;
}

std::vector<BatchPlan> Batcher::drain() {
  std::vector<BatchPlan> out;
  for (auto& [bucket, q] : queues_) {
    while (!q.empty()) {
      BatchPlan plan;
      plan.bucket_len = bucket;
      plan.reason = BatchPlan::Reason::kDrain;
      const i64 take =
          std::min<i64>(policy_.batch_cap, static_cast<i64>(q.size()));
      plan.rows.assign(q.begin(), q.begin() + take);
      q.erase(q.begin(), q.begin() + take);
      out.push_back(std::move(plan));
    }
  }
  queues_.clear();
  return out;
}

}  // namespace legw::serve
