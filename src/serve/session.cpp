#include "serve/session.hpp"

#include <algorithm>
#include <utility>

#include "core/kernels.hpp"
#include "mem/alloc.hpp"
#include "obs/trace.hpp"

namespace legw::serve {

namespace {

Result fail(Status status, std::string message) {
  Result r;
  r.status = status;
  r.message = std::move(message);
  return r;
}

// Pulls one named tensor out of the image, shape-checked. The training-side
// dot-joined module path ("transform.weight", "lstm.layer0.bias", ...) is
// the schema; anything absent or misshapen is a kSchemaMismatch.
Result take_param(const ModelImage& image, const std::string& name,
                  const core::Shape& want, core::Tensor* dst) {
  const core::Tensor* src = image.find_param(name);
  if (src == nullptr) {
    return fail(Status::kSchemaMismatch,
                "checkpoint has no parameter '" + name + "'");
  }
  if (src->shape() != want) {
    return fail(Status::kSchemaMismatch,
                "parameter '" + name + "': checkpoint shape " +
                    core::shape_to_string(src->shape()) +
                    " vs session config " + core::shape_to_string(want));
  }
  *dst = *src;
  return {};
}

// y[r, :] += bias — the same loop ag::add_bias runs, so the float op order
// (and therefore the bits) match the training graph.
void add_bias_rows(core::Tensor& y, const core::Tensor& bias) {
  const i64 m = y.size(0);
  const i64 n = y.size(1);
  float* o = y.data();
  const float* bv = bias.data();
  for (i64 r = 0; r < m; ++r) {
    for (i64 c = 0; c < n; ++c) o[r * n + c] += bv[c];
  }
}

// One fused LSTM step, replicating ag::lstm_cell's forward exactly:
// xh = [x | h] row-wise, acts = xh W (no bias — the fused kernel adds it),
// then core::lstm_cell_forward, then h/c copied out of the packed [B, 2H]
// rows the way ag::slice_cols materialises them.
void lstm_step(const core::Tensor& x, const core::Tensor& w,
               const core::Tensor& b, core::Tensor& h, core::Tensor& c) {
  const i64 batch = x.size(0);
  const i64 in_dim = x.size(1);
  const i64 hidden = h.size(1);

  core::Tensor xh = core::Tensor::uninit({batch, in_dim + hidden});
  {
    const float* xp = x.data();
    const float* hp = h.data();
    float* d = xh.data();
    for (i64 r = 0; r < batch; ++r) {
      std::copy(xp + r * in_dim, xp + (r + 1) * in_dim,
                d + r * (in_dim + hidden));
      std::copy(hp + r * hidden, hp + (r + 1) * hidden,
                d + r * (in_dim + hidden) + in_dim);
    }
  }
  core::Tensor acts = core::matmul(xh, w);  // [B, 4H]; kernel consumes it
  core::Tensor hc = core::Tensor::uninit({batch, 2 * hidden});
  core::Tensor tanh_c = core::Tensor::uninit({batch, hidden});  // scratch
  core::lstm_cell_forward(batch, hidden, b.data(), acts.data(), c.data(),
                          hc.data(), tanh_c.data());
  core::Tensor h_new = core::Tensor::uninit({batch, hidden});
  core::Tensor c_new = core::Tensor::uninit({batch, hidden});
  const float* packed = hc.data();
  for (i64 r = 0; r < batch; ++r) {
    std::copy(packed + r * 2 * hidden, packed + r * 2 * hidden + hidden,
              h_new.data() + r * hidden);
    std::copy(packed + r * 2 * hidden + hidden,
              packed + (r + 1) * 2 * hidden, c_new.data() + r * hidden);
  }
  h = std::move(h_new);
  c = std::move(c_new);
}

}  // namespace

Result ServeSession::load_bytes(const SessionConfig& config,
                                const std::string& image,
                                std::unique_ptr<ServeSession>* out) {
  LEGW_CHECK(out != nullptr, "ServeSession::load: null output");
  out->reset();
  ModelImage img;
  Result res = read_model_image_bytes(image, &img);
  if (!res.ok()) return res;

  std::unique_ptr<ServeSession> session(new ServeSession());
  session->config_ = config;
  session->step_ = img.step;
  session->epoch_ = img.epoch;

  if (config.kind == ModelKind::kMnistLstm) {
    const MnistPlanConfig& m = config.mnist;
    session->w_cell_.resize(1);
    session->b_cell_.resize(1);
    const struct {
      const char* name;
      core::Shape shape;
      core::Tensor* dst;
    } schema[] = {
        {"transform.weight", {m.n_cols, m.transform_dim},
         &session->w_transform_},
        {"transform.bias", {m.transform_dim}, &session->b_transform_},
        {"lstm.weight", {m.transform_dim + m.hidden_dim, 4 * m.hidden_dim},
         &session->w_cell_[0]},
        {"lstm.bias", {4 * m.hidden_dim}, &session->b_cell_[0]},
        {"classifier.weight", {m.hidden_dim, m.n_classes}, &session->w_cls_},
        {"classifier.bias", {m.n_classes}, &session->b_cls_},
    };
    for (const auto& entry : schema) {
      res = take_param(img, entry.name, entry.shape, entry.dst);
      if (!res.ok()) return res;
    }
  } else {
    const PtbPlanConfig& p = config.ptb;
    res = take_param(img, "embedding.weight", {p.vocab, p.embed_dim},
                     &session->w_embed_);
    if (!res.ok()) return res;
    session->w_cell_.resize(static_cast<std::size_t>(p.num_layers));
    session->b_cell_.resize(static_cast<std::size_t>(p.num_layers));
    for (i64 l = 0; l < p.num_layers; ++l) {
      const i64 in = l == 0 ? p.embed_dim : p.hidden_dim;
      const std::string prefix = "lstm.layer" + std::to_string(l);
      res = take_param(img, prefix + ".weight",
                       {in + p.hidden_dim, 4 * p.hidden_dim},
                       &session->w_cell_[static_cast<std::size_t>(l)]);
      if (!res.ok()) return res;
      res = take_param(img, prefix + ".bias", {4 * p.hidden_dim},
                       &session->b_cell_[static_cast<std::size_t>(l)]);
      if (!res.ok()) return res;
    }
    if (p.tie_embeddings) {
      res = take_param(img, "tied_bias", {p.vocab}, &session->b_dec_);
      if (!res.ok()) return res;
    } else {
      res = take_param(img, "decoder.weight", {p.hidden_dim, p.vocab},
                       &session->w_dec_);
      if (!res.ok()) return res;
      res = take_param(img, "decoder.bias", {p.vocab}, &session->b_dec_);
      if (!res.ok()) return res;
    }
  }

  *out = std::move(session);
  return {};
}

Result ServeSession::load(const SessionConfig& config,
                          const std::string& ckpt_path,
                          std::unique_ptr<ServeSession>* out) {
  LEGW_CHECK(out != nullptr, "ServeSession::load: null output");
  out->reset();
  std::string image;
  {
    std::FILE* f = std::fopen(ckpt_path.c_str(), "rb");
    if (f == nullptr) {
      return fail(Status::kOpenFailed, "cannot read " + ckpt_path);
    }
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    image.resize(sz < 0 ? 0 : static_cast<std::size_t>(sz));
    const bool ok = image.empty() ||
                    std::fread(image.data(), 1, image.size(), f) ==
                        image.size();
    std::fclose(f);
    if (!ok) return fail(Status::kOpenFailed, "cannot read " + ckpt_path);
  }
  Result res = load_bytes(config, image, out);
  if (!res.ok() && !res.message.empty()) res.message += " (" + ckpt_path + ")";
  return res;
}

i64 ServeSession::request_length(const Request& req) const {
  return config_.kind == ModelKind::kMnistLstm
             ? 1
             : static_cast<i64>(req.tokens.size());
}

i64 ServeSession::output_dim() const {
  return config_.kind == ModelKind::kMnistLstm ? config_.mnist.n_classes
                                               : config_.ptb.vocab;
}

Result ServeSession::validate(const Request& req) const {
  if (config_.kind == ModelKind::kMnistLstm) {
    const i64 want = config_.mnist.n_rows * config_.mnist.n_cols;
    if (static_cast<i64>(req.features.size()) != want) {
      return fail(Status::kInvalidRequest,
                  "mnist request needs " + std::to_string(want) +
                      " features, got " + std::to_string(req.features.size()));
    }
    return {};
  }
  if (req.tokens.empty()) {
    return fail(Status::kInvalidRequest, "ptb request has no tokens");
  }
  for (i32 t : req.tokens) {
    if (t < 0 || t >= config_.ptb.vocab) {
      return fail(Status::kInvalidRequest,
                  "token id " + std::to_string(t) + " outside vocab [0, " +
                      std::to_string(config_.ptb.vocab) + ")");
    }
  }
  return {};
}

Result ServeSession::run_batch(const std::vector<Request>& reqs, i64 pad_len,
                               i64 pad_rows_to, std::vector<Response>* out,
                               mem::StepArena* arena) const {
  LEGW_CHECK(out != nullptr, "run_batch: null output");
  obs::Span span("serve.infer");
  if (reqs.empty()) {
    out->clear();
    return {};
  }
  i64 max_len = 0;
  for (const Request& req : reqs) {
    Result res = validate(req);
    if (!res.ok()) return res;
    max_len = std::max(max_len, request_length(req));
  }
  if (pad_len <= 0) pad_len = max_len;
  if (pad_len < max_len) {
    return fail(Status::kInvalidRequest,
                "pad_len " + std::to_string(pad_len) +
                    " shorter than longest request (" +
                    std::to_string(max_len) + ")");
  }
  const i64 rows = static_cast<i64>(reqs.size());
  const i64 batch = std::max(rows, pad_rows_to);

  out->assign(reqs.size(), Response{});
  for (std::size_t i = 0; i < reqs.size(); ++i) (*out)[i].id = reqs[i].id;

  const auto compute = [&] {
    if (config_.kind == ModelKind::kMnistLstm) {
      forward_mnist(reqs, batch, out);
    } else {
      forward_ptb(reqs, batch, pad_len, out);
    }
  };
  if (arena != nullptr) {
    // Scratch comes from the serving arena (replay-only plan); the responses
    // themselves are heap-rehomed inside the forwards, so nothing escapes
    // the step scope.
    mem::TrainStepScope scope(*arena);
    compute();
  } else {
    compute();
  }
  return {};
}

Response ServeSession::run(const Request& req) const {
  std::vector<Response> out;
  Result res = run_batch({req}, 0, 0, &out);
  if (!res.ok()) {
    Response r;
    r.id = req.id;
    r.status = res.status;
    r.message = std::move(res.message);
    return r;
  }
  return std::move(out.front());
}

void ServeSession::forward_mnist(const std::vector<Request>& reqs, i64 batch,
                                 std::vector<Response>* out) const {
  const MnistPlanConfig& m = config_.mnist;
  const i64 rows = static_cast<i64>(reqs.size());

  core::Tensor h = core::Tensor::zeros({batch, m.hidden_dim});
  core::Tensor c = core::Tensor::zeros({batch, m.hidden_dim});
  for (i64 r = 0; r < m.n_rows; ++r) {
    // Row r of every image, [B, n_cols]; padding rows stay all-zero.
    core::Tensor row = core::Tensor::zeros({batch, m.n_cols});
    for (i64 b = 0; b < rows; ++b) {
      const float* src = reqs[static_cast<std::size_t>(b)].features.data() +
                         r * m.n_cols;
      std::copy(src, src + m.n_cols, row.data() + b * m.n_cols);
    }
    core::Tensor x = core::matmul(row, w_transform_);
    add_bias_rows(x, b_transform_);
    lstm_step(x, w_cell_[0], b_cell_[0], h, c);
  }
  core::Tensor logits = core::matmul(h, w_cls_);
  add_bias_rows(logits, b_cls_);

  // Per-request outputs outlive the step arena: force heap storage.
  mem::HeapBindGuard heap;
  for (i64 b = 0; b < rows; ++b) {
    core::Tensor lg = core::Tensor::uninit({m.n_classes});
    std::copy(logits.data() + b * m.n_classes,
              logits.data() + (b + 1) * m.n_classes, lg.data());
    (*out)[static_cast<std::size_t>(b)].logits = std::move(lg);
  }
}

void ServeSession::forward_ptb(const std::vector<Request>& reqs, i64 batch,
                               i64 pad_len,
                               std::vector<Response>* out) const {
  const PtbPlanConfig& p = config_.ptb;
  const i64 rows = static_cast<i64>(reqs.size());
  const i64 L = p.num_layers;

  std::vector<core::Tensor> h, c;
  for (i64 l = 0; l < L; ++l) {
    h.push_back(core::Tensor::zeros({batch, p.hidden_dim}));
    c.push_back(core::Tensor::zeros({batch, p.hidden_dim}));
  }

  // Top-layer outputs stacked step-major ([t*B + b] rows), exactly like the
  // training graph's ag::concat_rows over per-step outputs.
  core::Tensor stacked = core::Tensor::uninit({pad_len * batch, p.hidden_dim});
  for (i64 t = 0; t < pad_len; ++t) {
    core::Tensor x = core::Tensor::uninit({batch, p.embed_dim});
    for (i64 b = 0; b < batch; ++b) {
      // Positions past a request's length (and whole padding rows) read
      // token 0; their outputs are computed and discarded — a row's valid
      // positions only ever depend on its own earlier tokens.
      i32 tok = 0;
      if (b < rows) {
        const auto& tokens = reqs[static_cast<std::size_t>(b)].tokens;
        if (t < static_cast<i64>(tokens.size())) {
          tok = tokens[static_cast<std::size_t>(t)];
        }
      }
      const float* src = w_embed_.data() + static_cast<i64>(tok) * p.embed_dim;
      std::copy(src, src + p.embed_dim, x.data() + b * p.embed_dim);
    }
    const core::Tensor* layer_in = &x;
    for (i64 l = 0; l < L; ++l) {
      const auto li = static_cast<std::size_t>(l);
      lstm_step(*layer_in, w_cell_[li], b_cell_[li], h[li], c[li]);
      layer_in = &h[li];
    }
    std::copy(layer_in->data(), layer_in->data() + batch * p.hidden_dim,
              stacked.data() + t * batch * p.hidden_dim);
  }

  // Tied softmax shares the embedding matrix: logits = h E^T + b.
  core::Tensor logits =
      p.tie_embeddings
          ? core::matmul(stacked, w_embed_, /*trans_a=*/false,
                         /*trans_b=*/true)
          : core::matmul(stacked, w_dec_);
  add_bias_rows(logits, b_dec_);

  mem::HeapBindGuard heap;
  for (i64 b = 0; b < rows; ++b) {
    const i64 len = request_length(reqs[static_cast<std::size_t>(b)]);
    core::Tensor lg = core::Tensor::uninit({len, p.vocab});
    for (i64 t = 0; t < len; ++t) {
      const float* src = logits.data() + (t * batch + b) * p.vocab;
      std::copy(src, src + p.vocab, lg.data() + t * p.vocab);
    }
    (*out)[static_cast<std::size_t>(b)].logits = std::move(lg);
  }
}

}  // namespace legw::serve
