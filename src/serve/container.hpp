// Standalone checkpoint-container reader for the serving runtime.
//
// The serving path (src/serve) is deliberately tape-free: it links only
// legw_core + legw_mem + legw_obs, never the autograd/nn/ckpt stack
// (tools/lint.py's serve-no-tape rule enforces this statically). ckpt::load
// restores into live nn::Module state and therefore drags the whole training
// graph in, so serving re-reads the same v2 container bytes
// (ckpt/checkpoint.cpp writes them; docs/CHECKPOINT.md has the layout) into
// plain name->tensor maps here, with the identical validation posture: the
// whole file is parsed and every section CRC-checked before anything is
// returned, failures are structured Status values, never aborts.
//
// Serving requires a *full-state* v2 checkpoint: `meta` (provenance),
// `params` and `buffers` (inference-mode BatchNorm needs the running stats a
// v1 parameter-only file does not carry). A v1 file or a v2 container
// missing those sections is rejected with kMissingSection naming exactly
// what is absent.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace legw::serve {

enum class Status {
  kOk,
  kOpenFailed,      // cannot open/read the file
  kTruncated,       // file ends inside a declared header/section
  kBadMagic,        // not a LEGW checkpoint at all
  kBadVersion,      // container version newer than this reader
  kCrcMismatch,     // a section's payload fails its CRC32
  kMalformed,       // implausible lengths/counts (bit-flipped fields)
  kMissingSection,  // v1 file, or v2 container without a serve-required
                    // section; the message names every missing section
  kSchemaMismatch,  // checkpoint disagrees with the session's model config
                    // (missing tensor, wrong shape)
  kInvalidRequest,  // request rejected before batching (bad tokens/shape)
  kUnavailable,     // broker already shut down
};

const char* status_name(Status s);

// [[nodiscard]]: a dropped serve status silently serves a stale or broken
// model image.
struct [[nodiscard]] Result {
  Status status = Status::kOk;
  std::string message;  // empty when ok
  bool ok() const { return status == Status::kOk; }
};

struct NamedTensor {
  std::string name;
  core::Tensor tensor;
};

// Everything serving needs out of a checkpoint: trained parameters,
// non-trainable buffers, and provenance counters. Tensors are heap-owned
// copies of the file bytes (the image outlives any step arena).
struct ModelImage {
  std::vector<NamedTensor> params;   // file order == module registration order
  std::vector<NamedTensor> buffers;
  i64 step = 0;
  i64 epoch = 0;
  std::string optimizer;  // informational ("" when trained without one)

  // nullptr when absent.
  const core::Tensor* find_param(const std::string& name) const;
  const core::Tensor* find_buffer(const std::string& name) const;
};

// Validating reader over a file on disk.
[[nodiscard]] Result read_model_image(const std::string& path,
                                      ModelImage* out);

// Same, over an in-memory byte image — the corruption-corpus tests mutate
// bytes directly and must exercise the identical decode path.
[[nodiscard]] Result read_model_image_bytes(const std::string& image,
                                            ModelImage* out);

}  // namespace legw::serve
