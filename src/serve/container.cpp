#include "serve/container.hpp"

#include <cstdio>
#include <cstring>
#include <map>

#include "ckpt/crc32.hpp"  // header-only CRC; no legw_ckpt link

namespace legw::serve {

namespace {

// Container constants mirrored from ckpt/checkpoint.cpp (the writer). The
// caps reject bit-flipped length fields before they become allocations.
constexpr char kMagicV2[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', '2'};
constexpr char kMagicV1[8] = {'L', 'E', 'G', 'W', 'C', 'K', 'P', 'T'};
constexpr u32 kVersion = 2;
constexpr u32 kMaxNameLen = 1u << 16;
constexpr u64 kMaxNdim = 16;
constexpr u64 kMaxEntries = 1u << 24;
constexpr i64 kMaxDim = 1ll << 32;

Result fail(Status status, std::string message) {
  Result r;
  r.status = status;
  r.message = std::move(message);
  return r;
}

Result truncated(const char* what) {
  return fail(Status::kTruncated,
              std::string("serve checkpoint truncated/malformed in ") + what);
}

// Bounds-checked cursor over the in-memory file image; every read either
// succeeds completely or reports truncation.
struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;

  bool bytes(void* out, std::size_t n) {
    if (n > size - pos) return false;
    std::memcpy(out, data + pos, n);
    pos += n;
    return true;
  }
  template <typename T>
  bool pod(T* v) {
    return bytes(v, sizeof(T));
  }
  bool str(std::string* out) {
    u32 len = 0;
    if (!pod(&len) || len > kMaxNameLen) return false;
    if (len > size - pos) return false;
    out->assign(data + pos, len);
    pos += len;
    return true;
  }
  const char* borrow(std::size_t n) {
    if (n > size - pos) return nullptr;
    const char* p = data + pos;
    pos += n;
    return p;
  }
  std::size_t remaining() const { return size - pos; }
};

// Decodes one `name | ndim | dims | float data` entry into an owned tensor.
bool decode_named_tensor(Reader& r, NamedTensor* out) {
  if (!r.str(&out->name)) return false;
  u64 ndim = 0;
  if (!r.pod(&ndim) || ndim > kMaxNdim) return false;
  core::Shape shape(static_cast<std::size_t>(ndim), 0);
  i64 numel = 1;
  for (u64 d = 0; d < ndim; ++d) {
    i64 dim = 0;
    if (!r.pod(&dim) || dim < 0 || dim > kMaxDim) return false;
    shape[static_cast<std::size_t>(d)] = dim;
    if (dim > 0 && numel > kMaxDim / dim) return false;  // overflow guard
    numel *= dim;
  }
  const char* bytes =
      r.borrow(static_cast<std::size_t>(numel) * sizeof(float));
  if (bytes == nullptr) return false;
  core::Tensor t = core::Tensor::uninit(std::move(shape));
  std::memcpy(t.data(), bytes,
              static_cast<std::size_t>(numel) * sizeof(float));
  out->tensor = std::move(t);
  return true;
}

// Decodes a `u64 count | entries...` named-tensor section payload.
Result decode_tensor_section(Reader r, const char* what,
                             std::vector<NamedTensor>* out) {
  u64 n = 0;
  if (!r.pod(&n) || n > kMaxEntries) return truncated(what);
  out->resize(static_cast<std::size_t>(n));
  for (auto& entry : *out) {
    if (!decode_named_tensor(r, &entry)) return truncated(what);
  }
  return {};
}

const core::Tensor* find_in(const std::vector<NamedTensor>& list,
                            const std::string& name) {
  for (const auto& e : list) {
    if (e.name == name) return &e.tensor;
  }
  return nullptr;
}

bool slurp(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long sz = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(sz < 0 ? 0 : static_cast<std::size_t>(sz));
  const bool ok =
      out->empty() || std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOpenFailed: return "open-failed";
    case Status::kTruncated: return "truncated";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadVersion: return "bad-version";
    case Status::kCrcMismatch: return "crc-mismatch";
    case Status::kMalformed: return "malformed";
    case Status::kMissingSection: return "missing-section";
    case Status::kSchemaMismatch: return "schema-mismatch";
    case Status::kInvalidRequest: return "invalid-request";
    case Status::kUnavailable: return "unavailable";
  }
  return "unknown";
}

const core::Tensor* ModelImage::find_param(const std::string& name) const {
  return find_in(params, name);
}

const core::Tensor* ModelImage::find_buffer(const std::string& name) const {
  return find_in(buffers, name);
}

Result read_model_image_bytes(const std::string& image, ModelImage* out) {
  LEGW_CHECK(out != nullptr, "read_model_image: null output");
  Reader r{image.data(), image.size()};

  char magic[8];
  if (!r.bytes(magic, sizeof magic)) {
    return fail(Status::kTruncated,
                "serve checkpoint shorter than a header");
  }
  if (std::memcmp(magic, kMagicV1, sizeof kMagicV1) == 0) {
    // v1 files carry parameters only. Training can restore them (ckpt::load
    // falls back), but serving needs the meta provenance and the buffer
    // section (BatchNorm running stats), so the failure names exactly what a
    // re-save under the v2 writer would add.
    return fail(Status::kMissingSection,
                "v1 parameter-only checkpoint: serving requires the v2 "
                "sections [meta, buffers]; re-save with ckpt::save");
  }
  if (std::memcmp(magic, kMagicV2, sizeof kMagicV2) != 0) {
    return fail(Status::kBadMagic, "bad magic in serve checkpoint");
  }
  u32 version = 0;
  if (!r.pod(&version)) return truncated("header");
  if (version != kVersion) {
    return fail(Status::kBadVersion,
                "unsupported container version " + std::to_string(version));
  }

  u32 n_sections = 0;
  if (!r.pod(&n_sections) || n_sections > 64) return truncated("header");
  std::map<std::string, Reader> sections;
  for (u32 i = 0; i < n_sections; ++i) {
    std::string name;
    u64 payload_bytes = 0;
    u32 crc = 0;
    if (!r.str(&name) || !r.pod(&payload_bytes) || !r.pod(&crc)) {
      return truncated("section header");
    }
    const char* payload = r.borrow(static_cast<std::size_t>(payload_bytes));
    if (payload == nullptr) {
      return fail(Status::kTruncated,
                  "section '" + name + "' truncated in serve checkpoint");
    }
    if (ckpt::crc32(payload, static_cast<std::size_t>(payload_bytes)) != crc) {
      return fail(Status::kCrcMismatch,
                  "CRC mismatch in section '" + name + "'");
    }
    if (!sections
             .emplace(name,
                      Reader{payload, static_cast<std::size_t>(payload_bytes)})
             .second) {
      return fail(Status::kMalformed, "duplicate section '" + name + "'");
    }
  }
  if (r.remaining() != 0) {
    return fail(Status::kMalformed,
                std::to_string(r.remaining()) +
                    " trailing bytes after last section");
  }

  // Serving requires these three; collect every absence into one message so
  // the operator fixes the file once, not section by section.
  std::string missing;
  for (const char* required : {"meta", "params", "buffers"}) {
    if (sections.find(required) == sections.end()) {
      missing += missing.empty() ? "" : ", ";
      missing += required;
    }
  }
  if (!missing.empty()) {
    return fail(Status::kMissingSection,
                "serve checkpoint missing required sections [" + missing +
                    "]");
  }

  // meta: u32 n_ints | (str key, i64 value)... | u32 n_strs | (key, val)...
  ModelImage staged;
  {
    Reader meta = sections.at("meta");
    u32 n_ints = 0;
    if (!meta.pod(&n_ints) || n_ints > 64) return truncated("meta");
    for (u32 i = 0; i < n_ints; ++i) {
      std::string key;
      i64 value = 0;
      if (!meta.str(&key) || !meta.pod(&value)) return truncated("meta");
      if (key == "step") staged.step = value;
      if (key == "epoch") staged.epoch = value;
    }
    u32 n_strs = 0;
    if (!meta.pod(&n_strs) || n_strs > 64) return truncated("meta");
    for (u32 i = 0; i < n_strs; ++i) {
      std::string key, value;
      if (!meta.str(&key) || !meta.str(&value)) return truncated("meta");
      if (key == "optimizer") staged.optimizer = value;
    }
  }

  Result res =
      decode_tensor_section(sections.at("params"), "params", &staged.params);
  if (!res.ok()) return res;
  res = decode_tensor_section(sections.at("buffers"), "buffers",
                              &staged.buffers);
  if (!res.ok()) return res;
  if (staged.params.empty()) {
    return fail(Status::kSchemaMismatch,
                "serve checkpoint has an empty params section");
  }

  *out = std::move(staged);
  return {};
}

Result read_model_image(const std::string& path, ModelImage* out) {
  std::string image;
  if (!slurp(path, &image)) {
    return fail(Status::kOpenFailed, "cannot read " + path);
  }
  Result res = read_model_image_bytes(image, out);
  if (!res.ok() && !res.message.empty()) res.message += " (" + path + ")";
  return res;
}

}  // namespace legw::serve
