// ServeSession: a checkpoint loaded into an immutable compiled inference
// plan, in the spirit of ONNX Runtime's ort_session.h (ROADMAP item 2).
//
// No tape: the forwards below are raw core::Tensor kernel calls replicating
// the training graph's op order *exactly* — same xh concatenation, same
// core::matmul, same fused core::lstm_cell_forward, same per-row bias add —
// so a served forward is bitwise equal to the training graph's eval forward
// for the same checkpoint. Combined with the gemm determinism contract
// (every output row is reduced by one thread in ascending-k order, so a
// row's value is independent of which other rows share its batch), each
// request's result is also bitwise-invariant under dynamic batching: padding
// rows, padding sequence positions, and batch composition cannot perturb it.
// tests/test_serve_session.cpp proves both properties on mnist and ptb.
//
// Dropout is inference-mode by construction (there is simply no dropout op
// here), matching nn::Module::set_training(false) on the training side.
//
// Memory: run_batch may be given a mem::StepArena in replay-only mode; the
// first batch of a given (rows, sequence) shape records the step's buffer
// plan and every later batch of that shape replays it in place — the
// serving twin of the training arena. Per-request outputs are heap-owned
// (they outlive the step).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor.hpp"
#include "serve/container.hpp"

namespace legw::mem {
class StepArena;
}

namespace legw::serve {

enum class ModelKind {
  kMnistLstm,  // models::MnistLstm checkpoints: [784] pixels -> [10] logits
  kPtbLm,      // models::PtbModel checkpoints: token ids -> per-position
               // vocabulary logits, fresh zero state per request
};

struct MnistPlanConfig {
  i64 transform_dim = 128;
  i64 hidden_dim = 128;
  i64 n_rows = 28;
  i64 n_cols = 28;
  i64 n_classes = 10;
};

struct PtbPlanConfig {
  i64 vocab = 1000;
  i64 embed_dim = 128;
  i64 hidden_dim = 128;
  i64 num_layers = 2;
  bool tie_embeddings = false;
};

struct SessionConfig {
  ModelKind kind = ModelKind::kMnistLstm;
  MnistPlanConfig mnist;  // read when kind == kMnistLstm
  PtbPlanConfig ptb;      // read when kind == kPtbLm
};

// One inference request. kMnistLstm reads `features` ([rows*cols] pixels);
// kPtbLm reads `tokens` (a non-empty id sequence, each in [0, vocab)).
struct Request {
  u64 id = 0;  // caller's correlation id, echoed on the response
  std::vector<float> features;
  std::vector<i32> tokens;
};

struct Response {
  u64 id = 0;
  Status status = Status::kOk;
  std::string message;      // non-empty on failure
  core::Tensor logits;      // mnist: [n_classes]; ptb: [tokens, vocab]
  i64 enqueue_ns = 0;       // broker timestamps (steady clock); latency =
  i64 done_ns = 0;          // done_ns - enqueue_ns. Zero on direct run().
};

class ServeSession {
 public:
  // Loads and schema-validates `ckpt_path` against `config`. On failure the
  // session pointer is left null and the Result says why (structured Status,
  // never an abort). The returned session is immutable and safe to share
  // across broker worker threads.
  [[nodiscard]] static Result load(const SessionConfig& config,
                                   const std::string& ckpt_path,
                                   std::unique_ptr<ServeSession>* out);
  // Same, over in-memory container bytes (tests).
  [[nodiscard]] static Result load_bytes(const SessionConfig& config,
                                         const std::string& image,
                                         std::unique_ptr<ServeSession>* out);

  const SessionConfig& config() const { return config_; }
  i64 checkpoint_step() const { return step_; }
  i64 checkpoint_epoch() const { return epoch_; }
  // Rows of a response's logits: 1 for mnist, tokens.size() for ptb.
  i64 request_length(const Request& req) const;
  // Logit columns: n_classes for mnist, vocab for ptb.
  i64 output_dim() const;

  // Rejects malformed requests (wrong feature count, empty/out-of-range
  // tokens) before they reach a batch.
  [[nodiscard]] Result validate(const Request& req) const;

  // Runs `reqs` as ONE padded batch. Sequences are padded to `pad_len`
  // positions (ptb; pass the bucket length, or 0 for the batch max) and the
  // batch is padded with all-zero rows up to `pad_rows_to` rows (0 = no row
  // padding) — stable shapes are what make an arena plan replayable. Padding
  // never changes any real request's logits (row invariance above).
  //
  // `arena` may be null; when given it must not be shared with a concurrent
  // run_batch call (the broker keeps one per worker per bucket). Thread-safe
  // otherwise: weights are immutable, scratch is per-call.
  //
  // Every request must already pass validate(); run_batch checks and fails
  // the whole batch otherwise (the broker rejects at submit, so a failure
  // here is a caller bug, reported not aborted).
  [[nodiscard]] Result run_batch(const std::vector<Request>& reqs,
                                 i64 pad_len, i64 pad_rows_to,
                                 std::vector<Response>* out,
                                 mem::StepArena* arena = nullptr) const;

  // Convenience: one request, no padding, no arena.
  Response run(const Request& req) const;

 private:
  ServeSession() = default;

  void forward_mnist(const std::vector<Request>& reqs, i64 batch,
                     std::vector<Response>* out) const;
  void forward_ptb(const std::vector<Request>& reqs, i64 batch, i64 pad_len,
                   std::vector<Response>* out) const;

  SessionConfig config_;
  i64 step_ = 0;
  i64 epoch_ = 0;

  // kMnistLstm weights (training-side names in comments).
  core::Tensor w_transform_;  // transform.weight  [n_cols, transform_dim]
  core::Tensor b_transform_;  // transform.bias    [transform_dim]
  core::Tensor w_cls_;        // classifier.weight [hidden, n_classes]
  core::Tensor b_cls_;        // classifier.bias   [n_classes]

  // Shared LSTM stack: mnist has one cell ("lstm.weight"), ptb has
  // "lstm.layer<l>.weight" per layer. Gate order (i,f,g,o).
  std::vector<core::Tensor> w_cell_;  // [in+hidden, 4*hidden] per layer
  std::vector<core::Tensor> b_cell_;  // [4*hidden] per layer

  // kPtbLm weights.
  core::Tensor w_embed_;  // embedding.weight [vocab, embed_dim]
  core::Tensor w_dec_;    // decoder.weight [hidden, vocab] (untied)
  core::Tensor b_dec_;    // decoder.bias [vocab], or tied_bias [vocab]
};

}  // namespace legw::serve
