// Deadline-aware padded-bucket dynamic batching policy.
//
// The broker's worker threads coalesce concurrent requests into batches the
// same way large-batch training amortises step cost over rows: throughput
// comes from batching, provided per-request results stay exactly what a
// batch-of-one would produce (the gemm determinism contract makes every row
// of a batch independent of its neighbours, so padding and coalescing are
// bitwise-invisible — tests/test_serve_session.cpp holds that line).
//
// The policy itself is a pure, single-threaded state machine over an
// explicit millisecond clock — no threads, no wall time — so its invariants
// are property-testable under a seeded arrival schedule:
//   * every accepted request appears in exactly one emitted batch,
//   * a request is padded to the smallest bucket >= its length,
//   * batches within a bucket are FIFO and never exceed batch_cap,
//   * after pop_ready(now), no pending request is past its deadline.
// The broker (serve/broker.hpp) drives it under a mutex with a steady clock.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "core/common.hpp"

namespace legw::serve {

struct BatchPolicy {
  i64 batch_cap = 16;    // max rows per batch (LEGW_SERVE_BATCH_CAP)
  i64 deadline_ms = 5;   // max queue wait; 0 = flush on every worker wake
                         // (LEGW_SERVE_DEADLINE_MS)
  // Padded sequence-length buckets, ascending. A request of length L lands
  // in the smallest bucket >= L; lengths beyond the largest bucket get an
  // exact-length bucket of their own (correct, just unshared).
  std::vector<i64> bucket_lens = {16, 32, 64, 128};

  // batch_cap/deadline_ms from the environment knobs, defaults otherwise.
  static BatchPolicy from_env();
};

// The padded length a request of length `len` is batched under.
i64 bucket_for(const BatchPolicy& policy, i64 len);

// One queued request, identified by the broker's internal ticket.
struct Pending {
  u64 ticket = 0;
  i64 length = 0;      // sequence length (1 for fixed-shape models)
  i64 enqueue_ms = 0;  // on the caller's clock
};

struct BatchPlan {
  enum class Reason {
    kCapacity,  // a bucket reached batch_cap
    kDeadline,  // the bucket's oldest request aged past deadline_ms
    kDrain,     // shutdown flush
  };
  i64 bucket_len = 0;  // pad every row's sequence to this length
  Reason reason = Reason::kCapacity;
  std::vector<Pending> rows;  // FIFO within the bucket, <= batch_cap
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy);

  const BatchPolicy& policy() const { return policy_; }

  // Queues a request under bucket_for(policy, p.length).
  void add(const Pending& p);

  i64 pending() const;
  bool empty() const { return pending() == 0; }

  // Earliest enqueue_ms + deadline_ms over all pending requests, or -1 when
  // none are queued — the broker's cv wait_until horizon.
  i64 next_deadline_ms() const;

  // Every batch due at `now_ms`: full buckets first (kCapacity), then any
  // bucket whose oldest request has waited >= deadline_ms (kDeadline, up to
  // batch_cap rows). Buckets are visited in ascending bucket_len and rows
  // leave FIFO, so the composition is a deterministic function of the
  // add/pop event sequence.
  std::vector<BatchPlan> pop_ready(i64 now_ms);

  // Everything still queued, as <= batch_cap FIFO batches (kDrain).
  std::vector<BatchPlan> drain();

 private:
  BatchPolicy policy_;
  std::map<i64, std::deque<Pending>> queues_;  // bucket_len -> FIFO
};

}  // namespace legw::serve
