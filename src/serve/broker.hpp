// RequestBroker: multi-threaded front door of the serving runtime.
//
// submit() validates a request, stamps it into the Batcher, and returns a
// future; worker threads wake on capacity or deadline (Batcher::pop_ready
// under the broker mutex), claim the batch's requests, and execute them
// OUTSIDE the lock via ServeSession::run_batch, so inference never blocks
// enqueue. Shutdown drains: every request accepted before shutdown() gets
// exactly one response (kDrain batches), and submits after it resolve
// immediately with Status::kUnavailable.
//
// Batches are padded to stable shapes (rows up to batch_cap, sequences to
// the bucket length) so each worker can keep one replay-only mem::StepArena
// per bucket: the first batch of a bucket records the step plan, every later
// one replays it in place. Padding is bitwise-invisible to real rows (see
// serve/session.hpp).
//
// Observability: spans serve.enqueue / serve.batch / serve.infer, and
// process-global serve.* counters registered with the obs recorder via
// obs::register_counter_source — they ride along in every counters()
// snapshot and telemetry JSONL line, tracing enabled or not.
#pragma once

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/mutex.hpp"
#include "mem/arena.hpp"
#include "serve/batcher.hpp"
#include "serve/session.hpp"

namespace legw::serve {

struct BrokerConfig {
  BatchPolicy policy = BatchPolicy::from_env();
  int workers = 2;
  // Pad every batch with zero rows up to policy.batch_cap. Costs flops on
  // partial batches but gives each (worker, bucket) a single step shape, so
  // the replay-only arena plan always hits after the first batch.
  bool pad_rows_to_cap = true;
  // Give each worker a replay-only StepArena per bucket. Engages only when
  // the process allocator is in arena mode (LEGW_ALLOC=arena); a no-op
  // otherwise, exactly like the training-side TrainStepScope.
  bool use_arena = true;
};

// Snapshot of the process-global serve counters (all brokers, all time).
struct BrokerCounters {
  i64 requests = 0;           // accepted submits
  i64 rejected = 0;           // invalid or post-shutdown submits
  i64 responses = 0;          // futures resolved with a computed result
  i64 batches = 0;            // executed batches
  i64 batch_rows = 0;         // real request rows across executed batches
  i64 pad_rows = 0;           // zero rows added by pad_rows_to_cap
  i64 capacity_batches = 0;   // popped because a bucket hit batch_cap
  i64 deadline_batches = 0;   // popped because the oldest row aged out
  i64 drain_batches = 0;      // flushed by shutdown
};

class RequestBroker {
 public:
  // `session` must outlive the broker and is shared read-only by all
  // workers. Registers the serve.* counter source on first construction.
  explicit RequestBroker(const ServeSession& session, BrokerConfig config = {});
  ~RequestBroker();  // shutdown()
  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;

  // Never blocks on inference. Invalid requests and submits after shutdown
  // resolve immediately (kInvalidRequest / kUnavailable); accepted requests
  // resolve when their batch executes. Response.enqueue_ns/done_ns are
  // steady-clock stamps for latency accounting.
  std::future<Response> submit(Request req) LEGW_EXCLUDES(mu_);

  // Drains every accepted request, joins the workers. Idempotent; called by
  // the destructor. After it returns all futures are resolved.
  void shutdown() LEGW_EXCLUDES(mu_);

  const BrokerConfig& config() const { return config_; }

  static BrokerCounters counters();

 private:
  struct Waiting {
    Request req;
    std::promise<Response> promise;
    i64 enqueue_ns = 0;
  };
  struct Claimed {
    BatchPlan plan;
    std::vector<Request> reqs;
    std::vector<std::promise<Response>> promises;
    std::vector<i64> enqueue_ns;
  };

  void worker_loop(std::size_t worker_index) LEGW_EXCLUDES(mu_);
  void execute(std::size_t worker_index, Claimed batch);
  i64 now_ms() const;

  const ServeSession& session_;
  const BrokerConfig config_;
  const std::chrono::steady_clock::time_point epoch_;

  core::Mutex mu_;
  core::CondVar cv_;  // wakes workers on new requests, deadlines, shutdown
  Batcher batcher_ LEGW_GUARDED_BY(mu_);
  std::map<u64, Waiting> waiting_ LEGW_GUARDED_BY(mu_);  // ticket -> promise
  u64 next_ticket_ LEGW_GUARDED_BY(mu_) = 1;
  bool stop_ LEGW_GUARDED_BY(mu_) = false;
  bool joined_ LEGW_GUARDED_BY(mu_) = false;

  // One replay-only arena per (worker, bucket_len); workers never share one.
  std::vector<std::map<i64, std::unique_ptr<mem::StepArena>>> arenas_;

  // lint-allow: raw-thread — workers block on a condition variable, which
  // the ThreadPool's task model cannot express; shutdown() joins them all.
  std::vector<std::thread> workers_;
};

}  // namespace legw::serve
