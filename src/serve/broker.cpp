#include "serve/broker.hpp"

#include <atomic>
#include <utility>

#include "mem/alloc.hpp"
#include "obs/trace.hpp"

namespace legw::serve {

namespace {

// Process-global serve.* counters: relaxed atomics bumped on the hot path,
// snapshotted by the obs counter source. Global (not per-broker) so the
// telemetry stream has one namespace regardless of broker lifetimes.
struct AtomicCounters {
  std::atomic<i64> requests{0};
  std::atomic<i64> rejected{0};
  std::atomic<i64> responses{0};
  std::atomic<i64> batches{0};
  std::atomic<i64> batch_rows{0};
  std::atomic<i64> pad_rows{0};
  std::atomic<i64> capacity_batches{0};
  std::atomic<i64> deadline_batches{0};
  std::atomic<i64> drain_batches{0};
};

AtomicCounters& counts() {
  static AtomicCounters c;
  return c;
}

void serve_counter_source(std::map<std::string, i64>& out) {
  const AtomicCounters& c = counts();
  out["serve.requests"] = c.requests.load(std::memory_order_relaxed);
  out["serve.rejected"] = c.rejected.load(std::memory_order_relaxed);
  out["serve.responses"] = c.responses.load(std::memory_order_relaxed);
  out["serve.batches"] = c.batches.load(std::memory_order_relaxed);
  out["serve.batch_rows"] = c.batch_rows.load(std::memory_order_relaxed);
  out["serve.pad_rows"] = c.pad_rows.load(std::memory_order_relaxed);
  out["serve.capacity_batches"] =
      c.capacity_batches.load(std::memory_order_relaxed);
  out["serve.deadline_batches"] =
      c.deadline_batches.load(std::memory_order_relaxed);
  out["serve.drain_batches"] =
      c.drain_batches.load(std::memory_order_relaxed);
}

void bump(std::atomic<i64>& c, i64 by = 1) {
  c.fetch_add(by, std::memory_order_relaxed);
}

i64 steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Response immediate_failure(u64 id, Status status, std::string message) {
  Response r;
  r.id = id;
  r.status = status;
  r.message = std::move(message);
  const i64 now = steady_ns();
  r.enqueue_ns = now;
  r.done_ns = now;
  return r;
}

}  // namespace

RequestBroker::RequestBroker(const ServeSession& session, BrokerConfig config)
    : session_(session),
      config_(std::move(config)),
      epoch_(std::chrono::steady_clock::now()),
      batcher_(config_.policy) {
  LEGW_CHECK(config_.workers > 0, "RequestBroker: needs at least one worker");
  // Magic-static init is the C++11 call_once: the first broker registers the
  // counter source, later ones skip (registration is idempotent anyway).
  [[maybe_unused]] static const bool kSourceRegistered = [] {
    obs::register_counter_source(&serve_counter_source);
    return true;
  }();
  arenas_.resize(static_cast<std::size_t>(config_.workers));
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    // lint-allow: raw-thread — dedicated long-lived workers, joined by
    // shutdown(); the core pool is for data-parallel kernels, not services.
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

RequestBroker::~RequestBroker() { shutdown(); }

i64 RequestBroker::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::future<Response> RequestBroker::submit(Request req) {
  obs::Span span("serve.enqueue");
  const i64 enqueue_ns = steady_ns();
  Result valid = session_.validate(req);
  if (!valid.ok()) {
    bump(counts().rejected);
    std::promise<Response> p;
    p.set_value(
        immediate_failure(req.id, valid.status, std::move(valid.message)));
    return p.get_future();
  }
  std::future<Response> fut;
  {
    core::MutexLock lk(mu_);
    if (stop_) {
      bump(counts().rejected);
      std::promise<Response> p;
      p.set_value(immediate_failure(req.id, Status::kUnavailable,
                                    "broker is shut down"));
      return p.get_future();
    }
    const u64 ticket = next_ticket_++;
    Waiting& w = waiting_[ticket];
    w.enqueue_ns = enqueue_ns;
    fut = w.promise.get_future();
    const i64 length = session_.request_length(req);
    w.req = std::move(req);
    batcher_.add(Pending{ticket, length, now_ms()});
    bump(counts().requests);
  }
  cv_.notify_all();
  return fut;
}

void RequestBroker::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::vector<BatchPlan> plans;
    bool draining = false;
    {
      core::MutexLock lk(mu_);
      for (;;) {
        if (stop_) {
          plans = batcher_.drain();
          draining = true;
          break;
        }
        plans = batcher_.pop_ready(now_ms());
        if (!plans.empty()) break;
        const i64 due = batcher_.next_deadline_ms();
        if (due < 0) {
          cv_.wait(mu_);
        } else {
          cv_.wait_until(mu_, epoch_ + std::chrono::milliseconds(due));
        }
      }
      if (draining && plans.empty()) return;
      // Claim the plans' requests while still holding the lock, so no two
      // workers ever own the same ticket.
      std::vector<Claimed> claimed;
      claimed.reserve(plans.size());
      for (BatchPlan& plan : plans) {
        Claimed c;
        c.reqs.reserve(plan.rows.size());
        c.promises.reserve(plan.rows.size());
        c.enqueue_ns.reserve(plan.rows.size());
        for (const Pending& row : plan.rows) {
          auto it = waiting_.find(row.ticket);
          LEGW_CHECK(it != waiting_.end(),
                     "broker: batched ticket has no waiting entry");
          c.reqs.push_back(std::move(it->second.req));
          c.promises.push_back(std::move(it->second.promise));
          c.enqueue_ns.push_back(it->second.enqueue_ns);
          waiting_.erase(it);
        }
        c.plan = std::move(plan);
        claimed.push_back(std::move(c));
      }
      lk.unlock();
      for (Claimed& c : claimed) execute(worker_index, std::move(c));
    }
    // Drain batches were executed above; the next iteration observes stop_
    // with an empty batcher and returns.
  }
}

void RequestBroker::execute(std::size_t worker_index, Claimed batch) {
  obs::Span span("serve.batch");
  const i64 rows = static_cast<i64>(batch.reqs.size());
  const i64 pad_rows_to =
      config_.pad_rows_to_cap ? config_.policy.batch_cap : 0;

  mem::StepArena* arena = nullptr;
  if (config_.use_arena) {
    auto& slot = arenas_[worker_index][batch.plan.bucket_len];
    if (slot == nullptr) {
      slot = std::make_unique<mem::StepArena>(
          "serve.w" + std::to_string(worker_index) + ".b" +
          std::to_string(batch.plan.bucket_len));
      slot->set_replay_only(true);
    }
    arena = slot.get();
  }

  std::vector<Response> responses;
  Result res = session_.run_batch(batch.reqs, batch.plan.bucket_len,
                                  pad_rows_to, &responses, arena);
  const i64 done = steady_ns();
  if (!res.ok()) {
    for (std::size_t i = 0; i < batch.promises.size(); ++i) {
      batch.promises[i].set_value(immediate_failure(
          batch.reqs[i].id, res.status, res.message));
    }
    return;
  }

  bump(counts().batches);
  bump(counts().batch_rows, rows);
  if (pad_rows_to > rows) bump(counts().pad_rows, pad_rows_to - rows);
  switch (batch.plan.reason) {
    case BatchPlan::Reason::kCapacity: bump(counts().capacity_batches); break;
    case BatchPlan::Reason::kDeadline: bump(counts().deadline_batches); break;
    case BatchPlan::Reason::kDrain: bump(counts().drain_batches); break;
  }
  bump(counts().responses, rows);

  for (std::size_t i = 0; i < batch.promises.size(); ++i) {
    responses[i].enqueue_ns = batch.enqueue_ns[i];
    responses[i].done_ns = done;
    batch.promises[i].set_value(std::move(responses[i]));
  }
}

void RequestBroker::shutdown() {
  {
    core::MutexLock lk(mu_);
    if (joined_) return;
    stop_ = true;
  }
  cv_.notify_all();
  // lint-allow: raw-thread — joining the broker's own workers (see ctor)
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    core::MutexLock lk(mu_);
    joined_ = true;
    LEGW_CHECK(waiting_.empty(), "broker: shutdown left unresolved requests");
  }
}

BrokerCounters RequestBroker::counters() {
  const AtomicCounters& c = counts();
  BrokerCounters out;
  out.requests = c.requests.load(std::memory_order_relaxed);
  out.rejected = c.rejected.load(std::memory_order_relaxed);
  out.responses = c.responses.load(std::memory_order_relaxed);
  out.batches = c.batches.load(std::memory_order_relaxed);
  out.batch_rows = c.batch_rows.load(std::memory_order_relaxed);
  out.pad_rows = c.pad_rows.load(std::memory_order_relaxed);
  out.capacity_batches = c.capacity_batches.load(std::memory_order_relaxed);
  out.deadline_batches = c.deadline_batches.load(std::memory_order_relaxed);
  out.drain_batches = c.drain_batches.load(std::memory_order_relaxed);
  return out;
}

}  // namespace legw::serve
