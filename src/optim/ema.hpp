// Exponential moving average of model weights (Polyak-style averaging) —
// the standard variance-reduction companion to large-batch training: the
// EMA weights are evaluated, the raw weights keep training.
#pragma once

#include <vector>

#include "ag/variable.hpp"

namespace legw::optim {

class EmaWeights {
 public:
  // Captures the current parameter values as the initial average.
  EmaWeights(std::vector<ag::Variable> params, float decay = 0.999f);

  // shadow = decay * shadow + (1 - decay) * current. Call after each step.
  void update();

  // Swaps the live weights with the shadow average (call again to swap
  // back). The typical pattern: swap -> evaluate -> swap.
  void swap();

  float decay() const { return decay_; }
  const std::vector<core::Tensor>& shadow() const { return shadow_; }
  // Write access for checkpoint restore: the shadow average is training
  // state a resume must reproduce exactly (ckpt/checkpoint.hpp).
  std::vector<core::Tensor>& mutable_shadow() { return shadow_; }

 private:
  std::vector<ag::Variable> params_;
  std::vector<core::Tensor> shadow_;
  float decay_;
};

}  // namespace legw::optim
