#include "optim/optimizer.hpp"

#include <cmath>

#include "check/check.hpp"

namespace legw::optim {

using core::Tensor;

void Optimizer::step() {
  apply_step();
  ++steps_done_;
  if (check::tripwires_enabled()) {
    const std::string context = name() + ".step " + std::to_string(steps_done_);
    for (std::size_t i = 0; i < params_.size(); ++i) {
      check::assert_finite(params_[i].value(),
                           "param[" + std::to_string(i) + "].value", context);
    }
  }
}

namespace {
// Lazily sizes a per-parameter state vector to match params.
void ensure_state(std::vector<Tensor>& state,
                  const std::vector<ag::Variable>& params) {
  if (!state.empty()) return;
  state.reserve(params.size());
  for (const auto& p : params) state.push_back(Tensor::zeros(p.shape()));
}
}  // namespace

Optimizer::StateView Optimizer::state_entries() {
  StateView view;
  view.scalars.push_back({"steps_done", &steps_done_});
  append_state(view);
  return view;
}

void Optimizer::append_tensor_state(StateView& view, const char* prefix,
                                    std::vector<Tensor>& state) {
  ensure_state(state, params_);
  for (std::size_t i = 0; i < state.size(); ++i) {
    view.tensors.push_back(
        {std::string(prefix) + "[" + std::to_string(i) + "]", &state[i]});
  }
}

void Momentum::append_state(StateView& view) {
  append_tensor_state(view, "velocity", velocity_);
}

void Nesterov::append_state(StateView& view) {
  append_tensor_state(view, "velocity", velocity_);
}

void Adagrad::append_state(StateView& view) {
  append_tensor_state(view, "accum", accum_);
}

void RmsProp::append_state(StateView& view) {
  append_tensor_state(view, "sq_avg", sq_avg_);
}

void Adam::append_state(StateView& view) {
  append_tensor_state(view, "m", m_);
  append_tensor_state(view, "v", v_);
  view.scalars.push_back({"t", &t_});
}

void Adadelta::append_state(StateView& view) {
  append_tensor_state(view, "sq_grad_avg", sq_grad_avg_);
  append_tensor_state(view, "sq_delta_avg", sq_delta_avg_);
}

void Lars::append_state(StateView& view) {
  append_tensor_state(view, "velocity", velocity_);
}

void Lamb::append_state(StateView& view) {
  append_tensor_state(view, "m", m_);
  append_tensor_state(view, "v", v_);
  view.scalars.push_back({"t", &t_});
}

const Tensor& Optimizer::effective_grad(std::size_t i,
                                        Tensor& scratch) const {
  const ag::Variable& p = params_[i];
  if (weight_decay_ == 0.0f) return p.grad();
  scratch = p.grad();
  scratch.add_(p.value(), weight_decay_);
  return scratch;
}

void Sgd::apply_step() {
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    params_[i].mutable_value().add_(g, -lr_);
  }
}

void Momentum::apply_step() {
  ensure_state(velocity_, params_);
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& v = velocity_[i];
    v.scale_(momentum_).add_(g);
    params_[i].mutable_value().add_(v, -lr_);
  }
}

void Nesterov::apply_step() {
  ensure_state(velocity_, params_);
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& v = velocity_[i];
    v.scale_(momentum_).add_(g);
    // Look-ahead step: g + m * v.
    Tensor upd = g;
    upd.add_(v, momentum_);
    params_[i].mutable_value().add_(upd, -lr_);
  }
}

void Adagrad::apply_step() {
  ensure_state(accum_, params_);
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& acc = accum_[i];
    Tensor& w = params_[i].mutable_value();
    for (i64 j = 0; j < g.numel(); ++j) {
      acc[j] += g[j] * g[j];
      w[j] -= lr_ * g[j] / (std::sqrt(acc[j]) + eps_);
    }
  }
}

void RmsProp::apply_step() {
  ensure_state(sq_avg_, params_);
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& acc = sq_avg_[i];
    Tensor& w = params_[i].mutable_value();
    for (i64 j = 0; j < g.numel(); ++j) {
      acc[j] = rho_ * acc[j] + (1.0f - rho_) * g[j] * g[j];
      w[j] -= lr_ * g[j] / std::sqrt(acc[j] + eps_);
    }
  }
}

void Adam::apply_step() {
  ensure_state(m_, params_);
  ensure_state(v_, params_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& w = params_[i].mutable_value();
    for (i64 j = 0; j < g.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adadelta::apply_step() {
  ensure_state(sq_grad_avg_, params_);
  ensure_state(sq_delta_avg_, params_);
  Tensor scratch;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = effective_grad(i, scratch);
    Tensor& eg = sq_grad_avg_[i];
    Tensor& ed = sq_delta_avg_[i];
    Tensor& w = params_[i].mutable_value();
    for (i64 j = 0; j < g.numel(); ++j) {
      eg[j] = rho_ * eg[j] + (1.0f - rho_) * g[j] * g[j];
      const float delta =
          -std::sqrt((ed[j] + eps_) / (eg[j] + eps_)) * g[j];
      ed[j] = rho_ * ed[j] + (1.0f - rho_) * delta * delta;
      w[j] += lr_ * delta;
    }
  }
}

void Lars::apply_step() {
  ensure_state(velocity_, params_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const ag::Variable& p = params_[i];
    const Tensor& g = p.grad();
    const float w_norm = p.value().l2_norm();
    const float g_norm = g.l2_norm();
    // Trust ratio. Parameters with zero norm (fresh biases) fall back to the
    // plain gradient direction with ratio 1.
    float local_lr = 1.0f;
    if (w_norm > 0.0f && g_norm > 0.0f) {
      local_lr = eta_ * w_norm / (g_norm + weight_decay_ * w_norm + eps_);
    }
    Tensor& v = velocity_[i];
    Tensor& w = params_[i].mutable_value();
    const float coeff = lr_ * local_lr;
    for (i64 j = 0; j < g.numel(); ++j) {
      v[j] = momentum_ * v[j] + coeff * (g[j] + weight_decay_ * w[j]);
      w[j] -= v[j];
    }
  }
}

void Lamb::apply_step() {
  ensure_state(m_, params_);
  ensure_state(v_, params_);
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor& g = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    Tensor& w = params_[i].mutable_value();
    Tensor update(w.shape());
    for (i64 j = 0; j < g.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      update[j] = mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[j];
    }
    const float w_norm = w.l2_norm();
    const float u_norm = update.l2_norm();
    // Trust ratio; falls back to 1 for zero-norm layers (fresh biases).
    const float trust =
        (w_norm > 0.0f && u_norm > 0.0f) ? w_norm / u_norm : 1.0f;
    w.add_(update, -lr_ * trust);
  }
}

float global_grad_norm(const std::vector<ag::Variable>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    const float n = p.grad().l2_norm();
    total += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(total));
}

float clip_grad_norm(const std::vector<ag::Variable>& params, float max_norm) {
  const float norm = global_grad_norm(params);
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      ag::Variable handle = p;  // Variables are cheap shared handles
      handle.mutable_grad().scale_(scale);
    }
  }
  return norm;
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          std::vector<ag::Variable> params,
                                          float weight_decay) {
  if (name == "sgd") return std::make_unique<Sgd>(std::move(params), weight_decay);
  if (name == "momentum")
    return std::make_unique<Momentum>(std::move(params), 0.9f, weight_decay);
  if (name == "nesterov")
    return std::make_unique<Nesterov>(std::move(params), 0.9f, weight_decay);
  if (name == "adagrad")
    return std::make_unique<Adagrad>(std::move(params), 1e-10f, weight_decay);
  if (name == "rmsprop")
    return std::make_unique<RmsProp>(std::move(params), 0.9f, 1e-8f,
                                     weight_decay);
  if (name == "adam")
    return std::make_unique<Adam>(std::move(params), 0.9f, 0.999f, 1e-8f,
                                  weight_decay);
  if (name == "adadelta")
    return std::make_unique<Adadelta>(std::move(params), 0.95f, 1e-6f,
                                      weight_decay);
  if (name == "lars")
    return std::make_unique<Lars>(std::move(params), 0.001f, 0.9f,
                                  weight_decay == 0.0f ? 1e-4f : weight_decay);
  if (name == "lamb")
    return std::make_unique<Lamb>(std::move(params), 0.9f, 0.999f, 1e-6f,
                                  weight_decay == 0.0f ? 0.01f : weight_decay);
  LEGW_CHECK(false, "unknown optimizer: " + name);
  return nullptr;
}

}  // namespace legw::optim
