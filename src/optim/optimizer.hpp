// Optimizer suite.
//
// The paper evaluates seven first-order solvers (SGD, Momentum, Nesterov,
// Adagrad, RMSprop, Adam, Adadelta) and uses LARS for the large-batch
// ImageNet/PTB-large runs. All are implemented against a common interface:
// the trainer sets the learning rate each step from an sched::LrSchedule and
// calls step().
//
// Weight decay is classic L2 regularisation folded into the gradient before
// the solver-specific update (this is what the 2017-2019 large-batch papers
// used — not decoupled AdamW-style decay). LARS applies it inside the trust
// ratio as in You et al. 2017.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ag/variable.hpp"

namespace legw::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params, float weight_decay = 0.0f)
      : params_(std::move(params)), weight_decay_(weight_decay) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  float weight_decay() const { return weight_decay_; }

  // Applies one update from the accumulated gradients. Does not zero grads.
  // When the non-finite tripwires are armed (check::tripwires_enabled()),
  // every parameter is scanned after the update and a NaN/Inf aborts naming
  // the optimizer, the parameter index and the step count — the LARS/LAMB
  // trust ratios are exactly the kind of per-layer state that degenerates
  // silently otherwise.
  void step();
  virtual std::string name() const = 0;

  // Number of completed step() calls.
  i64 steps() const { return steps_done_; }

  // --- checkpoint introspection ---------------------------------------------
  // Every piece of solver state that must survive a crash for the resumed
  // trajectory to be bitwise identical: per-parameter buffers (momentum
  // velocities, Adam moments, Adagrad accumulators, ...) and scalar counters
  // (completed steps, Adam/LAMB bias-correction time). Names are stable per
  // solver ("velocity[3]", "m[0]", "t", ...), so a checkpoint written by one
  // optimizer instance restores into a freshly constructed one of the same
  // type. Calling state_entries() materialises lazily-allocated buffers
  // first, so restoring into a never-stepped optimizer writes into real
  // storage. Pointers stay valid while the optimizer lives.
  struct StateEntry {
    std::string name;
    core::Tensor* tensor;  // non-owning
  };
  struct ScalarEntry {
    std::string name;
    i64* value;  // non-owning
  };
  struct StateView {
    std::vector<StateEntry> tensors;
    std::vector<ScalarEntry> scalars;
  };
  StateView state_entries();

  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  // Solver-specific update, called by step().
  virtual void apply_step() = 0;

  // Appends the solver-specific part of state_entries() (the base class
  // contributes the "steps_done" scalar). Solvers with per-parameter buffers
  // must ensure they are allocated before listing them.
  virtual void append_state(StateView&) {}

  // Names `state[i]` entries "`prefix`[i]" into `view`, sizing the state
  // vector to params_ first (the lazy-allocation pattern every solver uses).
  void append_tensor_state(StateView& view, const char* prefix,
                           std::vector<core::Tensor>& state);

  // grad + weight_decay * w, written into `scratch` (resized on first use).
  const core::Tensor& effective_grad(std::size_t i, core::Tensor& scratch) const;

  std::vector<ag::Variable> params_;
  float lr_ = 0.01f;
  float weight_decay_ = 0.0f;

 private:
  i64 steps_done_ = 0;
};

// Plain SGD: w -= lr * g.
class Sgd final : public Optimizer {
 public:
  using Optimizer::Optimizer;
  void apply_step() override;
  std::string name() const override { return "sgd"; }
};

// Heavy-ball momentum: v = m*v + g; w -= lr * v.
class Momentum final : public Optimizer {
 public:
  Momentum(std::vector<ag::Variable> params, float momentum = 0.9f,
           float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay), momentum_(momentum) {}
  void apply_step() override;
  std::string name() const override { return "momentum"; }
  void append_state(StateView& view) override;

 private:
  float momentum_;
  std::vector<core::Tensor> velocity_;
};

// Nesterov accelerated gradient (Sutskever formulation):
// v = m*v + g; w -= lr * (g + m*v).
class Nesterov final : public Optimizer {
 public:
  Nesterov(std::vector<ag::Variable> params, float momentum = 0.9f,
           float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay), momentum_(momentum) {}
  void apply_step() override;
  std::string name() const override { return "nesterov"; }
  void append_state(StateView& view) override;

 private:
  float momentum_;
  std::vector<core::Tensor> velocity_;
};

// Adagrad: G += g^2; w -= lr * g / (sqrt(G) + eps).
class Adagrad final : public Optimizer {
 public:
  Adagrad(std::vector<ag::Variable> params, float eps = 1e-10f,
          float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay), eps_(eps) {}
  void apply_step() override;
  std::string name() const override { return "adagrad"; }
  void append_state(StateView& view) override;

 private:
  float eps_;
  std::vector<core::Tensor> accum_;
};

// RMSprop: E[g^2] = rho*E[g^2] + (1-rho)*g^2; w -= lr * g / sqrt(E[g^2]+eps).
class RmsProp final : public Optimizer {
 public:
  RmsProp(std::vector<ag::Variable> params, float rho = 0.9f,
          float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay), rho_(rho), eps_(eps) {}
  void apply_step() override;
  std::string name() const override { return "rmsprop"; }
  void append_state(StateView& view) override;

 private:
  float rho_;
  float eps_;
  std::vector<core::Tensor> sq_avg_;
};

// Adam with bias correction (Kingma & Ba 2014 defaults).
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ag::Variable> params, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}
  void apply_step() override;
  std::string name() const override { return "adam"; }
  void append_state(StateView& view) override;

 private:
  float beta1_, beta2_, eps_;
  i64 t_ = 0;
  std::vector<core::Tensor> m_;
  std::vector<core::Tensor> v_;
};

// Adadelta (Zeiler 2012): hyper-parameter-free apart from rho/eps; the
// learning rate is a pure multiplier (default 1.0).
class Adadelta final : public Optimizer {
 public:
  Adadelta(std::vector<ag::Variable> params, float rho = 0.95f,
           float eps = 1e-6f, float weight_decay = 0.0f)
      : Optimizer(std::move(params), weight_decay), rho_(rho), eps_(eps) {
    lr_ = 1.0f;
  }
  void apply_step() override;
  std::string name() const override { return "adadelta"; }
  void append_state(StateView& view) override;

 private:
  float rho_, eps_;
  std::vector<core::Tensor> sq_grad_avg_;
  std::vector<core::Tensor> sq_delta_avg_;
};

// LARS (You, Gitman, Ginsburg 2017): layer-wise trust ratio
//   local_lr = eta * ||w|| / (||g|| + wd * ||w||)
// combined with momentum; the global LR comes from the schedule.
class Lars final : public Optimizer {
 public:
  Lars(std::vector<ag::Variable> params, float eta = 0.001f,
       float momentum = 0.9f, float weight_decay = 1e-4f, float eps = 1e-9f)
      : Optimizer(std::move(params), weight_decay),
        eta_(eta),
        momentum_(momentum),
        eps_(eps) {}
  void apply_step() override;
  std::string name() const override { return "lars"; }
  void append_state(StateView& view) override;

 private:
  float eta_;
  float momentum_;
  float eps_;
  std::vector<core::Tensor> velocity_;
};

// LAMB (You et al. 2019, "Large Batch Optimization for Deep Learning"): the
// authors' follow-up that applies the LARS trust-ratio idea to Adam — the
// natural "beyond" of this paper. Per layer:
//   m, v   — Adam moments with bias correction
//   update = mhat / (sqrt(vhat) + eps) + wd * w
//   w     -= lr * (||w|| / ||update||) * update
class Lamb final : public Optimizer {
 public:
  Lamb(std::vector<ag::Variable> params, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-6f, float weight_decay = 0.01f)
      : Optimizer(std::move(params), weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}
  void apply_step() override;
  std::string name() const override { return "lamb"; }
  void append_state(StateView& view) override;

 private:
  float beta1_, beta2_, eps_;
  i64 t_ = 0;
  std::vector<core::Tensor> m_;
  std::vector<core::Tensor> v_;
};

// Global-norm gradient clipping. Returns the pre-clip norm.
float clip_grad_norm(const std::vector<ag::Variable>& params, float max_norm);

// Global L2 norm over all parameter gradients — the measurement half of
// clip_grad_norm, exposed so the stability sentinel can inspect gradient
// health before the optimizer consumes the step. Uses the exact same
// accumulation order as clip_grad_norm, so a run that clips at norm X and a
// sentinel that reads norm X agree bitwise.
float global_grad_norm(const std::vector<ag::Variable>& params);

// Factory by name: "sgd", "momentum", "nesterov", "adagrad", "rmsprop",
// "adam", "adadelta", "lars". Aborts on unknown names.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          std::vector<ag::Variable> params,
                                          float weight_decay = 0.0f);

}  // namespace legw::optim
