#include "optim/ema.hpp"

#include <utility>

namespace legw::optim {

EmaWeights::EmaWeights(std::vector<ag::Variable> params, float decay)
    : params_(std::move(params)), decay_(decay) {
  LEGW_CHECK(decay > 0.0f && decay < 1.0f, "EmaWeights: decay must be in (0,1)");
  shadow_.reserve(params_.size());
  for (const auto& p : params_) shadow_.push_back(p.value());
}

void EmaWeights::update() {
  const float blend = 1.0f - decay_;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    core::Tensor& s = shadow_[i];
    const core::Tensor& w = params_[i].value();
    for (i64 j = 0; j < s.numel(); ++j) {
      s[j] = decay_ * s[j] + blend * w[j];
    }
  }
}

void EmaWeights::swap() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    std::swap(params_[i].mutable_value(), shadow_[i]);
  }
}

}  // namespace legw::optim
