#include "obs/telemetry.hpp"

#include <cstdio>
#include <sstream>

namespace legw::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string render_run_telemetry(const RunRecord& record,
                                 const TraceRecorder& recorder) {
  std::ostringstream os;
  os << "{\"run\":" << json_escape(record.run);

  os << ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : record.config) {
    if (!first) os << ",";
    first = false;
    os << json_escape(key) << ":" << json_escape(value);
  }
  os << "}";

  os << ",\"result\":{";
  first = true;
  char num[64];
  for (const auto& [key, value] : record.metrics) {
    if (!first) os << ",";
    first = false;
    std::snprintf(num, sizeof(num), "%.9g", value);
    os << json_escape(key) << ":" << num;
  }
  os << "}";

  os << ",\"phases\":{";
  first = true;
  for (const auto& [name, st] : recorder.phase_summary()) {
    if (!first) os << ",";
    first = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%lld,\"total_ms\":%.4f,\"mean_ms\":%.5f,"
                  "\"p50_ms\":%.5f,\"p95_ms\":%.5f}",
                  static_cast<long long>(st.count), st.total_ms, st.mean_ms,
                  st.p50_ms, st.p95_ms);
    os << json_escape(name) << ":" << buf;
  }
  os << "}";

  os << ",\"counters\":{";
  first = true;
  for (const auto& [name, v] : recorder.counters()) {
    if (!first) os << ",";
    first = false;
    os << json_escape(name) << ":" << v;
  }
  os << "}";

  // Structured incident events (corrupt checkpoints skipped, sentinel
  // rollbacks, ...): emitted only when present so the common-case record
  // stays compact.
  const auto events = recorder.events();
  if (!events.empty()) {
    os << ",\"events\":[";
    first = true;
    for (const auto& ev : events) {
      if (!first) os << ",";
      first = false;
      os << "{\"kind\":" << json_escape(ev.kind);
      for (const auto& [key, value] : ev.fields) {
        os << "," << json_escape(key) << ":" << json_escape(value);
      }
      os << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

bool append_run_telemetry(const std::string& path, const RunRecord& record,
                          const TraceRecorder& recorder, std::string* error) {
  const std::string line = render_run_telemetry(record, recorder) + "\n";
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for appending";
    return false;
  }
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace legw::obs
