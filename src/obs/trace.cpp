#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/counters.hpp"
#include "core/mutex.hpp"
#include "core/io.hpp"
#include "core/thread_pool.hpp"
#include "mem/alloc.hpp"
#include "obs/telemetry.hpp"

namespace legw::obs {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<bool>& enabled_state() {
  static std::atomic<bool> state{[] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    const char* env = std::getenv("LEGW_TRACE");
    return env != nullptr && env[0] != '\0';
  }()};
  return state;
}

// Per-thread span stack: the begin() side never touches the shared state, so
// concurrently-tracing threads only contend on end().
struct OpenSpan {
  const char* name;
  i64 begin_ns;
};
thread_local std::vector<OpenSpan> t_span_stack;
thread_local int t_tid = -1;

int thread_id() {
  static std::atomic<int> next{0};
  if (t_tid < 0) t_tid = next.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

// Registered CounterSource hooks (serve.* and future above-obs layers).
// Guarded by its own mutex — sources are read while the recorder lock is NOT
// held, so a source may itself call into obs without deadlocking.
struct SourceRegistry {
  core::Mutex mu;
  std::vector<CounterSource> sources LEGW_GUARDED_BY(mu);
};
SourceRegistry& source_registry() {
  static SourceRegistry registry;
  return registry;
}

}  // namespace

void register_counter_source(CounterSource source) {
  LEGW_CHECK(source != nullptr, "register_counter_source: null source");
  SourceRegistry& registry = source_registry();
  core::MutexLock lock(registry.mu);
  for (CounterSource s : registry.sources) {
    if (s == source) return;  // idempotent: one merge per source
  }
  registry.sources.push_back(source);
}

bool tracing_enabled() {
  return enabled_state().load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) {
  enabled_state().store(enabled, std::memory_order_relaxed);
}

const std::string& trace_env_path() {
  static const std::string path = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
    const char* env = std::getenv("LEGW_TRACE");
    return std::string(env == nullptr ? "" : env);
  }();
  return path;
}

struct TraceRecorder::Impl {
  mutable core::Mutex mu;
  std::vector<SpanRecord> spans LEGW_GUARDED_BY(mu);
  std::map<std::string, i64> counters LEGW_GUARDED_BY(mu);
  std::vector<Event> events LEGW_GUARDED_BY(mu);
  i64 epoch_ns LEGW_GUARDED_BY(mu) = now_ns();
};

TraceRecorder::Impl& TraceRecorder::impl() const {
  static Impl instance;
  return instance;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::begin(const char* name) {
  t_span_stack.push_back(OpenSpan{name, now_ns()});
}

void TraceRecorder::end() {
  LEGW_CHECK(!t_span_stack.empty(),
             "TraceRecorder::end without a matching begin on this thread");
  const OpenSpan open = t_span_stack.back();
  t_span_stack.pop_back();
  const i64 dur = now_ns() - open.begin_ns;
  const int tid = thread_id();
  const int depth = static_cast<int>(t_span_stack.size());
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  im.spans.push_back(
      SpanRecord{open.name, tid, depth, open.begin_ns - im.epoch_ns, dur});
}

void TraceRecorder::counter_add(const std::string& name, i64 delta) {
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  im.counters[name] += delta;
}

void TraceRecorder::add_event(
    std::string kind, std::vector<std::pair<std::string, std::string>> fields) {
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  if (static_cast<i64>(im.events.size()) >= kMaxEvents) {
    im.counters["events_dropped"] += 1;
    return;
  }
  im.events.push_back(Event{std::move(kind), std::move(fields)});
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  return im.events;
}

std::vector<TraceRecorder::SpanRecord> TraceRecorder::spans() const {
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  return im.spans;
}

std::map<std::string, i64> TraceRecorder::counters() const {
  std::map<std::string, i64> out;
  {
    Impl& im = impl();
    core::MutexLock lock(im.mu);
    out = im.counters;
  }
  for (int i = 0; i < static_cast<int>(core::DispatchCounter::kCount); ++i) {
    const auto c = static_cast<core::DispatchCounter>(i);
    out[core::dispatch_counter_name(c)] = core::dispatch_count(c);
  }
  // Allocator counters (mem/alloc.hpp): peak/live bytes on both storage
  // paths plus the arena's plan/reuse statistics, so a trace shows at a
  // glance whether a run planned, replayed, or kept diverging.
  const mem::MemStats ms = mem::mem_stats();
  out["mem.heap_live_bytes"] = ms.heap_live_bytes;
  out["mem.heap_peak_bytes"] = ms.heap_peak_bytes;
  out["mem.arena_live_bytes"] = ms.arena_live_bytes;
  out["mem.arena_peak_bytes"] = ms.arena_peak_bytes;
  out["mem.arena_planned_bytes"] = ms.arena_planned_bytes;
  out["mem.arena_naive_bytes"] = ms.arena_naive_bytes;
  out["mem.arena_recorded_steps"] = ms.arena_recorded_steps;
  out["mem.arena_replayed_steps"] = ms.arena_replayed_steps;
  out["mem.arena_divergences"] = ms.arena_divergences;
  // Above-obs layers (serve.*): merge every registered source's snapshot.
  std::vector<CounterSource> sources;
  {
    SourceRegistry& registry = source_registry();
    core::MutexLock lock(registry.mu);
    sources = registry.sources;
  }
  for (CounterSource s : sources) s(out);
  return out;
}

std::map<std::string, i64> TraceRecorder::span_counts() const {
  std::map<std::string, i64> out;
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  for (const SpanRecord& s : im.spans) ++out[s.name];
  return out;
}

std::map<std::string, TraceRecorder::PhaseStats> TraceRecorder::phase_summary()
    const {
  std::map<std::string, std::vector<i64>> durs;
  {
    Impl& im = impl();
    core::MutexLock lock(im.mu);
    for (const SpanRecord& s : im.spans) durs[s.name].push_back(s.dur_ns);
  }
  std::map<std::string, PhaseStats> out;
  for (auto& [name, ns] : durs) {
    std::sort(ns.begin(), ns.end());
    PhaseStats st;
    st.count = static_cast<i64>(ns.size());
    i64 total = 0;
    for (i64 d : ns) total += d;
    st.total_ms = static_cast<double>(total) / 1e6;
    st.mean_ms = st.total_ms / static_cast<double>(st.count);
    const auto pct = [&ns](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(ns.size() - 1) + 0.5);
      return static_cast<double>(ns[idx]) / 1e6;
    };
    st.p50_ms = pct(0.50);
    st.p95_ms = pct(0.95);
    out[name] = st;
  }
  return out;
}

std::string TraceRecorder::summary_table(double wall_seconds) const {
  const auto phases = phase_summary();
  std::ostringstream os;
  os << "phase summary (ms):\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-24s %8s %12s %10s %10s %10s\n",
                "span", "count", "total", "mean", "p50", "p95");
  os << line;
  // Sort by descending total time: the hot phase reads first.
  std::vector<std::pair<std::string, PhaseStats>> rows(phases.begin(),
                                                       phases.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ms > b.second.total_ms;
  });
  for (const auto& [name, st] : rows) {
    std::snprintf(line, sizeof(line),
                  "  %-24s %8lld %12.3f %10.4f %10.4f %10.4f\n", name.c_str(),
                  static_cast<long long>(st.count), st.total_ms, st.mean_ms,
                  st.p50_ms, st.p95_ms);
    os << line;
  }
  const auto ctrs = counters();
  if (!ctrs.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : ctrs) {
      std::snprintf(line, sizeof(line), "  %-40s %lld\n", name.c_str(),
                    static_cast<long long>(v));
      os << line;
    }
  }
  if (wall_seconds > 0.0) {
    const auto st = core::ThreadPool::global().stats();
    i64 busy = st.inline_busy_ns;
    for (i64 w : st.worker_busy_ns) busy += w;
    const double capacity =
        wall_seconds * static_cast<double>(core::ThreadPool::global().size());
    std::snprintf(line, sizeof(line),
                  "thread pool: %lld chunks (%lld queued, %lld inline), "
                  "utilisation %.1f%% of %d threads\n",
                  static_cast<long long>(st.chunks_executed +
                                         st.chunks_inline),
                  static_cast<long long>(st.chunks_queued),
                  static_cast<long long>(st.chunks_inline),
                  100.0 * static_cast<double>(busy) / 1e9 / capacity,
                  core::ThreadPool::global().size());
    os << line;
  }
  return os.str();
}

bool TraceRecorder::write_chrome_trace(const std::string& path,
                                       std::string* error) const {
  const std::vector<SpanRecord> all = spans();
  const auto ctrs = counters();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : all) {
    if (!first) os << ",";
    first = false;
    char ev[256];
    // Complete ("X") events; timestamps in microseconds per the trace spec.
    std::snprintf(ev, sizeof(ev),
                  "\n{\"name\":%s,\"cat\":\"legw\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"depth\":%d}}",
                  json_escape(s.name).c_str(),
                  static_cast<double>(s.begin_ns) / 1e3,
                  static_cast<double>(s.dur_ns) / 1e3, s.tid, s.depth);
    os << ev;
  }
  os << "\n],\"otherData\":{";
  first = true;
  for (const auto& [name, v] : ctrs) {
    if (!first) os << ",";
    first = false;
    os << json_escape(name) << ":" << v;
  }
  os << "}}\n";

  // Atomic publication so a crash mid-export cannot tear a trace a viewer
  // (or CI artifact collector) already had.
  const core::Status st = core::atomic_write_file(path, os.str());
  if (!st.ok() && error != nullptr) *error = st.message();
  return st.ok();
}

void TraceRecorder::clear() {
  Impl& im = impl();
  core::MutexLock lock(im.mu);
  im.spans.clear();
  im.counters.clear();
  im.events.clear();
  im.epoch_ns = now_ns();
  core::reset_dispatch_counters();
}

}  // namespace legw::obs
