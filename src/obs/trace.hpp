// Phase-level tracing for the training stack.
//
// The paper's headline claim is wall-clock scaling, so the reproduction needs
// to know *where* a step's time goes: forward vs backward vs allreduce vs
// optimizer vs eval. This header provides the collection half of that story:
//
//  * a process-global enable flag (`tracing_enabled`) — when off, a Span is
//    one relaxed atomic load and a branch, no allocation, no clock read;
//  * `TraceRecorder` — a thread-safe collector of named spans (begin/end
//    timestamps, per-thread nesting depth, stable small thread ids) plus
//    named aggregate counters (bytes all-reduced, steps, ...);
//  * exporters — a Chrome `chrome://tracing`-compatible JSON trace, a
//    per-phase summary table (count/total/mean/p50/p95 per span name, thread
//    pool utilisation), and the span *structure* (name -> count), which is
//    deterministic across identically-seeded runs and therefore testable.
//
// Kernel dispatch counters live in core (core/counters.hpp) because core
// cannot link against obs; the exporters fold a snapshot of them into every
// counter view. See docs/OBSERVABILITY.md for the file formats.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/common.hpp"

namespace legw::obs {

// Process-global tracing switch. Initialised once from the environment: set
// LEGW_TRACE (to any non-empty value, conventionally the trace output path)
// to start enabled. `Span` and the instrumentation sites all branch on this.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);
// The value of LEGW_TRACE at startup ("" if unset) — benches use it as the
// default trace output path.
const std::string& trace_env_path();

// Extension point for always-on counters owned by layers obs cannot link
// against. Core's dispatch counters and mem's allocator stats are folded
// into TraceRecorder::counters() directly (obs links both); a subsystem
// *above* obs (src/serve's broker counters) instead registers a source once
// and every counters() snapshot — and therefore every telemetry JSONL record
// and chrome trace — invokes it to merge its values in. Sources must be
// thread-safe snapshots of atomics (they run concurrently with recording)
// and registration is permanent for the process.
using CounterSource = void (*)(std::map<std::string, i64>& out);
void register_counter_source(CounterSource source);

class TraceRecorder {
 public:
  struct SpanRecord {
    std::string name;
    int tid;       // small id in thread-registration order (0 = first seen)
    int depth;     // nesting depth within the owning thread at begin time
    i64 begin_ns;  // relative to the recorder's epoch (first span ever)
    i64 dur_ns;
  };

  struct PhaseStats {
    i64 count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
  };

  // A rare, high-signal occurrence (a corrupt checkpoint skipped at restore,
  // a sentinel rollback, ...) with structured key/value detail. Unlike spans
  // and counters, events are recorded even when tracing is disabled: they
  // are cheap by construction (bounded at kMaxEvents per window) and losing
  // one hides an incident, not a timing.
  struct Event {
    std::string kind;
    std::vector<std::pair<std::string, std::string>> fields;
  };
  static constexpr i64 kMaxEvents = 256;

  // Process-wide recorder used by `Span` and all instrumentation sites.
  static TraceRecorder& global();

  // Records the start/end of a named span on the calling thread. Every
  // begin() must be matched by exactly one end() on the same thread; use the
  // RAII `Span` guard rather than calling these directly. `name` must point
  // to storage that outlives the call (string literals at every call site).
  void begin(const char* name);
  void end();

  // Adds `delta` to the named aggregate counter (creates it at zero first).
  void counter_add(const std::string& name, i64 delta);

  // Appends a structured event (see Event). Beyond kMaxEvents per window the
  // event is dropped and the `events_dropped` counter incremented instead —
  // an incident log must never balloon a long run's memory.
  void add_event(std::string kind,
                 std::vector<std::pair<std::string, std::string>> fields);

  // ---- views ---------------------------------------------------------------
  // All views snapshot under the recorder lock and are safe to call while
  // other threads keep recording (the snapshot is simply a prefix).

  std::vector<SpanRecord> spans() const;

  // Recorded events in arrival order (cleared by clear() like everything
  // else).
  std::vector<Event> events() const;

  // Recorder counters merged with the core dispatch-counter snapshot.
  std::map<std::string, i64> counters() const;

  // Span structure: name -> completed-span count. Deterministic across
  // identically-seeded runs (unlike timestamps or thread ids).
  std::map<std::string, i64> span_counts() const;

  // Per-phase timing aggregates keyed by span name.
  std::map<std::string, PhaseStats> phase_summary() const;

  // Human-readable summary: the phase table (sorted by total time), counter
  // values, and thread-pool utilisation over `wall_seconds` (pass the
  // enclosing measurement window; <= 0 omits the utilisation line).
  std::string summary_table(double wall_seconds = 0.0) const;

  // Writes the Chrome trace-event JSON ("traceEvents" array of complete "X"
  // events plus counter totals as metadata). Returns false and sets *error
  // on I/O failure instead of aborting.
  [[nodiscard]] bool write_chrome_trace(const std::string& path,
                                        std::string* error = nullptr) const;

  // Drops all spans and counters and re-arms the epoch. Also zeroes the core
  // dispatch counters so consecutive measurement windows are independent.
  // Must not race with in-flight begin()/end() pairs.
  void clear();

 private:
  struct Impl;
  Impl& impl() const;
};

// RAII span guard: `obs::Span span("forward");`. When tracing is disabled
// this is a single flag test in the constructor and destructor. The enable
// flag is latched at construction so a span that straddles a disable still
// closes cleanly.
class Span {
 public:
  explicit Span(const char* name) : active_(tracing_enabled()) {
    if (active_) TraceRecorder::global().begin(name);
  }
  ~Span() {
    if (active_) TraceRecorder::global().end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
};

// Counter convenience: no-op when tracing is disabled.
inline void count(const char* name, i64 delta) {
  if (tracing_enabled()) TraceRecorder::global().counter_add(name, delta);
}

}  // namespace legw::obs
