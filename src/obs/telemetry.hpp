// JSONL run telemetry: one machine-readable JSON object per training run,
// merging the run's identity/config, its headline results, and the tracing
// state (per-phase timings + counters) captured while it executed. Appending
// to one file across a sweep yields a record-per-run log that plotting and
// regression tooling can consume without parsing stdout.
//
// obs sits below train in the link order, so the record is a generic
// key/value bag here; train::make_run_record (train/runners.hpp) flattens a
// RunConfig + RunResult into one.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/common.hpp"
#include "obs/trace.hpp"

namespace legw::obs {

// Escapes and quotes a string as a JSON string literal (adds the quotes).
std::string json_escape(const std::string& s);

struct RunRecord {
  std::string run;  // experiment/run name, e.g. "fig4.mnist_lstm.b512"
  // Stringified configuration key/values, emitted under "config".
  std::vector<std::pair<std::string, std::string>> config;
  // Numeric results, emitted under "result" (final_metric, wall_seconds, ...).
  std::vector<std::pair<std::string, double>> metrics;
};

// Renders the record merged with `recorder`'s phase summary and counters as
// a single-line JSON object:
//   {"run":..., "config":{...}, "result":{...},
//    "phases":{name:{count,total_ms,mean_ms,p50_ms,p95_ms},...},
//    "counters":{...}}
std::string render_run_telemetry(const RunRecord& record,
                                 const TraceRecorder& recorder);

// Appends the rendered record plus '\n' to `path` (JSONL). Returns false and
// sets *error on I/O failure instead of aborting.
[[nodiscard]] bool append_run_telemetry(const std::string& path,
                                        const RunRecord& record,
                                        const TraceRecorder& recorder,
                                        std::string* error = nullptr);

}  // namespace legw::obs
