#include "dist/algorithms.hpp"

#include <cmath>

#include "dist/allreduce.hpp"
#include "obs/trace.hpp"

namespace legw::dist {

namespace {

void check_shards(const std::vector<core::Tensor*>& shards, const char* who) {
  LEGW_CHECK(!shards.empty(), std::string(who) + ": no shards");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    LEGW_CHECK(shards[i] != nullptr, std::string(who) + ": null shard");
    LEGW_CHECK(shards[i]->same_shape(*shards[0]),
               std::string(who) + ": shard shape mismatch");
  }
}

}  // namespace

DistAlgo choose_algorithm(DistAlgo requested, i64 payload_bytes,
                          int n_shards) {
  if (requested != DistAlgo::kAuto) return requested;
  if (n_shards <= 2) return DistAlgo::kTree;
  if (payload_bytes < 64 * 1024) return DistAlgo::kTree;
  if (n_shards >= 8) return DistAlgo::kHier;
  return DistAlgo::kRing;
}

int hier_group_size(int n_shards) {
  LEGW_CHECK(n_shards >= 1, "hier_group_size: need >= 1 shard");
  if (n_shards <= 3) return n_shards;
  int g = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(n_shards))));
  if (g < 2) g = 2;
  if (g > n_shards) g = n_shards;
  return g;
}

void ring_allreduce_mean(std::vector<core::Tensor*>& shards) {
  check_shards(shards, "ring_allreduce_mean");
  const std::size_t n = shards.size();
  const i64 numel = shards[0]->numel();
  obs::Span span("allreduce");
  obs::count("dist.algo.ring", 1);
  if (n == 1 || numel == 0) return;
  // Chunk boundaries: n chunks whose sizes differ by at most one element,
  // so payloads not divisible by n (including numel < n) ring correctly.
  const i64 base = numel / static_cast<i64>(n);
  const i64 rem = numel % static_cast<i64>(n);
  std::vector<i64> off(n + 1, 0);
  for (std::size_t c = 0; c < n; ++c) {
    off[c + 1] = off[c] + base + (static_cast<i64>(c) < rem ? 1 : 0);
  }
  // Reduce-scatter then all-gather, chunk by chunk: chunk c accumulates
  // around the ring starting at shard c — the summation order of a real
  // ring, fixed by (c, n) alone, never by timing.
  std::vector<float> acc;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t c = 0; c < n; ++c) {
    const i64 lo = off[c];
    const i64 len = off[c + 1] - lo;
    if (len == 0) continue;
    acc.assign(shards[c]->data() + lo, shards[c]->data() + lo + len);
    for (std::size_t k = 1; k < n; ++k) {
      const float* src = shards[(c + k) % n]->data() + lo;
      for (i64 j = 0; j < len; ++j) {
        acc[static_cast<std::size_t>(j)] += src[j];
      }
    }
    for (i64 j = 0; j < len; ++j) {
      acc[static_cast<std::size_t>(j)] *= inv_n;
    }
    for (std::size_t r = 0; r < n; ++r) {
      float* dst = shards[r]->data() + lo;
      for (i64 j = 0; j < len; ++j) {
        dst[j] = acc[static_cast<std::size_t>(j)];
      }
    }
  }
}

void hier_allreduce_mean(std::vector<core::Tensor*>& shards, int group_size) {
  check_shards(shards, "hier_allreduce_mean");
  const std::size_t n = shards.size();
  obs::Span span("allreduce");
  obs::count("dist.algo.hier", 1);
  if (n == 1 || shards[0]->numel() == 0) return;
  const std::size_t g = static_cast<std::size_t>(
      group_size > 0 ? std::min(group_size, static_cast<int>(n))
                     : hier_group_size(static_cast<int>(n)));
  // Phase 1: intra-group tree reduce (sum) into each group's leader — the
  // group's first shard. Stride doubling within the group, so the order is
  // fixed by (n, g).
  std::vector<std::size_t> leaders;
  for (std::size_t lo = 0; lo < n; lo += g) {
    leaders.push_back(lo);
    const std::size_t end = std::min(n, lo + g);
    for (std::size_t stride = 1; lo + stride < end; stride *= 2) {
      for (std::size_t i = lo; i + stride < end; i += 2 * stride) {
        shards[i]->add_(*shards[i + stride]);
      }
    }
  }
  // Phase 2: inter-group tree reduce over the leaders into shard 0, average
  // there, and hand the result back to every leader.
  const std::size_t m = leaders.size();
  for (std::size_t stride = 1; stride < m; stride *= 2) {
    for (std::size_t i = 0; i + stride < m; i += 2 * stride) {
      shards[leaders[i]]->add_(*shards[leaders[i + stride]]);
    }
  }
  shards[0]->scale_(1.0f / static_cast<float>(n));
  for (std::size_t j = 1; j < m; ++j) {
    *shards[leaders[j]] = *shards[0];
  }
  // Phase 3: intra-group broadcast from each leader.
  for (std::size_t lo = 0; lo < n; lo += g) {
    const std::size_t end = std::min(n, lo + g);
    for (std::size_t i = lo + 1; i < end; ++i) {
      *shards[i] = *shards[lo];
    }
  }
}

void allreduce_mean(std::vector<core::Tensor*>& shards, DistAlgo algo,
                    int group_size) {
  check_shards(shards, "allreduce_mean");
  const i64 payload_bytes =
      shards[0]->numel() * static_cast<i64>(sizeof(float));
  const DistAlgo resolved =
      choose_algorithm(algo, payload_bytes, static_cast<int>(shards.size()));
  switch (resolved) {
    case DistAlgo::kTree:
      obs::count("dist.algo.tree", 1);
      tree_allreduce_mean(shards);
      return;
    case DistAlgo::kRing:
      ring_allreduce_mean(shards);
      return;
    case DistAlgo::kHier:
      hier_allreduce_mean(shards, group_size);
      return;
    case DistAlgo::kAuto:
      break;  // unreachable: choose_algorithm never returns kAuto
  }
  LEGW_CHECK(false, "allreduce_mean: unresolved algorithm");
}

i64 wire_elem_bytes(WireFormat format) {
  switch (format) {
    case WireFormat::kFp32: return 4;
    case WireFormat::kFp16: return 2;
    case WireFormat::kInt8: return 1;
  }
  return 4;
}

i64 allreduce_wire_bytes(int n_shards, i64 payload_elems, WireFormat format) {
  if (n_shards <= 1) return 0;
  const i64 hops = 2 * (static_cast<i64>(n_shards) - 1);
  i64 per_hop = payload_elems * wire_elem_bytes(format);
  if (format == WireFormat::kInt8) {
    per_hop += static_cast<i64>(sizeof(float));  // the per-tensor scale
  }
  return hops * per_hop;
}

}  // namespace legw::dist
