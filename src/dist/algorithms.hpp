// Scale-out all-reduce algorithms.
//
// The original engine reduced every bucket through one flat stride-doubling
// tree (allreduce.hpp). That is latency-optimal for tiny payloads but its
// critical path carries the full payload log2(n) times, which is exactly why
// BENCH_dist.json showed the overlap win decaying toward 1x at 8 replicas.
// This layer adds the two algorithms production all-reduce stacks use at
// scale, plus a size-based policy that picks per bucket:
//
//   kTree — flat binary tree; critical path 2*ceil(log2 n) hops, each
//           carrying the full payload. Best for latency-bound small buckets.
//   kRing — chunked reduce-scatter + all-gather; 2*(n-1) hops but each
//           carries only payload/n, so the bandwidth term is ~2*payload
//           regardless of n (the classic bandwidth-optimal schedule).
//   kHier — two-level: intra-group tree reduce, inter-group tree exchange
//           over the group leaders, intra-group broadcast — LBANN's grouped
//           communicator shape. Wins when intra-group links are faster than
//           inter-group links (NVLink island vs. fabric), which WireModel
//           models with a separate intra bandwidth/latency.
//
// All three are executed by the calling thread in a fixed order, so every
// algorithm is bitwise deterministic run to run for a given shard count.
// Different algorithms sum in different orders, so *across* algorithms
// results agree only to floating-point tolerance (the property suite checks
// each against a double-precision mean reference).
#pragma once

#include <vector>

#include "core/flags.hpp"
#include "core/tensor.hpp"

namespace legw::dist {

using core::DistAlgo;
using core::WireFormat;

// Resolves kAuto for one bucket: tree for small payloads or <= 2 shards
// (latency-bound), hierarchical at >= 8 shards (two-level topology pays off
// once there is more than one "island"), ring otherwise (bandwidth-bound).
// Non-auto requests pass through unchanged.
DistAlgo choose_algorithm(DistAlgo requested, i64 payload_bytes, int n_shards);

// Group size the hierarchical algorithm uses when none is given: roughly
// sqrt(n), clamped to [2, n] (n itself for n <= 3, where one group — i.e.
// plain tree — is the whole topology).
int hier_group_size(int n_shards);

// Chunked ring all-reduce with averaging: the payload is split into n chunks
// (sizes differing by at most one element, so non-divisible payloads work);
// chunk c accumulates around the ring starting at shard c, is averaged, and
// is gathered back to every shard. After the call every shard holds the
// element-wise mean.
void ring_allreduce_mean(std::vector<core::Tensor*>& shards);

// Two-level all-reduce with averaging: shards are grouped into consecutive
// groups of `group_size` (0 = hier_group_size(n)); each group tree-reduces
// into its leader, leaders tree-reduce into shard 0 where the mean is taken,
// then the result is broadcast leader-wise and group-wise.
void hier_allreduce_mean(std::vector<core::Tensor*>& shards,
                         int group_size = 0);

// Dispatcher: resolves kAuto from the payload size via choose_algorithm,
// runs the selected algorithm, and bumps the dist.algo.<name> counter.
// `group_size` only affects kHier.
void allreduce_mean(std::vector<core::Tensor*>& shards, DistAlgo algo,
                    int group_size = 0);

// Bytes one element occupies on the wire in `format` (int8 payloads also
// carry one fp32 scale per tensor; see allreduce_wire_bytes).
i64 wire_elem_bytes(WireFormat format);

// Total simulated bytes on the wire for one all-reduce of `payload_elems`
// elements over `n_shards` shards: every algorithm above moves the payload
// 2*(n-1) times in aggregate (the all-reduce volume lower bound — they
// differ in critical-path *time*, not volume), so this is
// 2*(n-1)*payload_elems*wire_elem_bytes (+ per-hop scale words for int8).
i64 allreduce_wire_bytes(int n_shards, i64 payload_elems, WireFormat format);

}  // namespace legw::dist
