#include "dist/allreduce.hpp"

#include <thread>

#include "obs/trace.hpp"

namespace legw::dist {

void tree_allreduce_mean(std::vector<core::Tensor*>& shards) {
  LEGW_CHECK(!shards.empty(), "tree_allreduce_mean: no shards");
  obs::Span span("allreduce");
  const std::size_t n = shards.size();
  for (std::size_t i = 0; i < n; ++i) {
    LEGW_CHECK(shards[i] != nullptr, "tree_allreduce_mean: null shard");
    LEGW_CHECK(shards[i]->same_shape(*shards[0]),
               "tree_allreduce_mean: shard shape mismatch");
  }
  // Reduce phase: stride-doubling binary tree. shard[i] += shard[i+stride].
  // The summation order is fully determined by n, never by thread timing.
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
      shards[i]->add_(*shards[i + stride]);
    }
  }
  // Average at the root, then broadcast.
  shards[0]->scale_(1.0f / static_cast<float>(n));
  for (std::size_t i = 1; i < n; ++i) {
    *shards[i] = *shards[0];
  }
  // Payload accounting: every shard's buffer crosses the (simulated) wire
  // once in the reduce tree and once in the broadcast.
  obs::count("allreduce.bytes",
             static_cast<i64>(n) * shards[0]->numel() *
                 static_cast<i64>(sizeof(float)) * 2);
  obs::count("allreduce.calls", 1);
}

std::vector<core::Tensor> parallel_gradients(
    int n_workers,
    const std::function<std::vector<core::Tensor>(int worker)>& fn) {
  LEGW_CHECK(n_workers >= 1, "parallel_gradients: need >= 1 worker");
  std::vector<std::vector<core::Tensor>> per_worker(
      static_cast<std::size_t>(n_workers));

  // lint-allow: raw-thread — simulated cluster workers must be real OS
  // threads, not pool tasks: routing them through the global ThreadPool
  // would deadlock when worker closures themselves use the pool.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_workers));
  for (int w = 0; w < n_workers; ++w) {
    threads.emplace_back(
        [&per_worker, &fn, w] { per_worker[static_cast<std::size_t>(w)] = fn(w); });
  }
  for (auto& t : threads) t.join();

  const std::size_t n_params = per_worker[0].size();
  for (const auto& grads : per_worker) {
    LEGW_CHECK(grads.size() == n_params,
               "parallel_gradients: workers returned differing param counts");
  }
  // Reduce parameter-by-parameter (the "bucket" view of a real all-reduce).
  for (std::size_t p = 0; p < n_params; ++p) {
    std::vector<core::Tensor*> shards;
    shards.reserve(per_worker.size());
    for (auto& grads : per_worker) shards.push_back(&grads[p]);
    tree_allreduce_mean(shards);
  }
  return std::move(per_worker[0]);
}

}  // namespace legw::dist
