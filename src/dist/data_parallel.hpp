// Synchronous data-parallel training over in-process model replicas.
//
// This is the execution pattern behind every system in the paper's related
// work (Goyal et al., LARS on KNL/TPU pods): R replicas hold identical
// weights, each computes gradients on its shard of the global batch, an
// all-reduce averages the gradients, and every replica applies the identical
// optimizer update — so replicas stay bit-synchronised without ever shipping
// weights. Here replicas are real threads in one process and the all-reduce
// is dist::allreduce_mean (tree, ring or hierarchical, per LEGW_DIST_ALGO),
// each of which is deterministic, so the synchrony invariant is exactly
// testable (tests/test_data_parallel.cpp).
#pragma once

#include <functional>
#include <vector>

#include "ag/variable.hpp"

namespace legw::dist {

class WireState;  // compression.hpp — error-feedback residuals

// One synchronous backward pass:
//  * `replica_params[r]` are replica r's parameters (aligned across r);
//  * `loss_fn(r)` builds replica r's shard loss from replica r's parameters
//    and returns the scalar loss Variable (it must not touch other replicas);
//  * on return, every replica's parameter gradients hold the element-wise
//    mean over replicas (shard-mean losses over equal shards therefore yield
//    the global-batch mean gradient).
// Gradients are zeroed before the backward. Returns the mean of the shard
// losses. Thread-safety: loss_fn runs concurrently, one thread per replica.
//
// The all-reduce runs the LEGW_DIST_ALGO algorithm over the LEGW_DIST_WIRE
// format: non-fp32 formats quantize each replica's contribution at the
// sender edge, reduce in fp32, and re-quantize the broadcast, keeping the
// replicas bit-synchronised. `wire_state` (optional, caller-owned) enables
// error-feedback residuals for the quantized wire.
float synchronous_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    WireState* wire_state = nullptr);

// Verifies the synchrony invariant: all replicas hold bitwise-identical
// parameter values. Returns the index of the first mismatching parameter,
// or -1 if synchronised.
i64 first_divergent_param(
    const std::vector<std::vector<ag::Variable>>& replica_params);

}  // namespace legw::dist
