// Elastic membership: replicas joining and leaving a data-parallel run.
//
// The fixed-replica engines assume the replica set chosen at construction
// lives for the whole run; a dead node can only be *averaged around*
// (TimeoutPolicy::kDegradeToSurvivors), silently shrinking the global batch.
// This layer makes the membership itself a first-class, step-indexed state
// machine so the training loop can react instead:
//
//                    join (checkpoint hand-off)
//          kStandby  ────────────────────────▶  kActive
//             ▲                                   │  │
//             └───────────────────────────────────┘  │ die (FaultPlan)
//                    leave (graceful)                ▼
//                                                 kDead (terminal)
//
// Events are planned per step (MembershipPlan — seeded generation mirrors
// dist::FaultPlan), so every run replays identically and composes with
// checkpoint crash+resume: MembershipManager::fast_forward re-applies the
// history below the resume step without hand-offs (the checkpoint restore
// already re-synchronised every replica).
//
// Shard policy. The global batch is always cut into n_replicas shards so
// the data order never depends on membership. A shard whose home replica is
// inactive is an *orphan*; MembershipPolicy decides its fate:
//   kFailFast — any death fails the step (leaves/joins are still fine);
//   kDegrade  — orphans are dropped: the step trains on a smaller batch
//               (the old averaged-around behaviour, made explicit);
//   kReassign — orphans are dealt round-robin to the surviving actives, so
//               the effective batch (and the LEGW schedule's batch-size
//               assumptions) survive the failure. The gradient stays the
//               mean over *all* shards, each survivor contributing its
//               assigned shards scaled by n_active / n_shards.
//
// A kDie event at step s is detected *during* step s through the overlap
// engine's timeout machinery (the runner injects a FaultPlan for the dying
// replica), so the death step itself degrades to the survivor mean — exactly
// what a real cluster sees — and re-sharding takes effect from step s+1.
#pragma once

#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::dist {

enum class MembershipPolicy { kFailFast, kDegrade, kReassign };
const char* membership_policy_name(MembershipPolicy p);

struct MembershipEvent {
  enum class Kind { kJoin, kLeave, kDie };
  i64 step = 0;
  int replica = 0;
  Kind kind = Kind::kLeave;
};

struct MembershipPlan {
  // Must be sorted by step; replica 0 must never leave or die (it anchors
  // checkpointing and hand-offs). validate() enforces both.
  std::vector<MembershipEvent> events;

  // Seeded random plan over [1, steps): `n_events` leave/join/die events on
  // replicas 1..n_replicas-1, internally consistent (only an active replica
  // leaves or dies, only a standby replica joins, dead stays dead). Same
  // seed, same plan.
  static MembershipPlan seeded(u64 seed, i64 steps, int n_replicas,
                               int n_events);

  // Aborts (LEGW_CHECK) on an inconsistent plan: unsorted events, replica
  // out of range, events on replica 0, join of a never-absent replica,
  // leave/die of an absent replica, or anything after a death.
  void validate(int n_replicas) const;
};

enum class ReplicaState { kActive, kStandby, kDead };

class MembershipManager {
 public:
  // All `n_replicas` replicas start active. `plan` is not owned and may be
  // nullptr (static membership: begin_step never returns a transition).
  MembershipManager(int n_replicas, MembershipPolicy policy,
                    const MembershipPlan* plan);

  struct Transition {
    std::vector<int> joined;  // activated this step — hand-off required
    std::vector<int> left;    // gracefully out as of this step
    std::vector<int> died;    // dying *during* this step: keep them in the
                              // participant set with an injected dead fault
  };

  // Applies every event with event.step == step (steps must be visited in
  // nondecreasing order). Joins and leaves are effective immediately; a
  // dying replica is reported in `died` and stays in participants() for
  // this one step so the engine's timeout machinery detects it.
  Transition begin_step(i64 step);

  // Replays all events with event.step < resume_step without reporting
  // transitions — the checkpoint-resume path.
  void fast_forward(i64 resume_step);

  // Sorted global ids of the active replicas.
  const std::vector<int>& active() const { return active_; }
  // active() plus the replicas dying this step (sorted) — the set the
  // engine should run with for the current step.
  std::vector<int> participants() const;

  ReplicaState state(int replica) const;
  MembershipPolicy policy() const { return policy_; }
  int n_replicas() const { return n_replicas_; }

  // Owner of shard s under the current active set: the home replica when
  // active; otherwise round-robin over the actives (kReassign) or -1
  // (kDegrade / kFailFast — orphan dropped). A replica dying this step
  // still owns its home shard (the engine degrades around it).
  int shard_owner(int shard) const;

  // shards assigned to each participant, aligned with participants().
  std::vector<std::vector<int>> shard_assignment() const;

 private:
  void apply(const MembershipEvent& e, Transition* out);

  int n_replicas_ = 0;
  MembershipPolicy policy_ = MembershipPolicy::kFailFast;
  const MembershipPlan* plan_ = nullptr;  // not owned
  std::size_t next_event_ = 0;
  i64 current_step_ = -1;
  std::vector<ReplicaState> state_;
  std::vector<int> active_;        // sorted, rebuilt on every transition
  std::vector<int> dying_now_;     // kDie events applied at current_step_
};

}  // namespace legw::dist
