#include "dist/data_parallel.hpp"

#include <thread>

#include "core/flags.hpp"
#include "dist/algorithms.hpp"
#include "dist/compression.hpp"
#include "mem/alloc.hpp"
#include "obs/trace.hpp"

namespace legw::dist {

float synchronous_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    WireState* wire_state) {
  const int n_replicas = static_cast<int>(replica_params.size());
  LEGW_CHECK(n_replicas >= 1, "synchronous_backward: need >= 1 replica");
  const std::size_t n_params = replica_params[0].size();
  for (const auto& params : replica_params) {
    LEGW_CHECK(params.size() == n_params,
               "synchronous_backward: replicas disagree on parameter count");
  }

  std::vector<float> losses(static_cast<std::size_t>(n_replicas), 0.0f);
  // lint-allow: raw-thread — replicas model independent cluster nodes; each
  // runs a full forward/backward that internally submits to the ThreadPool,
  // so replicas cannot themselves be pool tasks.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_replicas));
  for (int r = 0; r < n_replicas; ++r) {
    threads.emplace_back([&, r] {
      // One span per replica shard: the trace shows the per-replica compute
      // skew that the synchronous allreduce then waits out.
      obs::Span span("replica_backward");
      // Arena mode: per-replica step arena (slot r); see dist/overlap.cpp.
      mem::TrainStepScope arena_scope(mem::step_arena(r));
      for (const auto& p : replica_params[static_cast<std::size_t>(r)]) {
        ag::Variable handle = p;  // cheap shared handle
        handle.zero_grad();
      }
      ag::Variable loss = loss_fn(r);
      losses[static_cast<std::size_t>(r)] = loss.value()[0];
      ag::backward(loss);
    });
  }
  for (auto& t : threads) t.join();

  // Parameter-by-parameter deterministic all-reduce over the gradients,
  // through the configured algorithm and wire format.
  const core::DistAlgo algo = core::dist_algo();
  const core::WireFormat wire = core::dist_wire();
  i64 wire_bytes = 0;
  for (std::size_t p = 0; p < n_params; ++p) {
    std::vector<core::Tensor*> shards;
    shards.reserve(static_cast<std::size_t>(n_replicas));
    for (int r = 0; r < n_replicas; ++r) {
      ag::Variable handle = replica_params[static_cast<std::size_t>(r)][p];
      shards.push_back(&handle.mutable_grad());
    }
    quantize_contributions(shards, wire, wire_state, nullptr, p);
    allreduce_mean(shards, algo);
    quantize_broadcast(shards, wire);
    wire_bytes += allreduce_wire_bytes(n_replicas, shards[0]->numel(), wire);
  }
  obs::count("dist.wire_bytes", wire_bytes);

  float mean_loss = 0.0f;
  for (float l : losses) mean_loss += l;
  return mean_loss / static_cast<float>(n_replicas);
}

i64 first_divergent_param(
    const std::vector<std::vector<ag::Variable>>& replica_params) {
  LEGW_CHECK(!replica_params.empty(), "first_divergent_param: no replicas");
  const auto& ref = replica_params[0];
  for (std::size_t p = 0; p < ref.size(); ++p) {
    const core::Tensor& base = ref[p].value();
    for (std::size_t r = 1; r < replica_params.size(); ++r) {
      const core::Tensor& other = replica_params[r][p].value();
      if (!base.same_shape(other)) return static_cast<i64>(p);
      for (i64 i = 0; i < base.numel(); ++i) {
        if (base[i] != other[i]) return static_cast<i64>(p);
      }
    }
  }
  return -1;
}

}  // namespace legw::dist
