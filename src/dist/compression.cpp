#include "dist/compression.hpp"

#include <cmath>
#include <cstring>

#include "obs/trace.hpp"

namespace legw::dist {

u16 float_to_half(float f) {
  u32 bits;
  std::memcpy(&bits, &f, sizeof bits);
  const u32 sign = (bits >> 16) & 0x8000u;
  const u32 exponent = (bits >> 23) & 0xFFu;
  u32 mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFFu) {
    // Inf / NaN: preserve class (quiet any NaN payload into the msb).
    return static_cast<u16>(sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0));
  }
  // Unbiased exponent; half bias is 15, float bias is 127.
  const int e = static_cast<int>(exponent) - 127 + 15;
  if (e >= 0x1F) {
    return static_cast<u16>(sign | 0x7C00u);  // overflow -> inf
  }
  if (e <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit.
    if (e < -10) return static_cast<u16>(sign);  // too small: signed zero
    mantissa |= 0x800000u;
    const int shift = 14 - e;  // 14..24
    const u32 half_mant = mantissa >> shift;
    // Round to nearest, ties to even.
    const u32 remainder = mantissa & ((1u << shift) - 1);
    const u32 halfway = 1u << (shift - 1);
    u32 rounded = half_mant;
    if (remainder > halfway || (remainder == halfway && (half_mant & 1u))) {
      ++rounded;
    }
    return static_cast<u16>(sign | rounded);
  }
  // Normal half. Mantissa 23 -> 10 bits with round-to-nearest-even.
  u32 half_mant = mantissa >> 13;
  const u32 remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow: bump exponent
      half_mant = 0;
      if (e + 1 >= 0x1F) return static_cast<u16>(sign | 0x7C00u);
      return static_cast<u16>(sign | (static_cast<u32>(e + 1) << 10));
    }
  }
  return static_cast<u16>(sign | (static_cast<u32>(e) << 10) | half_mant);
}

float half_to_float(u16 h) {
  const u32 sign = (static_cast<u32>(h) & 0x8000u) << 16;
  const u32 exponent = (h >> 10) & 0x1Fu;
  u32 mantissa = h & 0x3FFu;
  u32 bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalise.
      int e = -1;
      do {
        mantissa <<= 1;
        ++e;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      bits = sign | (static_cast<u32>(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1Fu) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

void compress_fp16(const core::Tensor& src, std::vector<u16>& out) {
  out.resize(static_cast<std::size_t>(src.numel()));
  for (i64 i = 0; i < src.numel(); ++i) {
    out[static_cast<std::size_t>(i)] = float_to_half(src[i]);
  }
}

void decompress_fp16(const std::vector<u16>& src, core::Tensor& out) {
  LEGW_CHECK(static_cast<i64>(src.size()) == out.numel(),
             "decompress_fp16: size mismatch");
  for (i64 i = 0; i < out.numel(); ++i) {
    out[i] = half_to_float(src[static_cast<std::size_t>(i)]);
  }
}

void quantize_int8(const core::Tensor& src, std::vector<i8>& out,
                   float* scale_out) {
  const i64 n = src.numel();
  out.resize(static_cast<std::size_t>(n));
  float amax = 0.0f;
  for (i64 i = 0; i < n; ++i) {
    const float v = src[i];
    if (std::isfinite(v)) amax = std::max(amax, std::fabs(v));
  }
  const float scale = amax / 127.0f;
  if (scale_out != nullptr) *scale_out = scale;
  const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
  for (i64 i = 0; i < n; ++i) {
    const float v = src[i];
    if (!std::isfinite(v)) {
      out[static_cast<std::size_t>(i)] = 0;
      continue;
    }
    float q = std::nearbyint(v * inv);
    if (q > 127.0f) q = 127.0f;
    if (q < -127.0f) q = -127.0f;
    out[static_cast<std::size_t>(i)] = static_cast<i8>(q);
  }
}

void dequantize_int8(const std::vector<i8>& src, float scale,
                     core::Tensor& out) {
  LEGW_CHECK(static_cast<i64>(src.size()) == out.numel(),
             "dequantize_int8: size mismatch");
  for (i64 i = 0; i < out.numel(); ++i) {
    out[i] = static_cast<float>(src[static_cast<std::size_t>(i)]) * scale;
  }
}

void wire_roundtrip(WireFormat format, core::Tensor& t) {
  switch (format) {
    case WireFormat::kFp32:
      return;
    case WireFormat::kFp16: {
      for (i64 i = 0; i < t.numel(); ++i) {
        t[i] = half_to_float(float_to_half(t[i]));
      }
      break;
    }
    case WireFormat::kInt8: {
      const i64 n = t.numel();
      float amax = 0.0f;
      for (i64 i = 0; i < n; ++i) {
        if (std::isfinite(t[i])) amax = std::max(amax, std::fabs(t[i]));
      }
      const float scale = amax / 127.0f;
      const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
      for (i64 i = 0; i < n; ++i) {
        const float v = t[i];
        if (!std::isfinite(v)) {
          // NaN stays NaN, +-Inf stays +-Inf: the tripwires must still see
          // a diverged gradient on the far side of the wire.
          t[i] = v;
          continue;
        }
        float q = std::nearbyint(v * inv);
        if (q > 127.0f) q = 127.0f;
        if (q < -127.0f) q = -127.0f;
        t[i] = q * scale;
      }
      break;
    }
  }
  obs::count("dist.requantize", 1);
}

WireState::WireState(
    const std::vector<std::vector<ag::Variable>>& replica_params) {
  residual_.reserve(replica_params.size());
  for (const auto& params : replica_params) {
    std::vector<core::Tensor> row;
    row.reserve(params.size());
    for (const ag::Variable& p : params) {
      row.push_back(core::Tensor::zeros(p.value().shape()));
    }
    residual_.push_back(std::move(row));
  }
}

core::Tensor& WireState::residual(int replica, std::size_t param) {
  LEGW_CHECK(replica >= 0 && replica < n_replicas() && param < n_params(),
             "WireState::residual: index out of range");
  return residual_[static_cast<std::size_t>(replica)][param];
}

float WireState::max_abs_residual() const {
  float amax = 0.0f;
  for (const auto& row : residual_) {
    for (const core::Tensor& t : row) {
      for (i64 i = 0; i < t.numel(); ++i) {
        amax = std::max(amax, std::fabs(t[i]));
      }
    }
  }
  return amax;
}

std::vector<std::pair<std::string, core::Tensor*>>
WireState::named_residuals() {
  std::vector<std::pair<std::string, core::Tensor*>> out;
  for (std::size_t r = 0; r < residual_.size(); ++r) {
    for (std::size_t p = 0; p < residual_[r].size(); ++p) {
      out.emplace_back("dist.ef.r" + std::to_string(r) + ".p" +
                           std::to_string(p),
                       &residual_[r][p]);
    }
  }
  return out;
}

void quantize_contributions(std::vector<core::Tensor*>& shards,
                            WireFormat format, WireState* state,
                            const std::vector<int>* global_ids,
                            std::size_t param) {
  if (format == WireFormat::kFp32) return;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    core::Tensor& grad = *shards[i];
    if (state == nullptr) {
      wire_roundtrip(format, grad);
      continue;
    }
    const int gid = global_ids != nullptr
                        ? (*global_ids)[i]
                        : static_cast<int>(i);
    core::Tensor& res = state->residual(gid, param);
    LEGW_CHECK(res.same_shape(grad),
               "quantize_contributions: residual shape mismatch");
    // v = grad + residual; grad = Q(v); residual = v - Q(v).
    for (i64 j = 0; j < grad.numel(); ++j) grad[j] += res[j];
    for (i64 j = 0; j < grad.numel(); ++j) res[j] = grad[j];
    wire_roundtrip(format, grad);
    for (i64 j = 0; j < grad.numel(); ++j) res[j] -= grad[j];
  }
}

void quantize_broadcast(std::vector<core::Tensor*>& shards,
                        WireFormat format) {
  if (format == WireFormat::kFp32 || shards.empty()) return;
  wire_roundtrip(format, *shards[0]);
  for (std::size_t i = 1; i < shards.size(); ++i) {
    *shards[i] = *shards[0];
  }
}

void tree_allreduce_mean_fp16(std::vector<core::Tensor*>& shards) {
  LEGW_CHECK(!shards.empty(), "tree_allreduce_mean_fp16: no shards");
  const std::size_t n = shards.size();
  for (std::size_t i = 0; i < n; ++i) {
    LEGW_CHECK(shards[i] != nullptr && shards[i]->same_shape(*shards[0]),
               "tree_allreduce_mean_fp16: shard mismatch");
  }
  // Every hop ships fp16: compress both operands, sum in float, keep the
  // running partial in the destination shard.
  std::vector<u16> wire_a, wire_b;
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
      compress_fp16(*shards[i], wire_a);
      compress_fp16(*shards[i + stride], wire_b);
      core::Tensor& dst = *shards[i];
      for (i64 j = 0; j < dst.numel(); ++j) {
        dst[j] = half_to_float(wire_a[static_cast<std::size_t>(j)]) +
                 half_to_float(wire_b[static_cast<std::size_t>(j)]);
      }
    }
  }
  shards[0]->scale_(1.0f / static_cast<float>(n));
  // Broadcast the (fp16-rounded) result.
  compress_fp16(*shards[0], wire_a);
  for (std::size_t i = 0; i < n; ++i) {
    decompress_fp16(wire_a, *shards[i]);
  }
}

}  // namespace legw::dist
