#include "dist/compression.hpp"

#include <cstring>

namespace legw::dist {

u16 float_to_half(float f) {
  u32 bits;
  std::memcpy(&bits, &f, sizeof bits);
  const u32 sign = (bits >> 16) & 0x8000u;
  const u32 exponent = (bits >> 23) & 0xFFu;
  u32 mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFFu) {
    // Inf / NaN: preserve class (quiet any NaN payload into the msb).
    return static_cast<u16>(sign | 0x7C00u | (mantissa != 0 ? 0x200u : 0));
  }
  // Unbiased exponent; half bias is 15, float bias is 127.
  const int e = static_cast<int>(exponent) - 127 + 15;
  if (e >= 0x1F) {
    return static_cast<u16>(sign | 0x7C00u);  // overflow -> inf
  }
  if (e <= 0) {
    // Subnormal half (or underflow to zero). Shift in the implicit bit.
    if (e < -10) return static_cast<u16>(sign);  // too small: signed zero
    mantissa |= 0x800000u;
    const int shift = 14 - e;  // 14..24
    const u32 half_mant = mantissa >> shift;
    // Round to nearest, ties to even.
    const u32 remainder = mantissa & ((1u << shift) - 1);
    const u32 halfway = 1u << (shift - 1);
    u32 rounded = half_mant;
    if (remainder > halfway || (remainder == halfway && (half_mant & 1u))) {
      ++rounded;
    }
    return static_cast<u16>(sign | rounded);
  }
  // Normal half. Mantissa 23 -> 10 bits with round-to-nearest-even.
  u32 half_mant = mantissa >> 13;
  const u32 remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa overflow: bump exponent
      half_mant = 0;
      if (e + 1 >= 0x1F) return static_cast<u16>(sign | 0x7C00u);
      return static_cast<u16>(sign | (static_cast<u32>(e + 1) << 10));
    }
  }
  return static_cast<u16>(sign | (static_cast<u32>(e) << 10) | half_mant);
}

float half_to_float(u16 h) {
  const u32 sign = (static_cast<u32>(h) & 0x8000u) << 16;
  const u32 exponent = (h >> 10) & 0x1Fu;
  u32 mantissa = h & 0x3FFu;
  u32 bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal half: normalise.
      int e = -1;
      do {
        mantissa <<= 1;
        ++e;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      bits = sign | (static_cast<u32>(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1Fu) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // inf / nan
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof f);
  return f;
}

void compress_fp16(const core::Tensor& src, std::vector<u16>& out) {
  out.resize(static_cast<std::size_t>(src.numel()));
  for (i64 i = 0; i < src.numel(); ++i) {
    out[static_cast<std::size_t>(i)] = float_to_half(src[i]);
  }
}

void decompress_fp16(const std::vector<u16>& src, core::Tensor& out) {
  LEGW_CHECK(static_cast<i64>(src.size()) == out.numel(),
             "decompress_fp16: size mismatch");
  for (i64 i = 0; i < out.numel(); ++i) {
    out[i] = half_to_float(src[static_cast<std::size_t>(i)]);
  }
}

void tree_allreduce_mean_fp16(std::vector<core::Tensor*>& shards) {
  LEGW_CHECK(!shards.empty(), "tree_allreduce_mean_fp16: no shards");
  const std::size_t n = shards.size();
  for (std::size_t i = 0; i < n; ++i) {
    LEGW_CHECK(shards[i] != nullptr && shards[i]->same_shape(*shards[0]),
               "tree_allreduce_mean_fp16: shard mismatch");
  }
  // Every hop ships fp16: compress both operands, sum in float, keep the
  // running partial in the destination shard.
  std::vector<u16> wire_a, wire_b;
  for (std::size_t stride = 1; stride < n; stride *= 2) {
    for (std::size_t i = 0; i + stride < n; i += 2 * stride) {
      compress_fp16(*shards[i], wire_a);
      compress_fp16(*shards[i + stride], wire_b);
      core::Tensor& dst = *shards[i];
      for (i64 j = 0; j < dst.numel(); ++j) {
        dst[j] = half_to_float(wire_a[static_cast<std::size_t>(j)]) +
                 half_to_float(wire_b[static_cast<std::size_t>(j)]);
      }
    }
  }
  shards[0]->scale_(1.0f / static_cast<float>(n));
  // Broadcast the (fp16-rounded) result.
  compress_fp16(*shards[0], wire_a);
  for (std::size_t i = 0; i < n; ++i) {
    decompress_fp16(wire_a, *shards[i]);
  }
}

}  // namespace legw::dist
