// Simulated data-parallel execution.
//
// Large-batch training exists to feed data-parallel clusters, so the library
// ships the core piece: gradient all-reduce across worker shards. Workers
// run on real threads; the reduction is a binary tree executed in a fixed
// order, which makes the result bitwise identical for a given worker count
// and deterministic run to run (floating-point addition is not associative,
// so naive "whoever finishes first" reductions are not reproducible).
#pragma once

#include <functional>
#include <vector>

#include "core/tensor.hpp"

namespace legw::dist {

// In-place tree all-reduce with averaging: after the call every shard holds
// the element-wise mean of all shards. All shards must share one shape.
// The reduction order is the deterministic binary tree (stride doubling),
// independent of thread scheduling.
void tree_allreduce_mean(std::vector<core::Tensor*>& shards);

// Runs `fn(worker)` on `n_workers` real threads; fn returns that worker's
// gradient set (one Tensor per parameter, same order on every worker). The
// per-parameter gradients are then tree-all-reduced (mean) and returned.
// This is the exact dataflow of synchronous data-parallel SGD: per-worker
// micro-batch backward, gradient averaging, one shared update.
std::vector<core::Tensor> parallel_gradients(
    int n_workers,
    const std::function<std::vector<core::Tensor>(int worker)>& fn);

}  // namespace legw::dist
