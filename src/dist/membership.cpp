#include "dist/membership.hpp"

#include <algorithm>

#include "core/rng.hpp"

namespace legw::dist {

const char* membership_policy_name(MembershipPolicy p) {
  switch (p) {
    case MembershipPolicy::kFailFast: return "fail-fast";
    case MembershipPolicy::kDegrade: return "degrade";
    case MembershipPolicy::kReassign: return "reassign";
  }
  return "fail-fast";
}

MembershipPlan MembershipPlan::seeded(u64 seed, i64 steps, int n_replicas,
                                      int n_events) {
  LEGW_CHECK(steps >= 2 && n_replicas >= 2 && n_events >= 0,
             "MembershipPlan::seeded: need steps >= 2, replicas >= 2");
  core::Rng rng(seed);
  MembershipPlan plan;
  // Track per-replica presence while generating so the plan stays
  // consistent; replica 0 never appears.
  std::vector<ReplicaState> st(static_cast<std::size_t>(n_replicas),
                               ReplicaState::kActive);
  i64 step = 1;
  for (int e = 0; e < n_events && step < steps; ++e) {
    const int r = 1 + static_cast<int>(
                          rng.uniform_int(static_cast<u64>(n_replicas - 1)));
    auto& s = st[static_cast<std::size_t>(r)];
    MembershipEvent ev;
    ev.step = step;
    ev.replica = r;
    if (s == ReplicaState::kActive) {
      // Mostly graceful leaves, occasionally a death.
      const bool die = rng.uniform_int(4) == 0;
      ev.kind = die ? MembershipEvent::Kind::kDie
                    : MembershipEvent::Kind::kLeave;
      s = die ? ReplicaState::kDead : ReplicaState::kStandby;
    } else if (s == ReplicaState::kStandby) {
      ev.kind = MembershipEvent::Kind::kJoin;
      s = ReplicaState::kActive;
    } else {
      // Dead stays dead: skip the step slot but not the event budget.
      --e;
      step += 1 + static_cast<i64>(rng.uniform_int(2));
      continue;
    }
    plan.events.push_back(ev);
    step += 1 + static_cast<i64>(rng.uniform_int(2));
  }
  plan.validate(n_replicas);
  return plan;
}

void MembershipPlan::validate(int n_replicas) const {
  std::vector<ReplicaState> st(static_cast<std::size_t>(n_replicas),
                               ReplicaState::kActive);
  i64 prev_step = 0;
  for (const MembershipEvent& e : events) {
    LEGW_CHECK(e.step >= prev_step, "MembershipPlan: events must be sorted");
    prev_step = e.step;
    LEGW_CHECK(e.replica >= 1 && e.replica < n_replicas,
               "MembershipPlan: replica out of range (replica 0 anchors "
               "checkpointing and can never leave)");
    auto& s = st[static_cast<std::size_t>(e.replica)];
    LEGW_CHECK(s != ReplicaState::kDead,
               "MembershipPlan: event on a dead replica");
    switch (e.kind) {
      case MembershipEvent::Kind::kJoin:
        LEGW_CHECK(s == ReplicaState::kStandby,
                   "MembershipPlan: join of a replica that never left");
        s = ReplicaState::kActive;
        break;
      case MembershipEvent::Kind::kLeave:
        LEGW_CHECK(s == ReplicaState::kActive,
                   "MembershipPlan: leave of an absent replica");
        s = ReplicaState::kStandby;
        break;
      case MembershipEvent::Kind::kDie:
        LEGW_CHECK(s == ReplicaState::kActive,
                   "MembershipPlan: death of an absent replica");
        s = ReplicaState::kDead;
        break;
    }
  }
}

MembershipManager::MembershipManager(int n_replicas, MembershipPolicy policy,
                                     const MembershipPlan* plan)
    : n_replicas_(n_replicas), policy_(policy), plan_(plan) {
  LEGW_CHECK(n_replicas_ >= 1, "MembershipManager: need >= 1 replica");
  if (plan_ != nullptr) plan_->validate(n_replicas_);
  state_.assign(static_cast<std::size_t>(n_replicas_),
                ReplicaState::kActive);
  active_.resize(static_cast<std::size_t>(n_replicas_));
  for (int r = 0; r < n_replicas_; ++r) {
    active_[static_cast<std::size_t>(r)] = r;
  }
}

void MembershipManager::apply(const MembershipEvent& e, Transition* out) {
  auto& s = state_[static_cast<std::size_t>(e.replica)];
  switch (e.kind) {
    case MembershipEvent::Kind::kJoin:
      s = ReplicaState::kActive;
      if (out != nullptr) out->joined.push_back(e.replica);
      break;
    case MembershipEvent::Kind::kLeave:
      s = ReplicaState::kStandby;
      if (out != nullptr) out->left.push_back(e.replica);
      break;
    case MembershipEvent::Kind::kDie:
      s = ReplicaState::kDead;
      if (out != nullptr) {
        out->died.push_back(e.replica);
        dying_now_.push_back(e.replica);
      }
      break;
  }
  active_.clear();
  for (int r = 0; r < n_replicas_; ++r) {
    if (state_[static_cast<std::size_t>(r)] == ReplicaState::kActive) {
      active_.push_back(r);
    }
  }
}

MembershipManager::Transition MembershipManager::begin_step(i64 step) {
  LEGW_CHECK(step >= current_step_,
             "MembershipManager: steps must be visited in order");
  current_step_ = step;
  dying_now_.clear();
  Transition tr;
  if (plan_ == nullptr) return tr;
  while (next_event_ < plan_->events.size() &&
         plan_->events[next_event_].step <= step) {
    // Events planned for skipped steps (e.g. a resume that jumps the
    // boundary) still apply, just without the detection theatre.
    const MembershipEvent& e = plan_->events[next_event_];
    apply(e, e.step == step ? &tr : nullptr);
    ++next_event_;
  }
  std::sort(dying_now_.begin(), dying_now_.end());
  LEGW_CHECK(!active_.empty(),
             "MembershipManager: no active replica left at step " +
                 std::to_string(step));
  return tr;
}

void MembershipManager::fast_forward(i64 resume_step) {
  while (plan_ != nullptr && next_event_ < plan_->events.size() &&
         plan_->events[next_event_].step < resume_step) {
    apply(plan_->events[next_event_], nullptr);
    ++next_event_;
  }
  current_step_ = resume_step - 1;
}

std::vector<int> MembershipManager::participants() const {
  std::vector<int> out = active_;
  out.insert(out.end(), dying_now_.begin(), dying_now_.end());
  std::sort(out.begin(), out.end());
  return out;
}

ReplicaState MembershipManager::state(int replica) const {
  LEGW_CHECK(replica >= 0 && replica < n_replicas_,
             "MembershipManager::state: replica out of range");
  return state_[static_cast<std::size_t>(replica)];
}

int MembershipManager::shard_owner(int shard) const {
  LEGW_CHECK(shard >= 0 && shard < n_replicas_,
             "MembershipManager::shard_owner: shard out of range");
  if (state_[static_cast<std::size_t>(shard)] == ReplicaState::kActive) {
    return shard;
  }
  // A replica dying this step keeps its home shard: the engine is about to
  // detect the death and degrade around it.
  for (int d : dying_now_) {
    if (d == shard) return shard;
  }
  if (policy_ != MembershipPolicy::kReassign) return -1;
  // Round-robin orphans over the actives: the k-th orphaned shard (by
  // index) goes to the k-th active (mod n_active) — deterministic, and
  // balanced when several shards are orphaned.
  int orphan_rank = 0;
  for (int s = 0; s < shard; ++s) {
    const bool active =
        state_[static_cast<std::size_t>(s)] == ReplicaState::kActive;
    bool dying = false;
    for (int d : dying_now_) dying = dying || d == s;
    if (!active && !dying) ++orphan_rank;
  }
  return active_[static_cast<std::size_t>(orphan_rank) % active_.size()];
}

std::vector<std::vector<int>> MembershipManager::shard_assignment() const {
  const std::vector<int> parts = participants();
  std::vector<std::vector<int>> out(parts.size());
  for (int s = 0; s < n_replicas_; ++s) {
    const int owner = shard_owner(s);
    if (owner < 0) continue;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i] == owner) {
        out[i].push_back(s);
        break;
      }
    }
  }
  return out;
}

}  // namespace legw::dist
