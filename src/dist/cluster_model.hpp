// Analytic cluster performance model for the Figure-4 speedup study.
//
// The paper's headline 5.3x comes from running a bigger batch on the *same*
// accelerator: per-step overhead (kernel launch, input pipeline, small-GEMM
// inefficiency) is amortised over more samples, so throughput rises with
// batch size until the device saturates. We model device throughput with the
// standard saturation curve
//
//     throughput(b) = peak * b / (b + b_half)
//
// (b_half = batch at half peak), optionally extended to multi-worker data
// parallelism with a latency/bandwidth all-reduce term. The bench calibrates
// peak and b_half from *measured* step times of the real C++ training loops,
// so the reported speedups inherit the genuine efficiency curve of this
// implementation rather than invented constants.
#pragma once

#include <vector>

#include "core/common.hpp"

namespace legw::dist {

struct DeviceModel {
  double peak_samples_per_sec = 1.0;
  double half_saturation_batch = 64.0;

  double throughput(double batch) const {
    return peak_samples_per_sec * batch / (batch + half_saturation_batch);
  }
  double step_seconds(double batch) const { return batch / throughput(batch); }
  // Time for one epoch of n_samples at the given batch size.
  double epoch_seconds(i64 n_samples, i64 batch) const;
};

// Least-squares fit of (peak, b_half) from measured (batch, step_seconds)
// pairs. step_seconds(b) = b/peak + b_half/peak is linear in b, so the fit
// is an exact 1-D linear regression: slope = 1/peak, intercept = b_half/peak.
// Degenerate inputs never divide by zero: an empty sample set returns the
// default DeviceModel, and a single sample (or all-equal batch sizes, where
// a line is unconstrained) falls back to the zero-intercept model through
// the mean measured throughput (b_half = 0).
DeviceModel fit_device_model(const std::vector<std::pair<i64, double>>& samples);

// How gradient communication composes with backward compute in the step-time
// model. kSequential is the classic join-then-reduce schedule; kOverlapped
// models the bucketed engine in dist/overlap.hpp, which hides an
// `overlappable_fraction` of the all-reduce under remaining backward compute
// (the first bucket cannot fire before its gradients exist, so the fraction
// stays below 1).
enum class CommMode { kSequential, kOverlapped };

struct ClusterConfig {
  DeviceModel device;
  i64 max_batch_per_worker = 1024;
  double allreduce_latency_sec = 1e-4;       // per step
  double allreduce_sec_per_param = 1e-9;     // per param per log2(workers)
  i64 model_params = 1'000'000;
  // Fraction of the all-reduce hideable under backward compute in
  // CommMode::kOverlapped (DDP-style bucketing typically hides most of it).
  double overlappable_fraction = 0.9;
};

// One synchronous data-parallel step at the given global batch.
// kSequential: compute + comm. kOverlapped: max(compute, hidden) + exposed
// where hidden = overlappable_fraction * comm — overlap can hide
// communication under compute but never shrinks either term below the
// larger of the two.
double cluster_step_seconds(const ClusterConfig& config, i64 batch,
                            CommMode mode);

// Synchronous data-parallel step time: per-worker compute on batch/workers
// plus the all-reduce. Workers chosen as ceil(batch / max_batch_per_worker).
struct ClusterTiming {
  i64 workers = 1;
  double step_seconds = 0.0;
  double epoch_seconds = 0.0;
};
ClusterTiming cluster_epoch_time(const ClusterConfig& config, i64 n_samples,
                                 i64 batch,
                                 CommMode mode = CommMode::kSequential);

}  // namespace legw::dist
