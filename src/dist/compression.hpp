// Gradient compression for communication: IEEE-754 half-precision (binary16)
// round-tripping, the core of mixed-precision large-batch systems (Jia et
// al. 2018, the paper's ref [11], combined LARS with fp16 gradients).
// Software emulation — correctness-exact rounding to the nearest half,
// round-half-to-even, with proper subnormal/overflow handling.
#pragma once

#include <vector>

#include "core/tensor.hpp"

namespace legw::dist {

// Scalar conversions (exposed for tests).
u16 float_to_half(float f);
float half_to_float(u16 h);

// Lossy round-trip of a whole tensor through binary16.
void compress_fp16(const core::Tensor& src, std::vector<u16>& out);
void decompress_fp16(const std::vector<u16>& src, core::Tensor& out);

// tree_allreduce_mean with fp16 on the wire: shards are compressed, summed
// in float at each tree node, recompressed per hop — the error model of a
// real fp16 ring/tree all-reduce. After the call every shard holds the same
// (half-precision-rounded) mean.
void tree_allreduce_mean_fp16(std::vector<core::Tensor*>& shards);

}  // namespace legw::dist
