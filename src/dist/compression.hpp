// Quantized on-the-wire gradient compression.
//
// Two formats ride the simulated wire (env LEGW_DIST_WIRE, core/flags.hpp):
//
//   fp16 — IEEE-754 binary16 round-tripping, the core of mixed-precision
//          large-batch systems (Jia et al. 2018, the paper's ref [11],
//          combined LARS with fp16 gradients). Software emulation —
//          correctness-exact rounding to the nearest half,
//          round-half-to-even, with proper subnormal/overflow handling.
//   int8 — symmetric per-tensor quantization: scale = max|x| / 127 over the
//          finite elements, q = round(x / scale) clamped to [-127, 127].
//          Non-finite elements decode as NaN (keeping the Inf for +/-inf),
//          so the check/ tripwires still catch a diverging replica after the
//          wire — compression never launders an exploded gradient.
//
// Error-feedback residuals (WireState) make the lossy wire safe for LEGW
// convergence: each replica adds the previous step's quantization error back
// into its gradient before compressing, so the error is compensated over
// steps instead of accumulating (Seide et al. 2014; Karimireddy et al.
// 2019). The residual update is
//     v      = grad + residual
//     grad   = Q(v)            (what the wire carries)
//     residual = v - Q(v)      (carried to the next step)
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ag/variable.hpp"
#include "core/flags.hpp"
#include "core/tensor.hpp"

namespace legw::dist {

using core::WireFormat;

// Scalar conversions (exposed for tests).
u16 float_to_half(float f);
float half_to_float(u16 h);

// Lossy round-trip of a whole tensor through binary16.
void compress_fp16(const core::Tensor& src, std::vector<u16>& out);
void decompress_fp16(const std::vector<u16>& src, core::Tensor& out);

// Symmetric per-tensor int8 quantization (exposed for tests). `scale_out`
// receives max|finite x| / 127 (0 when every element is 0 or non-finite);
// non-finite elements encode as 0 — use wire_roundtrip for the NaN/Inf
// preserving in-place path.
void quantize_int8(const core::Tensor& src, std::vector<i8>& out,
                   float* scale_out);
// Decode: out[i] = src[i] * scale.
void dequantize_int8(const std::vector<i8>& src, float scale,
                     core::Tensor& out);

// Lossy in-place round-trip of `t` through `format` (kFp32 is the identity).
// Non-finite elements pass through unchanged (NaN stays NaN, +-Inf stays
// +-Inf), so the check/ tripwires still fire after the wire. Every call is
// one re-quantization event: bumps the dist.requantize counter (except for
// kFp32).
void wire_roundtrip(WireFormat format, core::Tensor& t);

// Per-(replica, parameter) error-feedback residuals, owned by the caller
// and carried across steps. Thread-safety: entries for different parameters
// are independent; the engine's reducer threads touch disjoint parameter
// sets (buckets are disjoint), so no locking is needed.
class WireState {
 public:
  // Zero residuals shaped like the replica parameters.
  explicit WireState(
      const std::vector<std::vector<ag::Variable>>& replica_params);

  core::Tensor& residual(int replica, std::size_t param);
  int n_replicas() const { return static_cast<int>(residual_.size()); }
  std::size_t n_params() const {
    return residual_.empty() ? 0 : residual_[0].size();
  }
  // L-inf norm over every residual — the property suites assert this stays
  // bounded over long runs (error feedback compensates, never accumulates).
  float max_abs_residual() const;
  // Named views ("dist.ef.r<replica>.p<param>") for TrainState::extra, so
  // quantized-wire runs resume bit-identically from a checkpoint.
  std::vector<std::pair<std::string, core::Tensor*>> named_residuals();

 private:
  std::vector<std::vector<core::Tensor>> residual_;
};

// Sender-edge compression for one parameter's shard set: for each shard i
// (belonging to global replica ids[i]),
//     grad := Q(grad [+ residual]);  residual := pre - Q(...)
// with residuals looked up in `state` (nullptr = plain quantization, no
// feedback). kFp32 is a no-op. The quantized contributions are then summed
// in fp32 by the all-reduce algorithms — the fp32-accumulate wire model of
// modern collectives.
void quantize_contributions(std::vector<core::Tensor*>& shards,
                            WireFormat format, WireState* state,
                            const std::vector<int>* global_ids,
                            std::size_t param);

// Broadcast-edge compression: the reduced mean (already identical in every
// shard) is round-tripped once and copied back, so every replica decodes the
// identical bytes and stays bit-synchronised.
void quantize_broadcast(std::vector<core::Tensor*>& shards, WireFormat format);

// tree_allreduce_mean with fp16 on the wire: shards are compressed, summed
// in float at each tree node, recompressed per hop — the error model of a
// real fp16 ring/tree all-reduce. After the call every shard holds the same
// (half-precision-rounded) mean.
void tree_allreduce_mean_fp16(std::vector<core::Tensor*>& shards);

}  // namespace legw::dist
