#include "dist/cluster_model.hpp"

#include <cmath>

namespace legw::dist {

double DeviceModel::epoch_seconds(i64 n_samples, i64 batch) const {
  LEGW_CHECK(batch > 0 && n_samples > 0, "epoch_seconds: bad sizes");
  const i64 steps = (n_samples + batch - 1) / batch;
  return static_cast<double>(steps) * step_seconds(static_cast<double>(batch));
}

DeviceModel fit_device_model(
    const std::vector<std::pair<i64, double>>& samples) {
  LEGW_CHECK(samples.size() >= 2, "fit_device_model: need >= 2 samples");
  // Linear regression of t = slope * b + intercept.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(samples.size());
  for (const auto& [b, t] : samples) {
    const double x = static_cast<double>(b);
    sx += x;
    sy += t;
    sxx += x * x;
    sxy += x * t;
  }
  const double denom = n * sxx - sx * sx;
  LEGW_CHECK(std::abs(denom) > 1e-12, "fit_device_model: degenerate samples");
  double slope = (n * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / n;
  // Guard against tiny negative estimates from noisy timings.
  slope = std::max(slope, 1e-12);
  intercept = std::max(intercept, 0.0);
  DeviceModel m;
  m.peak_samples_per_sec = 1.0 / slope;
  m.half_saturation_batch = intercept / slope;
  return m;
}

ClusterTiming cluster_epoch_time(const ClusterConfig& config, i64 n_samples,
                                 i64 batch) {
  LEGW_CHECK(batch > 0 && n_samples > 0, "cluster_epoch_time: bad sizes");
  ClusterTiming t;
  t.workers = (batch + config.max_batch_per_worker - 1) /
              config.max_batch_per_worker;
  const double per_worker_batch =
      static_cast<double>(batch) / static_cast<double>(t.workers);
  const double compute = config.device.step_seconds(per_worker_batch);
  double comm = 0.0;
  if (t.workers > 1) {
    const double rounds = std::log2(static_cast<double>(t.workers));
    comm = config.allreduce_latency_sec +
           config.allreduce_sec_per_param *
               static_cast<double>(config.model_params) * rounds;
  }
  t.step_seconds = compute + comm;
  const i64 steps = (n_samples + batch - 1) / batch;
  t.epoch_seconds = static_cast<double>(steps) * t.step_seconds;
  return t;
}

}  // namespace legw::dist
