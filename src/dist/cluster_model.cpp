#include "dist/cluster_model.hpp"

#include <algorithm>
#include <cmath>

namespace legw::dist {

double DeviceModel::epoch_seconds(i64 n_samples, i64 batch) const {
  LEGW_CHECK(batch > 0 && n_samples > 0, "epoch_seconds: bad sizes");
  const i64 steps = (n_samples + batch - 1) / batch;
  return static_cast<double>(steps) * step_seconds(static_cast<double>(batch));
}

DeviceModel fit_device_model(
    const std::vector<std::pair<i64, double>>& samples) {
  if (samples.empty()) return DeviceModel{};
  // Linear regression of t = slope * b + intercept.
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(samples.size());
  for (const auto& [b, t] : samples) {
    const double x = static_cast<double>(b);
    sx += x;
    sy += t;
    sxx += x * x;
    sxy += x * t;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) <= 1e-12) {
    // One sample, or all samples at the same batch size: a line is
    // unconstrained, so fall back to the zero-intercept model through the
    // mean measured throughput instead of dividing by ~0.
    double throughput_sum = 0.0;
    i64 usable = 0;
    for (const auto& [b, t] : samples) {
      if (t > 0.0) {
        throughput_sum += static_cast<double>(b) / t;
        ++usable;
      }
    }
    DeviceModel m;
    if (usable > 0) {
      m.peak_samples_per_sec = throughput_sum / static_cast<double>(usable);
    }
    m.half_saturation_batch = 0.0;
    return m;
  }
  double slope = (n * sxy - sx * sy) / denom;
  double intercept = (sy - slope * sx) / n;
  // Guard against tiny negative estimates from noisy timings.
  slope = std::max(slope, 1e-12);
  intercept = std::max(intercept, 0.0);
  DeviceModel m;
  m.peak_samples_per_sec = 1.0 / slope;
  m.half_saturation_batch = intercept / slope;
  return m;
}

double cluster_step_seconds(const ClusterConfig& config, i64 batch,
                            CommMode mode) {
  LEGW_CHECK(batch > 0, "cluster_step_seconds: bad batch");
  const i64 workers = (batch + config.max_batch_per_worker - 1) /
                      config.max_batch_per_worker;
  const double per_worker_batch =
      static_cast<double>(batch) / static_cast<double>(workers);
  const double compute = config.device.step_seconds(per_worker_batch);
  double comm = 0.0;
  if (workers > 1) {
    const double rounds = std::log2(static_cast<double>(workers));
    comm = config.allreduce_latency_sec +
           config.allreduce_sec_per_param *
               static_cast<double>(config.model_params) * rounds;
  }
  if (mode == CommMode::kOverlapped) {
    const double f =
        std::min(std::max(config.overlappable_fraction, 0.0), 1.0);
    const double hidden = f * comm;
    return std::max(compute, hidden) + (comm - hidden);
  }
  return compute + comm;
}

ClusterTiming cluster_epoch_time(const ClusterConfig& config, i64 n_samples,
                                 i64 batch, CommMode mode) {
  LEGW_CHECK(batch > 0 && n_samples > 0, "cluster_epoch_time: bad sizes");
  ClusterTiming t;
  t.workers = (batch + config.max_batch_per_worker - 1) /
              config.max_batch_per_worker;
  t.step_seconds = cluster_step_seconds(config, batch, mode);
  const i64 steps = (n_samples + batch - 1) / batch;
  t.epoch_seconds = static_cast<double>(steps) * t.step_seconds;
  return t;
}

}  // namespace legw::dist
