// Overlapped, bucketed gradient all-reduce over in-process model replicas.
//
// synchronous_backward (data_parallel.hpp) runs every replica's backward to
// completion, joins at a barrier, then reduces gradients one parameter at a
// time — the serialization that large-batch scaling work (Goyal et al.; You
// et al., LARS/LAMB) engineers away. This engine removes it: parameters are
// grouped into size-targeted buckets, fixed before backward starts, and a
// bucket's deterministic tree-allreduce fires on a communication thread as
// soon as every replica has populated all of that bucket's gradients —
// signalled by ag::BackwardHooks::on_leaf_grad_ready — while the tail of
// backward is still executing on the replica threads.
//
// Determinism argument: bucket membership depends only on parameter order
// and the configured bucket size, never on arrival time. Within a bucket,
// gradients reduce parameter by parameter through the same stride-doubling
// tree as tree_allreduce_mean, in replica-index order. Buckets are disjoint,
// so the order in which the communication thread happens to service them
// cannot change any value: the result is bitwise identical to the
// synchronous path (tests/test_dist_overlap.cpp asserts this at 1/2/4/8
// replicas).
//
// Fault injection: a seeded FaultPlan makes chosen replicas slow (straggler
// delay before their backward starts) or dead (never launched, never
// reports). A per-bucket timeout plus policy governs degradation: kFailFast
// returns a clean error naming the stuck bucket and replicas;
// kDegradeToSurvivors excludes the blocking replicas and reduces the mean
// over the survivors, counting the event in OverlapStats and the
// `replica_timeout` obs counter. Spans `replica_backward`, `bucket_reduce`
// and `overlap_idle` make the overlap visible in Chrome traces.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ag/variable.hpp"

namespace legw::dist {

// A deterministic, seeded set of injected replica faults.
struct FaultPlan {
  enum class Kind {
    kSlow,  // replica sleeps delay_ms before starting its backward
    kDead   // replica never runs and never reports
  };
  struct Fault {
    int replica = 0;
    Kind kind = Kind::kSlow;
    double delay_ms = 0.0;
  };
  std::vector<Fault> faults;

  // Picks `count` distinct straggler replicas out of [0, n_replicas) with a
  // seeded core::Rng, each delayed by delay_ms. Same seed, same plan.
  static FaultPlan stragglers(u64 seed, int n_replicas, int count,
                              double delay_ms);
  static FaultPlan dead_replica(int replica);

  bool is_dead(int replica) const;
  // Total straggler delay for this replica (0 when unaffected).
  double delay_ms_for(int replica) const;
};

enum class TimeoutPolicy {
  kFailFast,           // return ok=false naming the stuck bucket/replicas
  kDegradeToSurvivors  // exclude blockers, mean over surviving replicas
};

// Simulated wire cost of shipping one bucket through the all-reduce: the
// communication thread sleeps latency + bytes/bandwidth per bucket. Sleeping
// releases the core, so overlap genuinely hides this time under backward
// compute even on a single-core host; bench/dist_scaling.cpp uses it for a
// fair sync-vs-overlap A/B in which both modes pay the identical wire bill.
struct WireModel {
  double latency_us = 0.0;
  double gbytes_per_sec = 0.0;  // 0 = infinite bandwidth
  double bucket_us(i64 bytes) const;
};

struct OverlapConfig {
  // Target bucket payload in bytes; a bucket closes once it reaches this.
  // Parameters larger than the target get a bucket of their own.
  i64 bucket_bytes = 256 * 1024;
  // false: barrier-join every replica, then reduce buckets in index order on
  // the calling thread — the synchronous baseline, same buckets, same wire
  // bill, for A/B measurement. Results are bitwise identical either way.
  bool overlap = true;
  // false: skip the per-replica zero_grad so gradients accumulate onto
  // whatever the caller left in them (micro-batch accumulation composes with
  // train::GradientAccumulator; see tests/test_train_extras.cpp).
  bool zero_grads = true;
  // Max time the reducer waits with no completed bucket available before the
  // timeout policy triggers. 0 = wait forever (required to be > 0 when the
  // fault plan contains dead replicas, else the engine would hang).
  double bucket_timeout_ms = 0.0;
  TimeoutPolicy timeout_policy = TimeoutPolicy::kFailFast;
  WireModel wire;
  const FaultPlan* faults = nullptr;  // not owned; nullptr = fault-free
};

struct OverlapStats {
  i64 n_buckets = 0;
  i64 buckets_reduced = 0;
  i64 timeout_episodes = 0;
  std::vector<int> dead_replicas;      // from the plan: never launched
  std::vector<int> excluded_replicas;  // dead + degraded-away stragglers
  i64 idle_ns = 0;  // reducer time spent waiting for a completed bucket
};

struct OverlapResult {
  bool ok = false;
  std::string error;       // empty when ok
  float mean_loss = 0.0f;  // over the replicas that ran, in index order
  OverlapStats stats;
};

// Fixed, deterministic bucket plan: walk parameters in declaration order,
// close a bucket once its payload reaches bucket_bytes. Every parameter
// lands in exactly one bucket; bucket contents are consecutive parameter
// indices. Exposed for tests and benches.
std::vector<std::vector<std::size_t>> plan_buckets(
    const std::vector<ag::Variable>& params, i64 bucket_bytes);

// Config with bucket_bytes taken from LEGW_DIST_BUCKET_KB (default 256).
OverlapConfig default_overlap_config();

// One overlapped data-parallel backward pass. Contract matches
// synchronous_backward: replica_params[r] are replica r's parameters
// (aligned across r), loss_fn(r) builds replica r's shard loss from replica
// r's parameters only, and on success every non-excluded replica's gradients
// hold the element-wise mean over the participating replicas. loss_fn runs
// concurrently, one thread per live replica.
OverlapResult overlapped_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const OverlapConfig& config = {});

// Dispatches on core::dist_mode() (env LEGW_DIST): kSync →
// synchronous_backward, kOverlap → overlapped_backward with
// default_overlap_config(). Returns the mean shard loss; aborts if the
// overlap engine reports failure (no fault plan is installed here, so a
// failure is a programming error, not an injected fault).
float replica_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn);

}  // namespace legw::dist
