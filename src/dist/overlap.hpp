// Overlapped, bucketed gradient all-reduce over in-process model replicas.
//
// synchronous_backward (data_parallel.hpp) runs every replica's backward to
// completion, joins at a barrier, then reduces gradients one parameter at a
// time — the serialization that large-batch scaling work (Goyal et al.; You
// et al., LARS/LAMB) engineers away. This engine removes it: parameters are
// grouped into size-targeted buckets, fixed before backward starts, and a
// bucket's deterministic tree-allreduce fires on a communication thread as
// soon as every replica has populated all of that bucket's gradients —
// signalled by ag::BackwardHooks::on_leaf_grad_ready — while the tail of
// backward is still executing on the replica threads.
//
// Determinism argument: bucket membership depends only on parameter order
// and the configured bucket size, never on arrival time. Within a bucket,
// gradients reduce parameter by parameter through the same stride-doubling
// tree as tree_allreduce_mean, in replica-index order. Buckets are disjoint,
// so the order in which the communication thread happens to service them
// cannot change any value: the result is bitwise identical to the
// synchronous path (tests/test_dist_overlap.cpp asserts this at 1/2/4/8
// replicas).
//
// Fault injection: a seeded FaultPlan makes chosen replicas slow (straggler
// delay before their backward starts) or dead (never launched, never
// reports). A per-bucket timeout plus policy governs degradation: kFailFast
// returns a clean error naming the stuck bucket and replicas;
// kDegradeToSurvivors excludes the blocking replicas and reduces the mean
// over the survivors, counting the event in OverlapStats and the
// `replica_timeout` obs counter. Spans `replica_backward`, `bucket_reduce`
// and `overlap_idle` make the overlap visible in Chrome traces.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ag/variable.hpp"
#include "core/flags.hpp"

namespace legw::dist {

class WireState;  // compression.hpp — error-feedback residuals

using core::DistAlgo;
using core::WireFormat;

// A deterministic, seeded set of injected replica faults.
struct FaultPlan {
  enum class Kind {
    kSlow,  // replica sleeps delay_ms before starting its backward
    kDead   // replica never runs and never reports
  };
  struct Fault {
    int replica = 0;
    Kind kind = Kind::kSlow;
    double delay_ms = 0.0;
  };
  std::vector<Fault> faults;

  // Picks `count` distinct straggler replicas out of [0, n_replicas) with a
  // seeded core::Rng, each delayed by delay_ms. Same seed, same plan.
  static FaultPlan stragglers(u64 seed, int n_replicas, int count,
                              double delay_ms);
  static FaultPlan dead_replica(int replica);

  bool is_dead(int replica) const;
  // Total straggler delay for this replica (0 when unaffected).
  double delay_ms_for(int replica) const;
};

enum class TimeoutPolicy {
  kFailFast,           // return ok=false naming the stuck bucket/replicas
  kDegradeToSurvivors  // exclude blockers, mean over surviving replicas
};

// Simulated wire cost of shipping one bucket through the all-reduce: the
// communication thread sleeps the modelled critical-path time per bucket.
// Sleeping releases the core, so overlap genuinely hides this time under
// backward compute even on a single-core host; bench/dist_scaling.cpp uses
// it for a fair sync-vs-overlap A/B in which both modes pay the identical
// wire bill.
//
// allreduce_us models the critical path per algorithm (`bytes` is the
// fp32-payload size; the wire format's element width scales the bandwidth
// term):
//   tree — 2*ceil(log2 n) hops, each carrying the full payload;
//   ring — 2*(n-1) hops, each carrying payload/n: latency grows with n but
//          the bandwidth term stays ~2*payload (bandwidth-optimal);
//   hier — intra-group hops at the (faster) intra latency/bandwidth,
//          inter-group hops over the leaders at fabric cost — the two-level
//          island topology (NVLink within a node, fabric between).
struct WireModel {
  double latency_us = 0.0;
  double gbytes_per_sec = 0.0;  // 0 = infinite bandwidth
  // Intra-group link for the hierarchical algorithm; unset (0) fall back to
  // the fabric numbers above.
  double intra_latency_us = 0.0;
  double intra_gbytes_per_sec = 0.0;
  // Legacy flat cost: latency + bytes/bandwidth, one hop.
  double bucket_us(i64 bytes) const;
  double allreduce_us(DistAlgo resolved, int n_shards, i64 bytes,
                      WireFormat wire, int group_size) const;
};

struct OverlapConfig {
  // Target bucket payload in bytes; a bucket closes once it reaches this.
  // Parameters larger than the target get a bucket of their own.
  i64 bucket_bytes = 256 * 1024;
  // false: barrier-join every replica, then reduce buckets in index order on
  // the calling thread — the synchronous baseline, same buckets, same wire
  // bill, for A/B measurement. Results are bitwise identical either way.
  bool overlap = true;
  // false: skip the per-replica zero_grad so gradients accumulate onto
  // whatever the caller left in them (micro-batch accumulation composes with
  // train::GradientAccumulator; see tests/test_train_extras.cpp).
  bool zero_grads = true;
  // Max time the reducer waits with no completed bucket available before the
  // timeout policy triggers. 0 = wait forever (required to be > 0 when the
  // fault plan contains dead replicas, else the engine would hang).
  double bucket_timeout_ms = 0.0;
  TimeoutPolicy timeout_policy = TimeoutPolicy::kFailFast;
  WireModel wire;
  const FaultPlan* faults = nullptr;  // not owned; nullptr = fault-free
  // Which all-reduce algorithm reduces each bucket; kAuto resolves per
  // bucket from its payload size (dist::choose_algorithm). Env default:
  // LEGW_DIST_ALGO.
  DistAlgo algo = DistAlgo::kAuto;
  // Group size for the hierarchical algorithm (0 = hier_group_size(n)).
  // Env default: LEGW_DIST_GROUP.
  int hier_group = 0;
  // On-the-wire gradient format (env default: LEGW_DIST_WIRE). Non-fp32
  // formats quantize each replica's contribution at the sender edge, sum in
  // fp32, and re-quantize the mean for the broadcast.
  WireFormat wire_format = WireFormat::kFp32;
  // Error-feedback residual state for the quantized wire; not owned.
  // nullptr = plain quantization (no feedback). Must outlive the call and
  // be shaped like replica_params (WireState's constructor).
  WireState* wire_state = nullptr;
  // Communication threads servicing completed buckets. Buckets are disjoint
  // and each is reduced exactly once, so values are unchanged by the worker
  // count — only the wall-clock cost of the wire sleeps is. Env default:
  // LEGW_DIST_COMM_THREADS (1).
  int comm_threads = 1;
  // Global replica ids aligned with replica_params, for runs over a subset
  // of an elastic membership (dist/membership.hpp): fault-plan lookups and
  // error-feedback residuals are indexed by these ids. nullptr = identity.
  const std::vector<int>* replica_ids = nullptr;
};

struct OverlapStats {
  i64 n_buckets = 0;
  i64 buckets_reduced = 0;
  i64 timeout_episodes = 0;
  std::vector<int> dead_replicas;      // from the plan: never launched
  std::vector<int> excluded_replicas;  // dead + degraded-away stragglers
  i64 idle_ns = 0;  // reducer time spent waiting for a completed bucket
  i64 wire_bytes = 0;      // simulated bytes on the wire (format-scaled)
  i64 buckets_tree = 0;    // buckets reduced per resolved algorithm
  i64 buckets_ring = 0;
  i64 buckets_hier = 0;
};

struct OverlapResult {
  bool ok = false;
  std::string error;       // empty when ok
  float mean_loss = 0.0f;  // over the replicas that ran, in index order
  OverlapStats stats;
};

// Fixed, deterministic bucket plan: walk parameters in declaration order,
// close a bucket once its payload reaches bucket_bytes. Every parameter
// lands in exactly one bucket; bucket contents are consecutive parameter
// indices. Exposed for tests and benches.
std::vector<std::vector<std::size_t>> plan_buckets(
    const std::vector<ag::Variable>& params, i64 bucket_bytes);

// Config from the environment: bucket_bytes from LEGW_DIST_BUCKET_KB
// (default 256), algo from LEGW_DIST_ALGO, wire_format from LEGW_DIST_WIRE,
// hier_group from LEGW_DIST_GROUP, comm_threads from
// LEGW_DIST_COMM_THREADS.
OverlapConfig default_overlap_config();

// One overlapped data-parallel backward pass. Contract matches
// synchronous_backward: replica_params[r] are replica r's parameters
// (aligned across r), loss_fn(r) builds replica r's shard loss from replica
// r's parameters only, and on success every non-excluded replica's gradients
// hold the element-wise mean over the participating replicas. loss_fn runs
// concurrently, one thread per live replica.
OverlapResult overlapped_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const OverlapConfig& config = {});

// Dispatches on core::dist_mode() (env LEGW_DIST): kSync →
// synchronous_backward, kOverlap → overlapped_backward with
// default_overlap_config(). Returns the mean shard loss; aborts if the
// overlap engine reports failure (no fault plan is installed here, so a
// failure is a programming error, not an injected fault).
float replica_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn);

// Per-step options the training loop threads through the dispatcher when it
// runs an elastic membership: injected faults for replicas dying this step,
// global replica ids for a participant subset, and the persistent
// error-feedback state for the quantized wire.
struct ReplicaStepOptions {
  WireState* wire_state = nullptr;
  const FaultPlan* faults = nullptr;
  const std::vector<int>* replica_ids = nullptr;
  double bucket_timeout_ms = 0.0;
  TimeoutPolicy timeout_policy = TimeoutPolicy::kFailFast;
};

// replica_backward with full result reporting and per-step options. Both
// dist modes run through the engine (kSync = overlap disabled: identical
// buckets, identical values, barrier schedule), so fault handling and the
// quantized wire behave identically under either LEGW_DIST setting.
OverlapResult replica_backward_ex(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const ReplicaStepOptions& options);

}  // namespace legw::dist
