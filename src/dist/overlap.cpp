#include "dist/overlap.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "core/flags.hpp"
#include "core/rng.hpp"
#include "dist/allreduce.hpp"
#include "dist/data_parallel.hpp"
#include "mem/alloc.hpp"
#include "obs/trace.hpp"

namespace legw::dist {

FaultPlan FaultPlan::stragglers(u64 seed, int n_replicas, int count,
                                double delay_ms) {
  LEGW_CHECK(count >= 0 && count <= n_replicas,
             "FaultPlan::stragglers: count out of range");
  core::Rng rng(seed);
  std::vector<int> pool(static_cast<std::size_t>(n_replicas));
  std::iota(pool.begin(), pool.end(), 0);
  FaultPlan plan;
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.uniform_int(
                       static_cast<u64>(n_replicas - i)));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    plan.faults.push_back(
        {pool[static_cast<std::size_t>(i)], Kind::kSlow, delay_ms});
  }
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const Fault& a, const Fault& b) { return a.replica < b.replica; });
  return plan;
}

FaultPlan FaultPlan::dead_replica(int replica) {
  FaultPlan plan;
  plan.faults.push_back({replica, Kind::kDead, 0.0});
  return plan;
}

bool FaultPlan::is_dead(int replica) const {
  for (const Fault& f : faults) {
    if (f.replica == replica && f.kind == Kind::kDead) return true;
  }
  return false;
}

double FaultPlan::delay_ms_for(int replica) const {
  double total = 0.0;
  for (const Fault& f : faults) {
    if (f.replica == replica && f.kind == Kind::kSlow) total += f.delay_ms;
  }
  return total;
}

double WireModel::bucket_us(i64 bytes) const {
  double us = latency_us;
  if (gbytes_per_sec > 0.0) {
    us += static_cast<double>(bytes) / (gbytes_per_sec * 1e3);
  }
  return us;
}

std::vector<std::vector<std::size_t>> plan_buckets(
    const std::vector<ag::Variable>& params, i64 bucket_bytes) {
  LEGW_CHECK(bucket_bytes > 0, "plan_buckets: bucket_bytes must be positive");
  std::vector<std::vector<std::size_t>> buckets;
  i64 filled = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const i64 bytes =
        params[p].numel() * static_cast<i64>(sizeof(float));
    if (buckets.empty() || filled >= bucket_bytes) {
      buckets.emplace_back();
      filled = 0;
    }
    buckets.back().push_back(p);
    filled += bytes;
  }
  return buckets;
}

OverlapConfig default_overlap_config() {
  OverlapConfig config;
  if (const char* env = std::getenv("LEGW_DIST_BUCKET_KB")) {
    char* end = nullptr;
    const long long kb = std::strtoll(env, &end, 10);
    LEGW_CHECK(end != nullptr && *end == '\0' && kb > 0,
               std::string("LEGW_DIST_BUCKET_KB must be a positive integer, "
                           "got '") +
                   env + "'");
    config.bucket_bytes = static_cast<i64>(kb) * 1024;
  }
  return config;
}

namespace {

void sleep_us(double us) {
  if (us > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
  }
}

std::string join_ints(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

OverlapResult overlapped_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const OverlapConfig& config) {
  const int n_replicas = static_cast<int>(replica_params.size());
  LEGW_CHECK(n_replicas >= 1, "overlapped_backward: need >= 1 replica");
  const std::size_t n_params = replica_params[0].size();
  for (const auto& params : replica_params) {
    LEGW_CHECK(params.size() == n_params,
               "overlapped_backward: replicas disagree on parameter count");
  }

  OverlapResult result;
  const auto buckets = plan_buckets(replica_params[0], config.bucket_bytes);
  const std::size_t n_buckets = buckets.size();
  result.stats.n_buckets = static_cast<i64>(n_buckets);

  std::vector<std::size_t> bucket_of(n_params, 0);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    for (std::size_t p : buckets[b]) bucket_of[p] = b;
  }

  // Materialise every gradient buffer up front, on this thread, so the
  // replica and communication threads only ever touch pre-allocated storage.
  std::vector<std::vector<core::Tensor*>> grads(
      static_cast<std::size_t>(n_replicas));
  // Per replica: leaf Node -> parameter index, for hook dispatch.
  std::vector<std::unordered_map<ag::Node*, std::size_t>> index_of(
      static_cast<std::size_t>(n_replicas));
  for (int r = 0; r < n_replicas; ++r) {
    auto& g = grads[static_cast<std::size_t>(r)];
    g.reserve(n_params);
    for (std::size_t p = 0; p < n_params; ++p) {
      ag::Variable handle = replica_params[static_cast<std::size_t>(r)][p];
      g.push_back(&handle.mutable_grad());
      index_of[static_cast<std::size_t>(r)][handle.node().get()] = p;
    }
  }

  // Injected dead replicas are recorded but NOT pre-excluded: the engine
  // must *detect* them through the timeout machinery, exactly as it would a
  // genuinely hung node. They only leave the reduction once a timeout
  // episode names them as blockers (or fail-fast aborts the step).
  std::vector<char> excluded(static_cast<std::size_t>(n_replicas), 0);
  if (config.faults != nullptr) {
    for (int r = 0; r < n_replicas; ++r) {
      if (config.faults->is_dead(r)) result.stats.dead_replicas.push_back(r);
    }
  }
  const bool any_dead = !result.stats.dead_replicas.empty();
  LEGW_CHECK(!any_dead || config.bucket_timeout_ms > 0,
             "overlapped_backward: a fault plan with dead replicas requires "
             "bucket_timeout_ms > 0");
  LEGW_CHECK(result.stats.dead_replicas.size() <
                 static_cast<std::size_t>(n_replicas),
             "overlapped_backward: every replica is dead");

  // pending[b * n_replicas + r]: gradients replica r still owes bucket b.
  std::vector<std::atomic<int>> pending(n_buckets *
                                        static_cast<std::size_t>(n_replicas));
  for (std::size_t b = 0; b < n_buckets; ++b) {
    for (int r = 0; r < n_replicas; ++r) {
      pending[b * static_cast<std::size_t>(n_replicas) +
              static_cast<std::size_t>(r)]
          .store(static_cast<int>(buckets[b].size()),
                 std::memory_order_relaxed);
    }
  }

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::size_t> ready;  // completed buckets, completion order
  std::vector<char> enqueued(n_buckets, 0);
  bool failed = false;
  std::string error;

  auto bucket_pending = [&](std::size_t b, int r) -> std::atomic<int>& {
    return pending[b * static_cast<std::size_t>(n_replicas) +
                   static_cast<std::size_t>(r)];
  };

  // Caller must hold mu. Enqueues b if every non-excluded replica has
  // delivered all of b's gradients and b was not already claimed.
  auto try_enqueue_locked = [&](std::size_t b) {
    if (enqueued[b]) return;
    for (int r = 0; r < n_replicas; ++r) {
      if (excluded[static_cast<std::size_t>(r)]) continue;
      if (bucket_pending(b, r).load(std::memory_order_acquire) != 0) return;
    }
    enqueued[b] = 1;
    ready.push_back(b);
    cv.notify_one();
  };

  // Replica r delivered parameter p's final gradient. The release half of
  // the fetch_sub publishes the gradient writes; the reducer's acquire load
  // of pending (and the RMW release sequence) makes them visible.
  auto signal = [&](int r, std::size_t p) {
    const std::size_t b = bucket_of[p];
    if (bucket_pending(b, r).fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      try_enqueue_locked(b);
    }
  };

  std::vector<float> losses(static_cast<std::size_t>(n_replicas), 0.0f);
  std::vector<char> ran(static_cast<std::size_t>(n_replicas), 0);

  auto replica_body = [&](int r) {
    if (config.faults != nullptr) {
      const double delay = config.faults->delay_ms_for(r);
      if (delay > 0.0) {
        obs::Span span("fault_straggler");
        sleep_us(delay * 1000.0);
      }
    }
    obs::Span span("replica_backward");
    // Arena mode: each replica thread drives its own step arena (slot r),
    // so forward activations and interior gradients replay in place with no
    // cross-replica sharing. Leaf grads stay heap-bound (Node::ensure_grad)
    // — the reducer thread reads them outside this scope.
    mem::TrainStepScope arena_scope(mem::step_arena(r));
    if (config.zero_grads) {
      for (std::size_t p = 0; p < n_params; ++p) {
        grads[static_cast<std::size_t>(r)][p]->zero_();
      }
    }
    std::vector<char> fired(n_params, 0);
    ag::BackwardHooks hooks;
    hooks.on_leaf_grad_ready = [&](ag::Node& leaf) {
      const auto it = index_of[static_cast<std::size_t>(r)].find(&leaf);
      if (it == index_of[static_cast<std::size_t>(r)].end()) return;
      if (fired[it->second]) return;
      fired[it->second] = 1;
      signal(r, it->second);
    };
    ag::Variable loss = loss_fn(r);
    losses[static_cast<std::size_t>(r)] = loss.value()[0];
    ran[static_cast<std::size_t>(r)] = 1;
    ag::backward(loss, nullptr, hooks);
    // Parameters the graph never reached keep their (zeroed or accumulated)
    // gradient as-is — that IS their final value, so deliver it.
    for (std::size_t p = 0; p < n_params; ++p) {
      if (!fired[p]) signal(r, p);
    }
  };

  // Reducer: service completed buckets in completion order. Values cannot
  // depend on that order because buckets are disjoint and each bucket
  // reduces parameter by parameter in replica-index order.
  auto reduce_loop = [&] {
    std::size_t processed = 0;
    std::vector<int> participants;
    std::vector<core::Tensor*> shards;
    while (processed < n_buckets) {
      std::size_t b = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        while (ready.empty()) {
          const auto t0 = std::chrono::steady_clock::now();
          bool got = true;
          {
            obs::Span idle_span("overlap_idle");
            if (config.bucket_timeout_ms > 0) {
              got = cv.wait_for(
                  lock,
                  std::chrono::duration<double, std::milli>(
                      config.bucket_timeout_ms),
                  [&] { return !ready.empty(); });
            } else {
              cv.wait(lock, [&] { return !ready.empty(); });
            }
          }
          result.stats.idle_ns +=
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          if (got) break;

          // Timed out with no completed bucket. The blockers are the
          // replicas still owing gradients on some unclaimed bucket.
          ++result.stats.timeout_episodes;
          std::vector<int> blockers;
          for (int r = 0; r < n_replicas; ++r) {
            if (excluded[static_cast<std::size_t>(r)]) continue;
            for (std::size_t b2 = 0; b2 < n_buckets; ++b2) {
              if (enqueued[b2]) continue;
              if (bucket_pending(b2, r).load(std::memory_order_acquire) !=
                  0) {
                blockers.push_back(r);
                break;
              }
            }
          }
          if (config.timeout_policy == TimeoutPolicy::kFailFast) {
            failed = true;
            error = "overlapped_backward: bucket all-reduce timed out after " +
                    std::to_string(config.bucket_timeout_ms) +
                    " ms waiting on replica(s) [" + join_ints(blockers) + "]";
            return;
          }
          // Degrade: drop the blockers, then re-scan — buckets that are now
          // complete over the survivors become reducible.
          for (int r : blockers) {
            excluded[static_cast<std::size_t>(r)] = 1;
            result.stats.excluded_replicas.push_back(r);
            obs::count("replica_timeout", 1);
          }
          int live = 0;
          for (int r = 0; r < n_replicas; ++r) {
            if (!excluded[static_cast<std::size_t>(r)]) ++live;
          }
          if (live == 0) {
            failed = true;
            error =
                "overlapped_backward: degraded until no replica survived";
            return;
          }
          for (std::size_t b2 = 0; b2 < n_buckets; ++b2) {
            try_enqueue_locked(b2);
          }
        }
        b = ready.front();
        ready.pop_front();
        // Participant set snapshot: every currently-live replica delivered
        // this bucket in full (guaranteed by try_enqueue_locked; exclusion
        // only shrinks the set and excluded replicas never rejoin).
        participants.clear();
        for (int r = 0; r < n_replicas; ++r) {
          if (excluded[static_cast<std::size_t>(r)]) continue;
          if (bucket_pending(b, r).load(std::memory_order_acquire) == 0) {
            participants.push_back(r);
          }
        }
      }
      // Reduce outside the lock so replica threads keep signalling.
      i64 bytes = 0;
      {
        obs::Span span("bucket_reduce");
        shards.resize(participants.size());
        for (std::size_t p : buckets[b]) {
          for (std::size_t i = 0; i < participants.size(); ++i) {
            shards[i] = grads[static_cast<std::size_t>(participants[i])][p];
          }
          tree_allreduce_mean(shards);
          bytes += shards.empty() ? 0
                                  : shards[0]->numel() *
                                        static_cast<i64>(sizeof(float));
        }
        sleep_us(config.wire.bucket_us(bytes));
      }
      obs::count("bucket_reduce", 1);
      ++result.stats.buckets_reduced;
      ++processed;
    }
  };

  // Replicas model independent cluster nodes and the reducer models the
  // NIC-side communication engine; both run full graph passes that
  // internally submit to the ThreadPool, so neither can be a pool task.
  // lint-allow: raw-thread
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n_replicas));
  for (int r = 0; r < n_replicas; ++r) {
    if (config.faults != nullptr && config.faults->is_dead(r)) continue;
    threads.emplace_back(replica_body, r);
  }

  if (config.overlap) {
    // lint-allow: raw-thread — see above.
    std::thread reducer(reduce_loop);
    for (auto& t : threads) t.join();
    reducer.join();
  } else {
    // Synchronous baseline: identical buckets, identical reduction order,
    // identical wire bill — but nothing reduces until every replica joined.
    for (auto& t : threads) t.join();
    reduce_loop();
  }

  float loss_sum = 0.0f;
  int loss_count = 0;
  for (int r = 0; r < n_replicas; ++r) {
    if (ran[static_cast<std::size_t>(r)]) {
      loss_sum += losses[static_cast<std::size_t>(r)];
      ++loss_count;
    }
  }
  result.mean_loss =
      loss_count > 0 ? loss_sum / static_cast<float>(loss_count) : 0.0f;
  result.ok = !failed;
  result.error = error;
  return result;
}

float replica_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn) {
  if (core::dist_mode() == core::DistMode::kOverlap) {
    const OverlapResult res =
        overlapped_backward(replica_params, loss_fn, default_overlap_config());
    LEGW_CHECK(res.ok, "replica_backward: " + res.error);
    return res.mean_loss;
  }
  return synchronous_backward(replica_params, loss_fn);
}

}  // namespace legw::dist
