#include "dist/overlap.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "core/flags.hpp"
#include "core/mutex.hpp"
#include "core/rng.hpp"
#include "dist/algorithms.hpp"
#include "dist/allreduce.hpp"
#include "dist/compression.hpp"
#include "dist/data_parallel.hpp"
#include "mem/alloc.hpp"
#include "obs/trace.hpp"

namespace legw::dist {

FaultPlan FaultPlan::stragglers(u64 seed, int n_replicas, int count,
                                double delay_ms) {
  LEGW_CHECK(count >= 0 && count <= n_replicas,
             "FaultPlan::stragglers: count out of range");
  core::Rng rng(seed);
  std::vector<int> pool(static_cast<std::size_t>(n_replicas));
  std::iota(pool.begin(), pool.end(), 0);
  FaultPlan plan;
  for (int i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(i) +
                   static_cast<std::size_t>(rng.uniform_int(
                       static_cast<u64>(n_replicas - i)));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    plan.faults.push_back(
        {pool[static_cast<std::size_t>(i)], Kind::kSlow, delay_ms});
  }
  std::sort(plan.faults.begin(), plan.faults.end(),
            [](const Fault& a, const Fault& b) { return a.replica < b.replica; });
  return plan;
}

FaultPlan FaultPlan::dead_replica(int replica) {
  FaultPlan plan;
  plan.faults.push_back({replica, Kind::kDead, 0.0});
  return plan;
}

bool FaultPlan::is_dead(int replica) const {
  for (const Fault& f : faults) {
    if (f.replica == replica && f.kind == Kind::kDead) return true;
  }
  return false;
}

double FaultPlan::delay_ms_for(int replica) const {
  double total = 0.0;
  for (const Fault& f : faults) {
    if (f.replica == replica && f.kind == Kind::kSlow) total += f.delay_ms;
  }
  return total;
}

double WireModel::bucket_us(i64 bytes) const {
  double us = latency_us;
  if (gbytes_per_sec > 0.0) {
    us += static_cast<double>(bytes) / (gbytes_per_sec * 1e3);
  }
  return us;
}

namespace {

double hop_us(double latency_us, double gbytes_per_sec, double bytes) {
  double us = latency_us;
  if (gbytes_per_sec > 0.0) us += bytes / (gbytes_per_sec * 1e3);
  return us;
}

double ceil_log2(int n) {
  int rounds = 0;
  for (int span = 1; span < n; span *= 2) ++rounds;
  return static_cast<double>(rounds);
}

}  // namespace

double WireModel::allreduce_us(DistAlgo resolved, int n_shards, i64 bytes,
                               WireFormat wire, int group_size) const {
  if (n_shards <= 1) return 0.0;
  // The bandwidth term scales with the wire format's element width; the
  // per-hop latency does not.
  const double fmt = static_cast<double>(wire_elem_bytes(wire)) / 4.0;
  const double payload = static_cast<double>(bytes) * fmt;
  const double n = static_cast<double>(n_shards);
  switch (resolved) {
    case DistAlgo::kTree:
    case DistAlgo::kAuto: {
      // Reduce + broadcast: ceil(log2 n) rounds each, full payload per hop.
      const double rounds = 2.0 * ceil_log2(n_shards);
      return rounds * hop_us(latency_us, gbytes_per_sec, payload);
    }
    case DistAlgo::kRing: {
      // 2*(n-1) hops of payload/n: the bandwidth term stays ~2*payload.
      const double hops = 2.0 * (n - 1.0);
      return hops * hop_us(latency_us, gbytes_per_sec, payload / n);
    }
    case DistAlgo::kHier: {
      const int g = group_size > 0 ? std::min(group_size, n_shards)
                                   : hier_group_size(n_shards);
      const int n_groups = (n_shards + g - 1) / g;
      const double intra_lat =
          intra_latency_us > 0.0 ? intra_latency_us : latency_us;
      const double intra_bw =
          intra_gbytes_per_sec > 0.0 ? intra_gbytes_per_sec : gbytes_per_sec;
      // Intra reduce + intra broadcast on the island link, inter exchange
      // over the leaders on the fabric.
      const double intra_rounds = 2.0 * ceil_log2(g);
      const double inter_rounds = 2.0 * ceil_log2(n_groups);
      return intra_rounds * hop_us(intra_lat, intra_bw, payload) +
             inter_rounds * hop_us(latency_us, gbytes_per_sec, payload);
    }
  }
  return 0.0;
}

std::vector<std::vector<std::size_t>> plan_buckets(
    const std::vector<ag::Variable>& params, i64 bucket_bytes) {
  LEGW_CHECK(bucket_bytes > 0, "plan_buckets: bucket_bytes must be positive");
  std::vector<std::vector<std::size_t>> buckets;
  i64 filled = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    const i64 bytes =
        params[p].numel() * static_cast<i64>(sizeof(float));
    if (buckets.empty() || filled >= bucket_bytes) {
      buckets.emplace_back();
      filled = 0;
    }
    buckets.back().push_back(p);
    filled += bytes;
  }
  return buckets;
}

namespace {

i64 positive_int_env(const char* name, i64 def) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe, no setenv
  const char* env = std::getenv(name);
  if (env == nullptr) return def;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  LEGW_CHECK(end != nullptr && *end == '\0' && v > 0,
             std::string(name) + " must be a positive integer, got '" + env +
                 "'");
  return static_cast<i64>(v);
}

}  // namespace

OverlapConfig default_overlap_config() {
  OverlapConfig config;
  config.bucket_bytes = positive_int_env("LEGW_DIST_BUCKET_KB", 256) * 1024;
  config.algo = core::dist_algo();
  config.wire_format = core::dist_wire();
  config.hier_group = static_cast<int>(positive_int_env("LEGW_DIST_GROUP", 0));
  config.comm_threads =
      static_cast<int>(positive_int_env("LEGW_DIST_COMM_THREADS", 1));
  return config;
}

namespace {

void sleep_us(double us) {
  if (us > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
  }
}

std::string join_ints(const std::vector<int>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

}  // namespace

namespace {

// The overlap engine's shared state, annotated so Clang TSA proves the
// comm-thread protocol at compile time: replica threads deliver gradients
// (signal -> try_enqueue under mu_), the reducer claims completed buckets
// from ready_, and the timeout machinery mutates the exclusion set — all of
// it behind one mutex whose protocol used to live in a comment.
class OverlapEngine {
 public:
  OverlapEngine(const std::vector<std::vector<ag::Variable>>& replica_params,
                const std::function<ag::Variable(int replica)>& loss_fn,
                const OverlapConfig& config)
      : replica_params_(replica_params), loss_fn_(loss_fn), config_(config) {
    n_replicas_ = static_cast<int>(replica_params_.size());
    LEGW_CHECK(n_replicas_ >= 1, "overlapped_backward: need >= 1 replica");
    LEGW_CHECK(config_.replica_ids == nullptr ||
                   config_.replica_ids->size() ==
                       static_cast<std::size_t>(n_replicas_),
               "overlapped_backward: replica_ids must align with replicas");
    n_params_ = replica_params_[0].size();
    for (const auto& params : replica_params_) {
      LEGW_CHECK(params.size() == n_params_,
                 "overlapped_backward: replicas disagree on parameter count");
    }

    buckets_ = plan_buckets(replica_params_[0], config_.bucket_bytes);
    n_buckets_ = buckets_.size();
    result_.stats.n_buckets = static_cast<i64>(n_buckets_);

    bucket_of_.assign(n_params_, 0);
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      for (std::size_t p : buckets_[b]) bucket_of_[p] = b;
    }

    // Materialise every gradient buffer up front, on this thread, so the
    // replica and communication threads only ever touch pre-allocated
    // storage.
    grads_.resize(static_cast<std::size_t>(n_replicas_));
    index_of_.resize(static_cast<std::size_t>(n_replicas_));
    for (int r = 0; r < n_replicas_; ++r) {
      auto& g = grads_[static_cast<std::size_t>(r)];
      g.reserve(n_params_);
      for (std::size_t p = 0; p < n_params_; ++p) {
        ag::Variable handle = replica_params_[static_cast<std::size_t>(r)][p];
        g.push_back(&handle.mutable_grad());
        index_of_[static_cast<std::size_t>(r)][handle.node().get()] = p;
      }
    }

    // Injected dead replicas are recorded but NOT pre-excluded: the engine
    // must *detect* them through the timeout machinery, exactly as it would
    // a genuinely hung node. They only leave the reduction once a timeout
    // episode names them as blockers (or fail-fast aborts the step).
    excluded_.assign(static_cast<std::size_t>(n_replicas_), 0);
    if (config_.faults != nullptr) {
      for (int r = 0; r < n_replicas_; ++r) {
        if (config_.faults->is_dead(global_id(r))) {
          result_.stats.dead_replicas.push_back(global_id(r));
        }
      }
    }
    const bool any_dead = !result_.stats.dead_replicas.empty();
    LEGW_CHECK(!any_dead || config_.bucket_timeout_ms > 0,
               "overlapped_backward: a fault plan with dead replicas requires "
               "bucket_timeout_ms > 0");
    LEGW_CHECK(result_.stats.dead_replicas.size() <
                   static_cast<std::size_t>(n_replicas_),
               "overlapped_backward: every replica is dead");

    pending_ = std::make_unique<std::atomic<int>[]>(
        n_buckets_ * static_cast<std::size_t>(n_replicas_));
    for (std::size_t b = 0; b < n_buckets_; ++b) {
      for (int r = 0; r < n_replicas_; ++r) {
        bucket_pending(b, r).store(static_cast<int>(buckets_[b].size()),
                                   std::memory_order_relaxed);
      }
    }

    enqueued_.assign(n_buckets_, 0);
    losses_.assign(static_cast<std::size_t>(n_replicas_), 0.0f);
    ran_.assign(static_cast<std::size_t>(n_replicas_), 0);
  }

  OverlapResult run() {
    // Replicas model independent cluster nodes and the reducers model the
    // NIC-side communication engine; both run full graph passes that
    // internally submit to the ThreadPool, so neither can be a pool task.
    // lint-allow: raw-thread
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_replicas_));
    for (int r = 0; r < n_replicas_; ++r) {
      if (config_.faults != nullptr && config_.faults->is_dead(global_id(r))) {
        continue;
      }
      threads.emplace_back([this, r] { replica_body(r); });
    }

    // Buckets are disjoint and each is claimed exactly once, so the worker
    // count changes only the wall-clock cost of the wire sleeps, never a
    // value.
    const int workers = std::max(1, config_.comm_threads);
    // lint-allow: raw-thread — see above.
    std::vector<std::thread> reducers;
    const auto spawn_reducers = [this, workers, &reducers] {
      reducers.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        reducers.emplace_back([this] { reduce_worker(); });
      }
    };
    if (config_.overlap) {
      spawn_reducers();
      for (auto& t : threads) t.join();
      for (auto& t : reducers) t.join();
    } else {
      // Synchronous baseline: identical buckets, identical reduction order,
      // identical wire bill — but nothing reduces until every replica
      // joined.
      for (auto& t : threads) t.join();
      if (workers == 1) {
        reduce_worker();
      } else {
        spawn_reducers();
        for (auto& t : reducers) t.join();
      }
    }

    float loss_sum = 0.0f;
    int loss_count = 0;
    for (int r = 0; r < n_replicas_; ++r) {
      if (ran_[static_cast<std::size_t>(r)]) {
        loss_sum += losses_[static_cast<std::size_t>(r)];
        ++loss_count;
      }
    }
    // The threads are joined, but the guarded fields keep their contract:
    // take the lock rather than waive the analysis.
    core::MutexLock lock(mu_);
    result_.mean_loss =
        loss_count > 0 ? loss_sum / static_cast<float>(loss_count) : 0.0f;
    result_.ok = !failed_;
    result_.error = error_;
    return result_;
  }

 private:
  // Engine index -> global replica id (identity without replica_ids). Fault
  // plans and error-feedback residuals are keyed by global ids so an elastic
  // run over a participant subset composes with both.
  int global_id(int r) const {
    return config_.replica_ids != nullptr
               ? (*config_.replica_ids)[static_cast<std::size_t>(r)]
               : r;
  }

  std::atomic<int>& bucket_pending(std::size_t b, int r) {
    // pending_[b * n_replicas + r]: gradients replica r still owes bucket b.
    return pending_[b * static_cast<std::size_t>(n_replicas_) +
                    static_cast<std::size_t>(r)];
  }

  // Enqueues b if every non-excluded replica has delivered all of b's
  // gradients and b was not already claimed.
  void try_enqueue(std::size_t b) LEGW_REQUIRES(mu_) {
    if (enqueued_[b]) return;
    for (int r = 0; r < n_replicas_; ++r) {
      if (excluded_[static_cast<std::size_t>(r)]) continue;
      if (bucket_pending(b, r).load(std::memory_order_acquire) != 0) return;
    }
    enqueued_[b] = 1;
    ready_.push_back(b);
    cv_.notify_one();
  }

  // Replica r delivered parameter p's final gradient. The release half of
  // the fetch_sub publishes the gradient writes; the reducer's acquire load
  // of pending (and the RMW release sequence) makes them visible.
  void signal(int r, std::size_t p) LEGW_EXCLUDES(mu_) {
    const std::size_t b = bucket_of_[p];
    if (bucket_pending(b, r).fetch_sub(1, std::memory_order_acq_rel) == 1) {
      core::MutexLock lock(mu_);
      try_enqueue(b);
    }
  }

  void replica_body(int r) LEGW_EXCLUDES(mu_) {
    if (config_.faults != nullptr) {
      const double delay = config_.faults->delay_ms_for(global_id(r));
      if (delay > 0.0) {
        obs::Span span("fault_straggler");
        sleep_us(delay * 1000.0);
      }
    }
    obs::Span span("replica_backward");
    // Arena mode: each replica thread drives its own step arena (slot r),
    // so forward activations and interior gradients replay in place with no
    // cross-replica sharing. Leaf grads stay heap-bound (Node::ensure_grad)
    // — the reducer thread reads them outside this scope.
    mem::TrainStepScope arena_scope(mem::step_arena(r));
    if (config_.zero_grads) {
      for (std::size_t p = 0; p < n_params_; ++p) {
        grads_[static_cast<std::size_t>(r)][p]->zero_();
      }
    }
    std::vector<char> fired(n_params_, 0);
    ag::BackwardHooks hooks;
    hooks.on_leaf_grad_ready = [&](ag::Node& leaf) {
      const auto it = index_of_[static_cast<std::size_t>(r)].find(&leaf);
      if (it == index_of_[static_cast<std::size_t>(r)].end()) return;
      if (fired[it->second]) return;
      fired[it->second] = 1;
      signal(r, it->second);
    };
    ag::Variable loss = loss_fn_(r);
    losses_[static_cast<std::size_t>(r)] = loss.value()[0];
    ran_[static_cast<std::size_t>(r)] = 1;
    ag::backward(loss, nullptr, hooks);
    // Parameters the graph never reached keep their (zeroed or accumulated)
    // gradient as-is — that IS their final value, so deliver it.
    for (std::size_t p = 0; p < n_params_; ++p) {
      if (!fired[p]) signal(r, p);
    }
  }

  // Timed out with no completed bucket. The blockers are the replicas still
  // owing gradients on some unclaimed bucket; returns false when the policy
  // says the step cannot continue.
  bool handle_timeout() LEGW_REQUIRES(mu_) {
    ++result_.stats.timeout_episodes;
    std::vector<int> blockers;
    for (int r = 0; r < n_replicas_; ++r) {
      if (excluded_[static_cast<std::size_t>(r)]) continue;
      for (std::size_t b = 0; b < n_buckets_; ++b) {
        if (enqueued_[b]) continue;
        if (bucket_pending(b, r).load(std::memory_order_acquire) != 0) {
          blockers.push_back(r);
          break;
        }
      }
    }
    std::vector<int> blocker_gids;
    blocker_gids.reserve(blockers.size());
    for (int r : blockers) blocker_gids.push_back(global_id(r));
    if (config_.timeout_policy == TimeoutPolicy::kFailFast) {
      failed_ = true;
      error_ = "overlapped_backward: bucket all-reduce timed out after " +
               std::to_string(config_.bucket_timeout_ms) +
               " ms waiting on replica(s) [" + join_ints(blocker_gids) + "]";
      cv_.notify_all();
      return false;
    }
    // Degrade: drop the blockers, then re-scan — buckets that are now
    // complete over the survivors become reducible.
    for (std::size_t i = 0; i < blockers.size(); ++i) {
      excluded_[static_cast<std::size_t>(blockers[i])] = 1;
      result_.stats.excluded_replicas.push_back(blocker_gids[i]);
      obs::count("replica_timeout", 1);
    }
    int live = 0;
    for (int r = 0; r < n_replicas_; ++r) {
      if (!excluded_[static_cast<std::size_t>(r)]) ++live;
    }
    if (live == 0) {
      failed_ = true;
      error_ = "overlapped_backward: degraded until no replica survived";
      cv_.notify_all();
      return false;
    }
    for (std::size_t b = 0; b < n_buckets_; ++b) try_enqueue(b);
    return true;
  }

  // Reduce worker: claim completed buckets in completion order until every
  // bucket is claimed or the step fails. Values cannot depend on claim order
  // or worker count because buckets are disjoint and each bucket reduces
  // parameter by parameter in replica-index order.
  void reduce_worker() LEGW_EXCLUDES(mu_) {
    std::vector<int> participants;
    std::vector<int> participant_gids;
    std::vector<core::Tensor*> shards;
    while (true) {
      std::size_t b = 0;
      {
        core::MutexLock lock(mu_);
        while (ready_.empty() && !failed_ && claimed_ < n_buckets_) {
          const auto t0 = std::chrono::steady_clock::now();
          bool got = true;
          {
            obs::Span idle_span("overlap_idle");
            if (config_.bucket_timeout_ms > 0) {
              const auto deadline =
                  t0 + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.bucket_timeout_ms));
              while (ready_.empty() && !failed_ && claimed_ < n_buckets_ &&
                     cv_.wait_until(mu_, deadline) !=
                         std::cv_status::timeout) {
              }
              got = !ready_.empty();
            } else {
              while (ready_.empty() && !failed_ && claimed_ < n_buckets_) {
                cv_.wait(mu_);
              }
              got = !ready_.empty();
            }
          }
          result_.stats.idle_ns +=
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          if (got || failed_ || claimed_ == n_buckets_) break;
          if (!handle_timeout()) return;
        }
        if (ready_.empty()) return;  // failed, or every bucket claimed
        b = ready_.front();
        ready_.pop_front();
        ++claimed_;
        if (claimed_ == n_buckets_) cv_.notify_all();
        // Participant set snapshot: every currently-live replica delivered
        // this bucket in full (guaranteed by try_enqueue; exclusion only
        // shrinks the set and excluded replicas never rejoin).
        participants.clear();
        participant_gids.clear();
        for (int r = 0; r < n_replicas_; ++r) {
          if (excluded_[static_cast<std::size_t>(r)]) continue;
          if (bucket_pending(b, r).load(std::memory_order_acquire) == 0) {
            participants.push_back(r);
            participant_gids.push_back(global_id(r));
          }
        }
      }
      // Reduce outside the lock so replica threads keep signalling and other
      // workers keep claiming. The algorithm resolves once per bucket from
      // its fp32 payload; the wire sleep models that algorithm's critical
      // path at the configured format's width.
      i64 payload = 0;
      for (std::size_t p : buckets_[b]) {
        payload += replica_params_[0][p].numel() *
                   static_cast<i64>(sizeof(float));
      }
      const int n_parts = static_cast<int>(participants.size());
      const DistAlgo resolved =
          choose_algorithm(config_.algo, payload, n_parts);
      i64 wire_bytes = 0;
      {
        obs::Span span("bucket_reduce");
        obs::Span algo_span(resolved == DistAlgo::kRing
                                ? "bucket_reduce.ring"
                                : (resolved == DistAlgo::kHier
                                       ? "bucket_reduce.hier"
                                       : "bucket_reduce.tree"));
        shards.resize(participants.size());
        for (std::size_t p : buckets_[b]) {
          for (std::size_t i = 0; i < participants.size(); ++i) {
            shards[i] = grads_[static_cast<std::size_t>(participants[i])][p];
          }
          quantize_contributions(shards, config_.wire_format,
                                 config_.wire_state, &participant_gids, p);
          allreduce_mean(shards, resolved, config_.hier_group);
          quantize_broadcast(shards, config_.wire_format);
          wire_bytes += shards.empty()
                            ? 0
                            : allreduce_wire_bytes(n_parts, shards[0]->numel(),
                                                   config_.wire_format);
        }
        sleep_us(config_.wire.allreduce_us(resolved, n_parts, payload,
                                           config_.wire_format,
                                           config_.hier_group));
      }
      obs::count("bucket_reduce", 1);
      obs::count("dist.wire_bytes", wire_bytes);
      {
        core::MutexLock lock(mu_);
        ++result_.stats.buckets_reduced;
        result_.stats.wire_bytes += wire_bytes;
        switch (resolved) {
          case DistAlgo::kRing: ++result_.stats.buckets_ring; break;
          case DistAlgo::kHier: ++result_.stats.buckets_hier; break;
          default: ++result_.stats.buckets_tree; break;
        }
      }
    }
  }

  const std::vector<std::vector<ag::Variable>>& replica_params_;
  const std::function<ag::Variable(int replica)>& loss_fn_;
  const OverlapConfig& config_;
  int n_replicas_ = 0;
  std::size_t n_params_ = 0;
  std::size_t n_buckets_ = 0;

  // Fixed before any thread starts; read-only afterwards.
  std::vector<std::vector<std::size_t>> buckets_;
  std::vector<std::size_t> bucket_of_;
  std::vector<std::vector<core::Tensor*>> grads_;
  std::vector<std::unordered_map<ag::Node*, std::size_t>> index_of_;

  // Lock-free delivery counters (release/acquire pairs publish gradients).
  std::unique_ptr<std::atomic<int>[]> pending_;

  // Per-replica slots written only by that replica's thread, read after
  // join.
  std::vector<float> losses_;
  std::vector<char> ran_;

  core::Mutex mu_;
  core::CondVar cv_;
  std::deque<std::size_t> ready_ LEGW_GUARDED_BY(mu_);  // completion order
  std::vector<char> enqueued_ LEGW_GUARDED_BY(mu_);
  std::vector<char> excluded_ LEGW_GUARDED_BY(mu_);
  std::size_t claimed_ LEGW_GUARDED_BY(mu_) = 0;  // buckets taken by workers
  bool failed_ LEGW_GUARDED_BY(mu_) = false;
  std::string error_ LEGW_GUARDED_BY(mu_);
  // Shared between reduce workers (stats) and the finaliser; the pre-thread
  // constructor fills n_buckets/dead_replicas before any worker exists.
  OverlapResult result_ LEGW_GUARDED_BY(mu_);
};

}  // namespace

OverlapResult overlapped_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const OverlapConfig& config) {
  OverlapEngine engine(replica_params, loss_fn, config);
  return engine.run();
}

float replica_backward(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn) {
  if (core::dist_mode() == core::DistMode::kOverlap) {
    const OverlapResult res =
        overlapped_backward(replica_params, loss_fn, default_overlap_config());
    LEGW_CHECK(res.ok, "replica_backward: " + res.error);
    return res.mean_loss;
  }
  return synchronous_backward(replica_params, loss_fn);
}

OverlapResult replica_backward_ex(
    const std::vector<std::vector<ag::Variable>>& replica_params,
    const std::function<ag::Variable(int replica)>& loss_fn,
    const ReplicaStepOptions& options) {
  OverlapConfig config = default_overlap_config();
  config.overlap = core::dist_mode() == core::DistMode::kOverlap;
  config.wire_state = options.wire_state;
  config.faults = options.faults;
  config.replica_ids = options.replica_ids;
  config.bucket_timeout_ms = options.bucket_timeout_ms;
  config.timeout_policy = options.timeout_policy;
  return overlapped_backward(replica_params, loss_fn, config);
}

}  // namespace legw::dist
