// LEGW — Linear-Epoch Gradual Warmup (the paper's contribution).
//
// Given a tuned *baseline* (batch size B0, peak learning rate lr0, warmup
// length w0 epochs, and a decay schedule), LEGW derives the full schedule for
// any other batch size B = k * B0 with **zero additional tuning**:
//
//   peak lr      = lr0 * sqrt(k)     (Sqrt Scaling rule)
//   warmup epochs = w0 * k           (linear-epoch warmup)
//   decay        = unchanged (same epochs / same shape)
//
// The same formulas run in reverse for k < 1 (tune a big batch once, derive
// the small-batch schedules), which is what §3.3 of the paper recommends when
// compute is plentiful.
#pragma once

#include <functional>
#include <memory>

#include "sched/schedule.hpp"

namespace legw::sched {

// The tuned baseline LEGW extrapolates from.
struct LegwBaseline {
  i64 batch_size = 0;
  float peak_lr = 0.0f;
  double warmup_epochs = 0.0;
};

// The derived recipe for a target batch size.
struct LegwRecipe {
  i64 batch_size = 0;
  float peak_lr = 0.0f;
  double warmup_epochs = 0.0;
  double scale_factor = 0.0;  // k = batch / base_batch
};

// Pure scaling math (no schedule object); exposed separately so tests and
// tables can verify the rule in isolation.
LegwRecipe legw_scale(const LegwBaseline& base, i64 batch_size);

// Builds the complete schedule for `batch_size`: GradualWarmup(w0 * k) around
// the decay schedule produced by `make_decay(peak_lr)`. The factory receives
// the sqrt-scaled peak so decay shapes that embed the peak (all of them)
// come out right.
std::unique_ptr<LrSchedule> legw_schedule(
    const LegwBaseline& base, i64 batch_size,
    const std::function<std::shared_ptr<LrSchedule>(float peak_lr)>& make_decay);

// Convenience: LEGW with a constant post-warmup LR (the MNIST-LSTM setup).
std::unique_ptr<LrSchedule> legw_constant(const LegwBaseline& base,
                                          i64 batch_size);

}  // namespace legw::sched
