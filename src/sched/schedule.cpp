#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace legw::sched {

float linear_scaling(float base_lr, i64 base_batch, i64 batch) {
  LEGW_CHECK(base_batch > 0 && batch > 0, "scaling: batch sizes must be > 0");
  return base_lr * static_cast<float>(batch) / static_cast<float>(base_batch);
}

float sqrt_scaling(float base_lr, i64 base_batch, i64 batch) {
  LEGW_CHECK(base_batch > 0 && batch > 0, "scaling: batch sizes must be > 0");
  return base_lr * std::sqrt(static_cast<float>(batch) /
                             static_cast<float>(base_batch));
}

float rewarmup_factor(i64 steps_since_rollback, i64 ramp_steps, float backoff) {
  LEGW_CHECK(backoff > 0.0f && backoff <= 1.0f,
             "rewarmup_factor: backoff must be in (0, 1]");
  const i64 steps = std::max<i64>(steps_since_rollback, 0);
  if (ramp_steps <= 0) return backoff;
  const double frac =
      std::min(1.0, static_cast<double>(steps) / static_cast<double>(ramp_steps));
  return backoff + (1.0f - backoff) * static_cast<float>(frac);
}

std::string ConstantLr::describe() const {
  std::ostringstream os;
  os << "constant(peak=" << peak_ << ")";
  return os.str();
}

MultiStepLr::MultiStepLr(float peak, std::vector<double> milestones,
                         float gamma)
    : peak_(peak), milestones_(std::move(milestones)), gamma_(gamma) {
  LEGW_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()),
             "MultiStepLr: milestones must be sorted ascending");
}

float MultiStepLr::lr(double epoch) const {
  float v = peak_;
  for (double m : milestones_) {
    if (epoch >= m) v *= gamma_;
  }
  return v;
}

std::string MultiStepLr::describe() const {
  std::ostringstream os;
  os << "multistep(peak=" << peak_ << ", gamma=" << gamma_ << ", at=[";
  for (std::size_t i = 0; i < milestones_.size(); ++i) {
    if (i) os << ",";
    os << milestones_[i];
  }
  os << "])";
  return os.str();
}

ExponentialEpochDecay::ExponentialEpochDecay(float peak, double flat_epochs,
                                             float gamma)
    : peak_(peak), flat_epochs_(flat_epochs), gamma_(gamma) {}

float ExponentialEpochDecay::lr(double epoch) const {
  const double over = std::floor(epoch) - flat_epochs_ + 1.0;
  if (over <= 0.0) return peak_;
  return peak_ * std::pow(gamma_, static_cast<float>(over));
}

std::string ExponentialEpochDecay::describe() const {
  std::ostringstream os;
  os << "exp_epoch(peak=" << peak_ << ", flat=" << flat_epochs_
     << ", gamma=" << gamma_ << ")";
  return os.str();
}

PolynomialLr::PolynomialLr(float peak, double total_epochs, float power)
    : peak_(peak), total_epochs_(total_epochs), power_(power) {
  LEGW_CHECK(total_epochs > 0.0, "PolynomialLr: total_epochs must be > 0");
}

float PolynomialLr::lr(double epoch) const {
  const double frac = std::clamp(1.0 - epoch / total_epochs_, 0.0, 1.0);
  return peak_ * static_cast<float>(std::pow(frac, power_));
}

std::string PolynomialLr::describe() const {
  std::ostringstream os;
  os << "poly(peak=" << peak_ << ", total=" << total_epochs_
     << ", power=" << power_ << ")";
  return os.str();
}

CosineLr::CosineLr(float peak, double total_epochs)
    : peak_(peak), total_epochs_(total_epochs) {
  LEGW_CHECK(total_epochs > 0.0, "CosineLr: total_epochs must be > 0");
}

float CosineLr::lr(double epoch) const {
  const double frac = std::clamp(epoch / total_epochs_, 0.0, 1.0);
  return peak_ * 0.5f *
         static_cast<float>(1.0 + std::cos(3.14159265358979323846 * frac));
}

std::string CosineLr::describe() const {
  std::ostringstream os;
  os << "cosine(peak=" << peak_ << ", total=" << total_epochs_ << ")";
  return os.str();
}

GradualWarmup::GradualWarmup(double warmup_epochs,
                             std::shared_ptr<LrSchedule> inner)
    : warmup_epochs_(warmup_epochs), inner_(std::move(inner)) {
  LEGW_CHECK(warmup_epochs_ >= 0.0, "GradualWarmup: negative warmup");
  LEGW_CHECK(inner_ != nullptr, "GradualWarmup: null inner schedule");
}

float GradualWarmup::lr(double epoch) const {
  if (warmup_epochs_ > 0.0 && epoch < warmup_epochs_) {
    return inner_->lr(epoch) * static_cast<float>(epoch / warmup_epochs_);
  }
  return inner_->lr(epoch);
}

std::string GradualWarmup::describe() const {
  std::ostringstream os;
  os << "warmup(" << warmup_epochs_ << "ep) -> " << inner_->describe();
  return os.str();
}

}  // namespace legw::sched
