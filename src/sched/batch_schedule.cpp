#include "sched/batch_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace legw::sched {

std::string ConstantBatch::describe() const {
  std::ostringstream os;
  os << "constant_batch(" << size_ << ")";
  return os.str();
}

MultiStepBatch::MultiStepBatch(i64 initial, std::vector<double> milestones,
                               i64 factor)
    : initial_(initial), milestones_(std::move(milestones)), factor_(factor) {
  LEGW_CHECK(initial >= 1 && factor >= 1, "MultiStepBatch: bad config");
  LEGW_CHECK(std::is_sorted(milestones_.begin(), milestones_.end()),
             "MultiStepBatch: milestones must be sorted");
}

i64 MultiStepBatch::batch(double epoch) const {
  i64 b = initial_;
  for (double m : milestones_) {
    if (epoch >= m) b *= factor_;
  }
  return b;
}

std::string MultiStepBatch::describe() const {
  std::ostringstream os;
  os << "multistep_batch(init=" << initial_ << ", x" << factor_ << " at=[";
  for (std::size_t i = 0; i < milestones_.size(); ++i) {
    if (i) os << ",";
    os << milestones_[i];
  }
  os << "])";
  return os.str();
}

std::unique_ptr<BatchSchedule> batch_growth_dual(i64 initial_batch,
                                                 std::vector<double> milestones,
                                                 float lr_gamma, i64 max_batch) {
  LEGW_CHECK(lr_gamma > 0.0f && lr_gamma < 1.0f,
             "batch_growth_dual: lr_gamma must be a decay factor in (0,1)");
  const i64 factor =
      std::max<i64>(2, static_cast<i64>(std::lround(1.0 / lr_gamma)));
  // Drop milestones whose growth would exceed max_batch (memory cap), the
  // practical constraint Smith et al. hit too.
  std::vector<double> kept;
  i64 b = initial_batch;
  for (double m : milestones) {
    if (b * factor > max_batch) break;
    b *= factor;
    kept.push_back(m);
  }
  return std::make_unique<MultiStepBatch>(initial_batch, std::move(kept),
                                          factor);
}

}  // namespace legw::sched
