// Batch-size schedules — the "don't decay the learning rate, increase the
// batch size" direction (Smith, Kindermans & Le 2017), which the paper cites
// as the adjacent line of work ([27]). Implemented as an extension so the
// ablation bench can compare LR decay against batch growth under LEGW.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::sched {

class BatchSchedule {
 public:
  virtual ~BatchSchedule() = default;
  // Batch size to use at fractional epoch `epoch`.
  virtual i64 batch(double epoch) const = 0;
  virtual std::string describe() const = 0;
};

class ConstantBatch final : public BatchSchedule {
 public:
  explicit ConstantBatch(i64 size) : size_(size) {
    LEGW_CHECK(size >= 1, "ConstantBatch: bad size");
  }
  i64 batch(double) const override { return size_; }
  std::string describe() const override;

 private:
  i64 size_;
};

// Multiplies the batch by `factor` at each milestone epoch — the exact dual
// of MultiStepLr with gamma = 1/factor.
class MultiStepBatch final : public BatchSchedule {
 public:
  MultiStepBatch(i64 initial, std::vector<double> milestones, i64 factor);
  i64 batch(double epoch) const override;
  std::string describe() const override;

 private:
  i64 initial_;
  std::vector<double> milestones_;
  i64 factor_;
};

// Derives the batch-growth dual of an LR-decay schedule: wherever the decay
// schedule would multiply the LR by g < 1, grow the batch by 1/g instead and
// hold the LR. Returns the MultiStepBatch for a MultiStepLr-style plan.
std::unique_ptr<BatchSchedule> batch_growth_dual(i64 initial_batch,
                                                 std::vector<double> milestones,
                                                 float lr_gamma,
                                                 i64 max_batch);

}  // namespace legw::sched
