#include "sched/legw.hpp"

#include <cmath>

namespace legw::sched {

LegwRecipe legw_scale(const LegwBaseline& base, i64 batch_size) {
  LEGW_CHECK(base.batch_size > 0, "LEGW baseline batch size must be > 0");
  LEGW_CHECK(batch_size > 0, "LEGW target batch size must be > 0");
  const double k =
      static_cast<double>(batch_size) / static_cast<double>(base.batch_size);
  LegwRecipe r;
  r.batch_size = batch_size;
  r.scale_factor = k;
  r.peak_lr = base.peak_lr * static_cast<float>(std::sqrt(k));
  r.warmup_epochs = base.warmup_epochs * k;
  return r;
}

std::unique_ptr<LrSchedule> legw_schedule(
    const LegwBaseline& base, i64 batch_size,
    const std::function<std::shared_ptr<LrSchedule>(float)>& make_decay) {
  const LegwRecipe r = legw_scale(base, batch_size);
  std::shared_ptr<LrSchedule> decay = make_decay(r.peak_lr);
  LEGW_CHECK(decay != nullptr, "legw_schedule: decay factory returned null");
  return std::make_unique<GradualWarmup>(r.warmup_epochs, std::move(decay));
}

std::unique_ptr<LrSchedule> legw_constant(const LegwBaseline& base,
                                          i64 batch_size) {
  return legw_schedule(base, batch_size, [](float peak) {
    return std::make_shared<ConstantLr>(peak);
  });
}

}  // namespace legw::sched
