// Learning-rate schedules and batch-size scaling rules.
//
// Schedules are pure functions of the fractional epoch (iteration /
// iterations-per-epoch); the trainer queries them every step. The zoo covers
// everything the paper uses: constant, multi-step (a.k.a. staircase
// exponential), per-epoch exponential decay (PTB-small), polynomial decay
// (PTB-large, ResNet poly runs), and a gradual-warmup wrapper that ramps
// linearly from 0 to the inner schedule's value.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace legw::sched {

// --- batch-size scaling rules (Krizhevsky 2014) ------------------------------
// Linear Scaling: lr = base_lr * (batch / base_batch).
float linear_scaling(float base_lr, i64 base_batch, i64 batch);
// Sqrt Scaling: lr = base_lr * sqrt(batch / base_batch) — keeps the variance
// of the gradient estimator constant.
float sqrt_scaling(float base_lr, i64 base_batch, i64 batch);

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  // Learning rate at fractional epoch `epoch` (>= 0).
  virtual float lr(double epoch) const = 0;
  virtual std::string describe() const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float peak) : peak_(peak) {}
  float lr(double) const override { return peak_; }
  std::string describe() const override;

 private:
  float peak_;
};

// Multiplies the peak by `gamma` at each milestone epoch. The paper's
// ImageNet baseline decays by 0.1 at epochs {30, 60, 80}.
class MultiStepLr final : public LrSchedule {
 public:
  MultiStepLr(float peak, std::vector<double> milestones, float gamma);
  float lr(double epoch) const override;
  std::string describe() const override;

 private:
  float peak_;
  std::vector<double> milestones_;
  float gamma_;
};

// Constant for `flat_epochs`, then multiplied by `gamma` once per epoch —
// the PTB-small recipe (flat 7 epochs, then x0.4 per epoch).
class ExponentialEpochDecay final : public LrSchedule {
 public:
  ExponentialEpochDecay(float peak, double flat_epochs, float gamma);
  float lr(double epoch) const override;
  std::string describe() const override;

 private:
  float peak_;
  double flat_epochs_;
  float gamma_;
};

// peak * (1 - epoch/total)^power. power=2.0 throughout the paper.
class PolynomialLr final : public LrSchedule {
 public:
  PolynomialLr(float peak, double total_epochs, float power);
  float lr(double epoch) const override;
  std::string describe() const override;

 private:
  float peak_;
  double total_epochs_;
  float power_;
};

// Half-cosine annealing to zero over `total_epochs` (Loshchilov & Hutter):
// peak * 0.5 * (1 + cos(pi * epoch / total)). Not used by the paper itself
// but the most common modern decay — included so LEGW composes with it.
class CosineLr final : public LrSchedule {
 public:
  CosineLr(float peak, double total_epochs);
  float lr(double epoch) const override;
  std::string describe() const override;

 private:
  float peak_;
  double total_epochs_;
};

// Post-rollback learning-rate factor for the stability sentinel's mitigation
// ladder (src/guard/): after a rollback with LR backoff, the effective LR is
// schedule_lr * rewarmup_factor(steps_since_rollback, ramp_steps, backoff).
// Starts at `backoff` and ramps linearly back to 1.0 over `ramp_steps` —
// the LEGW warmup insight applied in miniature: re-enter the high-LR regime
// gradually rather than at full step size right after a divergence.
// steps_since_rollback < 0 is clamped to 0; ramp_steps <= 0 means no ramp
// (factor == backoff forever until the episode closes).
float rewarmup_factor(i64 steps_since_rollback, i64 ramp_steps, float backoff);

// Gradual warmup (Goyal et al. 2017): linear ramp from 0 to the inner
// schedule's value over `warmup_epochs`, then the inner schedule verbatim.
// The ramp targets inner->lr(epoch) rather than a fixed peak so warmup
// composes correctly with decaying inner schedules.
class GradualWarmup final : public LrSchedule {
 public:
  GradualWarmup(double warmup_epochs, std::shared_ptr<LrSchedule> inner);
  float lr(double epoch) const override;
  std::string describe() const override;
  double warmup_epochs() const { return warmup_epochs_; }

 private:
  double warmup_epochs_;
  std::shared_ptr<LrSchedule> inner_;
};

}  // namespace legw::sched
