#include "data/corpus.hpp"

#include <algorithm>
#include <cmath>

namespace legw::data {

namespace {
// Draws an index from a CDF (last entry is 1.0).
i64 sample_cdf(const std::vector<double>& cdf, double u) {
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return std::min<i64>(static_cast<i64>(it - cdf.begin()),
                       static_cast<i64>(cdf.size()) - 1);
}
}  // namespace

SyntheticCorpus::SyntheticCorpus(const CorpusConfig& config) : config_(config) {
  LEGW_CHECK(config.vocab >= 8 && config.n_states >= 2, "corpus: bad config");
  core::Rng rng(config.seed);
  build_model(rng);
  core::Rng train_rng = rng.split();
  core::Rng valid_rng = rng.split();
  train_ = sample(config.n_train_tokens, train_rng);
  valid_ = sample(config.n_valid_tokens, valid_rng);
}

void SyntheticCorpus::build_model(core::Rng& rng) {
  const i64 S = config_.n_states;
  const i64 V = config_.vocab;

  transition_cdf_.resize(static_cast<std::size_t>(S));
  for (i64 s = 0; s < S; ++s) {
    // Banded transitions: strong self/next-state preference creates
    // long-range correlations the LSTM can exploit.
    std::vector<double> probs(static_cast<std::size_t>(S), 0.02 / S);
    probs[static_cast<std::size_t>(s)] += 0.38;
    probs[static_cast<std::size_t>((s + 1) % S)] += 0.38;
    probs[static_cast<std::size_t>(rng.uniform_int(static_cast<u64>(S)))] += 0.22;
    double total = 0.0;
    for (double p : probs) total += p;
    auto& cdf = transition_cdf_[static_cast<std::size_t>(s)];
    cdf.resize(static_cast<std::size_t>(S));
    double acc = 0.0;
    for (i64 t = 0; t < S; ++t) {
      acc += probs[static_cast<std::size_t>(t)] / total;
      cdf[static_cast<std::size_t>(t)] = acc;
    }
  }

  emission_cdf_.resize(static_cast<std::size_t>(S));
  for (i64 s = 0; s < S; ++s) {
    // Block-structured emissions: each state owns a contiguous vocab block
    // and emits inside it with Zipfian weights 90% of the time, with a 10%
    // uniform "noise floor" over the whole vocabulary. The current token
    // therefore (noisily) identifies the latent state, which — combined with
    // the banded transitions — gives the corpus genuine long-range structure
    // an LSTM can exploit, like natural language's topical coherence.
    const i64 block = std::max<i64>(1, V / S);
    const i64 begin = (s * block) % V;
    std::vector<double> probs(static_cast<std::size_t>(V), 0.1 / V);
    double zipf_total = 0.0;
    for (i64 r = 0; r < block; ++r) {
      zipf_total += 1.0 / std::pow(static_cast<double>(r + 1), 1.2);
    }
    for (i64 r = 0; r < block; ++r) {
      const i64 v = (begin + r) % V;
      probs[static_cast<std::size_t>(v)] +=
          0.9 * (1.0 / std::pow(static_cast<double>(r + 1), 1.2)) / zipf_total;
    }
    // Small per-state idiosyncrasy so blocks are not perfectly regular.
    probs[rng.uniform_int(static_cast<u64>(V))] += 0.02;
    double total = 0.0;
    for (double p : probs) total += p;
    auto& cdf = emission_cdf_[static_cast<std::size_t>(s)];
    cdf.resize(static_cast<std::size_t>(V));
    double acc = 0.0;
    for (i64 v = 0; v < V; ++v) {
      acc += probs[static_cast<std::size_t>(v)] / total;
      cdf[static_cast<std::size_t>(v)] = acc;
    }
  }
}

std::vector<i32> SyntheticCorpus::sample(i64 n, core::Rng& rng) const {
  std::vector<i32> out(static_cast<std::size_t>(n));
  i64 state = 0;
  for (i64 i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<i32>(sample_cdf(
        emission_cdf_[static_cast<std::size_t>(state)], rng.uniform()));
    state = sample_cdf(transition_cdf_[static_cast<std::size_t>(state)],
                       rng.uniform());
  }
  return out;
}

BpttBatcher::BpttBatcher(const std::vector<i32>& tokens, i64 batch_size,
                         i64 bptt_len)
    : batch_size_(batch_size), bptt_len_(bptt_len) {
  LEGW_CHECK(batch_size >= 1 && bptt_len >= 1, "BpttBatcher: bad config");
  // Need stream_len + 1 tokens per stream for the shifted targets.
  stream_len_ = static_cast<i64>(tokens.size()) / batch_size - 1;
  LEGW_CHECK(stream_len_ >= bptt_len,
             "BpttBatcher: not enough tokens for this batch size");
  chunks_per_epoch_ = stream_len_ / bptt_len;
  streams_.resize(static_cast<std::size_t>(batch_size * (stream_len_ + 1)));
  for (i64 b = 0; b < batch_size; ++b) {
    for (i64 t = 0; t <= stream_len_; ++t) {
      streams_[static_cast<std::size_t>(b * (stream_len_ + 1) + t)] =
          tokens[static_cast<std::size_t>(b * stream_len_ + t)];
    }
  }
}

BpttBatcher::Chunk BpttBatcher::next_chunk() {
  Chunk chunk;
  chunk.first_in_epoch = cursor_ == 0;
  chunk.inputs.resize(static_cast<std::size_t>(batch_size_ * bptt_len_));
  chunk.targets.resize(static_cast<std::size_t>(batch_size_ * bptt_len_));
  const i64 start = cursor_ * bptt_len_;
  for (i64 b = 0; b < batch_size_; ++b) {
    const i32* stream = streams_.data() + b * (stream_len_ + 1);
    for (i64 t = 0; t < bptt_len_; ++t) {
      chunk.inputs[static_cast<std::size_t>(b * bptt_len_ + t)] =
          stream[start + t];
      chunk.targets[static_cast<std::size_t>(b * bptt_len_ + t)] =
          stream[start + t + 1];
    }
  }
  cursor_ = (cursor_ + 1) % chunks_per_epoch_;
  return chunk;
}

}  // namespace legw::data
