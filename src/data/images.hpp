// Synthetic image-classification dataset (ImageNet stand-in for the
// ResNet/LARS experiments).
//
// Ten classes of 3x16x16 RGB images: each class owns a fixed layout of
// coloured rectangles/discs; samples add positional jitter, brightness
// scaling and pixel noise. Small enough that the residual CNN trains in
// seconds, hard enough that accuracy is meaningfully below 100% at short
// epoch budgets — which is where scheduling differences show.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace legw::data {

class SyntheticImages {
 public:
  static constexpr i64 kChannels = 3;
  static constexpr i64 kSize = 16;  // height == width
  static constexpr i64 kClasses = 10;

  SyntheticImages(i64 n_train, i64 n_test, u64 seed);

  i64 n_train() const { return static_cast<i64>(train_labels_.size()); }
  i64 n_test() const { return static_cast<i64>(test_labels_.size()); }

  // [indices.size(), 3, 16, 16]
  core::Tensor gather_images(const std::vector<i64>& indices, bool train) const;
  std::vector<i32> gather_labels(const std::vector<i64>& indices, bool train) const;

  const std::vector<i32>& train_labels() const { return train_labels_; }
  const std::vector<i32>& test_labels() const { return test_labels_; }

 private:
  void generate(i64 n, core::Rng& rng, core::Tensor& images,
                std::vector<i32>& labels) const;

  std::vector<core::Tensor> templates_;  // one [3*16*16] per class
  core::Tensor train_images_;
  core::Tensor test_images_;
  std::vector<i32> train_labels_;
  std::vector<i32> test_labels_;
};

// Epoch-shuffling index batcher shared by the classification datasets.
class IndexBatcher {
 public:
  IndexBatcher(i64 n, i64 batch_size, u64 seed);

  // Next batch of indices; reshuffles at epoch boundaries. Sets
  // *first_in_epoch when this batch starts a new epoch.
  std::vector<i64> next(bool* first_in_epoch = nullptr);
  i64 batches_per_epoch() const { return batches_per_epoch_; }
  i64 batch_size() const { return batch_size_; }

 private:
  void shuffle();

  std::vector<i64> order_;
  i64 batch_size_;
  i64 batches_per_epoch_;
  i64 cursor_ = 0;
  core::Rng rng_;
};

}  // namespace legw::data
