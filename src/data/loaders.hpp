// Real-dataset loaders. The benches run on synthetic stand-ins (offline
// reproducibility), but a downstream user with the actual files can drop
// them in:
//   * IDX (the MNIST distribution format: idx3-ubyte images, idx1-ubyte
//     labels) -> tensors compatible with models::MnistLstm;
//   * whitespace-tokenised text (the PTB distribution format) -> token ids
//     compatible with data::BpttBatcher / models::PtbModel.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace legw::data {

// ---- IDX (MNIST) -------------------------------------------------------------

struct IdxImages {
  i64 count = 0;
  i64 rows = 0;
  i64 cols = 0;
  core::Tensor pixels;  // [count, rows*cols], scaled to [0, 1]
};

// Parses an idx3-ubyte image file (big-endian header: magic 0x00000803,
// count, rows, cols, then count*rows*cols bytes). Aborts on malformed input.
IdxImages load_idx_images(const std::string& path);

// Parses an idx1-ubyte label file (magic 0x00000801, count, then bytes).
std::vector<i32> load_idx_labels(const std::string& path);

// ---- text corpus (PTB) ---------------------------------------------------------

// Word vocabulary built from a training file: words ranked by frequency,
// ids assigned densely from 0; words outside the top `max_vocab-1` map to
// the <unk> id (the last id).
class TextVocab {
 public:
  TextVocab(const std::string& train_path, i64 max_vocab);

  i64 size() const { return static_cast<i64>(id_to_word_.size()); }
  i32 unk_id() const { return static_cast<i32>(size() - 1); }
  i32 word_id(const std::string& word) const;
  const std::string& word(i32 id) const;

  // Tokenises a file against this vocabulary.
  std::vector<i32> encode_file(const std::string& path) const;

 private:
  std::map<std::string, i32> word_to_id_;
  std::vector<std::string> id_to_word_;
};

}  // namespace legw::data
