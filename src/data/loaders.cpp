#include "data/loaders.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

namespace legw::data {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

u32 read_be32(std::FILE* f, const std::string& path) {
  unsigned char bytes[4];
  LEGW_CHECK(std::fread(bytes, 1, 4, f) == 4, "IDX: short read in " + path);
  return (static_cast<u32>(bytes[0]) << 24) | (static_cast<u32>(bytes[1]) << 16) |
         (static_cast<u32>(bytes[2]) << 8) | static_cast<u32>(bytes[3]);
}

}  // namespace

IdxImages load_idx_images(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  LEGW_CHECK(f != nullptr, "IDX: cannot open " + path);
  const u32 magic = read_be32(f.get(), path);
  LEGW_CHECK(magic == 0x00000803u,
             "IDX: bad image magic in " + path + " (want 0x803)");
  IdxImages out;
  out.count = read_be32(f.get(), path);
  out.rows = read_be32(f.get(), path);
  out.cols = read_be32(f.get(), path);
  LEGW_CHECK(out.count > 0 && out.rows > 0 && out.cols > 0,
             "IDX: empty image file " + path);
  const i64 pixels = out.count * out.rows * out.cols;
  std::vector<unsigned char> raw(static_cast<std::size_t>(pixels));
  LEGW_CHECK(std::fread(raw.data(), 1, raw.size(), f.get()) == raw.size(),
             "IDX: truncated image data in " + path);
  out.pixels = core::Tensor(core::Shape{out.count, out.rows * out.cols});
  for (i64 i = 0; i < pixels; ++i) {
    out.pixels[i] = static_cast<float>(raw[static_cast<std::size_t>(i)]) / 255.0f;
  }
  return out;
}

std::vector<i32> load_idx_labels(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  LEGW_CHECK(f != nullptr, "IDX: cannot open " + path);
  const u32 magic = read_be32(f.get(), path);
  LEGW_CHECK(magic == 0x00000801u,
             "IDX: bad label magic in " + path + " (want 0x801)");
  const u32 count = read_be32(f.get(), path);
  std::vector<unsigned char> raw(count);
  LEGW_CHECK(std::fread(raw.data(), 1, raw.size(), f.get()) == raw.size(),
             "IDX: truncated label data in " + path);
  std::vector<i32> labels(count);
  for (u32 i = 0; i < count; ++i) labels[i] = static_cast<i32>(raw[i]);
  return labels;
}

TextVocab::TextVocab(const std::string& train_path, i64 max_vocab) {
  LEGW_CHECK(max_vocab >= 2, "TextVocab: max_vocab must be >= 2");
  std::ifstream in(train_path);
  LEGW_CHECK(in.good(), "TextVocab: cannot open " + train_path);
  std::map<std::string, i64> counts;
  std::string word;
  while (in >> word) ++counts[word];

  // Rank by (frequency desc, word asc) for determinism.
  std::vector<std::pair<std::string, i64>> ranked(counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });

  const i64 keep = std::min<i64>(static_cast<i64>(ranked.size()), max_vocab - 1);
  id_to_word_.reserve(static_cast<std::size_t>(keep + 1));
  for (i64 i = 0; i < keep; ++i) {
    word_to_id_[ranked[static_cast<std::size_t>(i)].first] = static_cast<i32>(i);
    id_to_word_.push_back(ranked[static_cast<std::size_t>(i)].first);
  }
  id_to_word_.push_back("<unk>");
}

i32 TextVocab::word_id(const std::string& w) const {
  const auto it = word_to_id_.find(w);
  return it == word_to_id_.end() ? unk_id() : it->second;
}

const std::string& TextVocab::word(i32 id) const {
  LEGW_CHECK(id >= 0 && id < size(), "TextVocab: id out of range");
  return id_to_word_[static_cast<std::size_t>(id)];
}

std::vector<i32> TextVocab::encode_file(const std::string& path) const {
  std::ifstream in(path);
  LEGW_CHECK(in.good(), "TextVocab: cannot open " + path);
  std::vector<i32> tokens;
  std::string word;
  while (in >> word) tokens.push_back(word_id(word));
  return tokens;
}

}  // namespace legw::data
