#include "data/translation.hpp"

#include <algorithm>

namespace legw::data {

SyntheticTranslation::SyntheticTranslation(const TranslationConfig& config)
    : config_(config) {
  LEGW_CHECK(config.src_vocab > kFirstTokenId + 2 &&
                 config.tgt_vocab > kFirstTokenId + 2,
             "translation: vocab too small for reserved ids");
  LEGW_CHECK(config.min_len >= 2 && config.max_len >= config.min_len,
             "translation: bad length range");

  core::Rng rng(config.seed);
  // Fixed bijective map over the usable token range.
  const i64 n_usable =
      std::min(config.src_vocab, config.tgt_vocab) - kFirstTokenId;
  std::vector<i32> perm(static_cast<std::size_t>(n_usable));
  for (i64 i = 0; i < n_usable; ++i)
    perm[static_cast<std::size_t>(i)] = static_cast<i32>(i);
  for (i64 i = n_usable - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[rng.uniform_int(static_cast<u64>(i + 1))]);
  }
  token_map_.assign(static_cast<std::size_t>(config.src_vocab), kPadId);
  for (i64 i = 0; i < n_usable; ++i) {
    token_map_[static_cast<std::size_t>(kFirstTokenId + i)] =
        static_cast<i32>(kFirstTokenId + perm[static_cast<std::size_t>(i)]);
  }

  core::Rng train_rng = rng.split();
  core::Rng test_rng = rng.split();
  train_ = make_split(config.n_train, train_rng);
  test_ = make_split(config.n_test, test_rng);
}

std::vector<i32> SyntheticTranslation::translate(
    const std::vector<i32>& src) const {
  // Map every token, then swap adjacent pairs (local reordering, the
  // miniature version of cross-lingual word-order divergence).
  std::vector<i32> tgt(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    tgt[i] = token_map_[static_cast<std::size_t>(src[i])];
  }
  for (std::size_t i = 0; i + 1 < tgt.size(); i += 2) {
    std::swap(tgt[i], tgt[i + 1]);
  }
  return tgt;
}

std::vector<SentencePair> SyntheticTranslation::make_split(
    i64 n, core::Rng& rng) const {
  const i64 n_usable =
      std::min(config_.src_vocab, config_.tgt_vocab) - kFirstTokenId;
  std::vector<SentencePair> out;
  out.reserve(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i64 len = config_.min_len + static_cast<i64>(rng.uniform_int(
                                          static_cast<u64>(config_.max_len -
                                                           config_.min_len + 1)));
    SentencePair pair;
    pair.src.resize(static_cast<std::size_t>(len));
    for (i64 t = 0; t < len; ++t) {
      pair.src[static_cast<std::size_t>(t)] = static_cast<i32>(
          kFirstTokenId + rng.uniform_int(static_cast<u64>(n_usable)));
    }
    pair.tgt = translate(pair.src);
    out.push_back(std::move(pair));
  }
  return out;
}

TranslationBatch make_translation_batch(const std::vector<SentencePair>& pairs,
                                        const std::vector<i64>& indices) {
  LEGW_CHECK(!indices.empty(), "make_translation_batch: empty batch");
  TranslationBatch b;
  b.batch = static_cast<i64>(indices.size());
  for (i64 idx : indices) {
    const auto& p = pairs[static_cast<std::size_t>(idx)];
    b.src_len = std::max(b.src_len, static_cast<i64>(p.src.size()));
    b.tgt_len = std::max(b.tgt_len, static_cast<i64>(p.tgt.size()) + 1);
  }
  b.src.assign(static_cast<std::size_t>(b.batch * b.src_len), kPadId);
  b.tgt_in.assign(static_cast<std::size_t>(b.batch * b.tgt_len), kPadId);
  b.tgt_out.assign(static_cast<std::size_t>(b.batch * b.tgt_len), kPadId);
  for (i64 r = 0; r < b.batch; ++r) {
    const auto& p = pairs[static_cast<std::size_t>(indices[static_cast<std::size_t>(r)])];
    for (std::size_t t = 0; t < p.src.size(); ++t) {
      b.src[static_cast<std::size_t>(r * b.src_len) + t] = p.src[t];
    }
    b.tgt_in[static_cast<std::size_t>(r * b.tgt_len)] = kBosId;
    for (std::size_t t = 0; t < p.tgt.size(); ++t) {
      b.tgt_in[static_cast<std::size_t>(r * b.tgt_len) + t + 1] = p.tgt[t];
      b.tgt_out[static_cast<std::size_t>(r * b.tgt_len) + t] = p.tgt[t];
    }
    b.tgt_out[static_cast<std::size_t>(r * b.tgt_len) + p.tgt.size()] = kEosId;
  }
  return b;
}

}  // namespace legw::data
