// Synthetic translation task (WMT16 En→De stand-in for GNMT).
//
// A source sentence is a random token sequence; its "translation" applies a
// fixed bijective token mapping, reverses local 2-token windows, and inserts
// a length marker. Recovering the target therefore requires token-level
// alignment (the attention path), vocabulary mapping (the embeddings +
// softmax path) and order modelling (the recurrent path) — the same
// sub-skills NMT exercises, with exactly computable references for BLEU.
#pragma once

#include <vector>

#include "core/rng.hpp"

namespace legw::data {

struct TranslationConfig {
  i64 src_vocab = 200;   // real tokens; ids 0..3 reserved
  i64 tgt_vocab = 200;
  i64 min_len = 4;
  i64 max_len = 10;
  i64 n_train = 8000;
  i64 n_test = 500;
  u64 seed = 7;
};

// Reserved ids shared by both vocabularies.
constexpr i32 kPadId = 0;
constexpr i32 kBosId = 1;
constexpr i32 kEosId = 2;
constexpr i32 kFirstTokenId = 4;

struct SentencePair {
  std::vector<i32> src;  // no BOS/EOS
  std::vector<i32> tgt;  // no BOS/EOS; decoder adds them
};

class SyntheticTranslation {
 public:
  explicit SyntheticTranslation(const TranslationConfig& config);

  const TranslationConfig& config() const { return config_; }
  const std::vector<SentencePair>& train() const { return train_; }
  const std::vector<SentencePair>& test() const { return test_; }

  // The ground-truth transform (exposed so tests can verify invertibility).
  std::vector<i32> translate(const std::vector<i32>& src) const;

 private:
  std::vector<SentencePair> make_split(i64 n, core::Rng& rng) const;

  TranslationConfig config_;
  std::vector<i32> token_map_;  // src token -> tgt token bijection
  std::vector<SentencePair> train_;
  std::vector<SentencePair> test_;
};

// Pads a set of pairs into dense batch arrays for the seq2seq model.
struct TranslationBatch {
  i64 batch = 0;
  i64 src_len = 0;  // max source length in batch
  i64 tgt_len = 0;  // max target length in batch, incl. EOS
  std::vector<i32> src;         // [batch, src_len], kPadId padded
  std::vector<i32> tgt_in;      // [batch, tgt_len], starts with BOS
  std::vector<i32> tgt_out;     // [batch, tgt_len], ends with EOS, pad=kPadId
};

TranslationBatch make_translation_batch(const std::vector<SentencePair>& pairs,
                                        const std::vector<i64>& indices);

}  // namespace legw::data
