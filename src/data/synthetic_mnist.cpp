#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <cmath>

namespace legw::data {

namespace {

// Renders a soft "stroke": a chain of Gaussian blobs between two points.
void draw_stroke(core::Tensor& img, double x0, double y0, double x1, double y1,
                 double radius, double intensity) {
  const int steps = 24;
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double cx = x0 + t * (x1 - x0);
    const double cy = y0 + t * (y1 - y0);
    for (i64 r = 0; r < SyntheticMnist::kRows; ++r) {
      for (i64 c = 0; c < SyntheticMnist::kCols; ++c) {
        const double d2 = (r - cy) * (r - cy) + (c - cx) * (c - cx);
        const double v = intensity * std::exp(-d2 / (2.0 * radius * radius));
        float& px = img[r * SyntheticMnist::kCols + c];
        px = static_cast<float>(std::min(1.0, static_cast<double>(px) + v));
      }
    }
  }
}

}  // namespace

SyntheticMnist::SyntheticMnist(i64 n_train, i64 n_test, u64 seed) {
  // Templates are derived from the class id only — every dataset instance
  // with any seed shares the same underlying concept classes.
  templates_.reserve(kClasses);
  for (i64 cls = 0; cls < kClasses; ++cls) {
    core::Rng trng(0xC1A55EEDull + static_cast<u64>(cls) * 7919u);
    core::Tensor tpl(core::Shape{kRows * kCols});
    const int n_strokes = 2 + static_cast<int>(trng.uniform_int(3));
    for (int s = 0; s < n_strokes; ++s) {
      const double x0 = trng.uniform(4.0, 24.0);
      const double y0 = trng.uniform(4.0, 24.0);
      const double x1 = trng.uniform(4.0, 24.0);
      const double y1 = trng.uniform(4.0, 24.0);
      draw_stroke(tpl, x0, y0, x1, y1, trng.uniform(1.2, 2.2),
                  trng.uniform(0.5, 0.9));
    }
    templates_.push_back(std::move(tpl));
  }

  core::Rng rng(seed);
  core::Rng train_rng = rng.split();
  core::Rng test_rng = rng.split();
  train_images_ = core::Tensor(core::Shape{n_train, kRows * kCols});
  test_images_ = core::Tensor(core::Shape{n_test, kRows * kCols});
  generate(n_train, train_rng, train_images_, train_labels_);
  generate(n_test, test_rng, test_images_, test_labels_);
}

void SyntheticMnist::generate(i64 n, core::Rng& rng, core::Tensor& images,
                              std::vector<i32>& labels) const {
  labels.resize(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i32 cls = static_cast<i32>(rng.uniform_int(kClasses));
    labels[static_cast<std::size_t>(i)] = cls;
    const core::Tensor& tpl = templates_[static_cast<std::size_t>(cls)];
    // Integer jitter of up to ±2 pixels plus contrast scaling and noise.
    const i64 dy = static_cast<i64>(rng.uniform_int(5)) - 2;
    const i64 dx = static_cast<i64>(rng.uniform_int(5)) - 2;
    const float contrast = static_cast<float>(rng.uniform(0.7, 1.0));
    float* out = images.data() + i * kRows * kCols;
    for (i64 r = 0; r < kRows; ++r) {
      for (i64 c = 0; c < kCols; ++c) {
        const i64 sr = r - dy;
        const i64 sc = c - dx;
        float v = 0.0f;
        if (sr >= 0 && sr < kRows && sc >= 0 && sc < kCols) {
          v = tpl[sr * kCols + sc] * contrast;
        }
        v += static_cast<float>(rng.normal(0.0, 0.08));
        out[r * kCols + c] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
}

core::Tensor SyntheticMnist::gather_images(const std::vector<i64>& indices,
                                           bool train) const {
  const core::Tensor& src = train ? train_images_ : test_images_;
  const i64 d = kRows * kCols;
  core::Tensor out(core::Shape{static_cast<i64>(indices.size()), d});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const i64 idx = indices[i];
    LEGW_CHECK(idx >= 0 && idx < src.size(0), "gather_images: bad index");
    std::copy(src.data() + idx * d, src.data() + (idx + 1) * d,
              out.data() + static_cast<i64>(i) * d);
  }
  return out;
}

std::vector<i32> SyntheticMnist::gather_labels(const std::vector<i64>& indices,
                                               bool train) const {
  const std::vector<i32>& src = train ? train_labels_ : test_labels_;
  std::vector<i32> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = src[static_cast<std::size_t>(indices[i])];
  }
  return out;
}

}  // namespace legw::data
