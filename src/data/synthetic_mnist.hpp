// Synthetic MNIST stand-in (see DESIGN.md §1 for the substitution argument).
//
// Ten classes; each class owns a fixed procedural 28x28 template built from
// class-seeded Gaussian strokes. A sample is its class template, randomly
// jittered by ±2 pixels, blended with per-pixel noise, and contrast-scaled.
// The task is learnable to >95% accuracy by the paper's row-unrolled LSTM
// (28 steps of 28-pixel rows) but far from linearly separable, and — like
// real MNIST — training diverges at large batch when the LR ramps too fast,
// which is exactly the failure mode LEGW's warmup addresses.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace legw::data {

class SyntheticMnist {
 public:
  static constexpr i64 kRows = 28;
  static constexpr i64 kCols = 28;
  static constexpr i64 kClasses = 10;

  // Deterministic in (n_train, n_test, seed).
  SyntheticMnist(i64 n_train, i64 n_test, u64 seed);

  i64 n_train() const { return static_cast<i64>(train_labels_.size()); }
  i64 n_test() const { return static_cast<i64>(test_labels_.size()); }

  // Row-major [n, 28*28] pixels in [0, 1].
  const core::Tensor& train_images() const { return train_images_; }
  const core::Tensor& test_images() const { return test_images_; }
  const std::vector<i32>& train_labels() const { return train_labels_; }
  const std::vector<i32>& test_labels() const { return test_labels_; }

  // Gathers a batch: images [indices.size(), 784], labels aligned.
  core::Tensor gather_images(const std::vector<i64>& indices, bool train) const;
  std::vector<i32> gather_labels(const std::vector<i64>& indices, bool train) const;

 private:
  void generate(i64 n, core::Rng& rng, core::Tensor& images,
                std::vector<i32>& labels) const;

  std::vector<core::Tensor> templates_;  // one [28*28] per class
  core::Tensor train_images_;
  core::Tensor test_images_;
  std::vector<i32> train_labels_;
  std::vector<i32> test_labels_;
};

}  // namespace legw::data
