#include "data/images.hpp"

#include <algorithm>
#include <cmath>

namespace legw::data {

SyntheticImages::SyntheticImages(i64 n_train, i64 n_test, u64 seed) {
  constexpr i64 kPix = kChannels * kSize * kSize;
  templates_.reserve(kClasses);
  for (i64 cls = 0; cls < kClasses; ++cls) {
    core::Rng trng(0x1A6E5EEDull + static_cast<u64>(cls) * 6151u);
    core::Tensor tpl(core::Shape{kPix});
    // 2-3 coloured shapes per class at class-fixed positions.
    const int n_shapes = 2 + static_cast<int>(trng.uniform_int(2));
    for (int s = 0; s < n_shapes; ++s) {
      const double cx = trng.uniform(3.0, 13.0);
      const double cy = trng.uniform(3.0, 13.0);
      const double radius = trng.uniform(2.0, 4.5);
      const bool disc = trng.uniform() < 0.5;
      float rgb[3] = {static_cast<float>(trng.uniform(0.2, 1.0)),
                      static_cast<float>(trng.uniform(0.2, 1.0)),
                      static_cast<float>(trng.uniform(0.2, 1.0))};
      for (i64 y = 0; y < kSize; ++y) {
        for (i64 x = 0; x < kSize; ++x) {
          bool inside;
          if (disc) {
            const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            inside = d2 <= radius * radius;
          } else {
            inside = std::abs(x - cx) <= radius && std::abs(y - cy) <= radius;
          }
          if (!inside) continue;
          for (i64 c = 0; c < kChannels; ++c) {
            float& px = tpl[(c * kSize + y) * kSize + x];
            px = std::min(1.0f, px + rgb[c]);
          }
        }
      }
    }
    templates_.push_back(std::move(tpl));
  }

  core::Rng rng(seed);
  core::Rng train_rng = rng.split();
  core::Rng test_rng = rng.split();
  train_images_ = core::Tensor(core::Shape{n_train, kPix});
  test_images_ = core::Tensor(core::Shape{n_test, kPix});
  generate(n_train, train_rng, train_images_, train_labels_);
  generate(n_test, test_rng, test_images_, test_labels_);
}

void SyntheticImages::generate(i64 n, core::Rng& rng, core::Tensor& images,
                               std::vector<i32>& labels) const {
  labels.resize(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    const i32 cls = static_cast<i32>(rng.uniform_int(kClasses));
    labels[static_cast<std::size_t>(i)] = cls;
    const core::Tensor& tpl = templates_[static_cast<std::size_t>(cls)];
    const i64 dy = static_cast<i64>(rng.uniform_int(3)) - 1;
    const i64 dx = static_cast<i64>(rng.uniform_int(3)) - 1;
    const float bright = static_cast<float>(rng.uniform(0.6, 1.0));
    float* out = images.data() + i * kChannels * kSize * kSize;
    for (i64 c = 0; c < kChannels; ++c) {
      for (i64 y = 0; y < kSize; ++y) {
        for (i64 x = 0; x < kSize; ++x) {
          const i64 sy = y - dy;
          const i64 sx = x - dx;
          float v = 0.0f;
          if (sy >= 0 && sy < kSize && sx >= 0 && sx < kSize) {
            v = tpl[(c * kSize + sy) * kSize + sx] * bright;
          }
          v += static_cast<float>(rng.normal(0.0, 0.1));
          out[(c * kSize + y) * kSize + x] = std::clamp(v, 0.0f, 1.0f);
        }
      }
    }
  }
}

core::Tensor SyntheticImages::gather_images(const std::vector<i64>& indices,
                                            bool train) const {
  const core::Tensor& src = train ? train_images_ : test_images_;
  constexpr i64 kPix = kChannels * kSize * kSize;
  core::Tensor out(
      core::Shape{static_cast<i64>(indices.size()), kChannels, kSize, kSize});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const i64 idx = indices[i];
    LEGW_CHECK(idx >= 0 && idx < src.size(0), "gather_images: bad index");
    std::copy(src.data() + idx * kPix, src.data() + (idx + 1) * kPix,
              out.data() + static_cast<i64>(i) * kPix);
  }
  return out;
}

std::vector<i32> SyntheticImages::gather_labels(const std::vector<i64>& indices,
                                                bool train) const {
  const std::vector<i32>& src = train ? train_labels_ : test_labels_;
  std::vector<i32> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = src[static_cast<std::size_t>(indices[i])];
  }
  return out;
}

IndexBatcher::IndexBatcher(i64 n, i64 batch_size, u64 seed)
    : batch_size_(batch_size), rng_(seed) {
  LEGW_CHECK(n >= batch_size && batch_size >= 1, "IndexBatcher: bad config");
  order_.resize(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) order_[static_cast<std::size_t>(i)] = i;
  batches_per_epoch_ = n / batch_size;
  shuffle();
}

void IndexBatcher::shuffle() {
  for (i64 i = static_cast<i64>(order_.size()) - 1; i > 0; --i) {
    std::swap(order_[static_cast<std::size_t>(i)],
              order_[rng_.uniform_int(static_cast<u64>(i + 1))]);
  }
}

std::vector<i64> IndexBatcher::next(bool* first_in_epoch) {
  if (first_in_epoch != nullptr) *first_in_epoch = cursor_ == 0;
  std::vector<i64> batch(
      order_.begin() + cursor_ * batch_size_,
      order_.begin() + (cursor_ + 1) * batch_size_);
  ++cursor_;
  if (cursor_ >= batches_per_epoch_) {
    cursor_ = 0;
    shuffle();
  }
  return batch;
}

}  // namespace legw::data
