// Synthetic language-modelling corpus (PTB stand-in).
//
// Tokens are emitted by a hidden Markov model: `n_states` latent states with
// a random banded transition matrix and Zipf-distributed per-state emission
// tables over the vocabulary. The source has substantial sequential
// structure (the LSTM must track the latent state to predict well), a known
// generative process, and tunable difficulty — all an LM scheduling study
// needs from PTB. Perplexity is comparable across methods because every run
// sees the identical corpus.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace legw::data {

struct CorpusConfig {
  i64 vocab = 1000;
  i64 n_states = 12;
  i64 n_train_tokens = 100'000;
  i64 n_valid_tokens = 10'000;
  u64 seed = 1;
};

class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(const CorpusConfig& config);

  i64 vocab() const { return config_.vocab; }
  const std::vector<i32>& train_tokens() const { return train_; }
  const std::vector<i32>& valid_tokens() const { return valid_; }

 private:
  void build_model(core::Rng& rng);
  std::vector<i32> sample(i64 n, core::Rng& rng) const;

  CorpusConfig config_;
  // transition_[s] is a CDF over next states; emission_[s] a CDF over vocab.
  std::vector<std::vector<double>> transition_cdf_;
  std::vector<std::vector<double>> emission_cdf_;
  std::vector<i32> train_;
  std::vector<i32> valid_;
};

// Classic PTB batching: the token stream is cut into `batch_size` parallel
// streams; next_chunk() yields [batch_size, bptt_len] inputs and same-shape
// shifted-by-one targets, stepping through the streams so LSTM state can be
// carried across chunks.
class BpttBatcher {
 public:
  BpttBatcher(const std::vector<i32>& tokens, i64 batch_size, i64 bptt_len);

  struct Chunk {
    std::vector<i32> inputs;   // [batch, bptt] row-major
    std::vector<i32> targets;  // [batch, bptt] row-major
    bool first_in_epoch = false;
  };

  // Number of chunks per full pass over the streams.
  i64 chunks_per_epoch() const { return chunks_per_epoch_; }
  i64 batch_size() const { return batch_size_; }
  i64 bptt_len() const { return bptt_len_; }

  // Cycles forever; wraps to the stream starts at epoch boundaries.
  Chunk next_chunk();
  void reset() { cursor_ = 0; }

 private:
  std::vector<i32> streams_;  // [batch, stream_len] row-major
  i64 batch_size_;
  i64 bptt_len_;
  i64 stream_len_;
  i64 chunks_per_epoch_;
  i64 cursor_ = 0;
};

}  // namespace legw::data
