// Additional edge-case coverage: tensor corner cases, schedule composition
// with LEGW + cosine, LSTM long-sequence stability, translation batching
// extremes, Adam/LAMB state behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "data/translation.hpp"
#include "nn/lstm.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"
#include "sched/schedule.hpp"

namespace legw {
namespace {

using ag::Variable;
using core::Rng;
using core::Tensor;

// ---- tensor corner cases -----------------------------------------------------

TEST(TensorEdge, ScalarShapeTensor) {
  Tensor t(core::Shape{});  // rank-0: one element
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.dim(), 0);
  t[0] = 5.0f;
  EXPECT_FLOAT_EQ(t.sum(), 5.0f);
}

TEST(TensorEdge, ZeroSizedDimension) {
  Tensor t({0, 4});
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.l2_norm(), 0.0f);
}

TEST(TensorEdge, SingleElementMatmul) {
  Tensor a({1, 1}, {3.0f});
  Tensor b({1, 1}, {4.0f});
  Tensor c = core::matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
}

TEST(TensorEdge, TallSkinnyAndShortFatGemm) {
  Rng rng(1);
  Tensor a = Tensor::randn({200, 2}, rng);
  Tensor b = Tensor::randn({2, 3}, rng);
  Tensor c = core::matmul(a, b);
  EXPECT_EQ(c.shape(), (core::Shape{200, 3}));
  // Spot-check one element.
  const float want = a.at(17, 0) * b.at(0, 1) + a.at(17, 1) * b.at(1, 1);
  EXPECT_NEAR(c.at(17, 1), want, 1e-5f);
}

// ---- LEGW x cosine composition --------------------------------------------------

TEST(LegwCosine, ComposesLikeAnyDecay) {
  sched::LegwBaseline base{64, 0.2f, 0.25};
  auto sched = sched::legw_schedule(base, 256, [](float peak) {
    return std::make_shared<sched::CosineLr>(peak, 20.0);
  });
  // k=4: peak 0.4, warmup 1 epoch.
  EXPECT_NEAR(sched->lr(0.5), 0.5f * sched->lr(1.0) / 1.0f * 1.0f,
              0.02f);  // ~linear ramp
  EXPECT_NEAR(sched->lr(1.0), 0.4f * 0.5f * (1.0f + std::cos(M_PI / 20.0)),
              1e-4f);
  EXPECT_NEAR(sched->lr(20.0), 0.0f, 1e-6f);
}

TEST(MultiStepLr, EmptyMilestonesIsConstant) {
  sched::MultiStepLr s(0.3f, {}, 0.1f);
  EXPECT_FLOAT_EQ(s.lr(0.0), 0.3f);
  EXPECT_FLOAT_EQ(s.lr(100.0), 0.3f);
}

// ---- LSTM long-sequence stability -----------------------------------------------

TEST(LstmStability, HundredStepsStayFinite) {
  Rng rng(2);
  nn::LstmCellLayer cell(4, 4, rng);
  nn::LstmState s = cell.zero_state(2);
  Variable x = Variable::constant(Tensor::randn({2, 4}, rng));
  for (int t = 0; t < 100; ++t) s = cell.step(x, s);
  for (i64 i = 0; i < s.h.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(s.h.value()[i]));
    ASSERT_LT(std::abs(s.h.value()[i]), 1.0f + 1e-5f);  // tanh-bounded
    ASSERT_TRUE(std::isfinite(s.c.value()[i]));
  }
  // Gradients through 100 steps also stay finite (forget-gate bias at 1).
  ag::backward(ag::sum_all(s.h));
  EXPECT_TRUE(std::isfinite(cell.weight().grad().l2_norm()));
}

// ---- translation batching extremes -----------------------------------------------

TEST(TranslationBatch, SingleSentenceBatch) {
  data::TranslationConfig cfg;
  cfg.n_train = 5;
  data::SyntheticTranslation d(cfg);
  auto b = data::make_translation_batch(d.train(), {2});
  EXPECT_EQ(b.batch, 1);
  EXPECT_EQ(b.src_len, static_cast<i64>(d.train()[2].src.size()));
  EXPECT_EQ(b.tgt_len, static_cast<i64>(d.train()[2].tgt.size()) + 1);
}

TEST(TranslationBatch, MixedLengthsPadToMax) {
  data::TranslationConfig cfg;
  cfg.min_len = 2;
  cfg.max_len = 9;
  cfg.n_train = 64;
  data::SyntheticTranslation d(cfg);
  // Find a short and a long pair.
  i64 short_idx = -1, long_idx = -1;
  for (std::size_t i = 0; i < d.train().size(); ++i) {
    const auto len = d.train()[i].src.size();
    if (len <= 3 && short_idx < 0) short_idx = static_cast<i64>(i);
    if (len >= 8 && long_idx < 0) long_idx = static_cast<i64>(i);
  }
  ASSERT_GE(short_idx, 0);
  ASSERT_GE(long_idx, 0);
  auto b = data::make_translation_batch(d.train(), {short_idx, long_idx});
  EXPECT_EQ(b.src_len, static_cast<i64>(d.train()[static_cast<std::size_t>(long_idx)].src.size()));
  // Short row padded after its tokens.
  const auto& short_pair = d.train()[static_cast<std::size_t>(short_idx)];
  EXPECT_EQ(b.src[short_pair.src.size()], data::kPadId);
}

// ---- optimizer state behaviour -----------------------------------------------------

TEST(AdamState, StepCounterSharedAcrossParams) {
  // Bias correction uses a single global t: two params updated in one step
  // must both get the t=1 correction.
  Variable p1 = Variable::leaf(Tensor({1}, {0.0f}), true);
  Variable p2 = Variable::leaf(Tensor({1}, {0.0f}), true);
  p1.mutable_grad()[0] = 0.5f;
  p2.mutable_grad()[0] = -0.5f;
  optim::Adam opt({p1, p2});
  opt.set_lr(0.01f);
  opt.step();
  EXPECT_NEAR(p1.value()[0], -0.01f, 1e-4f);
  EXPECT_NEAR(p2.value()[0], 0.01f, 1e-4f);
}

TEST(LambState, TrustRatioIndependentPerLayer) {
  // Two layers with very different norms get different effective steps.
  Variable big = Variable::leaf(Tensor({2}, {10.0f, 0.0f}), true);
  Variable small = Variable::leaf(Tensor({2}, {0.1f, 0.0f}), true);
  big.mutable_grad()[1] = 1.0f;
  small.mutable_grad()[1] = 1.0f;
  optim::Lamb opt({big, small}, 0.9f, 0.999f, 1e-6f, 0.0f);
  opt.set_lr(0.01f);
  opt.step();
  const float big_move = std::abs(big.value()[1]);
  const float small_move = std::abs(small.value()[1]);
  // Same gradient, but the bigger layer takes the (proportionally) bigger
  // step: ratio ~ ||w_big|| / ||w_small|| = 100.
  EXPECT_GT(big_move / small_move, 50.0f);
}

TEST(Momentum, VelocityIsolatedBetweenInstances) {
  Variable p = Variable::leaf(Tensor({1}, {0.0f}), true);
  p.mutable_grad()[0] = 1.0f;
  optim::Momentum a({p}, 0.9f);
  a.set_lr(0.1f);
  a.step();  // v=1
  const float after_a = p.value()[0];
  // Fresh optimizer: no inherited velocity.
  p.mutable_grad()[0] = 1.0f;
  optim::Momentum b({p}, 0.9f);
  b.set_lr(0.1f);
  b.step();
  EXPECT_NEAR(p.value()[0] - after_a, after_a, 1e-6f);
}

// ---- dropout + sequence interaction -----------------------------------------------

TEST(LstmDropoutSeq, MaskIsIndependentPerStep) {
  // Inter-layer dropout draws a fresh mask per timestep: with p=0.5 over
  // many steps, layer-2 inputs can't be identically masked every time.
  Rng rng(3);
  nn::Lstm lstm(2, 8, 2, rng, 0.5f);
  std::vector<Variable> inputs;
  Tensor same = Tensor::randn({1, 2}, rng);
  for (int t = 0; t < 8; ++t) inputs.push_back(Variable::constant(same));
  Rng drng(5);
  auto out = lstm.forward(inputs, {}, drng);
  // Outputs at different steps differ (state evolves AND masks differ);
  // weak but deterministic sanity that the graph didn't reuse one mask node.
  float diff = 0.0f;
  for (i64 i = 0; i < out.outputs[6].numel(); ++i) {
    diff += std::abs(out.outputs[6].value()[i] - out.outputs[7].value()[i]);
  }
  EXPECT_GT(diff, 1e-6f);
}

}  // namespace
}  // namespace legw
