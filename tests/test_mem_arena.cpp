// Allocator test battery: the arena and its static memory plan, proven by
// properties rather than examples.
//
//   * StepArena: alignment (>= 64B in every mode), no byte overlap among
//     simultaneously-live allocations (checked against a shadow model),
//     deterministic offsets across identically-driven arenas, record ->
//     replay pointer stability, divergence fallback to bypass + re-record,
//     and the release-build retire escape hatch.
//   * plan_offsets: on randomized interval sets, no two lifetimes whose live
//     ranges intersect may share a byte (plan_is_valid oracle), offsets stay
//     aligned, and the plan never exceeds the no-reuse footprint.
//   * ag::tape_lifetimes: on randomized autograd tapes, the extracted
//     intervals feed the planner and the result must validate — the
//     end-to-end property the runtime arena relies on.
//
// The battery runs under the sanitize preset (label tier1-mem matches the
// "mem" filter), where the arena's manual ASan poisoning turns any
// use-after-free in these tests into a hard stop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <vector>

#include "ag/lifetimes.hpp"
#include "ag/ops.hpp"
#include "ag/variable.hpp"
#include "mem/alloc.hpp"
#include "mem/arena.hpp"
#include "mem/plan.hpp"

namespace legw::mem {
namespace {

bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kArenaAlignment == 0;
}

// Shadow model: tracks [base, base+bytes) ranges of live allocations and
// rejects any new range that intersects one.
class ShadowLiveSet {
 public:
  void add(const void* p, i64 bytes) {
    const auto base = reinterpret_cast<std::uintptr_t>(p);
    for (const auto& [b, e] : live_) {
      ASSERT_TRUE(base + static_cast<std::uintptr_t>(bytes) <= b || e <= base)
          << "overlap: new [" << base << ", " << base + bytes << ") vs live ["
          << b << ", " << e << ")";
    }
    live_[base] = base + static_cast<std::uintptr_t>(bytes);
  }
  void remove(const void* p) {
    live_.erase(reinterpret_cast<std::uintptr_t>(p));
  }
  std::size_t size() const { return live_.size(); }

 private:
  std::map<std::uintptr_t, std::uintptr_t> live_;
};

// ---------------------------------------------------------------------------
// plan_offsets property tests
// ---------------------------------------------------------------------------

std::vector<Lifetime> random_lifetimes(u64 seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<i64> size_dist(1, 4096);
  // Random birth/death pairs on a shared clock: draw two distinct events per
  // lifetime from a pool ~2n wide so overlap is common but not universal.
  std::uniform_int_distribution<i64> ev(0, 2 * n - 1);
  std::vector<Lifetime> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    i64 a = ev(rng);
    i64 b = ev(rng);
    if (a == b) b = a + 1;
    Lifetime lt;
    lt.bytes = size_dist(rng);
    lt.birth = std::min(a, b);
    lt.death = std::max(a, b);
    out.push_back(lt);
  }
  return out;
}

TEST(MemPlan, RandomizedIntervalSetsAlwaysValidate) {
  for (u64 seed = 1; seed <= 40; ++seed) {
    const auto lts = random_lifetimes(seed, 64);
    const MemPlan plan = plan_offsets(lts);
    ASSERT_EQ(plan.slots.size(), lts.size());
    EXPECT_TRUE(plan_is_valid(lts, plan)) << "seed " << seed;
    // Reuse can only shrink the footprint, never grow it.
    EXPECT_LE(plan.arena_bytes, plan.naive_bytes) << "seed " << seed;
    EXPECT_GT(plan.arena_bytes, 0) << "seed " << seed;
  }
}

TEST(MemPlan, PlannerIsDeterministic) {
  const auto lts = random_lifetimes(7, 128);
  const MemPlan a = plan_offsets(lts);
  const MemPlan b = plan_offsets(lts);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].offset, b.slots[i].offset) << i;
    EXPECT_EQ(a.slots[i].bytes, b.slots[i].bytes) << i;
  }
  EXPECT_EQ(a.arena_bytes, b.arena_bytes);
}

TEST(MemPlan, DisjointLifetimesShareBytes) {
  // Two buffers that never coexist must land on the same offset: this is the
  // whole point of the plan.
  std::vector<Lifetime> lts = {{1024, 0, 2}, {1024, 2, 4}};
  const MemPlan plan = plan_offsets(lts);
  EXPECT_TRUE(plan_is_valid(lts, plan));
  EXPECT_EQ(plan.slots[0].offset, plan.slots[1].offset);
  EXPECT_EQ(plan.arena_bytes, round_up_align(1024));
  EXPECT_EQ(plan.naive_bytes, 2 * round_up_align(1024));
}

TEST(MemPlan, OverlappingLifetimesDoNot) {
  std::vector<Lifetime> lts = {{1024, 0, 3}, {1024, 1, 4}};
  const MemPlan plan = plan_offsets(lts);
  EXPECT_TRUE(plan_is_valid(lts, plan));
  EXPECT_NE(plan.slots[0].offset, plan.slots[1].offset);
  EXPECT_EQ(plan.arena_bytes, 2 * round_up_align(1024));
}

TEST(MemPlan, ValidatorRejectsCorruptPlans) {
  std::vector<Lifetime> lts = {{64, 0, 3}, {64, 1, 4}};
  MemPlan plan = plan_offsets(lts);
  ASSERT_TRUE(plan_is_valid(lts, plan));
  plan.slots[1].offset = plan.slots[0].offset;  // force an overlap
  EXPECT_FALSE(plan_is_valid(lts, plan));
  plan = plan_offsets(lts);
  plan.slots[0].offset += 1;  // break alignment
  EXPECT_FALSE(plan_is_valid(lts, plan));
}

TEST(MemPlan, EmptyInputYieldsEmptyPlan) {
  const MemPlan plan = plan_offsets({});
  EXPECT_TRUE(plan.slots.empty());
  EXPECT_EQ(plan.arena_bytes, 0);
  EXPECT_TRUE(plan_is_valid({}, plan));
}

// ---------------------------------------------------------------------------
// StepArena property tests
// ---------------------------------------------------------------------------

// Drives one step's worth of a deterministic random alloc/free trace through
// the arena, asserting alignment + non-overlap against the shadow model.
// Returns the sequence of (size) requests so callers can replay it.
struct TraceAlloc {
  void* p = nullptr;
  i64 bytes = 0;
  u64 gen = 0;
};

std::vector<i64> random_sizes(u64 seed, int n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<i64> size_dist(1, 8192);
  std::vector<i64> sizes;
  sizes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) sizes.push_back(size_dist(rng));
  return sizes;
}

// Allocates all sizes, frees in LIFO-ish interleaved order (free every other
// allocation mid-stream, the rest at the end) — a shape with real overlap.
void drive_step(StepArena& arena, const std::vector<i64>& sizes) {
  arena.begin_step();
  ShadowLiveSet shadow;
  std::vector<TraceAlloc> live;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    TraceAlloc a;
    a.bytes = sizes[i];
    a.p = arena.allocate(a.bytes);
    a.gen = arena.generation();
    ASSERT_NE(a.p, nullptr);
    ASSERT_TRUE(is_aligned(a.p)) << "allocation " << i;
    shadow.add(a.p, a.bytes);
    if (::testing::Test::HasFatalFailure()) return;
    live.push_back(a);
    if (i % 2 == 1) {  // free the previous allocation mid-stream
      TraceAlloc victim = live[live.size() - 2];
      shadow.remove(victim.p);
      arena.deallocate(victim.p, victim.bytes, victim.gen);
      live.erase(live.end() - 2);
    }
  }
  for (const TraceAlloc& a : live) {
    shadow.remove(a.p);
    arena.deallocate(a.p, a.bytes, a.gen);
  }
  EXPECT_EQ(arena.live_count(), 0);
  arena.end_step();
}

TEST(StepArenaTest, RecordStepAlignsAndNeverOverlaps) {
  StepArena arena("t_record");
  drive_step(arena, random_sizes(11, 200));
  const StepArena::Stats st = arena.stats();
  EXPECT_EQ(st.steps, 1);
  EXPECT_EQ(st.recorded_steps, 1);
  EXPECT_EQ(st.allocs, 200);
  EXPECT_EQ(st.live_bytes, 0);
  EXPECT_GT(st.peak_live_bytes, 0);
  EXPECT_EQ(st.plan_slots, 200);
  EXPECT_GT(st.planned_bytes, 0);
  EXPECT_LE(st.planned_bytes, st.naive_bytes);
}

TEST(StepArenaTest, ReplayStepsAlignAndNeverOverlap) {
  StepArena arena("t_replay");
  const auto sizes = random_sizes(12, 150);
  drive_step(arena, sizes);  // step 1: record
  for (int step = 0; step < 3; ++step) drive_step(arena, sizes);
  const StepArena::Stats st = arena.stats();
  EXPECT_EQ(st.steps, 4);
  EXPECT_EQ(st.recorded_steps, 1);
  EXPECT_EQ(st.replayed_steps, 3);
  EXPECT_EQ(st.divergences, 0);
}

TEST(StepArenaTest, ReplayServesIdenticalPointersEveryStep) {
  // The headline property: steps 2+ reuse the same bytes in place. Capture
  // the pointer sequence of two replay steps (same alloc AND free order as
  // the recorded step, so planned reuse is exercised) and compare.
  StepArena arena("t_stable");
  const auto sizes = random_sizes(13, 64);
  drive_step(arena, sizes);  // record
  auto capture = [&]() {
    std::vector<void*> ptrs;
    arena.begin_step();
    std::vector<TraceAlloc> live;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      TraceAlloc a{arena.allocate(sizes[i]), sizes[i], arena.generation()};
      ptrs.push_back(a.p);
      live.push_back(a);
      if (i % 2 == 1) {  // mirror drive_step's interleaved free pattern
        TraceAlloc victim = live[live.size() - 2];
        arena.deallocate(victim.p, victim.bytes, victim.gen);
        live.erase(live.end() - 2);
      }
    }
    for (const TraceAlloc& a : live) arena.deallocate(a.p, a.bytes, a.gen);
    arena.end_step();
    return ptrs;
  };
  const auto first = capture();
  EXPECT_TRUE(arena.replaying() == false);  // between steps: idle
  const auto second = capture();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "allocation " << i;
  }
}

TEST(StepArenaTest, DeterministicOffsetsAcrossArenas) {
  // Two arenas driven by the identical trace must solve the identical plan
  // (same offsets, same region size) — the allocator-level face of the
  // repo's determinism contract.
  StepArena a("t_det_a");
  StepArena b("t_det_b");
  const auto sizes = random_sizes(14, 100);
  drive_step(a, sizes);
  drive_step(b, sizes);
  const auto pa = a.current_plan();
  const auto pb = b.current_plan();
  ASSERT_FALSE(pa.empty());
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].offset, pb[i].offset) << i;
    EXPECT_EQ(pa[i].bytes, pb[i].bytes) << i;
  }
}

TEST(StepArenaTest, DivergenceFallsBackToBypassAndRerecords) {
  StepArena arena("t_diverge");
  const auto sizes = random_sizes(15, 32);
  drive_step(arena, sizes);  // record
  drive_step(arena, sizes);  // replay
  // Change the workload: different sizes. The first mismatching allocation
  // must divert to bypass (correct, unplanned) and the step after re-records.
  auto changed = sizes;
  changed[5] += 64;
  drive_step(arena, changed);  // diverges mid-replay
  StepArena::Stats st = arena.stats();
  EXPECT_EQ(st.divergences, 1);
  drive_step(arena, changed);  // re-records the new shape
  drive_step(arena, changed);  // and replays it
  st = arena.stats();
  EXPECT_EQ(st.divergences, 1);
  EXPECT_EQ(st.recorded_steps, 2);
  EXPECT_GE(st.replayed_steps, 2);
}

TEST(StepArenaTest, ExtraAllocationsBeyondPlanDivergeSafely) {
  StepArena arena("t_excess");
  const auto sizes = random_sizes(16, 16);
  drive_step(arena, sizes);
  auto more = sizes;
  more.push_back(4096);  // one extra allocation past the plan's slot count
  drive_step(arena, more);
  EXPECT_EQ(arena.stats().divergences, 1);
  drive_step(arena, more);  // re-record
  drive_step(arena, more);  // replay the longer trace
  EXPECT_EQ(arena.stats().divergences, 1);
}

TEST(StepArenaTest, WriteReadIntegrityAcrossModes) {
  // Fill every allocation with a distinct byte pattern and verify before
  // freeing — catches any planner overlap the shadow model might miss
  // (pointer ranges vs actually-written bytes).
  StepArena arena("t_integrity");
  const auto sizes = random_sizes(17, 48);
  for (int step = 0; step < 3; ++step) {
    arena.begin_step();
    std::vector<TraceAlloc> live;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      TraceAlloc a{arena.allocate(sizes[i]), sizes[i], arena.generation()};
      std::memset(a.p, static_cast<int>(i & 0xff), static_cast<std::size_t>(a.bytes));
      live.push_back(a);
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      const auto* bytes = static_cast<const unsigned char*>(live[i].p);
      for (i64 j = 0; j < live[i].bytes; ++j) {
        ASSERT_EQ(bytes[j], static_cast<unsigned char>(i & 0xff))
            << "step " << step << " alloc " << i << " byte " << j;
      }
      arena.deallocate(live[i].p, live[i].bytes, live[i].gen);
    }
    arena.end_step();
  }
}

#ifndef LEGW_CHECKED_BUILD
TEST(StepArenaTest, ReleaseBuildRetiresLiveMemoryIntact) {
  // A buffer that (buggily) survives the step must stay readable in release
  // builds: begin_step retires the old memory instead of recycling it.
  StepArena arena("t_retire");
  arena.begin_step();
  void* p = arena.allocate(256);
  const u64 gen = arena.generation();
  std::memset(p, 0x5a, 256);
  arena.end_step();
  arena.begin_step();  // p still live -> retire path
  EXPECT_EQ(arena.stats().retired_regions, 1);
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (int i = 0; i < 256; ++i) ASSERT_EQ(bytes[i], 0x5a) << i;
  // The stale free carries a retired generation and must be ignored.
  arena.deallocate(p, 256, gen);
  void* q = arena.allocate(64);
  arena.deallocate(q, 64, arena.generation());
  arena.end_step();
}
#endif

#ifdef LEGW_CHECKED_BUILD
TEST(StepArenaDeathTest, CheckedBuildAbortsOnCrossStepSurvivor) {
  // Checked builds refuse the escape hatch: storage that outlives its step
  // is a lifetime bug and begin_step aborts with blame.
  EXPECT_DEATH(
      {
        StepArena arena("t_abort");
        arena.begin_step();
        (void)arena.allocate(128);  // never freed
        arena.end_step();
        arena.begin_step();  // live allocation from the previous step
      },
      "outlived the training step");
}
#endif

#ifdef LEGW_MEM_ASAN
TEST(StepArenaDeathTest, PoisonTripsOnUseAfterFree) {
  // Under ASan, reading a freed arena byte must fault at the load: the arena
  // manually poisons freed regions, so stale reads cannot silently return
  // recycled garbage.
  EXPECT_DEATH(
      {
        StepArena arena("t_poison");
        arena.begin_step();
        void* p = arena.allocate(128);
        const u64 gen = arena.generation();
        arena.deallocate(p, 128, gen);
        volatile unsigned char sink =
            *static_cast<volatile unsigned char*>(p);  // poisoned read
        (void)sink;
      },
      "use-after-poison");
}
#endif

TEST(StepArenaTest, ReplayOnlyKeepsPlanAcrossDivergence) {
  // Serving mode (serve/broker.hpp): a divergence still drops the rest of
  // the step into bypass, but the plan survives, so the next conforming step
  // replays instead of re-recording. Training mode (default) re-records.
  StepArena arena("t_replay_only");
  arena.set_replay_only(true);
  EXPECT_TRUE(arena.replay_only());
  const auto shape_a = random_sizes(21, 32);
  auto shape_b = shape_a;
  shape_b[3] += 128;

  drive_step(arena, shape_a);  // records shape A
  drive_step(arena, shape_a);  // replays
  drive_step(arena, shape_b);  // diverges -> bypass, but the plan is KEPT
  drive_step(arena, shape_a);  // must replay again, not re-record
  const StepArena::Stats st = arena.stats();
  EXPECT_EQ(st.recorded_steps, 1) << "replay-only must never re-record";
  EXPECT_EQ(st.replayed_steps, 2);
  EXPECT_EQ(st.divergences, 1);
}

TEST(StepArenaTest, ReplayOnlySeededAlternationNeverCorruptsInFlight) {
  // Property: under replay-only, any seeded alternation of conforming and
  // divergent steps keeps every in-flight allocation intact — each live
  // buffer holds exactly the sentinel pattern written into it, whether it
  // was served from the replay region (before the divergence point) or from
  // a bypass slab (after it).
  for (u64 seed : {31u, 47u, 63u}) {
    StepArena arena("t_replay_only_prop");
    arena.set_replay_only(true);
    const auto shape_a = random_sizes(seed, 24);
    std::mt19937_64 rng(seed * 977);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<i64> delta(1, 8);

    // One step with `sizes`: allocate everything (sentinel-filled), verify,
    // free everything. The SAME pattern records and replays, so the plan's
    // no-overlap guarantee applies to every later step of this shape.
    auto run_pattern = [&](const std::vector<i64>& sizes, int step) {
      arena.begin_step();
      ShadowLiveSet shadow;
      std::vector<TraceAlloc> live;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        TraceAlloc a{arena.allocate(sizes[i]), sizes[i], arena.generation()};
        ASSERT_NE(a.p, nullptr);
        ASSERT_TRUE(is_aligned(a.p));
        shadow.add(a.p, a.bytes);
        if (::testing::Test::HasFatalFailure()) return;
        std::memset(a.p, static_cast<int>((i * 7 + static_cast<std::size_t>(
                                                       step + 1)) &
                                          0xff),
                    static_cast<std::size_t>(a.bytes));
        live.push_back(a);
      }
      for (std::size_t i = 0; i < live.size(); ++i) {
        const auto* bytes = static_cast<const unsigned char*>(live[i].p);
        const auto want = static_cast<unsigned char>(
            (i * 7 + static_cast<std::size_t>(step + 1)) & 0xff);
        for (i64 j = 0; j < live[i].bytes; ++j) {
          ASSERT_EQ(bytes[j], want)
              << "seed " << seed << " step " << step << " alloc " << i
              << " byte " << j;
        }
        shadow.remove(live[i].p);
        arena.deallocate(live[i].p, live[i].bytes, live[i].gen);
      }
      arena.end_step();
    };

    run_pattern(shape_a, -1);  // record the serving shape
    if (::testing::Test::HasFatalFailure()) return;
    i64 divergent_steps = 0;
    for (int step = 0; step < 12; ++step) {
      auto sizes = shape_a;
      if (coin(rng) == 1) {
        ++divergent_steps;
        // +64k always changes the rounded size, so the step really diverges.
        sizes[static_cast<std::size_t>(step) % sizes.size()] +=
            64 * delta(rng);
      }
      run_pattern(sizes, step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    const StepArena::Stats st = arena.stats();
    EXPECT_EQ(st.recorded_steps, 1) << "seed " << seed;
    EXPECT_EQ(st.divergences, divergent_steps) << "seed " << seed;
    // 12 driven steps after the record: divergent ones bypass, every
    // conforming one must replay.
    EXPECT_EQ(st.replayed_steps, 12 - divergent_steps) << "seed " << seed;
  }
}

TEST(StepArenaTest, ResetHardDropsPlanAndMemory) {
  StepArena arena("t_reset");
  const auto sizes = random_sizes(18, 24);
  drive_step(arena, sizes);
  ASSERT_FALSE(arena.current_plan().empty());
  arena.reset_hard();
  EXPECT_TRUE(arena.current_plan().empty());
  EXPECT_EQ(arena.stats().capacity_bytes, 0);
  drive_step(arena, sizes);  // records again from scratch
  EXPECT_EQ(arena.stats().recorded_steps, 2);
}

// ---------------------------------------------------------------------------
// Dispatcher + storage-binding behaviour
// ---------------------------------------------------------------------------

TEST(AllocModeTest, DispatcherParsesAndRoundTrips) {
  const AllocMode saved = alloc_mode();
  EXPECT_TRUE(set_alloc_mode("arena"));
  EXPECT_EQ(alloc_mode(), AllocMode::kArena);
  EXPECT_STREQ(alloc_mode_name(alloc_mode()), "arena");
  EXPECT_TRUE(set_alloc_mode("malloc"));
  EXPECT_EQ(alloc_mode(), AllocMode::kMalloc);
  EXPECT_STREQ(alloc_mode_name(alloc_mode()), "malloc");
  EXPECT_FALSE(set_alloc_mode("bogus"));
  EXPECT_EQ(alloc_mode(), AllocMode::kMalloc);  // unchanged on bad name
  set_alloc_mode(saved);
}

TEST(AllocModeTest, TrainStepScopeBindsOnlyInArenaMode) {
  const AllocMode saved = alloc_mode();
  set_alloc_mode(AllocMode::kMalloc);
  {
    TrainStepScope scope;
    EXPECT_FALSE(scope.active());
    EXPECT_EQ(bound_step_arena(), nullptr);
  }
  set_alloc_mode(AllocMode::kArena);
  {
    TrainStepScope scope;
    EXPECT_TRUE(scope.active());
    EXPECT_NE(bound_step_arena(), nullptr);
    {
      TrainStepScope inner;  // nested scope on the same thread: no-op
      EXPECT_FALSE(inner.active());
    }
    EXPECT_NE(bound_step_arena(), nullptr);
    {
      HeapBindGuard heap_only;
      EXPECT_EQ(bound_step_arena(), nullptr);
    }
    EXPECT_NE(bound_step_arena(), nullptr);
  }
  EXPECT_EQ(bound_step_arena(), nullptr);
  set_alloc_mode(saved);
}

TEST(AllocModeTest, TensorsInsideScopeAreArenaBackedAndZeroed) {
  const AllocMode saved = alloc_mode();
  set_alloc_mode(AllocMode::kArena);
  // Drive two steps so the second one exercises replay: recycled bytes must
  // still come back zero-filled from Tensor::zeros.
  for (int step = 0; step < 2; ++step) {
    TrainStepScope scope;
    ASSERT_TRUE(scope.active());
    core::Tensor t = core::Tensor::zeros(core::Shape{64});
    EXPECT_TRUE(t.arena_backed());
    for (i64 i = 0; i < t.numel(); ++i) ASSERT_EQ(t[i], 0.0f) << i;
    t.fill_(3.5f);  // dirty the bytes for the next step's recycling
  }
  set_alloc_mode(saved);
}

TEST(AllocModeTest, RehomePreservesDataAndDropsArenaBacking) {
  const AllocMode saved = alloc_mode();
  set_alloc_mode(AllocMode::kArena);
  {
    TrainStepScope scope;
    core::Tensor t({4}, {1.0f, 2.0f, 3.0f, 4.0f});
    ASSERT_TRUE(t.arena_backed());
    t.rehome_();
    EXPECT_FALSE(t.arena_backed());
    EXPECT_EQ(t[0], 1.0f);
    EXPECT_EQ(t[1], 2.0f);
    EXPECT_EQ(t[2], 3.0f);
    EXPECT_EQ(t[3], 4.0f);
    t.rehome_();  // idempotent on heap tensors
    EXPECT_FALSE(t.arena_backed());
  }
  set_alloc_mode(saved);
}

TEST(AllocModeTest, LeafGradsStayHeapInteriorValuesUseArena) {
  const AllocMode saved = alloc_mode();
  set_alloc_mode(AllocMode::kArena);
  core::Tensor heap_param = core::Tensor::zeros(core::Shape{3});
  heap_param.fill_(1.0f);
  ag::Variable w = ag::Variable::leaf(heap_param, /*requires_grad=*/true);
  {
    TrainStepScope scope;
    ag::Variable y = ag::mul(w, w);
    ag::Variable loss = ag::sum_all(y);
    EXPECT_TRUE(y.value().arena_backed());
    ag::backward(loss);
    // Parameter gradients survive the step: heap by construction.
    EXPECT_FALSE(w.grad().arena_backed());
    EXPECT_EQ(w.grad()[0], 2.0f);
  }
  // After the scope the leaf grad is still readable (heap).
  EXPECT_EQ(w.grad()[2], 2.0f);
  set_alloc_mode(saved);
}

TEST(AllocModeTest, MemStatsAggregateBothPaths) {
  const AllocMode saved = alloc_mode();
  set_alloc_mode(AllocMode::kArena);
  const MemStats before = mem_stats();
  {
    TrainStepScope scope;
    core::Tensor t = core::Tensor::zeros(core::Shape{1024});
    const MemStats during = mem_stats();
    EXPECT_GE(during.arena_live_bytes,
              before.arena_live_bytes + 1024 * static_cast<i64>(sizeof(float)));
    EXPECT_GE(during.arena_peak_bytes, during.arena_live_bytes);
  }
  core::Tensor heap_t = core::Tensor::zeros(core::Shape{256});
  const MemStats after = mem_stats();
  EXPECT_GT(after.heap_allocs, before.heap_allocs);
  EXPECT_GE(after.heap_peak_bytes, 256 * static_cast<i64>(sizeof(float)));
  set_alloc_mode(saved);
}

// ---------------------------------------------------------------------------
// Tape-derived lifetimes: the planner's end-to-end property
// ---------------------------------------------------------------------------

// Builds a randomized expression tape over a few parameters: a chain of
// binary/unary ops with random sharing, reduced to a scalar.
ag::Variable random_tape(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> op(0, 3);
  std::uniform_int_distribution<i64> dim(2, 6);
  const i64 n = dim(rng);
  core::Tensor init = core::Tensor::zeros(core::Shape{n});
  for (i64 i = 0; i < n; ++i) init.data()[i] = 0.1f * static_cast<float>(i + 1);
  std::vector<ag::Variable> frontier;
  frontier.push_back(ag::Variable::leaf(init, /*requires_grad=*/true));
  frontier.push_back(ag::Variable::leaf(init, /*requires_grad=*/true));
  for (int d = 0; d < depth; ++d) {
    std::uniform_int_distribution<std::size_t> pick(0, frontier.size() - 1);
    const ag::Variable& a = frontier[pick(rng)];
    const ag::Variable& b = frontier[pick(rng)];
    ag::Variable next;
    switch (op(rng)) {
      case 0: next = ag::add(a, b); break;
      case 1: next = ag::mul(a, b); break;
      case 2: next = ag::tanh(a); break;
      default: next = ag::sigmoid(a); break;
    }
    frontier.push_back(next);
  }
  return ag::sum_all(frontier.back());
}

TEST(TapeLifetimesTest, RandomizedTapesPlanWithoutOverlap) {
  // The end-to-end property: intervals extracted from a real autograd graph
  // must always pack into a valid plan, for many random graph shapes.
  std::mt19937_64 rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    ag::Variable loss = random_tape(rng, 3 + trial % 8);
    const ag::TapeLifetimes tl = ag::tape_lifetimes(loss);
    ASSERT_FALSE(tl.lifetimes.empty()) << "trial " << trial;
    EXPECT_GT(tl.events, 0);
    for (const Lifetime& lt : tl.lifetimes) {
      EXPECT_GT(lt.bytes, 0);
      EXPECT_LT(lt.birth, lt.death);
      EXPECT_LE(lt.death, tl.events + 1);
    }
    const MemPlan plan = plan_offsets(tl.lifetimes);
    EXPECT_TRUE(plan_is_valid(tl.lifetimes, plan)) << "trial " << trial;
    EXPECT_LE(plan.arena_bytes, plan.naive_bytes) << "trial " << trial;
  }
}

TEST(TapeLifetimesTest, LeafBuffersAreExcluded) {
  core::Tensor init = core::Tensor::zeros(core::Shape{8});
  ag::Variable w = ag::Variable::leaf(init, /*requires_grad=*/true);
  ag::Variable loss = ag::sum_all(ag::mul(w, w));
  const ag::TapeLifetimes tl = ag::tape_lifetimes(loss);
  // Interior nodes: mul + sum -> 2 values + 2 grads. The leaf contributes
  // leaf_bytes only.
  EXPECT_EQ(tl.lifetimes.size(), 4u);
  EXPECT_EQ(tl.leaf_bytes, 2 * 8 * static_cast<i64>(sizeof(float)));
}

}  // namespace
}  // namespace legw::mem
