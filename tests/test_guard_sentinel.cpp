// Unit battery for the stability sentinel (guard/sentinel.hpp): verdict
// classification and reduction, the escalation ladder, episode lifecycle,
// re-warmup arithmetic, the blessing pipeline, one-shot injection
// bookkeeping, state export/import round trips, and the checkpoint-side
// blessing/retention contract the rollback machinery depends on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "guard/sentinel.hpp"
#include "nn/layers.hpp"
#include "optim/optimizer.hpp"
#include "sched/schedule.hpp"

namespace legw::guard {
namespace {

SentinelConfig small_config() {
  SentinelConfig c;
  c.enabled = true;
  c.window = 8;
  c.min_history = 4;
  c.loss_spike_factor = 4.0f;
  c.grad_spike_factor = 16.0f;
  c.loss_abs_limit = 1e4f;
  c.bless_after = 2;
  c.ledger_capacity = 8;
  return c;
}

MitigationPolicy small_policy() {
  MitigationPolicy p;
  p.max_escalations = 3;
  p.lr_backoff = 0.5f;
  p.rewarm_steps = 4;
  p.clip_tighten = 0.5f;
  return p;
}

HealthSignals healthy(double loss, float grad) {
  HealthSignals s;
  s.loss = loss;
  s.grad_norm = grad;
  return s;
}

// Feed `n` identical healthy steps so the baselines have history.
void warm_up(StabilitySentinel& s, i64 n, double loss = 2.0f,
             float grad = 1.0f, i64 first_step = 0) {
  for (i64 i = 0; i < n; ++i) {
    const Decision d = s.observe(first_step + i, Verdict::kHealthy,
                                 healthy(loss, grad));
    ASSERT_EQ(d.action, Decision::Action::kContinue);
  }
}

// ---- verdicts ---------------------------------------------------------------

TEST(Verdicts, SeverityOrderAndNames) {
  EXPECT_LT(static_cast<int>(Verdict::kHealthy),
            static_cast<int>(Verdict::kLossSpike));
  EXPECT_LT(static_cast<int>(Verdict::kLossSpike),
            static_cast<int>(Verdict::kGradExplosion));
  EXPECT_LT(static_cast<int>(Verdict::kGradExplosion),
            static_cast<int>(Verdict::kNonFinite));
  EXPECT_STREQ(verdict_name(Verdict::kHealthy), "healthy");
  EXPECT_STREQ(verdict_name(Verdict::kLossSpike), "loss_spike");
  EXPECT_STREQ(verdict_name(Verdict::kGradExplosion), "grad_explosion");
  EXPECT_STREQ(verdict_name(Verdict::kNonFinite), "non_finite");
}

TEST(Verdicts, ReductionTakesMaxSeverity) {
  EXPECT_EQ(reduce_verdicts({}), Verdict::kHealthy);
  EXPECT_EQ(reduce_verdicts({Verdict::kHealthy, Verdict::kHealthy}),
            Verdict::kHealthy);
  EXPECT_EQ(reduce_verdicts({Verdict::kHealthy, Verdict::kLossSpike,
                             Verdict::kHealthy}),
            Verdict::kLossSpike);
  EXPECT_EQ(reduce_verdicts({Verdict::kGradExplosion, Verdict::kNonFinite,
                             Verdict::kLossSpike}),
            Verdict::kNonFinite);
}

// ---- assess -----------------------------------------------------------------

TEST(Assess, NonFiniteAlwaysDetectedWithoutHistory) {
  StabilitySentinel s(small_config(), small_policy());
  HealthSignals sig = healthy(2.0, 1.0f);
  sig.non_finite = true;
  EXPECT_EQ(s.assess(sig), Verdict::kNonFinite);
  sig = healthy(std::numeric_limits<double>::quiet_NaN(), 1.0f);
  EXPECT_EQ(s.assess(sig), Verdict::kNonFinite);
  sig = healthy(2.0, std::numeric_limits<float>::infinity());
  EXPECT_EQ(s.assess(sig), Verdict::kNonFinite);
}

TEST(Assess, RelativeSpikesNeedMinHistory) {
  StabilitySentinel s(small_config(), small_policy());
  // No baseline yet: even huge-but-finite signals stay sub-threshold...
  EXPECT_EQ(s.assess(healthy(900.0, 500.0f)), Verdict::kHealthy);
  // ...except the absolute loss ceiling, which needs no history.
  EXPECT_EQ(s.assess(healthy(2e4, 1.0f)), Verdict::kLossSpike);

  warm_up(s, 4);
  // Baselines: median loss 2.0, median grad 1.0.
  EXPECT_EQ(s.assess(healthy(2.1, 1.1f)), Verdict::kHealthy);
  EXPECT_EQ(s.assess(healthy(9.0, 1.0f)), Verdict::kLossSpike);  // > 4 x 2.0
  EXPECT_EQ(s.assess(healthy(2.0, 17.0f)),
            Verdict::kGradExplosion);  // > 16 x 1.0
  // Gradient explosion outranks a simultaneous loss spike.
  EXPECT_EQ(s.assess(healthy(9.0, 17.0f)), Verdict::kGradExplosion);
}

TEST(Assess, NoiseFloorSuppressesConvergedFluctuations) {
  StabilitySentinel s(small_config(), small_policy());
  // A converged run: medians 0.01 / 0.004 sit below the noise floors
  // (0.25 / 0.1), so the relative thresholds clamp to factor * floor.
  warm_up(s, 4, 0.01, 0.004f);
  // Several-times-the-median fluctuations are not spikes down here...
  EXPECT_EQ(s.assess(healthy(0.06, 0.7f)), Verdict::kHealthy);
  // ...but a real blow-up clears factor * floor regardless.
  EXPECT_EQ(s.assess(healthy(1.5, 0.004f)), Verdict::kLossSpike);  // > 4 x 0.25
  EXPECT_EQ(s.assess(healthy(0.01, 2.0f)),
            Verdict::kGradExplosion);  // > 16 x 0.1
}

// ---- observe / escalation ladder --------------------------------------------

TEST(Ladder, FirstAnomalyAsksForRollbackAtLevelOne) {
  StabilitySentinel s(small_config(), small_policy());
  warm_up(s, 4);
  const Decision d =
      s.observe(4, Verdict::kLossSpike, healthy(9.0, 1.0f));
  EXPECT_EQ(d.action, Decision::Action::kRollback);
  EXPECT_EQ(d.level, 1);
  EXPECT_FALSE(d.reason.empty());
  EXPECT_NE(d.reason.find("loss_spike"), std::string::npos);
  EXPECT_TRUE(s.in_recovery());
  // Level 1 retries as-is: no LR or clip mitigation in force.
  s.on_rollback(2);
  EXPECT_EQ(s.lr_factor(3), 1.0f);
  EXPECT_EQ(s.clip_factor(), 1.0f);
}

TEST(Ladder, AnomalyDuringRecoveryEscalates) {
  StabilitySentinel s(small_config(), small_policy());
  warm_up(s, 4);
  EXPECT_EQ(s.observe(4, Verdict::kLossSpike, healthy(9.0, 1.0f)).action,
            Decision::Action::kRollback);
  s.on_rollback(2);
  const Decision d2 =
      s.observe(4, Verdict::kLossSpike, healthy(9.0, 1.0f));
  EXPECT_EQ(d2.action, Decision::Action::kRollback);
  EXPECT_EQ(d2.level, 2);
  s.on_rollback(2);
  // Level 2: LR backoff with re-warmup ramp, no clip tightening yet.
  EXPECT_EQ(s.lr_factor(2), 0.5f);          // ramp start: backoff^1
  EXPECT_EQ(s.lr_factor(4), 0.75f);         // halfway up the 4-step ramp
  EXPECT_EQ(s.lr_factor(6), 1.0f);          // ramp complete
  EXPECT_EQ(s.clip_factor(), 1.0f);

  const Decision d3 =
      s.observe(4, Verdict::kGradExplosion, healthy(2.0, 50.0f));
  EXPECT_EQ(d3.action, Decision::Action::kRollback);
  EXPECT_EQ(d3.level, 3);
  s.on_rollback(2);
  // Level 3: clip tightening joins the (deeper) LR backoff.
  EXPECT_EQ(s.clip_factor(), 0.5f);
  EXPECT_EQ(s.lr_factor(2), 0.25f);  // backoff^2
}

TEST(Ladder, ExhaustionFailsWithLedgeredReport) {
  StabilitySentinel s(small_config(), small_policy());  // max_escalations = 3
  warm_up(s, 4);
  for (int round = 1; round <= 3; ++round) {
    const Decision d =
        s.observe(4, Verdict::kNonFinite, healthy(2.0, 1.0f));
    ASSERT_EQ(d.action, Decision::Action::kRollback) << round;
    s.on_rollback(2);
  }
  const Decision d = s.observe(4, Verdict::kNonFinite, healthy(2.0, 1.0f));
  EXPECT_EQ(d.action, Decision::Action::kFail);
  EXPECT_EQ(d.level, 4);
  ASSERT_EQ(s.ledger().size(), 4u);  // 3 rollbacks + the terminal entry
  EXPECT_EQ(s.ledger().back().rollback_to, -1);
  EXPECT_EQ(s.ledger().back().level, 4);
  const std::string report = s.report();
  EXPECT_NE(report.find("non_finite"), std::string::npos);
  EXPECT_NE(report.find("ladder exhausted"), std::string::npos);
}

TEST(Ladder, LevelOneEpisodeClosesOnFirstHealthyStepPastAnomaly) {
  StabilitySentinel s(small_config(), small_policy());
  warm_up(s, 6);
  s.observe(6, Verdict::kLossSpike, healthy(9.0, 1.0f));
  s.on_rollback(4);
  // Replaying the pre-anomaly span keeps the episode open...
  s.observe(4, Verdict::kHealthy, healthy(2.0, 1.0f));
  s.observe(5, Verdict::kHealthy, healthy(2.0, 1.0f));
  s.observe(6, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_TRUE(s.in_recovery());
  // ...and the first healthy step strictly past it closes a level-1 episode
  // immediately (no ramp to wait out).
  s.observe(7, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_FALSE(s.in_recovery());
  EXPECT_EQ(s.escalation_level(), 0);
}

TEST(Ladder, LevelTwoEpisodeWaitsForRampCompletion) {
  StabilitySentinel s(small_config(), small_policy());  // rewarm_steps = 4
  warm_up(s, 6);
  s.observe(6, Verdict::kLossSpike, healthy(9.0, 1.0f));
  s.on_rollback(4);
  s.observe(6, Verdict::kLossSpike, healthy(9.0, 1.0f));  // escalate: level 2
  s.on_rollback(4);
  // Step 7 is past the anomaly but the ramp (4..8) is not done.
  s.observe(7, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_TRUE(s.in_recovery());
  // Step 8 completes the ramp: the episode closes and mitigation lifts.
  s.observe(8, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_FALSE(s.in_recovery());
  EXPECT_EQ(s.lr_factor(9), 1.0f);
  EXPECT_EQ(s.clip_factor(), 1.0f);
}

// ---- re-warmup arithmetic ---------------------------------------------------

TEST(Rewarmup, LinearRampFromBackoffToOne) {
  EXPECT_EQ(sched::rewarmup_factor(0, 16, 0.5f), 0.5f);
  EXPECT_EQ(sched::rewarmup_factor(8, 16, 0.5f), 0.75f);
  EXPECT_EQ(sched::rewarmup_factor(16, 16, 0.5f), 1.0f);
  EXPECT_EQ(sched::rewarmup_factor(1000, 16, 0.5f), 1.0f);  // clamps
  EXPECT_EQ(sched::rewarmup_factor(-5, 16, 0.5f), 0.5f);    // clamps below
  EXPECT_EQ(sched::rewarmup_factor(3, 0, 0.25f), 0.25f);    // no ramp
}

// ---- blessing pipeline ------------------------------------------------------

TEST(Blessing, CheckpointsRipenAfterHealthySteps) {
  StabilitySentinel s(small_config(), small_policy());  // bless_after = 2
  s.note_checkpoint(2);
  EXPECT_TRUE(s.take_bless_ready().empty());
  s.observe(2, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_TRUE(s.take_bless_ready().empty());
  s.observe(3, Verdict::kHealthy, healthy(2.0, 1.0f));
  const auto ready = s.take_bless_ready();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 2);
  // take_* drains: a second call yields nothing.
  EXPECT_TRUE(s.take_bless_ready().empty());
}

TEST(Blessing, AnomalyDropsUnripenedCheckpoints) {
  StabilitySentinel s(small_config(), small_policy());
  warm_up(s, 4);
  s.note_checkpoint(4);
  s.observe(4, Verdict::kHealthy, healthy(2.0, 1.0f));
  // The anomaly abandons this trajectory: the pending step-4 checkpoint must
  // never ripen into a rollback target.
  s.observe(5, Verdict::kLossSpike, healthy(9.0, 1.0f));
  s.on_rollback(0);
  s.observe(0, Verdict::kHealthy, healthy(2.0, 1.0f));
  s.observe(1, Verdict::kHealthy, healthy(2.0, 1.0f));
  EXPECT_TRUE(s.take_bless_ready().empty());
}

// ---- injection bookkeeping --------------------------------------------------

TEST(Injection, PlansAreStepIndexedAndOneShot) {
  AnomalyPlan plan = AnomalyPlan::loss_spike_at(5, 100.0f);
  plan.add(7, AnomalyPlan::Kind::kNaN)
      .add(9, AnomalyPlan::Kind::kGradExplosion, 1e6f);
  ASSERT_NE(plan.at(5), nullptr);
  EXPECT_EQ(plan.at(5)->kind, AnomalyPlan::Kind::kLossSpike);
  EXPECT_EQ(plan.at(5)->magnitude, 100.0f);
  ASSERT_NE(plan.at(7), nullptr);
  EXPECT_EQ(plan.at(7)->kind, AnomalyPlan::Kind::kNaN);
  ASSERT_NE(plan.at(9), nullptr);
  EXPECT_EQ(plan.at(6), nullptr);

  StabilitySentinel s(small_config(), small_policy());
  EXPECT_FALSE(s.injection_fired(5));
  s.mark_injection_fired(5);
  EXPECT_TRUE(s.injection_fired(5));
  s.mark_injection_fired(5);  // idempotent
  EXPECT_TRUE(s.injection_fired(5));
  EXPECT_FALSE(s.injection_fired(7));
}

// ---- state persistence ------------------------------------------------------

TEST(State, ExportImportRoundTripIsBitwise) {
  StabilitySentinel a(small_config(), small_policy());
  warm_up(a, 6, 2.5, 1.5f);
  a.note_checkpoint(4);
  a.observe(6, Verdict::kHealthy, healthy(2.5, 1.5f));
  a.observe(7, Verdict::kGradExplosion, healthy(2.5, 80.0f));
  a.on_rollback(4);
  a.mark_injection_fired(7);
  a.note_checkpoint(8);

  core::Tensor t(StabilitySentinel::state_shape(small_config()));
  a.export_state_into(t);

  StabilitySentinel b(small_config(), small_policy());
  b.import_state(t);
  EXPECT_EQ(b.in_recovery(), a.in_recovery());
  EXPECT_EQ(b.escalation_level(), a.escalation_level());
  EXPECT_EQ(b.rollback_step(), a.rollback_step());
  EXPECT_TRUE(b.injection_fired(7));
  ASSERT_EQ(b.ledger().size(), a.ledger().size());
  for (std::size_t i = 0; i < a.ledger().size(); ++i) {
    EXPECT_EQ(b.ledger()[i].step, a.ledger()[i].step);
    EXPECT_EQ(b.ledger()[i].verdict, a.ledger()[i].verdict);
    EXPECT_EQ(b.ledger()[i].level, a.ledger()[i].level);
    EXPECT_EQ(b.ledger()[i].rollback_to, a.ledger()[i].rollback_to);
  }
  // The clone re-exports bit-for-bit: the layout loses nothing.
  core::Tensor t2(StabilitySentinel::state_shape(small_config()));
  b.export_state_into(t2);
  ASSERT_EQ(t.numel(), t2.numel());
  for (i64 i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], t2[i]) << "elem " << i;
  // And both continue identically: same decision on the same signal.
  const Decision da = a.observe(8, Verdict::kLossSpike, healthy(11.0, 1.5f));
  const Decision db = b.observe(8, Verdict::kLossSpike, healthy(11.0, 1.5f));
  EXPECT_EQ(da.action, db.action);
  EXPECT_EQ(da.level, db.level);
}

TEST(State, ShapeDependsOnConfigGeometry) {
  SentinelConfig c1 = small_config();
  SentinelConfig c2 = small_config();
  c2.window = 16;
  EXPECT_NE(StabilitySentinel::state_shape(c1)[0],
            StabilitySentinel::state_shape(c2)[0]);
}

// ---- guard mode flag --------------------------------------------------------

TEST(GuardMode, SetAndName) {
  const core::GuardMode saved = core::guard_mode();
  core::set_guard_mode(core::GuardMode::kObserve);
  EXPECT_EQ(core::guard_mode(), core::GuardMode::kObserve);
  EXPECT_STREQ(core::guard_mode_name(core::GuardMode::kObserve), "observe");
  core::set_guard_mode(core::GuardMode::kOff);
  EXPECT_EQ(core::guard_mode(), core::GuardMode::kOff);
  EXPECT_STREQ(core::guard_mode_name(core::GuardMode::kOff), "off");
  core::set_guard_mode(saved);
}

// ---- checkpoint blessing / retention contract -------------------------------

struct TempDir {
  std::string path;
  // Pid-suffixed: ctest -j runs each test as its own process, and two
  // processes sharing a fixture name must not tear each other down.
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_guard_" + name + "_" + std::to_string(getpid())) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

ckpt::TrainState linear_state(nn::Linear& model, optim::Optimizer* opt,
                              i64 step) {
  ckpt::TrainState s;
  s.models.push_back(&model);
  s.optimizers.push_back(opt);
  s.step = step;
  return s;
}

TEST(BlessedRetention, BlessedCheckpointSurvivesRetention) {
  TempDir dir("retention");
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.path + "/ckpts";
  cfg.every_steps = 2;
  cfg.keep_last = 2;
  ckpt::CheckpointManager mgr(cfg);

  core::Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);

  ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), 2)).ok());
  ASSERT_TRUE(mgr.bless(2).ok());
  EXPECT_TRUE(ckpt::CheckpointManager::is_blessed(
      ckpt::CheckpointManager::step_path(cfg.dir, 2)));
  EXPECT_EQ(mgr.newest_blessed_step(), 2);

  // Keep saving far past the retention horizon: the unblessed 4 and 6 are
  // reaped, the blessed 2 must survive while unblessed files exist ahead of
  // it — it is the only rollback target the sentinel has.
  for (i64 step = 4; step <= 10; step += 2) {
    ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), step)).ok());
  }
  const auto files = ckpt::CheckpointManager::list_checkpoints(cfg.dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(ckpt::CheckpointManager::step_of(files[0]), 2);  // blessed, kept
  EXPECT_EQ(ckpt::CheckpointManager::step_of(files[1]), 8);
  EXPECT_EQ(ckpt::CheckpointManager::step_of(files[2]), 10);

  // A newer blessing releases the older one to normal retention.
  ASSERT_TRUE(mgr.bless(10).ok());
  ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), 12)).ok());
  ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), 14)).ok());
  const auto after = ckpt::CheckpointManager::list_checkpoints(cfg.dir);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(ckpt::CheckpointManager::step_of(after[0]), 10);  // blessed, kept
  EXPECT_EQ(ckpt::CheckpointManager::step_of(after[1]), 12);
  EXPECT_EQ(ckpt::CheckpointManager::step_of(after[2]), 14);
  EXPECT_EQ(mgr.newest_blessed_step(), 10);
  // The reaped step-2 file took its stale .blessed marker with it.
  EXPECT_FALSE(std::filesystem::exists(
      ckpt::CheckpointManager::step_path(cfg.dir, 2) + ".blessed"));
}

TEST(BlessedRetention, RestoreBlessedIgnoresNewerUnblessed) {
  TempDir dir("restore");
  ckpt::ManagerConfig cfg;
  cfg.dir = dir.path + "/ckpts";
  cfg.every_steps = 2;
  cfg.keep_last = 0;  // keep everything
  ckpt::CheckpointManager mgr(cfg);

  core::Rng rng(5);
  nn::Linear model(3, 2, rng);
  auto opt = optim::make_optimizer("momentum", model.parameters(), 0.0f);
  ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), 2)).ok());
  ASSERT_TRUE(mgr.bless(2).ok());
  for (const auto& p : model.parameters()) {
    ag::Variable handle = p;
    handle.mutable_value().fill_(3.5f);
  }
  ASSERT_TRUE(mgr.save_now(linear_state(model, opt.get(), 4)).ok());

  core::Rng rng_b(9);
  nn::Linear model_b(3, 2, rng_b);
  auto opt_b = optim::make_optimizer("momentum", model_b.parameters(), 0.0f);
  ckpt::TrainState tgt = linear_state(model_b, opt_b.get(), 0);
  const auto outcome = mgr.restore_blessed(tgt);
  ASSERT_TRUE(outcome.restored) << outcome.status.message;
  EXPECT_EQ(tgt.step, 2);  // newest overall is 4, newest *blessed* is 2

  // Blessing a step with no file on disk is an error, not a crash.
  EXPECT_FALSE(mgr.bless(99).ok());
  // invalidate_after drops unblessed successors (the abandoned trajectory)
  // and keeps the blessed target.
  mgr.invalidate_after(2);
  const auto files = ckpt::CheckpointManager::list_checkpoints(cfg.dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(ckpt::CheckpointManager::step_of(files[0]), 2);
}

}  // namespace
}  // namespace legw::guard
