// Layer-level tests: module registry, Linear/Embedding, LSTM stacks,
// bidirectional wrapper, attention.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/gradcheck.hpp"
#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"

namespace legw::nn {
namespace {

using ag::Variable;
using core::Rng;
using core::Tensor;

TEST(Module, ParameterRegistryAndNames) {
  Rng rng(1);
  Linear lin(3, 4, rng);
  auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);  // weight + bias
  EXPECT_EQ(params[0].numel(), 12);
  EXPECT_EQ(params[1].numel(), 4);
  EXPECT_EQ(lin.num_parameters(), 16);

  auto named = lin.named_parameters("layer");
  EXPECT_EQ(named[0].name, "layer.weight");
  EXPECT_EQ(named[1].name, "layer.bias");
}

TEST(Module, ZeroGradClearsAll) {
  Rng rng(2);
  Linear lin(2, 2, rng);
  Variable x = Variable::constant(Tensor::randn({3, 2}, rng));
  ag::backward(ag::sum_all(lin.forward(x)));
  EXPECT_GT(lin.weight().grad().l2_norm(), 0.0f);
  lin.zero_grad();
  EXPECT_EQ(lin.weight().grad().l2_norm(), 0.0f);
}

TEST(Module, TrainingModePropagates) {
  Rng rng(3);
  Lstm lstm(4, 4, 2, rng, 0.5f);
  EXPECT_TRUE(lstm.is_training());
  lstm.set_training(false);
  EXPECT_FALSE(lstm.is_training());
  EXPECT_FALSE(lstm.layer(0).is_training());
}

TEST(Linear, NoBiasVariant) {
  Rng rng(4);
  Linear lin(3, 2, rng, /*bias=*/false);
  EXPECT_EQ(lin.parameters().size(), 1u);
  Variable x = Variable::constant(Tensor::ones({1, 3}));
  Variable y = lin.forward(x);
  float expected = 0.0f;
  for (i64 i = 0; i < 3; ++i) expected += lin.weight().value().at(i, 0);
  EXPECT_NEAR(y.value()[0], expected, 1e-5f);
}

TEST(Linear, GradCheckThroughLayer) {
  Rng rng(5);
  Linear lin(3, 2, rng);
  Variable x = Variable::leaf(Tensor::randn({2, 3}, rng, 0.5f), true);
  std::vector<Variable> leaves = lin.parameters();
  leaves.push_back(x);
  auto r = ag::grad_check(
      [&] {
        Variable y = lin.forward(x);
        return ag::sum_all(ag::mul(y, y));
      },
      leaves);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Embedding, ForwardShapeAndGrad) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  Variable e = emb.forward({1, 5, 5});
  EXPECT_EQ(e.size(0), 3);
  EXPECT_EQ(e.size(1), 4);
  ag::backward(ag::sum_all(e));
  // Row 5 used twice: its gradient is 2, row 1 once: 1, others 0.
  const Tensor& g = emb.weight().grad();
  EXPECT_EQ(g.at(5, 0), 2.0f);
  EXPECT_EQ(g.at(1, 0), 1.0f);
  EXPECT_EQ(g.at(0, 0), 0.0f);
}

TEST(Lstm, SequenceShapesAndStateChain) {
  Rng rng(7);
  Lstm lstm(3, 5, 2, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 4; ++t) {
    inputs.push_back(Variable::constant(Tensor::randn({2, 3}, rng)));
  }
  Rng drng(1);
  auto out = lstm.forward(inputs, {}, drng);
  EXPECT_EQ(out.outputs.size(), 4u);
  EXPECT_EQ(out.outputs[0].size(0), 2);
  EXPECT_EQ(out.outputs[0].size(1), 5);
  EXPECT_EQ(out.final_states.size(), 2u);
  // The final top-layer h must equal the last output.
  for (i64 i = 0; i < out.outputs[3].numel(); ++i) {
    EXPECT_EQ(out.outputs[3].value()[i], out.final_states[1].h.value()[i]);
  }
}

TEST(Lstm, CarriedInitialStateChangesOutput) {
  Rng rng(8);
  Lstm lstm(2, 3, 1, rng);
  Rng xr(3);
  Tensor xt = Tensor::randn({1, 2}, xr);
  std::vector<Variable> inputs = {Variable::constant(xt)};
  Rng drng(1);
  auto out_zero = lstm.forward(inputs, lstm.zero_state(1), drng);
  std::vector<LstmState> carried = {
      LstmState{Variable::constant(Tensor::full({1, 3}, 0.8f)),
                Variable::constant(Tensor::full({1, 3}, -0.5f))}};
  auto out_carried = lstm.forward(inputs, carried, drng);
  float diff = 0.0f;
  for (i64 i = 0; i < 3; ++i) {
    diff += std::abs(out_zero.outputs[0].value()[i] -
                     out_carried.outputs[0].value()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(BiLstm, OutputIsConcatOfDirections) {
  Rng rng(9);
  BiLstmLayer bi(3, 4, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 3; ++t) {
    inputs.push_back(Variable::constant(Tensor::randn({2, 3}, rng)));
  }
  auto out = bi.forward(inputs);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].size(1), 8);  // 2 * hidden

  // Reversing the input sequence must swap the role of the two halves at
  // mirrored time steps — sanity: the forward half at t=0 only saw x0, so it
  // matches the forward half computed on the single-step sequence {x0}.
  auto out_single = bi.forward({inputs[0]});
  for (i64 j = 0; j < 4; ++j) {
    EXPECT_NEAR(out[0].value().at(0, j), out_single[0].value().at(0, j), 1e-5f);
  }
}

TEST(Attention, WeightsAreDistribution) {
  Rng rng(10);
  BahdanauAttention attn(4, 4, 4, rng);
  std::vector<Variable> enc;
  for (int t = 0; t < 5; ++t) {
    enc.push_back(Variable::constant(Tensor::randn({3, 4}, rng)));
  }
  auto keys = attn.precompute(enc);
  Variable query = Variable::constant(Tensor::randn({3, 4}, rng));
  auto result = attn.attend(query, keys);
  EXPECT_EQ(result.weights.size(0), 3);
  EXPECT_EQ(result.weights.size(1), 5);
  EXPECT_EQ(result.context.size(1), 4);
  for (i64 b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (i64 t = 0; t < 5; ++t) sum += result.weights.value().at(b, t);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Attention, ContextIsConvexCombination) {
  // With identical encoder states everywhere, the context equals that state
  // regardless of the weights.
  Rng rng(11);
  BahdanauAttention attn(4, 4, 4, rng);
  Tensor state = Tensor::randn({2, 4}, rng);
  std::vector<Variable> enc(3, Variable::constant(state));
  auto keys = attn.precompute(enc);
  Variable query = Variable::constant(Tensor::randn({2, 4}, rng));
  auto result = attn.attend(query, keys);
  for (i64 i = 0; i < state.numel(); ++i) {
    EXPECT_NEAR(result.context.value()[i], state[i], 1e-5f);
  }
}

TEST(Attention, MaskZeroesPaddedWeights) {
  Rng rng(20);
  BahdanauAttention attn(4, 4, 4, rng);
  std::vector<ag::Variable> enc;
  for (int t = 0; t < 4; ++t) {
    enc.push_back(ag::Variable::constant(Tensor::randn({2, 4}, rng)));
  }
  auto keys = attn.precompute(enc);
  ag::Variable query = ag::Variable::constant(Tensor::randn({2, 4}, rng));
  // Row 0 masks positions 2,3; row 1 masks nothing.
  Tensor mask({2, 4}, {1, 1, 0, 0, 1, 1, 1, 1});
  auto result = attn.attend(query, keys, ag::Variable::constant(mask));
  EXPECT_NEAR(result.weights.value().at(0, 2), 0.0f, 1e-6f);
  EXPECT_NEAR(result.weights.value().at(0, 3), 0.0f, 1e-6f);
  double row0 = result.weights.value().at(0, 0) + result.weights.value().at(0, 1);
  EXPECT_NEAR(row0, 1.0, 1e-5);
  // Unmasked row still a full distribution over all 4 positions.
  double row1 = 0.0;
  for (i64 t = 0; t < 4; ++t) row1 += result.weights.value().at(1, t);
  EXPECT_NEAR(row1, 1.0, 1e-5);
}

TEST(Attention, GradFlowsToAllParameters) {
  Rng rng(12);
  BahdanauAttention attn(3, 3, 3, rng);
  std::vector<Variable> enc;
  for (int t = 0; t < 4; ++t) {
    enc.push_back(Variable::constant(Tensor::randn({2, 3}, rng)));
  }
  auto keys = attn.precompute(enc);
  Variable query = Variable::constant(Tensor::randn({2, 3}, rng));
  auto result = attn.attend(query, keys);
  ag::backward(ag::sum_all(ag::mul(result.context, result.context)));
  for (const auto& p : attn.named_parameters("attn")) {
    EXPECT_GT(p.var.grad().l2_norm(), 0.0f) << p.name << " got no gradient";
  }
}

TEST(Attention, GradCheckSmall) {
  Rng rng(13);
  BahdanauAttention attn(2, 2, 2, rng);
  std::vector<Variable> enc;
  for (int t = 0; t < 3; ++t) {
    enc.push_back(Variable::leaf(Tensor::randn({1, 2}, rng, 0.5f), true));
  }
  Variable query = Variable::leaf(Tensor::randn({1, 2}, rng, 0.5f), true);
  std::vector<Variable> leaves = attn.parameters();
  leaves.push_back(query);
  for (auto& e : enc) leaves.push_back(e);
  auto r = ag::grad_check(
      [&] {
        auto keys = attn.precompute(enc);
        auto result = attn.attend(query, keys);
        return ag::sum_all(ag::mul(result.context, result.context));
      },
      leaves);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Init, XavierAndHeScales) {
  Rng rng(14);
  Tensor x = init::xavier_uniform({100, 100}, 100, 100, rng);
  const float limit = std::sqrt(6.0f / 200.0f);
  EXPECT_GE(x.min(), -limit);
  EXPECT_LE(x.max(), limit);
  Tensor h = init::he_normal({64, 64}, 64, rng);
  double var = 0.0;
  for (i64 i = 0; i < h.numel(); ++i) var += static_cast<double>(h[i]) * h[i];
  var /= h.numel();
  EXPECT_NEAR(var, 2.0 / 64.0, 0.01);
}

}  // namespace
}  // namespace legw::nn
