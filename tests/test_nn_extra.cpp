// Additional layer-level coverage: Conv2d/BatchNorm2d modules, LSTM dropout
// semantics, BiLSTM gradients, GNMT checkpointing, runner options.
#include <gtest/gtest.h>

#include <cstdio>

#include "ag/gradcheck.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"
#include "models/gnmt.hpp"
#include "models/resnet.hpp"
#include "nn/conv.hpp"
#include "nn/lstm.hpp"
#include "nn/serialize.hpp"
#include "sched/schedule.hpp"
#include "train/runners.hpp"

namespace legw {
namespace {

using ag::Variable;
using core::Rng;
using core::Tensor;

TEST(Conv2dModule, OutputShapeAndParams) {
  Rng rng(1);
  nn::Conv2d conv(3, 8, 3, /*stride=*/2, /*pad=*/1, rng);
  EXPECT_EQ(conv.parameters().size(), 1u);  // bias off by default
  Variable x = Variable::constant(Tensor::randn({2, 3, 8, 8}, rng));
  Variable y = conv.forward(x);
  EXPECT_EQ(y.value().shape(), (core::Shape{2, 8, 4, 4}));

  nn::Conv2d with_bias(3, 4, 1, 1, 0, rng, /*bias=*/true);
  EXPECT_EQ(with_bias.parameters().size(), 2u);
}

TEST(BatchNormModule, TrainEvalSwitch) {
  Rng rng(2);
  nn::BatchNorm2d bn(2);
  Variable x = Variable::constant(Tensor::randn({4, 2, 2, 2}, rng, 3.0f, 1.0f));
  // Training mode: normalises, updates running stats.
  Variable y_train = bn.forward(x);
  EXPECT_NEAR(y_train.value().mean(), 0.0f, 1e-4f);
  EXPECT_NE(bn.running_mean()[0], 0.0f);
  // Eval mode: uses (partially updated) running stats; output differs.
  bn.set_training(false);
  Variable y_eval = bn.forward(x);
  float diff = 0.0f;
  for (i64 i = 0; i < y_eval.numel(); ++i) {
    diff += std::abs(y_eval.value()[i] - y_train.value()[i]);
  }
  EXPECT_GT(diff, 0.01f);
}

TEST(LstmDropout, OnlyActiveBetweenLayersInTraining) {
  Rng rng(3);
  // With p ~ 1 ineffective inter-layer dropout would zero layer-2 inputs.
  nn::Lstm lstm(4, 4, 2, rng, /*dropout=*/0.9f);
  std::vector<Variable> inputs = {
      Variable::constant(Tensor::randn({2, 4}, rng))};
  Rng d1(1), d2(1);
  auto train_out = lstm.forward(inputs, {}, d1);
  lstm.set_training(false);
  auto eval_out = lstm.forward(inputs, {}, d2);
  // Outputs must differ between train (dropout active) and eval.
  float diff = 0.0f;
  for (i64 i = 0; i < train_out.outputs[0].numel(); ++i) {
    diff += std::abs(train_out.outputs[0].value()[i] -
                     eval_out.outputs[0].value()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
  // Eval runs must be deterministic regardless of the rng passed.
  Rng d3(999);
  auto eval_out2 = lstm.forward(inputs, {}, d3);
  for (i64 i = 0; i < eval_out.outputs[0].numel(); ++i) {
    EXPECT_EQ(eval_out.outputs[0].value()[i], eval_out2.outputs[0].value()[i]);
  }
}

TEST(BiLstm, GradCheckThroughBothDirections) {
  Rng rng(4);
  nn::BiLstmLayer bi(2, 2, rng);
  std::vector<Variable> inputs;
  for (int t = 0; t < 3; ++t) {
    inputs.push_back(Variable::leaf(Tensor::randn({1, 2}, rng, 0.5f), true));
  }
  std::vector<Variable> leaves = bi.parameters();
  for (auto& x : inputs) leaves.push_back(x);
  auto r = ag::grad_check(
      [&] {
        auto out = bi.forward(inputs);
        Variable total;
        for (auto& o : out) {
          Variable sq = ag::sum_all(ag::mul(o, o));
          total = total.defined() ? ag::add(total, sq) : sq;
        }
        return total;
      },
      leaves);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(GnmtCheckpoint, RoundTripPreservesDecoding) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 10;
  tcfg.n_test = 3;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  models::Gnmt a(cfg);
  auto batch = data::make_translation_batch(dataset.test(), {0, 1, 2});
  auto before = a.greedy_decode(batch, 10);

  const std::string path = "/tmp/legw_test_gnmt.ckpt";
  ASSERT_TRUE(nn::save_checkpoint(a, path).ok());
  models::GnmtConfig cfg_b = cfg;
  cfg_b.seed = 999;
  models::Gnmt b(cfg_b);
  ASSERT_TRUE(nn::load_checkpoint(b, path).ok());
  std::remove(path.c_str());
  auto after = b.greedy_decode(batch, 10);
  EXPECT_EQ(before, after);
}

TEST(ResNetBlocks, StrideChangesSpatialDims) {
  models::ResNetConfig cfg;
  cfg.width = 4;
  cfg.blocks_per_stage = 2;  // deeper variant: 1 stride-2 block per stage > 0
  models::ResNet model(cfg);
  Rng rng(5);
  Tensor images = Tensor::rand_uniform({1, 3, 16, 16}, rng);
  Variable logits = model.forward(images);
  EXPECT_EQ(logits.value().shape(), (core::Shape{1, 10}));
  // 6 blocks x (2 conv + 2 bn) + 2 shortcut pairs + stem pair + classifier.
  EXPECT_GT(model.named_parameters().size(), 30u);
}

TEST(Runners, FinalEvalOnlySkipsIntermediateMetrics) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 8;
  mcfg.hidden_dim = 8;
  sched::ConstantLr schedule(0.05f);
  train::RunConfig run;
  run.batch_size = 32;
  run.epochs = 3;
  run.schedule = &schedule;
  run.final_eval_only = true;
  auto result = train::train_mnist(dataset, mcfg, run);
  EXPECT_EQ(result.per_epoch_metric.size(), 1u);
  EXPECT_EQ(result.final_metric, result.per_epoch_metric.back());
  EXPECT_FALSE(result.diverged);
}

TEST(Runners, SeedChangesTrajectoryButNotDataset) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 8;
  mcfg.hidden_dim = 8;
  sched::ConstantLr schedule(0.05f);
  train::RunConfig run;
  run.batch_size = 32;
  run.epochs = 1;
  run.schedule = &schedule;
  run.final_eval_only = true;
  auto r1 = train::train_mnist(dataset, mcfg, run);
  run.seed = 2;
  auto r2 = train::train_mnist(dataset, mcfg, run);
  // Different seeds -> different init/shuffling -> different final loss.
  EXPECT_NE(r1.final_train_loss, r2.final_train_loss);
  // Same seed -> bitwise-identical runs.
  run.seed = 1;
  auto r3 = train::train_mnist(dataset, mcfg, run);
  EXPECT_EQ(r1.final_train_loss, r3.final_train_loss);
  EXPECT_EQ(r1.final_metric, r3.final_metric);
}

TEST(GnmtDropout, ChangesTrainingLossButNotEval) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 10;
  tcfg.n_test = 3;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  cfg.dropout = 0.5f;
  models::Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.train(), {0, 1});
  // Two different dropout streams give different training losses.
  Rng r1(1), r2(2);
  const float l1 = model.loss(batch, r1).value()[0];
  const float l2 = model.loss(batch, r2).value()[0];
  EXPECT_NE(l1, l2);
  // Eval mode: dropout off, rng irrelevant, decode deterministic.
  model.set_training(false);
  auto d1 = model.greedy_decode(batch, 8);
  auto d2 = model.greedy_decode(batch, 8);
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace legw
