// The overlapped bucketed allreduce engine: grad-ready hook semantics,
// bitwise equivalence with synchronous_backward at 1/2/4/8 replicas,
// fault injection (stragglers, dead replicas, degrade and fail-fast
// policies), observability, and end-to-end runner parity under LEGW_DIST.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "ag/ops.hpp"
#include "ag/variable.hpp"
#include "core/flags.hpp"
#include "data/synthetic_mnist.hpp"
#include "dist/allreduce.hpp"
#include "dist/data_parallel.hpp"
#include "dist/overlap.hpp"
#include "models/mnist_lstm.hpp"
#include "obs/trace.hpp"
#include "optim/optimizer.hpp"
#include "sched/schedule.hpp"
#include "train/runners.hpp"

namespace legw::dist {
namespace {

using core::Rng;
using core::Tensor;

// ---- BackwardHooks ----------------------------------------------------------

TEST(BackwardHooks, LeafFiresOnceWithFinalGradient) {
  // `a` feeds two ops at different graph depths; the hook must fire exactly
  // once, after the LAST consumer's closure ran, with the gradient already
  // at its final value.
  ag::Variable a = ag::Variable::leaf(Tensor({3}, {1.0f, 2.0f, 3.0f}), true);
  ag::Variable b = ag::Variable::leaf(Tensor({3}, {4.0f, 5.0f, 6.0f}), true);
  ag::Variable x = ag::mul(a, b);
  ag::Variable y = ag::add(x, a);
  ag::Variable loss = ag::sum_all(y);

  std::unordered_map<ag::Node*, int> fires;
  std::unordered_map<ag::Node*, Tensor> snapshot;
  ag::BackwardHooks hooks;
  hooks.on_leaf_grad_ready = [&](ag::Node& leaf) {
    ++fires[&leaf];
    snapshot[&leaf] = leaf.grad;  // copy at fire time
  };
  ag::backward(loss, nullptr, hooks);

  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[a.node().get()], 1);
  EXPECT_EQ(fires[b.node().get()], 1);
  for (const ag::Variable& leaf : {a, b}) {
    const Tensor& final_grad = leaf.grad();
    const Tensor& at_fire = snapshot[leaf.node().get()];
    ASSERT_EQ(at_fire.numel(), final_grad.numel());
    for (i64 i = 0; i < final_grad.numel(); ++i) {
      EXPECT_EQ(at_fire[i], final_grad[i]) << "hook fired before finality";
    }
  }
  // d loss / d a = b + 1 (mul path + add path), so finality is observable.
  EXPECT_FLOAT_EQ(a.grad()[0], 5.0f);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0f);
}

TEST(BackwardHooks, RootLeafFiresImmediately) {
  ag::Variable a = ag::Variable::leaf(Tensor({1}, {2.0f}), true);
  int fires = 0;
  ag::BackwardHooks hooks;
  hooks.on_leaf_grad_ready = [&](ag::Node& leaf) {
    ++fires;
    EXPECT_EQ(leaf.grad[0], 1.0f);  // just the seed
  };
  ag::backward(a, nullptr, hooks);
  EXPECT_EQ(fires, 1);
}

TEST(BackwardHooks, UnreachableLeafNeverFires) {
  ag::Variable a = ag::Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  ag::Variable unused = ag::Variable::leaf(Tensor({2}, {9.0f, 9.0f}), true);
  ag::Variable loss = ag::sum_all(a);
  std::vector<ag::Node*> fired;
  ag::BackwardHooks hooks;
  hooks.on_leaf_grad_ready = [&](ag::Node& leaf) { fired.push_back(&leaf); };
  ag::backward(loss, nullptr, hooks);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], a.node().get());
  EXPECT_NE(fired[0], unused.node().get());
}

// ---- sync/overlap equivalence ----------------------------------------------

struct ReplicaSet {
  std::vector<std::unique_ptr<models::MnistLstm>> models;
  std::vector<std::vector<ag::Variable>> params;
};

ReplicaSet make_replicas(int n) {
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;
  ReplicaSet set;
  for (int r = 0; r < n; ++r) {
    set.models.push_back(std::make_unique<models::MnistLstm>(cfg));
    set.params.push_back(set.models.back()->parameters());
  }
  return set;
}

class OverlapEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(OverlapEquivalenceTest, BitwiseMatchesSynchronousBackward) {
  const int n = GetParam();
  data::SyntheticMnist dataset(64, 16, 42);
  const i64 shard = 4;
  std::vector<i64> idx(static_cast<std::size_t>(n) * shard);
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<i64>(i);

  ReplicaSet sync_set = make_replicas(n);
  ReplicaSet ovl_set = make_replicas(n);

  auto loss_fn = [&](ReplicaSet& set) {
    return [&set, &dataset, &idx, shard](int r) {
      std::vector<i64> sh(idx.begin() + r * shard,
                          idx.begin() + (r + 1) * shard);
      return set.models[static_cast<std::size_t>(r)]->loss(
          dataset.gather_images(sh, true), dataset.gather_labels(sh, true));
    };
  };

  const float sync_loss = synchronous_backward(sync_set.params,
                                               loss_fn(sync_set));

  OverlapConfig config;
  config.bucket_bytes = 1024;  // small target => several buckets
  const OverlapResult res =
      overlapped_backward(ovl_set.params, loss_fn(ovl_set), config);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.stats.n_buckets, 1);
  EXPECT_EQ(res.stats.buckets_reduced, res.stats.n_buckets);
  EXPECT_EQ(res.mean_loss, sync_loss);

  // Averaged gradients bitwise identical on every replica.
  for (int r = 0; r < n; ++r) {
    for (std::size_t p = 0; p < sync_set.params[0].size(); ++p) {
      const Tensor& want = sync_set.params[static_cast<std::size_t>(r)][p].grad();
      const Tensor& got = ovl_set.params[static_cast<std::size_t>(r)][p].grad();
      ASSERT_EQ(want.numel(), got.numel());
      for (i64 i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "replica " << r << " param " << p << " elem " << i;
      }
    }
  }

  // Identical momentum steps must then produce bitwise-identical parameters.
  for (int r = 0; r < n; ++r) {
    auto sync_opt = optim::make_optimizer(
        "momentum", sync_set.params[static_cast<std::size_t>(r)]);
    auto ovl_opt = optim::make_optimizer(
        "momentum", ovl_set.params[static_cast<std::size_t>(r)]);
    sync_opt->set_lr(0.05f);
    ovl_opt->set_lr(0.05f);
    sync_opt->step();
    ovl_opt->step();
  }
  for (int r = 0; r < n; ++r) {
    for (std::size_t p = 0; p < sync_set.params[0].size(); ++p) {
      const Tensor& want = sync_set.params[static_cast<std::size_t>(r)][p].value();
      const Tensor& got = ovl_set.params[static_cast<std::size_t>(r)][p].value();
      for (i64 i = 0; i < want.numel(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "post-step replica " << r << " param " << p << " elem " << i;
      }
    }
  }
  EXPECT_EQ(first_divergent_param(ovl_set.params), -1);
}

INSTANTIATE_TEST_SUITE_P(ReplicaCounts, OverlapEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(OverlapEngine, NonOverlappedModeAlsoBitwiseMatches) {
  // The A/B baseline (overlap=false) shares buckets and reduction order, so
  // it too must be bitwise identical to the overlapped mode.
  const int n = 4;
  data::SyntheticMnist dataset(64, 16, 42);
  ReplicaSet a_set = make_replicas(n);
  ReplicaSet b_set = make_replicas(n);
  std::vector<i64> idx = {0, 1, 2, 3, 4, 5, 6, 7};
  auto loss_fn = [&](ReplicaSet& set) {
    return [&set, &dataset, &idx](int r) {
      std::vector<i64> sh(idx.begin() + r * 2, idx.begin() + (r + 1) * 2);
      return set.models[static_cast<std::size_t>(r)]->loss(
          dataset.gather_images(sh, true), dataset.gather_labels(sh, true));
    };
  };
  OverlapConfig overlapped;
  overlapped.bucket_bytes = 1024;
  OverlapConfig barrier = overlapped;
  barrier.overlap = false;
  const OverlapResult ra = overlapped_backward(a_set.params, loss_fn(a_set),
                                               overlapped);
  const OverlapResult rb = overlapped_backward(b_set.params, loss_fn(b_set),
                                               barrier);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(ra.mean_loss, rb.mean_loss);
  for (std::size_t p = 0; p < a_set.params[0].size(); ++p) {
    const Tensor& want = a_set.params[0][p].grad();
    const Tensor& got = b_set.params[0][p].grad();
    for (i64 i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "param " << p << " elem " << i;
    }
  }
}

// ---- fault injection --------------------------------------------------------

// Simple per-replica graphs with replica-dependent gradients: w starts at
// (r+1, r+2, ...), loss = mean(w*w), so d loss / d w = w / 2 differs across
// replicas and survivor means are distinguishable from full means.
std::vector<std::vector<ag::Variable>> make_leaf_replicas(int n, i64 numel) {
  std::vector<std::vector<ag::Variable>> params;
  for (int r = 0; r < n; ++r) {
    Tensor w({numel});
    for (i64 i = 0; i < numel; ++i) {
      w[i] = static_cast<float>(r + 1) + 0.25f * static_cast<float>(i);
    }
    params.push_back({ag::Variable::leaf(w, true)});
  }
  return params;
}

ag::Variable leaf_loss(const std::vector<std::vector<ag::Variable>>& params,
                       int r) {
  const ag::Variable& w = params[static_cast<std::size_t>(r)][0];
  return ag::mean_all(ag::mul(w, w));
}

TEST(FaultInjection, SeededStragglersDoNotChangeResults) {
  const int n = 4;
  data::SyntheticMnist dataset(64, 16, 42);
  ReplicaSet clean_set = make_replicas(n);
  ReplicaSet slow_set = make_replicas(n);
  std::vector<i64> idx = {0, 1, 2, 3, 4, 5, 6, 7};
  auto loss_fn = [&](ReplicaSet& set) {
    return [&set, &dataset, &idx](int r) {
      std::vector<i64> sh(idx.begin() + r * 2, idx.begin() + (r + 1) * 2);
      return set.models[static_cast<std::size_t>(r)]->loss(
          dataset.gather_images(sh, true), dataset.gather_labels(sh, true));
    };
  };

  OverlapConfig config;
  config.bucket_bytes = 1024;
  const OverlapResult clean =
      overlapped_backward(clean_set.params, loss_fn(clean_set), config);

  const FaultPlan plan = FaultPlan::stragglers(/*seed=*/11, n, /*count=*/2,
                                               /*delay_ms=*/25.0);
  ASSERT_EQ(plan.faults.size(), 2u);
  OverlapConfig slow_config = config;
  slow_config.faults = &plan;
  const OverlapResult slow =
      overlapped_backward(slow_set.params, loss_fn(slow_set), slow_config);

  ASSERT_TRUE(clean.ok) << clean.error;
  ASSERT_TRUE(slow.ok) << slow.error;
  EXPECT_TRUE(slow.stats.excluded_replicas.empty());
  EXPECT_EQ(slow.mean_loss, clean.mean_loss);
  for (std::size_t p = 0; p < clean_set.params[0].size(); ++p) {
    const Tensor& want = clean_set.params[0][p].grad();
    const Tensor& got = slow_set.params[0][p].grad();
    for (i64 i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "slowness changed values: param " << p;
    }
  }
}

TEST(FaultInjection, SeededStragglersAreDeterministic) {
  const FaultPlan a = FaultPlan::stragglers(77, 8, 3, 10.0);
  const FaultPlan b = FaultPlan::stragglers(77, 8, 3, 10.0);
  ASSERT_EQ(a.faults.size(), 3u);
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].replica, b.faults[i].replica);
  }
}

TEST(FaultInjection, DeadReplicaDegradesToSurvivorMean) {
  const int n = 4;
  const i64 numel = 8;
  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  obs::TraceRecorder::global().clear();

  auto params = make_leaf_replicas(n, numel);
  const FaultPlan plan = FaultPlan::dead_replica(2);
  OverlapConfig config;
  config.faults = &plan;
  config.bucket_timeout_ms = 250.0;
  config.timeout_policy = TimeoutPolicy::kDegradeToSurvivors;
  const OverlapResult res = overlapped_backward(
      params, [&](int r) { return leaf_loss(params, r); }, config);

  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.stats.dead_replicas.size(), 1u);
  EXPECT_EQ(res.stats.dead_replicas[0], 2);
  ASSERT_EQ(res.stats.excluded_replicas.size(), 1u);
  EXPECT_EQ(res.stats.excluded_replicas[0], 2);
  EXPECT_GE(res.stats.timeout_episodes, 1);

  // Expected survivor mean, built independently: per-replica gradients from
  // standalone backward passes, reduced with the same deterministic tree.
  std::vector<Tensor> expected_grads;
  for (int r : {0, 1, 3}) {
    auto solo = make_leaf_replicas(n, numel);
    ag::backward(leaf_loss(solo, r));
    expected_grads.push_back(solo[static_cast<std::size_t>(r)][0].grad());
  }
  std::vector<Tensor*> shards;
  for (auto& t : expected_grads) shards.push_back(&t);
  tree_allreduce_mean(shards);

  for (int r : {0, 1, 3}) {
    const Tensor& got = params[static_cast<std::size_t>(r)][0].grad();
    for (i64 i = 0; i < numel; ++i) {
      ASSERT_EQ(got[i], expected_grads[0][i])
          << "survivor " << r << " elem " << i;
    }
  }
  // The dead replica contributed nothing and received nothing.
  const Tensor& dead = params[2][0].grad();
  for (i64 i = 0; i < numel; ++i) EXPECT_EQ(dead[i], 0.0f);

  const auto counters = obs::TraceRecorder::global().counters();
  const auto it = counters.find("replica_timeout");
  ASSERT_NE(it, counters.end());
  EXPECT_EQ(it->second, 1);

  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(was_tracing);
}

TEST(FaultInjection, FailFastReportsCleanErrorWithoutHanging) {
  const int n = 3;
  auto params = make_leaf_replicas(n, 4);
  const FaultPlan plan = FaultPlan::dead_replica(1);
  OverlapConfig config;
  config.faults = &plan;
  config.bucket_timeout_ms = 100.0;
  config.timeout_policy = TimeoutPolicy::kFailFast;
  const OverlapResult res = overlapped_backward(
      params, [&](int r) { return leaf_loss(params, r); }, config);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("timed out"), std::string::npos) << res.error;
  EXPECT_NE(res.error.find("[1]"), std::string::npos) << res.error;
  EXPECT_LT(res.stats.buckets_reduced, res.stats.n_buckets);
}

TEST(FaultInjection, DeadReplicaWithoutTimeoutIsRejected) {
  auto params = make_leaf_replicas(2, 4);
  const FaultPlan plan = FaultPlan::dead_replica(0);
  OverlapConfig config;
  config.faults = &plan;  // bucket_timeout_ms left at 0
  EXPECT_DEATH(overlapped_backward(
                   params, [&](int r) { return leaf_loss(params, r); },
                   config),
               "requires");
}

// ---- observability ----------------------------------------------------------

TEST(OverlapObservability, BucketReduceSpansAndCounters) {
  const bool was_tracing = obs::tracing_enabled();
  obs::set_tracing_enabled(true);
  obs::TraceRecorder::global().clear();

  const int n = 2;
  // Three 300-float parameters against a 1 KB target: three buckets.
  std::vector<std::vector<ag::Variable>> params;
  for (int r = 0; r < n; ++r) {
    Rng rng(50 + static_cast<u64>(r));
    params.push_back({ag::Variable::leaf(Tensor::randn({300}, rng), true),
                      ag::Variable::leaf(Tensor::randn({300}, rng), true),
                      ag::Variable::leaf(Tensor::randn({300}, rng), true)});
  }
  OverlapConfig config;
  config.bucket_bytes = 1024;
  const OverlapResult res = overlapped_backward(
      params,
      [&](int r) {
        const auto& p = params[static_cast<std::size_t>(r)];
        return ag::add(ag::mean_all(ag::mul(p[0], p[0])),
                       ag::add(ag::mean_all(ag::mul(p[1], p[1])),
                               ag::mean_all(ag::mul(p[2], p[2]))));
      },
      config);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.stats.n_buckets, 3);

  const auto spans = obs::TraceRecorder::global().span_counts();
  const auto counters = obs::TraceRecorder::global().counters();
  ASSERT_NE(spans.find("bucket_reduce"), spans.end());
  EXPECT_EQ(spans.at("bucket_reduce"), res.stats.buckets_reduced);
  EXPECT_EQ(spans.at("replica_backward"), n);
  ASSERT_NE(counters.find("bucket_reduce"), counters.end());
  EXPECT_EQ(counters.at("bucket_reduce"), res.stats.buckets_reduced);

  obs::TraceRecorder::global().clear();
  obs::set_tracing_enabled(was_tracing);
}

// ---- LEGW_DIST runner dispatch ---------------------------------------------

TEST(DistDispatch, TrainMnistOverlapMatchesSyncBitwise) {
  // End-to-end: two data-parallel training runs through train_mnist, one per
  // engine, must capture bitwise-identical final parameters.
  data::SyntheticMnist dataset(64, 16, 42);
  models::MnistLstmConfig mc;
  mc.transform_dim = 8;
  mc.hidden_dim = 8;
  sched::ConstantLr lr(0.05f);
  train::RunConfig run;
  run.batch_size = 16;
  run.epochs = 1;
  run.replicas = 2;
  run.schedule = &lr;
  run.capture_final_params = true;
  run.final_eval_only = true;

  const core::DistMode saved = core::dist_mode();
  core::set_dist_mode(core::DistMode::kSync);
  const train::RunResult sync_run = train::train_mnist(dataset, mc, run);
  core::set_dist_mode(core::DistMode::kOverlap);
  const train::RunResult ovl_run = train::train_mnist(dataset, mc, run);
  core::set_dist_mode(saved);

  ASSERT_FALSE(sync_run.diverged);
  ASSERT_FALSE(ovl_run.diverged);
  ASSERT_EQ(sync_run.final_params.size(), ovl_run.final_params.size());
  ASSERT_GT(sync_run.final_params.size(), 0u);
  for (std::size_t p = 0; p < sync_run.final_params.size(); ++p) {
    const Tensor& want = sync_run.final_params[p];
    const Tensor& got = ovl_run.final_params[p];
    ASSERT_EQ(want.numel(), got.numel());
    for (i64 i = 0; i < want.numel(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "param " << p << " elem " << i;
    }
  }
}

TEST(DistDispatch, ModeParsingMirrorsLegwKernel) {
  const core::DistMode saved = core::dist_mode();
  EXPECT_TRUE(core::set_dist_mode("overlap"));
  EXPECT_EQ(core::dist_mode(), core::DistMode::kOverlap);
  EXPECT_STREQ(core::dist_mode_name(core::dist_mode()), "overlap");
  EXPECT_TRUE(core::set_dist_mode("sync"));
  EXPECT_EQ(core::dist_mode(), core::DistMode::kSync);
  EXPECT_FALSE(core::set_dist_mode("bogus"));
  EXPECT_EQ(core::dist_mode(), core::DistMode::kSync);
  core::set_dist_mode(saved);
}

}  // namespace
}  // namespace legw::dist
