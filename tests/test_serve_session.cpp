// Serving correctness battery (serve/container.hpp, serve/session.hpp):
//
//   * container robustness — truncation, bit flips, v1 files, and schema
//     mismatches all come back as a structured serve::Status naming what is
//     wrong, never an abort, on the exact load path the runtime uses;
//   * bitwise parity — a served forward equals the training graph's eval
//     forward for the same checkpoint on mnist and ptb, including
//     variable-length ptb sequences batched together: each request's logits
//     are invariant to batch composition, row padding, and sequence padding
//     (the gemm determinism contract makes batch rows independent);
//   * arena replay — run_batch under a replay-only StepArena is bitwise
//     equal to the heap path and actually replays its plan;
//   * disabled tracing — a serve run with tracing off records no spans.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/rng.hpp"
#include "mem/alloc.hpp"
#include "mem/arena.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "obs/trace.hpp"
#include "serve/session.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

struct TempDir {
  std::string path;
  // pid-suffixed: ctest -j runs tests as concurrent processes, and a fixed
  // path would let one test's teardown remove another's live directory.
  explicit TempDir(const char* name)
      : path(std::string("/tmp/legw_serve_") + name + "_" +
             std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string file(const char* name) const { return path + "/" + name; }
};

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b,
                          const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (i64 i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

// ---- mnist fixtures ---------------------------------------------------------

models::MnistLstmConfig small_mnist_config() {
  models::MnistLstmConfig c;
  c.transform_dim = 16;
  c.hidden_dim = 16;
  c.seed = 7;
  return c;
}

serve::SessionConfig serve_mnist_config(const models::MnistLstmConfig& c) {
  serve::SessionConfig sc;
  sc.kind = serve::ModelKind::kMnistLstm;
  sc.mnist.transform_dim = c.transform_dim;
  sc.mnist.hidden_dim = c.hidden_dim;
  sc.mnist.n_rows = c.n_rows;
  sc.mnist.n_cols = c.n_cols;
  sc.mnist.n_classes = c.n_classes;
  return sc;
}

std::string encode_model(nn::Module& model, i64 step = 12, i64 epoch = 2) {
  ckpt::TrainState state;
  state.models.push_back(&model);
  state.step = step;
  state.epoch = epoch;
  return ckpt::encode(state);
}

serve::Request random_mnist_request(u64 id, Rng& rng) {
  serve::Request req;
  req.id = id;
  req.features.resize(28 * 28);
  for (float& v : req.features) {
    v = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return req;
}

// ---- container / load-path robustness ---------------------------------------

TEST(ServeContainer, LoadsAnIntactCheckpoint) {
  TempDir dir("load_ok");
  models::MnistLstm model(small_mnist_config());
  write_file(dir.file("ok.legw"), encode_model(model));

  std::unique_ptr<serve::ServeSession> session;
  const auto res = serve::ServeSession::load(
      serve_mnist_config(model.config()), dir.file("ok.legw"), &session);
  ASSERT_TRUE(res.ok()) << res.message;
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->checkpoint_step(), 12);
  EXPECT_EQ(session->checkpoint_epoch(), 2);
  EXPECT_EQ(session->output_dim(), 10);
}

TEST(ServeContainer, MissingFileIsOpenFailed) {
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  const auto res = serve::ServeSession::load(
      serve_mnist_config(model.config()), "/tmp/legw_serve_nowhere.legw",
      &session);
  EXPECT_EQ(res.status, serve::Status::kOpenFailed);
  EXPECT_EQ(session, nullptr);
}

TEST(ServeContainer, TruncationAtEveryBoundaryIsStructured) {
  models::MnistLstm model(small_mnist_config());
  const std::string image = encode_model(model);
  std::vector<std::size_t> cuts = {0, 4, 9, 13, 15};
  for (std::size_t frac = 1; frac < 20; ++frac) {
    cuts.push_back(image.size() * frac / 20);
  }
  cuts.push_back(image.size() - 1);
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, image.size());
    std::unique_ptr<serve::ServeSession> session;
    const auto res = serve::ServeSession::load_bytes(
        serve_mnist_config(model.config()), image.substr(0, cut), &session);
    EXPECT_FALSE(res.ok()) << "cut at " << cut;
    EXPECT_FALSE(res.message.empty()) << "cut at " << cut;
    EXPECT_EQ(session, nullptr) << "cut at " << cut;
  }
}

TEST(ServeContainer, BitFlipsAreRejectedEverywhere) {
  models::MnistLstm model(small_mnist_config());
  const std::string image = encode_model(model);
  std::vector<std::size_t> offsets = {0, 5, 8, 12, 14, 20, 30};
  for (std::size_t frac = 1; frac < 16; ++frac) {
    offsets.push_back(image.size() * frac / 16);
  }
  offsets.push_back(image.size() - 1);
  for (std::size_t off : offsets) {
    ASSERT_LT(off, image.size());
    for (int bit : {0, 7}) {
      std::string flipped = image;
      flipped[off] = static_cast<char>(flipped[off] ^ (1 << bit));
      std::unique_ptr<serve::ServeSession> session;
      const auto res = serve::ServeSession::load_bytes(
          serve_mnist_config(model.config()), flipped, &session);
      EXPECT_FALSE(res.ok())
          << "undetected flip at byte " << off << " bit " << bit;
      EXPECT_EQ(session, nullptr);
    }
  }
}

TEST(ServeContainer, V1ParameterOnlyFileNamesTheMissingSections) {
  // A v1 file is a valid *training* restore target (parameters only) but
  // cannot serve: the failure must name the absent v2 sections, not abort.
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  const std::string v1_prefixed = std::string("LEGWCKPT") + "rest of a v1 file";
  const auto res = serve::ServeSession::load_bytes(
      serve_mnist_config(model.config()), v1_prefixed, &session);
  EXPECT_EQ(res.status, serve::Status::kMissingSection);
  EXPECT_NE(res.message.find("v1"), std::string::npos) << res.message;
  EXPECT_NE(res.message.find("meta"), std::string::npos) << res.message;
  EXPECT_NE(res.message.find("buffers"), std::string::npos) << res.message;
  EXPECT_EQ(session, nullptr);
}

TEST(ServeContainer, ForeignBytesAreBadMagic) {
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  const auto res = serve::ServeSession::load_bytes(
      serve_mnist_config(model.config()),
      "definitely not a checkpoint file, long enough", &session);
  EXPECT_EQ(res.status, serve::Status::kBadMagic);
}

TEST(ServeContainer, WrongDimsAreSchemaMismatchNamingTheTensor) {
  models::MnistLstm model(small_mnist_config());
  const std::string image = encode_model(model);
  serve::SessionConfig config = serve_mnist_config(model.config());
  config.mnist.hidden_dim = 64;  // checkpoint was trained with 16
  std::unique_ptr<serve::ServeSession> session;
  const auto res =
      serve::ServeSession::load_bytes(config, image, &session);
  EXPECT_EQ(res.status, serve::Status::kSchemaMismatch);
  EXPECT_NE(res.message.find("lstm.weight"), std::string::npos)
      << res.message;
  EXPECT_EQ(session, nullptr);
}

TEST(ServeContainer, WrongModelKindIsSchemaMismatch) {
  models::MnistLstm model(small_mnist_config());
  const std::string image = encode_model(model);
  serve::SessionConfig config;
  config.kind = serve::ModelKind::kPtbLm;  // mnist ckpt has no embedding
  std::unique_ptr<serve::ServeSession> session;
  const auto res =
      serve::ServeSession::load_bytes(config, image, &session);
  EXPECT_EQ(res.status, serve::Status::kSchemaMismatch);
  EXPECT_NE(res.message.find("embedding.weight"), std::string::npos)
      << res.message;
}

// ---- request validation -----------------------------------------------------

TEST(ServeSession, ValidatesRequestsStructurally) {
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  ASSERT_TRUE(serve::ServeSession::load_bytes(
                  serve_mnist_config(model.config()), encode_model(model),
                  &session)
                  .ok());
  serve::Request bad;
  bad.id = 9;
  bad.features.resize(100);  // needs 784
  EXPECT_EQ(session->validate(bad).status, serve::Status::kInvalidRequest);
  const serve::Response r = session->run(bad);
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.status, serve::Status::kInvalidRequest);

  models::PtbConfig pc;
  pc.vocab = 40;
  pc.embed_dim = 12;
  pc.hidden_dim = 12;
  models::PtbModel ptb(pc);
  serve::SessionConfig sc;
  sc.kind = serve::ModelKind::kPtbLm;
  sc.ptb.vocab = pc.vocab;
  sc.ptb.embed_dim = pc.embed_dim;
  sc.ptb.hidden_dim = pc.hidden_dim;
  sc.ptb.num_layers = pc.num_layers;
  std::unique_ptr<serve::ServeSession> lm;
  ASSERT_TRUE(
      serve::ServeSession::load_bytes(sc, encode_model(ptb), &lm).ok());
  serve::Request empty;
  EXPECT_EQ(lm->validate(empty).status, serve::Status::kInvalidRequest);
  serve::Request oov;
  oov.tokens = {1, 2, 40};  // vocab is [0, 40)
  EXPECT_EQ(lm->validate(oov).status, serve::Status::kInvalidRequest);
}

// ---- bitwise parity: mnist --------------------------------------------------

TEST(ServeParity, MnistServedEqualsTrainingForwardBitwise) {
  models::MnistLstm model(small_mnist_config());
  model.set_training(false);
  std::unique_ptr<serve::ServeSession> session;
  ASSERT_TRUE(serve::ServeSession::load_bytes(
                  serve_mnist_config(model.config()), encode_model(model),
                  &session)
                  .ok());

  Rng rng(101);
  const i64 batch = 5;
  std::vector<serve::Request> reqs;
  Tensor images({batch, 28 * 28});
  for (i64 b = 0; b < batch; ++b) {
    reqs.push_back(random_mnist_request(static_cast<u64>(b), rng));
    std::copy(reqs.back().features.begin(), reqs.back().features.end(),
              images.data() + b * 28 * 28);
  }
  const Tensor reference = model.forward(images).value();  // [B, 10]

  // Same composition through the serving path.
  std::vector<serve::Response> served;
  ASSERT_TRUE(session->run_batch(reqs, 0, 0, &served).ok());
  ASSERT_EQ(served.size(), reqs.size());
  for (i64 b = 0; b < batch; ++b) {
    Tensor want({10});
    std::copy(reference.data() + b * 10, reference.data() + (b + 1) * 10,
              want.data());
    expect_bitwise_equal(served[static_cast<std::size_t>(b)].logits, want,
                         "mnist batch row");
  }

  // Batch composition and row padding are invisible: one-at-a-time and a
  // padded batch both reproduce the same bits.
  for (i64 b = 0; b < batch; ++b) {
    const serve::Response solo = session->run(reqs[static_cast<std::size_t>(b)]);
    ASSERT_EQ(solo.status, serve::Status::kOk) << solo.message;
    expect_bitwise_equal(solo.logits,
                         served[static_cast<std::size_t>(b)].logits,
                         "mnist solo vs batched");
  }
  std::vector<serve::Response> padded;
  ASSERT_TRUE(session->run_batch(reqs, 0, /*pad_rows_to=*/16, &padded).ok());
  for (std::size_t b = 0; b < reqs.size(); ++b) {
    expect_bitwise_equal(padded[b].logits, served[b].logits,
                         "mnist padded vs unpadded");
  }
}

// ---- bitwise parity: ptb ----------------------------------------------------

struct PtbPair {
  std::unique_ptr<models::PtbModel> model;
  std::unique_ptr<serve::ServeSession> session;
};

PtbPair make_ptb_pair(bool tied) {
  models::PtbConfig pc;
  pc.vocab = 40;
  pc.embed_dim = tied ? 12 : 10;
  pc.hidden_dim = 12;
  pc.num_layers = 2;
  pc.dropout = 0.3f;  // must be inert: parity is checked in eval mode
  pc.tie_embeddings = tied;
  pc.seed = 23;
  PtbPair pair;
  pair.model = std::make_unique<models::PtbModel>(pc);
  serve::SessionConfig sc;
  sc.kind = serve::ModelKind::kPtbLm;
  sc.ptb.vocab = pc.vocab;
  sc.ptb.embed_dim = pc.embed_dim;
  sc.ptb.hidden_dim = pc.hidden_dim;
  sc.ptb.num_layers = pc.num_layers;
  sc.ptb.tie_embeddings = tied;
  const auto res = serve::ServeSession::load_bytes(
      sc, encode_model(*pair.model), &pair.session);
  EXPECT_TRUE(res.ok()) << res.message;
  return pair;
}

std::vector<i32> random_tokens(i64 len, i64 vocab, Rng& rng) {
  std::vector<i32> t(static_cast<std::size_t>(len));
  for (i32& v : t) {
    v = static_cast<i32>(rng.uniform(0.0, static_cast<double>(vocab)));
  }
  return t;
}

TEST(ServeParity, PtbVariableLengthBatchEqualsSequenceReference) {
  for (bool tied : {false, true}) {
    PtbPair pair = make_ptb_pair(tied);
    ASSERT_NE(pair.session, nullptr);
    Rng rng(tied ? 31u : 13u);

    // Mixed lengths in one batch, padded to a common bucket and to extra
    // rows: every request must still match its own batch-1 training-graph
    // reference bit for bit (carried-state-free batching).
    std::vector<serve::Request> reqs;
    for (i64 len : {3, 7, 5, 1}) {
      serve::Request req;
      req.id = static_cast<u64>(100 + len);
      req.tokens = random_tokens(len, 40, rng);
      reqs.push_back(std::move(req));
    }
    std::vector<serve::Response> served;
    ASSERT_TRUE(pair.session
                    ->run_batch(reqs, /*pad_len=*/8, /*pad_rows_to=*/6,
                                &served)
                    .ok());
    ASSERT_EQ(served.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Tensor reference = pair.model->sequence_logits(reqs[i].tokens);
      ASSERT_EQ(served[i].status, serve::Status::kOk) << served[i].message;
      expect_bitwise_equal(served[i].logits, reference,
                           tied ? "ptb tied batch row" : "ptb batch row");
    }

    // A different composition of the same requests reproduces the same bits.
    std::vector<serve::Request> shuffled = {reqs[2], reqs[0]};
    std::vector<serve::Response> again;
    ASSERT_TRUE(
        pair.session->run_batch(shuffled, /*pad_len=*/16, 0, &again).ok());
    expect_bitwise_equal(again[1].logits, served[0].logits,
                         "ptb composition invariance");
  }
}

TEST(ServeParity, PtbRejectsPadShorterThanLongestRequest) {
  PtbPair pair = make_ptb_pair(false);
  serve::Request req;
  req.id = 1;
  Rng rng(3);
  req.tokens = random_tokens(9, 40, rng);
  std::vector<serve::Response> out;
  const auto res = pair.session->run_batch({req}, /*pad_len=*/4, 0, &out);
  EXPECT_EQ(res.status, serve::Status::kInvalidRequest);
}

// ---- arena replay -----------------------------------------------------------

TEST(ServeArena, ReplayOnlyArenaIsBitwiseEqualAndActuallyReplays) {
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  ASSERT_TRUE(serve::ServeSession::load_bytes(
                  serve_mnist_config(model.config()), encode_model(model),
                  &session)
                  .ok());
  Rng rng(55);
  std::vector<serve::Request> reqs;
  for (u64 i = 0; i < 4; ++i) reqs.push_back(random_mnist_request(i, rng));

  std::vector<serve::Response> heap;
  ASSERT_TRUE(session->run_batch(reqs, 0, /*pad_rows_to=*/4, &heap).ok());

  const mem::AllocMode before = mem::alloc_mode();
  mem::set_alloc_mode(mem::AllocMode::kArena);
  mem::StepArena arena("serve.test");
  arena.set_replay_only(true);
  for (int round = 0; round < 3; ++round) {
    std::vector<serve::Response> out;
    ASSERT_TRUE(
        session->run_batch(reqs, 0, /*pad_rows_to=*/4, &out, &arena).ok());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      expect_bitwise_equal(out[i].logits, heap[i].logits,
                           "arena vs heap serve");
    }
  }
  mem::set_alloc_mode(before);

  const auto stats = arena.stats();
  EXPECT_EQ(stats.steps, 3);
  EXPECT_EQ(stats.recorded_steps, 1);
  EXPECT_EQ(stats.replayed_steps, 2) << "stable batch shape must replay";
  EXPECT_EQ(stats.divergences, 0);
}

// ---- observability ----------------------------------------------------------

TEST(ServeObs, DisabledTracingRecordsNoSpans) {
  models::MnistLstm model(small_mnist_config());
  std::unique_ptr<serve::ServeSession> session;
  ASSERT_TRUE(serve::ServeSession::load_bytes(
                  serve_mnist_config(model.config()), encode_model(model),
                  &session)
                  .ok());
  obs::set_tracing_enabled(false);
  obs::TraceRecorder::global().clear();
  Rng rng(77);
  const serve::Response r = session->run(random_mnist_request(1, rng));
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_TRUE(obs::TraceRecorder::global().spans().empty())
      << "serve run with tracing disabled must not allocate span storage";

  obs::set_tracing_enabled(true);
  obs::TraceRecorder::global().clear();
  (void)session->run(random_mnist_request(2, rng));
  const auto counts = obs::TraceRecorder::global().span_counts();
  EXPECT_EQ(counts.count("serve.infer"), 1u);
  obs::set_tracing_enabled(false);
  obs::TraceRecorder::global().clear();
}

}  // namespace
}  // namespace legw
