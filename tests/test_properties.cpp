// Property-style tests: algebraic invariants checked over randomized inputs
// and parameter sweeps (TEST_P), complementing the example-based unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "core/kernels.hpp"
#include "core/tensor.hpp"
#include "dist/allreduce.hpp"
#include "optim/optimizer.hpp"
#include "sched/legw.hpp"
#include "train/metrics.hpp"

namespace legw {
namespace {

using ag::Variable;
using core::Rng;
using core::Shape;
using core::Tensor;

// ---- tensor algebra over random shapes ---------------------------------------

class TensorAlgebraTest : public ::testing::TestWithParam<u64> {};

TEST_P(TensorAlgebraTest, AdditionCommutesAndAssociates) {
  Rng rng(GetParam());
  const Shape shape{static_cast<i64>(1 + rng.uniform_int(8)),
                    static_cast<i64>(1 + rng.uniform_int(8))};
  Tensor a = Tensor::randn(shape, rng);
  Tensor b = Tensor::randn(shape, rng);
  Tensor c = Tensor::randn(shape, rng);
  Tensor ab = a + b;
  Tensor ba = b + a;
  Tensor abc1 = (a + b) + c;
  Tensor abc2 = a + (b + c);
  for (i64 i = 0; i < ab.numel(); ++i) {
    EXPECT_EQ(ab[i], ba[i]);
    EXPECT_NEAR(abc1[i], abc2[i], 1e-5f);
  }
}

TEST_P(TensorAlgebraTest, ScalingDistributesOverAddition) {
  Rng rng(GetParam() ^ 0xabcdef);
  const Shape shape{static_cast<i64>(1 + rng.uniform_int(10))};
  Tensor a = Tensor::randn(shape, rng);
  Tensor b = Tensor::randn(shape, rng);
  const float s = static_cast<float>(rng.uniform(-2.0, 2.0));
  Tensor lhs = (a + b) * s;
  Tensor rhs = a * s + b * s;
  for (i64 i = 0; i < lhs.numel(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-5f);
}

TEST_P(TensorAlgebraTest, TransposeIsInvolution) {
  Rng rng(GetParam() ^ 0x123456);
  const Shape shape{static_cast<i64>(1 + rng.uniform_int(7)),
                    static_cast<i64>(1 + rng.uniform_int(7))};
  Tensor a = Tensor::randn(shape, rng);
  Tensor tt = a.transposed_2d().transposed_2d();
  for (i64 i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], tt[i]);
}

TEST_P(TensorAlgebraTest, MatmulIdentity) {
  Rng rng(GetParam() ^ 0x777);
  const i64 n = 1 + static_cast<i64>(rng.uniform_int(6));
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor eye({n, n});
  for (i64 i = 0; i < n; ++i) eye.at(i, i) = 1.0f;
  Tensor ai = core::matmul(a, eye);
  Tensor ia = core::matmul(eye, a);
  for (i64 i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(ai[i], a[i], 1e-5f);
    EXPECT_NEAR(ia[i], a[i], 1e-5f);
  }
}

TEST_P(TensorAlgebraTest, MatmulTransposeDuality) {
  // (A B)^T == B^T A^T, exercised through the trans flags.
  Rng rng(GetParam() ^ 0x999);
  const i64 m = 1 + static_cast<i64>(rng.uniform_int(5));
  const i64 k = 1 + static_cast<i64>(rng.uniform_int(5));
  const i64 n = 1 + static_cast<i64>(rng.uniform_int(5));
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor ab_t = core::matmul(a, b).transposed_2d();
  Tensor bt_at = core::matmul(b, a, true, true);  // B^T A^T
  for (i64 i = 0; i < ab_t.numel(); ++i) EXPECT_NEAR(ab_t[i], bt_at[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TensorAlgebraTest,
                         ::testing::Range<u64>(1, 11));

// ---- softmax / cross-entropy invariants ---------------------------------------

class SoftmaxInvarianceTest : public ::testing::TestWithParam<u64> {};

TEST_P(SoftmaxInvarianceTest, ShiftInvariantPerRow) {
  Rng rng(GetParam());
  Variable a = Variable::leaf(Tensor::randn({3, 5}, rng), true);
  Tensor shifted = a.value();
  for (i64 r = 0; r < 3; ++r) {
    const float c = static_cast<float>(rng.uniform(-5.0, 5.0));
    for (i64 j = 0; j < 5; ++j) shifted[r * 5 + j] += c;
  }
  Variable b = Variable::constant(shifted);
  Variable sa = ag::softmax_rows(a);
  Variable sb = ag::softmax_rows(b);
  for (i64 i = 0; i < sa.numel(); ++i) {
    EXPECT_NEAR(sa.value()[i], sb.value()[i], 1e-5f);
  }
}

TEST_P(SoftmaxInvarianceTest, CrossEntropyEqualsNegLogSoftmaxAtTarget) {
  Rng rng(GetParam() ^ 0x42);
  const i64 rows = 4, cols = 6;
  Variable logits = Variable::leaf(Tensor::randn({rows, cols}, rng), true);
  std::vector<i32> targets;
  for (i64 r = 0; r < rows; ++r) {
    targets.push_back(static_cast<i32>(rng.uniform_int(cols)));
  }
  Variable loss = ag::softmax_cross_entropy(logits, targets);
  Tensor ls({rows, cols});
  core::log_softmax_rows(logits.value().data(), ls.data(), rows, cols);
  double manual = 0.0;
  for (i64 r = 0; r < rows; ++r) manual -= ls[r * cols + targets[static_cast<std::size_t>(r)]];
  EXPECT_NEAR(loss.value()[0], manual / rows, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SoftmaxInvarianceTest,
                         ::testing::Range<u64>(1, 9));

// ---- LEGW invariants -----------------------------------------------------------

class LegwInvariantTest : public ::testing::TestWithParam<u64> {};

TEST_P(LegwInvariantTest, ScalingComposesTransitively) {
  // scale(base, B1) then re-baselining at B1 and scaling to B2 must equal
  // scaling base directly to B2.
  Rng rng(GetParam());
  sched::LegwBaseline base;
  base.batch_size = 1 << (3 + rng.uniform_int(5));
  base.peak_lr = static_cast<float>(rng.uniform(0.01, 1.0));
  base.warmup_epochs = rng.uniform(0.05, 2.0);
  const i64 b1 = base.batch_size << rng.uniform_int(4);
  const i64 b2 = base.batch_size << rng.uniform_int(6);

  const auto r1 = sched::legw_scale(base, b1);
  sched::LegwBaseline rebased{b1, r1.peak_lr, r1.warmup_epochs};
  const auto direct = sched::legw_scale(base, b2);
  const auto via = sched::legw_scale(rebased, b2);
  EXPECT_NEAR(direct.peak_lr, via.peak_lr, 1e-5f * direct.peak_lr + 1e-8f);
  EXPECT_NEAR(direct.warmup_epochs, via.warmup_epochs,
              1e-9 * direct.warmup_epochs + 1e-12);
}

TEST_P(LegwInvariantTest, WarmupIterationCountIsBatchInvariant) {
  // warmup_epochs * (samples / batch) — the number of warmup *iterations* —
  // is the same for every batch size under LEGW (paper Table 2's constant
  // 200 iterations).
  Rng rng(GetParam() ^ 0x5555);
  sched::LegwBaseline base;
  base.batch_size = 64;
  base.peak_lr = 0.1f;
  base.warmup_epochs = rng.uniform(0.01, 1.0);
  const double n_samples = 1e6;
  const double base_iters = base.warmup_epochs * n_samples / base.batch_size;
  for (i64 k = 2; k <= 64; k *= 2) {
    const auto r = sched::legw_scale(base, base.batch_size * k);
    const double iters = r.warmup_epochs * n_samples / r.batch_size;
    EXPECT_NEAR(iters, base_iters, 1e-6 * base_iters);
  }
}

TEST_P(LegwInvariantTest, ScheduleIsContinuousAtWarmupEnd) {
  Rng rng(GetParam() ^ 0xAAAA);
  sched::LegwBaseline base{128, static_cast<float>(rng.uniform(0.05, 0.5)),
                           rng.uniform(0.1, 1.0)};
  const i64 batch = 128 << rng.uniform_int(4);
  auto s = sched::legw_schedule(base, batch, [](float peak) {
    return std::make_shared<sched::PolynomialLr>(peak, 50.0, 2.0f);
  });
  const double w = sched::legw_scale(base, batch).warmup_epochs;
  const float just_before = s->lr(w * (1.0 - 1e-6));
  const float at = s->lr(w);
  EXPECT_NEAR(just_before, at, 1e-3f * at + 1e-7f);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LegwInvariantTest,
                         ::testing::Range<u64>(1, 13));

// ---- optimizer invariants --------------------------------------------------------

TEST(OptimizerInvariants, ZeroLrIsNoOp) {
  Rng rng(3);
  for (const char* name : {"sgd", "momentum", "nesterov", "adagrad", "rmsprop",
                           "adam", "adadelta", "lars"}) {
    Variable p = Variable::leaf(Tensor::randn({4}, rng), true);
    p.mutable_grad().fill_(1.0f);
    Tensor before = p.value();
    auto opt = optim::make_optimizer(name, {p});
    opt->set_lr(0.0f);
    opt->step();
    for (i64 i = 0; i < 4; ++i) {
      EXPECT_EQ(p.value()[i], before[i]) << name;
    }
  }
}

TEST(OptimizerInvariants, ZeroGradIsNoOpForStatelessSolvers) {
  // LARS is excluded: the factory gives it a nonzero default weight decay,
  // so it legitimately moves weights even with zero gradient.
  Rng rng(4);
  for (const char* name : {"sgd", "momentum", "nesterov", "adagrad",
                           "rmsprop", "adam"}) {
    Variable p = Variable::leaf(Tensor::randn({3}, rng), true);
    p.zero_grad();
    Tensor before = p.value();
    auto opt = optim::make_optimizer(name, {p});
    opt->set_lr(0.1f);
    opt->step();
    for (i64 i = 0; i < 3; ++i) {
      EXPECT_EQ(p.value()[i], before[i]) << name;
    }
  }
}

TEST(OptimizerInvariants, ClipIsIdempotent) {
  Rng rng(5);
  Variable p = Variable::leaf(Tensor::zeros({16}), true);
  p.mutable_grad() = Tensor::randn({16}, rng, 3.0f);
  optim::clip_grad_norm({p}, 1.0f);
  Tensor after_one = p.grad();
  optim::clip_grad_norm({p}, 1.0f);
  for (i64 i = 0; i < 16; ++i) {
    EXPECT_NEAR(p.grad()[i], after_one[i], 1e-6f);
  }
  EXPECT_NEAR(p.grad().l2_norm(), 1.0f, 1e-4f);
}

// ---- all-reduce invariants ---------------------------------------------------------

class AllreduceLinearityTest : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceLinearityTest, MeanIsPermutationInsensitiveUpToFloat) {
  // The tree is order-dependent in float, but the result must stay within
  // float tolerance of the exact mean for any shard count.
  const int n = GetParam();
  Rng rng(77);
  std::vector<Tensor> shards;
  std::vector<double> exact(32, 0.0);
  for (int i = 0; i < n; ++i) {
    shards.push_back(Tensor::randn({32}, rng));
    for (i64 j = 0; j < 32; ++j) exact[static_cast<std::size_t>(j)] += shards.back()[j];
  }
  std::vector<Tensor*> ptrs;
  for (auto& t : shards) ptrs.push_back(&t);
  dist::tree_allreduce_mean(ptrs);
  for (i64 j = 0; j < 32; ++j) {
    EXPECT_NEAR(shards[0][j], exact[static_cast<std::size_t>(j)] / n, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, AllreduceLinearityTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 32));

// ---- BLEU properties ------------------------------------------------------------------

TEST(BleuProperties, CorpusOrderInvariant) {
  std::vector<std::vector<i32>> h1 = {{1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  std::vector<std::vector<i32>> r1 = {{1, 2, 3, 9}, {5, 6, 7, 8, 10}};
  std::vector<std::vector<i32>> h2 = {h1[1], h1[0]};
  std::vector<std::vector<i32>> r2 = {r1[1], r1[0]};
  EXPECT_DOUBLE_EQ(train::corpus_bleu(h1, r1), train::corpus_bleu(h2, r2));
}

TEST(BleuProperties, TokenRelabelInvariant) {
  // BLEU only compares token identities; a consistent relabeling of both
  // hypothesis and reference cannot change the score.
  std::vector<std::vector<i32>> h = {{1, 2, 3, 4, 2}};
  std::vector<std::vector<i32>> r = {{1, 2, 4, 3, 2}};
  auto relabel = [](std::vector<std::vector<i32>> v) {
    for (auto& s : v)
      for (auto& t : s) t += 100;
    return v;
  };
  EXPECT_DOUBLE_EQ(train::corpus_bleu(h, r),
                   train::corpus_bleu(relabel(h), relabel(r)));
}

TEST(BleuProperties, BoundedIn0To100) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<i32>> h(3), r(3);
    for (int s = 0; s < 3; ++s) {
      const int hl = 1 + static_cast<int>(rng.uniform_int(8));
      const int rl = 1 + static_cast<int>(rng.uniform_int(8));
      for (int i = 0; i < hl; ++i)
        h[static_cast<std::size_t>(s)].push_back(static_cast<i32>(rng.uniform_int(5)));
      for (int i = 0; i < rl; ++i)
        r[static_cast<std::size_t>(s)].push_back(static_cast<i32>(rng.uniform_int(5)));
    }
    const double b = train::corpus_bleu(h, r);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 100.0 + 1e-9);
  }
}

}  // namespace
}  // namespace legw
