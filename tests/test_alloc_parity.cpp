// Bitwise parity between the two storage modes (LEGW_ALLOC=arena|malloc):
// the arena only changes WHERE bytes live, never their values, so N training
// steps under either mode must produce identical parameters and an identical
// train_loss series — bitwise, not approximately. Extends the
// golden-determinism suite across the allocator axis:
//
//   * mnist and ptb (carried BPTT state crosses step boundaries, so PTB also
//     proves the rehome-to-heap path),
//   * replicas = 2 (per-replica arenas under the dist engine),
//   * crash + resume under arena mode against a straight malloc run (the
//     checkpoint subsystem composes with the arena),
//   * gradient-accumulator regressions: consecutive steps see no stale
//     gradients, and restore_pending(0) zero-fills instead of assuming
//     freshly-zeroed buffers.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "ag/ops.hpp"
#include "ag/variable.hpp"
#include "ckpt/checkpoint.hpp"
#include "mem/alloc.hpp"
#include "sched/schedule.hpp"
#include "train/accumulate.hpp"
#include "train/recorder.hpp"
#include "train/runners.hpp"

namespace legw::train {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_alloc_parity_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// Scoped allocator-mode override, restoring the ambient mode on exit so
// tests compose regardless of LEGW_ALLOC in the environment.
struct AllocModeScope {
  mem::AllocMode saved;
  explicit AllocModeScope(mem::AllocMode m) : saved(mem::alloc_mode()) {
    mem::set_alloc_mode(m);
  }
  ~AllocModeScope() { mem::set_alloc_mode(saved); }
};

bool bitwise_equal(const core::Tensor& a, const core::Tensor& b) {
  if (!a.same_shape(b)) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

struct ParityRun {
  std::vector<core::Tensor> params;
  std::string csv;
  double final_train_loss = 0.0;
};

using Runner = std::function<RunResult(const RunConfig&)>;

ParityRun run_under(mem::AllocMode mode, const Runner& go, RunConfig run) {
  AllocModeScope alloc(mode);
  Recorder recorder;
  run.recorder = &recorder;
  run.capture_final_params = true;
  RunResult result = go(run);
  ParityRun out;
  out.params = std::move(result.final_params);
  out.csv = recorder.to_csv();
  out.final_train_loss = result.final_train_loss;
  return out;
}

void expect_bitwise_parity(const Runner& go, const RunConfig& run,
                           const char* tag) {
  const ParityRun arena = run_under(mem::AllocMode::kArena, go, run);
  const ParityRun malloc_run = run_under(mem::AllocMode::kMalloc, go, run);
  ASSERT_FALSE(arena.params.empty()) << tag;
  ASSERT_EQ(arena.params.size(), malloc_run.params.size()) << tag;
  for (std::size_t i = 0; i < arena.params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(arena.params[i], malloc_run.params[i]))
        << tag << " param " << i;
  }
  EXPECT_FALSE(arena.csv.empty()) << tag;
  EXPECT_EQ(arena.csv, malloc_run.csv) << tag;
  EXPECT_DOUBLE_EQ(arena.final_train_loss, malloc_run.final_train_loss) << tag;
}

TEST(AllocParity, MnistArenaMatchesMallocBitwise) {
  data::SyntheticMnist dataset(192, 64, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.05f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 2;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.seed = 5;
  expect_bitwise_parity(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      "mnist");
}

TEST(AllocParity, PtbArenaMatchesMallocBitwise) {
  // PTB carries BPTT state across steps: the carried tensors are allocated
  // inside the step scope and rehomed to the heap, so this run fails loudly
  // if rehoming ever loses bytes or leaves arena-backed storage behind.
  data::CorpusConfig ccfg;
  ccfg.vocab = 40;
  ccfg.n_train_tokens = 1200;
  ccfg.n_valid_tokens = 200;
  data::SyntheticCorpus corpus(ccfg);
  models::PtbConfig mcfg = models::PtbConfig::small(40);
  mcfg.embed_dim = 16;
  mcfg.hidden_dim = 16;
  mcfg.bptt_len = 8;
  mcfg.dropout = 0.2f;  // dropout RNG must agree step for step across modes
  sched::ConstantLr schedule(0.5f);
  RunConfig run;
  run.batch_size = 8;
  run.epochs = 2;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  run.seed = 7;
  expect_bitwise_parity(
      [&](const RunConfig& r) { return train_ptb(corpus, mcfg, r); }, run,
      "ptb");
}

TEST(AllocParity, ReplicatedMnistArenaMatchesMallocBitwise) {
  // replicas = 2: each replica thread binds its own arena slot; the reducer
  // reads heap-bound leaf gradients. Parity across modes proves the
  // per-replica arenas never leak into the reduction.
  data::SyntheticMnist dataset(192, 64, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.05f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 2;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.seed = 9;
  run.replicas = 2;
  expect_bitwise_parity(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      "mnist-replicas2");
}

TEST(AllocParity, CrashResumeUnderArenaMatchesStraightMalloc) {
  // The composition test: a run that crashes and resumes entirely in arena
  // mode must land on the same parameters as an uninterrupted malloc run.
  data::SyntheticMnist dataset(192, 64, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.05f);
  RunConfig base;
  base.batch_size = 32;
  base.epochs = 2;
  base.optimizer = "momentum";
  base.schedule = &schedule;
  base.seed = 11;
  const Runner go = [&](const RunConfig& r) {
    return train_mnist(dataset, mcfg, r);
  };

  const ParityRun straight = run_under(mem::AllocMode::kMalloc, go, base);

  TempDir dir("arena_resume");
  const auto plan = ckpt::CrashPlan::mid_step(7);
  {
    AllocModeScope alloc(mem::AllocMode::kArena);
    RunConfig crash = base;
    crash.checkpoint_dir = dir.path;
    crash.checkpoint_every_steps = 3;
    crash.crash_plan = &plan;
    const RunResult interrupted = go(crash);
    ASSERT_TRUE(interrupted.interrupted);
  }
  ParityRun resumed;
  {
    AllocModeScope alloc(mem::AllocMode::kArena);
    Recorder rec;
    RunConfig resume = base;
    resume.checkpoint_dir = dir.path;
    resume.checkpoint_every_steps = 3;
    resume.resume = true;
    resume.recorder = &rec;
    resume.capture_final_params = true;
    RunResult result = go(resume);
    EXPECT_EQ(result.resumed_from_step, 6);
    resumed.params = std::move(result.final_params);
    resumed.final_train_loss = result.final_train_loss;
  }
  ASSERT_EQ(straight.params.size(), resumed.params.size());
  for (std::size_t i = 0; i < straight.params.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(straight.params[i], resumed.params[i]))
        << "param " << i;
  }
  EXPECT_DOUBLE_EQ(straight.final_train_loss, resumed.final_train_loss);
}

// ---------------------------------------------------------------------------
// Gradient-accumulator regressions (stale-buffer assumptions)
// ---------------------------------------------------------------------------

// A tiny deterministic loss over one parameter: loss = sum(w * w * c).
ag::Variable toy_loss(const ag::Variable& w, float c) {
  return ag::sum_all(ag::mul(ag::mul(w, w), ag::Variable::constant(
                                                core::Tensor({2}, {c, c}))));
}

TEST(AccumulatorRegression, ConsecutiveStepsSeeNoStaleGradients) {
  // Two consecutive optimizer steps through the accumulator: the gradients
  // of step 2 must be a function of step 2's micro-batches only. Run the
  // same pair of steps under both allocator modes — recycled arena bytes in
  // step 2 are exactly where a missing zero-fill would surface.
  for (mem::AllocMode mode : {mem::AllocMode::kMalloc, mem::AllocMode::kArena}) {
    AllocModeScope alloc(mode);
    ag::Variable w =
        ag::Variable::leaf(core::Tensor({2}, {1.0f, 2.0f}), true);
    GradientAccumulator acc({w});
    std::vector<float> step_grads;
    for (int step = 0; step < 2; ++step) {
      w.zero_grad();
      {
        mem::TrainStepScope scope;
        acc.micro_step([&] { return toy_loss(w, 1.0f); });
        acc.micro_step([&] { return toy_loss(w, 3.0f); });
      }
      acc.finish();
      step_grads.push_back(w.grad()[0]);
      step_grads.push_back(w.grad()[1]);
    }
    // d/dw sum(c * w^2) = 2cw; mean over c in {1, 3} -> 4w.
    ASSERT_EQ(step_grads.size(), 4u);
    for (int step = 0; step < 2; ++step) {
      EXPECT_FLOAT_EQ(step_grads[2 * step + 0], 4.0f)
          << "mode " << mem::alloc_mode_name(mode) << " step " << step;
      EXPECT_FLOAT_EQ(step_grads[2 * step + 1], 8.0f)
          << "mode " << mem::alloc_mode_name(mode) << " step " << step;
    }
  }
}

TEST(AccumulatorRegression, RestorePendingZeroFillsOnFreshStart) {
  // restore_pending(0) = "no accumulation in flight". The grad buffers may
  // hold pre-crash partial sums; the next micro_step must start from zero.
  ag::Variable w = ag::Variable::leaf(core::Tensor({2}, {1.0f, 2.0f}), true);
  GradientAccumulator acc({w});
  acc.micro_step([&] { return toy_loss(w, 5.0f); });  // dirty the buffers
  ASSERT_NE(w.grad()[0], 0.0f);
  acc.restore_pending(0);
  EXPECT_EQ(acc.pending_micro_steps(), 0);
  EXPECT_EQ(w.grad()[0], 0.0f);
  EXPECT_EQ(w.grad()[1], 0.0f);
  acc.micro_step([&] { return toy_loss(w, 1.0f); });
  acc.finish();
  EXPECT_FLOAT_EQ(w.grad()[0], 2.0f);  // 2w, no stale 10w residue
  EXPECT_FLOAT_EQ(w.grad()[1], 4.0f);
}

TEST(AccumulatorRegression, RestorePendingPositivePreservesRestoredSums) {
  // For count > 0 the caller restores checkpointed partial sums right after;
  // restore_pending must materialise (not zero) the buffers it hands back.
  ag::Variable w = ag::Variable::leaf(core::Tensor({2}, {1.0f, 2.0f}), true);
  GradientAccumulator acc({w});
  acc.restore_pending(1);
  EXPECT_EQ(acc.pending_micro_steps(), 1);
  // Simulate the checkpoint restore writing the partial sum.
  w.mutable_grad().fill_(6.0f);
  acc.micro_step([&] { return toy_loss(w, 1.0f); });
  acc.finish();
  // (restored 6 + 2w) / 2 micro-batches.
  EXPECT_FLOAT_EQ(w.grad()[0], (6.0f + 2.0f) / 2.0f);
  EXPECT_FLOAT_EQ(w.grad()[1], (6.0f + 4.0f) / 2.0f);
}

}  // namespace
}  // namespace legw::train
