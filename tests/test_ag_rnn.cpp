// Fused LSTM cell: gradient checks and equivalence against the op-composed
// reference implementation.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/gradcheck.hpp"
#include "ag/ops.hpp"
#include "nn/lstm.hpp"

namespace legw::ag {
namespace {

using core::Rng;
using core::Shape;

struct CellSetup {
  Variable x, h, c, w, b;
};

CellSetup make_cell(i64 batch, i64 in, i64 hidden, u64 seed) {
  Rng rng(seed);
  CellSetup s;
  s.x = Variable::leaf(Tensor::randn({batch, in}, rng, 0.5f), true);
  s.h = Variable::leaf(Tensor::randn({batch, hidden}, rng, 0.5f), true);
  s.c = Variable::leaf(Tensor::randn({batch, hidden}, rng, 0.5f), true);
  s.w = Variable::leaf(Tensor::randn({in + hidden, 4 * hidden}, rng, 0.3f), true);
  s.b = Variable::leaf(Tensor::randn({4 * hidden}, rng, 0.3f), true);
  return s;
}

// Reference: the same math via primitive ops.
Variable composed_cell(const CellSetup& s, i64 hidden) {
  Variable xh = concat_cols({s.x, s.h});
  Variable z = add_bias(matmul(xh, s.w), s.b);
  Variable gi = sigmoid(slice_cols(z, 0, hidden));
  Variable gf = sigmoid(slice_cols(z, hidden, 2 * hidden));
  Variable gg = tanh(slice_cols(z, 2 * hidden, 3 * hidden));
  Variable go = sigmoid(slice_cols(z, 3 * hidden, 4 * hidden));
  Variable c_new = add(mul(gf, s.c), mul(gi, gg));
  Variable h_new = mul(go, tanh(c_new));
  return concat_cols({h_new, c_new});
}

TEST(LstmCell, ForwardMatchesComposition) {
  const i64 B = 3, I = 4, H = 5;
  CellSetup s = make_cell(B, I, H, 101);
  Variable fused = lstm_cell(s.x, s.h, s.c, s.w, s.b);
  Variable ref = composed_cell(s, H);
  ASSERT_TRUE(fused.value().same_shape(ref.value()));
  for (i64 i = 0; i < fused.numel(); ++i) {
    EXPECT_NEAR(fused.value()[i], ref.value()[i], 1e-5f) << "elem " << i;
  }
}

TEST(LstmCell, BackwardMatchesComposition) {
  const i64 B = 2, I = 3, H = 4;
  CellSetup s = make_cell(B, I, H, 202);
  Rng wrng(7);
  Tensor weights = Tensor::randn({B, 2 * H}, wrng);
  Variable wconst = Variable::constant(weights);

  // Fused gradients.
  backward(sum_all(mul(lstm_cell(s.x, s.h, s.c, s.w, s.b), wconst)));
  std::vector<Tensor> fused_grads = {s.x.grad(), s.h.grad(), s.c.grad(),
                                     s.w.grad(), s.b.grad()};
  for (Variable* v : {&s.x, &s.h, &s.c, &s.w, &s.b}) v->zero_grad();

  // Composed gradients on the same leaves.
  backward(sum_all(mul(composed_cell(s, H), wconst)));
  std::vector<Tensor> ref_grads = {s.x.grad(), s.h.grad(), s.c.grad(),
                                   s.w.grad(), s.b.grad()};

  for (std::size_t p = 0; p < fused_grads.size(); ++p) {
    for (i64 i = 0; i < fused_grads[p].numel(); ++i) {
      EXPECT_NEAR(fused_grads[p][i], ref_grads[p][i], 2e-4f)
          << "param " << p << " elem " << i;
    }
  }
}

TEST(LstmCell, GradCheckAllInputs) {
  const i64 B = 2, I = 3, H = 3;
  CellSetup s = make_cell(B, I, H, 303);
  auto r = grad_check(
      [&] {
        Variable hc = lstm_cell(s.x, s.h, s.c, s.w, s.b);
        return sum_all(mul(hc, hc));
      },
      {s.x, s.h, s.c, s.w, s.b});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(LstmCell, MultiStepBpttGradCheck) {
  // Three chained steps through one shared weight matrix: checks gradient
  // accumulation through time.
  const i64 B = 2, I = 2, H = 3;
  Rng rng(404);
  Variable w = Variable::leaf(Tensor::randn({I + H, 4 * H}, rng, 0.3f), true);
  Variable b = Variable::leaf(Tensor::randn({4 * H}, rng, 0.2f), true);
  std::vector<Variable> xs;
  for (int t = 0; t < 3; ++t) {
    xs.push_back(Variable::leaf(Tensor::randn({B, I}, rng, 0.5f), true));
  }
  auto run = [&] {
    Variable h = Variable::constant(Tensor::zeros({B, H}));
    Variable c = Variable::constant(Tensor::zeros({B, H}));
    for (int t = 0; t < 3; ++t) {
      Variable hc = lstm_cell(xs[static_cast<std::size_t>(t)], h, c, w, b);
      h = slice_cols(hc, 0, H);
      c = slice_cols(hc, H, 2 * H);
    }
    return sum_all(mul(h, h));
  };
  auto r = grad_check(run, {w, b, xs[0], xs[1], xs[2]});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(LstmCellLayer, FusedAndComposedLayersAgree) {
  // The nn-level wrapper with use_fused on/off must produce identical
  // forward values given identical parameter initialisation.
  const i64 B = 4, I = 5, H = 6;
  Rng rng_a(55), rng_b(55);
  nn::LstmCellLayer fused(I, H, rng_a, 1.0f, /*use_fused=*/true);
  nn::LstmCellLayer composed(I, H, rng_b, 1.0f, /*use_fused=*/false);

  Rng xr(9);
  Tensor x = Tensor::randn({B, I}, xr);
  nn::LstmState sf = fused.step(Variable::constant(x), fused.zero_state(B));
  nn::LstmState sc =
      composed.step(Variable::constant(x), composed.zero_state(B));
  for (i64 i = 0; i < sf.h.numel(); ++i) {
    EXPECT_NEAR(sf.h.value()[i], sc.h.value()[i], 1e-5f);
    EXPECT_NEAR(sf.c.value()[i], sc.c.value()[i], 1e-5f);
  }
}

TEST(LstmCellLayer, ForgetBiasApplied) {
  Rng rng(66);
  nn::LstmCellLayer layer(2, 3, rng, 1.5f);
  const Tensor& b = layer.bias().value();
  for (i64 j = 0; j < 3; ++j) EXPECT_EQ(b[j], 0.0f);             // i
  for (i64 j = 3; j < 6; ++j) EXPECT_EQ(b[j], 1.5f);             // f
  for (i64 j = 6; j < 12; ++j) EXPECT_EQ(b[j], 0.0f);            // g, o
}

TEST(LstmCell, StateSaturationBounded) {
  // h is bounded by tanh and the output gate: |h| < 1 always.
  const i64 B = 4, I = 4, H = 4;
  CellSetup s = make_cell(B, I, H, 505);
  // Feed extreme inputs.
  s.x.mutable_value().fill_(100.0f);
  Variable hc = lstm_cell(s.x, s.h, s.c, s.w, s.b);
  for (i64 i = 0; i < B; ++i) {
    for (i64 j = 0; j < H; ++j) {
      EXPECT_LT(std::abs(hc.value().at(i, j)), 1.0f + 1e-5f);
    }
  }
}

}  // namespace
}  // namespace legw::ag
