// Autograd graph validator (check::lint_graph): each defect class is seeded
// deliberately and the report must blame it; clean graphs must lint ok.
#include <gtest/gtest.h>

#include "ag/ops.hpp"
#include "ag/variable.hpp"
#include "check/graph_lint.hpp"

namespace legw::check {
namespace {

using ag::Node;
using ag::Variable;
using core::Rng;
using core::Tensor;

bool has_issue(const GraphLintReport& report, GraphIssueKind kind) {
  for (const GraphIssue& issue : report.issues) {
    if (issue.kind == kind) return true;
  }
  return false;
}

std::string detail_of(const GraphLintReport& report, GraphIssueKind kind) {
  for (const GraphIssue& issue : report.issues) {
    if (issue.kind == kind) return issue.detail;
  }
  return "";
}

TEST(GraphLint, CleanGraphIsOk) {
  Rng rng(1);
  Variable w = Variable::leaf(Tensor::randn({3, 3}, rng), true);
  Variable x = Variable::constant(Tensor::randn({2, 3}, rng));
  Variable loss = ag::mean_all(ag::tanh(ag::matmul(x, w)));
  GraphLintReport before = lint_graph(loss, {w});
  EXPECT_TRUE(before.ok()) << before.to_string();
  EXPECT_GE(before.nodes_visited, 4);  // w, x, matmul, tanh, mean_all

  ag::backward(loss);
  GraphLintReport after = lint_graph(loss, {w});
  EXPECT_TRUE(after.ok()) << after.to_string();
  EXPECT_EQ(after.to_string(),
            "graph lint: ok (" + std::to_string(after.nodes_visited) +
                " nodes)");
}

TEST(GraphLint, DetectsCycle) {
  // Impossible through the op API; splice the edge in by hand the way a
  // buggy deserialiser would.
  Variable x = Variable::leaf(Tensor({1}, {1.0f}), true);
  Variable y = ag::scale(x, 2.0f);
  Variable z = ag::scale(y, 3.0f);
  y.node()->parents.push_back(z.node());  // z -> y -> z
  GraphLintReport report = lint_graph(z);
  EXPECT_TRUE(has_issue(report, GraphIssueKind::kCycle)) << report.to_string();
  EXPECT_NE(detail_of(report, GraphIssueKind::kCycle).find("closes a cycle"),
            std::string::npos);
}

TEST(GraphLint, DetectsGradNeverPopulated) {
  // An op whose backward closure forgets to scatter into its parent: after
  // backward() the parent's gradient buffer is still unallocated.
  Variable x = Variable::leaf(Tensor({1}, {2.0f}), true);
  Variable y = ag::make_op_node("forgetful", Tensor({1}, {4.0f}), {x},
                                [](Node&) { /* drops the gradient */ });
  ag::backward(y);
  GraphLintReport report = lint_graph(y);
  EXPECT_TRUE(has_issue(report, GraphIssueKind::kGradNeverPopulated))
      << report.to_string();
  EXPECT_NE(detail_of(report, GraphIssueKind::kGradNeverPopulated)
                .find("'leaf'"),
            std::string::npos);
}

TEST(GraphLint, NoGradIssueBeforeBackwardRuns) {
  // The never-populated check only applies once backward() has run (root
  // grad buffer non-empty); a freshly built graph must not be blamed.
  Variable x = Variable::leaf(Tensor({1}, {2.0f}), true);
  Variable y = ag::make_op_node("forgetful", Tensor({1}, {4.0f}), {x},
                                [](Node&) {});
  GraphLintReport report = lint_graph(y);
  EXPECT_FALSE(has_issue(report, GraphIssueKind::kGradNeverPopulated))
      << report.to_string();
}

TEST(GraphLint, DetectsUnreachableParam) {
  Rng rng(2);
  Variable used = Variable::leaf(Tensor::randn({2, 2}, rng), true);
  Variable frozen = Variable::leaf(Tensor::randn({2, 2}, rng), true);
  Variable loss = ag::sum_all(used);
  GraphLintReport report = lint_graph(loss, {used, frozen});
  ASSERT_TRUE(has_issue(report, GraphIssueKind::kUnreachableParam))
      << report.to_string();
  // Blames the right parameter, by registration index.
  EXPECT_NE(detail_of(report, GraphIssueKind::kUnreachableParam)
                .find("param[1]"),
            std::string::npos);
  EXPECT_FALSE(has_issue(report, GraphIssueKind::kCycle));
}

TEST(GraphLint, ConstantParamIsNotReportedUnreachable) {
  Variable used = Variable::leaf(Tensor({1}, {1.0f}), true);
  Variable constant = Variable::constant(Tensor({1}, {5.0f}));
  Variable loss = ag::sum_all(used);
  GraphLintReport report = lint_graph(loss, {used, constant});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(GraphLint, DetectsStaleCapture) {
  Variable x = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  Variable y = ag::mul(x, x);
  Variable loss = ag::sum_all(y);
  EXPECT_TRUE(lint_graph(loss).ok());
  // In-place write after capture: backward would differentiate against
  // values the forward pass never saw.
  x.mutable_value().fill_(7.0f);
  GraphLintReport report = lint_graph(loss);
  ASSERT_TRUE(has_issue(report, GraphIssueKind::kStaleCapture))
      << report.to_string();
  EXPECT_NE(detail_of(report, GraphIssueKind::kStaleCapture)
                .find("of op 'mul'"),
            std::string::npos);
  EXPECT_NE(detail_of(report, GraphIssueKind::kStaleCapture)
                .find("mutated in place"),
            std::string::npos);
}

TEST(GraphLint, DetectsMissingBackwardFn) {
  // Hand-built interior node claiming requires_grad with no closure: its
  // parents can never receive gradient. make_op_node always installs the
  // closure, so build the node directly.
  Variable x = Variable::leaf(Tensor({1}, {1.0f}), true);
  auto n = std::make_shared<Node>();
  n->value = Tensor({1}, {2.0f});
  n->op = "handmade";
  n->requires_grad = true;
  n->parents.push_back(x.node());
  n->parent_versions.push_back(x.value().version());
  Variable y{std::move(n)};
  GraphLintReport report = lint_graph(y);
  ASSERT_TRUE(has_issue(report, GraphIssueKind::kMissingBackwardFn))
      << report.to_string();
  EXPECT_NE(detail_of(report, GraphIssueKind::kMissingBackwardFn)
                .find("'handmade'"),
            std::string::npos);
}

TEST(GraphLint, ReportFormatsAllIssues) {
  Variable used = Variable::leaf(Tensor({1}, {1.0f}), true);
  Variable frozen = Variable::leaf(Tensor({1}, {2.0f}), true);
  Variable loss = ag::scale(used, 2.0f);
  used.mutable_value().fill_(3.0f);
  GraphLintReport report = lint_graph(loss, {used, frozen});
  EXPECT_EQ(report.issues.size(), 2u) << report.to_string();
  std::string s = report.to_string();
  EXPECT_NE(s.find("[stale-capture]"), std::string::npos) << s;
  EXPECT_NE(s.find("[unreachable-param]"), std::string::npos) << s;
}

TEST(GraphLint, SharedSubgraphVisitedOnce) {
  // Diamond: loss = a*b + a*b reuses the mul node; the walk must not
  // double-count or loop.
  Variable a = Variable::leaf(Tensor({1}, {2.0f}), true);
  Variable b = Variable::leaf(Tensor({1}, {3.0f}), true);
  Variable p = ag::mul(a, b);
  Variable loss = ag::add(p, p);
  GraphLintReport report = lint_graph(loss, {a, b});
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.nodes_visited, 4);  // a, b, mul, add
}

}  // namespace
}  // namespace legw::check
