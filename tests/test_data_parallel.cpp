// Synchronous data-parallel training: replica synchrony, equivalence with
// single-process training, beam search, EMA, cosine schedule, tied
// embeddings.
#include <gtest/gtest.h>

#include "data/corpus.hpp"
#include "data/images.hpp"
#include "data/synthetic_mnist.hpp"
#include "data/translation.hpp"
#include "dist/data_parallel.hpp"
#include "models/gnmt.hpp"
#include "models/mnist_lstm.hpp"
#include "models/ptb_model.hpp"
#include "optim/ema.hpp"
#include "optim/optimizer.hpp"
#include "sched/schedule.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

TEST(DataParallel, ReplicasStaySynchronisedOverSteps) {
  // 4 replicas of the MNIST-LSTM, identical init, per-replica shards,
  // identical Momentum updates: weights must stay bitwise identical.
  constexpr int kReplicas = 4;
  data::SyntheticMnist dataset(256, 32, 42);
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;

  std::vector<std::unique_ptr<models::MnistLstm>> replicas;
  std::vector<std::vector<ag::Variable>> params;
  std::vector<std::unique_ptr<optim::Optimizer>> opts;
  for (int r = 0; r < kReplicas; ++r) {
    replicas.push_back(std::make_unique<models::MnistLstm>(cfg));
    params.push_back(replicas.back()->parameters());
    opts.push_back(optim::make_optimizer("momentum", params.back()));
    opts.back()->set_lr(0.05f);
  }
  EXPECT_EQ(dist::first_divergent_param(params), -1);

  data::IndexBatcher batcher(dataset.n_train(), 8 * kReplicas, 7);
  for (int step = 0; step < 5; ++step) {
    std::vector<i64> idx = batcher.next();
    dist::synchronous_backward(params, [&](int r) {
      std::vector<i64> shard(idx.begin() + r * 8, idx.begin() + (r + 1) * 8);
      return replicas[static_cast<std::size_t>(r)]->loss(
          dataset.gather_images(shard, true),
          dataset.gather_labels(shard, true));
    });
    for (auto& opt : opts) opt->step();
    ASSERT_EQ(dist::first_divergent_param(params), -1) << "step " << step;
  }
}

TEST(DataParallel, MatchesSingleProcessLargeBatch) {
  // 2 replicas x shard 4 == 1 process x batch 8 after one step (same data,
  // mean losses over equal shards), up to float reassociation.
  data::SyntheticMnist dataset(64, 16, 42);
  models::MnistLstmConfig cfg;
  cfg.transform_dim = 8;
  cfg.hidden_dim = 8;
  std::vector<i64> idx = {0, 1, 2, 3, 4, 5, 6, 7};

  // Reference: single model, full batch.
  models::MnistLstm single(cfg);
  auto single_params = single.parameters();
  single.zero_grad();
  ag::backward(single.loss(dataset.gather_images(idx, true),
                           dataset.gather_labels(idx, true)));

  // Data-parallel: two replicas.
  models::MnistLstm ra(cfg), rb(cfg);
  std::vector<std::vector<ag::Variable>> params = {ra.parameters(),
                                                   rb.parameters()};
  dist::synchronous_backward(params, [&](int r) {
    std::vector<i64> shard(idx.begin() + r * 4, idx.begin() + (r + 1) * 4);
    models::MnistLstm& model = r == 0 ? ra : rb;
    return model.loss(dataset.gather_images(shard, true),
                      dataset.gather_labels(shard, true));
  });

  for (std::size_t p = 0; p < single_params.size(); ++p) {
    const Tensor& ref = single_params[p].grad();
    const Tensor& got = params[0][p].grad();
    for (i64 i = 0; i < ref.numel(); ++i) {
      ASSERT_NEAR(got[i], ref[i], 1e-5f) << "param " << p << " elem " << i;
    }
  }
}

TEST(BeamSearch, WidthOneMatchesGreedy) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 20;
  tcfg.n_test = 6;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  models::Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.test(), {0, 1, 2});
  auto greedy = model.greedy_decode(batch, 10);
  auto beam1 = model.beam_decode(batch, 1, 10);
  EXPECT_EQ(greedy, beam1);
}

TEST(BeamSearch, WiderBeamNeverProducesInvalidTokens) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 20;
  tcfg.n_test = 4;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig cfg;
  cfg.hidden_dim = 8;
  cfg.embed_dim = 8;
  cfg.num_layers = 2;
  models::Gnmt model(cfg);
  auto batch = data::make_translation_batch(dataset.test(), {0, 1, 2, 3});
  auto hyps = model.beam_decode(batch, 4, 9);
  ASSERT_EQ(hyps.size(), 4u);
  for (const auto& h : hyps) {
    EXPECT_LE(h.size(), 9u);
    for (i32 t : h) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, 200);
      EXPECT_NE(t, data::kEosId);
      EXPECT_NE(t, data::kPadId);
    }
  }
}

TEST(Ema, ShadowTracksAndSwaps) {
  ag::Variable p = ag::Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  optim::EmaWeights ema({p}, 0.5f);
  // Move the live weights, update the average.
  p.mutable_value()[0] = 3.0f;
  p.mutable_value()[1] = 4.0f;
  ema.update();
  // shadow = 0.5*init + 0.5*current = (2, 3).
  EXPECT_FLOAT_EQ(ema.shadow()[0][0], 2.0f);
  EXPECT_FLOAT_EQ(ema.shadow()[0][1], 3.0f);
  ema.swap();
  EXPECT_FLOAT_EQ(p.value()[0], 2.0f);  // evaluating the average
  ema.swap();
  EXPECT_FLOAT_EQ(p.value()[0], 3.0f);  // training weights restored
}

TEST(CosineLr, EndpointsAndMidpoint) {
  sched::CosineLr s(2.0f, 10.0);
  EXPECT_FLOAT_EQ(s.lr(0.0), 2.0f);
  EXPECT_NEAR(s.lr(5.0), 1.0f, 1e-6f);
  EXPECT_NEAR(s.lr(10.0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.lr(15.0), 0.0f, 1e-6f);  // clamped
  // Monotone decreasing on [0, total].
  float prev = s.lr(0.0);
  for (double e = 0.5; e <= 10.0; e += 0.5) {
    const float v = s.lr(e);
    EXPECT_LE(v, prev + 1e-7f);
    prev = v;
  }
}

TEST(TiedEmbeddings, SharesWeightAndTrains) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 40;
  ccfg.n_train_tokens = 2000;
  ccfg.n_valid_tokens = 400;
  data::SyntheticCorpus corpus(ccfg);
  models::PtbConfig cfg = models::PtbConfig::small(40);
  cfg.embed_dim = 16;
  cfg.hidden_dim = 16;
  cfg.bptt_len = 5;
  cfg.tie_embeddings = true;
  models::PtbModel tied(cfg);
  models::PtbConfig untied_cfg = cfg;
  untied_cfg.tie_embeddings = false;
  models::PtbModel untied(untied_cfg);
  // Tied model saves vocab*hidden - vocab parameters.
  EXPECT_EQ(untied.num_parameters() - tied.num_parameters(),
            40 * 16);

  // One training step reduces loss on a fixed chunk.
  data::BpttBatcher batcher(corpus.train_tokens(), 4, 5);
  auto chunk = batcher.next_chunk();
  Rng drng(1);
  auto carried = tied.zero_carried(4);
  auto opt = optim::make_optimizer("adam", tied.parameters());
  opt->set_lr(0.05f);
  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 20; ++it) {
    tied.zero_grad();
    auto out = tied.chunk_loss(chunk.inputs, chunk.targets, 4, 5, carried, drng);
    if (it == 0) first = out.loss.value()[0];
    last = out.loss.value()[0];
    ag::backward(out.loss);
    opt->step();
  }
  EXPECT_LT(last, 0.8f * first);
}

TEST(TiedEmbeddings, RequiresMatchingDims) {
  models::PtbConfig cfg = models::PtbConfig::small(40);
  cfg.embed_dim = 8;
  cfg.hidden_dim = 16;
  cfg.tie_embeddings = true;
  EXPECT_DEATH(models::PtbModel{cfg}, "embed_dim == hidden_dim");
}

}  // namespace
}  // namespace legw
