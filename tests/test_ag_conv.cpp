// Convolution / batch-norm / pooling ops: reference forwards and gradchecks.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/gradcheck.hpp"
#include "ag/ops.hpp"

namespace legw::ag {
namespace {

using core::Rng;
using core::Shape;

// Direct convolution reference.
Tensor naive_conv(const Tensor& x, const Tensor& w, i64 stride, i64 pad) {
  const i64 B = x.size(0), C = x.size(1), H = x.size(2), W = x.size(3);
  const i64 Cout = w.size(0), kh = w.size(2), kw = w.size(3);
  const i64 Ho = (H + 2 * pad - kh) / stride + 1;
  const i64 Wo = (W + 2 * pad - kw) / stride + 1;
  Tensor out({B, Cout, Ho, Wo});
  for (i64 b = 0; b < B; ++b)
    for (i64 co = 0; co < Cout; ++co)
      for (i64 oi = 0; oi < Ho; ++oi)
        for (i64 oj = 0; oj < Wo; ++oj) {
          double acc = 0.0;
          for (i64 c = 0; c < C; ++c)
            for (i64 ki = 0; ki < kh; ++ki)
              for (i64 kj = 0; kj < kw; ++kj) {
                const i64 ii = oi * stride + ki - pad;
                const i64 jj = oj * stride + kj - pad;
                if (ii < 0 || ii >= H || jj < 0 || jj >= W) continue;
                acc += static_cast<double>(
                           x[((b * C + c) * H + ii) * W + jj]) *
                       w[((co * C + c) * kh + ki) * kw + kj];
              }
          out[((b * Cout + co) * Ho + oi) * Wo + oj] =
              static_cast<float>(acc);
        }
  return out;
}

struct ConvCase {
  i64 stride;
  i64 pad;
};

class ConvForwardTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForwardTest, MatchesNaive) {
  const auto [stride, pad] = GetParam();
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.4f);
  Variable out = conv2d(Variable::constant(x), Variable::constant(w),
                        Variable(), stride, pad);
  Tensor ref = naive_conv(x, w, stride, pad);
  ASSERT_TRUE(out.value().same_shape(ref));
  for (i64 i = 0; i < ref.numel(); ++i) {
    EXPECT_NEAR(out.value()[i], ref[i], 1e-4f) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(StridesAndPads, ConvForwardTest,
                         ::testing::Values(ConvCase{1, 0}, ConvCase{1, 1},
                                           ConvCase{2, 1}, ConvCase{2, 0}));

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, GradMatchesFiniteDiff) {
  const auto [stride, pad] = GetParam();
  Rng rng(2);
  Variable x = Variable::leaf(Tensor::randn({2, 2, 5, 5}, rng, 0.5f), true);
  Variable w = Variable::leaf(Tensor::randn({3, 2, 3, 3}, rng, 0.3f), true);
  Variable b = Variable::leaf(Tensor::randn({3}, rng, 0.2f), true);
  auto r = grad_check(
      [&] {
        Variable y = conv2d(x, w, b, stride, pad);
        return sum_all(mul(y, y));
      },
      {x, w, b});
  EXPECT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(StridesAndPads, ConvGradTest,
                         ::testing::Values(ConvCase{1, 1}, ConvCase{2, 1}));

TEST(BatchNorm2d, TrainingNormalisesBatch) {
  Rng rng(3);
  Variable x = Variable::leaf(Tensor::randn({4, 2, 3, 3}, rng, 2.0f, 5.0f),
                              true);
  Variable gamma = Variable::leaf(Tensor::ones({2}), true);
  Variable beta = Variable::leaf(Tensor::zeros({2}), true);
  Tensor rm = Tensor::zeros({2});
  Tensor rv = Tensor::ones({2});
  Variable y = batch_norm2d(x, gamma, beta, rm, rv, /*training=*/true);
  // Per channel, output mean ~0 and var ~1.
  for (i64 c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    i64 n = 0;
    for (i64 b = 0; b < 4; ++b)
      for (i64 s = 0; s < 9; ++s) {
        mean += y.value()[(b * 2 + c) * 9 + s];
        ++n;
      }
    mean /= n;
    for (i64 b = 0; b < 4; ++b)
      for (i64 s = 0; s < 9; ++s) {
        const double d = y.value()[(b * 2 + c) * 9 + s] - mean;
        var += d * d;
      }
    var /= n;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
  // Running stats moved toward the batch stats.
  EXPECT_GT(rm[0], 0.0f);
}

TEST(BatchNorm2d, GradCheckTraining) {
  Rng rng(4);
  Variable x = Variable::leaf(Tensor::randn({3, 2, 2, 2}, rng, 1.0f), true);
  Variable gamma = Variable::leaf(Tensor::rand_uniform({2}, rng, 0.5f, 1.5f),
                                  true);
  Variable beta = Variable::leaf(Tensor::randn({2}, rng, 0.2f), true);
  auto r = grad_check(
      [&] {
        Tensor rm = Tensor::zeros({2});
        Tensor rv = Tensor::ones({2});
        Variable y = batch_norm2d(x, gamma, beta, rm, rv, true);
        Rng wrng(8);
        Variable w = Variable::constant(Tensor::randn({3, 2, 2, 2}, wrng));
        return sum_all(mul(y, w));
      },
      {x, gamma, beta}, /*eps=*/1e-2, /*rel_tol=*/4e-2, /*abs_tol=*/2e-3);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(5);
  Variable x = Variable::leaf(Tensor::randn({2, 1, 2, 2}, rng), true);
  Variable gamma = Variable::leaf(Tensor::ones({1}), true);
  Variable beta = Variable::leaf(Tensor::zeros({1}), true);
  Tensor rm = Tensor::full({1}, 0.5f);
  Tensor rv = Tensor::full({1}, 4.0f);
  Variable y = batch_norm2d(x, gamma, beta, rm, rv, /*training=*/false);
  for (i64 i = 0; i < x.numel(); ++i) {
    const float expected =
        (x.value()[i] - 0.5f) / std::sqrt(4.0f + 1e-5f);
    EXPECT_NEAR(y.value()[i], expected, 1e-5f);
  }
  // Eval must not mutate the running stats.
  EXPECT_EQ(rm[0], 0.5f);
  EXPECT_EQ(rv[0], 4.0f);
}

TEST(GlobalAvgPool, ForwardAndGrad) {
  Rng rng(6);
  Variable x = Variable::leaf(Tensor::randn({2, 3, 2, 2}, rng), true);
  Variable y = global_avg_pool(x);
  EXPECT_EQ(y.size(0), 2);
  EXPECT_EQ(y.size(1), 3);
  float manual = 0.0f;
  for (i64 s = 0; s < 4; ++s) manual += x.value()[s];
  EXPECT_NEAR(y.value()[0], manual / 4.0f, 1e-5f);

  auto r = grad_check(
      [&] {
        Variable p = global_avg_pool(x);
        return sum_all(mul(p, p));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(AvgPool2x2, ForwardAndGrad) {
  Rng rng(7);
  Variable x = Variable::leaf(Tensor::randn({1, 2, 4, 4}, rng), true);
  Variable y = avg_pool2x2(x);
  EXPECT_EQ(y.value().shape(), (Shape{1, 2, 2, 2}));
  const float expected = 0.25f * (x.value()[0] + x.value()[1] +
                                  x.value()[4] + x.value()[5]);
  EXPECT_NEAR(y.value()[0], expected, 1e-5f);
  auto r = grad_check(
      [&] {
        Variable p = avg_pool2x2(x);
        return sum_all(mul(p, p));
      },
      {x});
  EXPECT_TRUE(r.ok) << r.detail;
}

}  // namespace
}  // namespace legw::ag
