// Distributed simulation: tree all-reduce, data-parallel gradient
// equivalence, and the cluster performance model.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "dist/allreduce.hpp"
#include "dist/cluster_model.hpp"
#include "nn/layers.hpp"

namespace legw::dist {
namespace {

using core::Rng;
using core::Tensor;

TEST(TreeAllreduce, MeanOfShards) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {3.0f, 4.0f});
  Tensor c({2}, {5.0f, 6.0f});
  std::vector<Tensor*> shards = {&a, &b, &c};
  tree_allreduce_mean(shards);
  for (Tensor* t : shards) {
    EXPECT_FLOAT_EQ((*t)[0], 3.0f);
    EXPECT_FLOAT_EQ((*t)[1], 4.0f);
  }
}

TEST(TreeAllreduce, SingleShardIsIdentity) {
  Tensor a({3}, {1.0f, 2.0f, 3.0f});
  std::vector<Tensor*> shards = {&a};
  tree_allreduce_mean(shards);
  EXPECT_FLOAT_EQ(a[1], 2.0f);
}

class AllreduceWorkerCountTest : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceWorkerCountTest, DeterministicAcrossRuns) {
  const int n = GetParam();
  auto make_shards = [n](std::vector<Tensor>& storage) {
    storage.clear();
    Rng rng(123);
    for (int i = 0; i < n; ++i) {
      storage.push_back(Tensor::randn({64}, rng));
    }
    std::vector<Tensor*> ptrs;
    for (auto& t : storage) ptrs.push_back(&t);
    return ptrs;
  };
  std::vector<Tensor> s1, s2;
  auto p1 = make_shards(s1);
  auto p2 = make_shards(s2);
  tree_allreduce_mean(p1);
  tree_allreduce_mean(p2);
  for (i64 i = 0; i < 64; ++i) {
    ASSERT_EQ(s1[0][i], s2[0][i]) << "non-deterministic reduction";
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, AllreduceWorkerCountTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(ParallelGradients, MatchesFullBatchGradient) {
  // Data-parallel invariant: mean of per-shard mean-loss gradients over
  // equal shards == full-batch mean-loss gradient.
  Rng rng(5);
  nn::Linear layer(4, 3, rng);
  Tensor full_x = Tensor::randn({8, 4}, rng);
  Rng wrng(6);
  Tensor weights = Tensor::randn({8, 3}, wrng);

  // Full-batch gradient of mean over all rows.
  layer.zero_grad();
  ag::backward(ag::mean_all(
      ag::mul(layer.forward(ag::Variable::constant(full_x)),
              ag::Variable::constant(weights))));
  Tensor full_grad = layer.weight().grad();
  layer.zero_grad();

  // 4 workers, 2 rows each. Workers only read the shared layer weights and
  // allocate their own leaves, so concurrent execution is safe.
  auto worker_fn = [&](int w) {
    Tensor shard_x({2, 4});
    Tensor shard_w({2, 3});
    for (i64 r = 0; r < 2; ++r) {
      for (i64 c = 0; c < 4; ++c) shard_x.at(r, c) = full_x.at(w * 2 + r, c);
      for (i64 c = 0; c < 3; ++c) shard_w.at(r, c) = weights.at(w * 2 + r, c);
    }
    // Local replica: fresh leaf sharing the weight *values*.
    ag::Variable local_w = ag::Variable::leaf(layer.weight().value(), true);
    ag::Variable local_b = ag::Variable::leaf(layer.bias().value(), true);
    ag::Variable y = ag::add_bias(
        ag::matmul(ag::Variable::constant(shard_x), local_w), local_b);
    ag::backward(ag::mean_all(ag::mul(y, ag::Variable::constant(shard_w))));
    return std::vector<Tensor>{local_w.grad(), local_b.grad()};
  };
  std::vector<Tensor> reduced = parallel_gradients(4, worker_fn);
  ASSERT_EQ(reduced.size(), 2u);
  for (i64 i = 0; i < full_grad.numel(); ++i) {
    EXPECT_NEAR(reduced[0][i], full_grad[i], 1e-5f) << "elem " << i;
  }
}

TEST(DeviceModel, SaturationCurveShape) {
  DeviceModel m{1000.0, 64.0};
  EXPECT_NEAR(m.throughput(64.0), 500.0, 1e-9);     // half peak at b_half
  EXPECT_GT(m.throughput(1024.0), m.throughput(64.0));
  EXPECT_LT(m.throughput(1024.0), 1000.0);          // never exceeds peak
  // Bigger batch -> more samples/sec -> fewer seconds per epoch.
  EXPECT_LT(m.epoch_seconds(10000, 512), m.epoch_seconds(10000, 32));
}

TEST(DeviceModel, FitRecoversParameters) {
  DeviceModel truth{800.0, 48.0};
  std::vector<std::pair<i64, double>> samples;
  for (i64 b : {16, 32, 64, 128, 256, 512}) {
    samples.emplace_back(b, truth.step_seconds(static_cast<double>(b)));
  }
  DeviceModel fit = fit_device_model(samples);
  EXPECT_NEAR(fit.peak_samples_per_sec, 800.0, 1.0);
  EXPECT_NEAR(fit.half_saturation_batch, 48.0, 0.5);
}

TEST(ClusterModel, CommunicationCostGrowsWithWorkers) {
  ClusterConfig cfg;
  cfg.device = {1000.0, 64.0};
  cfg.max_batch_per_worker = 256;
  auto t1 = cluster_epoch_time(cfg, 100000, 256);   // 1 worker
  auto t4 = cluster_epoch_time(cfg, 100000, 1024);  // 4 workers
  EXPECT_EQ(t1.workers, 1);
  EXPECT_EQ(t4.workers, 4);
  // Same per-worker batch, but t4 pays all-reduce while t1 doesn't — and
  // still wins overall because it runs 4x fewer steps.
  EXPECT_LT(t4.epoch_seconds, t1.epoch_seconds);
}

}  // namespace
}  // namespace legw::dist
