// RequestBroker concurrency battery. Runs in the tier1-serve suite AND in
// legw_concurrency_tests under the tsan preset: N producer threads hammer a
// broker with M workers and every future must resolve exactly once with the
// bitwise-correct result; shutdown with requests still in flight drains them
// (zero dropped, zero duplicated); submits after shutdown are refused with a
// structured status.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/rng.hpp"
#include "models/mnist_lstm.hpp"
#include "obs/trace.hpp"
#include "obs/telemetry.hpp"
#include "serve/broker.hpp"

namespace legw {
namespace {

using core::Rng;
using core::Tensor;

models::MnistLstmConfig small_config() {
  models::MnistLstmConfig c;
  c.transform_dim = 12;
  c.hidden_dim = 12;
  c.seed = 9;
  return c;
}

std::unique_ptr<serve::ServeSession> make_session() {
  models::MnistLstm model(small_config());
  ckpt::TrainState state;
  state.models.push_back(&model);
  state.step = 1;
  serve::SessionConfig sc;
  sc.kind = serve::ModelKind::kMnistLstm;
  sc.mnist.transform_dim = 12;
  sc.mnist.hidden_dim = 12;
  std::unique_ptr<serve::ServeSession> session;
  const auto res =
      serve::ServeSession::load_bytes(sc, ckpt::encode(state), &session);
  EXPECT_TRUE(res.ok()) << res.message;
  return session;
}

serve::Request random_request(u64 id, Rng& rng) {
  serve::Request req;
  req.id = id;
  req.features.resize(28 * 28);
  for (float& v : req.features) {
    v = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return req;
}

serve::BrokerConfig broker_config(int workers, i64 cap, i64 deadline_ms) {
  serve::BrokerConfig cfg;
  cfg.workers = workers;
  cfg.policy.batch_cap = cap;
  cfg.policy.deadline_ms = deadline_ms;
  return cfg;
}

TEST(RequestBroker, ProducersTimesWorkersBitwiseCorrect) {
  auto session = make_session();
  ASSERT_NE(session, nullptr);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 12;
  // Requests plus their synchronous batch-of-one reference results, prepared
  // before the broker exists so nothing races the comparison data.
  std::vector<std::vector<serve::Request>> reqs(kProducers);
  std::vector<std::vector<Tensor>> want(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    Rng rng(static_cast<u64>(100 + p));
    for (int i = 0; i < kPerProducer; ++i) {
      const u64 id = static_cast<u64>(p * kPerProducer + i);
      reqs[p].push_back(random_request(id, rng));
      const serve::Response ref = session->run(reqs[p].back());
      EXPECT_EQ(ref.status, serve::Status::kOk);
      want[p].push_back(ref.logits);
    }
  }

  serve::RequestBroker broker(*session, broker_config(3, 4, 1));
  std::vector<std::vector<std::future<serve::Response>>> futures(kProducers);
  {
    // lint-allow: raw-thread — the test IS the threading scenario
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      // lint-allow: raw-thread — the test IS the threading scenario
      producers.emplace_back([&, p] {
        for (const serve::Request& req : reqs[p]) {
          futures[p].push_back(broker.submit(req));
        }
      });
    }
    for (auto& t : producers) t.join();
  }

  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      serve::Response r = futures[p][static_cast<std::size_t>(i)].get();
      ASSERT_EQ(r.status, serve::Status::kOk) << r.message;
      EXPECT_EQ(r.id, static_cast<u64>(p * kPerProducer + i));
      ASSERT_EQ(r.logits.shape(), want[p][i].shape());
      for (i64 k = 0; k < r.logits.numel(); ++k) {
        ASSERT_EQ(r.logits[k], want[p][i][k])
            << "producer " << p << " request " << i << " flat " << k;
      }
      EXPECT_GE(r.done_ns, r.enqueue_ns);
    }
  }
}

TEST(RequestBroker, ShutdownDrainsInflightWithoutDropsOrDuplicates) {
  auto session = make_session();
  ASSERT_NE(session, nullptr);

  // A long deadline keeps requests parked in the batcher until shutdown's
  // drain flushes them, so the drain path itself is what resolves most
  // futures here.
  serve::RequestBroker broker(*session, broker_config(2, 64, 10'000));
  Rng rng(3);
  std::vector<std::future<serve::Response>> futures;
  for (u64 i = 0; i < 40; ++i) {
    futures.push_back(broker.submit(random_request(i, rng)));
  }
  broker.shutdown();
  std::atomic<int> resolved{0};
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::Response r = futures[i].get();  // .get() faults on a dropped or
    ASSERT_EQ(r.status, serve::Status::kOk) << r.message;  // doubled promise
    EXPECT_EQ(r.id, static_cast<u64>(i));
    ++resolved;
  }
  EXPECT_EQ(resolved.load(), 40);

  // Idempotent, and the door is closed afterwards.
  broker.shutdown();
  serve::Response late = broker.submit(random_request(99, rng)).get();
  EXPECT_EQ(late.status, serve::Status::kUnavailable);
}

TEST(RequestBroker, InvalidRequestsAreRefusedAtSubmit) {
  auto session = make_session();
  serve::RequestBroker broker(*session, broker_config(2, 4, 1));
  serve::Request bad;
  bad.id = 7;
  bad.features.resize(3);  // needs 784
  serve::Response r = broker.submit(bad).get();
  EXPECT_EQ(r.status, serve::Status::kInvalidRequest);
  EXPECT_EQ(r.id, 7u);
}

TEST(RequestBroker, CountersReachTelemetryWithTracingDisabled) {
  obs::set_tracing_enabled(false);
  const serve::BrokerCounters before = serve::RequestBroker::counters();
  auto session = make_session();
  {
    serve::RequestBroker broker(*session, broker_config(2, 4, 1));
    Rng rng(5);
    std::vector<std::future<serve::Response>> futures;
    for (u64 i = 0; i < 10; ++i) {
      futures.push_back(broker.submit(random_request(i, rng)));
    }
    for (auto& f : futures) EXPECT_EQ(f.get().status, serve::Status::kOk);
  }
  const serve::BrokerCounters after = serve::RequestBroker::counters();
  EXPECT_EQ(after.requests - before.requests, 10);
  EXPECT_EQ(after.responses - before.responses, 10);
  EXPECT_GE(after.batches - before.batches, 1);
  EXPECT_GE(after.batch_rows - before.batch_rows, 10);

  // The registered counter source folds serve.* into every recorder
  // snapshot — and therefore into the telemetry JSONL — even with tracing
  // disabled (the counters are always-on atomics, not spans).
  const auto counters = obs::TraceRecorder::global().counters();
  ASSERT_EQ(counters.count("serve.requests"), 1u);
  EXPECT_GE(counters.at("serve.requests"), 10);
  ASSERT_EQ(counters.count("serve.batches"), 1u);

  obs::RunRecord record;
  record.run = "serve.telemetry.test";
  const std::string line =
      obs::render_run_telemetry(record, obs::TraceRecorder::global());
  EXPECT_NE(line.find("\"serve.requests\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"serve.batch_rows\""), std::string::npos) << line;
}

}  // namespace
}  // namespace legw
