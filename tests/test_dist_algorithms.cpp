// Property suite for the scale-out all-reduce algorithms (dist/algorithms):
// every algorithm — tree, ring, hierarchical — must agree with a
// double-precision mean reference across replica counts 1..32 (including odd
// counts and counts that do not divide the payload, which exercises the
// ring's uneven chunking), leave every shard bitwise identical, and be
// bitwise deterministic run to run. Plus pins for the kAuto size policy, the
// hierarchical grouping, and the simulated wire-volume accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "dist/algorithms.hpp"
#include "dist/allreduce.hpp"

namespace legw::dist {
namespace {

using core::Rng;
using core::Tensor;

// n random shards of `numel` elements plus their double-precision mean.
struct Fixture {
  std::vector<Tensor> shards;
  std::vector<double> reference;

  Fixture(int n, i64 numel, u64 seed) {
    Rng rng(seed);
    reference.assign(static_cast<std::size_t>(numel), 0.0);
    for (int r = 0; r < n; ++r) {
      Tensor t({numel});
      for (i64 i = 0; i < numel; ++i) {
        t[i] = static_cast<float>(rng.uniform(-3.0, 3.0));
        reference[static_cast<std::size_t>(i)] += static_cast<double>(t[i]);
      }
      shards.push_back(std::move(t));
    }
    for (double& v : reference) v /= static_cast<double>(n);
  }

  std::vector<Tensor*> pointers() {
    std::vector<Tensor*> out;
    for (Tensor& t : shards) out.push_back(&t);
    return out;
  }
};

void run_algo(DistAlgo algo, std::vector<Tensor*>& shards) {
  switch (algo) {
    case DistAlgo::kTree: tree_allreduce_mean(shards); return;
    case DistAlgo::kRing: ring_allreduce_mean(shards); return;
    case DistAlgo::kHier: hier_allreduce_mean(shards); return;
    case DistAlgo::kAuto: allreduce_mean(shards, DistAlgo::kAuto); return;
  }
}

struct Case {
  DistAlgo algo;
  int n;
};

class AllreduceProperty : public ::testing::TestWithParam<Case> {};

TEST_P(AllreduceProperty, MatchesDoubleMeanOnAllShards) {
  const Case c = GetParam();
  // 67 elements: prime, not divisible by any replica count in the matrix,
  // and larger than 32 so every ring chunk is non-empty at n=32.
  const i64 numel = 67;
  Fixture fx(c.n, numel, 0xC0FFEEu + static_cast<u64>(c.n));
  auto ptrs = fx.pointers();
  run_algo(c.algo, ptrs);
  for (int r = 0; r < c.n; ++r) {
    for (i64 i = 0; i < numel; ++i) {
      const double want = fx.reference[static_cast<std::size_t>(i)];
      const double got =
          static_cast<double>(fx.shards[static_cast<std::size_t>(r)][i]);
      // Each element is a sum of n values in [-3,3] scaled by 1/n: float
      // summation order differs per algorithm, so compare against the
      // double reference with an n-scaled ulp budget.
      EXPECT_NEAR(got, want, 1e-5 * static_cast<double>(c.n))
          << "shard " << r << " elem " << i;
    }
  }
  // Every shard must hold the bitwise-identical result (broadcast, not
  // "close enough").
  for (int r = 1; r < c.n; ++r) {
    for (i64 i = 0; i < numel; ++i) {
      EXPECT_EQ(fx.shards[static_cast<std::size_t>(r)][i], fx.shards[0][i]);
    }
  }
}

TEST_P(AllreduceProperty, BitwiseDeterministicRunToRun) {
  const Case c = GetParam();
  Fixture a(c.n, 129, 0xABCDu);
  Fixture b(c.n, 129, 0xABCDu);
  auto pa = a.pointers();
  auto pb = b.pointers();
  run_algo(c.algo, pa);
  run_algo(c.algo, pb);
  for (i64 i = 0; i < 129; ++i) {
    ASSERT_EQ(a.shards[0][i], b.shards[0][i]) << "elem " << i;
  }
}

std::vector<Case> matrix() {
  std::vector<Case> cases;
  for (DistAlgo algo : {DistAlgo::kTree, DistAlgo::kRing, DistAlgo::kHier,
                        DistAlgo::kAuto}) {
    // Powers of two, odd counts, primes, and counts above the payload's
    // divisibility: 1..32.
    for (int n : {1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32}) {
      cases.push_back({algo, n});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Matrix, AllreduceProperty,
                         ::testing::ValuesIn(matrix()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           return std::string(
                                      core::dist_algo_name(info.param.algo)) +
                                  "_n" + std::to_string(info.param.n);
                         });

// ---- degenerate payloads ----------------------------------------------------

TEST(AllreduceEdge, OneElementPayload) {
  // numel < n: most ring chunks are empty — the chunking must still cover
  // the single element exactly once.
  for (DistAlgo algo : {DistAlgo::kTree, DistAlgo::kRing, DistAlgo::kHier}) {
    Fixture fx(8, 1, 7u);
    auto ptrs = fx.pointers();
    run_algo(algo, ptrs);
    for (int r = 0; r < 8; ++r) {
      EXPECT_NEAR(static_cast<double>(fx.shards[static_cast<std::size_t>(r)][0]),
                  fx.reference[0], 1e-5)
          << core::dist_algo_name(algo);
    }
  }
}

TEST(AllreduceEdge, EmptyTensor) {
  for (DistAlgo algo : {DistAlgo::kTree, DistAlgo::kRing, DistAlgo::kHier}) {
    std::vector<Tensor> shards;
    for (int r = 0; r < 4; ++r) shards.emplace_back(Tensor({0}));
    std::vector<Tensor*> ptrs;
    for (Tensor& t : shards) ptrs.push_back(&t);
    run_algo(algo, ptrs);  // must not crash or touch memory
    for (const Tensor& t : shards) EXPECT_EQ(t.numel(), 0);
  }
}

TEST(AllreduceEdge, SingleShardIsIdentity) {
  for (DistAlgo algo : {DistAlgo::kTree, DistAlgo::kRing, DistAlgo::kHier}) {
    Fixture fx(1, 13, 3u);
    const Tensor before = fx.shards[0];
    auto ptrs = fx.pointers();
    run_algo(algo, ptrs);
    for (i64 i = 0; i < 13; ++i) {
      EXPECT_EQ(fx.shards[0][i], before[i]) << core::dist_algo_name(algo);
    }
  }
}

// ---- kAuto policy -----------------------------------------------------------

TEST(ChoosePolicy, ResolvesBySizeAndShardCount) {
  const i64 small = 16 * 1024;    // below the 64 KiB latency-bound cutoff
  const i64 large = 1024 * 1024;
  // <= 2 shards: always tree, payload regardless.
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, large, 1), DistAlgo::kTree);
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, large, 2), DistAlgo::kTree);
  // Small payloads stay latency-bound.
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, small, 4), DistAlgo::kTree);
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, small, 16), DistAlgo::kTree);
  // Large payload, mid shard count: bandwidth-optimal ring.
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, large, 4), DistAlgo::kRing);
  // Large payload, many shards: hierarchical.
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, large, 8), DistAlgo::kHier);
  EXPECT_EQ(choose_algorithm(DistAlgo::kAuto, large, 32), DistAlgo::kHier);
  // Explicit requests pass through untouched.
  for (DistAlgo a : {DistAlgo::kTree, DistAlgo::kRing, DistAlgo::kHier}) {
    EXPECT_EQ(choose_algorithm(a, small, 32), a);
    EXPECT_EQ(choose_algorithm(a, large, 2), a);
  }
}

TEST(ChoosePolicy, HierGroupSizeIsSqrtClamped) {
  EXPECT_EQ(hier_group_size(1), 1);
  EXPECT_EQ(hier_group_size(2), 2);
  EXPECT_EQ(hier_group_size(3), 3);
  EXPECT_EQ(hier_group_size(4), 2);
  EXPECT_EQ(hier_group_size(9), 3);
  EXPECT_EQ(hier_group_size(16), 4);
  EXPECT_EQ(hier_group_size(17), 5);
  EXPECT_EQ(hier_group_size(32), 6);
  for (int n = 4; n <= 32; ++n) {
    const int g = hier_group_size(n);
    EXPECT_GE(g, 2) << n;
    EXPECT_LE(g, n) << n;
  }
}

TEST(HierGrouping, EveryGroupSizeAgreesWithReference) {
  // The grouping is an implementation detail of the schedule, never of the
  // result: any group size must produce the same mean.
  const int n = 12;
  for (int g = 1; g <= n; ++g) {
    Fixture fx(n, 41, 0xFEEDu);
    auto ptrs = fx.pointers();
    hier_allreduce_mean(ptrs, g);
    for (i64 i = 0; i < 41; ++i) {
      EXPECT_NEAR(static_cast<double>(fx.shards[0][i]),
                  fx.reference[static_cast<std::size_t>(i)], 1e-5 * n)
          << "group size " << g;
    }
  }
}

// ---- wire-volume accounting -------------------------------------------------

TEST(WireBytes, FollowsElementWidthAndHopCount) {
  EXPECT_EQ(wire_elem_bytes(WireFormat::kFp32), 4);
  EXPECT_EQ(wire_elem_bytes(WireFormat::kFp16), 2);
  EXPECT_EQ(wire_elem_bytes(WireFormat::kInt8), 1);
  // One shard never touches the wire.
  EXPECT_EQ(allreduce_wire_bytes(1, 1000, WireFormat::kFp32), 0);
  // 2*(n-1) aggregate payload movements — the all-reduce volume lower bound.
  EXPECT_EQ(allreduce_wire_bytes(2, 100, WireFormat::kFp32), 2 * 100 * 4);
  EXPECT_EQ(allreduce_wire_bytes(5, 100, WireFormat::kFp32), 8 * 100 * 4);
  // fp16 halves the bandwidth term; int8 quarters it plus one scale word
  // per hop.
  EXPECT_EQ(allreduce_wire_bytes(5, 100, WireFormat::kFp16), 8 * 100 * 2);
  EXPECT_EQ(allreduce_wire_bytes(5, 100, WireFormat::kInt8),
            8 * (100 * 1 + 4));
}

}  // namespace
}  // namespace legw::dist
