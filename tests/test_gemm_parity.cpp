// Reference-parity, determinism, and regression tests for the GEMM kernel
// pair (gemm_ref / gemm_blocked). Runs under both LEGW_KERNEL settings via
// the ctest registrations in tests/CMakeLists.txt; the parity tests pin both
// implementations explicitly so they are env-independent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/flags.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace legw::core {
namespace {

struct GemmCase {
  i64 m, n, k;
  bool trans_a, trans_b;
  i64 lda, ldb, ldc;  // >= the minimal leading dimension
  float alpha, beta;
  u64 seed;
  double zero_frac = 0.0;  // fraction of A/B entries forced to exactly 0
};

std::vector<float> random_buf(i64 rows, i64 ld, Rng& rng, double zero_frac) {
  std::vector<float> v(static_cast<std::size_t>(rows * ld) + 1);
  for (auto& x : v) {
    x = static_cast<float>(rng.uniform(-1.0, 1.0));
    if (zero_frac > 0.0 && rng.uniform() < zero_frac) x = 0.0f;
  }
  return v;
}

// Checks gemm_ref and gemm_blocked against a double-precision oracle with a
// per-element rounding bound, against each other, and that neither touches
// the padding between ldc rows.
void check_parity(const GemmCase& cs) {
  SCOPED_TRACE(testing::Message()
               << "m=" << cs.m << " n=" << cs.n << " k=" << cs.k << " ta="
               << cs.trans_a << " tb=" << cs.trans_b << " lda=" << cs.lda
               << " ldb=" << cs.ldb << " ldc=" << cs.ldc << " alpha="
               << cs.alpha << " beta=" << cs.beta << " seed=" << cs.seed);
  Rng rng(cs.seed);
  const i64 a_rows = cs.trans_a ? cs.k : cs.m;
  const i64 b_rows = cs.trans_b ? cs.n : cs.k;
  const std::vector<float> a = random_buf(a_rows, cs.lda, rng, cs.zero_frac);
  const std::vector<float> b = random_buf(b_rows, cs.ldb, rng, cs.zero_frac);
  const std::vector<float> c0 = random_buf(cs.m, cs.ldc, rng, 0.0);

  std::vector<float> c_ref = c0;
  std::vector<float> c_blk = c0;
  gemm_ref(cs.trans_a, cs.trans_b, cs.m, cs.n, cs.k, cs.alpha, a.data(),
           cs.lda, b.data(), cs.ldb, cs.beta, c_ref.data(), cs.ldc);
  gemm_blocked(cs.trans_a, cs.trans_b, cs.m, cs.n, cs.k, cs.alpha, a.data(),
               cs.lda, b.data(), cs.ldb, cs.beta, c_blk.data(), cs.ldc);

  auto a_at = [&](i64 i, i64 p) {
    return static_cast<double>(
        a[static_cast<std::size_t>(cs.trans_a ? p * cs.lda + i
                                              : i * cs.lda + p)]);
  };
  auto b_at = [&](i64 p, i64 j) {
    return static_cast<double>(
        b[static_cast<std::size_t>(cs.trans_b ? j * cs.ldb + p
                                              : p * cs.ldb + j)]);
  };

  const double eps = std::numeric_limits<float>::epsilon();
  for (i64 i = 0; i < cs.m; ++i) {
    for (i64 j = 0; j < cs.n; ++j) {
      double dot = 0.0, absdot = 0.0;
      for (i64 p = 0; p < cs.k; ++p) {
        const double prod = a_at(i, p) * b_at(p, j);
        dot += prod;
        absdot += std::fabs(prod);
      }
      const std::size_t idx = static_cast<std::size_t>(i * cs.ldc + j);
      const double c0v = static_cast<double>(c0[idx]);
      const double oracle = cs.beta * c0v + cs.alpha * dot;
      // Worst-case float rounding of a k-term recurrence plus the beta-scale
      // and final add: each of the ~(k+3) float operations contributes at
      // most eps relative to the running magnitude.
      const double bound =
          2.0 * eps * (static_cast<double>(cs.k) + 3.0) *
              (std::fabs(cs.alpha) * absdot + std::fabs(cs.beta * c0v)) +
          1e-35;
      EXPECT_NEAR(c_ref[idx], oracle, bound) << "ref at (" << i << "," << j
                                             << ")";
      EXPECT_NEAR(c_blk[idx], oracle, bound) << "blocked at (" << i << ","
                                             << j << ")";
      EXPECT_NEAR(c_blk[idx], c_ref[idx], bound)
          << "ref vs blocked at (" << i << "," << j << ")";
    }
    // Padding columns [n, ldc) of every row must be untouched by both.
    for (i64 j = cs.n; j < cs.ldc; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i * cs.ldc + j);
      EXPECT_EQ(c_ref[idx], c0[idx]) << "ref wrote padding at row " << i;
      EXPECT_EQ(c_blk[idx], c0[idx]) << "blocked wrote padding at row " << i;
    }
  }
}

TEST(GemmParity, RandomizedSweep) {
  // ~200 randomized cases over sizes (including degenerate {0, 1}), all four
  // transpose combos, non-trivial leading dimensions, and the alpha/beta set
  // from the issue spec.
  const i64 sizes[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 48, 64};
  const float coeffs[] = {0.0f, 1.0f, -0.5f, 2.0f};
  Rng rng(20260806);
  int cases = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const i64 m = sizes[rng.uniform_int(std::size(sizes))];
    const i64 n = sizes[rng.uniform_int(std::size(sizes))];
    const i64 k = sizes[rng.uniform_int(std::size(sizes))];
    for (int t = 0; t < 4; ++t) {
      GemmCase cs;
      cs.m = m;
      cs.n = n;
      cs.k = k;
      cs.trans_a = (t & 1) != 0;
      cs.trans_b = (t & 2) != 0;
      cs.lda = (cs.trans_a ? m : k) + static_cast<i64>(rng.uniform_int(4));
      cs.ldb = (cs.trans_b ? k : n) + static_cast<i64>(rng.uniform_int(4));
      cs.ldc = n + static_cast<i64>(rng.uniform_int(4));
      if (cs.lda == 0) cs.lda = 1;
      if (cs.ldb == 0) cs.ldb = 1;
      if (cs.ldc == 0) cs.ldc = 1;
      cs.alpha = coeffs[rng.uniform_int(4)];
      cs.beta = coeffs[rng.uniform_int(4)];
      cs.seed = rng.next_u64();
      check_parity(cs);
      ++cases;
    }
  }
  EXPECT_EQ(cases, 200);
}

TEST(GemmParity, PanelCrossingShapes) {
  // Shapes that cross the MC=128 / KC=256 / NC=960 panel boundaries and the
  // 8x48 micro-tile edges, for every transpose combo.
  const GemmCase shapes[] = {
      {300, 70, 600, false, false, 600, 70, 70, 1.0f, 0.0f, 11},
      {130, 1000, 40, false, false, 40, 1000, 1003, -0.5f, 1.0f, 12},
      {129, 49, 257, false, false, 257, 49, 49, 2.0f, -0.5f, 13},
      {65, 97, 310, false, false, 310, 97, 99, 1.0f, 2.0f, 14},
  };
  for (const GemmCase& base : shapes) {
    for (int t = 0; t < 4; ++t) {
      GemmCase cs = base;
      cs.trans_a = (t & 1) != 0;
      cs.trans_b = (t & 2) != 0;
      cs.lda = (cs.trans_a ? cs.m : cs.k) + 2;
      cs.ldb = (cs.trans_b ? cs.k : cs.n) + 1;
      check_parity(cs);
    }
  }
}

TEST(GemmParity, ZeroLadenInputsRegression) {
  // Regression for the removed aip == 0 skip branch in the nn/tn row
  // kernels: heavily zero-laden operands (including entire zero rows of A)
  // must produce identical results on every path.
  for (int t = 0; t < 4; ++t) {
    GemmCase cs;
    cs.m = 37;
    cs.n = 53;
    cs.k = 61;
    cs.trans_a = (t & 1) != 0;
    cs.trans_b = (t & 2) != 0;
    cs.lda = cs.trans_a ? cs.m : cs.k;
    cs.ldb = cs.trans_b ? cs.k : cs.n;
    cs.ldc = cs.n + 3;
    cs.alpha = 1.0f;
    cs.beta = 1.0f;
    cs.seed = 99 + static_cast<u64>(t);
    cs.zero_frac = 0.5;
    check_parity(cs);
  }
  // An all-zero A against a dense B (the degenerate case the branch targeted).
  const i64 m = 24, n = 50, k = 40;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.0f);
  Rng rng(5);
  std::vector<float> b = random_buf(k, n, rng, 0.0);
  std::vector<float> c_ref(static_cast<std::size_t>(m * n), 7.0f);
  std::vector<float> c_blk = c_ref;
  gemm_ref(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f,
           c_ref.data(), n);
  gemm_blocked(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 1.0f,
               c_blk.data(), n);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    EXPECT_EQ(c_ref[i], 7.0f);
    EXPECT_EQ(c_blk[i], 7.0f);
  }
}

TEST(GemmDeterminism, BitwiseIdenticalAcrossRuns) {
  // At a fixed thread count, repeated gemm_blocked runs must be bitwise
  // identical — no run-to-run variation from partitioning or packing.
  const i64 m = 210, n = 190, k = 300;
  Rng rng(77);
  std::vector<float> a = random_buf(m, k, rng, 0.0);
  std::vector<float> b = random_buf(k, n, rng, 0.0);
  std::vector<float> c1(static_cast<std::size_t>(m * n), 0.0f);
  for (int run = 0; run < 3; ++run) {
    std::vector<float> c2(static_cast<std::size_t>(m * n), 0.0f);
    gemm_blocked(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
                 (run == 0 ? c1 : c2).data(), n);
    if (run > 0) {
      ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(),
                               c1.size() * sizeof(float)))
          << "run " << run << " differs bitwise";
    }
  }
}

TEST(GemmDeterminism, RowPartitionInvariance) {
  // The cross-thread-count contract: parallelisation partitions C rows, and
  // partitioning must not change any per-row reduction order. Computing row
  // ranges in separate calls simulates arbitrary chunk boundaries (including
  // ones that split an 8-row micro-panel); results must be bitwise identical
  // to the single full-range call.
  const i64 m = 150, n = 100, k = 280;
  Rng rng(88);
  std::vector<float> a = random_buf(m, k, rng, 0.0);
  std::vector<float> b = random_buf(k, n, rng, 0.0);
  std::vector<float> c_full(static_cast<std::size_t>(m * n), 0.0f);
  gemm_blocked(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
               c_full.data(), n);
  for (const i64 split : {1LL, 8LL, 67LL, 128LL, 149LL}) {
    std::vector<float> c_split(static_cast<std::size_t>(m * n), 0.0f);
    gemm_blocked(false, false, split, n, k, 1.0f, a.data(), k, b.data(), n,
                 0.0f, c_split.data(), n);
    gemm_blocked(false, false, m - split, n, k, 1.0f, a.data() + split * k, k,
                 b.data(), n, 0.0f, c_split.data() + split * n, n);
    ASSERT_EQ(0, std::memcmp(c_full.data(), c_split.data(),
                             c_full.size() * sizeof(float)))
        << "split at row " << split << " changed bits";
  }
}

TEST(GemmDispatch, HonoursKernelSelection) {
  const GemmKernel saved = gemm_kernel();
  const i64 n = 40;
  Rng rng(3);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);

  std::vector<float> c_ref(static_cast<std::size_t>(n * n), 0.0f);
  std::vector<float> c_blk = c_ref;
  gemm_ref(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
           c_ref.data(), n);
  gemm_blocked(false, false, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
               c_blk.data(), n);

  set_gemm_kernel(GemmKernel::kRef);
  Tensor via_ref = matmul(a, b);
  set_gemm_kernel(GemmKernel::kBlocked);
  Tensor via_blk = matmul(a, b);
  set_gemm_kernel(saved);

  ASSERT_EQ(0, std::memcmp(via_ref.data(), c_ref.data(),
                           c_ref.size() * sizeof(float)));
  ASSERT_EQ(0, std::memcmp(via_blk.data(), c_blk.data(),
                           c_blk.size() * sizeof(float)));
  EXPECT_TRUE(set_gemm_kernel("ref"));
  EXPECT_EQ(gemm_kernel(), GemmKernel::kRef);
  EXPECT_TRUE(set_gemm_kernel("blocked"));
  EXPECT_EQ(gemm_kernel(), GemmKernel::kBlocked);
  EXPECT_FALSE(set_gemm_kernel("turbo"));
  EXPECT_EQ(gemm_kernel(), GemmKernel::kBlocked);
  set_gemm_kernel(saved);
}

}  // namespace
}  // namespace legw::core
