// Lipschitz estimation and the grid-search tuning harness.
#include <gtest/gtest.h>

#include <cmath>

#include "ag/ops.hpp"
#include "analysis/lipschitz.hpp"
#include "analysis/curvature.hpp"
#include "analysis/tuning.hpp"

namespace legw::analysis {
namespace {

using ag::Variable;
using core::Rng;
using core::Tensor;

TEST(Lipschitz, QuadraticCurvatureAlongGradient) {
  // f(w) = 0.5 * sum(a_i w_i^2): Hessian = diag(a). Along the gradient
  // direction u = g/||g||, uᵀHu = sum(a_i u_i^2) exactly.
  Variable w = Variable::leaf(Tensor({3}, {1.0f, 1.0f, 1.0f}), true);
  Tensor a({3}, {1.0f, 4.0f, 9.0f});
  auto loss_fn = [&] {
    return ag::scale(
        ag::sum_all(ag::mul(Variable::constant(a), ag::mul(w, w))), 0.5f);
  };
  // g = a*w = (1,4,9); ||g||^2 = 98; uᵀHu = (1*1 + 4*16 + 9*81)/98 = 794/98.
  const double expected = (1.0 + 4.0 * 16.0 + 9.0 * 81.0) / 98.0;
  const double L = local_lipschitz({w}, loss_fn, 1e-3);
  EXPECT_NEAR(L, expected, 0.05 * expected);
}

TEST(Lipschitz, RestoresWeightsAndZerosGrads) {
  Variable w = Variable::leaf(Tensor({2}, {0.3f, -0.7f}), true);
  auto loss_fn = [&] { return ag::sum_all(ag::mul(w, w)); };
  local_lipschitz({w}, loss_fn);
  EXPECT_FLOAT_EQ(w.value()[0], 0.3f);
  EXPECT_FLOAT_EQ(w.value()[1], -0.7f);
  EXPECT_EQ(w.grad().l2_norm(), 0.0f);
}

TEST(Lipschitz, ZeroGradientReturnsZero) {
  Variable w = Variable::leaf(Tensor::zeros({2}), true);
  auto loss_fn = [&] { return ag::sum_all(ag::mul(w, w)); };  // grad = 0 at 0
  EXPECT_EQ(local_lipschitz({w}, loss_fn), 0.0);
}

TEST(Lipschitz, ScaleInvariantInBatchAveraging) {
  // L(x,g) of f and of 3*f differ by exactly 3 (linearity of the Hessian):
  // sanity for comparing across batch sizes where losses are means.
  Variable w = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  auto f1 = [&] { return ag::sum_all(ag::mul(w, ag::mul(w, w))); };
  auto f3 = [&] {
    return ag::scale(ag::sum_all(ag::mul(w, ag::mul(w, w))), 3.0f);
  };
  const double l1 = local_lipschitz({w}, f1, 1e-4);
  const double l3 = local_lipschitz({w}, f3, 1e-4);
  EXPECT_NEAR(l3, 3.0 * l1, 0.1 * l3);
}

TEST(GridSearch, FindsBestHigherBetter) {
  auto run = [](float lr) {
    // Metric peaked at lr = 0.4.
    const double m = 1.0 - std::abs(lr - 0.4);
    return std::make_pair(m, false);
  };
  TuneResult r = grid_search_lr({0.1f, 0.2f, 0.4f, 0.8f}, run, true);
  EXPECT_FLOAT_EQ(r.best_lr, 0.4f);
  EXPECT_EQ(r.table.size(), 4u);
}

TEST(GridSearch, LowerBetterAndDivergedExcluded) {
  auto run = [](float lr) {
    if (lr > 0.5f) return std::make_pair(0.0, true);  // diverged: metric junk
    return std::make_pair(static_cast<double>(lr), false);
  };
  TuneResult r = grid_search_lr({0.1f, 0.3f, 0.9f}, run, false);
  EXPECT_FLOAT_EQ(r.best_lr, 0.1f);
  EXPECT_TRUE(r.table[2].diverged);
}

TEST(GridSearch, AllDivergedReportsSentinel) {
  auto run = [](float) { return std::make_pair(0.0, true); };
  TuneResult r = grid_search_lr({0.1f, 0.2f}, run, true);
  EXPECT_EQ(r.best_metric, 0.0);
}

TEST(GeometricGrid, PaperEffectiveRanges) {
  // [0.01, 0.16] with 5 points is the x2 ladder 0.01,0.02,0.04,0.08,0.16.
  auto grid = geometric_grid(0.01f, 0.16f, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[0], 0.01f, 1e-6f);
  EXPECT_NEAR(grid[1], 0.02f, 1e-3f);
  EXPECT_NEAR(grid[4], 0.16f, 1e-6f);
}

TEST(CurvatureTrace, QuadraticIsFlatAndPeakRecorded) {
  // On a fixed quadratic, L is constant along the trajectory: the trace is
  // flat and the recorded peak equals every entry.
  Variable w = Variable::leaf(Tensor({2}, {1.0f, 2.0f}), true);
  Tensor a({2}, {2.0f, 8.0f});
  auto probe = [&] {
    return ag::scale(
        ag::sum_all(ag::mul(Variable::constant(a), ag::mul(w, w))), 0.5f);
  };
  int steps_taken = 0;
  auto step = [&] {
    // Tiny GD step so the gradient direction (and thus L(x,g)) drifts.
    w.zero_grad();
    ag::backward(probe());
    w.mutable_value().add_(w.grad(), -0.001f);
    w.zero_grad();
    ++steps_taken;
  };
  auto trace = trace_curvature({w}, probe, step, 5);
  EXPECT_EQ(trace.values.size(), 5u);
  EXPECT_EQ(steps_taken, 5);
  for (double v : trace.values) {
    EXPECT_NEAR(v, trace.peak_value, 0.2 * trace.peak_value);
    EXPECT_GT(v, 0.0);
  }
  EXPECT_GE(trace.peak_iteration, 0);
  EXPECT_LT(trace.peak_iteration, 5);
}

}  // namespace
}  // namespace legw::analysis
