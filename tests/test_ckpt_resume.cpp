// Bitwise resume determinism: for every runner, N epochs + simulated crash +
// resume + remaining epochs must equal the uninterrupted run parameter for
// parameter AND step for step in the recorded train_loss series. This is the
// acceptance test of the checkpoint subsystem — a resume that silently
// changes the trajectory would invalidate any LEGW experiment that survived
// a preemption.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/flags.hpp"
#include "sched/legw.hpp"
#include "train/recorder.hpp"
#include "train/runners.hpp"

namespace legw::train {
namespace {

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/legw_resume_" + name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

using Runner = std::function<RunResult(const RunConfig&)>;

void expect_series_match(const Recorder& expect, const Recorder& got,
                         i64 from_step, i64 to_step, const char* tag) {
  const auto* ref = expect.find_series("train_loss");
  const auto* res = got.find_series("train_loss");
  ASSERT_NE(ref, nullptr) << tag;
  ASSERT_NE(res, nullptr) << tag;
  for (const auto& p : *res) {
    if (p.step < from_step || p.step >= to_step) continue;
    bool found = false;
    for (const auto& q : *ref) {
      if (q.step == p.step) {
        EXPECT_EQ(p.value, q.value) << tag << " train_loss at step " << p.step;
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << tag << ": straight run missing step " << p.step;
  }
}

// The acceptance scenario: (a) run 2N epochs straight; (b) run the same
// seeded config with periodic checkpoints and an injected kill; (c) restart
// with resume=true and run to completion. Final parameters must match (a)
// bitwise, the crashed prefix and resumed suffix of the train_loss series
// must equal the straight run's exactly, and the resume must pick up from
// the newest checkpoint at or below the kill step.
void expect_bitwise_resume(const Runner& go, const RunConfig& base,
                           const ckpt::CrashPlan& plan, i64 every_steps,
                           i64 expected_resume_step, const std::string& tag) {
  TempDir dir(tag);

  Recorder rec_straight;
  RunConfig straight = base;
  straight.recorder = &rec_straight;
  straight.capture_final_params = true;
  const RunResult ref = go(straight);
  ASSERT_FALSE(ref.diverged) << tag;
  ASSERT_FALSE(ref.final_params.empty()) << tag;

  Recorder rec_crash;
  RunConfig crash = base;
  crash.recorder = &rec_crash;
  crash.checkpoint_dir = dir.path;
  crash.checkpoint_every_steps = every_steps;
  crash.crash_plan = &plan;
  const RunResult killed = go(crash);
  ASSERT_TRUE(killed.interrupted) << tag << ": injected kill did not fire";
  EXPECT_LT(killed.steps, ref.steps) << tag;

  Recorder rec_resume;
  RunConfig resumed = base;
  resumed.recorder = &rec_resume;
  resumed.checkpoint_dir = dir.path;
  resumed.checkpoint_every_steps = every_steps;
  resumed.resume = true;
  resumed.capture_final_params = true;
  const RunResult completed = go(resumed);
  ASSERT_FALSE(completed.diverged) << tag;
  EXPECT_FALSE(completed.interrupted) << tag;
  EXPECT_EQ(completed.resumed_from_step, expected_resume_step) << tag;

  // Parameter-for-parameter bitwise equality with the straight run.
  ASSERT_EQ(completed.final_params.size(), ref.final_params.size()) << tag;
  for (std::size_t p = 0; p < ref.final_params.size(); ++p) {
    const core::Tensor& a = ref.final_params[p];
    const core::Tensor& b = completed.final_params[p];
    ASSERT_EQ(a.numel(), b.numel()) << tag << " param " << p;
    for (i64 i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << tag << " param " << p << " elem " << i;
    }
  }

  // The crashed prefix and the resumed suffix reproduce the straight run's
  // per-step train_loss series exactly.
  const i64 total = ref.steps;
  expect_series_match(rec_straight, rec_crash, 0, total,
                      (tag + ":prefix").c_str());
  expect_series_match(rec_straight, rec_resume, expected_resume_step, total,
                      (tag + ":suffix").c_str());
  const auto* res_series = rec_resume.find_series("train_loss");
  ASSERT_NE(res_series, nullptr) << tag;
  EXPECT_EQ(res_series->front().step, expected_resume_step) << tag;
  EXPECT_EQ(res_series->back().step, total - 1) << tag;
}

// ---- the four runners -------------------------------------------------------

TEST(CkptResume, MnistBitwise) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::LegwBaseline base{32, 0.1f, 0.2};
  auto schedule = sched::legw_constant(base, 32);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 4;  // 4 steps/epoch -> 16 steps
  run.optimizer = "momentum";
  run.schedule = schedule.get();
  run.final_eval_only = true;
  // Kill at step 10 with checkpoints every 3: resume from step 9, mid-epoch
  // (exercises the non-epoch-aligned restart path).
  const auto plan = ckpt::CrashPlan::mid_step(10);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      plan, /*every=*/3, /*resume_step=*/9, "mnist");
}

TEST(CkptResume, PtbBitwiseWithDropoutAndCarriedState) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 40;
  ccfg.n_train_tokens = 1200;
  ccfg.n_valid_tokens = 200;
  data::SyntheticCorpus corpus(ccfg);
  models::PtbConfig mcfg = models::PtbConfig::small(40);
  mcfg.embed_dim = 16;
  mcfg.hidden_dim = 16;
  mcfg.bptt_len = 8;
  mcfg.dropout = 0.2f;  // dropout RNG stream must survive the resume
  sched::ConstantLr schedule(0.5f);
  RunConfig run;
  run.batch_size = 8;
  run.epochs = 2;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  data::BpttBatcher probe(corpus.train_tokens(), run.batch_size, mcfg.bptt_len);
  const i64 per_epoch = probe.chunks_per_epoch();
  ASSERT_GE(per_epoch, 6);
  // Kill mid-second-epoch; resume lands mid-epoch with carried BPTT state.
  const i64 crash_step = per_epoch + 3;
  const i64 every = 2;
  // A mid-step kill fires before that step's checkpoint write, so the resume
  // point is the newest cadence multiple strictly below the crash step.
  const i64 resume_step = ((crash_step - 1) / every) * every;
  const auto plan = ckpt::CrashPlan::mid_step(crash_step);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_ptb(corpus, mcfg, r); }, run,
      plan, every, resume_step, "ptb");
}

TEST(CkptResume, GnmtBitwiseWithDropout) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 60;
  tcfg.n_test = 10;
  tcfg.src_vocab = 30;
  tcfg.tgt_vocab = 30;
  tcfg.min_len = 3;
  tcfg.max_len = 5;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig mcfg;
  mcfg.hidden_dim = 12;
  mcfg.embed_dim = 12;
  mcfg.num_layers = 2;
  mcfg.residual_start = 2;
  mcfg.dropout = 0.1f;
  sched::ConstantLr schedule(0.01f);
  RunConfig run;
  run.batch_size = 20;
  run.epochs = 4;  // 3 steps/epoch -> 12 steps
  run.optimizer = "adam";
  run.schedule = &schedule;
  run.final_eval_only = true;
  const auto plan = ckpt::CrashPlan::mid_step(7);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_gnmt(dataset, mcfg, r); }, run,
      plan, /*every=*/2, /*resume_step=*/6, "gnmt");
}

TEST(CkptResume, ResnetBitwiseWithBatchNormBuffers) {
  data::SyntheticImages dataset(96, 24, 42);
  models::ResNetConfig mcfg;
  mcfg.width = 4;
  mcfg.blocks_per_stage = 1;
  sched::ConstantLr schedule(0.05f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 4;  // 3 steps/epoch -> 12 steps
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  const auto plan = ckpt::CrashPlan::mid_step(7);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_resnet(dataset, mcfg, r); }, run,
      plan, /*every=*/2, /*resume_step=*/6, "resnet");
}

// ---- crash kinds beyond mid-step --------------------------------------------

TEST(CkptResume, MidWriteCrashFallsBackToPreviousCheckpoint) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 3;  // 12 steps
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  // The kill fires *during the write* of the step-6 checkpoint: nothing is
  // published for step 6, so the resume must come from step 4.
  const auto plan = ckpt::CrashPlan::mid_write(6, 0.7);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      plan, /*every=*/2, /*resume_step=*/4, "midwrite");
}

TEST(CkptResume, TornPublishIsDetectedAndSkipped) {
  data::SyntheticMnist dataset(128, 32, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 3;
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  // A truncated file lands at the *final* step-6 path (non-atomic
  // filesystem model); the loader must reject it by CRC/truncation and fall
  // back to step 4 — still reproducing the straight run bitwise.
  const auto plan = ckpt::CrashPlan::torn_publish(6, 0.5);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      plan, /*every=*/2, /*resume_step=*/4, "tornpublish");
}

// ---- data-parallel replicas × dist engines ----------------------------------

class CkptResumeReplicas
    : public ::testing::TestWithParam<std::tuple<int, core::DistMode>> {};

TEST_P(CkptResumeReplicas, MnistBitwiseAcrossReplicasAndEngines) {
  const int n_replicas = std::get<0>(GetParam());
  const core::DistMode mode = std::get<1>(GetParam());
  const core::DistMode saved = core::dist_mode();
  core::set_dist_mode(mode);

  data::SyntheticMnist dataset(128, 16, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(0.1f);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 2;  // 4 steps/epoch -> 8 steps
  run.optimizer = "momentum";
  run.schedule = &schedule;
  run.final_eval_only = true;
  run.replicas = n_replicas;
  const auto plan = ckpt::CrashPlan::mid_step(5);
  expect_bitwise_resume(
      [&](const RunConfig& r) { return train_mnist(dataset, mcfg, r); }, run,
      plan, /*every=*/2, /*resume_step=*/4,
      "replicas" + std::to_string(n_replicas) + "_" +
          core::dist_mode_name(mode));

  core::set_dist_mode(saved);
}

INSTANTIATE_TEST_SUITE_P(
    ReplicaMatrix, CkptResumeReplicas,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(core::DistMode::kSync,
                                         core::DistMode::kOverlap)),
    [](const ::testing::TestParamInfo<std::tuple<int, core::DistMode>>& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "_" +
             core::dist_mode_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace legw::train
