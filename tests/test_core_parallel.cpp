// RNG determinism/statistics and thread-pool behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "core/rng.hpp"
#include "core/thread_pool.hpp"

namespace legw::core {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(6);
  std::set<u64> seen;
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(9), parent2(9);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  // Same parent seed -> same child stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child differs from the parent's continued stream.
  Rng parent3(9);
  Rng child3 = parent3.split();
  EXPECT_NE(child3.next_u64(), parent3.next_u64());
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  parallel_for(0, 1000, 1, [&](i64 b, i64 e) {
    for (i64 i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  int calls = 0;
  parallel_for(5, 5, 1, [&](i64, i64) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> count{0};
  parallel_for(0, 3, 100, [&](i64 b, i64 e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, NestedCallsRunSerially) {
  // A nested parallel_for inside a chunk must not deadlock and must cover
  // its range.
  std::atomic<i64> total{0};
  parallel_for(0, 64, 1, [&](i64 b, i64 e) {
    for (i64 i = b; i < e; ++i) {
      parallel_for(0, 10, 1, [&](i64 ib, i64 ie) { total += ie - ib; });
    }
  });
  EXPECT_EQ(total.load(), 640);
}

TEST(ThreadPool, ConcurrentSubmittersFromPlainThreads) {
  std::atomic<i64> total{0};
  // lint-allow: raw-thread — the test's point is external submitters that
  // are NOT pool workers racing into the pool.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) {
        parallel_for(0, 100, 1,
                     [&](i64 b, i64 e) { total += e - b; });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 100);
}

TEST(ThreadPool, DeterministicChunking) {
  // The same (range, grain) must produce the same partition every call: we
  // record chunk boundaries and compare across two runs.
  auto record = [](std::vector<std::pair<i64, i64>>& out) {
    std::mutex mu;
    parallel_for(0, 1003, 7, [&](i64 b, i64 e) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(b, e);
    });
    std::sort(out.begin(), out.end());
  };
  std::vector<std::pair<i64, i64>> run1, run2;
  record(run1);
  record(run2);
  EXPECT_EQ(run1, run2);
}

}  // namespace
}  // namespace legw::core
