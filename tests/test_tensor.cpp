// Core tensor substrate: shapes, arithmetic, reductions, GEMM.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace legw::core {
namespace {

TEST(Shape, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({5, 0}), 0);
  EXPECT_EQ(shape_to_string({2, 3}), "[2,3]");
}

TEST(Tensor, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  for (i64 i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);

  Tensor f = Tensor::full({4}, 2.5f);
  EXPECT_EQ(f.sum(), 10.0f);
  f.fill_(1.0f);
  EXPECT_EQ(f.sum(), 4.0f);
}

TEST(Tensor, FromValuesAndAt) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
  t.at(1, 1) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(Tensor, Arithmetic) {
  Tensor a({3}, {1.0f, 2.0f, 3.0f});
  Tensor b({3}, {10.0f, 20.0f, 30.0f});
  Tensor c = a + b;
  EXPECT_EQ(c[0], 11.0f);
  EXPECT_EQ(c[2], 33.0f);
  Tensor d = b - a;
  EXPECT_EQ(d[1], 18.0f);
  Tensor e = a * b;
  EXPECT_EQ(e[2], 90.0f);
  Tensor f = a * 2.0f;
  EXPECT_EQ(f[0], 2.0f);
  Tensor g = 3.0f * a;
  EXPECT_EQ(g[2], 9.0f);
  Tensor h = a + 1.0f;
  EXPECT_EQ(h[0], 2.0f);
}

TEST(Tensor, InPlaceOps) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {3.0f, 4.0f});
  a.add_(b);
  EXPECT_EQ(a[0], 4.0f);
  a.add_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[1], 8.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[0], 2.5f);
  a.mul_(b);
  EXPECT_FLOAT_EQ(a[0], 7.5f);
  a.scale_(2.0f);
  EXPECT_FLOAT_EQ(a[0], 15.0f);
  a.zero_();
  EXPECT_EQ(a.sum(), 0.0f);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {-1.0f, 2.0f, -3.0f, 4.0f});
  EXPECT_FLOAT_EQ(t.sum(), 2.0f);
  EXPECT_FLOAT_EQ(t.mean(), 0.5f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 4.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(1.0 + 4.0 + 9.0 + 16.0), 1e-6);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.dim(), 2);
  EXPECT_EQ(r.size(0), 3);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(Tensor, Transposed2d) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tr = t.transposed_2d();
  EXPECT_EQ(tr.size(0), 3);
  EXPECT_EQ(tr.size(1), 2);
  EXPECT_EQ(tr.at(0, 1), 4.0f);
  EXPECT_EQ(tr.at(2, 0), 3.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(123);
  Tensor t = Tensor::randn({10000}, rng, 2.0f, 1.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  double var = 0.0;
  for (i64 i = 0; i < t.numel(); ++i) {
    const double d = t[i] - t.mean();
    var += d * d;
  }
  var /= t.numel();
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Tensor, RandUniformRange) {
  Rng rng(99);
  Tensor t = Tensor::rand_uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  EXPECT_NEAR(t.mean(), 0.5f, 0.2f);
}

// ---- GEMM ------------------------------------------------------------------

// Reference matmul for validation.
Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const i64 m = ta ? a.size(1) : a.size(0);
  const i64 k = ta ? a.size(0) : a.size(1);
  const i64 n = tb ? b.size(0) : b.size(1);
  Tensor c({m, n});
  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      double acc = 0.0;
      for (i64 p = 0; p < k; ++p) {
        const float av = ta ? a.at(p, i) : a.at(i, p);
        const float bv = tb ? b.at(j, p) : b.at(p, j);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

class GemmTransposeTest : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(42);
  const i64 m = 7, k = 5, n = 9;
  Tensor a = Tensor::randn(ta ? Shape{k, m} : Shape{m, k}, rng);
  Tensor b = Tensor::randn(tb ? Shape{n, k} : Shape{k, n}, rng);
  Tensor c = matmul(a, b, ta, tb);
  Tensor ref = naive_matmul(a, b, ta, tb);
  ASSERT_TRUE(c.same_shape(ref));
  for (i64 i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4f) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposeTest,
                         ::testing::Values(std::pair{false, false},
                                           std::pair{false, true},
                                           std::pair{true, false},
                                           std::pair{true, true}));

TEST(Gemm, AlphaBetaAccumulation) {
  Rng rng(7);
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({4, 2}, rng);
  Tensor c0 = Tensor::full({3, 2}, 1.0f);
  Tensor c = c0;
  gemm(false, false, 3, 2, 4, 2.0f, a.data(), 4, b.data(), 2, 0.5f, c.data(), 2);
  Tensor ab = naive_matmul(a, b, false, false);
  for (i64 i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], 2.0f * ab[i] + 0.5f, 1e-4f);
  }
}

TEST(Gemm, LargeParallelMatchesNaive) {
  Rng rng(11);
  Tensor a = Tensor::randn({97, 64}, rng);
  Tensor b = Tensor::randn({64, 83}, rng);
  Tensor c = matmul(a, b);
  Tensor ref = naive_matmul(a, b, false, false);
  double max_err = 0.0;
  for (i64 i = 0; i < c.numel(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(c[i]) - ref[i]));
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST(Gemm, ZeroKIsBetaScale) {
  Tensor c({2, 2}, {1, 2, 3, 4});
  gemm(false, false, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 2.0f, c.data(), 2);
  EXPECT_EQ(c[0], 2.0f);
  EXPECT_EQ(c[3], 8.0f);
}

}  // namespace
}  // namespace legw::core
