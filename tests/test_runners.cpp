// End-to-end smoke tests for the four training runners, including the LEGW
// schedule path and divergence detection.
#include <gtest/gtest.h>

#include "sched/legw.hpp"
#include "train/runners.hpp"

namespace legw::train {
namespace {

TEST(LossDiverged, Predicate) {
  EXPECT_FALSE(loss_diverged(2.3));
  EXPECT_TRUE(loss_diverged(std::nan("")));
  EXPECT_TRUE(loss_diverged(std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(loss_diverged(1e6));
}

TEST(TrainMnist, LearnsAboveChanceWithLegw) {
  data::SyntheticMnist dataset(1024, 256, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 32;
  mcfg.hidden_dim = 32;

  sched::LegwBaseline base{32, 0.1f, 0.2};
  auto schedule = sched::legw_constant(base, 32);
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 5;
  run.optimizer = "momentum";
  run.schedule = schedule.get();

  RunResult result = train_mnist(dataset, mcfg, run);
  EXPECT_FALSE(result.diverged);
  EXPECT_GT(result.final_metric, 0.4);  // >> 0.1 chance
  EXPECT_EQ(result.per_epoch_metric.size(), 5u);
  EXPECT_GT(result.steps, 0);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(TrainMnist, DivergesAtAbsurdLr) {
  data::SyntheticMnist dataset(256, 64, 42);
  models::MnistLstmConfig mcfg;
  mcfg.transform_dim = 16;
  mcfg.hidden_dim = 16;
  sched::ConstantLr schedule(1e5f);
  RunConfig run;
  run.batch_size = 64;
  run.epochs = 2;
  run.clip_norm = 0.0f;  // no clipping: let it blow up
  run.schedule = &schedule;
  RunResult result = train_mnist(dataset, mcfg, run);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.final_metric, 0.0);
}

TEST(TrainPtb, PerplexityDropsBelowVocab) {
  data::CorpusConfig ccfg;
  ccfg.vocab = 60;
  ccfg.n_train_tokens = 6000;
  ccfg.n_valid_tokens = 800;
  data::SyntheticCorpus corpus(ccfg);
  models::PtbConfig mcfg = models::PtbConfig::small(60);
  mcfg.embed_dim = 24;
  mcfg.hidden_dim = 24;
  mcfg.bptt_len = 8;

  sched::ExponentialEpochDecay decay(0.5f, 2.0, 0.5f);
  sched::GradualWarmup schedule(0.2, std::make_shared<sched::ExponentialEpochDecay>(decay));
  RunConfig run;
  run.batch_size = 16;
  run.epochs = 3;
  run.optimizer = "momentum";
  run.schedule = &schedule;

  RunResult result = train_ptb(corpus, mcfg, run);
  EXPECT_FALSE(result.diverged);
  EXPECT_LT(result.final_metric, 60.0);  // beats the uniform-model ppl
  // Perplexity is monotone-ish: final epoch no worse than the first.
  EXPECT_LE(result.per_epoch_metric.back(), result.per_epoch_metric.front());
}

TEST(TrainGnmt, BleuImprovesOverEpochs) {
  data::TranslationConfig tcfg;
  tcfg.n_train = 300;
  tcfg.n_test = 40;
  tcfg.src_vocab = 40;
  tcfg.tgt_vocab = 40;
  tcfg.min_len = 3;
  tcfg.max_len = 6;
  data::SyntheticTranslation dataset(tcfg);
  models::GnmtConfig mcfg;
  mcfg.hidden_dim = 16;
  mcfg.embed_dim = 16;
  mcfg.num_layers = 2;

  sched::ConstantLr inner(0.02f);
  sched::GradualWarmup schedule(0.2, std::make_shared<sched::ConstantLr>(inner));
  RunConfig run;
  run.batch_size = 20;
  run.epochs = 4;
  run.optimizer = "adam";
  run.schedule = &schedule;

  RunResult result = train_gnmt(dataset, mcfg, run);
  EXPECT_FALSE(result.diverged);
  EXPECT_GE(result.final_metric, result.per_epoch_metric.front());
}

TEST(TrainResnet, LearnsAboveChance) {
  data::SyntheticImages dataset(512, 128, 42);
  models::ResNetConfig mcfg;
  mcfg.width = 4;
  mcfg.blocks_per_stage = 1;

  // LARS folds an eta=0.001 trust coefficient into the step, so the global
  // peak LR sits in the single digits (the paper uses 2^2.5..2^5).
  sched::LegwBaseline base{32, 4.0f, 0.3};
  auto schedule = sched::legw_schedule(base, 32, [](float peak) {
    return std::make_shared<sched::PolynomialLr>(peak, 4.0, 2.0f);
  });
  RunConfig run;
  run.batch_size = 32;
  run.epochs = 4;
  run.optimizer = "lars";
  run.weight_decay = 1e-4f;
  run.schedule = schedule.get();

  RunResult result = train_resnet(dataset, mcfg, run);
  EXPECT_FALSE(result.diverged);
  EXPECT_GT(result.final_metric, 0.3);
}

}  // namespace
}  // namespace legw::train
